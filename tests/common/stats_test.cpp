#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, Basic) {
  Accumulator a;
  a.add(2.0);
  a.add(4.0);
  a.add(9.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, Merge) {
  Accumulator a, b;
  a.add(1.0);
  b.add(3.0);
  b.add(5.0);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, Reset) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Accumulator, WelfordVariance) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
}

TEST(Accumulator, VarianceNeedsTwoSamples) {
  Accumulator a;
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSequentialMoments) {
  Accumulator a, b, all;
  const double xs[] = {1.0, 2.5, 3.0, 10.0, -4.0, 6.5, 0.25};
  for (int i = 0; i < 7; ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a += b;
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  b.add(2.0);
  b.add(6.0);
  a += b;  // empty lhs adopts rhs
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);
  const Accumulator empty;
  a += empty;  // empty rhs is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);
}

TEST(Histogram, Percentiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);  // uniform 0..100
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);  // underflow
  h.add(50.0);  // overflow
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileZeroReturnsObservedMin) {
  Histogram h(0.0, 10.0, 10);
  h.add(2.3);
  h.add(7.7);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.3);
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), 2.3);
}

TEST(Histogram, FallThroughReturnsLastPopulatedEdge) {
  // A target beyond the accumulated count exercises the fall-through path:
  // without overflow samples the result is the populated bucket's upper
  // edge, never hi_.
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  h.add(3.6);
  EXPECT_DOUBLE_EQ(h.percentile(1.5), 4.0);

  Histogram o(0.0, 10.0, 10);
  o.add(3.5);
  o.add(99.0);  // overflow present -> saturates to hi_
  EXPECT_DOUBLE_EQ(o.percentile(1.5), 10.0);
}

TEST(Histogram, MergeSumsBucketsAndMoments) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  a.add(-2.0);
  b.add(1.7);
  b.add(42.0);
  b.add(8.0);
  a += b;
  EXPECT_EQ(a.summary().count(), 5u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.buckets()[1], 2u);
  EXPECT_EQ(a.buckets()[8], 1u);
  EXPECT_DOUBLE_EQ(a.summary().min(), -2.0);
  EXPECT_DOUBLE_EQ(a.summary().max(), 42.0);
}

TEST(Histogram, Buckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.summary().count(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

}  // namespace
}  // namespace mcm
