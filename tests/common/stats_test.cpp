#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, Basic) {
  Accumulator a;
  a.add(2.0);
  a.add(4.0);
  a.add(9.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, Merge) {
  Accumulator a, b;
  a.add(1.0);
  b.add(3.0);
  b.add(5.0);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, Reset) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, Percentiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);  // uniform 0..100
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  EXPECT_LE(h.percentile(0.25), h.percentile(0.75));
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);  // underflow
  h.add(50.0);  // overflow
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, Buckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.summary().count(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

}  // namespace
}  // namespace mcm
