#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mcm {
namespace {

TEST(Csv, PlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("a").field(std::int64_t{42}).field(2.5).endrow();
  EXPECT_EQ(out.str(), "a,42,2.5\n");
}

TEST(Csv, QuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("hello, world").field("with \"quote\"").endrow();
  EXPECT_EQ(out.str(), "\"hello, world\",\"with \"\"quote\"\"\"\n");
}

TEST(Csv, RowHelper) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"x", "y"});
  w.field(std::uint64_t{1}).field(std::int64_t{-2}).endrow();
  EXPECT_EQ(out.str(), "x,y\n1,-2\n");
}

TEST(Csv, DoublePrecision) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field(3.14159265358979, 3).endrow();
  EXPECT_EQ(out.str(), "3.14\n");
}

}  // namespace
}  // namespace mcm
