#include "common/units.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Time, ConversionsRoundTrip) {
  const Time t = Time::from_ns(15.0);
  EXPECT_EQ(t.ps(), 15'000);
  EXPECT_DOUBLE_EQ(t.ns(), 15.0);
  EXPECT_DOUBLE_EQ(Time::from_ms(33.0).ms(), 33.0);
  EXPECT_DOUBLE_EQ(Time::from_seconds(1.0).seconds(), 1.0);
  EXPECT_DOUBLE_EQ(Time::from_us(7.8125).us(), 7.8125);
}

TEST(Time, Arithmetic) {
  const Time a = Time::from_ns(10.0);
  const Time b = Time::from_ns(4.0);
  EXPECT_EQ((a + b).ps(), 14'000);
  EXPECT_EQ((a - b).ps(), 6'000);
  EXPECT_EQ((a * 3).ps(), 30'000);
  EXPECT_EQ((3 * a).ps(), 30'000);
  Time c = a;
  c += b;
  EXPECT_EQ(c.ps(), 14'000);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::from_ns(1.0), Time::from_ns(2.0));
  EXPECT_EQ(max(Time{5}, Time{9}), Time{9});
  EXPECT_EQ(min(Time{5}, Time{9}), Time{5});
  EXPECT_LT(Time::zero(), Time::max());
}

TEST(Frequency, PeriodAtPaperClocks) {
  EXPECT_EQ(Frequency{400.0}.period().ps(), 2'500);
  EXPECT_EQ(Frequency{200.0}.period().ps(), 5'000);
  EXPECT_EQ(Frequency{533.0}.period().ps(), 1'876);  // rounded to 1 ps
  EXPECT_DOUBLE_EQ(Frequency{400.0}.hz(), 4e8);
}

TEST(Bandwidth, FromBytesOverTime) {
  EXPECT_DOUBLE_EQ(bandwidth_bytes_per_s(1'000'000, Time::from_ms(1.0)), 1e9);
  EXPECT_DOUBLE_EQ(bandwidth_bytes_per_s(123, Time::zero()), 0.0);
}

TEST(Format, HumanReadable) {
  EXPECT_EQ(format_time(Time{500}), "500 ps");
  EXPECT_EQ(format_time(Time::from_ns(55.0)), "55.00 ns");
  EXPECT_EQ(format_time(Time::from_ms(33.0)), "33.000 ms");
  EXPECT_EQ(format_bandwidth(3.2e9), "3.20 GB/s");
  EXPECT_EQ(format_bandwidth(69.1e6), "69.10 MB/s");
}

TEST(Units, DataSizeHelpers) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_DOUBLE_EQ(bits_to_mbits(8e6), 8.0);
  EXPECT_DOUBLE_EQ(bytes_to_gb(2.5e9), 2.5);
}

}  // namespace
}  // namespace mcm
