#include "common/config.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Config, ParsesKeyValues) {
  const Config c = Config::from_string("a = 1\nb= hello\n# comment\nc =2.5 # trailing\n");
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(c.get_double("c", 0.0), 2.5);
}

TEST(Config, Defaults) {
  const Config c = Config::from_string("");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_EQ(c.get_string("missing", "d"), "d");
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, Booleans) {
  const Config c = Config::from_string("t1=true\nt2=1\nt3=yes\nf1=false\nf2=off\n");
  EXPECT_TRUE(c.get_bool("t1", false));
  EXPECT_TRUE(c.get_bool("t2", false));
  EXPECT_TRUE(c.get_bool("t3", false));
  EXPECT_FALSE(c.get_bool("f1", true));
  EXPECT_FALSE(c.get_bool("f2", true));
}

TEST(Config, LaterKeysOverride) {
  const Config c = Config::from_string("k=1\nk=2\n");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::from_string("no equals sign"), ConfigError);
  EXPECT_THROW(Config::from_string("= value"), ConfigError);
}

TEST(Config, TypeErrorsThrow) {
  const Config c = Config::from_string("k = notanint\nb = maybe\n");
  EXPECT_THROW((void)c.get_int("k", 0), ConfigError);
  EXPECT_THROW((void)c.get_double("k", 0.0), ConfigError);
  EXPECT_THROW((void)c.get_bool("b", false), ConfigError);
}

TEST(Config, HexIntegers) {
  const Config c = Config::from_string("addr = 0x10\n");
  EXPECT_EQ(c.get_int("addr", 0), 16);
}

}  // namespace
}  // namespace mcm
