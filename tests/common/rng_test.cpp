#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(33), 33u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng r(11);
  int buckets[10] = {};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++buckets[static_cast<int>(r.next_double() * 10)];
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

}  // namespace
}  // namespace mcm
