// FrameArena lifetime semantics: reset reuses retained blocks with zero new
// heap traffic, oversized allocations take the dedicated-block growth path,
// finalizers run in reverse creation order, and the pmr front end feeds
// standard containers.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mcm::common {
namespace {

TEST(FrameArena, AllocationsAreDisjointAndAligned) {
  FrameArena arena(1024);
  auto* a = static_cast<std::uint64_t*>(arena.allocate_bytes(8, 8));
  auto* b = static_cast<std::uint64_t*>(arena.allocate_bytes(8, 8));
  ASSERT_NE(a, b);
  *a = 1;
  *b = 2;
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  auto* c = arena.allocate_bytes(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
}

TEST(FrameArena, ResetReusesBlocksWithoutGrowth) {
  FrameArena arena(4096);
  // Warm up: fill a bit more than one block so two blocks are retained.
  for (int i = 0; i < 40; ++i) (void)arena.allocate_bytes(128, 8);
  const std::size_t warm_blocks = arena.block_count();
  const std::size_t warm_capacity = arena.capacity_bytes();
  ASSERT_GE(warm_blocks, 2u);

  // Steady state: the same per-frame volume must never add a block.
  for (int frame = 0; frame < 100; ++frame) {
    arena.reset();
    EXPECT_EQ(arena.live_bytes(), 0u);
    for (int i = 0; i < 40; ++i) (void)arena.allocate_bytes(128, 8);
    EXPECT_EQ(arena.block_count(), warm_blocks);
    EXPECT_EQ(arena.capacity_bytes(), warm_capacity);
  }
  EXPECT_EQ(arena.resets(), 100u);
}

TEST(FrameArena, ResetRecyclesAddresses) {
  FrameArena arena(4096);
  void* first = arena.allocate_bytes(64, 8);
  arena.reset();
  void* again = arena.allocate_bytes(64, 8);
  EXPECT_EQ(first, again);  // same block, same bump offset
}

TEST(FrameArena, OversizedAllocationGetsDedicatedBlock) {
  FrameArena arena(1024);
  (void)arena.allocate_bytes(16, 8);
  // Far larger than the block size: the growth path must serve it whole.
  auto* big = static_cast<std::byte*>(arena.allocate_bytes(100 * 1024, 8));
  ASSERT_NE(big, nullptr);
  big[0] = std::byte{1};
  big[100 * 1024 - 1] = std::byte{2};
  EXPECT_GE(arena.capacity_bytes(), 100 * 1024u);

  // The oversized block is retained across resets like any other: a second
  // oversized frame reuses it instead of allocating again.
  const std::size_t cap = arena.capacity_bytes();
  arena.reset();
  (void)arena.allocate_bytes(100 * 1024, 8);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(FrameArena, FinalizersRunInReverseOrderOnReset) {
  std::vector<int> order;
  struct Tracked {
    std::vector<int>* order;
    int id;
    Tracked(std::vector<int>* o, int i) : order(o), id(i) {}
    ~Tracked() { order->push_back(id); }
  };
  FrameArena arena;
  arena.create<Tracked>(&order, 1);
  arena.create<Tracked>(&order, 2);
  arena.create<Tracked>(&order, 3);
  arena.reset();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));

  // A fresh frame's finalizers are independent of the first frame's.
  arena.create<Tracked>(&order, 4);
  arena.reset();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 4}));
}

TEST(FrameArena, FinalizersRunOnDestruction) {
  std::vector<int> order;
  struct Tracked {
    std::vector<int>* order;
    int id;
    Tracked(std::vector<int>* o, int i) : order(o), id(i) {}
    ~Tracked() { order->push_back(id); }
  };
  {
    FrameArena arena;
    arena.create<Tracked>(&order, 7);
  }
  EXPECT_EQ(order, (std::vector<int>{7}));
}

TEST(FrameArena, TriviallyDestructibleTypesRegisterNoFinalizer) {
  FrameArena arena;
  auto* p = arena.create<std::uint64_t>(42u);
  EXPECT_EQ(*p, 42u);
  arena.reset();  // must not try to "destroy" the integer
}

TEST(FrameArena, ServesPmrContainers) {
  FrameArena arena(4096);
  std::pmr::vector<std::uint64_t> v(&arena);
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  // Reallocation garbage stays in the arena; capacity reflects it.
  EXPECT_GT(arena.capacity_bytes(), 0u);
  v = std::pmr::vector<std::uint64_t>(&arena);  // drop before reset
  arena.reset();
  EXPECT_EQ(arena.live_bytes(), 0u);
}

TEST(FrameArena, ArenaEnabledFollowsEnvironment) {
  unsetenv("MCM_ARENA");
  EXPECT_TRUE(arena_enabled());
  setenv("MCM_ARENA", "off", 1);
  EXPECT_FALSE(arena_enabled());
  setenv("MCM_ARENA", "0", 1);
  EXPECT_FALSE(arena_enabled());
  setenv("MCM_ARENA", "heap", 1);
  EXPECT_FALSE(arena_enabled());
  setenv("MCM_ARENA", "on", 1);
  EXPECT_TRUE(arena_enabled());
  unsetenv("MCM_ARENA");
}

}  // namespace
}  // namespace mcm::common
