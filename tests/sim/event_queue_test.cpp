#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mcm::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(Time{30}, 3);
  q.push(Time{10}, 1);
  q.push(Time{20}, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StableForTies) {
  EventQueue<std::string> q;
  q.push(Time{5}, "first");
  q.push(Time{5}, "second");
  q.push(Time{5}, "third");
  EXPECT_EQ(q.pop().payload, "first");
  EXPECT_EQ(q.pop().payload, "second");
  EXPECT_EQ(q.pop().payload, "third");
}

TEST(EventQueue, SizeAndTop) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(Time{7}, 42);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.top().when, Time{7});
  EXPECT_EQ(q.top().payload, 42);
}

}  // namespace
}  // namespace mcm::sim
