#include "sim/clock.hpp"

#include <gtest/gtest.h>

namespace mcm::sim {
namespace {

TEST(Clock, EdgesAt400MHz) {
  const Clock c(Frequency{400.0});
  EXPECT_EQ(c.period().ps(), 2500);
  EXPECT_EQ(c.next_edge(Time{0}), Time{0});
  EXPECT_EQ(c.next_edge(Time{1}), Time{2500});
  EXPECT_EQ(c.next_edge(Time{2500}), Time{2500});
  EXPECT_EQ(c.edge_after(Time{2500}), Time{5000});
  EXPECT_EQ(c.edge_after(Time{2499}), Time{2500});
}

TEST(Clock, CycleConversions) {
  const Clock c(Frequency{200.0});
  EXPECT_EQ(c.cycles(3), Time::from_ns(15.0));
  EXPECT_EQ(c.cycles_for(Time::from_ns(15.0)), 3);
  EXPECT_EQ(c.cycles_for(Time::from_ns(15.1)), 4);  // ceil
  EXPECT_EQ(c.cycles_for(Time::zero()), 0);
}

TEST(Clock, NonIntegerPeriodStillMonotonic) {
  const Clock c(Frequency{533.0});  // 1876 ps period
  Time t = Time::zero();
  for (int i = 0; i < 100; ++i) {
    const Time e = c.edge_after(t);
    EXPECT_GT(e, t);
    EXPECT_EQ(e.ps() % c.period().ps(), 0);
    t = e;
  }
}

}  // namespace
}  // namespace mcm::sim
