#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "load/trace.hpp"

namespace mcm::workload {
namespace {

GeneratorParams small_params() {
  GeneratorParams p;
  p.name = "g";
  p.base = 0x10000;
  p.window_bytes = 1024;  // 64 slots at 16 B
  p.bytes = 2048;         // 128 requests (two laps)
  p.burst_bytes = 16;
  p.seed = 5;
  return p;
}

std::vector<ctrl::Request> drain(load::TrafficSource& src) {
  std::vector<ctrl::Request> out;
  while (!src.done()) {
    out.push_back(src.head());
    src.advance();
  }
  return out;
}

TEST(Generators, FactoryKnowsAllKindsAndRejectsUnknown) {
  for (const char* kind :
       {"sequential", "strided", "pointer_chase", "uniform_random"}) {
    auto gen = make_generator(kind, small_params());
    ASSERT_NE(gen, nullptr) << kind;
    EXPECT_EQ(gen->request_count(), 128u);
    EXPECT_EQ(gen->total_bytes(), 2048u);
  }
  EXPECT_EQ(make_generator("zipfian", small_params()), nullptr);
}

TEST(Generators, SameSeedSameStream) {
  for (const char* kind :
       {"sequential", "strided", "pointer_chase", "uniform_random"}) {
    auto a = drain(*make_generator(kind, small_params()));
    auto b = drain(*make_generator(kind, small_params()));
    ASSERT_EQ(a.size(), b.size()) << kind;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].addr, b[i].addr) << kind << " @ " << i;
      EXPECT_EQ(a[i].is_write, b[i].is_write) << kind << " @ " << i;
    }
  }
}

TEST(Generators, SequentialStreamsAndWraps) {
  auto reqs = drain(*make_generator("sequential", small_params()));
  ASSERT_EQ(reqs.size(), 128u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].addr, 0x10000 + (i % 64) * 16);
  }
}

TEST(Generators, StridedAdvancesByStride) {
  GeneratorParams p = small_params();
  p.stride_bytes = 64;  // 4 slots
  auto reqs = drain(*make_generator("strided", std::move(p)));
  EXPECT_EQ(reqs[0].addr, 0x10000u);
  EXPECT_EQ(reqs[1].addr, 0x10040u);
  EXPECT_EQ(reqs[2].addr, 0x10080u);
}

TEST(Generators, PointerChaseVisitsEverySlotOncePerLap) {
  // Full-period LCG: one lap over a power-of-two window touches every slot
  // exactly once, in an order that is not sequential.
  GeneratorParams p = small_params();
  p.window_bytes = 1024;  // 64 slots, already a power of two
  p.bytes = 1024;         // exactly one lap
  auto reqs = drain(*make_generator("pointer_chase", std::move(p)));
  ASSERT_EQ(reqs.size(), 64u);
  std::set<std::uint64_t> seen;
  bool sequential = true;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].addr, 0x10000u);
    EXPECT_LT(reqs[i].addr, 0x10000u + 1024u);
    seen.insert(reqs[i].addr);
    if (i > 0 && reqs[i].addr != reqs[i - 1].addr + 16) sequential = false;
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_FALSE(sequential);
}

TEST(Generators, UniformRandomStaysInWindow) {
  auto reqs = drain(*make_generator("uniform_random", small_params()));
  for (const auto& r : reqs) {
    EXPECT_GE(r.addr, 0x10000u);
    EXPECT_LT(r.addr, 0x10000u + 1024u);
    EXPECT_EQ(r.addr % 16, 0u);  // burst aligned
  }
}

TEST(Generators, WriteFractionEndpoints) {
  GeneratorParams p = small_params();
  p.write_fraction = 0.0;
  for (const auto& r : drain(*make_generator("sequential", p))) {
    EXPECT_FALSE(r.is_write);
  }
  p.write_fraction = 1.0;
  for (const auto& r : drain(*make_generator("sequential", p))) {
    EXPECT_TRUE(r.is_write);
  }
}

TEST(Generators, MixedWriteFractionIsRoughlyHonoredAndSeedStable) {
  GeneratorParams p = small_params();
  p.bytes = 16 * 4096;  // 4096 requests
  p.write_fraction = 0.25;
  auto reqs = drain(*make_generator("uniform_random", p));
  std::size_t writes = 0;
  for (const auto& r : reqs) writes += r.is_write ? 1 : 0;
  EXPECT_GT(writes, reqs.size() / 5);
  EXPECT_LT(writes, reqs.size() / 3);
  // Direction draws are independent of the address pattern: the same seed
  // under a different pattern yields the same direction sequence.
  auto reqs2 = drain(*make_generator("sequential", p));
  ASSERT_EQ(reqs.size(), reqs2.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].is_write, reqs2[i].is_write) << i;
  }
}

TEST(Generators, UnpacedArrivalsStayAtStart) {
  auto gen = make_generator("sequential", small_params());
  gen->set_start(Time{777});
  for (const auto& r : drain(*gen)) EXPECT_EQ(r.arrival, Time{777});
}

TEST(Generators, PacingSpreadsArrivalsOverDuration) {
  auto gen = make_generator("sequential", small_params());
  gen->set_pacing(Time{127'000});  // 128 requests -> 1000 ps apart
  auto reqs = drain(*gen);
  ASSERT_EQ(reqs.size(), 128u);
  EXPECT_EQ(reqs.front().arrival, Time::zero());
  EXPECT_EQ(reqs.back().arrival, Time{127'000});
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].arrival - reqs[i - 1].arrival, Time{1000});
  }
}

TEST(Generators, RejectsZeroBurst) {
  GeneratorParams p = small_params();
  p.burst_bytes = 0;
  EXPECT_THROW((void)make_generator("sequential", std::move(p)),
               std::invalid_argument);
}

TEST(Generators, AddressesStayBelowPackedWriteBit) {
  GeneratorParams p = small_params();
  p.base = load::kMaxTraceAddr - (1 << 20);
  p.window_bytes = 1 << 19;
  auto reqs = drain(*make_generator("uniform_random", std::move(p)));
  for (const auto& r : reqs) EXPECT_LE(r.addr, load::kMaxTraceAddr);
}

}  // namespace
}  // namespace mcm::workload
