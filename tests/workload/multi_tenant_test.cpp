#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

#include "load/trace.hpp"
#include "verify/differ.hpp"
#include "verify/workload_scenario.hpp"
#include "workload/composer.hpp"
#include "workload/workload.hpp"

#ifndef MCM_WORKLOAD_DIR
#define MCM_WORKLOAD_DIR "."
#endif

namespace mcm::workload {
namespace {

/// A small but genuinely mixed scenario: one video level, one replayed
/// trace (written to a temp file), one synthetic generator.
class SmallMixedWorkload : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST_F as its own process in
    // parallel, and a shared path lets one test's TearDown unlink the
    // trace while a sibling is still reading it.
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    trace_path_ = testing::TempDir() + "mcm_multi_tenant_" +
                  std::string(info->name()) + ".trace";
    std::ofstream trace(trace_path_);
    trace << "0 R 0x0\n0 W 0x1000\n100 R 0x2000\n200 R 0x0\n";
    trace.close();

    spec_.name = "small_mixed";
    spec_.channels = 4;
    spec_.frames = 2;
    TenantSpec video;
    video.name = "cam";
    video.kind = "video";
    video.level = "3.1";
    video.max_requests = 600;
    video.pace_ps = 10'000'000'000;
    TenantSpec trace_tenant;
    trace_tenant.name = "replay";
    trace_tenant.kind = "trace";
    trace_tenant.path = trace_path_;
    trace_tenant.pace_ps = 5'000'000'000;
    TenantSpec gen;
    gen.name = "chaser";
    gen.kind = "generator";
    gen.generator = "pointer_chase";
    gen.window_bytes = 1 << 16;
    gen.bytes = 1 << 14;
    gen.write_fraction = 0.5;
    gen.seed = 3;
    gen.pace_ps = 10'000'000'000;
    spec_.tenants = {video, trace_tenant, gen};
  }

  void TearDown() override { std::remove(trace_path_.c_str()); }

  std::string trace_path_;
  WorkloadSpec spec_;
};

TEST_F(SmallMixedWorkload, PartitionsAreDisjointAlignedAndSized) {
  const auto compiled = compile_workload(spec_);
  ASSERT_EQ(compiled.tenants.size(), 3u);
  const std::uint64_t align = 64 * 1024;
  std::uint64_t prev_end = 0;
  for (const auto& t : compiled.tenants) {
    EXPECT_EQ(t.partition_base % align, 0u) << t.name;
    EXPECT_EQ(t.partition_bytes % align, 0u) << t.name;
    EXPECT_GT(t.partition_bytes, 0u) << t.name;
    EXPECT_GE(t.partition_base, prev_end) << t.name;  // no overlap
    prev_end = t.partition_base + t.partition_bytes;
  }
}

TEST_F(SmallMixedWorkload, RequestsLandInsideTheirPartition) {
  const auto compiled = compile_workload(spec_);
  // The composed stage holds every tenant's requests; each rebased address
  // must fall inside exactly one tenant's partition, and every tenant must
  // show up.
  ASSERT_EQ(compiled.frame->stages.size(), 1u);
  std::set<std::size_t> hit;
  for (const std::uint64_t packed : compiled.frame->stages[0].reqs) {
    const std::uint64_t addr = packed & load::kMaxTraceAddr;
    bool inside_someone = false;
    for (std::size_t i = 0; i < compiled.tenants.size(); ++i) {
      const auto& t = compiled.tenants[i];
      if (addr >= t.partition_base && addr < t.partition_base + t.partition_bytes) {
        hit.insert(i);
        inside_someone = true;
        break;
      }
    }
    EXPECT_TRUE(inside_someone) << "stray address 0x" << std::hex << addr;
  }
  EXPECT_EQ(hit.size(), compiled.tenants.size());
}

TEST_F(SmallMixedWorkload, TotalsAreTheSumOfTenantContributions) {
  const auto compiled = compile_workload(spec_);
  std::uint64_t requests = 0, bytes = 0;
  for (const auto& t : compiled.tenants) {
    requests += t.requests;
    bytes += t.bytes;
  }
  EXPECT_EQ(compiled.total_requests, requests);
  EXPECT_EQ(compiled.frame->stages[0].reqs.size(), requests);
  EXPECT_EQ(requests * compiled.burst_bytes, bytes);
  // The trace tenant contributes exactly its 4 recorded requests; the
  // generator exactly bytes / burst.
  EXPECT_EQ(compiled.tenants[1].requests, 4u);
  EXPECT_EQ(compiled.tenants[2].requests,
            (std::uint64_t{1} << 14) / compiled.burst_bytes);
}

TEST_F(SmallMixedWorkload, ExplicitPartitionsAreHonoredAndOverflowRejected) {
  spec_.tenants[2].partition_bytes = 1 << 20;
  const auto compiled = compile_workload(spec_);
  EXPECT_EQ(compiled.tenants[2].partition_bytes, std::uint64_t{1} << 20);

  WorkloadSpec huge = spec_;
  huge.tenants[0].partition_bytes = std::uint64_t{1} << 62;
  huge.tenants[1].partition_bytes = std::uint64_t{1} << 62;
  EXPECT_THROW((void)compile_workload(huge), std::invalid_argument);
}

TEST_F(SmallMixedWorkload, ByteIdenticalReportsAcrossSimThreads) {
  // The acceptance bar: the composed scenario simulates deterministically -
  // exported reports are byte-identical at MCM_SIM_THREADS 1, 2 and 8.
  auto report_bytes = [this](int threads) {
    WorkloadSpec s = spec_;
    s.sim_threads = threads;
    const auto run = run_workload(s);
    obs::RunReport report("det");
    export_workload_report(report, s, run);
    std::ostringstream out;
    report.write(out);
    return out.str();
  };
  const std::string one = report_bytes(1);
  EXPECT_EQ(report_bytes(2), one);
  EXPECT_EQ(report_bytes(8), one);
  EXPECT_NE(one.find("\"meets_realtime\""), std::string::npos);
}

TEST_F(SmallMixedWorkload, LegacyFeedAgreesWithShardedEngine) {
  const auto sharded = run_workload(spec_);
  WorkloadSpec legacy_spec = spec_;
  legacy_spec.legacy_feed = true;
  const auto legacy = run_workload(legacy_spec);
  EXPECT_EQ(sharded.sim.access_time, legacy.sim.access_time);
  EXPECT_EQ(sharded.sim.stats.bytes, legacy.sim.stats.bytes);
  EXPECT_EQ(sharded.sim.stats.row_hits, legacy.sim.stats.row_hits);
}

TEST_F(SmallMixedWorkload, CleanUnderTheDifferentialVerifier) {
  // The composed multi-tenant stream, bridged into an mcm.repro/v1
  // scenario, must show no divergence between the production engine and
  // the golden reference model.
  spec_.frames = 1;
  spec_.sim_threads = 2;
  const auto divergence = verify::diff_scenario(verify::scenario_from_workload(spec_));
  EXPECT_FALSE(divergence.has_value()) << *divergence;
}

TEST_F(SmallMixedWorkload, RecordedStreamReplaysThroughEveryFormat) {
  const auto recorded = record_workload(spec_);
  ASSERT_FALSE(recorded.empty());
  // Merge-order arrivals are non-decreasing, so the stream is a valid
  // trace in every format that carries timestamps.
  for (std::size_t i = 1; i < recorded.size(); ++i) {
    EXPECT_GE(recorded[i].arrival, recorded[i - 1].arrival) << i;
  }
  std::stringstream ss;
  load::write_trace(ss, recorded);
  EXPECT_EQ(load::read_trace(ss).size(), recorded.size());
}

TEST(MixedTenantSource, MergesByArrivalWithIndexTieBreak) {
  std::vector<std::unique_ptr<load::TrafficSource>> tenants;
  tenants.push_back(std::make_unique<load::TraceReplaySource>(
      std::vector<ctrl::Request>{{0x10, false, Time{100}, 1},
                                 {0x20, false, Time{300}, 1}},
      "a"));
  tenants.push_back(std::make_unique<load::TraceReplaySource>(
      std::vector<ctrl::Request>{{0x30, true, Time{100}, 2},
                                 {0x40, true, Time{200}, 2}},
      "b"));
  MixedTenantSource mixed("mix", std::move(tenants));
  EXPECT_EQ(mixed.tenant_count(), 2u);
  EXPECT_EQ(mixed.total_bytes(), 4 * 16u);

  std::vector<std::uint64_t> order;
  while (!mixed.done()) {
    order.push_back(mixed.head().addr);
    mixed.advance();
  }
  // t=100 tie goes to tenant 0 first, then tenant 1; t=200 from tenant 1
  // interleaves before tenant 0's t=300.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0x10, 0x30, 0x40, 0x20}));
}

TEST(MixedTenants, CommittedScenarioMatchesGoldenReport) {
  // End-to-end pin: the committed mixed_tenants scenario, run through
  // compile + simulate + export, reproduces the committed golden report
  // byte for byte (the CI workload-smoke job checks the same invariant
  // through the mcm_trace CLI).
  std::string error;
  const auto spec = load_workload(
      std::string(MCM_WORKLOAD_DIR) + "/mixed_tenants.workload.json", &error);
  ASSERT_TRUE(spec.has_value()) << error;

  const auto run = run_workload(*spec);
  obs::RunReport report("workload_" + spec->name);
  export_workload_report(report, *spec, run);
  std::ostringstream produced;
  report.write(produced);

  std::ifstream golden_file(std::string(MCM_WORKLOAD_DIR) +
                            "/mixed_tenants.report.json");
  ASSERT_TRUE(golden_file.good());
  std::stringstream golden;
  golden << golden_file.rdbuf();
  EXPECT_EQ(produced.str(), golden.str());
}

}  // namespace
}  // namespace mcm::workload
