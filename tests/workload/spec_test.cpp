#include "workload/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#ifndef MCM_WORKLOAD_DIR
#define MCM_WORKLOAD_DIR "."
#endif

namespace mcm::workload {
namespace {

WorkloadSpec three_tenant_spec() {
  WorkloadSpec s;
  s.name = "t3";
  s.channels = 2;
  s.freq_mhz = 333;
  s.frames = 2;
  s.period_ps = 1'000'000;
  TenantSpec video;
  video.name = "cam";
  video.kind = "video";
  video.level = "3.2";
  video.max_requests = 100;
  video.pace_ps = 500;
  TenantSpec trace;
  trace.name = "replay";
  trace.kind = "trace";
  trace.path = "some/trace.tracebin";
  trace.format = "binary";
  TenantSpec gen;
  gen.name = "rnd";
  gen.kind = "generator";
  gen.generator = "uniform_random";
  gen.window_bytes = 4096;
  gen.bytes = 8192;
  gen.write_fraction = 0.5;
  gen.seed = 9;
  s.tenants = {video, trace, gen};
  return s;
}

TEST(WorkloadSpec, JsonRoundTripIsExact) {
  const WorkloadSpec original = three_tenant_spec();
  std::string error;
  const auto parsed = workload_from_json(workload_to_json(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, original);
}

TEST(WorkloadSpec, RejectsMissingSchema) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["name"] = "x";
  std::string error;
  EXPECT_FALSE(workload_from_json(doc, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(WorkloadSpec, RejectsBadTenants) {
  const auto parse_with = [](auto mutate) {
    WorkloadSpec s = three_tenant_spec();
    mutate(s);
    std::string error;
    const auto parsed = workload_from_json(workload_to_json(s), &error);
    return std::pair{parsed.has_value(), error};
  };
  auto [ok1, e1] = parse_with([](WorkloadSpec& s) { s.tenants[0].level = "9.9"; });
  EXPECT_FALSE(ok1);
  EXPECT_NE(e1.find("level"), std::string::npos);
  auto [ok2, e2] = parse_with([](WorkloadSpec& s) { s.tenants[1].path.clear(); });
  EXPECT_FALSE(ok2);
  EXPECT_NE(e2.find("path"), std::string::npos);
  auto [ok3, e3] =
      parse_with([](WorkloadSpec& s) { s.tenants[2].generator = "zipf"; });
  EXPECT_FALSE(ok3);
  EXPECT_NE(e3.find("generator"), std::string::npos);
  auto [ok4, e4] = parse_with([](WorkloadSpec& s) { s.tenants[2].kind = "gpu"; });
  EXPECT_FALSE(ok4);
  EXPECT_NE(e4.find("kind"), std::string::npos);
  auto [ok5, e5] =
      parse_with([](WorkloadSpec& s) { s.tenants[2].write_fraction = 1.5; });
  EXPECT_FALSE(ok5);
  EXPECT_NE(e5.find("write_fraction"), std::string::npos);
}

TEST(WorkloadSpec, RejectsBadSystem) {
  WorkloadSpec s = three_tenant_spec();
  s.channels = 0;
  EXPECT_FALSE(workload_from_json(workload_to_json(s)).has_value());
  s = three_tenant_spec();
  s.device = "hbm9";
  EXPECT_FALSE(workload_from_json(workload_to_json(s)).has_value());
  s = three_tenant_spec();
  s.tenants.clear();
  EXPECT_FALSE(workload_from_json(workload_to_json(s)).has_value());
}

TEST(WorkloadSpec, CacheKeyTracksStreamAffectingFields) {
  const WorkloadSpec a = three_tenant_spec();
  WorkloadSpec b = a;
  EXPECT_EQ(a.cache_key(), b.cache_key());
  b.tenants[2].seed = 10;
  EXPECT_NE(a.cache_key(), b.cache_key());
  WorkloadSpec c = a;
  c.channels = 8;  // partition layout changes with the system shape
  EXPECT_NE(a.cache_key(), c.cache_key());
  WorkloadSpec d = a;
  d.sim_threads = 4;  // engine knob: same stream, same key
  EXPECT_EQ(a.cache_key(), d.cache_key());
}

TEST(WorkloadSpec, ParseLevelKnowsTheTableIColumns) {
  EXPECT_TRUE(parse_level("3.1").has_value());
  EXPECT_TRUE(parse_level("5.2").has_value());
  EXPECT_FALSE(parse_level("6.2").has_value());
}

TEST(WorkloadSpec, LoadResolvesTracePathsRelativeToSpecDir) {
  const std::string dir = testing::TempDir();
  const std::string trace_path = dir + "rel_sample.trace";
  {
    std::ofstream trace(trace_path);
    trace << "0 R 0x100 0\n";
  }
  WorkloadSpec s = three_tenant_spec();
  s.tenants[1].path = "rel_sample.trace";
  s.tenants[1].format = "auto";
  const std::string spec_path = dir + "rel_spec.workload.json";
  ASSERT_TRUE(save_workload(s, spec_path));

  std::string error;
  const auto loaded = load_workload(spec_path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->tenants[1].path, trace_path);
  std::remove(trace_path.c_str());
  std::remove(spec_path.c_str());
}

TEST(WorkloadSpec, CommittedMixedTenantScenarioParses) {
  // The committed scenario must stay loadable and keep the acceptance
  // shape: >= 3 tenants covering all three kinds.
  std::string error;
  const auto spec = load_workload(
      std::string(MCM_WORKLOAD_DIR) + "/mixed_tenants.workload.json", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_GE(spec->tenants.size(), 3u);
  bool has_video = false, has_trace = false, has_generator = false;
  for (const auto& t : spec->tenants) {
    has_video |= t.kind == "video";
    has_trace |= t.kind == "trace";
    has_generator |= t.kind == "generator";
  }
  EXPECT_TRUE(has_video);
  EXPECT_TRUE(has_trace);
  EXPECT_TRUE(has_generator);
  // The trace path resolved against the workloads/ directory.
  EXPECT_NE(spec->tenants[1].path.find("workloads/"), std::string::npos);
}

}  // namespace
}  // namespace mcm::workload
