#include "workload/trace_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace mcm::workload {
namespace {

std::vector<ctrl::Request> sample_requests() {
  return {
      {0x1000, false, Time{0}, 1},
      {0x2010, true, Time{2500}, 2},
      {0xdeadbeef0, false, Time{123456789}, 0},
  };
}

void expect_equal(const std::vector<ctrl::Request>& a,
                  const std::vector<ctrl::Request>& b, bool with_time = true) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << i;
    EXPECT_EQ(a[i].is_write, b[i].is_write) << i;
    if (with_time) {
      EXPECT_EQ(a[i].arrival, b[i].arrival) << i;
      EXPECT_EQ(a[i].source, b[i].source) << i;
    }
  }
}

/// Temp file helper: unique path per test, removed on destruction.
struct TempFile {
  explicit TempFile(const std::string& suffix) {
    path = testing::TempDir() + "mcm_trace_format_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           suffix;
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(TraceFormat, NamesRoundTrip) {
  for (const auto f :
       {TraceFormat::kMcmText, TraceFormat::kRamulator, TraceFormat::kBinary}) {
    EXPECT_EQ(parse_trace_format(to_string(f)), f);
  }
  EXPECT_EQ(parse_trace_format("text"), TraceFormat::kMcmText);
  EXPECT_EQ(parse_trace_format("dramsim"), TraceFormat::kRamulator);
  EXPECT_EQ(parse_trace_format("bin"), TraceFormat::kBinary);
  EXPECT_FALSE(parse_trace_format("protobuf").has_value());
}

TEST(TraceFormat, BinaryRoundTripsExactly) {
  const auto original = sample_requests();
  std::stringstream ss;
  write_binary_trace(ss, original);
  expect_equal(read_binary_trace(ss), original);
}

TEST(TraceFormat, BinaryRandomStreamsRoundTrip) {
  Rng rng(42);
  std::vector<ctrl::Request> original;
  std::int64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    ctrl::Request r;
    t += static_cast<std::int64_t>(rng.next_below(100'000));
    r.arrival = Time{t};
    r.addr = rng.next_u64() & load::kMaxTraceAddr;
    r.is_write = rng.next_below(2) == 1;
    r.source = static_cast<std::uint16_t>(rng.next_below(100));
    original.push_back(r);
  }
  std::stringstream ss;
  write_binary_trace(ss, original);
  expect_equal(read_binary_trace(ss), original);
}

TEST(TraceFormat, BinaryWriterPatchesRecordCount) {
  std::stringstream ss;
  {
    BinaryTraceWriter writer(ss);
    for (const auto& r : sample_requests()) writer.append(r);
    writer.finish();
    EXPECT_EQ(writer.written(), 3u);
  }
  BinaryTraceReader reader(ss);
  EXPECT_EQ(reader.header().record_count, 3u);
}

TEST(TraceFormat, BinaryHeaderIs32BytesAndRecords24) {
  std::stringstream ss;
  write_binary_trace(ss, sample_requests());
  EXPECT_EQ(ss.str().size(), BinaryTraceHeader::kHeaderBytes +
                                 3 * BinaryTraceHeader::kRecordBytes);
  EXPECT_EQ(ss.str().substr(0, 8), "MCMTRCB1");
}

TEST(TraceFormat, BinaryReaderRejectsBadMagic) {
  std::stringstream ss("XXMTRCB1 definitely not a trace");
  EXPECT_THROW(BinaryTraceReader reader(ss), load::TraceError);
}

TEST(TraceFormat, BinaryReaderRejectsTruncatedRecord) {
  std::stringstream ss;
  write_binary_trace(ss, sample_requests());
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 5);  // chop the tail of the last record
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)read_binary_trace(truncated), load::TraceError);
}

TEST(TraceFormat, BinaryWriterRejectsOutOfRangeAndBackwards) {
  std::stringstream ss;
  BinaryTraceWriter writer(ss);
  writer.append({0x10, false, Time{100}, 0});
  EXPECT_THROW(writer.append({std::uint64_t{1} << 63, false, Time{200}, 0}),
               load::TraceError);
  EXPECT_THROW(writer.append({0x10, false, Time{50}, 0}), load::TraceError);
}

TEST(TraceFormat, RamulatorRoundTripsAddressesAndDirections) {
  const auto original = sample_requests();
  std::stringstream ss;
  write_ramulator_trace(ss, original);
  const auto parsed = read_ramulator_trace(ss);
  expect_equal(parsed, original, /*with_time=*/false);
  for (const auto& r : parsed) {
    EXPECT_EQ(r.arrival, Time::zero());  // the format carries no timestamps
    EXPECT_EQ(r.source, 0);
  }
}

TEST(TraceFormat, RamulatorAcceptsCommonAliases) {
  std::stringstream ss("0x100 RD\n0x200 write\n768 R\n");
  const auto parsed = read_ramulator_trace(ss);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_FALSE(parsed[0].is_write);
  EXPECT_TRUE(parsed[1].is_write);
  EXPECT_EQ(parsed[2].addr, 768u);  // decimal addresses allowed
}

TEST(TraceFormat, RamulatorRejectsMalformedLines) {
  std::stringstream bad1("0x100 R extra\n");
  EXPECT_THROW((void)read_ramulator_trace(bad1), load::TraceError);
  std::stringstream bad2("0x100 X\n");
  EXPECT_THROW((void)read_ramulator_trace(bad2), load::TraceError);
  std::stringstream bad3("0x100\n");
  EXPECT_THROW((void)read_ramulator_trace(bad3), load::TraceError);
}

TEST(TraceFormat, DetectsAllThreeFormats) {
  TempFile text(".trace"), ram(".ramtrace"), bin(".tracebin");
  const auto reqs = sample_requests();
  write_trace_file(text.path, TraceFormat::kMcmText, reqs);
  write_trace_file(ram.path, TraceFormat::kRamulator, reqs);
  write_trace_file(bin.path, TraceFormat::kBinary, reqs);
  EXPECT_EQ(detect_trace_format(text.path), TraceFormat::kMcmText);
  EXPECT_EQ(detect_trace_format(ram.path), TraceFormat::kRamulator);
  EXPECT_EQ(detect_trace_format(bin.path), TraceFormat::kBinary);
}

TEST(TraceFormat, FileRoundTripAcrossAllFormatsIsLossless) {
  // A stream with zero arrivals and zero sources survives the full
  // text -> binary -> ramulator -> text tour byte-exactly (this is the
  // property the committed workloads/sample.trace relies on).
  std::vector<ctrl::Request> original;
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    original.push_back(
        {rng.next_below(1 << 20) * 16, rng.next_below(3) == 0, Time{0}, 0});
  }
  TempFile text(".trace"), bin(".tracebin"), ram(".ramtrace");
  write_trace_file(text.path, TraceFormat::kMcmText, original);
  write_trace_file(bin.path, TraceFormat::kBinary, read_trace_file(text.path));
  write_trace_file(ram.path, TraceFormat::kRamulator, read_trace_file(bin.path));
  expect_equal(read_trace_file(ram.path), original);
}

TEST(TraceFormat, ReadTraceFileHonorsExplicitFormat) {
  // A ramulator-style file read as mcm-text must fail loudly, not
  // silently misparse.
  TempFile ram(".dat");
  write_trace_file(ram.path, TraceFormat::kRamulator, sample_requests());
  EXPECT_THROW((void)read_trace_file(ram.path, TraceFormat::kMcmText),
               load::TraceError);
  EXPECT_EQ(read_trace_file(ram.path, TraceFormat::kRamulator).size(), 3u);
  EXPECT_EQ(read_trace_file(ram.path).size(), 3u);  // sniffed
}

TEST(TraceFormat, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/trace.bin"), load::TraceError);
  EXPECT_THROW((void)detect_trace_format("/nonexistent/trace.bin"),
               load::TraceError);
}

}  // namespace
}  // namespace mcm::workload
