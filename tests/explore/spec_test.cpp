#include "explore/spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcm::explore {
namespace {

TEST(ExperimentSpec, PaperGridMatchesTheEvaluation) {
  const auto spec = ExperimentSpec::paper_grid();
  EXPECT_EQ(spec.size(), 5u * 4u * 6u);  // levels x channels x frequencies
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 120u);
  // Fixed nesting order: level outermost, then channels, then frequency.
  EXPECT_EQ(points[0].level, video::H264Level::k31);
  EXPECT_EQ(points[0].channels, 1u);
  EXPECT_EQ(points[0].freq_mhz, 200.0);
  EXPECT_EQ(points[1].freq_mhz, 266.0);
  EXPECT_EQ(points[6].channels, 2u);
  EXPECT_EQ(points[24].level, video::H264Level::k32);
  // Paper-default policies on every point.
  for (const auto& p : points) {
    EXPECT_EQ(p.page_policy, ctrl::PagePolicy::kOpen);
    EXPECT_EQ(p.scheduler, ctrl::SchedulerPolicy::kFrFcfs);
    EXPECT_EQ(p.interleave_bytes, 16u);
    EXPECT_EQ(p.mux, ctrl::AddressMux::kRBC);
  }
}

TEST(ExperimentSpec, FromConfigParsesAxesAndBase) {
  const auto cfg = Config::from_string(R"(
    grid.levels = 3.1, 4.0
    grid.channels = 2, 4
    grid.freq_mhz = 266, 400
    grid.page_policy = open, closed
    grid.scheduler = fcfs
    grid.interleave_bytes = 64
    grid.address_mux = RBC-XOR
    base.seed = 7
    base.frames = 2
    base.queue_depth = 16
    # orchestrator keys are ignored by the spec parser
    screen.enabled = true
    threads = 3
  )");
  const auto spec = ExperimentSpec::from_config(cfg);
  EXPECT_EQ(spec.levels,
            (std::vector{video::H264Level::k31, video::H264Level::k40}));
  EXPECT_EQ(spec.channels, (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(spec.freq_mhz, (std::vector<double>{266, 400}));
  EXPECT_EQ(spec.page_policies,
            (std::vector{ctrl::PagePolicy::kOpen, ctrl::PagePolicy::kClosed}));
  EXPECT_EQ(spec.schedulers, (std::vector{ctrl::SchedulerPolicy::kFcfs}));
  EXPECT_EQ(spec.interleave_bytes, (std::vector<std::uint32_t>{64}));
  EXPECT_EQ(spec.address_muxes, (std::vector{ctrl::AddressMux::kRBCXor}));
  EXPECT_EQ(spec.base_seed, 7u);
  EXPECT_EQ(spec.base.sim.frames, 2);
  EXPECT_EQ(spec.base.base.controller.queue_depth, 16u);
  EXPECT_EQ(spec.size(), 2u * 2u * 2u * 2u);
}

TEST(ExperimentSpec, LevelsAllKeyword) {
  const auto spec =
      ExperimentSpec::from_config(Config::from_string("grid.levels = all"));
  EXPECT_EQ(spec.levels.size(), video::kAllLevels.size());
}

TEST(ExperimentSpec, RejectsUnknownAndMalformedKeys) {
  EXPECT_THROW(ExperimentSpec::from_config(
                   Config::from_string("grid.voltage = 1.2")),
               ConfigError);
  EXPECT_THROW(
      ExperimentSpec::from_config(Config::from_string("base.bogus = 1")),
      ConfigError);
  EXPECT_THROW(ExperimentSpec::from_config(
                   Config::from_string("grid.levels = 9.9")),
               ConfigError);
  EXPECT_THROW(ExperimentSpec::from_config(
                   Config::from_string("grid.channels = 2,,4")),
               ConfigError);
  EXPECT_THROW(ExperimentSpec::from_config(
                   Config::from_string("grid.channels = -2")),
               ConfigError);
  EXPECT_THROW(ExperimentSpec::from_config(
                   Config::from_string("grid.page_policy = half-open")),
               ConfigError);
}

TEST(ExperimentSpec, EmptyAxisRefusesToExpand) {
  ExperimentSpec spec;
  spec.channels.clear();
  EXPECT_EQ(spec.size(), 0u);
  EXPECT_THROW(static_cast<void>(spec.expand()), ConfigError);
}

TEST(ExplorePoint, SeedDerivesFromCoordinatesNotPosition) {
  const auto points = ExperimentSpec::paper_grid().expand();
  // All seeds distinct across the grid, none zero.
  std::set<std::uint64_t> seeds;
  for (const auto& p : points) {
    const std::uint64_t s = p.seed(1);
    EXPECT_NE(s, 0u);
    seeds.insert(s);
  }
  EXPECT_EQ(seeds.size(), points.size());

  // The same coordinates give the same seed regardless of which grid (or
  // position) they came from.
  ExperimentSpec small;
  small.levels = {video::H264Level::k40};
  small.channels = {4};
  small.freq_mhz = {400.0};
  const auto one = small.expand();
  ASSERT_EQ(one.size(), 1u);
  bool found = false;
  for (const auto& p : points) {
    if (p == one[0]) {
      EXPECT_EQ(p.seed(1), one[0].seed(1));
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Base seed feeds the chain.
  EXPECT_NE(one[0].seed(1), one[0].seed(2));
}

TEST(ExplorePoint, LabelNamesCoordinates) {
  ExplorePoint p;
  p.level = video::H264Level::k40;
  p.channels = 4;
  p.freq_mhz = 400.0;
  EXPECT_EQ(p.label(), "L4/4ch/400MHz");
  p.page_policy = ctrl::PagePolicy::kClosed;
  p.interleave_bytes = 64;
  EXPECT_EQ(p.label(), "L4/4ch/400MHz/closed/64B");
}

TEST(ExperimentSpec, SplitListTrimsAndRejectsEmpties) {
  EXPECT_EQ(split_list("a, b ,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("one"), (std::vector<std::string>{"one"}));
  EXPECT_THROW(split_list(""), ConfigError);
  EXPECT_THROW(split_list("a,,b"), ConfigError);
  EXPECT_THROW(split_list("a,"), ConfigError);
}

}  // namespace
}  // namespace mcm::explore
