#include "explore/pareto.hpp"

#include <gtest/gtest.h>

namespace mcm::explore {
namespace {

TEST(ParetoFrontier, KeepsOnlyNonDominatedFeasiblePoints) {
  const std::vector<ParetoInput> pts = {
      {.access_ms = 10, .power_mw = 100, .feasible = true},  // 0: frontier
      {.access_ms = 5, .power_mw = 200, .feasible = true},   // 1: frontier
      {.access_ms = 12, .power_mw = 150, .feasible = true},  // 2: dominated by 0
      {.access_ms = 20, .power_mw = 300, .feasible = true},  // 3: dominated
      {.access_ms = 1, .power_mw = 1, .feasible = false},    // 4: infeasible
      {.access_ms = 3, .power_mw = 400, .feasible = true},   // 5: frontier
  };
  EXPECT_EQ(pareto_frontier(pts), (std::vector<std::size_t>{0, 1, 5}));
}

TEST(ParetoFrontier, ExactTiesAllStayOnTheFrontier) {
  const std::vector<ParetoInput> pts = {
      {.access_ms = 10, .power_mw = 100, .feasible = true},
      {.access_ms = 10, .power_mw = 100, .feasible = true},  // identical twin
      {.access_ms = 10, .power_mw = 101, .feasible = true},  // dominated
  };
  EXPECT_EQ(pareto_frontier(pts), (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFrontier, EqualOnOneAxisDominatesWhenBetterOnTheOther) {
  const std::vector<ParetoInput> pts = {
      {.access_ms = 10, .power_mw = 100, .feasible = true},
      {.access_ms = 10, .power_mw = 90, .feasible = true},
  };
  EXPECT_EQ(pareto_frontier(pts), (std::vector<std::size_t>{1}));
}

TEST(ParetoFrontier, AllInfeasibleGivesEmptyFrontier) {
  const std::vector<ParetoInput> pts = {
      {.access_ms = 10, .power_mw = 100, .feasible = false},
      {.access_ms = 5, .power_mw = 200, .feasible = false},
  };
  EXPECT_TRUE(pareto_frontier(pts).empty());
}

TEST(ParetoFrontier, SinglePointIsItsOwnFrontier) {
  EXPECT_EQ(pareto_frontier({{.access_ms = 1, .power_mw = 1, .feasible = true}}),
            (std::vector<std::size_t>{0}));
  EXPECT_TRUE(pareto_frontier({}).empty());
}

/// Hand-built ExploreResult (simulator-backed) with the given measures.
ExploreResult make_result(video::H264Level level, std::uint32_t channels,
                          double freq_mhz, double access_ms, double period_ms,
                          double power_mw) {
  ExploreResult r;
  r.point.level = level;
  r.point.channels = channels;
  r.point.freq_mhz = freq_mhz;
  r.simulated = true;
  r.sim.access_time = Time::from_ms(access_ms);
  r.sim.frame_period = Time::from_ms(period_ms);
  r.sim.total_power_mw = power_mw;
  return r;
}

TEST(Feasibility, MarginBoundaryIsInclusive) {
  // Exactly representable numbers: period 1 s, margin 0.15 => threshold
  // 0.85 s. access == threshold is feasible (<=), one ps above is not.
  ExploreResult at = make_result(video::H264Level::k31, 1, 400, 850.0, 1000.0, 1);
  EXPECT_TRUE(at.feasible(0.15));
  ExploreResult above = at;
  above.sim.access_time = Time{at.sim.access_time.ps() + 1};
  EXPECT_FALSE(above.feasible(0.15));
  // Without margin the plain deadline applies.
  ExploreResult deadline =
      make_result(video::H264Level::k31, 1, 400, 1000.0, 1000.0, 1);
  EXPECT_TRUE(deadline.feasible(0.0));
  deadline.sim.access_time = Time{deadline.sim.access_time.ps() + 1};
  EXPECT_FALSE(deadline.feasible(0.0));
}

TEST(FrontiersByLevel, GroupsByLevelAndAppliesFeasibility) {
  ExploreRun run;
  // Level 3.1: three points, one dominated, one infeasible.
  run.results.push_back(
      make_result(video::H264Level::k31, 1, 400, 20, 33.3, 150));  // frontier
  run.results.push_back(
      make_result(video::H264Level::k31, 2, 400, 10, 33.3, 160));  // frontier
  run.results.push_back(
      make_result(video::H264Level::k31, 4, 400, 12, 33.3, 170));  // dominated
  run.results.push_back(
      make_result(video::H264Level::k31, 8, 400, 40, 33.3, 100));  // infeasible
  // Level 4: single feasible point.
  run.results.push_back(
      make_result(video::H264Level::k40, 4, 400, 14, 33.3, 350));

  const auto frontiers = frontiers_by_level(run, 0.15);
  ASSERT_EQ(frontiers.size(), 2u);
  EXPECT_EQ(frontiers[0].level, video::H264Level::k31);
  EXPECT_EQ(frontiers[0].frontier, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(frontiers[1].level, video::H264Level::k40);
  EXPECT_EQ(frontiers[1].frontier, (std::vector<std::size_t>{4}));
}

TEST(MinChannels, FindsSmallestFeasibleCountPerLevel) {
  ExploreRun run;
  // 3.1: 1ch meets only without margin, 2ch meets with margin.
  run.results.push_back(
      make_result(video::H264Level::k31, 1, 400, 30, 33.3, 150));
  run.results.push_back(
      make_result(video::H264Level::k31, 2, 400, 15, 33.3, 160));
  // 5.2: nothing feasible.
  run.results.push_back(
      make_result(video::H264Level::k52, 8, 400, 50, 33.3, 1200));
  // Off-frequency point must be ignored for the 400 MHz table.
  run.results.push_back(
      make_result(video::H264Level::k52, 8, 533, 20, 33.3, 1500));

  const auto table = min_channels_per_level(run, 400.0, 0.15);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].level, video::H264Level::k31);
  ASSERT_TRUE(table[0].min_channels.has_value());
  EXPECT_EQ(*table[0].min_channels, 1u);
  ASSERT_TRUE(table[0].min_channels_with_margin.has_value());
  EXPECT_EQ(*table[0].min_channels_with_margin, 2u);
  EXPECT_EQ(table[1].level, video::H264Level::k52);
  EXPECT_FALSE(table[1].min_channels.has_value());
  EXPECT_FALSE(table[1].min_channels_with_margin.has_value());

  // freq 0 considers every frequency: the 533 MHz point rescues 5.2.
  const auto any_freq = min_channels_per_level(run, 0.0, 0.15);
  ASSERT_EQ(any_freq.size(), 2u);
  ASSERT_TRUE(any_freq[1].min_channels_with_margin.has_value());
  EXPECT_EQ(*any_freq[1].min_channels_with_margin, 8u);
}

}  // namespace
}  // namespace mcm::explore
