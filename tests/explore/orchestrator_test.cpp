#include "explore/orchestrator.hpp"

#include <gtest/gtest.h>

#include "explore/explore_export.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"

namespace mcm::explore {
namespace {

/// Small simulated grid: 720p30 only, two channel counts, two clocks.
ExperimentSpec small_grid() {
  ExperimentSpec spec;
  spec.levels = {video::H264Level::k31};
  spec.channels = {1, 2};
  spec.freq_mhz = {400.0, 533.0};
  return spec;
}

std::string exported_json(const ExperimentSpec& spec, const ExploreRun& run) {
  obs::RunReport report("determinism");
  export_run(report, spec, run);
  return report.root().dump_string();
}

TEST(Orchestrator, OneThreadAndManyThreadsAreByteIdentical) {
  const auto spec = small_grid();

  OrchestratorOptions serial;
  serial.threads = 1;
  const auto run1 = Orchestrator(serial).run(spec);

  OrchestratorOptions parallel;
  parallel.threads = 4;
  const auto run4 = Orchestrator(parallel).run(spec);

  ASSERT_EQ(run1.results.size(), 4u);
  ASSERT_EQ(run1.results.size(), run4.results.size());
  EXPECT_EQ(run1.stats.threads, 1u);
  EXPECT_EQ(run4.stats.threads, 4u);

  for (std::size_t i = 0; i < run1.results.size(); ++i) {
    const ExploreResult& a = run1.results[i];
    const ExploreResult& b = run4.results[i];
    EXPECT_EQ(a.point, b.point);
    EXPECT_TRUE(a.simulated);
    EXPECT_TRUE(b.simulated);
    // Bit-identical simulation results, not just "close".
    EXPECT_EQ(a.sim.access_time.ps(), b.sim.access_time.ps());
    EXPECT_EQ(a.sim.window.ps(), b.sim.window.ps());
    EXPECT_EQ(a.sim.total_power_mw, b.sim.total_power_mw);
    EXPECT_EQ(a.sim.dram_power_mw, b.sim.dram_power_mw);
    EXPECT_EQ(a.sim.stats.reads, b.sim.stats.reads);
    EXPECT_EQ(a.sim.stats.writes, b.sim.stats.writes);
    EXPECT_EQ(a.sim.stats.row_hits, b.sim.stats.row_hits);
    EXPECT_EQ(a.sim.stats.activates, b.sim.stats.activates);
  }

  // The full deterministic export (points, frontiers, min-channel table)
  // must serialize byte-for-byte identically.
  EXPECT_EQ(exported_json(spec, run1), exported_json(spec, run4));
}

TEST(Orchestrator, SweepWrappersMatchEngineOutput) {
  // core::sweep_frequency routes through the engine; 1-thread and auto
  // thread counts must agree element-wise (legacy output order: channels
  // outer, frequency inner).
  auto cfg = core::ExperimentConfig::paper_defaults();
  const auto serial = core::sweep_frequency(cfg, video::H264Level::k31, 1);
  ASSERT_EQ(serial.size(), 24u);
  EXPECT_EQ(serial[0].channels, 1u);
  EXPECT_EQ(serial[0].freq_mhz, 200.0);
  EXPECT_EQ(serial[1].freq_mhz, 266.0);
  EXPECT_EQ(serial[6].channels, 2u);
}

TEST(Orchestrator, AnalyticEngineSkipsSimulation) {
  OrchestratorOptions opt;
  opt.engine = Engine::kAnalytic;
  opt.threads = 2;
  const auto run = Orchestrator(opt).run(ExperimentSpec::paper_grid());
  ASSERT_EQ(run.results.size(), 120u);
  EXPECT_EQ(run.stats.screened, 120u);
  EXPECT_EQ(run.stats.simulated, 0u);
  for (const auto& r : run.results) {
    EXPECT_TRUE(r.screened);
    EXPECT_FALSE(r.simulated);
    EXPECT_GT(r.access_time().ps(), 0);
    EXPECT_GT(r.total_power_mw(), 0.0);
  }
  // Higher channel counts are faster at fixed level/frequency.
  const auto& one_ch = run.results[0];   // L3.1 1ch 200MHz
  const auto& two_ch = run.results[6];   // L3.1 2ch 200MHz
  EXPECT_LT(two_ch.access_time(), one_ch.access_time());
}

TEST(Orchestrator, PrescreenPrunesClearlyInfeasiblePoints) {
  // 2160p30 on one channel at 200 MHz is hopeless (demand alone exceeds a
  // single channel's peak bandwidth); 720p30 at 400 MHz x 2ch is healthy.
  ExperimentSpec spec;
  spec.levels = {video::H264Level::k31, video::H264Level::k52};
  spec.channels = {2};
  spec.freq_mhz = {400.0};
  // Make the healthy point the only survivor: 2ch @400 MHz cannot carry
  // 2160p30 either.
  obs::MetricsRegistry metrics;
  OrchestratorOptions opt;
  opt.threads = 2;
  opt.prescreen = true;
  opt.prescreen_slack = 1.25;
  opt.metrics = &metrics;
  const auto run = Orchestrator(opt).run(spec);

  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_EQ(run.stats.screened, 2u);
  EXPECT_EQ(run.stats.pruned, 1u);
  EXPECT_EQ(run.stats.simulated, 1u);

  const auto& healthy = run.results[0];  // L3.1/2ch
  EXPECT_TRUE(healthy.simulated);
  EXPECT_FALSE(healthy.pruned);
  EXPECT_TRUE(healthy.feasible());

  const auto& pruned = run.results[1];  // L5.2/2ch
  EXPECT_TRUE(pruned.screened);
  EXPECT_TRUE(pruned.pruned);
  EXPECT_FALSE(pruned.simulated);
  EXPECT_FALSE(pruned.feasible());
  // Pruned points still report their analytic measures.
  EXPECT_GT(pruned.access_time().ms(), pruned.frame_period().ms());

  // Counters published to the registry.
  EXPECT_TRUE(metrics.contains("explore/pruned"));
  const auto snapshot = metrics.snapshot();
  for (const auto& m : snapshot) {
    if (m.name == "explore/pruned") EXPECT_EQ(m.value, 1.0);
    if (m.name == "explore/simulated") EXPECT_EQ(m.value, 1.0);
    if (m.name == "explore/points") EXPECT_EQ(m.value, 2.0);
  }
}

TEST(Orchestrator, PointListRunEvaluatesGivenPointsInOrder) {
  ExperimentSpec spec;  // base config only; axes unused by the list run
  std::vector<ExplorePoint> points;
  ExplorePoint a;
  a.level = video::H264Level::k31;
  a.channels = 2;
  a.freq_mhz = 533.0;
  ExplorePoint b = a;
  b.channels = 1;
  points = {a, b};

  OrchestratorOptions opt;
  opt.threads = 2;
  const auto run = Orchestrator(opt).run(spec, points);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_EQ(run.results[0].point, a);
  EXPECT_EQ(run.results[1].point, b);
  EXPECT_TRUE(run.results[0].simulated);
  EXPECT_LT(run.results[0].sim.access_time, run.results[1].sim.access_time);
}

}  // namespace
}  // namespace mcm::explore
