#include "xdr/xdr_model.hpp"

#include <gtest/gtest.h>

#include "channel/interface_power.hpp"
#include "multichannel/memory_system.hpp"

namespace mcm::xdr {
namespace {

TEST(XdrModel, DefaultsMatchThePaperReferencePoint) {
  // Paper Section IV (citing Yip et al.): dual-channel XDR at 1.6 GHz,
  // 25.6 GB/s, ~5 W typical.
  const XdrInterface xdr;
  EXPECT_DOUBLE_EQ(xdr.clock_ghz, 1.6);
  EXPECT_DOUBLE_EQ(xdr.bandwidth_gb_per_s, 25.6);
  EXPECT_DOUBLE_EQ(xdr.typical_power_w, 5.0);
  EXPECT_DOUBLE_EQ(xdr.typical_power_mw(), 5000.0);
}

TEST(XdrModel, PowerFractionIsRelativeToTypicalPower) {
  const XdrInterface xdr;
  EXPECT_DOUBLE_EQ(xdr.power_fraction(5000.0), 1.0);
  // The paper's comparison range: the 8-channel mobile DDR subsystem runs
  // at 4-25 % of XDR power depending on the encoding format.
  EXPECT_DOUBLE_EQ(xdr.power_fraction(200.0), 0.04);
  EXPECT_DOUBLE_EQ(xdr.power_fraction(1250.0), 0.25);
}

TEST(XdrModel, EightChannelMobileDdrMatchesXdrBandwidth) {
  // The headline comparison: 8 channels at 400 MHz reach XDR-class
  // aggregate bandwidth.
  multichannel::SystemConfig cfg;
  cfg.channels = 8;
  cfg.freq = Frequency{400.0};
  const multichannel::MemorySystem sys(cfg);
  const XdrInterface xdr;
  EXPECT_NEAR(sys.peak_bandwidth_bytes_per_s() / 1e9, xdr.bandwidth_gb_per_s,
              0.7);
}

TEST(XdrModel, EightChannelInterfacePowerIsSmallFractionOfXdr) {
  // Even 8 channels' worth of Eq. (1) interface power (~33 mW) is under 1 %
  // of XDR's typical 5 W — the interface is not where the power goes.
  const channel::InterfacePowerSpec iface;
  const XdrInterface xdr;
  const double eight_channel_mw = 8.0 * iface.power_mw(Frequency{400.0});
  EXPECT_LT(xdr.power_fraction(eight_channel_mw), 0.01);
}

}  // namespace
}  // namespace mcm::xdr
