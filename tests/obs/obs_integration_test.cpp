// End-to-end observability checks: drive a real MemorySystem, then assert
// that the collected metric catalogue agrees with SystemStats and that an
// attached TraceSink sees every command and request.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "multichannel/memory_system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcm::multichannel {
namespace {

SystemConfig make_config(std::uint32_t channels) {
  SystemConfig cfg;
  cfg.channels = channels;
  cfg.freq = Frequency{400.0};
  return cfg;
}

void run_traffic(MemorySystem& sys, int n) {
  int submitted = 0;
  while (submitted < n) {
    const ctrl::Request r{static_cast<std::uint64_t>(submitted) * 64 + 16,
                          (submitted % 3) == 0, Time::zero(), 0};
    if (sys.can_accept(r.addr)) {
      sys.submit(r);
      ++submitted;
    } else {
      (void)sys.process_next();
    }
  }
  (void)sys.drain();
}

TEST(ObsIntegration, CollectedCountersMatchSystemStats) {
  MemorySystem sys(make_config(4));
  run_traffic(sys, 512);
  const SystemStats st = sys.stats();

  obs::MetricsRegistry reg;
  sys.collect_metrics(reg);

  EXPECT_EQ(reg.counter("system/reads").value(), st.reads);
  EXPECT_EQ(reg.counter("system/writes").value(), st.writes);
  EXPECT_EQ(reg.counter("system/bytes").value(), st.bytes);
  EXPECT_EQ(reg.counter("system/row_hits").value(), st.row_hits);
  EXPECT_EQ(reg.counter("system/activates").value(), st.activates);
  EXPECT_DOUBLE_EQ(reg.gauge("system/row_hit_rate").value(), st.row_hit_rate());

  // Per-channel counters must sum to the system aggregates.
  std::uint64_t reads = 0, writes = 0, bytes = 0, hits = 0, routed = 0;
  for (std::uint32_t ch = 0; ch < 4; ++ch) {
    const std::string p = "ch" + std::to_string(ch) + "/";
    reads += reg.counter(p + "reads").value();
    writes += reg.counter(p + "writes").value();
    bytes += reg.counter(p + "bytes").value();
    hits += reg.counter(p + "row_hits").value();
    routed += reg.counter("interleaver/routed/ch" + std::to_string(ch)).value();
  }
  EXPECT_EQ(reads, st.reads);
  EXPECT_EQ(writes, st.writes);
  EXPECT_EQ(bytes, st.bytes);
  EXPECT_EQ(hits, st.row_hits);
  EXPECT_EQ(routed, 512u);
  EXPECT_EQ(routed, st.accesses());
}

TEST(ObsIntegration, LatencyHistogramCoversEveryRequest) {
  MemorySystem sys(make_config(2));
  run_traffic(sys, 256);
  const SystemStats st = sys.stats();
  ASSERT_EQ(st.latency_ns.count(), 256u);
  EXPECT_EQ(st.latency_hist_ns.summary().count(), 256u);
  // Percentiles are ordered and bracketed by the observed extrema.
  const double p50 = st.latency_hist_ns.percentile(0.50);
  const double p95 = st.latency_hist_ns.percentile(0.95);
  const double p99 = st.latency_hist_ns.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, st.latency_ns.min());
  // Histogram aggregation must match the plain accumulator's moments.
  EXPECT_NEAR(st.latency_hist_ns.summary().mean(), st.latency_ns.mean(), 1e-9);

  obs::MetricsRegistry reg;
  sys.collect_metrics(reg);
  const auto snap = reg.snapshot();
  bool found = false;
  for (const auto& e : snap) {
    if (e.name == "system/latency_ns") {
      found = true;
      EXPECT_EQ(e.count, 256u);
      EXPECT_GT(e.p99, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsIntegration, PerBankAccessCountsSumToChannelAccesses) {
  MemorySystem sys(make_config(2));
  run_traffic(sys, 128);
  const SystemStats st = sys.stats();

  obs::MetricsRegistry reg;
  sys.collect_metrics(reg);
  const std::uint32_t banks = sys.config().device.org.banks;
  std::uint64_t bank_total = 0;
  for (std::uint32_t ch = 0; ch < 2; ++ch) {
    for (std::uint32_t b = 0; b < banks; ++b) {
      bank_total += reg.counter("ch" + std::to_string(ch) + "/bank" +
                                std::to_string(b) + "/accesses")
                        .value();
    }
  }
  EXPECT_EQ(bank_total, st.accesses());
}

TEST(ObsIntegration, AttachedTraceSeesEveryRequestAndCommand) {
  std::ostringstream trace_out;
  {
    MemorySystem sys(make_config(2));
    obs::TraceSink sink(trace_out, 64);
    sys.attach_trace(&sink);
    run_traffic(sys, 64);
    sys.attach_trace(nullptr);
    sink.flush();

    const SystemStats st = sys.stats();
    std::istringstream in(trace_out.str());
    std::string line;
    std::uint64_t cmd_lines = 0, req_lines = 0, meta_lines = 0;
    while (std::getline(in, line)) {
      if (line.find(R"("type":"cmd")") != std::string::npos) ++cmd_lines;
      if (line.find(R"("type":"req")") != std::string::npos) ++req_lines;
      if (line.find(R"("type":"meta")") != std::string::npos) ++meta_lines;
    }
    EXPECT_EQ(meta_lines, 1u);
    EXPECT_EQ(req_lines, st.accesses());
    // At least one command per access (RD/WR), plus activates.
    EXPECT_GE(cmd_lines, st.accesses() + st.activates);
  }
}

TEST(ObsIntegration, DetachedTraceRecordsNothing) {
  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out, 64);
  MemorySystem sys(make_config(2));
  sys.attach_trace(&sink);
  sys.attach_trace(nullptr);
  run_traffic(sys, 32);
  sink.flush();
  EXPECT_EQ(sink.events_recorded(), 0u);
}

TEST(ObsIntegration, PrefixNamespacesTheCatalogue) {
  MemorySystem sys(make_config(1));
  run_traffic(sys, 16);
  obs::MetricsRegistry reg;
  sys.collect_metrics(reg, "sysA/");
  EXPECT_TRUE(reg.contains("sysA/system/reads"));
  EXPECT_FALSE(reg.contains("system/reads"));
}

}  // namespace
}  // namespace mcm::multichannel
