// Thread-safety contract of MetricsRegistry: registration (get-or-create),
// lookup, and snapshot/export may race freely across worker threads, and
// Counter/Gauge updates through previously returned references are atomic.
// The CI sanitize-thread job runs this under TSan, which is the real check;
// the value assertions here catch lost updates on any build.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace mcm::obs {
namespace {

TEST(MetricsRegistryThreadSafe, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr int kCounters = 16;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kOps; ++i) {
        // Get-or-create races with every other thread on the same names.
        reg.counter("shared/c" + std::to_string(i % kCounters)).inc();
        reg.gauge("worker/g" + std::to_string(t)).set(static_cast<double>(i));
        if (i % 512 == 0) {
          (void)reg.snapshot();
          (void)reg.contains("shared/c0");
          (void)reg.size();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::uint64_t total = 0;
  for (const MetricEntry& e : reg.snapshot()) {
    if (e.kind == MetricKind::kCounter) {
      total += static_cast<std::uint64_t>(e.value);
    }
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kOps)
      << "no increment may be lost";
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(kCounters + kThreads));
}

TEST(MetricsRegistryThreadSafe, ReferencesStayValidWhileOthersRegister) {
  MetricsRegistry reg;
  Counter& early = reg.counter("pinned/counter");
  std::atomic<bool> stop{false};

  // One thread hammers the reference handed out before the map grew; another
  // keeps inserting fresh names (std::map nodes are stable, so `early` must
  // never move).
  std::thread bump([&] {
    while (!stop.load(std::memory_order_relaxed)) early.inc();
  });
  std::thread grow([&reg] {
    for (int i = 0; i < 2000; ++i) {
      reg.counter("growth/c" + std::to_string(i)).inc();
    }
  });
  grow.join();
  stop.store(true, std::memory_order_relaxed);
  bump.join();

  EXPECT_GT(early.value(), 0u);
  EXPECT_EQ(reg.counter("pinned/counter").value(), early.value());
}

TEST(MetricsRegistryThreadSafe, ConcurrentHistogramPublishAndExport) {
  MetricsRegistry reg;
  Histogram sample(0.0, 100.0, 10);
  for (int i = 0; i < 50; ++i) sample.add(i % 100);

  // The copy-publish overload is documented always-safe: concurrent
  // publishers against concurrent JSON/CSV exporters.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&reg, &sample, t] {
      for (int i = 0; i < 200; ++i) {
        reg.histogram("hist/h" + std::to_string(i % 8), sample);
        if (i % 32 == 0) (void)reg.to_json(/*with_buckets=*/true);
      }
      (void)t;
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.size(), 8u);
}

TEST(MetricsRegistryThreadSafe, KindMismatchStillThrows) {
  MetricsRegistry reg;
  reg.counter("typed/metric");
  EXPECT_THROW(reg.gauge("typed/metric"), std::logic_error);
}

}  // namespace
}  // namespace mcm::obs
