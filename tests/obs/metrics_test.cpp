#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mcm::obs {
namespace {

const MetricEntry* find_entry(const std::vector<MetricEntry>& s,
                              const std::string& name) {
  const auto it = std::find_if(s.begin(), s.end(),
                               [&](const MetricEntry& e) { return e.name == name; });
  return it != s.end() ? &*it : nullptr;
}

TEST(MetricsRegistry, GetOrCreateReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("ch0/reads");
  a.inc(3);
  Counter& b = reg.counter("ch0/reads");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("ch0/reads"));
  EXPECT_FALSE(reg.contains("ch0/writes"));
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", 0.0, 1.0, 4), std::logic_error);
  reg.gauge("g");
  EXPECT_THROW(reg.counter("g"), std::logic_error);
}

TEST(MetricsRegistry, SnapshotIsSortedAndRoundTripsValues) {
  MetricsRegistry reg;
  reg.counter("z/count").inc(42);
  reg.gauge("a/rate").set(0.75);
  Histogram& h = reg.histogram("m/lat", 0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a/rate");
  EXPECT_EQ(snap[1].name, "m/lat");
  EXPECT_EQ(snap[2].name, "z/count");

  const MetricEntry* c = find_entry(snap, "z/count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 42.0);

  const MetricEntry* g = find_entry(snap, "a/rate");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 0.75);

  const MetricEntry* e = find_entry(snap, "m/lat");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::kHistogram);
  EXPECT_EQ(e->count, 100u);
  EXPECT_DOUBLE_EQ(e->mean, 50.0);
  EXPECT_DOUBLE_EQ(e->min, 0.5);
  EXPECT_DOUBLE_EQ(e->max, 99.5);
  EXPECT_NEAR(e->p50, 50.0, 1.5);
  EXPECT_NEAR(e->p95, 95.0, 1.5);
  EXPECT_NEAR(e->p99, 99.0, 1.5);
}

TEST(MetricsRegistry, CopyRegisteredHistogramIsDecoupled) {
  MetricsRegistry reg;
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  reg.histogram("copied", h);
  h.add(6.0);  // must not affect the registered copy
  const auto snap = reg.snapshot();
  const MetricEntry* e = find_entry(snap, "copied");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 1u);
}

TEST(MetricsRegistry, JsonExportCarriesKindsAndBuckets) {
  MetricsRegistry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(1.5);
  reg.histogram("h", 0.0, 4.0, 4).add(2.5);

  const std::string compact = reg.to_json(false).dump_string(-1);
  EXPECT_NE(compact.find(R"("c":{"kind":"counter","value":7})"), std::string::npos);
  EXPECT_NE(compact.find(R"("kind":"gauge")"), std::string::npos);
  EXPECT_NE(compact.find(R"("kind":"histogram")"), std::string::npos);
  EXPECT_EQ(compact.find("bucket_count"), std::string::npos);

  const std::string with_buckets = reg.to_json(true).dump_string(-1);
  EXPECT_NE(with_buckets.find("\"bucket_lo\""), std::string::npos);
  EXPECT_NE(with_buckets.find("\"bucket_count\""), std::string::npos);
}

TEST(MetricsRegistry, CsvExportHasHeaderAndOneRowPerMetric) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.gauge("a").set(3.5);
  std::ostringstream out;
  reg.write_csv(out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "name,kind,value,count,mean,min,max,stddev,p50,p95,p99");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("a,gauge,3.5", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("b,counter,2", 0), 0u) << line;
  EXPECT_FALSE(std::getline(lines, line));
}

}  // namespace
}  // namespace mcm::obs
