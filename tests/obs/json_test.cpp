#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace mcm::obs {
namespace {

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonValue v = JsonValue::object();
  v["zebra"] = 1;
  v["alpha"] = 2;
  v["mid"] = 3;
  EXPECT_EQ(v.dump_string(-1), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, GetOrCreateConvertsNullToObject) {
  JsonValue v;  // null
  v["a"]["b"] = 7;
  EXPECT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_NE(v.find("a")->find("b"), nullptr);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ScalarFormatting) {
  JsonValue v = JsonValue::object();
  v["b"] = true;
  v["i"] = -3;
  v["u"] = std::uint64_t{18446744073709551615ull};
  v["d"] = 0.25;
  v["s"] = "str";
  v["n"] = JsonValue{};
  EXPECT_EQ(v.dump_string(-1),
            R"({"b":true,"i":-3,"u":18446744073709551615,"d":0.25,"s":"str","n":null})");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  JsonValue v = JsonValue::array();
  v.push(std::numeric_limits<double>::infinity());
  v.push(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(v.dump_string(-1), "[null,null]");
}

TEST(Json, ArrayPushAndSize) {
  JsonValue v = JsonValue::array();
  EXPECT_EQ(v.size(), 0u);
  v.push(1);
  v.push("two");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.dump_string(-1), R"([1,"two"])");
}

TEST(Json, IndentedDumpIsStable) {
  JsonValue v = JsonValue::object();
  v["a"] = 1;
  v["b"] = JsonValue::array();
  v["b"].push(2);
  std::ostringstream out;
  v.dump(out, 2);
  EXPECT_EQ(out.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

}  // namespace
}  // namespace mcm::obs
