// Unit tests for the self-profiling subsystem (obs/prof): recording
// semantics (scoped spans, tallies, counters, value histograms), self-time
// attribution, collect/reset behavior, and the mcm.prof/v1 JSON round trip.
// The profiler is process-global state, so every test starts from a clean,
// enabled profiler and leaves it disabled and empty.
#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "obs/json.hpp"

namespace mcm::obs::prof {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    (void)collect(/*reset=*/true);  // drop anything earlier tests recorded
  }
  void TearDown() override {
    set_enabled(false);
    (void)collect(/*reset=*/true);
  }
};

void spin_for_ns(std::int64_t ns) {
  const std::int64_t t0 = now_ns();
  while (now_ns() - t0 < ns) {
  }
}

TEST_F(ProfTest, PhaseIdsAreInternedAndStable) {
  const PhaseId a = phase_id("test/alpha");
  const PhaseId b = phase_id("test/beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, phase_id("test/alpha"));
  EXPECT_EQ(b, phase_id("test/beta"));
}

TEST_F(ProfTest, DisabledRecordsNothing) {
  set_enabled(false);
  const PhaseId ph = phase_id("test/disabled");
  {
    ScopedTimer t(ph);
    spin_for_ns(1000);
  }
  tally(ph, 500);
  count(ph, 3);
  value(ph, 42);
  set_enabled(true);
  const ProfileReport rep = collect(true);
  EXPECT_EQ(rep.find("test/disabled"), nullptr);
  EXPECT_TRUE(rep.spans.empty());
}

TEST_F(ProfTest, ScopedTimerRecordsPhaseAndSpan) {
  const PhaseId ph = phase_id("test/span");
  {
    ScopedTimer t(ph);
    spin_for_ns(50 * 1000);
  }
  const ProfileReport rep = collect(true);
  const ProfilePhase* p = rep.find("test/span");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 1u);
  EXPECT_GE(p->wall_ns, 50 * 1000);
  EXPECT_EQ(p->self_ns, p->wall_ns);
  EXPECT_EQ(p->max_ns, p->wall_ns);
  ASSERT_EQ(rep.spans.size(), 1u);
  EXPECT_EQ(rep.spans[0].dur_ns, p->wall_ns);
  EXPECT_EQ(rep.phases[rep.spans[0].phase].name, "test/span");
}

TEST_F(ProfTest, NestedSpansAttributeSelfTimeExactly) {
  const PhaseId outer = phase_id("test/outer");
  const PhaseId inner = phase_id("test/inner");
  {
    ScopedTimer a(outer);
    spin_for_ns(20 * 1000);
    {
      ScopedTimer b(inner);
      spin_for_ns(20 * 1000);
    }
    spin_for_ns(20 * 1000);
  }
  const ProfileReport rep = collect(true);
  const ProfilePhase* po = rep.find("test/outer");
  const ProfilePhase* pi = rep.find("test/inner");
  ASSERT_NE(po, nullptr);
  ASSERT_NE(pi, nullptr);
  // Self time is wall minus enclosed spans - exact integer arithmetic on the
  // recorded durations, not an approximation.
  EXPECT_EQ(po->self_ns, po->wall_ns - pi->wall_ns);
  EXPECT_EQ(pi->self_ns, pi->wall_ns);
  EXPECT_GT(po->self_ns, 0);
}

TEST_F(ProfTest, StopClosesEarlyAndIsIdempotent) {
  const PhaseId ph = phase_id("test/stop");
  ScopedTimer t(ph);
  spin_for_ns(1000);
  t.stop();
  t.stop();  // second stop (and the destructor) must not double-record
  const ProfileReport rep = collect(true);
  const ProfilePhase* p = rep.find("test/stop");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 1u);
}

TEST_F(ProfTest, TallyAccumulatesWithoutSpans) {
  const PhaseId ph = phase_id("test/tally");
  tally(ph, 100);
  tally(ph, 300);
  tally(ph, 4000, /*calls=*/4);  // 4 episodes totalling 4 us
  const ProfileReport rep = collect(true);
  const ProfilePhase* p = rep.find("test/tally");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 6u);
  EXPECT_EQ(p->wall_ns, 4400);
  EXPECT_EQ(p->self_ns, 4400);
  EXPECT_GE(p->max_ns, 1000);  // the 4-call tally samples its mean episode
  EXPECT_TRUE(rep.spans.empty()) << "tally must not emit spans";
}

TEST_F(ProfTest, CountIsAPureCounter) {
  const PhaseId ph = phase_id("test/count");
  count(ph, 5);
  count(ph, 7);
  count(ph, 0);  // no-op
  const ProfileReport rep = collect(true);
  const ProfilePhase* p = rep.find("test/count");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 12u);
  EXPECT_EQ(p->wall_ns, 0);
}

TEST_F(ProfTest, ValuePercentilesLandInTheLogBucket) {
  const PhaseId ph = phase_id("test/value");
  for (int i = 0; i < 100; ++i) value(ph, 1000);
  const ProfileReport rep = collect(true);
  const ProfilePhase* p = rep.find("test/value");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 100u);
  // 1000 lands in bucket [512, 1024); the interpolated quantiles stay there.
  EXPECT_GE(p->p50, 512.0);
  EXPECT_LE(p->p50, 1024.0);
  EXPECT_GE(p->p95, 512.0);
  EXPECT_LE(p->p95, 1024.0);
  EXPECT_EQ(p->max_ns, 1000);
}

TEST_F(ProfTest, CollectMergesSpoolsFromOtherThreads) {
  const PhaseId ph = phase_id("test/worker");
  std::thread worker([ph] {
    set_thread_label("unit/worker");
    tally(ph, 2000, 2);
  });
  worker.join();
  tally(ph, 1000);
  const ProfileReport rep = collect(true);
  const ProfilePhase* p = rep.find("test/worker");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 3u);
  EXPECT_EQ(p->wall_ns, 3000);
  bool labeled = false;
  for (const auto& [tid, label] : rep.thread_labels) {
    labeled = labeled || label == "unit/worker";
  }
  EXPECT_TRUE(labeled);
}

TEST_F(ProfTest, CollectWithResetClears) {
  const PhaseId ph = phase_id("test/reset");
  tally(ph, 100);
  const ProfileReport first = collect(true);
  EXPECT_NE(first.find("test/reset"), nullptr);
  const ProfileReport second = collect(true);
  EXPECT_EQ(second.find("test/reset"), nullptr);
  EXPECT_TRUE(second.spans.empty());
}

TEST_F(ProfTest, JsonRoundTripPreservesEverything) {
  const PhaseId outer = phase_id("test/rt_outer");
  const PhaseId inner = phase_id("test/rt_inner");
  {
    ScopedTimer a(outer);
    ScopedTimer b(inner);
    spin_for_ns(1000);
  }
  count(phase_id("test/rt_count"), 9);
  const ProfileReport rep = collect(true);

  const JsonValue doc = rep.to_json(/*with_spans=*/true);
  std::string error;
  const auto parsed = json_parse(doc.dump_string(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  ProfileReport back;
  ASSERT_TRUE(profile_from_json(*parsed, back));
  ASSERT_EQ(back.phases.size(), rep.phases.size());
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].name, rep.phases[i].name);
    EXPECT_EQ(back.phases[i].calls, rep.phases[i].calls);
    EXPECT_EQ(back.phases[i].wall_ns, rep.phases[i].wall_ns);
    EXPECT_EQ(back.phases[i].self_ns, rep.phases[i].self_ns);
    EXPECT_EQ(back.phases[i].max_ns, rep.phases[i].max_ns);
    EXPECT_DOUBLE_EQ(back.phases[i].p50, rep.phases[i].p50);
    EXPECT_DOUBLE_EQ(back.phases[i].p95, rep.phases[i].p95);
  }
  ASSERT_EQ(back.spans.size(), rep.spans.size());
  for (std::size_t i = 0; i < rep.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].tid, rep.spans[i].tid);
    EXPECT_EQ(back.spans[i].phase, rep.spans[i].phase);
    EXPECT_EQ(back.spans[i].start_ns, rep.spans[i].start_ns);
    EXPECT_EQ(back.spans[i].dur_ns, rep.spans[i].dur_ns);
  }
  EXPECT_EQ(back.dropped_spans, rep.dropped_spans);
  EXPECT_EQ(back.thread_labels, rep.thread_labels);
}

TEST_F(ProfTest, FromJsonRejectsWrongSchemaAndBadSpanRefs) {
  ProfileReport out;
  JsonValue wrong = JsonValue::object();
  wrong["schema"] = "mcm.trace/v1";
  EXPECT_FALSE(profile_from_json(wrong, out));

  JsonValue bad = JsonValue::object();
  bad["schema"] = "mcm.prof/v1";
  bad["phases"] = JsonValue::array();
  auto& spans = bad["spans"];
  spans = JsonValue::array();
  JsonValue s = JsonValue::object();
  s["ph"] = 3;  // out of range: no phases
  spans.push(std::move(s));
  EXPECT_FALSE(profile_from_json(bad, out));
}

TEST_F(ProfTest, ChromeTraceIsValidJsonWithSpansAndThreadNames) {
  const PhaseId ph = phase_id("test/chrome");
  set_thread_label("unit/chrome");
  {
    ScopedTimer t(ph);
    spin_for_ns(1000);
  }
  const ProfileReport rep = collect(true);
  std::ostringstream os;
  rep.write_chrome_trace(os);

  std::string error;
  const auto parsed = json_parse(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool meta = false;
  bool complete = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = *events->at(i);
    const std::string kind = e.find("ph")->as_string();
    if (kind == "M") meta = true;
    if (kind == "X") {
      complete = true;
      EXPECT_EQ(e.find("name")->as_string(), "test/chrome");
      EXPECT_GE(e.find("dur")->as_double(), 1.0);  // >= 1 us spun
    }
  }
  EXPECT_TRUE(meta);
  EXPECT_TRUE(complete);
}

TEST_F(ProfTest, EnvParsingAcceptsOnForms) {
  // Pure read - must not disturb the latched runtime flag.
  setenv("MCM_PROF", "1", 1);
  EXPECT_TRUE(env_requests_profiling());
  setenv("MCM_PROF", "on", 1);
  EXPECT_TRUE(env_requests_profiling());
  setenv("MCM_PROF", "0", 1);
  EXPECT_FALSE(env_requests_profiling());
  unsetenv("MCM_PROF");
  EXPECT_FALSE(env_requests_profiling());
}

}  // namespace
}  // namespace mcm::obs::prof
