#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace mcm::obs {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(TraceSink, EmitsMetaLineOnConstruction) {
  std::ostringstream out;
  { TraceSink sink(out); }
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"type":"meta","schema":"mcm.trace/v1","version":1})");
}

TEST(TraceSink, GoldenCommandAndSpanLines) {
  std::ostringstream out;
  {
    TraceSink sink(out);
    sink.command(0, Time::from_ns(2.5), dram::Command::kActivate, 1, 42);
    sink.command(3, Time::from_ns(10.0), dram::Command::kRead, 1, 0);
    sink.command(0, Time::zero(), dram::Command::kPowerDownEnter, 0, 0);
    sink.span(/*channel=*/0, /*addr=*/4096, /*is_write=*/false,
              /*arrival=*/Time::zero(), /*first_cmd=*/Time::from_ns(2.5),
              /*done=*/Time::from_ns(30.0), /*row_hit=*/false);
    sink.span(1, 128, true, Time::from_ns(1.0), Time::from_ns(2.0),
              Time::from_ns(8.0), true);
    EXPECT_EQ(sink.events_recorded(), 5u);
  }
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[1],
            R"({"type":"cmd","ch":0,"t_ps":2500,"cmd":"ACT","bank":1,"row":42})");
  EXPECT_EQ(lines[2],
            R"({"type":"cmd","ch":3,"t_ps":10000,"cmd":"RD","bank":1,"row":0})");
  EXPECT_EQ(lines[3],
            R"({"type":"cmd","ch":0,"t_ps":0,"cmd":"PDE","bank":0,"row":0})");
  EXPECT_EQ(lines[4],
            R"({"type":"req","ch":0,"op":"RD","addr":4096,"arrival_ps":0,)"
            R"("first_cmd_ps":2500,"done_ps":30000,"latency_ps":30000,"row_hit":0})");
  EXPECT_EQ(lines[5],
            R"({"type":"req","ch":1,"op":"WR","addr":128,"arrival_ps":1000,)"
            R"("first_cmd_ps":2000,"done_ps":8000,"latency_ps":7000,"row_hit":1})");
}

TEST(TraceSink, BuffersUntilCapacityThenFlushes) {
  std::ostringstream out;
  TraceSink sink(out, /*buffer_events=*/2);
  sink.command(0, Time::zero(), dram::Command::kActivate, 0, 0);
  // One buffered event: only the meta line is out so far.
  EXPECT_EQ(lines_of(out.str()).size(), 1u);
  sink.command(0, Time::zero(), dram::Command::kPrecharge, 0, 0);
  // Capacity reached: both events flushed.
  EXPECT_EQ(lines_of(out.str()).size(), 3u);
  sink.command(0, Time::zero(), dram::Command::kRefresh, 0, 0);
  EXPECT_EQ(lines_of(out.str()).size(), 3u);
  sink.flush();
  EXPECT_EQ(lines_of(out.str()).size(), 4u);
  EXPECT_EQ(sink.events_recorded(), 3u);
}

TEST(TraceSink, EveryLineIsAFlatJsonObject) {
  std::ostringstream out;
  {
    TraceSink sink(out, 1);
    for (int i = 0; i < 16; ++i) {
      sink.command(static_cast<std::uint32_t>(i % 4), Time::from_ns(i),
                   i % 2 == 0 ? dram::Command::kRead : dram::Command::kWrite,
                   static_cast<std::uint32_t>(i % 8), 7);
    }
  }
  for (const auto& line : lines_of(out.str())) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
  }
}

TEST(MergeTraceSpools, SameSpoolTiesKeepEmissionOrder) {
  // Two commands and a span on one spool, all at the same order_time. With
  // time and channel equal, the per-channel emission sequence is the final
  // tie-break, so the merged stream replays the spool verbatim.
  TraceSpool sp;
  sp.command(0, Time::from_ns(5.0), dram::Command::kActivate, 1, 10);
  sp.command(0, Time::from_ns(5.0), dram::Command::kRead, 1, 10);
  sp.span(0, 256, false, Time::zero(), Time::from_ns(5.0), Time::from_ns(5.0),
          true);

  std::ostringstream out;
  merge_trace_spools({&sp}, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find(R"("cmd":"ACT")"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("cmd":"RD")"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("type":"req")"), std::string::npos);
}

TEST(MergeTraceSpools, CrossSpoolTiesOrderByChannel) {
  // Equal order_time across spools: spool index (= channel) breaks the tie,
  // so channel 0's event precedes channel 1's even though spool 1 is listed
  // with an earlier-emitted event.
  TraceSpool sp0;
  TraceSpool sp1;
  sp1.command(1, Time::from_ns(7.0), dram::Command::kWrite, 0, 3);
  sp0.command(0, Time::from_ns(7.0), dram::Command::kRead, 0, 3);

  std::ostringstream out;
  merge_trace_spools({&sp0, &sp1}, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find(R"("ch":0)"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("ch":1)"), std::string::npos);
}

TEST(MergeTraceSpools, TimeOrderDominatesChannelAndSequence) {
  // A later-emitted but earlier-timestamped event on a higher channel must
  // still come out first: order_time is the primary key.
  TraceSpool sp0;
  TraceSpool sp1;
  sp0.command(0, Time::from_ns(20.0), dram::Command::kActivate, 0, 0);
  sp1.command(1, Time::from_ns(10.0), dram::Command::kActivate, 0, 0);

  std::ostringstream out;
  merge_trace_spools({&sp0, &sp1}, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find(R"("t_ps":10000)"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("t_ps":20000)"), std::string::npos);
}

}  // namespace
}  // namespace mcm::obs
