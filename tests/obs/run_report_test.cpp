#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace mcm::obs {
namespace {

/// Scoped MCM_REPORT_DIR override; restores the prior value on destruction.
class ReportDirGuard {
 public:
  explicit ReportDirGuard(const char* value) {
    const char* old = std::getenv("MCM_REPORT_DIR");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("MCM_REPORT_DIR", value, 1);
    } else {
      ::unsetenv("MCM_REPORT_DIR");
    }
  }
  ~ReportDirGuard() {
    if (had_old_) {
      ::setenv("MCM_REPORT_DIR", old_.c_str(), 1);
    } else {
      ::unsetenv("MCM_REPORT_DIR");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(RunReport, StampsSchemaNameConfigAndPoints) {
  RunReport report("unittest");
  report.config()["channels"] = 4u;
  auto& pt = report.add_point("400MHz/4ch");
  pt["access_ms"] = 12.5;
  std::ostringstream out;
  report.write(out);
  const std::string s = out.str();
  EXPECT_NE(s.find(R"("report": "unittest")"), std::string::npos);
  EXPECT_NE(s.find(R"("schema": "mcm.run_report/v1")"), std::string::npos);
  EXPECT_NE(s.find(R"("channels": 4)"), std::string::npos);
  EXPECT_NE(s.find(R"("label": "400MHz/4ch")"), std::string::npos);
  EXPECT_NE(s.find(R"("access_ms": 12.5)"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
}

TEST(RunReport, AddMetricsAttachesRegistrySnapshot) {
  RunReport report("unittest");
  MetricsRegistry reg;
  reg.counter("system/reads").inc(9);
  report.add_metrics(reg);
  const std::string s = report.root().dump_string(-1);
  EXPECT_NE(s.find(R"("system/reads":{"kind":"counter","value":9})"),
            std::string::npos);
}

TEST(RunReport, DefaultPathFollowsEnvironment) {
  RunReport report("envtest");
  {
    const ReportDirGuard guard("off");
    EXPECT_TRUE(report.default_path().empty());
    EXPECT_TRUE(report.write_default().empty());
  }
  {
    const ReportDirGuard guard("/some/dir");
    EXPECT_EQ(report.default_path(), "/some/dir/envtest.report.json");
  }
  {
    const ReportDirGuard guard(nullptr);
    EXPECT_EQ(report.default_path(), "./envtest.report.json");
  }
}

TEST(RunReport, WriteDefaultProducesParseableFile) {
  const std::string dir = ::testing::TempDir();
  RunReport report("roundtrip");
  report.add_point("only");
  const ReportDirGuard guard(dir.c_str());
  const std::string path = report.write_default();
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find(R"("report": "roundtrip")"), std::string::npos);
  EXPECT_NE(buf.str().find(R"("label": "only")"), std::string::npos);
}

TEST(RunReport, WriteFileFailsGracefully) {
  const RunReport report("nowhere");
  EXPECT_FALSE(report.write_file("/nonexistent-dir-xyz/report.json"));
}

}  // namespace
}  // namespace mcm::obs
