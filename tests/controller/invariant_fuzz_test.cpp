// Randomized invariant fuzzing of the memory controller: random policy
// combinations driven by random arrival processes must always preserve the
// global invariants - every request served exactly once, counters
// consistent, residency covering the whole window, and a protocol-legal
// command trace.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/memory_controller.hpp"
#include "dram/energy.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::ctrl {
namespace {

class InvariantFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantFuzz, ControllerPreservesInvariants) {
  Rng rng(GetParam());

  // Random configuration.
  ControllerConfig cfg;
  cfg.record_trace = true;
  cfg.page_policy = static_cast<PagePolicy>(rng.next_below(3));
  cfg.page_timeout_cycles = 32 + static_cast<std::uint32_t>(rng.next_below(512));
  cfg.scheduler = rng.next_below(2) == 0 ? SchedulerPolicy::kFcfs
                                         : SchedulerPolicy::kFrFcfs;
  cfg.queue_depth = 2 + static_cast<std::uint32_t>(rng.next_below(30));
  cfg.powerdown_idle_cycles = rng.next_below(4) == 0 ? -1
                                                     : static_cast<int>(rng.next_below(64));
  cfg.selfrefresh_idle_cycles =
      rng.next_below(3) == 0 ? static_cast<int>(64 + rng.next_below(256)) : -1;
  cfg.refresh_postpone_max = static_cast<std::uint32_t>(rng.next_below(9));
  const double freq = 200.0 + 333.0 * rng.next_double();
  const auto mux = static_cast<AddressMux>(rng.next_below(4));

  const auto spec = dram::DeviceSpec::next_gen_mobile_ddr();
  MemoryController mc(spec, Frequency{freq}, mux, cfg);

  // Random arrival process: bursty sequential runs with random jumps and
  // idle gaps of wildly different lengths.
  const int total = 600;
  int submitted = 0, completed = 0;
  std::uint64_t addr = rng.next_below(spec.org.capacity_bytes() / 16) * 16;
  Time arrival = Time::zero();
  std::uint64_t reads = 0, writes = 0;
  while (completed < total) {
    while (submitted < total && mc.can_accept()) {
      const bool wr = rng.next_below(3) == 0;
      mc.enqueue(Request{addr, wr, arrival, 0});
      (wr ? writes : reads) += 1;
      ++submitted;
      // Next address: mostly sequential, sometimes a jump.
      if (rng.next_below(16) == 0) {
        addr = rng.next_below(spec.org.capacity_bytes() / 16) * 16;
      } else {
        addr = (addr + 16) % spec.org.capacity_bytes();
      }
      // Arrival process: back-to-back, short stall, or a long idle gap.
      switch (rng.next_below(12)) {
        case 0: arrival += Time::from_us(1.0 + 50.0 * rng.next_double()); break;
        case 1: arrival += Time::from_ns(100.0 * rng.next_double()); break;
        default: break;
      }
    }
    const Completion c = mc.process_one();
    ++completed;
    // Served exactly in the address space and after its arrival.
    EXPECT_GE(c.done, c.req.arrival);
    EXPECT_GE(c.first_command, Time::zero());
  }

  const Time end = mc.horizon() + Time::from_us(200.0 * rng.next_double());
  mc.finalize(end);

  // Counter consistency.
  const auto& st = mc.stats();
  EXPECT_EQ(st.reads, reads);
  EXPECT_EQ(st.writes, writes);
  EXPECT_EQ(st.bytes, static_cast<std::uint64_t>(total) * 16);
  EXPECT_EQ(st.row_hits + st.row_misses + st.row_conflicts,
            static_cast<std::uint64_t>(total));
  EXPECT_EQ(st.activates, st.row_misses + st.row_conflicts);
  EXPECT_EQ(st.latency_ns().count(), static_cast<std::uint64_t>(total));

  // Residency covers the whole window (within 1%: refresh windows are
  // booked as precharge standby and wake ramps as standby).
  const auto& l = mc.ledger();
  const double covered = l.t_active_standby.seconds() +
                         l.t_precharge_standby.seconds() +
                         l.t_active_powerdown.seconds() +
                         l.t_powerdown.seconds() + l.t_selfrefresh.seconds();
  EXPECT_NEAR(covered, end.seconds(), end.seconds() * 0.01 + 1e-7);

  // Energy tally is finite and positive.
  const dram::EnergyModel model(spec.power, mc.timing());
  const double pj = model.tally(l).total_pj();
  EXPECT_GT(pj, 0.0);
  EXPECT_TRUE(std::isfinite(pj));

  // The full command trace obeys the DRAM protocol.
  dram::TimingChecker checker(spec.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front())
      << " [policy=" << std::string(to_string(cfg.page_policy))
      << " mux=" << std::string(to_string(mux)) << " freq=" << freq
      << " q=" << cfg.queue_depth << " pd=" << cfg.powerdown_idle_cycles
      << " sr=" << cfg.selfrefresh_idle_cycles
      << " refpp=" << cfg.refresh_postpone_max << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace mcm::ctrl
