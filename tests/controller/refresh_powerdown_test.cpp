#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::ctrl {
namespace {

class RefreshPowerDownTest : public ::testing::Test {
 protected:
  RefreshPowerDownTest() : spec_(dram::DeviceSpec::next_gen_mobile_ddr()) {
    cfg_.record_trace = true;
  }

  MemoryController make() {
    return MemoryController(spec_, Frequency{400.0}, AddressMux::kRBC, cfg_);
  }

  dram::DeviceSpec spec_;
  ControllerConfig cfg_;
};

TEST_F(RefreshPowerDownTest, RefreshRateTracksTrefi) {
  auto mc = make();
  // Stream sequential reads for ~10 refresh intervals of busy time.
  const auto& d = mc.timing();
  const Time goal = d.cycles(d.trefi * 10);
  std::uint64_t a = 0;
  while (mc.horizon() < goal) {
    mc.enqueue(Request{a, false, Time::zero(), 0});
    (void)mc.process_one();
    a += 16;
  }
  EXPECT_GE(mc.stats().refreshes, 9u);
  EXPECT_LE(mc.stats().refreshes, 12u);
}

TEST_F(RefreshPowerDownTest, IdleTailEntersPowerDownAndCatchesUpRefreshes) {
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  const Time window = Time::from_ms(33.0);
  mc.finalize(window);
  const auto& ledger = mc.ledger();
  EXPECT_GE(ledger.n_powerdown_entries, 1u);
  // Nearly the whole window sits in (precharge) power-down.
  EXPECT_GT(ledger.t_powerdown.seconds(), window.seconds() * 0.95);
  // 33 ms / 7.8125 us = ~4224 refresh events survive the tail.
  EXPECT_GE(mc.stats().refreshes, 4000u);
  EXPECT_LE(mc.stats().refreshes, 4500u);
}

TEST_F(RefreshPowerDownTest, ResidencyCoversWholeWindow) {
  auto mc = make();
  std::uint64_t a = 0;
  for (int i = 0; i < 200; ++i) {
    mc.enqueue(Request{a, (i % 2) == 0, Time::zero(), 0});
    (void)mc.process_one();
    a += 16;
  }
  const Time window = Time::from_ms(5.0);
  mc.finalize(window);
  const auto& l = mc.ledger();
  const double covered = l.t_active_standby.seconds() +
                         l.t_precharge_standby.seconds() +
                         l.t_active_powerdown.seconds() + l.t_powerdown.seconds();
  // Total residency accounts for the full window (within 1%; refresh windows
  // are booked as precharge standby).
  EXPECT_NEAR(covered, window.seconds(), window.seconds() * 0.01);
}

TEST_F(RefreshPowerDownTest, PowerDownDisabledKeepsStandby) {
  cfg_.powerdown_idle_cycles = -1;
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  mc.finalize(Time::from_ms(1.0));
  EXPECT_EQ(mc.ledger().n_powerdown_entries, 0u);
  EXPECT_EQ(mc.ledger().t_powerdown, Time::zero());
  EXPECT_GT(mc.ledger().t_precharge_standby, Time::zero());
}

TEST_F(RefreshPowerDownTest, GapBetweenRequestsUsesPowerDown) {
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  // Next request arrives 1 ms later: the controller powers down in between
  // and pays tXP on wake.
  mc.enqueue(Request{16, false, Time::from_ms(1.0), 0});
  const Completion c = mc.process_one();
  EXPECT_GE(mc.ledger().n_powerdown_entries, 1u);
  const auto& d = mc.timing();
  EXPECT_GE(c.first_command, Time::from_ms(1.0) + d.cycles(d.txp));
}

TEST_F(RefreshPowerDownTest, TraceWithIdleGapsPassesChecker) {
  auto mc = make();
  Time arrival = Time::zero();
  std::uint64_t a = 0;
  for (int i = 0; i < 50; ++i) {
    mc.enqueue(Request{a, (i % 3) == 0, arrival, 0});
    (void)mc.process_one();
    a += 16;
    if (i % 10 == 9) arrival += Time::from_us(50.0);  // idle gaps
  }
  mc.finalize(arrival + Time::from_us(200.0));
  dram::TimingChecker checker(spec_.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front());
}

TEST_F(RefreshPowerDownTest, ShortGapStaysInStandby) {
  cfg_.powerdown_idle_cycles = 100;  // lazy governor
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  const Completion c1 = mc.process_one();
  // 50-cycle gap: below the threshold, no power-down.
  const auto& d = mc.timing();
  mc.enqueue(Request{16, false, c1.done + d.cycles(50), 0});
  (void)mc.process_one();
  EXPECT_EQ(mc.ledger().n_powerdown_entries, 0u);
}

}  // namespace
}  // namespace mcm::ctrl
