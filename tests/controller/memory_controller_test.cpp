#include "controller/memory_controller.hpp"

#include <gtest/gtest.h>

#include "dram/timing_checker.hpp"

namespace mcm::ctrl {
namespace {

class MemoryControllerTest : public ::testing::Test {
 protected:
  MemoryControllerTest() : spec_(dram::DeviceSpec::next_gen_mobile_ddr()) {
    cfg_.record_trace = true;
  }

  MemoryController make(Frequency f = Frequency{400.0},
                        AddressMux mux = AddressMux::kRBC) {
    return MemoryController(spec_, f, mux, cfg_);
  }

  static Request read_at(std::uint64_t addr, Time arrival = Time::zero()) {
    return Request{addr, false, arrival, 0};
  }
  static Request write_at(std::uint64_t addr, Time arrival = Time::zero()) {
    return Request{addr, true, arrival, 0};
  }

  dram::DeviceSpec spec_;
  ControllerConfig cfg_;
};

TEST_F(MemoryControllerTest, ServesSingleRead) {
  auto mc = make();
  mc.enqueue(read_at(0));
  const Completion c = mc.process_one();
  EXPECT_FALSE(c.row_hit);  // cold bank: ACT needed
  const auto& d = mc.timing();
  // ACT at t=0, RD at tRCD, data ends CL + BL/2 later.
  EXPECT_EQ(c.done, d.cycles(d.trcd + d.cl + d.burst_ck));
  EXPECT_EQ(mc.stats().reads, 1u);
  EXPECT_EQ(mc.stats().row_misses, 1u);
}

TEST_F(MemoryControllerTest, SequentialReadsHitOpenRow) {
  auto mc = make();
  for (int i = 0; i < 64; ++i) {
    mc.enqueue(read_at(static_cast<std::uint64_t>(i) * 16));
    (void)mc.process_one();
  }
  // 64 sequential bursts in one 2 KiB row: one miss, then all hits.
  EXPECT_EQ(mc.stats().row_misses, 1u);
  EXPECT_EQ(mc.stats().row_hits, 63u);
}

TEST_F(MemoryControllerTest, SequentialReadsSaturateDataBus) {
  auto mc = make();
  Time last = Time::zero();
  const int n = 512;
  for (int i = 0; i < n; ++i) {
    mc.enqueue(read_at(static_cast<std::uint64_t>(i) * 16));
    last = mc.process_one().done;
  }
  // Steady state: one burst per burst_ck cycles; allow startup + row-miss
  // slack of a few percent.
  const auto& d = mc.timing();
  const double ideal_ps = static_cast<double>(n) * d.cycles(d.burst_ck).ps();
  EXPECT_LT(static_cast<double>(last.ps()), ideal_ps * 1.10);
}

TEST_F(MemoryControllerTest, RowConflictCostsPrechargeActivate) {
  auto mc = make();
  const auto& d = mc.timing();
  // Same bank, different row (RBC: bank stride is row_bytes, so same bank is
  // banks * row_bytes apart).
  const std::uint64_t same_bank_next_row =
      static_cast<std::uint64_t>(spec_.org.row_bytes) * spec_.org.banks;
  mc.enqueue(read_at(0));
  const Completion c1 = mc.process_one();
  mc.enqueue(read_at(same_bank_next_row));
  const Completion c2 = mc.process_one();
  EXPECT_EQ(mc.stats().row_conflicts, 1u);
  // The second access pays at least tRP + tRCD beyond the first data end.
  EXPECT_GE((c2.done - c1.done).ps(), d.cycles(d.trp + d.trcd).ps());
}

TEST_F(MemoryControllerTest, CommandTracePassesIndependentChecker) {
  auto mc = make();
  // Mixed traffic: sequential runs, bank conflicts, read/write interleave.
  std::uint64_t a = 0;
  for (int i = 0; i < 400; ++i) {
    const bool wr = (i % 3) == 0;
    const std::uint64_t addr = (i % 7 == 0) ? a + 8ull * 1024 * 1024 : a;
    mc.enqueue(Request{addr, wr, Time::zero(), 0});
    (void)mc.process_one();
    a += 16;
  }
  mc.finalize(mc.horizon() + Time::from_us(100.0));
  dram::TimingChecker checker(spec_.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front());
}

class CheckerSweep
    : public ::testing::TestWithParam<std::tuple<double, AddressMux, PagePolicy>> {};

TEST_P(CheckerSweep, TracesLegalAcrossConfigs) {
  const auto [freq, mux, page] = GetParam();
  const dram::DeviceSpec spec = dram::DeviceSpec::next_gen_mobile_ddr();
  ControllerConfig cfg;
  cfg.record_trace = true;
  cfg.page_policy = page;
  MemoryController mc(spec, Frequency{freq}, mux, cfg);
  std::uint64_t a = 0;
  for (int i = 0; i < 300; ++i) {
    mc.enqueue(Request{a, (i % 4) == 1, Time::zero(), 0});
    (void)mc.process_one();
    a += (i % 11 == 0) ? 64 * 1024 : 16;  // occasional jumps
  }
  mc.finalize(mc.horizon() + Time::from_us(50.0));
  dram::TimingChecker checker(spec.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CheckerSweep,
    ::testing::Combine(::testing::Values(200.0, 333.0, 400.0, 533.0),
                       ::testing::Values(AddressMux::kRBC, AddressMux::kBRC,
                                         AddressMux::kRCB),
                       ::testing::Values(PagePolicy::kOpen, PagePolicy::kClosed)));

TEST_F(MemoryControllerTest, ClosedPagePolicyNeverHits) {
  cfg_.page_policy = PagePolicy::kClosed;
  auto mc = make();
  for (int i = 0; i < 32; ++i) {
    mc.enqueue(read_at(static_cast<std::uint64_t>(i) * 16));
    (void)mc.process_one();
  }
  EXPECT_EQ(mc.stats().row_hits, 0u);
  EXPECT_EQ(mc.stats().row_misses, 32u);
  EXPECT_EQ(mc.stats().precharges, 32u);
}

TEST_F(MemoryControllerTest, QueueCapacityRespected) {
  auto mc = make();
  for (std::uint32_t i = 0; i < cfg_.queue_depth; ++i) {
    ASSERT_TRUE(mc.can_accept());
    mc.enqueue(read_at(i * 16ull));
  }
  EXPECT_FALSE(mc.can_accept());
  (void)mc.process_one();
  EXPECT_TRUE(mc.can_accept());
}

TEST_F(MemoryControllerTest, LatencyIncludesArrivalWait) {
  auto mc = make();
  const Time arrival = Time::from_us(3.0);
  mc.enqueue(read_at(0, arrival));
  const Completion c = mc.process_one();
  EXPECT_GE(c.first_command, arrival);
  EXPECT_GT(c.latency(), Time::zero());
}

TEST_F(MemoryControllerTest, BytesAccountedPerBurst) {
  auto mc = make();
  for (int i = 0; i < 10; ++i) {
    mc.enqueue(read_at(static_cast<std::uint64_t>(i) * 16));
    (void)mc.process_one();
  }
  EXPECT_EQ(mc.stats().bytes, 160u);
}

}  // namespace
}  // namespace mcm::ctrl
