// Refresh postponing (burst refresh): due refreshes defer while requests
// are pending and repay during idle gaps, shaving worst-case latency.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "controller/memory_controller.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::ctrl {
namespace {

class RefreshPostponeTest : public ::testing::Test {
 protected:
  RefreshPostponeTest() : spec_(dram::DeviceSpec::next_gen_mobile_ddr()) {
    cfg_.record_trace = true;
  }

  MemoryController make(std::uint32_t postpone) {
    cfg_.refresh_postpone_max = postpone;
    return MemoryController(spec_, Frequency{400.0}, AddressMux::kRBC, cfg_);
  }

  /// Stream sequential reads back to back for roughly `intervals` x tREFI.
  static void stream(MemoryController& mc, int intervals) {
    const auto& d = mc.timing();
    const Time goal = d.cycles(d.trefi * intervals);
    std::uint64_t a = 0;
    while (mc.horizon() < goal) {
      // Keep the queue non-empty so postponing is allowed.
      while (mc.can_accept()) {
        mc.enqueue(Request{a, false, Time::zero(), 0});
        a += 16;
      }
      (void)mc.process_one();
    }
    while (mc.has_pending()) (void)mc.process_one();
  }

  dram::DeviceSpec spec_;
  ControllerConfig cfg_;
};

TEST_F(RefreshPostponeTest, RefreshCountConservedOverall) {
  auto immediate = make(0);
  auto postponed = make(8);
  stream(immediate, 10);
  stream(postponed, 10);
  immediate.finalize(immediate.horizon() + Time::from_us(100.0));
  postponed.finalize(postponed.horizon() + Time::from_us(100.0));
  // Postponing shifts refreshes, it does not drop them.
  const auto ri = immediate.stats().refreshes;
  const auto rp = postponed.stats().refreshes;
  EXPECT_NEAR(static_cast<double>(rp), static_cast<double>(ri), 9.0);
  EXPECT_GE(rp, 9u);
}

TEST_F(RefreshPostponeTest, DebtRepaidInIdleGap) {
  auto mc = make(8);
  // Busy burst shorter than 8 x tREFI: all due refreshes postpone.
  const auto& d = mc.timing();
  std::uint64_t a = 0;
  while (mc.horizon() < d.cycles(d.trefi * 3)) {
    while (mc.can_accept()) {
      mc.enqueue(Request{a, false, Time::zero(), 0});
      a += 16;
    }
    (void)mc.process_one();
  }
  while (mc.has_pending()) (void)mc.process_one();  // drain the busy queue
  const auto during_busy = mc.stats().refreshes;
  // Idle gap: the debt (about 3) flushes before the next request.
  mc.enqueue(Request{a, false, mc.horizon() + Time::from_us(100.0), 0});
  (void)mc.process_one();
  EXPECT_GE(mc.stats().refreshes, during_busy + 2);
}

TEST_F(RefreshPostponeTest, PostponedTraceStillLegal) {
  auto mc = make(8);
  stream(mc, 5);
  mc.finalize(mc.horizon() + Time::from_us(50.0));
  dram::TimingChecker checker(spec_.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST_F(RefreshPostponeTest, PostponingReducesWorstCaseLatency) {
  auto run_max_latency = [&](std::uint32_t postpone) {
    auto mc = make(postpone);
    stream(mc, 6);
    return mc.stats().latency_ns().max();
  };
  // With immediate refresh, some request eats a full tRFC stall; postponed
  // mode defers that to idle time.
  EXPECT_LT(run_max_latency(8), run_max_latency(0));
}

TEST_F(RefreshPostponeTest, InterconnectIntervalThrottlesFrontEnd) {
  // Companion check for the channel front-end limit: spacing requests by
  // 4 cycles halves sequential-read throughput vs the 2-cycle data rate.
  const dram::DeviceSpec spec = dram::DeviceSpec::next_gen_mobile_ddr();
  auto run = [&](int interval) {
    channel::InterconnectSpec ic;
    ic.request_interval_cycles = interval;
    channel::Channel ch(spec, Frequency{400.0}, AddressMux::kRBC, {}, ic);
    Time last = Time::zero();
    std::uint64_t a = 0;
    for (int i = 0; i < 1024; ++i) {
      while (!ch.can_accept()) last = max(last, ch.process_one().done);
      ch.enqueue(ctrl::Request{a, false, Time::zero(), 0});
      a += 16;
    }
    while (ch.has_pending()) last = max(last, ch.process_one().done);
    return last;
  };
  const Time free_run = run(0);
  const Time throttled = run(4);
  EXPECT_NEAR(static_cast<double>(throttled.ps()) / free_run.ps(), 2.0, 0.25);
}

}  // namespace
}  // namespace mcm::ctrl
