#include "controller/address_mapping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace mcm::ctrl {
namespace {

const dram::OrgSpec kOrg = dram::DeviceSpec::next_gen_mobile_ddr().org;

TEST(AddressMapping, RbcSequentialStaysInRowThenRotatesBank) {
  const AddressMapper m(kOrg, AddressMux::kRBC);
  // Within one 2 KiB row: same bank, same row, increasing column.
  const auto first = m.decode(0);
  const auto last = m.decode(kOrg.row_bytes - 16);
  EXPECT_EQ(first.bank, last.bank);
  EXPECT_EQ(first.row, last.row);
  EXPECT_EQ(last.column_burst, kOrg.bursts_per_row() - 1);
  // The next row-sized block lands in the next bank (same row index).
  const auto next = m.decode(kOrg.row_bytes);
  EXPECT_EQ(next.bank, (first.bank + 1) % kOrg.banks);
  EXPECT_EQ(next.row, first.row);
  // After all banks, the row advances.
  const auto wrap = m.decode(static_cast<std::uint64_t>(kOrg.row_bytes) * kOrg.banks);
  EXPECT_EQ(wrap.bank, first.bank);
  EXPECT_EQ(wrap.row, first.row + 1);
}

TEST(AddressMapping, BrcKeepsBankForContiguousQuarter) {
  const AddressMapper m(kOrg, AddressMux::kBRC);
  const std::uint64_t quarter = kOrg.capacity_bytes() / kOrg.banks;
  EXPECT_EQ(m.decode(0).bank, 0u);
  EXPECT_EQ(m.decode(quarter - 16).bank, 0u);
  EXPECT_EQ(m.decode(quarter).bank, 1u);
  // Consecutive rows within a bank.
  EXPECT_EQ(m.decode(kOrg.row_bytes).row, m.decode(0).row + 1);
}

TEST(AddressMapping, RcbRotatesBankPerBurst) {
  const AddressMapper m(kOrg, AddressMux::kRCB);
  EXPECT_EQ(m.decode(0).bank, 0u);
  EXPECT_EQ(m.decode(16).bank, 1u);
  EXPECT_EQ(m.decode(32).bank, 2u);
  EXPECT_EQ(m.decode(48).bank, 3u);
  EXPECT_EQ(m.decode(64).bank, 0u);
}

TEST(AddressMapping, WrapsBeyondCapacity) {
  const AddressMapper m(kOrg, AddressMux::kRBC);
  EXPECT_EQ(m.decode(kOrg.capacity_bytes()), m.decode(0));
  EXPECT_EQ(m.decode(kOrg.capacity_bytes() + 4096), m.decode(4096));
}

class MappingProperty : public ::testing::TestWithParam<AddressMux> {};

TEST_P(MappingProperty, EncodeDecodeRoundTrip) {
  const AddressMapper m(kOrg, GetParam());
  Rng rng(0xabc);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t addr =
        rng.next_below(kOrg.capacity_bytes() / 16) * 16;  // burst aligned
    const DecodedAddress d = m.decode(addr);
    EXPECT_LT(d.bank, kOrg.banks);
    EXPECT_LT(d.row, kOrg.rows_per_bank());
    EXPECT_LT(d.column_burst, kOrg.bursts_per_row());
    EXPECT_EQ(m.encode(d), addr);
  }
}

TEST_P(MappingProperty, DecodeIsInjectiveOverASample) {
  const AddressMapper m(kOrg, GetParam());
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t burst = 0; burst < 50'000; ++burst) {
    const DecodedAddress d = m.decode(burst * 16);
    const auto key = std::make_tuple(d.bank, d.row, d.column_burst);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate mapping at burst " << burst;
  }
}

TEST_P(MappingProperty, BurstOffsetIgnored) {
  const AddressMapper m(kOrg, GetParam());
  for (std::uint64_t base : {0ull, 4096ull, 123456ull * 16}) {
    const DecodedAddress d0 = m.decode(base);
    for (std::uint64_t off = 1; off < 16; ++off) {
      EXPECT_EQ(m.decode(base + off), d0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMuxes, MappingProperty,
                         ::testing::Values(AddressMux::kRBC, AddressMux::kBRC,
                                           AddressMux::kRCB, AddressMux::kRBCXor),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AddressMapping, XorHashSpreadsBankStrides) {
  // A stride of banks * row_bytes thrashes one bank under plain RBC but
  // rotates banks under the XOR permutation.
  const AddressMapper rbc(kOrg, AddressMux::kRBC);
  const AddressMapper xr(kOrg, AddressMux::kRBCXor);
  const std::uint64_t stride = static_cast<std::uint64_t>(kOrg.row_bytes) * kOrg.banks;
  std::set<std::uint32_t> rbc_banks, xor_banks;
  for (std::uint64_t i = 0; i < 8; ++i) {
    rbc_banks.insert(rbc.decode(i * stride).bank);
    xor_banks.insert(xr.decode(i * stride).bank);
  }
  EXPECT_EQ(rbc_banks.size(), 1u);
  EXPECT_EQ(xor_banks.size(), kOrg.banks);
}

TEST(AddressMapping, XorKeepsRowLocality) {
  const AddressMapper xr(kOrg, AddressMux::kRBCXor);
  const auto a = xr.decode(0);
  const auto b = xr.decode(kOrg.row_bytes - 16);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
}

}  // namespace
}  // namespace mcm::ctrl
