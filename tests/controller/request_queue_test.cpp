#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "controller/request_queue.hpp"

namespace mcm::ctrl {
namespace {

// All-banks-closed open-row lane for pushes that don't care about hit bits.
constexpr std::array<std::int64_t, 8> kClosed{-1, -1, -1, -1, -1, -1, -1, -1};

Request req(std::uint64_t addr) { return Request{addr, false, Time::zero(), 0}; }

Request req_at(std::uint64_t addr, std::int64_t arrival_ps, bool write = false) {
  return Request{addr, write, Time{arrival_ps}, 0};
}

DecodedAddress da(std::uint32_t bank, std::uint32_t row) {
  DecodedAddress d;
  d.bank = bank;
  d.row = row;
  return d;
}

std::vector<std::uint64_t> fifo_addrs(const RequestQueue& q) {
  std::vector<std::uint64_t> out;
  for (std::uint32_t s = q.head(); s != RequestQueue::kNil; s = q.next(s)) {
    out.push_back(q.entry(s).req.addr);
  }
  return out;
}

TEST(RequestQueue, PushPopKeepsFifoOrder) {
  RequestQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 4u);
  q.push(req(10), da(0, 0), kClosed.data());
  q.push(req(20), da(1, 0), kClosed.data());
  q.push(req(30), da(2, 0), kClosed.data());
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(fifo_addrs(q), (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(q.pop(q.head()).req.addr, 10u);
  EXPECT_EQ(q.pop(q.head()).req.addr, 20u);
  EXPECT_EQ(q.pop(q.head()).req.addr, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, MiddleUnlinkPreservesOrderOfRest) {
  RequestQueue q(4);
  q.push(req(1), da(0, 0), kClosed.data());
  const std::uint32_t mid = q.push(req(2), da(0, 1), kClosed.data());
  q.push(req(3), da(0, 2), kClosed.data());
  EXPECT_EQ(q.pop(mid).req.addr, 2u);
  EXPECT_EQ(fifo_addrs(q), (std::vector<std::uint64_t>{1, 3}));
}

TEST(RequestQueue, TailUnlinkThenPushAppendsAtEnd) {
  RequestQueue q(4);
  q.push(req(1), da(0, 0), kClosed.data());
  const std::uint32_t tail = q.push(req(2), da(0, 1), kClosed.data());
  q.pop(tail);
  q.push(req(3), da(0, 2), kClosed.data());
  EXPECT_EQ(fifo_addrs(q), (std::vector<std::uint64_t>{1, 3}));
}

TEST(RequestQueue, SlotsAreReusedWithoutGrowth) {
  RequestQueue q(2);
  for (int i = 0; i < 100; ++i) {
    q.push(req(static_cast<std::uint64_t>(i)), da(0, 0), kClosed.data());
    q.push(req(static_cast<std::uint64_t>(i) + 1000), da(0, 1), kClosed.data());
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.pop(q.head()).req.addr, static_cast<std::uint64_t>(i));
    EXPECT_EQ(q.pop(q.head()).req.addr, static_cast<std::uint64_t>(i) + 1000);
    EXPECT_TRUE(q.empty());
  }
}

TEST(RequestQueue, CarriesDecodedAddress) {
  RequestQueue q(2);
  const std::uint32_t s = q.push(req(42), da(3, 17), kClosed.data());
  EXPECT_EQ(q.entry(s).da.bank, 3u);
  EXPECT_EQ(q.entry(s).da.row, 17u);
  EXPECT_EQ(q.front().da.bank, 3u);
}

TEST(RequestQueue, HitBitSeededFromOpenRows) {
  RequestQueue q(4);
  std::array<std::int64_t, 4> open{-1, 17, -1, -1};
  const std::uint32_t hit = q.push(req(1), da(1, 17), open.data());
  const std::uint32_t other_row = q.push(req(2), da(1, 3), open.data());
  const std::uint32_t closed = q.push(req(3), da(0, 17), open.data());
  EXPECT_TRUE(q.is_row_hit(hit));
  EXPECT_FALSE(q.is_row_hit(other_row));
  EXPECT_FALSE(q.is_row_hit(closed));
  EXPECT_EQ(q.hit_write(hit), RequestQueue::kHitBit);
}

TEST(RequestQueue, WriteBitTracksDirection) {
  RequestQueue q(2);
  const std::uint32_t rd = q.push(req_at(1, 0, false), da(0, 0), kClosed.data());
  const std::uint32_t wr = q.push(req_at(2, 0, true), da(0, 1), kClosed.data());
  EXPECT_EQ(q.hit_write(rd) & RequestQueue::kWriteBit, 0);
  EXPECT_EQ(q.hit_write(wr) & RequestQueue::kWriteBit, RequestQueue::kWriteBit);
}

TEST(RequestQueue, RowChangedRederivesHitBits) {
  RequestQueue q(4);
  const std::uint32_t a = q.push(req(1), da(1, 17), kClosed.data());
  const std::uint32_t b = q.push(req(2), da(1, 3), kClosed.data());
  const std::uint32_t c = q.push(req(3), da(2, 17), kClosed.data());
  EXPECT_FALSE(q.is_row_hit(a));

  q.row_changed(1, 17);  // ACT bank 1 row 17
  EXPECT_TRUE(q.is_row_hit(a));
  EXPECT_FALSE(q.is_row_hit(b));
  EXPECT_FALSE(q.is_row_hit(c));  // other bank untouched

  q.row_changed(1, 3);  // conflict: bank 1 switches rows
  EXPECT_FALSE(q.is_row_hit(a));
  EXPECT_TRUE(q.is_row_hit(b));

  q.row_changed(1, -1);  // precharge
  EXPECT_FALSE(q.is_row_hit(a));
  EXPECT_FALSE(q.is_row_hit(b));
}

TEST(RequestQueue, EarliestSlotTracksMinArrival) {
  RequestQueue q(4);
  const std::uint32_t a = q.push(req_at(1, 300), da(0, 0), kClosed.data());
  const std::uint32_t b = q.push(req_at(2, 100), da(0, 1), kClosed.data());
  q.push(req_at(3, 200), da(0, 2), kClosed.data());
  EXPECT_EQ(q.earliest_slot(), b);
  // Popping the cached minimum forces the lazy rescan on the next query.
  q.pop(b);
  const std::uint32_t c = q.push(req_at(4, 200), da(0, 3), kClosed.data());
  // Tie at 200: the FIFO-older entry (pushed first) wins.
  EXPECT_NE(q.earliest_slot(), a);
  EXPECT_NE(q.earliest_slot(), c);
  EXPECT_EQ(q.entry(q.earliest_slot()).req.addr, 3u);
}

}  // namespace
}  // namespace mcm::ctrl
