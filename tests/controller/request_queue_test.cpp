#include <gtest/gtest.h>

#include <vector>

#include "controller/request_queue.hpp"

namespace mcm::ctrl {
namespace {

Request req(std::uint64_t addr) { return Request{addr, false, Time::zero(), 0}; }

DecodedAddress da(std::uint32_t bank, std::uint32_t row) {
  DecodedAddress d;
  d.bank = bank;
  d.row = row;
  return d;
}

std::vector<std::uint64_t> fifo_addrs(const RequestQueue& q) {
  std::vector<std::uint64_t> out;
  for (std::uint32_t s = q.head(); s != RequestQueue::kNil; s = q.next(s)) {
    out.push_back(q.entry(s).req.addr);
  }
  return out;
}

TEST(RequestQueue, PushPopKeepsFifoOrder) {
  RequestQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 4u);
  q.push(req(10), da(0, 0));
  q.push(req(20), da(1, 0));
  q.push(req(30), da(2, 0));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(fifo_addrs(q), (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(q.pop(q.head()).req.addr, 10u);
  EXPECT_EQ(q.pop(q.head()).req.addr, 20u);
  EXPECT_EQ(q.pop(q.head()).req.addr, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, MiddleUnlinkPreservesOrderOfRest) {
  RequestQueue q(4);
  q.push(req(1), da(0, 0));
  const std::uint32_t mid = q.push(req(2), da(0, 1));
  q.push(req(3), da(0, 2));
  EXPECT_EQ(q.pop(mid).req.addr, 2u);
  EXPECT_EQ(fifo_addrs(q), (std::vector<std::uint64_t>{1, 3}));
}

TEST(RequestQueue, TailUnlinkThenPushAppendsAtEnd) {
  RequestQueue q(4);
  q.push(req(1), da(0, 0));
  const std::uint32_t tail = q.push(req(2), da(0, 1));
  q.pop(tail);
  q.push(req(3), da(0, 2));
  EXPECT_EQ(fifo_addrs(q), (std::vector<std::uint64_t>{1, 3}));
}

TEST(RequestQueue, SlotsAreReusedWithoutGrowth) {
  RequestQueue q(2);
  for (int i = 0; i < 100; ++i) {
    q.push(req(static_cast<std::uint64_t>(i)), da(0, 0));
    q.push(req(static_cast<std::uint64_t>(i) + 1000), da(0, 1));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.pop(q.head()).req.addr, static_cast<std::uint64_t>(i));
    EXPECT_EQ(q.pop(q.head()).req.addr, static_cast<std::uint64_t>(i) + 1000);
    EXPECT_TRUE(q.empty());
  }
}

TEST(RequestQueue, CarriesDecodedAddress) {
  RequestQueue q(2);
  const std::uint32_t s = q.push(req(42), da(3, 17));
  EXPECT_EQ(q.entry(s).da.bank, 3u);
  EXPECT_EQ(q.entry(s).da.row, 17u);
  EXPECT_EQ(q.front().da.bank, 3u);
}

}  // namespace
}  // namespace mcm::ctrl
