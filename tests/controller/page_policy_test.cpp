// Page-policy behaviours: open (paper default), closed, and the timeout
// extension.
#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::ctrl {
namespace {

class PagePolicyTest : public ::testing::Test {
 protected:
  PagePolicyTest() : spec_(dram::DeviceSpec::next_gen_mobile_ddr()) {
    cfg_.record_trace = true;
  }

  MemoryController make(PagePolicy policy, std::uint32_t timeout = 512) {
    cfg_.page_policy = policy;
    cfg_.page_timeout_cycles = timeout;
    return MemoryController(spec_, Frequency{400.0}, AddressMux::kRBC, cfg_);
  }

  dram::DeviceSpec spec_;
  ControllerConfig cfg_;
};

TEST_F(PagePolicyTest, TimeoutHitsWhileRowIsWarm) {
  auto mc = make(PagePolicy::kTimeout, 512);
  for (int i = 0; i < 16; ++i) {
    mc.enqueue(Request{static_cast<std::uint64_t>(i) * 16, false, Time::zero(), 0});
    (void)mc.process_one();
  }
  // Back-to-back accesses: behaves exactly like the open-page policy.
  EXPECT_EQ(mc.stats().row_hits, 15u);
}

TEST_F(PagePolicyTest, TimeoutClosesStaleRow) {
  auto mc = make(PagePolicy::kTimeout, 512);
  mc.enqueue(Request{0, false, Time::zero(), 0});
  const Completion c1 = mc.process_one();
  // Same row, but after the 512-cycle timeout: treated as closed.
  const auto& d = mc.timing();
  mc.enqueue(Request{16, false, c1.done + d.cycles(2000), 0});
  const Completion c2 = mc.process_one();
  EXPECT_FALSE(c2.row_hit);
  EXPECT_EQ(mc.stats().row_hits, 0u);
}

TEST_F(PagePolicyTest, OpenPolicyHitsAfterLongIdle) {
  auto mc = make(PagePolicy::kOpen);
  mc.enqueue(Request{0, false, Time::zero(), 0});
  const Completion c1 = mc.process_one();
  const auto& d = mc.timing();
  // Before the first refresh, a same-row access after idle still hits.
  mc.enqueue(Request{16, false, c1.done + d.cycles(1000), 0});
  const Completion c2 = mc.process_one();
  EXPECT_TRUE(c2.row_hit);
}

TEST_F(PagePolicyTest, TimeoutTraceLegal) {
  auto mc = make(PagePolicy::kTimeout, 64);
  const auto& d = mc.timing();
  Time arrival = Time::zero();
  for (int i = 0; i < 60; ++i) {
    mc.enqueue(Request{static_cast<std::uint64_t>(i % 20) * 2048, (i % 5) == 0,
                       arrival, 0});
    (void)mc.process_one();
    if (i % 7 == 6) arrival += d.cycles(300);  // stale gaps
  }
  mc.finalize(mc.horizon() + Time::from_us(20.0));
  dram::TimingChecker checker(spec_.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST_F(PagePolicyTest, HitRateOrdering) {
  // For the streaming workload: open >= timeout >= closed.
  auto run = [&](PagePolicy p) {
    auto mc = make(p, 64);
    const auto& d = mc.timing();
    Time arrival = Time::zero();
    for (int i = 0; i < 500; ++i) {
      mc.enqueue(Request{static_cast<std::uint64_t>(i) * 16, false, arrival, 0});
      (void)mc.process_one();
      if (i % 50 == 49) arrival = mc.horizon() + d.cycles(200);
    }
    return mc.stats().row_hit_rate();
  };
  const double open = run(PagePolicy::kOpen);
  const double timeout = run(PagePolicy::kTimeout);
  const double closed = run(PagePolicy::kClosed);
  EXPECT_GE(open, timeout);
  EXPECT_GE(timeout, closed);
  EXPECT_EQ(closed, 0.0);
}

}  // namespace
}  // namespace mcm::ctrl
