#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"

namespace mcm::ctrl {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : spec_(dram::DeviceSpec::next_gen_mobile_ddr()) {}

  MemoryController make(SchedulerPolicy s, std::uint32_t depth = 16) {
    ControllerConfig cfg;
    cfg.scheduler = s;
    cfg.queue_depth = depth;
    return MemoryController(spec_, Frequency{400.0}, AddressMux::kRBC, cfg);
  }

  // Same bank (bank 0), two different rows under RBC.
  std::uint64_t row0(std::uint64_t burst) const { return burst * 16; }
  std::uint64_t row1(std::uint64_t burst) const {
    return static_cast<std::uint64_t>(spec_.org.row_bytes) * spec_.org.banks +
           burst * 16;
  }

  dram::DeviceSpec spec_;
};

TEST_F(SchedulerTest, FrFcfsPrefersRowHits) {
  auto mc = make(SchedulerPolicy::kFrFcfs);
  // Open row 0 via a first access.
  mc.enqueue(Request{row0(0), false, Time::zero(), 0});
  (void)mc.process_one();
  // Queue: conflict first, then a hit. FR-FCFS serves the hit first.
  mc.enqueue(Request{row1(0), false, Time::zero(), 1});
  mc.enqueue(Request{row0(1), false, Time::zero(), 2});
  const Completion first = mc.process_one();
  EXPECT_EQ(first.req.source, 2);
  EXPECT_TRUE(first.row_hit);
  const Completion second = mc.process_one();
  EXPECT_EQ(second.req.source, 1);
  EXPECT_FALSE(second.row_hit);
}

TEST_F(SchedulerTest, FcfsServesInOrder) {
  auto mc = make(SchedulerPolicy::kFcfs);
  mc.enqueue(Request{row0(0), false, Time::zero(), 0});
  (void)mc.process_one();
  mc.enqueue(Request{row1(0), false, Time::zero(), 1});
  mc.enqueue(Request{row0(1), false, Time::zero(), 2});
  EXPECT_EQ(mc.process_one().req.source, 1);
  EXPECT_EQ(mc.process_one().req.source, 2);
}

TEST_F(SchedulerTest, FrFcfsGroupsBusDirection) {
  auto mc = make(SchedulerPolicy::kFrFcfs);
  // Alternating read/write row hits queued; FR-FCFS should batch directions
  // to limit turnarounds, finishing faster than strict FCFS.
  auto run = [&](SchedulerPolicy pol) {
    auto c = make(pol);
    Time last = Time::zero();
    int issued = 0;
    int processed = 0;
    const int total = 256;
    while (processed < total) {
      while (issued < total && c.can_accept()) {
        c.enqueue(Request{row0(static_cast<std::uint64_t>(issued) % 128),
                          (issued % 2) == 0, Time::zero(),
                          static_cast<std::uint16_t>(issued)});
        ++issued;
      }
      last = c.process_one().done;
      ++processed;
    }
    return last;
  };
  const Time frfcfs = run(SchedulerPolicy::kFrFcfs);
  const Time fcfs = run(SchedulerPolicy::kFcfs);
  EXPECT_LT(frfcfs.ps(), fcfs.ps());
}

TEST_F(SchedulerTest, StarvationGuardEventuallyServesConflict) {
  ControllerConfig cfg;
  cfg.scheduler = SchedulerPolicy::kFrFcfs;
  cfg.queue_depth = 4;
  cfg.max_skips = 8;
  MemoryController mc(spec_, Frequency{400.0}, AddressMux::kRBC, cfg);
  mc.enqueue(Request{row0(0), false, Time::zero(), 0});
  (void)mc.process_one();

  // Keep feeding row hits; the old conflict request must still complete
  // within the skip bound.
  mc.enqueue(Request{row1(0), false, Time::zero(), 999});
  bool conflict_served = false;
  std::uint64_t burst = 1;
  for (int i = 0; i < 64 && !conflict_served; ++i) {
    while (mc.can_accept()) {
      mc.enqueue(Request{row0(burst % 128), false, Time::zero(), 0});
      ++burst;
    }
    conflict_served = mc.process_one().req.source == 999;
  }
  EXPECT_TRUE(conflict_served);
}

TEST_F(SchedulerTest, NotReadyRequestsDeprioritized) {
  auto mc = make(SchedulerPolicy::kFrFcfs);
  mc.enqueue(Request{row0(0), false, Time::zero(), 0});
  (void)mc.process_one();
  // A future-arrival hit and a ready conflict: the ready one goes first.
  mc.enqueue(Request{row0(1), false, Time::from_ms(10.0), 7});
  mc.enqueue(Request{row1(0), false, Time::zero(), 8});
  EXPECT_EQ(mc.process_one().req.source, 8);
}

}  // namespace
}  // namespace mcm::ctrl
