// Bit-identity of the row-hit streaming fast path: a controller with
// stream_row_hits on must be externally indistinguishable from one with it
// off - every completion, the horizon after every completion, all counters,
// both histograms, the energy ledger, and the full command trace. The
// traffic below deliberately mixes the run-friendly pattern (long
// same-row/same-direction bursts) with everything that must terminate a
// run: direction flips, row conflicts, bank jumps, future arrivals (idle
// gaps long enough for power-down and self refresh), and refresh crossings.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "controller/memory_controller.hpp"

namespace mcm::ctrl {
namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 33;
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t s_;
};

// RBC layout used by the controller's mapper: row | bank | column.
std::uint64_t rbc_addr(const dram::DeviceSpec& spec, std::uint64_t row,
                       std::uint64_t bank, std::uint64_t col_burst) {
  return row * spec.org.row_bytes * spec.org.banks + bank * spec.org.row_bytes +
         col_burst * spec.org.bytes_per_burst();
}

// A request mix exercising every fast-path entry and exit condition.
std::vector<Request> make_traffic(const dram::DeviceSpec& spec,
                                  std::uint64_t seed, std::size_t n) {
  Lcg rng(seed);
  std::vector<Request> reqs;
  reqs.reserve(n);
  Time t = Time::zero();
  std::uint64_t row = 0;
  std::uint64_t bank = 0;
  std::uint64_t col = 0;
  bool write = false;
  while (reqs.size() < n) {
    // Start a new locality run: maybe move row/bank, maybe flip direction.
    const auto kind = rng.below(10);
    if (kind < 3) row = rng.below(64);
    if (kind < 5) bank = rng.below(spec.org.banks);
    if (rng.below(3) == 0) write = !write;
    // Occasional pacing: small gaps keep the pipe busy, large gaps trigger
    // power-down / self refresh, and huge ones cross refresh intervals.
    const auto gap = rng.below(100);
    if (gap < 60) {
      t = t + Time::from_ns(static_cast<double>(rng.below(20)));
    } else if (gap < 90) {
      t = t + Time::from_ns(static_cast<double>(rng.below(2000)));
    } else {
      t = t + Time::from_ns(static_cast<double>(rng.below(20'000'000)));
    }
    const std::size_t run = 1 + rng.below(8);
    for (std::size_t i = 0; i < run && reqs.size() < n; ++i) {
      col = (col + 1) % spec.org.bursts_per_row();
      reqs.push_back(Request{rbc_addr(spec, row, bank, col), write, t,
                             static_cast<std::uint16_t>(reqs.size() & 0xffff)});
    }
  }
  return reqs;
}

void expect_same_completion(const Completion& a, const Completion& b,
                            std::size_t i) {
  ASSERT_EQ(a.req.addr, b.req.addr) << "completion " << i;
  ASSERT_EQ(a.req.source, b.req.source) << "completion " << i;
  ASSERT_EQ(a.req.is_write, b.req.is_write) << "completion " << i;
  ASSERT_EQ(a.req.arrival.ps(), b.req.arrival.ps()) << "completion " << i;
  ASSERT_EQ(a.first_command.ps(), b.first_command.ps()) << "completion " << i;
  ASSERT_EQ(a.done.ps(), b.done.ps()) << "completion " << i;
  ASSERT_EQ(a.row_hit, b.row_hit) << "completion " << i;
}

void expect_same_histogram(const Histogram& a, const Histogram& b) {
  ASSERT_EQ(a.buckets(), b.buckets());
  ASSERT_EQ(a.underflow(), b.underflow());
  ASSERT_EQ(a.overflow(), b.overflow());
  ASSERT_EQ(a.summary().count(), b.summary().count());
  // Bit-equality of the Welford state: same samples in the same order.
  ASSERT_EQ(a.summary().mean(), b.summary().mean());
  ASSERT_EQ(a.summary().variance(), b.summary().variance());
  ASSERT_EQ(a.summary().min(), b.summary().min());
  ASSERT_EQ(a.summary().max(), b.summary().max());
}

void expect_same_state(const MemoryController& fast,
                       const MemoryController& slow) {
  const ControllerStats& a = fast.stats();
  const ControllerStats& b = slow.stats();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.activates, b.activates);
  EXPECT_EQ(a.precharges, b.precharges);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.bytes, b.bytes);
  expect_same_histogram(a.latency_hist_ns, b.latency_hist_ns);
  expect_same_histogram(a.queue_depth, b.queue_depth);

  const dram::EnergyLedger& la = fast.ledger();
  const dram::EnergyLedger& lb = slow.ledger();
  EXPECT_EQ(la.n_act, lb.n_act);
  EXPECT_EQ(la.n_rd, lb.n_rd);
  EXPECT_EQ(la.n_wr, lb.n_wr);
  EXPECT_EQ(la.n_ref, lb.n_ref);
  EXPECT_EQ(la.n_powerdown_entries, lb.n_powerdown_entries);
  EXPECT_EQ(la.n_selfrefresh_entries, lb.n_selfrefresh_entries);
  EXPECT_EQ(la.t_active_standby.ps(), lb.t_active_standby.ps());
  EXPECT_EQ(la.t_precharge_standby.ps(), lb.t_precharge_standby.ps());
  EXPECT_EQ(la.t_active_powerdown.ps(), lb.t_active_powerdown.ps());
  EXPECT_EQ(la.t_powerdown.ps(), lb.t_powerdown.ps());
  EXPECT_EQ(la.t_selfrefresh.ps(), lb.t_selfrefresh.ps());

  const auto& ta = fast.trace();
  const auto& tb = slow.trace();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].at.ps(), tb[i].at.ps()) << "command " << i;
    ASSERT_EQ(ta[i].cmd, tb[i].cmd) << "command " << i;
    ASSERT_EQ(ta[i].bank, tb[i].bank) << "command " << i;
    ASSERT_EQ(ta[i].row, tb[i].row) << "command " << i;
  }

  EXPECT_EQ(fast.bank_accesses(), slow.bank_accesses());
}

// Drive both controllers through the same enqueue/process interleaving and
// assert lockstep equality of every externally visible artifact.
void run_equivalence(ControllerConfig cfg, std::uint64_t seed,
                     std::size_t n = 3000) {
  const dram::DeviceSpec spec = dram::DeviceSpec::next_gen_mobile_ddr();
  const Frequency freq{400.0};
  cfg.record_trace = true;
  ControllerConfig on = cfg;
  on.stream_row_hits = true;
  ControllerConfig off = cfg;
  off.stream_row_hits = false;
  MemoryController fast(spec, freq, AddressMux::kRBC, on);
  MemoryController slow(spec, freq, AddressMux::kRBC, off);

  const std::vector<Request> reqs = make_traffic(spec, seed, n);
  std::size_t served = 0;
  for (const Request& r : reqs) {
    ASSERT_EQ(fast.can_accept(), slow.can_accept());
    while (!fast.can_accept()) {
      expect_same_completion(fast.process_one(), slow.process_one(), served++);
      ASSERT_EQ(fast.horizon().ps(), slow.horizon().ps());
      ASSERT_EQ(fast.can_accept(), slow.can_accept());
      ASSERT_EQ(fast.pending(), slow.pending());
    }
    fast.enqueue(r);
    slow.enqueue(r);
  }
  while (fast.has_pending()) {
    ASSERT_EQ(slow.has_pending(), true);
    expect_same_completion(fast.process_one(), slow.process_one(), served++);
    ASSERT_EQ(fast.horizon().ps(), slow.horizon().ps());
  }
  ASSERT_FALSE(slow.has_pending());
  const Time end = fast.horizon() + Time::from_ns(1e6);
  fast.finalize(end);
  slow.finalize(end);
  expect_same_state(fast, slow);
  EXPECT_EQ(fast.horizon().ps(), slow.horizon().ps());
}

TEST(FastPathEquivalence, FrFcfsPaperBaseline) {
  ControllerConfig cfg;  // open page, FR-FCFS, powerdown after 1 idle cycle
  cfg.queue_depth = 8;
  run_equivalence(cfg, 1);
}

TEST(FastPathEquivalence, FcfsOpenPage) {
  ControllerConfig cfg;
  cfg.scheduler = SchedulerPolicy::kFcfs;
  cfg.queue_depth = 4;
  run_equivalence(cfg, 2);
}

TEST(FastPathEquivalence, DeepQueue) {
  ControllerConfig cfg;
  cfg.queue_depth = 32;
  run_equivalence(cfg, 3);
}

TEST(FastPathEquivalence, SelfRefreshAndPostponedRefresh) {
  ControllerConfig cfg;
  cfg.queue_depth = 8;
  cfg.selfrefresh_idle_cycles = 64;
  cfg.refresh_postpone_max = 4;
  run_equivalence(cfg, 4);
}

TEST(FastPathEquivalence, PowerDownDisabled) {
  ControllerConfig cfg;
  cfg.queue_depth = 8;
  cfg.powerdown_idle_cycles = -1;
  run_equivalence(cfg, 5);
}

TEST(FastPathEquivalence, ClosedPageFastPathInert) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kClosed;
  cfg.queue_depth = 8;
  run_equivalence(cfg, 6);
}

TEST(FastPathEquivalence, TimeoutPagePolicy) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kTimeout;
  cfg.page_timeout_cycles = 64;
  cfg.queue_depth = 8;
  run_equivalence(cfg, 7);
}

TEST(FastPathEquivalence, ManySeeds) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    ControllerConfig cfg;
    cfg.queue_depth = 4 + (seed % 3) * 6;
    cfg.max_skips = seed % 2 == 0 ? 128 : 2;
    run_equivalence(cfg, seed, 1200);
  }
}

}  // namespace
}  // namespace mcm::ctrl
