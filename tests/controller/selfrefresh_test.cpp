// Self-refresh governor (Section V "novel policies" extension): long
// precharged idle gaps enter self refresh, suppress auto-refresh wakes, and
// pay tXSR on exit.
#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::ctrl {
namespace {

class SelfRefreshTest : public ::testing::Test {
 protected:
  SelfRefreshTest() : spec_(dram::DeviceSpec::next_gen_mobile_ddr()) {
    cfg_.record_trace = true;
    cfg_.selfrefresh_idle_cycles = 64;
  }

  MemoryController make() {
    return MemoryController(spec_, Frequency{400.0}, AddressMux::kRBC, cfg_);
  }

  dram::DeviceSpec spec_;
  ControllerConfig cfg_;
};

TEST_F(SelfRefreshTest, IdleTailUsesSelfRefresh) {
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  const Time window = Time::from_ms(33.0);
  mc.finalize(window);
  const auto& l = mc.ledger();
  EXPECT_GE(l.n_selfrefresh_entries, 1u);
  EXPECT_GT(l.t_selfrefresh.seconds(), window.seconds() * 0.95);
  // Auto-refresh wakes are suppressed (vs ~4200 without self refresh).
  EXPECT_LT(mc.stats().refreshes, 10u);
}

TEST_F(SelfRefreshTest, DisabledFallsBackToPowerDownAndRefresh) {
  cfg_.selfrefresh_idle_cycles = -1;
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  mc.finalize(Time::from_ms(33.0));
  EXPECT_EQ(mc.ledger().n_selfrefresh_entries, 0u);
  EXPECT_GT(mc.stats().refreshes, 4000u);
}

TEST_F(SelfRefreshTest, SelfRefreshSavesEnergyOverPowerDownTail) {
  const auto run_tail_energy = [&](int sr_cycles) {
    ControllerConfig cfg = cfg_;
    cfg.selfrefresh_idle_cycles = sr_cycles;
    MemoryController mc(spec_, Frequency{400.0}, AddressMux::kRBC, cfg);
    mc.enqueue(Request{0, false, Time::zero(), 0});
    (void)mc.process_one();
    mc.finalize(Time::from_ms(33.0));
    const dram::EnergyModel model(spec_.power, mc.timing());
    return model.tally(mc.ledger()).total_pj();
  };
  // Self refresh beats power-down + periodic refresh wakes for a long tail.
  EXPECT_LT(run_tail_energy(64), run_tail_energy(-1));
}

TEST_F(SelfRefreshTest, WakePaysTxsr) {
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  mc.enqueue(Request{1ull << 20, false, Time::from_ms(5.0), 0});
  const Completion c = mc.process_one();
  // Gap had open rows -> controller used active power-down, not SR (rows
  // open); force the precharged case via finalize-like idle instead:
  // the request still completes after its arrival.
  EXPECT_GE(c.first_command, Time::from_ms(5.0));
}

TEST_F(SelfRefreshTest, TraceWithSelfRefreshPassesChecker) {
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  mc.finalize(Time::from_ms(10.0));
  dram::TimingChecker checker(spec_.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations.front());
}

TEST_F(SelfRefreshTest, MidRunGapClosesRowsAndSelfRefreshes) {
  auto mc = make();
  mc.enqueue(Request{0, false, Time::zero(), 0});
  (void)mc.process_one();
  // Rows are open; the governor precharges them and self-refreshes through
  // the long gap, then serves the late request (which misses the row).
  mc.enqueue(Request{16, false, Time::from_ms(2.0), 0});
  const Completion c = mc.process_one();
  EXPECT_GE(mc.ledger().n_selfrefresh_entries, 1u);
  EXPECT_FALSE(c.row_hit);
  EXPECT_EQ(mc.stats().refreshes, 0u);  // suppressed by self refresh

  // The command trace (PRE + SRE/SRX + wake) is still protocol legal.
  mc.finalize(Time::from_ms(3.0));
  dram::TimingChecker checker(spec_.org, mc.timing());
  const auto violations = checker.check(mc.trace());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

}  // namespace
}  // namespace mcm::ctrl
