#include "multichannel/interleaver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mcm::multichannel {
namespace {

TEST(Interleaver, TableIIExample) {
  // Paper Table II: 16-byte granularity, addresses 0-15 -> BC 0,
  // 16-31 -> BC 1, ..., 16M.. wraps back to BC 0.
  const Interleaver il(4, 16);
  EXPECT_EQ(il.route(0).channel, 0u);
  EXPECT_EQ(il.route(15).channel, 0u);
  EXPECT_EQ(il.route(16).channel, 1u);
  EXPECT_EQ(il.route(31).channel, 1u);
  EXPECT_EQ(il.route(32).channel, 2u);
  EXPECT_EQ(il.route(48).channel, 3u);
  EXPECT_EQ(il.route(64).channel, 0u);
  EXPECT_EQ(il.route(64).local, 16u);
}

TEST(Interleaver, SingleChannelIsIdentity) {
  const Interleaver il(1, 16);
  for (std::uint64_t a : {0ull, 5ull, 16ull, 123456789ull}) {
    EXPECT_EQ(il.route(a).channel, 0u);
    EXPECT_EQ(il.route(a).local, a);
  }
}

TEST(Interleaver, LocalAddressesAreDenseSequential) {
  // Consecutive stripes on a channel map to consecutive local addresses.
  const Interleaver il(8, 16);
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    for (std::uint64_t k = 0; k < 100; ++k) {
      const std::uint64_t global = (k * 8 + ch) * 16;
      const RoutedAddress r = il.route(global);
      EXPECT_EQ(r.channel, ch);
      EXPECT_EQ(r.local, k * 16);
    }
  }
}

class InterleaverProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(InterleaverProperty, RouteRoundTrips) {
  const auto [channels, granularity] = GetParam();
  const Interleaver il(channels, granularity);
  Rng rng(123);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t a = rng.next_u64() % (1ull << 40);
    const RoutedAddress r = il.route(a);
    EXPECT_LT(r.channel, channels);
    EXPECT_EQ(il.to_global(r), a);
  }
}

TEST_P(InterleaverProperty, SequentialTrafficBalances) {
  const auto [channels, granularity] = GetParam();
  const Interleaver il(channels, granularity);
  std::vector<std::uint64_t> per_channel(channels, 0);
  const std::uint64_t total = 1ull << 20;
  for (std::uint64_t a = 0; a < total; a += 16) {
    per_channel[il.route(a).channel] += 16;
  }
  const std::uint64_t expect = total / channels;
  for (std::uint64_t bytes : per_channel) {
    EXPECT_NEAR(static_cast<double>(bytes), static_cast<double>(expect),
                static_cast<double>(granularity));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InterleaverProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(16u, 64u, 256u, 4096u)));

}  // namespace
}  // namespace mcm::multichannel
