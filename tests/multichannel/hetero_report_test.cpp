// Heterogeneous-system observability and placement: per-channel timing
// asymmetry must be visible in the run report (the latent-assumption audit:
// no consumer may price every channel with one global timing table), the
// vault transform must follow its single shared definition, and the
// cluster-level placement knob must show the hot-surfaces-on-fast-channels
// win the paper's future-work section argues for.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/frame_simulator.hpp"
#include "core/result_export.hpp"
#include "dram/device_class.hpp"
#include "multichannel/channel_clusters.hpp"
#include "multichannel/memory_system.hpp"

namespace mcm::multichannel {
namespace {

SystemConfig two_channel_hetero() {
  SystemConfig cfg;
  cfg.channels = 2;
  cfg.channel_classes = {dram::DeviceClass::kFastEdram,
                         dram::DeviceClass::kSlowPcm};
  return cfg;
}

/// Row-conflict-heavy pattern mirrored onto both channels: every burst
/// ping-pongs between two rows of one bank, so service time is dominated by
/// tRC — exactly where the classes differ.
void drive_mirrored_conflicts(MemorySystem& sys, int count) {
  const std::uint64_t stripe = sys.config().interleave_bytes;
  const std::uint64_t row = 2048 * 4;  // next row, same bank stride (RBC)
  for (int i = 0; i < count; ++i) {
    for (std::uint32_t ch = 0; ch < 2; ++ch) {
      const std::uint64_t local = (i % 2 == 0) ? 0 : row * 8;
      // Global address that routes to channel `ch` with local offset.
      const std::uint64_t addr = (local / stripe) * stripe * 2 + ch * stripe;
      sys.submit(ctrl::Request{addr, false, Time::zero(), 0});
      (void)sys.process_next();
    }
  }
}

TEST(HeteroReport, ChannelsBindTheirOwnClassTables) {
  MemorySystem sys(two_channel_hetero());
  // The audit's contract: consumers read timing from the channel, and the
  // two channels genuinely differ.
  const auto& fast = sys.channel(0).controller();
  const auto& slow = sys.channel(1).controller();
  EXPECT_LT(fast.timing().trc, slow.timing().trc);
  EXPECT_LT(fast.device().org.capacity_bits, slow.device().org.capacity_bits);
  EXPECT_EQ(sys.capacity_bytes(), fast.device().org.capacity_bytes() +
                                      slow.device().org.capacity_bytes());
}

TEST(HeteroReport, DifferentTrcYieldsDifferentPerChannelP95) {
  MemorySystem sys(two_channel_hetero());
  drive_mirrored_conflicts(sys, 400);
  sys.finalize(sys.max_horizon());

  const SystemStats st = sys.stats();
  ASSERT_EQ(st.per_channel.size(), 2u);
  // Identical request streams, so only the class timing can separate them.
  EXPECT_EQ(st.per_channel[0].accesses(), st.per_channel[1].accesses());
  const double p95_fast = st.per_channel[0].latency_hist_ns.percentile(0.95);
  const double p95_slow = st.per_channel[1].latency_hist_ns.percentile(0.95);
  EXPECT_LT(p95_fast, p95_slow);

  // And the run report carries the asymmetry: per-channel p95 fields in the
  // exported JSON must differ (the regression the audit guards against is a
  // report that prices every channel identically).
  core::FrameSimResult r;
  r.stats = st;
  obs::JsonValue point = obs::JsonValue::object();
  core::export_result(point, r);
  const obs::JsonValue* per_channel = point.find("per_channel");
  ASSERT_NE(per_channel, nullptr);
  ASSERT_EQ(per_channel->size(), 2u);
  const double exported_fast =
      per_channel->at(0)->find("latency")->find("p95_ns")->as_double();
  const double exported_slow =
      per_channel->at(1)->find("latency")->find("p95_ns")->as_double();
  EXPECT_EQ(exported_fast, p95_fast);
  EXPECT_EQ(exported_slow, p95_slow);
  EXPECT_LT(exported_fast, exported_slow);
}

TEST(HeteroReport, ConfigExportNamesClassesOnlyWhenHeterogeneous) {
  obs::JsonValue hetero = obs::JsonValue::object();
  core::export_config(hetero, two_channel_hetero(), video::UseCaseParams{});
  const obs::JsonValue* classes = hetero.find("channel_classes");
  ASSERT_NE(classes, nullptr);
  ASSERT_EQ(classes->size(), 2u);
  EXPECT_EQ(classes->at(0)->as_string(), "fast_edram");
  EXPECT_EQ(classes->at(1)->as_string(), "slow_pcm");

  obs::JsonValue legacy = obs::JsonValue::object();
  core::export_config(legacy, SystemConfig{}, video::UseCaseParams{});
  EXPECT_EQ(legacy.find("channel_classes"), nullptr);
  EXPECT_EQ(legacy.find("vault_group"), nullptr);
}

TEST(HeteroReport, VaultTransformFollowsSingleDefinition) {
  SystemConfig cfg;
  cfg.channels = 4;
  cfg.vault_group = 4;
  cfg.interconnect.request_interval_cycles = 2;
  const channel::InterconnectSpec ic = cfg.channel_interconnect(0);
  EXPECT_EQ(ic.request_interval_cycles, 8);  // 1/G TDM share
  EXPECT_EQ(ic.latency.ps(),
            cfg.interconnect.latency.ps() + Time::from_ns(2.0).ps());
  // vault_group 0/1 are both "independent interfaces".
  cfg.vault_group = 1;
  EXPECT_EQ(cfg.channel_interconnect(0).request_interval_cycles, 2);
  EXPECT_EQ(cfg.channel_interconnect(0).latency.ps(),
            cfg.interconnect.latency.ps());
}

TEST(HeteroReport, ClassListLengthMustMatchChannels) {
  SystemConfig cfg;
  cfg.channels = 4;
  cfg.channel_classes = {dram::DeviceClass::kFastEdram};
  EXPECT_THROW(MemorySystem{cfg}, std::invalid_argument);
}

TEST(HeteroReport, HotStreamOnFastClusterBeatsSwappedPlacement) {
  // Two clusters, one hot row-conflict stream and one cold stream. Placing
  // the hot stream's slice on the fast-class cluster must finish earlier
  // than the swapped placement — the hot-surfaces-to-fast-channels frontier
  // the explore sweep reports, reduced to its minimal form.
  const auto run = [](dram::DeviceClass first,
                      dram::DeviceClass second) -> Time {
    ClusterConfig cfg;
    cfg.per_cluster.channels = 2;
    cfg.clusters = 2;
    cfg.cluster_classes = {first, second};
    ChannelClusterSystem sys(cfg);
    const std::uint64_t slice = sys.capacity_bytes() / 2;
    const std::uint64_t row = 2048 * cfg.per_cluster.channels * 4;
    // Hot: row ping-pong in cluster 0's slice. Cold: a short sequential
    // stream in cluster 1's slice.
    Time last = Time::zero();
    for (int i = 0; i < 600; ++i) {
      const std::uint64_t hot = (i % 2 == 0) ? 0 : row * 8;
      sys.submit(ctrl::Request{hot + (i % 2), false, Time::zero(), 0});
      if (i % 8 == 0) {
        sys.submit(ctrl::Request{slice + i * 16ull, false, Time::zero(), 0});
      }
      while (auto c = sys.process_next()) last = max(last, c->done);
    }
    return last;
  };
  const Time hot_on_fast =
      run(dram::DeviceClass::kFastEdram, dram::DeviceClass::kSlowPcm);
  const Time hot_on_slow =
      run(dram::DeviceClass::kSlowPcm, dram::DeviceClass::kFastEdram);
  EXPECT_LT(hot_on_fast.ps(), hot_on_slow.ps());
}

}  // namespace
}  // namespace mcm::multichannel
