#include "multichannel/channel_clusters.hpp"

#include <gtest/gtest.h>

namespace mcm::multichannel {
namespace {

ClusterConfig make_config(std::uint32_t clusters, std::uint32_t channels_each) {
  ClusterConfig cfg;
  cfg.clusters = clusters;
  cfg.per_cluster.channels = channels_each;
  cfg.per_cluster.freq = Frequency{400.0};
  return cfg;
}

TEST(ChannelClusters, TotalsAcrossClusters) {
  const ChannelClusterSystem sys(make_config(2, 4));
  EXPECT_EQ(sys.cluster_count(), 2u);
  EXPECT_EQ(sys.total_channels(), 8u);
  EXPECT_EQ(sys.capacity_bytes(), 2ull * 4 * 64 * 1024 * 1024);
}

TEST(ChannelClusters, AddressSlicesRouteToClusters) {
  const ChannelClusterSystem sys(make_config(2, 2));
  const std::uint64_t slice = 2ull * 64 * 1024 * 1024;
  EXPECT_EQ(sys.cluster_of(0), 0u);
  EXPECT_EQ(sys.cluster_of(slice - 1), 0u);
  EXPECT_EQ(sys.cluster_of(slice), 1u);
  EXPECT_EQ(sys.cluster_of(2 * slice), 0u);  // wraps
}

TEST(ChannelClusters, IndependentClustersIsolateTraffic) {
  ChannelClusterSystem sys(make_config(2, 1));
  const std::uint64_t slice = 64ull * 1024 * 1024;
  // Load only cluster 0.
  for (int i = 0; i < 256; ++i) {
    const ctrl::Request r{static_cast<std::uint64_t>(i) * 16, false, Time::zero(), 0};
    while (!sys.can_accept(r.addr)) (void)sys.process_next();
    sys.submit(r);
  }
  (void)sys.drain();
  EXPECT_EQ(sys.cluster(0).stats().reads, 256u);
  EXPECT_EQ(sys.cluster(1).stats().reads, 0u);
  // Cluster 1 traffic lands in cluster 1.
  sys.submit(ctrl::Request{slice + 0, false, Time::zero(), 0});
  (void)sys.drain();
  EXPECT_EQ(sys.cluster(1).stats().reads, 1u);
}

TEST(ChannelClusters, TwoClustersServeTwoStreamsInParallel) {
  // One 2-channel system vs two independent 1-channel clusters fed two
  // disjoint streams: clusters should be competitive (no cross interference).
  const std::uint64_t slice = 64ull * 1024 * 1024;
  ChannelClusterSystem clustered(make_config(2, 1));
  int submitted = 0;
  Time last = Time::zero();
  const int n = 2048;
  while (submitted < n) {
    const bool second = (submitted % 2) == 1;
    const std::uint64_t addr =
        (second ? slice : 0) + static_cast<std::uint64_t>(submitted / 2) * 16;
    if (clustered.can_accept(addr)) {
      clustered.submit(ctrl::Request{addr, false, Time::zero(), 0});
      ++submitted;
    } else if (auto c = clustered.process_next()) {
      last = max(last, c->done);
    }
  }
  last = max(last, clustered.drain());
  // Both clusters saw half the stream.
  EXPECT_EQ(clustered.cluster(0).stats().reads, static_cast<std::uint64_t>(n) / 2);
  EXPECT_EQ(clustered.cluster(1).stats().reads, static_cast<std::uint64_t>(n) / 2);
  // Aggregate throughput is near one channel's peak x2 (16 B / 2 cycles each).
  const double seconds = last.seconds();
  const double bw = static_cast<double>(n) * 16 / seconds;
  EXPECT_GT(bw, 0.75 * 6.4e9);
}

TEST(ChannelClusters, FinalizeAndPowerAggregate) {
  ChannelClusterSystem sys(make_config(2, 2));
  sys.submit(ctrl::Request{0, true, Time::zero(), 0});
  (void)sys.drain();
  const Time window = Time::from_ms(1.0);
  sys.finalize(window);
  const SystemPowerReport p = sys.power(window);
  EXPECT_EQ(p.per_channel.size(), 4u);
  EXPECT_GT(p.total_mw, 0.0);
  EXPECT_EQ(sys.stats().writes, 1u);
}

}  // namespace
}  // namespace mcm::multichannel
