#include "multichannel/memory_system.hpp"

#include <gtest/gtest.h>

namespace mcm::multichannel {
namespace {

SystemConfig make_config(std::uint32_t channels, double freq = 400.0) {
  SystemConfig cfg;
  cfg.channels = channels;
  cfg.freq = Frequency{freq};
  return cfg;
}

TEST(MemorySystem, CapacityAndPeakBandwidthScaleWithChannels) {
  const MemorySystem one(make_config(1));
  const MemorySystem four(make_config(4));
  EXPECT_EQ(one.capacity_bytes(), 64ull * 1024 * 1024);
  EXPECT_EQ(four.capacity_bytes(), 256ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(one.peak_bandwidth_bytes_per_s(), 3.2e9);
  EXPECT_DOUBLE_EQ(four.peak_bandwidth_bytes_per_s(), 12.8e9);
}

TEST(MemorySystem, EightChannelsMatchPaperXdrComparison) {
  // Paper: 8 channels at 400 MHz give ~25 GB/s, comparable to the XDR.
  const MemorySystem sys(make_config(8));
  EXPECT_NEAR(sys.peak_bandwidth_bytes_per_s() / 1e9, 25.6, 0.7);
}

TEST(MemorySystem, RoutesAndServesSequentialTraffic) {
  MemorySystem sys(make_config(4));
  const int n = 1024;
  int submitted = 0;
  Time last = Time::zero();
  while (submitted < n) {
    const ctrl::Request r{static_cast<std::uint64_t>(submitted) * 16, false,
                          Time::zero(), 0};
    if (sys.can_accept(r.addr)) {
      sys.submit(r);
      ++submitted;
    } else if (auto c = sys.process_next()) {
      last = max(last, c->done);
    }
  }
  last = max(last, sys.drain());
  const SystemStats s = sys.stats();
  EXPECT_EQ(s.reads, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.bytes, static_cast<std::uint64_t>(n) * 16);
  EXPECT_GT(last, Time::zero());
  // Per-channel byte balance.
  for (std::uint32_t ch = 0; ch < 4; ++ch) {
    EXPECT_EQ(sys.channel(ch).stats().bytes, static_cast<std::uint64_t>(n) * 4);
  }
}

TEST(MemorySystem, MoreChannelsServeFasterNearLinearly) {
  auto run = [](std::uint32_t channels) {
    MemorySystem sys(make_config(channels));
    const int n = 4096;
    int submitted = 0;
    Time last = Time::zero();
    while (submitted < n) {
      const ctrl::Request r{static_cast<std::uint64_t>(submitted) * 16,
                            (submitted % 4) == 0, Time::zero(), 0};
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        ++submitted;
      } else if (auto c = sys.process_next()) {
        last = max(last, c->done);
      }
    }
    return max(last, sys.drain());
  };
  const Time t1 = run(1);
  const Time t2 = run(2);
  const Time t4 = run(4);
  // Paper Fig. 3: close to 2x speedup per channel doubling.
  EXPECT_NEAR(static_cast<double>(t1.ps()) / t2.ps(), 2.0, 0.35);
  EXPECT_NEAR(static_cast<double>(t2.ps()) / t4.ps(), 2.0, 0.35);
}

TEST(MemorySystem, PowerReportAggregatesChannels) {
  MemorySystem sys(make_config(2));
  for (int i = 0; i < 64; ++i) {
    const ctrl::Request r{static_cast<std::uint64_t>(i) * 16, false, Time::zero(), 0};
    while (!sys.can_accept(r.addr)) (void)sys.process_next();
    sys.submit(r);
  }
  (void)sys.drain();
  const Time window = Time::from_ms(1.0);
  sys.finalize(window);
  const SystemPowerReport p = sys.power(window);
  ASSERT_EQ(p.per_channel.size(), 2u);
  EXPECT_NEAR(p.total_mw, p.per_channel[0].total_mw + p.per_channel[1].total_mw,
              1e-9);
  EXPECT_GT(p.interface_mw, 0.0);
  EXPECT_GT(p.dram_mw, 0.0);
}

TEST(MemorySystem, ProcessNextServesMostBehindChannel) {
  // Load only channel 0 heavily, then one request on channel 1: the engine
  // serves channel 1 first (smaller horizon), keeping channels in step.
  MemorySystem sys(make_config(2));
  for (int i = 0; i < 8; ++i) {
    sys.submit(ctrl::Request{static_cast<std::uint64_t>(i) * 32, false,
                             Time::zero(), 0});  // stride 32: all channel 0
  }
  // Advance channel 0's horizon.
  for (int i = 0; i < 8; ++i) (void)sys.process_next();
  EXPECT_FALSE(sys.any_pending());
  sys.submit(ctrl::Request{0, false, Time::zero(), 1});   // channel 0 again
  sys.submit(ctrl::Request{16, false, Time::zero(), 2});  // channel 1 (behind)
  const auto first = sys.process_next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->req.source, 2);
  (void)sys.drain();
}

TEST(MemorySystem, RejectsInvalidConfig) {
  SystemConfig zero = make_config(0);
  EXPECT_THROW(MemorySystem{zero}, std::invalid_argument);
  SystemConfig bad_gran = make_config(2);
  bad_gran.interleave_bytes = 8;  // below the 16 B burst
  EXPECT_THROW(MemorySystem{bad_gran}, std::invalid_argument);
}

TEST(MemorySystem, AddressesBeyondCapacityWrapConsistently) {
  // A tiny device (1 MiB cluster) makes the wrap cheap to exercise: traffic
  // far beyond capacity still lands, balances, and counts correctly.
  SystemConfig cfg = make_config(2);
  cfg.device.org.capacity_bits = 8ull * 1024 * 1024;  // 1 MiB per cluster
  MemorySystem sys(cfg);
  ASSERT_EQ(sys.capacity_bytes(), 2ull * 1024 * 1024);
  const int n = 1024;
  int submitted = 0;
  while (submitted < n) {
    // Stride through 8x the capacity.
    const std::uint64_t addr =
        (static_cast<std::uint64_t>(submitted) * 16 * 1024 + 48) %
        (8 * sys.capacity_bytes());
    const ctrl::Request r{addr, (submitted % 2) == 0, Time::zero(), 0};
    if (sys.can_accept(r.addr)) {
      sys.submit(r);
      ++submitted;
    } else {
      (void)sys.process_next();
    }
  }
  (void)sys.drain();
  EXPECT_EQ(sys.stats().accesses(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(sys.stats().bytes, static_cast<std::uint64_t>(n) * 16);
}

TEST(MemorySystem, InterfacePowerMatchesEquationOne) {
  const MemorySystem sys(make_config(4));
  const SystemPowerReport p = sys.power(Time::from_ms(1.0));
  // 36 pins x 0.4 pF x 1.44 V^2 x 400 MHz x 0.5 = ~4.15 mW per channel.
  EXPECT_NEAR(p.interface_mw, 4 * 4.147, 0.1);
}

}  // namespace
}  // namespace mcm::multichannel
