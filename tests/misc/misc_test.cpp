// Coverage for the small leaf modules: logging, Eq. (1) interface power,
// the XDR reference model, and bonding-capacitance constants.
#include <gtest/gtest.h>

#include "channel/interface_power.hpp"
#include "common/log.hpp"
#include "xdr/xdr_model.hpp"

namespace mcm {
namespace {

TEST(InterfacePower, EquationOneAt400MHz) {
  // 36 pins x 0.4 pF x (1.2 V)^2 x 400 MHz x 0.5 = 4.147 mW.
  const channel::InterfacePowerSpec spec;
  EXPECT_NEAR(spec.power_mw(Frequency{400.0}), 4.147, 0.01);
  // Linear in frequency.
  EXPECT_NEAR(spec.power_mw(Frequency{200.0}) * 2.0,
              spec.power_mw(Frequency{400.0}), 1e-9);
}

TEST(InterfacePower, PaperQuotesApproximatelyFiveMilliwatts) {
  const channel::InterfacePowerSpec spec;
  const double mw = spec.power_mw(Frequency{400.0});
  EXPECT_GT(mw, 3.0);
  EXPECT_LT(mw, 5.5);
}

TEST(InterfacePower, BondCapacitanceAverageIsPointFour) {
  // Paper: 0.4 pF is the average over wire bonding, flip chip, and TAB.
  EXPECT_NEAR(channel::InterfacePowerSpec::average_bond_capacitance_pf(), 0.4,
              1e-9);
  const channel::InterfacePowerSpec spec;
  EXPECT_NEAR(spec.capacitance_pf,
              channel::InterfacePowerSpec::average_bond_capacitance_pf(), 1e-9);
}

TEST(InterfacePower, ScalesWithPinsAndVoltage) {
  channel::InterfacePowerSpec spec;
  const double base = spec.power_mw(Frequency{400.0});
  spec.pins = 72;
  EXPECT_NEAR(spec.power_mw(Frequency{400.0}), 2 * base, 1e-9);
  spec.pins = 36;
  spec.vio = 2.4;  // double voltage -> 4x power
  EXPECT_NEAR(spec.power_mw(Frequency{400.0}), 4 * base, 1e-9);
}

TEST(Xdr, CellBeReferencePoint) {
  const xdr::XdrInterface xdr;
  EXPECT_DOUBLE_EQ(xdr.bandwidth_gb_per_s, 25.6);
  EXPECT_DOUBLE_EQ(xdr.typical_power_mw(), 5000.0);
  EXPECT_NEAR(xdr.power_fraction(205.0), 0.041, 0.001);  // the paper's "4%"
  EXPECT_NEAR(xdr.power_fraction(1280.0), 0.256, 0.001);  // and "25%"
}

TEST(Log, LevelGatesOutput) {
  const LogLevel saved = Log::level();
  Log::level() = LogLevel::kError;
  // Nothing observable to assert on stderr here; exercise the paths for
  // coverage and restore the level.
  MCM_LOG_DEBUG("hidden %d", 1);
  MCM_LOG_ERROR("shown %d", 2);
  Log::level() = LogLevel::kDebug;
  MCM_LOG_DEBUG("now shown");
  Log::level() = saved;
  SUCCEED();
}

}  // namespace
}  // namespace mcm
