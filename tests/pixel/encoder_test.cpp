#include "pixel/encoder.hpp"

#include <gtest/gtest.h>

#include "cache/cache_model.hpp"
#include "pixel/stages.hpp"
#include "pixel/synthetic.hpp"

namespace mcm::pixel {
namespace {

Yuv420Image frame_at(const SceneGenerator& gen, int index) {
  return yuv422_to_yuv420(rgb_to_yuv422(gen.render(index)));
}

SceneParams qcif_scene() {
  SceneParams p;
  p.width = 176;
  p.height = 144;
  p.noise_sigma = 1.0;
  p.objects = 3;
  p.pan_x = 1.0;
  p.pan_y = 0.5;
  return p;
}

class ByteCounter final : public MemoryTracer {
 public:
  void access(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
    (is_write ? writes_ : reads_) += bytes;
    if (addr >= 0x3000'0000) ref_reads_ += bytes;
  }
  std::uint64_t reads_ = 0, writes_ = 0, ref_reads_ = 0;
};

TEST(ToyEncoder, FirstFrameIsIntraAndReconstructsWell) {
  const SceneGenerator gen(qcif_scene());
  EncoderConfig cfg;
  cfg.qp = 16;
  ToyEncoder enc(cfg, 176, 144);
  const auto input = frame_at(gen, 0);
  const FrameStats s = enc.encode(input);
  EXPECT_EQ(s.intra_mbs, 99u);  // 11 x 9 macroblocks
  EXPECT_GT(s.psnr_y, 34.0);
  EXPECT_GT(s.bits, 0u);
  EXPECT_EQ(enc.reference_count(), 1u);
}

TEST(ToyEncoder, StaticSceneCodesCheaplyAfterFirstFrame) {
  SceneParams p = qcif_scene();
  p.noise_sigma = 0.0;
  p.objects = 0;
  p.pan_x = 0.0;
  p.pan_y = 0.0;
  const SceneGenerator gen(p);
  ToyEncoder enc(EncoderConfig{}, 176, 144);
  const FrameStats first = enc.encode(frame_at(gen, 0));
  const FrameStats second = enc.encode(frame_at(gen, 1));
  // The smooth static scene intra-codes cheaply (DC/directional modes), and
  // the P frame sits at the floor cost (one flag per block + header).
  EXPECT_LE(second.bits, first.bits);
  EXPECT_LT(second.bits, 99u * 60u);
  // Tiny MV jitter from quantization noise on smooth content is expected.
  EXPECT_LT(second.mean_abs_mv, 0.6);
  // Re-coding an identical frame holds the first frame's quality (QP 28).
  EXPECT_GT(second.psnr_y, first.psnr_y - 1.0);
  EXPECT_GT(second.psnr_y, 32.0);
}

TEST(ToyEncoder, MotionIsTrackedAcrossFrames) {
  SceneParams p = qcif_scene();
  p.noise_sigma = 0.0;
  p.objects = 0;
  p.pan_x = 3.0;  // pure 3 px/frame pan
  p.pan_y = 0.0;
  const SceneGenerator gen(p);
  EncoderConfig cfg;
  cfg.search_range = 6;
  ToyEncoder enc(cfg, 176, 144);
  (void)enc.encode(frame_at(gen, 0));
  const FrameStats s = enc.encode(frame_at(gen, 1));
  // Most macroblocks find the 3-pixel pan: mean |mv| per component ~ 1.5.
  EXPECT_GT(s.mean_abs_mv, 0.8);
  EXPECT_GT(s.psnr_y, 32.0);
}

TEST(ToyEncoder, HigherQpFewerBitsLowerQuality) {
  const SceneGenerator gen(qcif_scene());
  auto run = [&](int qp) {
    EncoderConfig cfg;
    cfg.qp = qp;
    ToyEncoder enc(cfg, 176, 144);
    (void)enc.encode(frame_at(gen, 0));
    return enc.encode(frame_at(gen, 1));
  };
  const FrameStats q16 = run(16);
  const FrameStats q28 = run(28);
  const FrameStats q40 = run(40);
  EXPECT_GT(q16.bits, q28.bits);
  EXPECT_GT(q28.bits, q40.bits);
  EXPECT_GT(q16.psnr_y, q28.psnr_y);
  EXPECT_GT(q28.psnr_y, q40.psnr_y);
}

TEST(ToyEncoder, ReferenceListCapped) {
  const SceneGenerator gen(qcif_scene());
  EncoderConfig cfg;
  cfg.max_ref_frames = 3;
  ToyEncoder enc(cfg, 176, 144);
  for (int i = 0; i < 6; ++i) (void)enc.encode(frame_at(gen, i));
  EXPECT_EQ(enc.reference_count(), 3u);
}

TEST(ToyEncoder, Deterministic) {
  const SceneGenerator gen(qcif_scene());
  ToyEncoder a(EncoderConfig{}, 176, 144), b(EncoderConfig{}, 176, 144);
  for (int i = 0; i < 3; ++i) {
    const FrameStats sa = a.encode(frame_at(gen, i));
    const FrameStats sb = b.encode(frame_at(gen, i));
    EXPECT_EQ(sa.bits, sb.bits);
    EXPECT_DOUBLE_EQ(sa.psnr_y, sb.psnr_y);
  }
}

TEST(ToyEncoder, TracedReferenceTrafficMatchesFullSearchModel) {
  const SceneGenerator gen(qcif_scene());
  EncoderConfig cfg;
  cfg.search_range = 4;
  cfg.max_ref_frames = 2;
  ToyEncoder enc(cfg, 176, 144);
  (void)enc.encode(frame_at(gen, 0));
  (void)enc.encode(frame_at(gen, 1));  // now 2 references
  ByteCounter counter;
  (void)enc.encode(frame_at(gen, 2), &counter);
  // Per macroblock per reference: (2r+1)^2 candidates x 256 bytes.
  const double expected =
      99.0 * 2.0 * (2 * 4 + 1) * (2 * 4 + 1) * 256.0;
  EXPECT_NEAR(static_cast<double>(counter.ref_reads_), expected, expected * 0.01);
  // Recon writes: 99 MBs x (256 luma + 128 chroma).
  EXPECT_EQ(counter.writes_, 99u * 384u);
}

TEST(ToyEncoder, IntraModesBeatFlatPrediction) {
  // A vertically striped frame is perfectly predicted by the vertical mode
  // (after the first macroblock row seeds the borders), so intra coding of
  // structured content stays cheap.
  Yuv420Image stripes(176, 144);
  for (std::uint32_t y = 0; y < 144; ++y) {
    for (std::uint32_t x = 0; x < 176; ++x) {
      stripes.y.at(x, y) = static_cast<std::uint8_t>((x % 16) * 12 + 40);
    }
  }
  for (auto* plane : {&stripes.u, &stripes.v}) {
    for (auto& v : plane->data()) v = 128;
  }
  // Fine QP: intra prediction chains accumulate quantization noise row over
  // row, so quality scales with QP more strongly than for inter frames.
  EncoderConfig cfg;
  cfg.qp = 16;
  ToyEncoder enc(cfg, 176, 144);
  const FrameStats s = enc.encode(stripes);
  EXPECT_GT(s.psnr_y, 34.0);
  // Well below the cost of coding real residuals everywhere at this QP.
  EXPECT_LT(s.bits, 99u * 400u);

  // And the directional mode genuinely carries the load: a flat-128
  // predictor (no neighbors anywhere) would pay for every stripe. Compare
  // against the same content coded without usable borders by flipping it
  // into untextured chroma cost: simply require cheap luma rows after the
  // first macroblock row (vertical prediction).
  EXPECT_LT(static_cast<double>(s.bits) / 99.0, 400.0);
}

TEST(ToyEncoder, HalfPelImprovesFractionalPan) {
  // A 1.5 px/frame pan sits exactly between integer candidates: half-pel
  // refinement predicts it better.
  SceneParams p = qcif_scene();
  p.noise_sigma = 0.0;
  p.objects = 0;
  p.pan_x = 1.5;
  p.pan_y = 0.0;
  const SceneGenerator gen(p);
  auto run = [&](bool half) {
    EncoderConfig cfg;
    cfg.half_pel = half;
    cfg.search_range = 4;
    ToyEncoder enc(cfg, 176, 144);
    (void)enc.encode(frame_at(gen, 0));
    return enc.encode(frame_at(gen, 1));
  };
  const FrameStats integer_only = run(false);
  const FrameStats half_pel = run(true);
  EXPECT_GT(half_pel.psnr_y, integer_only.psnr_y);
  // The 2-bit/MB half-pel flags may offset the residual saving on easy
  // content; bits must not regress materially.
  EXPECT_LT(static_cast<double>(half_pel.bits),
            static_cast<double>(integer_only.bits) * 1.06);
}

TEST(ToyEncoder, RateControlTracksTarget) {
  const SceneGenerator gen(qcif_scene());
  EncoderConfig cfg;
  cfg.qp = 20;
  cfg.target_bitrate_kbps = 400;  // 13.3 kbit/frame at 30 fps
  cfg.target_fps = 30.0;
  ToyEncoder enc(cfg, 176, 144);
  std::uint64_t bits = 0;
  int frames = 0;
  for (int i = 0; i < 12; ++i) {
    const FrameStats s = enc.encode(frame_at(gen, i));
    if (i >= 4) {  // skip the intra frame + convergence
      bits += s.bits;
      ++frames;
    }
  }
  const double mean_bits = static_cast<double>(bits) / frames;
  EXPECT_NEAR(mean_bits, 400'000.0 / 30.0, 400'000.0 / 30.0 * 0.5);
  // QP moved away from its start to meet the target.
  EXPECT_NE(enc.current_qp(), 20);
}

TEST(ToyEncoder, RateControlQpStaysClamped) {
  const SceneGenerator gen(qcif_scene());
  EncoderConfig cfg;
  cfg.target_bitrate_kbps = 1;  // impossible target: QP pins at max
  ToyEncoder enc(cfg, 176, 144);
  for (int i = 0; i < 10; ++i) (void)enc.encode(frame_at(gen, i));
  EXPECT_EQ(enc.current_qp(), cfg.max_qp);
}

TEST(ToyEncoder, CacheFiltersRawSearchTrafficToWindowLevel) {
  // The end-to-end premise from real code: raw full-search reads collapse
  // to roughly one window load per macroblock behind a cache.
  const SceneGenerator gen(qcif_scene());
  EncoderConfig cfg;
  cfg.search_range = 8;
  cfg.max_ref_frames = 2;
  ToyEncoder enc(cfg, 176, 144);
  (void)enc.encode(frame_at(gen, 0));
  (void)enc.encode(frame_at(gen, 1));

  class CacheTracer final : public MemoryTracer {
   public:
    explicit CacheTracer(cache::CacheModel& c) : cache_(c) {}
    void access(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
      cache_.access(addr, bytes, is_write);
      raw_ += bytes;
    }
    cache::CacheModel& cache_;
    std::uint64_t raw_ = 0;
  };
  cache::CacheModel cache(cache::CacheConfig{256 * 1024, 8, 64, true});
  CacheTracer tracer(cache);
  (void)enc.encode(frame_at(gen, 2), &tracer);
  const double reduction = static_cast<double>(tracer.raw_) /
                           static_cast<double>(cache.miss_traffic_bytes());
  EXPECT_GT(reduction, 20.0);  // orders of magnitude, as the paper argues
}

}  // namespace
}  // namespace mcm::pixel
