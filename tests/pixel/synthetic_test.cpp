#include "pixel/synthetic.hpp"

#include <gtest/gtest.h>

namespace mcm::pixel {
namespace {

SceneParams small_scene() {
  SceneParams p;
  p.width = 64;
  p.height = 48;
  p.seed = 7;
  return p;
}

TEST(Synthetic, Deterministic) {
  const SceneGenerator a(small_scene());
  const SceneGenerator b(small_scene());
  const Rgb888Image fa = a.render(3);
  const Rgb888Image fb = b.render(3);
  EXPECT_EQ(fa.r.data(), fb.r.data());
  EXPECT_EQ(fa.g.data(), fb.g.data());
  EXPECT_EQ(fa.b.data(), fb.b.data());
}

TEST(Synthetic, FramesChangeOverTime) {
  const SceneGenerator gen(small_scene());
  const Rgb888Image f0 = gen.render(0);
  const Rgb888Image f5 = gen.render(5);
  EXPECT_NE(f0.r.data(), f5.r.data());
  EXPECT_GT(plane_mse(f0.r, f5.r), 1.0);
}

TEST(Synthetic, SeedsProduceDifferentContent) {
  SceneParams p2 = small_scene();
  p2.seed = 8;
  const Rgb888Image a = SceneGenerator(small_scene()).render(0);
  const Rgb888Image b = SceneGenerator(p2).render(0);
  EXPECT_NE(a.r.data(), b.r.data());
}

TEST(Synthetic, NoiseSigmaZeroIsClean) {
  SceneParams p = small_scene();
  p.noise_sigma = 0.0;
  p.objects = 0;
  const SceneGenerator gen(p);
  // Noise-free background is a smooth texture: neighbors stay close.
  const Rgb888Image f = gen.render(0);
  for (std::uint32_t y = 0; y < f.height(); ++y) {
    for (std::uint32_t x = 1; x < f.width(); ++x) {
      const int d = std::abs(static_cast<int>(f.r.at(x, y)) -
                             static_cast<int>(f.r.at(x - 1, y)));
      EXPECT_LE(d, 10);
    }
  }
}

TEST(Synthetic, LumaRenderMatchesBt601OfRgb) {
  const SceneGenerator gen(small_scene());
  const Rgb888Image rgb = gen.render(2);
  const ImageU8 luma = gen.render_luma(2);
  const int r = rgb.r.at(10, 10), g = rgb.g.at(10, 10), b = rgb.b.at(10, 10);
  const int expect = ((66 * r + 129 * g + 25 * b + 128) >> 8) + 16;
  EXPECT_EQ(luma.at(10, 10), clamp_u8(expect));
}

TEST(Synthetic, BayerMosaicPicksChannelsByRggb) {
  Rgb888Image rgb(4, 4);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) {
      rgb.r.at(x, y) = 10;
      rgb.g.at(x, y) = 20;
      rgb.b.at(x, y) = 30;
    }
  }
  const ImageU8 bayer = bayer_mosaic_rggb(rgb);
  EXPECT_EQ(bayer.at(0, 0), 10);  // R
  EXPECT_EQ(bayer.at(1, 0), 20);  // G
  EXPECT_EQ(bayer.at(0, 1), 20);  // G
  EXPECT_EQ(bayer.at(1, 1), 30);  // B
}

}  // namespace
}  // namespace mcm::pixel
