#include "pixel/stages.hpp"

#include <gtest/gtest.h>

#include "pixel/synthetic.hpp"

namespace mcm::pixel {
namespace {

Rgb888Image constant_rgb(std::uint32_t w, std::uint32_t h, std::uint8_t r,
                         std::uint8_t g, std::uint8_t b) {
  Rgb888Image img(w, h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      img.r.at(x, y) = r;
      img.g.at(x, y) = g;
      img.b.at(x, y) = b;
    }
  }
  return img;
}

TEST(Stages, DenoisePreservesConstantMosaic) {
  const ImageU8 bayer = bayer_mosaic_rggb(constant_rgb(16, 16, 50, 100, 150));
  const ImageU8 out = denoise_box3(bayer);
  // Same-color averaging on a constant mosaic is the identity.
  EXPECT_EQ(out.data(), bayer.data());
}

TEST(Stages, DenoiseReducesNoiseVariance) {
  SceneParams p;
  p.width = 64;
  p.height = 48;
  p.noise_sigma = 6.0;
  p.objects = 0;
  const SceneGenerator gen(p);
  const ImageU8 noisy = bayer_mosaic_rggb(gen.render(0));
  SceneParams clean_p = p;
  clean_p.noise_sigma = 0.0;
  const ImageU8 clean = bayer_mosaic_rggb(SceneGenerator(clean_p).render(0));
  const ImageU8 filtered = denoise_box3(noisy);
  EXPECT_LT(plane_mse(filtered, clean), plane_mse(noisy, clean));
}

TEST(Stages, DemosaicRecoversConstantColor) {
  const Rgb888Image src = constant_rgb(32, 32, 80, 120, 200);
  const Rgb888Image out = demosaic_bilinear(bayer_mosaic_rggb(src));
  for (std::uint32_t y = 2; y < 30; ++y) {
    for (std::uint32_t x = 2; x < 30; ++x) {
      EXPECT_NEAR(out.r.at(x, y), 80, 1);
      EXPECT_NEAR(out.g.at(x, y), 120, 1);
      EXPECT_NEAR(out.b.at(x, y), 200, 1);
    }
  }
}

TEST(Stages, RgbYuvRoundTripCloseToIdentity) {
  const Rgb888Image src = constant_rgb(32, 16, 180, 90, 40);
  const Rgb888Image back = yuv422_to_rgb(rgb_to_yuv422(src));
  EXPECT_NEAR(back.r.at(8, 8), 180, 6);
  EXPECT_NEAR(back.g.at(8, 8), 90, 6);
  EXPECT_NEAR(back.b.at(8, 8), 40, 6);
}

TEST(Stages, Yuv420DownsampleAveragesChromaRows) {
  Yuv422Image y422(8, 4);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t cx = 0; cx < 4; ++cx) {
      y422.u.at(cx, y) = static_cast<std::uint8_t>(y * 10);
      y422.v.at(cx, y) = 200;
    }
  }
  const Yuv420Image out = yuv422_to_yuv420(y422);
  EXPECT_EQ(out.u.at(0, 0), 5);   // (0 + 10 + 1) / 2
  EXPECT_EQ(out.u.at(0, 1), 25);  // (20 + 30 + 1) / 2
  EXPECT_EQ(out.v.at(0, 0), 200);
}

TEST(Stages, GlobalMotionRecoversInjectedShift) {
  SceneParams p;
  p.width = 160;
  p.height = 128;
  p.noise_sigma = 1.0;
  p.objects = 2;
  p.pan_x = 5.0;  // exactly 5 px/frame pan
  p.pan_y = -3.0;
  const SceneGenerator gen(p);
  const ImageU8 f0 = gen.render_luma(0);
  const ImageU8 f1 = gen.render_luma(1);
  // cur(x) == prev(x + pan): the estimator returns the per-frame pan.
  const MotionVector mv = estimate_global_motion(f0, f1, 16);
  EXPECT_EQ(mv.dx, 5);
  EXPECT_EQ(mv.dy, -3);
}

TEST(Stages, GlobalMotionZeroForStaticScene) {
  SceneParams p;
  p.width = 96;
  p.height = 64;
  p.noise_sigma = 1.5;
  p.objects = 0;
  p.pan_x = 0;
  p.pan_y = 0;
  const SceneGenerator gen(p);
  const MotionVector mv =
      estimate_global_motion(gen.render_luma(0), gen.render_luma(1), 8);
  EXPECT_EQ(mv, (MotionVector{0, 0}));
}

TEST(Stages, CropExtractsAlignedWindow) {
  const SceneGenerator gen([] {
    SceneParams p;
    p.width = 96;
    p.height = 64;
    return p;
  }());
  const Yuv422Image full = rgb_to_yuv422(gen.render(0));
  const Yuv422Image window = crop(full, 10, 8, 64, 48);
  // x0 is clamped to even (10 stays 10).
  EXPECT_EQ(window.width(), 64u);
  EXPECT_EQ(window.height(), 48u);
  EXPECT_EQ(window.y.at(0, 0), full.y.at(10, 8));
  EXPECT_EQ(window.y.at(63, 47), full.y.at(73, 55));
  EXPECT_EQ(window.u.at(0, 0), full.u.at(5, 8));
}

TEST(Stages, CropClampsOutOfRangeOrigin) {
  Yuv422Image src(32, 16);
  const Yuv422Image out = crop(src, -10, 100, 16, 8);
  EXPECT_EQ(out.width(), 16u);
  EXPECT_EQ(out.height(), 8u);
}

TEST(Stages, ScalePreservesConstant) {
  ImageU8 src(64, 32, 77);
  const ImageU8 out = scale_bilinear(src, 20, 10);
  for (std::uint32_t y = 0; y < 10; ++y) {
    for (std::uint32_t x = 0; x < 20; ++x) EXPECT_EQ(out.at(x, y), 77);
  }
}

TEST(Stages, ScaleIdentityWhenSameSize) {
  SceneParams p;
  p.width = 32;
  p.height = 16;
  const ImageU8 src = SceneGenerator(p).render_luma(0);
  const ImageU8 out = scale_bilinear(src, 32, 16);
  EXPECT_EQ(out.data(), src.data());
}

TEST(Stages, StabilizationPipelineAlignsShiftedFrames) {
  // Full stabilization flow: bordered capture, global motion estimate,
  // compensating crop. The cropped frames of a panning scene must align far
  // better than uncompensated crops.
  SceneParams p;
  p.width = 192;  // bordered sensor size
  p.height = 160;
  p.noise_sigma = 0.5;
  p.objects = 0;   // pure global pan
  p.pan_x = 4.0;
  p.pan_y = 2.0;
  const SceneGenerator gen(p);
  const std::uint32_t coded_w = 160, coded_h = 128;
  const std::uint32_t border_x = (p.width - coded_w) / 2;
  const std::uint32_t border_y = (p.height - coded_h) / 2;

  const Yuv422Image f0 = rgb_to_yuv422(gen.render(0));
  const Yuv422Image f1 = rgb_to_yuv422(gen.render(1));
  const MotionVector mv = estimate_global_motion(f0.y, f1.y, 12);

  const Yuv422Image ref = crop(f0, static_cast<int>(border_x),
                               static_cast<int>(border_y), coded_w, coded_h);
  const Yuv422Image plain = crop(f1, static_cast<int>(border_x),
                                 static_cast<int>(border_y), coded_w, coded_h);
  // Compensate: cur(x) == prev(x + mv), so shifting the crop window by -mv
  // re-aligns the new frame with the reference.
  const Yuv422Image stab =
      crop(f1, static_cast<int>(border_x) - mv.dx,
           static_cast<int>(border_y) - mv.dy, coded_w, coded_h);
  EXPECT_LT(plane_mse(stab.y, ref.y) * 4.0, plane_mse(plain.y, ref.y));
}

}  // namespace
}  // namespace mcm::pixel
