#include "pixel/transform.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mcm::pixel {
namespace {

TEST(Transform, ForwardInverseIsIdentity) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    int block[16], coef[16], back[16];
    for (int& v : block) v = static_cast<int>(rng.next_below(511)) - 255;
    hadamard4_forward(block, coef);
    hadamard4_inverse(coef, back);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(back[i], block[i]);
  }
}

TEST(Transform, DcOfConstantBlock) {
  int block[16], coef[16];
  for (int& v : block) v = 10;
  hadamard4_forward(block, coef);
  EXPECT_EQ(coef[0], 160);  // 16 x 10
  for (int i = 1; i < 16; ++i) EXPECT_EQ(coef[i], 0);
}

TEST(Transform, QstepDoublesEverySixQp) {
  EXPECT_EQ(qstep_q8(4), 256);
  EXPECT_EQ(qstep_q8(10), 512);
  EXPECT_EQ(qstep_q8(16), 1024);
  EXPECT_NEAR(qstep_q8(28), 256 * 16, 2);
}

TEST(Transform, QuantDequantErrorBounded) {
  Rng rng(5);
  for (int qp : {10, 20, 28, 36}) {
    const std::int32_t step = qstep_q8(qp);
    for (int trial = 0; trial < 200; ++trial) {
      const int coef = static_cast<int>(rng.next_below(16000)) - 8000;
      const int level = quantize(coef, step);
      const int back = dequantize(level, step);
      // Error bounded by half the effective step (step/256 * 16).
      const double eff = step / 256.0 * 16.0;
      EXPECT_LE(std::abs(back - coef), eff / 2.0 + 1.0);
    }
  }
}

TEST(Transform, QuantZeroIsZero) {
  EXPECT_EQ(quantize(0, qstep_q8(28)), 0);
  EXPECT_EQ(dequantize(0, qstep_q8(28)), 0);
}

TEST(Transform, GolombLengths) {
  EXPECT_EQ(golomb_bits_unsigned(0), 1u);
  EXPECT_EQ(golomb_bits_unsigned(1), 3u);
  EXPECT_EQ(golomb_bits_unsigned(2), 3u);
  EXPECT_EQ(golomb_bits_unsigned(3), 5u);
  EXPECT_EQ(golomb_bits_unsigned(6), 5u);
  EXPECT_EQ(golomb_bits_unsigned(7), 7u);
  EXPECT_EQ(golomb_bits_signed(0), 1u);
  EXPECT_EQ(golomb_bits_signed(1), 3u);
  EXPECT_EQ(golomb_bits_signed(-1), 3u);
  EXPECT_EQ(golomb_bits_signed(2), 5u);
  // Monotone in magnitude.
  for (int v = 1; v < 100; ++v) {
    EXPECT_GE(golomb_bits_signed(v + 1), golomb_bits_signed(v));
  }
}

}  // namespace
}  // namespace mcm::pixel
