#include "pixel/image.hpp"

#include <gtest/gtest.h>

namespace mcm::pixel {
namespace {

TEST(Image, GeometryAndAccess) {
  ImageU8 img(8, 4, 7);
  EXPECT_EQ(img.width(), 8u);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.size_bytes(), 32u);
  EXPECT_EQ(img.at(0, 0), 7);
  img.at(3, 2) = 99;
  EXPECT_EQ(img.at(3, 2), 99);
}

TEST(Image, ClampedAccessAtEdges) {
  ImageU8 img(4, 4);
  img.at(0, 0) = 1;
  img.at(3, 3) = 2;
  EXPECT_EQ(img.clamped(-5, -5), 1);
  EXPECT_EQ(img.clamped(10, 10), 2);
  EXPECT_EQ(img.clamped(0, 10), img.at(0, 3));
}

TEST(Image, PlaneStructsHaveHalfChroma) {
  const Yuv422Image y422(16, 8);
  EXPECT_EQ(y422.u.width(), 8u);
  EXPECT_EQ(y422.u.height(), 8u);
  const Yuv420Image y420(16, 8);
  EXPECT_EQ(y420.u.width(), 8u);
  EXPECT_EQ(y420.u.height(), 4u);
}

TEST(Image, MseAndPsnr) {
  ImageU8 a(4, 4, 100);
  ImageU8 b(4, 4, 100);
  EXPECT_DOUBLE_EQ(plane_mse(a, b), 0.0);
  EXPECT_DOUBLE_EQ(plane_psnr(a, b), 99.0);
  b.at(0, 0) = 116;  // one pixel off by 16: MSE = 256/16 = 16
  EXPECT_DOUBLE_EQ(plane_mse(a, b), 16.0);
  EXPECT_NEAR(plane_psnr(a, b), 36.1, 0.1);
}

TEST(Image, ClampU8) {
  EXPECT_EQ(clamp_u8(-3), 0);
  EXPECT_EQ(clamp_u8(0), 0);
  EXPECT_EQ(clamp_u8(128), 128);
  EXPECT_EQ(clamp_u8(255), 255);
  EXPECT_EQ(clamp_u8(300), 255);
}

}  // namespace
}  // namespace mcm::pixel
