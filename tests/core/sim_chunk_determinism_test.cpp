// Determinism contract of the epoch-batched (chunked) sharded engine:
// every statistic, timestamp, and trace byte is identical at any chunk
// size — including 1 (per-request protocol), odd sizes that straddle
// interleave stripes, and chunks larger than the whole stream — and on the
// rollback path (MCM_SIM_SPEC=rollback forces a rollback at every
// speculative chunk). Synthetic workloads drive run_sharded_frames
// directly, mirroring sim_threads_determinism_test.
#include "core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mcm::core {
namespace {

using load::CachedStage;
using load::CachedWorkload;

multichannel::SystemConfig make_system(std::uint32_t channels,
                                       std::uint32_t queue_depth = 8) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = channels;
  cfg.base.controller.queue_depth = queue_depth;
  return cfg.base;
}

CachedStage make_stage(const char* name, std::uint16_t source_id,
                       std::uint64_t base, std::uint64_t stride,
                       std::size_t count) {
  CachedStage s;
  s.name = name;
  s.source_id = count == 0 ? 0xffff : source_id;
  s.reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    s.reqs.push_back(CachedStage::pack(base + i * stride, (i / 4) % 2 == 1));
  }
  return s;
}

CachedWorkload make_workload(std::vector<CachedStage> stages) {
  CachedWorkload wl;
  wl.burst_bytes = 16;
  for (auto& s : stages) {
    wl.total_requests += s.reqs.size();
    wl.stages.push_back(std::move(s));
  }
  return wl;
}

struct RunResult {
  ShardedRunOutput out;
  multichannel::SystemStats stats;
  std::string trace;
};

RunResult run_once(const multichannel::SystemConfig& config,
                   const std::vector<const CachedWorkload*>& frames,
                   Time period, unsigned threads, unsigned chunk) {
  multichannel::MemorySystem sys(config);
  std::vector<obs::TraceSpool> spools(sys.channel_count());
  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.attach_trace(&spools[c], c);
  }
  RunResult r;
  r.out = run_sharded_frames(sys, frames, period, threads, chunk);
  sys.finalize(max(r.out.end_time, period * static_cast<int>(frames.size())));
  std::vector<const obs::TraceSpool*> refs;
  for (const auto& s : spools) refs.push_back(&s);
  std::ostringstream os;
  obs::merge_trace_spools(refs, os);
  r.trace = os.str();
  r.stats = sys.stats();
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.out.end_time.ps(), b.out.end_time.ps());
  EXPECT_EQ(a.out.access_accum.ps(), b.out.access_accum.ps());
  EXPECT_EQ(a.out.bytes_first_frame, b.out.bytes_first_frame);
  ASSERT_EQ(a.out.per_frame_access.size(), b.out.per_frame_access.size());
  for (std::size_t i = 0; i < a.out.per_frame_access.size(); ++i) {
    EXPECT_EQ(a.out.per_frame_access[i].ps(), b.out.per_frame_access[i].ps());
  }

  EXPECT_EQ(a.stats.reads, b.stats.reads);
  EXPECT_EQ(a.stats.writes, b.stats.writes);
  EXPECT_EQ(a.stats.bytes, b.stats.bytes);
  EXPECT_EQ(a.stats.row_hits, b.stats.row_hits);
  EXPECT_EQ(a.stats.row_misses, b.stats.row_misses);
  EXPECT_EQ(a.stats.row_conflicts, b.stats.row_conflicts);
  EXPECT_EQ(a.stats.activates, b.stats.activates);
  EXPECT_EQ(a.stats.precharges, b.stats.precharges);
  EXPECT_EQ(a.stats.refreshes, b.stats.refreshes);
  EXPECT_EQ(a.stats.latency_ns.count(), b.stats.latency_ns.count());
  EXPECT_EQ(a.stats.latency_ns.mean(), b.stats.latency_ns.mean());
  EXPECT_EQ(a.stats.latency_ns.variance(), b.stats.latency_ns.variance());

  EXPECT_EQ(a.trace, b.trace) << "merged trace must be byte-identical";
}

/// Reference = T1 chunk=1 (per-request protocol, no speculation); every
/// (threads, chunk) combination must match it byte for byte.
void expect_chunk_invariant(const multichannel::SystemConfig& config,
                            const std::vector<const CachedWorkload*>& frames,
                            Time period,
                            const std::vector<unsigned>& chunks) {
  const RunResult ref = run_once(config, frames, period, 1, 1);
  EXPECT_GT(ref.stats.reads + ref.stats.writes, 0u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const unsigned chunk : chunks) {
      const RunResult r = run_once(config, frames, period, threads, chunk);
      expect_identical(ref, r,
                       "T=" + std::to_string(threads) +
                           " chunk=" + std::to_string(chunk));
    }
  }
}

TEST(SimChunkDeterminism, ChunkSizeSweepInterleavedStream) {
  // Sequential 16 B bursts rotate channels every request; 600 requests at
  // chunk 64 puts chunk boundaries mid-stripe and mid-queue-fill.
  const auto config = make_system(4);
  const auto wl = make_workload({make_stage("seq", 1, 0, 16, 600)});
  const std::vector<const CachedWorkload*> frames{&wl};
  expect_chunk_invariant(config, frames, Time::from_us(500),
                         {0, 1, 2, 64, 4096});
}

TEST(SimChunkDeterminism, OddChunkSizesVsInterleaveStripes) {
  // Chunk sizes coprime to the 4-channel rotation (3, 5, 7) place every
  // chunk boundary at a different channel phase.
  const auto config = make_system(4, /*queue_depth=*/4);
  const auto wl = make_workload({make_stage("a", 1, 0, 16, 301),
                                 make_stage("b", 2, 64, 48, 257)});
  const std::vector<const CachedWorkload*> frames{&wl};
  expect_chunk_invariant(config, frames, Time::from_us(500), {3, 5, 7});
}

TEST(SimChunkDeterminism, ChunkLargerThanStream) {
  const auto config = make_system(2);
  const auto wl = make_workload({make_stage("tiny", 1, 0, 16, 37)});
  const std::vector<const CachedWorkload*> frames{&wl, &wl};
  expect_chunk_invariant(config, frames, Time::from_us(250),
                         {64, 1u << 20});
}

TEST(SimChunkDeterminism, BackpressuredStreamAcrossChunkSizes) {
  // queue_depth 2 keeps every queue full, so every speculative position
  // records a publish and the validation walk carries real thresholds;
  // skewed stage mixes make horizons diverge across channels.
  const auto config = make_system(2, /*queue_depth=*/2);
  const auto wl = make_workload({make_stage("skew", 1, 0, 32, 240),
                                 make_stage("rot", 2, 16, 16, 240)});
  const std::vector<const CachedWorkload*> frames{&wl, &wl};
  expect_chunk_invariant(config, frames, Time::from_us(250), {0, 5, 64});
}

TEST(SimChunkDeterminism, ForcedRollbackPathIsByteIdentical) {
  // MCM_SIM_SPEC=rollback snapshots, discards, and serially replays every
  // speculative chunk — the full rollback machinery runs on every chunk
  // and the results must not change at any thread count or chunk size.
  const auto config = make_system(4);
  const auto wl = make_workload({make_stage("seq", 1, 0, 16, 600),
                                 make_stage("str", 2, 32, 48, 300)});
  const std::vector<const CachedWorkload*> frames{&wl, &wl};
  const RunResult ref = run_once(config, frames, Time::from_us(500), 1, 1);
  setenv("MCM_SIM_SPEC", "rollback", 1);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const unsigned chunk : {0u, 64u}) {
      const RunResult r = run_once(config, frames, Time::from_us(500), threads,
                                   chunk);
      expect_identical(ref, r,
                       "rollback T=" + std::to_string(threads) +
                           " chunk=" + std::to_string(chunk));
    }
  }
  unsetenv("MCM_SIM_SPEC");
}

TEST(SimChunkDeterminism, ForcedRollbackActuallyRollsBack) {
  // Profiler proof that the previous test exercised what it claims: with
  // MCM_SIM_SPEC=rollback and >1 worker the engine/rollback phase fires.
  const auto config = make_system(4);
  const auto wl = make_workload({make_stage("seq", 1, 0, 16, 600)});
  const std::vector<const CachedWorkload*> frames{&wl};
  setenv("MCM_SIM_SPEC", "rollback", 1);
  obs::prof::set_enabled(true);
  (void)obs::prof::collect(true);
  (void)run_once(config, frames, Time::from_us(500), 2, 64);
  const obs::prof::ProfileReport rep = obs::prof::collect(true);
  obs::prof::set_enabled(false);
  unsetenv("MCM_SIM_SPEC");
  const obs::prof::ProfilePhase* rb = rep.find("engine/rollback");
  ASSERT_NE(rb, nullptr) << "forced mode must take the rollback path";
  EXPECT_GT(rb->calls, 0u);
  const obs::prof::ProfilePhase* ep = rep.find("engine/epoch_publish");
  ASSERT_NE(ep, nullptr);
  EXPECT_GT(ep->calls, 0u);
}

TEST(SimChunkDeterminism, ChunkSizeOneDegeneratesToPerRequestProtocol) {
  // chunk=1 must not run the chunked machinery at all: no epoch_publish
  // phase, and the per-request handoff counters reappear.
  const auto config = make_system(4);
  const auto wl = make_workload({make_stage("seq", 1, 0, 16, 600)});
  const std::vector<const CachedWorkload*> frames{&wl};
  obs::prof::set_enabled(true);
  (void)obs::prof::collect(true);
  (void)run_once(config, frames, Time::from_us(500), 2, 1);
  const obs::prof::ProfileReport per_request = obs::prof::collect(true);
  (void)run_once(config, frames, Time::from_us(500), 2, 0);
  const obs::prof::ProfileReport chunked = obs::prof::collect(true);
  obs::prof::set_enabled(false);
  EXPECT_EQ(per_request.find("engine/epoch_publish"), nullptr);
  EXPECT_NE(chunked.find("engine/epoch_publish"), nullptr);
  EXPECT_NE(chunked.find("engine/w0/speculate"), nullptr);
  EXPECT_EQ(chunked.find("engine/w0/handoff_wait"), nullptr);
}

TEST(SimChunkDeterminism, SpecOffEnvMatchesDefault) {
  const auto config = make_system(4);
  const auto wl = make_workload({make_stage("seq", 1, 0, 16, 600)});
  const std::vector<const CachedWorkload*> frames{&wl};
  const RunResult on = run_once(config, frames, Time::from_us(500), 8, 0);
  setenv("MCM_SIM_SPEC", "off", 1);
  const RunResult off = run_once(config, frames, Time::from_us(500), 8, 0);
  unsetenv("MCM_SIM_SPEC");
  expect_identical(on, off, "MCM_SIM_SPEC=off vs on");
}

TEST(SimChunkDeterminism, ResolveAndEnvDefaults) {
  unsetenv("MCM_SIM_CHUNK");
  EXPECT_EQ(sim_chunk_from_env(), 0u);
  EXPECT_EQ(resolve_sim_chunk(0), 4096u);
  EXPECT_EQ(resolve_sim_chunk(17), 17u);

  setenv("MCM_SIM_CHUNK", "256", 1);
  EXPECT_EQ(sim_chunk_from_env(), 256u);
  EXPECT_EQ(resolve_sim_chunk(0), 256u);
  EXPECT_EQ(resolve_sim_chunk(9), 9u) << "explicit request beats env";

  setenv("MCM_SIM_CHUNK", "garbage", 1);
  EXPECT_EQ(sim_chunk_from_env(), 0u);
  setenv("MCM_SIM_CHUNK", "-4", 1);
  EXPECT_EQ(sim_chunk_from_env(), 0u);
  unsetenv("MCM_SIM_CHUNK");
}

}  // namespace
}  // namespace mcm::core
