// Determinism contract of the channel-sharded engine: every statistic,
// timestamp, and trace byte is identical at any MCM_SIM_THREADS value,
// including 1. Synthetic workloads drive run_sharded_frames directly so the
// edge cases (zero-length stage, hard backpressure, refresh at an epoch
// edge, single-channel skew) stay fast at 8 workers even on small hosts;
// one real use-case point then byte-compares full exported reports.
#include "core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/frame_simulator.hpp"
#include "core/result_export.hpp"
#include "load/stream_cache.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace mcm::core {
namespace {

using load::CachedStage;
using load::CachedWorkload;

multichannel::SystemConfig make_system(std::uint32_t channels,
                                       std::uint32_t queue_depth = 8) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = channels;
  cfg.base.controller.queue_depth = queue_depth;
  return cfg.base;
}

/// A stage of `count` requests starting at `base`, advancing by `stride`
/// bytes, alternating 4 reads / 4 writes (the chunked read-modify-write
/// shape of the real stages).
CachedStage make_stage(const char* name, std::uint16_t source_id,
                       std::uint64_t base, std::uint64_t stride,
                       std::size_t count) {
  CachedStage s;
  s.name = name;
  s.source_id = count == 0 ? 0xffff : source_id;
  s.reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    s.reqs.push_back(CachedStage::pack(base + i * stride, (i / 4) % 2 == 1));
  }
  return s;
}

CachedWorkload make_workload(std::vector<CachedStage> stages) {
  CachedWorkload wl;
  wl.burst_bytes = 16;
  for (auto& s : stages) {
    wl.total_requests += s.reqs.size();
    wl.stages.push_back(std::move(s));
  }
  return wl;
}

struct RunResult {
  ShardedRunOutput out;
  multichannel::SystemStats stats;
  std::string trace;
};

RunResult run_once(const multichannel::SystemConfig& config,
                   const std::vector<const CachedWorkload*>& frames,
                   Time period, unsigned threads) {
  multichannel::MemorySystem sys(config);
  std::vector<obs::TraceSpool> spools(sys.channel_count());
  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.attach_trace(&spools[c], c);
  }
  RunResult r;
  r.out = run_sharded_frames(sys, frames, period, threads);
  sys.finalize(max(r.out.end_time, period * static_cast<int>(frames.size())));
  std::vector<const obs::TraceSpool*> refs;
  for (const auto& s : spools) refs.push_back(&s);
  std::ostringstream os;
  obs::merge_trace_spools(refs, os);
  r.trace = os.str();
  r.stats = sys.stats();
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.out.end_time.ps(), b.out.end_time.ps());
  EXPECT_EQ(a.out.access_accum.ps(), b.out.access_accum.ps());
  EXPECT_EQ(a.out.bytes_first_frame, b.out.bytes_first_frame);
  ASSERT_EQ(a.out.per_frame_access.size(), b.out.per_frame_access.size());
  for (std::size_t i = 0; i < a.out.per_frame_access.size(); ++i) {
    EXPECT_EQ(a.out.per_frame_access[i].ps(), b.out.per_frame_access[i].ps());
  }
  ASSERT_EQ(a.out.first_frame_stages.size(), b.out.first_frame_stages.size());
  for (std::size_t i = 0; i < a.out.first_frame_stages.size(); ++i) {
    EXPECT_EQ(a.out.first_frame_stages[i], b.out.first_frame_stages[i]);
    EXPECT_EQ(a.out.first_frame_completed[i].ps(),
              b.out.first_frame_completed[i].ps());
  }

  EXPECT_EQ(a.stats.reads, b.stats.reads);
  EXPECT_EQ(a.stats.writes, b.stats.writes);
  EXPECT_EQ(a.stats.bytes, b.stats.bytes);
  EXPECT_EQ(a.stats.row_hits, b.stats.row_hits);
  EXPECT_EQ(a.stats.row_misses, b.stats.row_misses);
  EXPECT_EQ(a.stats.row_conflicts, b.stats.row_conflicts);
  EXPECT_EQ(a.stats.activates, b.stats.activates);
  EXPECT_EQ(a.stats.precharges, b.stats.precharges);
  EXPECT_EQ(a.stats.refreshes, b.stats.refreshes);
  EXPECT_EQ(a.stats.latency_ns.count(), b.stats.latency_ns.count());
  EXPECT_EQ(a.stats.latency_ns.mean(), b.stats.latency_ns.mean());
  EXPECT_EQ(a.stats.latency_ns.variance(), b.stats.latency_ns.variance());

  EXPECT_EQ(a.trace, b.trace) << "merged trace must be byte-identical";
}

void expect_thread_invariant(const multichannel::SystemConfig& config,
                             const std::vector<const CachedWorkload*>& frames,
                             Time period) {
  const RunResult t1 = run_once(config, frames, period, 1);
  const RunResult t2 = run_once(config, frames, period, 2);
  const RunResult t8 = run_once(config, frames, period, 8);
  expect_identical(t1, t2, "T=1 vs T=2");
  expect_identical(t1, t8, "T=1 vs T=8");
  EXPECT_GT(t1.stats.reads + t1.stats.writes, 0u);
  EXPECT_FALSE(t1.trace.empty());
}

TEST(SimThreadsDeterminism, InterleavedStagesAcrossChannels) {
  // Sequential 16 B bursts rotate channels every request - the paper's
  // stripe pattern and the engine's worst case for cross-worker handoff.
  const auto wl = make_workload({
      make_stage("capture", 0, 0, 16, 20000),
      make_stage("process", 1, 1 << 16, 16, 20000),
      make_stage("encode", 2, 1 << 18, 16, 12000),
  });
  expect_thread_invariant(make_system(4), {&wl}, Time::from_us(500));
}

TEST(SimThreadsDeterminism, ZeroLengthStageBetweenStages) {
  const auto wl = make_workload({
      make_stage("head", 0, 0, 16, 4000),
      make_stage("empty", 1, 0, 16, 0),
      make_stage("tail", 2, 1 << 16, 16, 4000),
  });
  expect_thread_invariant(make_system(4), {&wl}, Time::from_us(100));
}

TEST(SimThreadsDeterminism, BackpressureStallSpansEpoch) {
  // queue_depth=2 forces a full-queue threshold publication on nearly every
  // position; two frames make the stalls straddle an epoch boundary.
  const auto wl = make_workload({
      make_stage("stall", 0, 0, 16, 16000),
  });
  const std::vector<const CachedWorkload*> frames{&wl, &wl};
  expect_thread_invariant(make_system(4, /*queue_depth=*/2), frames,
                          Time::from_us(200));
}

TEST(SimThreadsDeterminism, RefreshAtEpochEdge) {
  // Busy time far beyond tREFI (7.8 us) so refreshes land mid-stage, with a
  // frame period that puts the next epoch right at the refresh cadence.
  const auto wl = make_workload({
      make_stage("long", 0, 0, 16, 32000),
  });
  const std::vector<const CachedWorkload*> frames{&wl, &wl, &wl};
  expect_thread_invariant(make_system(2), frames, Time::from_us(250));
}

TEST(SimThreadsDeterminism, SingleChannelSkewedStream) {
  // Stride of a whole stripe keeps every request on channel 0: the other
  // workers only ever drain thresholds and wait at the barriers.
  const std::uint32_t channels = 8;
  const auto wl = make_workload({
      make_stage("skew", 0, 0, 16ull * channels, 8000),
      make_stage("stripe", 1, 1 << 20, 16, 8000),
  });
  expect_thread_invariant(make_system(channels), {&wl}, Time::from_us(300));
}

TEST(SimThreadsDeterminism, ResolveAndEnvDefaults) {
  unsetenv("MCM_SIM_THREADS");
  EXPECT_EQ(sim_threads_from_env(), 1u);
  EXPECT_EQ(resolve_sim_threads(0, 4), 1u);

  setenv("MCM_SIM_THREADS", "8", 1);
  EXPECT_EQ(sim_threads_from_env(), 8u);
  EXPECT_EQ(resolve_sim_threads(0, 4), 4u) << "clamped to channel count";
  unsetenv("MCM_SIM_THREADS");

  EXPECT_EQ(resolve_sim_threads(16, 8), 8u);
  EXPECT_EQ(resolve_sim_threads(2, 8), 2u);
  EXPECT_EQ(resolve_sim_threads(3, 1), 1u);
}

TEST(SimThreadsDeterminism, RealUseCaseReportByteIdentical) {
  // Full-system spot check: one 720p30 4-channel point exported at 1 and 2
  // workers must match byte for byte (slow on one core, still bounded).
  const auto run = [](unsigned threads) {
    ExperimentConfig cfg = ExperimentConfig::paper_defaults();
    cfg.usecase.level = video::H264Level::k31;
    cfg.sim.sim_threads = threads;
    const FrameSimResult result =
        FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
    obs::JsonValue root = obs::JsonValue::object();
    export_config(root["config"], cfg.base, cfg.usecase);
    export_result(root["point"], result);
    return root.dump_string();
  };
  EXPECT_EQ(run(1), run(2));
}

}  // namespace
}  // namespace mcm::core
