// Determinism certification for heterogeneous channel clusters: a system
// mixing device classes (fast eDRAM, slow PCM, base mobile DDR, with and
// without vault grouping) must produce byte-identical results across
// MCM_SIM_THREADS in {1, 2, 8} x MCM_SIMD in {on, off} x chunk sizes.
// Per-channel timing asymmetry stresses exactly what the sharded engine's
// stall bounds must not depend on: channels that run far ahead of (or
// behind) their siblings.
#include "core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "dram/device_class.hpp"
#include "obs/trace.hpp"

namespace mcm::core {
namespace {

using load::CachedStage;
using load::CachedWorkload;

/// Scoped environment override (test-only; single-threaded test binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

multichannel::SystemConfig hetero_system(
    std::vector<dram::DeviceClass> classes, std::uint32_t vault_group = 0) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = static_cast<std::uint32_t>(classes.size());
  cfg.base.controller.queue_depth = 16;
  cfg.base.channel_classes = std::move(classes);
  cfg.base.vault_group = vault_group;
  return cfg.base;
}

CachedWorkload make_workload(std::size_t count) {
  CachedWorkload wl;
  wl.burst_bytes = 16;
  // Two stages: a channel-rotating sequential sweep (every channel busy)
  // and a strided pattern that lands unevenly, so fast channels drain far
  // ahead of slow ones.
  CachedStage seq;
  seq.name = "seq";
  seq.source_id = 0;
  for (std::size_t i = 0; i < count; ++i) {
    seq.reqs.push_back(CachedStage::pack(i * 16, (i / 4) % 2 == 1));
  }
  CachedStage strided;
  strided.name = "strided";
  strided.source_id = 1;
  for (std::size_t i = 0; i < count / 2; ++i) {
    strided.reqs.push_back(CachedStage::pack(1 << 20 | (i * 2048), i % 3 == 0));
  }
  wl.total_requests = seq.reqs.size() + strided.reqs.size();
  wl.stages.push_back(std::move(seq));
  wl.stages.push_back(std::move(strided));
  return wl;
}

struct RunResult {
  ShardedRunOutput out;
  multichannel::SystemStats stats;
  std::string trace;
};

RunResult run_once(const multichannel::SystemConfig& config,
                   const std::vector<const CachedWorkload*>& frames,
                   Time period, unsigned threads, unsigned chunk) {
  multichannel::MemorySystem sys(config);
  std::vector<obs::TraceSpool> spools(sys.channel_count());
  for (std::uint32_t c = 0; c < sys.channel_count(); ++c) {
    sys.attach_trace(&spools[c], c);
  }
  RunResult r;
  r.out = run_sharded_frames(sys, frames, period, threads, chunk);
  sys.finalize(max(r.out.end_time, period * static_cast<int>(frames.size())));
  std::vector<const obs::TraceSpool*> refs;
  for (const auto& s : spools) refs.push_back(&s);
  std::ostringstream os;
  obs::merge_trace_spools(refs, os);
  r.trace = os.str();
  r.stats = sys.stats();
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.out.end_time.ps(), b.out.end_time.ps());
  EXPECT_EQ(a.out.access_accum.ps(), b.out.access_accum.ps());
  ASSERT_EQ(a.out.per_frame_access.size(), b.out.per_frame_access.size());
  for (std::size_t i = 0; i < a.out.per_frame_access.size(); ++i) {
    EXPECT_EQ(a.out.per_frame_access[i].ps(), b.out.per_frame_access[i].ps());
  }
  EXPECT_EQ(a.stats.reads, b.stats.reads);
  EXPECT_EQ(a.stats.writes, b.stats.writes);
  EXPECT_EQ(a.stats.row_hits, b.stats.row_hits);
  EXPECT_EQ(a.stats.row_conflicts, b.stats.row_conflicts);
  EXPECT_EQ(a.stats.activates, b.stats.activates);
  EXPECT_EQ(a.stats.refreshes, b.stats.refreshes);
  EXPECT_EQ(a.stats.latency_ns.count(), b.stats.latency_ns.count());
  EXPECT_EQ(a.stats.latency_ns.mean(), b.stats.latency_ns.mean());
  EXPECT_EQ(a.trace, b.trace) << "merged trace must be byte-identical";
}

/// Reference = MCM_SIMD=off, T1, chunk=1; every (simd, threads, chunk)
/// combination must match it byte for byte.
void expect_hetero_invariant(const multichannel::SystemConfig& config) {
  const CachedWorkload wl = make_workload(600);
  const std::vector<const CachedWorkload*> frames{&wl, &wl};
  const Time period = Time::from_ms(2.0);

  RunResult ref;
  {
    ScopedEnv env("MCM_SIMD", "off");
    ref = run_once(config, frames, period, 1, 1);
  }
  EXPECT_GT(ref.stats.reads + ref.stats.writes, 0u);
  for (const char* simd : {"off", "on"}) {
    ScopedEnv env("MCM_SIMD", simd);
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const unsigned chunk : {1u, 7u, 64u, 100000u}) {
        expect_identical(ref, run_once(config, frames, period, threads, chunk),
                         std::string("MCM_SIMD=") + simd +
                             " T=" + std::to_string(threads) +
                             " chunk=" + std::to_string(chunk));
      }
    }
  }
}

TEST(HeteroDeterminism, MixedClassesAcrossThreadsSimdAndChunks) {
  expect_hetero_invariant(hetero_system({
      dram::DeviceClass::kFastEdram,
      dram::DeviceClass::kSlowPcm,
      dram::DeviceClass::kMobileDdr,
      dram::DeviceClass::kFastEdram,
  }));
}

TEST(HeteroDeterminism, VaultGroupedAcrossThreadsSimdAndChunks) {
  expect_hetero_invariant(hetero_system(
      {
          dram::DeviceClass::kFastEdram,
          dram::DeviceClass::kFastEdram,
          dram::DeviceClass::kSlowPcm,
          dram::DeviceClass::kSlowPcm,
      },
      /*vault_group=*/2));
}

TEST(HeteroDeterminism, AllMobileDdrMatchesLegacyByteForByte) {
  // The kMobileDdr identity: binding the base class on every channel must
  // not change a single byte versus the class-free legacy config.
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 4;
  const multichannel::SystemConfig legacy = cfg.base;
  multichannel::SystemConfig bound = cfg.base;
  bound.channel_classes.assign(4, dram::DeviceClass::kMobileDdr);

  const CachedWorkload wl = make_workload(400);
  const std::vector<const CachedWorkload*> frames{&wl};
  const Time period = Time::from_ms(2.0);
  expect_identical(run_once(legacy, frames, period, 4, 0),
                   run_once(bound, frames, period, 4, 0),
                   "all-mobile-ddr vs legacy");
}

}  // namespace
}  // namespace mcm::core
