// Profiling purity: turning the self-profiler on must not change a single
// byte of the simulation's exported results, at one worker or several. The
// profiler only ever reads clocks and writes its own thread-local spools, so
// any divergence here means instrumentation leaked into simulation state.
#include <gtest/gtest.h>

#include <string>

#include "core/experiments.hpp"
#include "core/frame_simulator.hpp"
#include "core/result_export.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace mcm::core {
namespace {

std::string run_exported(unsigned threads, bool profile) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.usecase.level = video::H264Level::k31;
  cfg.base.channels = 4;  // enough channels for 4 real workers
  cfg.sim.sim_threads = threads;
  cfg.sim.profile = profile;
  const FrameSimResult result = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  obs::JsonValue root = obs::JsonValue::object();
  export_config(root["config"], cfg.base, cfg.usecase);
  export_result(root["point"], result);
  return root.dump_string();
}

class ProfPurityTest : public ::testing::Test {
 protected:
  void SetUp() override { (void)obs::prof::collect(/*reset=*/true); }
  void TearDown() override {
    // FrameSimOptions::profile latches the global enable; clear it so later
    // tests in this binary run unprofiled.
    obs::prof::set_enabled(false);
    (void)obs::prof::collect(/*reset=*/true);
  }
};

TEST_F(ProfPurityTest, ReportByteIdenticalSingleWorker) {
  const std::string off = run_exported(1, false);
  obs::prof::set_enabled(false);
  (void)obs::prof::collect(true);
  const std::string on = run_exported(1, true);
  EXPECT_EQ(off, on);

  const obs::prof::ProfileReport rep = obs::prof::collect(true);
  EXPECT_NE(rep.find("sim/run"), nullptr);
  EXPECT_NE(rep.find("engine/w0/feed"), nullptr);
}

TEST_F(ProfPurityTest, ReportByteIdenticalFourWorkers) {
  const std::string off = run_exported(4, false);
  obs::prof::set_enabled(false);
  (void)obs::prof::collect(true);
  const std::string on = run_exported(4, true);
  EXPECT_EQ(off, on);

  // All four workers must have reported their per-worker phases.
  const obs::prof::ProfileReport rep = obs::prof::collect(true);
  EXPECT_NE(rep.find("sim/run"), nullptr);
  EXPECT_NE(rep.find("engine/w0/feed"), nullptr);
  EXPECT_NE(rep.find("engine/w3/feed"), nullptr);
  EXPECT_NE(rep.find("engine/w3/retired"), nullptr);
}

TEST_F(ProfPurityTest, ProfiledRunsMatchAcrossThreadCounts) {
  // Determinism and purity combined: profiled 1-worker == profiled 4-worker.
  const std::string t1 = run_exported(1, true);
  obs::prof::set_enabled(false);
  (void)obs::prof::collect(true);
  const std::string t4 = run_exported(4, true);
  EXPECT_EQ(t1, t4);
}

}  // namespace
}  // namespace mcm::core
