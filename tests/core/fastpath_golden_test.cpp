// Golden equivalence of the row-hit streaming fast path at full-system
// scale: one Fig. 3 point and one Fig. 4 point simulated with the fast path
// on and off must produce identical SystemStats, per-channel energy-ledger
// residencies, the same SystemPowerReport, and a byte-identical exported
// run-report point.
#include <gtest/gtest.h>

#include <string>

#include "core/experiments.hpp"
#include "core/result_export.hpp"
#include "obs/json.hpp"

namespace mcm::core {
namespace {

struct GoldenRun {
  FrameSimResult result;
  std::string exported;  // config + point JSON, byte-comparable
  multichannel::SystemConfig system;
};

GoldenRun run_point(double freq_mhz, std::uint32_t channels,
                    video::H264Level level, bool fastpath) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.base.freq = Frequency{freq_mhz};
  cfg.base.channels = channels;
  cfg.base.controller.stream_row_hits = fastpath;
  cfg.usecase.level = level;
  GoldenRun run;
  run.system = cfg.base;
  run.result = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);

  obs::JsonValue root = obs::JsonValue::object();
  export_config(root["config"], cfg.base, cfg.usecase);
  export_result(root["point"], run.result);
  run.exported = root.dump_string();
  return run;
}

void expect_identical(const GoldenRun& fast, const GoldenRun& slow) {
  const multichannel::SystemStats& a = fast.result.stats;
  const multichannel::SystemStats& b = slow.result.stats;
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.activates, b.activates);
  EXPECT_EQ(a.precharges, b.precharges);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.powerdown_entries, b.powerdown_entries);
  EXPECT_EQ(a.selfrefresh_entries, b.selfrefresh_entries);
  EXPECT_EQ(a.latency_ns.count(), b.latency_ns.count());
  EXPECT_EQ(a.latency_ns.mean(), b.latency_ns.mean());
  EXPECT_EQ(a.latency_ns.variance(), b.latency_ns.variance());

  EXPECT_EQ(fast.result.access_time.ps(), slow.result.access_time.ps());
  EXPECT_EQ(fast.result.window.ps(), slow.result.window.ps());

  // Per-channel power: residencies feed the power model, so equal reports
  // imply equal ledgers; check both ends anyway.
  const multichannel::SystemPowerReport& pa = fast.result.power;
  const multichannel::SystemPowerReport& pb = slow.result.power;
  EXPECT_EQ(pa.dram_mw, pb.dram_mw);
  EXPECT_EQ(pa.interface_mw, pb.interface_mw);
  EXPECT_EQ(pa.total_mw, pb.total_mw);
  ASSERT_EQ(pa.per_channel.size(), pb.per_channel.size());
  for (std::size_t i = 0; i < pa.per_channel.size(); ++i) {
    EXPECT_EQ(pa.per_channel[i].total_mw, pb.per_channel[i].total_mw)
        << "channel " << i;
  }

  // The exported run-report content differs only in the config's
  // stream_row_hits flag (when exported); the numeric payload must match
  // byte for byte, so compare the point sections.
  const auto point_of = [](const std::string& s) {
    return s.substr(s.find("\"point\""));
  };
  EXPECT_EQ(point_of(fast.exported), point_of(slow.exported));
}

TEST(FastPathGolden, Fig3Point333MHz2Ch720p) {
  const GoldenRun fast = run_point(333.0, 2, video::H264Level::k31, true);
  const GoldenRun slow = run_point(333.0, 2, video::H264Level::k31, false);
  expect_identical(fast, slow);
  // Sanity: the point actually simulated traffic.
  EXPECT_GT(fast.result.stats.accesses(), 100000u);
}

TEST(FastPathGolden, Fig4Point400MHz4ChLevel40) {
  const GoldenRun fast = run_point(400.0, 4, video::H264Level::k40, true);
  const GoldenRun slow = run_point(400.0, 4, video::H264Level::k40, false);
  expect_identical(fast, slow);
  EXPECT_GT(fast.result.stats.accesses(), 100000u);
}

}  // namespace
}  // namespace mcm::core
