#include "core/source_runner.hpp"

#include <gtest/gtest.h>

#include "load/multi_stream_source.hpp"

namespace mcm::core {
namespace {

std::unique_ptr<load::TrafficSource> stream(std::uint64_t base, std::uint64_t bytes,
                                            bool is_write, std::uint16_t id) {
  return std::make_unique<load::MultiStreamSource>(
      "stream",
      std::vector<load::StreamSpec>{{base, bytes, 0, is_write, id}});
}

multichannel::SystemConfig two_channels() {
  multichannel::SystemConfig cfg;
  cfg.channels = 2;
  return cfg;
}

TEST(SourceRunner, EmptySourceListFinishesInstantly) {
  auto r = run_stage_sources(two_channels(), {}, Time::from_ms(1.0));
  EXPECT_EQ(r.access_time, Time::zero());
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_EQ(r.window, Time::from_ms(1.0));
  // Idle window still burns background power (power-down + refresh + I/O).
  EXPECT_GT(r.total_power_mw, 0.0);
  EXPECT_LT(r.dram_power_mw, 20.0);
}

TEST(SourceRunner, VolumeConserved) {
  std::vector<std::unique_ptr<load::TrafficSource>> sources;
  sources.push_back(stream(0, 256 * 1024, false, 0));
  sources.push_back(stream(1 << 22, 128 * 1024, true, 1));
  auto r = run_stage_sources(two_channels(), std::move(sources), Time::zero());
  EXPECT_EQ(r.bytes, 256u * 1024 + 128 * 1024);
  EXPECT_EQ(r.stats.bytes, r.bytes);
  EXPECT_EQ(r.stats.reads, 256u * 1024 / 16);
  EXPECT_EQ(r.stats.writes, 128u * 1024 / 16);
}

TEST(SourceRunner, StagesRunInOrder) {
  // Two equal stages: total time is ~2x one stage (barrier between them).
  auto one = run_stage_sources(
      two_channels(),
      [] {
        std::vector<std::unique_ptr<load::TrafficSource>> v;
        v.push_back(stream(0, 512 * 1024, false, 0));
        return v;
      }(),
      Time::zero());
  auto two = run_stage_sources(
      two_channels(),
      [] {
        std::vector<std::unique_ptr<load::TrafficSource>> v;
        v.push_back(stream(0, 512 * 1024, false, 0));
        v.push_back(stream(1 << 22, 512 * 1024, false, 1));
        return v;
      }(),
      Time::zero());
  EXPECT_NEAR(static_cast<double>(two.access_time.ps()),
              2.0 * static_cast<double>(one.access_time.ps()),
              0.15 * static_cast<double>(two.access_time.ps()));
}

TEST(SourceRunner, WindowHintExtendsAccounting) {
  std::vector<std::unique_ptr<load::TrafficSource>> sources;
  sources.push_back(stream(0, 64 * 1024, false, 0));
  auto tight = run_stage_sources(two_channels(),
                                 [] {
                                   std::vector<std::unique_ptr<load::TrafficSource>> v;
                                   v.push_back(stream(0, 64 * 1024, false, 0));
                                   return v;
                                 }(),
                                 Time::zero());
  auto wide = run_stage_sources(two_channels(), std::move(sources),
                                Time::from_ms(33.0));
  EXPECT_EQ(tight.access_time, wide.access_time);
  EXPECT_GT(wide.window, tight.window);
  // Average power over the long window is far lower (idle tail sleeps).
  EXPECT_LT(wide.dram_power_mw, tight.dram_power_mw);
}

}  // namespace
}  // namespace mcm::core
