// Concurrent execution mode: DisplayCtrl and audio run as paced masters
// alongside the pipeline instead of as back-to-back states.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/frame_simulator.hpp"

namespace mcm::core {
namespace {

FrameSimResult run_mode(ExecutionMode mode, std::uint32_t channels,
                        video::H264Level level = video::H264Level::k31) {
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = channels;
  cfg.sim.mode = mode;
  video::UseCaseParams uc = cfg.usecase;
  uc.level = level;
  return FrameSimulator(cfg.sim).run(cfg.base, uc);
}

TEST(ConcurrentMode, TotalTrafficVolumePreserved) {
  const auto seq = run_mode(ExecutionMode::kStateMachine, 2);
  const auto con = run_mode(ExecutionMode::kConcurrent, 2);
  EXPECT_EQ(seq.bytes_per_frame, con.bytes_per_frame);
  EXPECT_EQ(seq.stats.bytes, con.stats.bytes);
}

TEST(ConcurrentMode, PacedTrafficServedWithinCadence) {
  const auto con = run_mode(ExecutionMode::kConcurrent, 2);
  EXPECT_GT(con.paced_last_done, Time::zero());
  // The display scan-out for the frame completes within ~one frame period
  // (arrivals are paced across it; service adds only microseconds).
  EXPECT_LT(con.paced_last_done.seconds(), con.frame_period.seconds() * 1.05);
}

TEST(ConcurrentMode, PipelineAccessTimeComparableAcrossModes) {
  // Removing display/audio from the serial path saves their volume, but the
  // paced display interferes with the pipeline (row conflicts, turnarounds).
  // Empirically the two nearly cancel; the paper's state-machine abstraction
  // is therefore a fair model. Assert the modes stay within 15 %.
  const auto seq = run_mode(ExecutionMode::kStateMachine, 2);
  const auto con = run_mode(ExecutionMode::kConcurrent, 2);
  EXPECT_NEAR(con.access_time.seconds(), seq.access_time.seconds(),
              seq.access_time.seconds() * 0.15);
}

TEST(ConcurrentMode, StillMeetsPaperVerdicts) {
  // The mode change must not flip the paper's feasibility conclusions.
  EXPECT_TRUE(run_mode(ExecutionMode::kConcurrent, 2).meets_realtime);
  EXPECT_TRUE(run_mode(ExecutionMode::kConcurrent, 4, video::H264Level::k40)
                  .meets_realtime_with_margin);
  EXPECT_FALSE(run_mode(ExecutionMode::kConcurrent, 1, video::H264Level::k40)
                   .meets_realtime);
}

TEST(ConcurrentMode, StageResultsMarkPacedStages) {
  const auto con = run_mode(ExecutionMode::kConcurrent, 2);
  bool saw_paced = false;
  for (const auto& s : con.stage_results) {
    if (s.name.find("(paced)") != std::string::npos) saw_paced = true;
  }
  EXPECT_TRUE(saw_paced);
  EXPECT_EQ(con.stage_results.size(), 11u);
}

TEST(ConcurrentMode, PacedLatencyTrackedAndBounded) {
  const auto con = run_mode(ExecutionMode::kConcurrent, 4, video::H264Level::k40);
  // Every display/audio request's service latency is recorded.
  EXPECT_GT(con.paced_latency_ns.count(), 1000u);
  // Scan-out requests are served in well under a display line time (~26 us
  // at WVGA@60); worst case stays microsecond-scale.
  EXPECT_LT(con.paced_latency_ns.max(), 20'000.0);
  EXPECT_LT(con.paced_latency_ns.mean(), 2'000.0);
}

TEST(ConcurrentMode, MoreChannelsReduceMeanPacedLatency) {
  const auto two = run_mode(ExecutionMode::kConcurrent, 2);
  const auto eight = run_mode(ExecutionMode::kConcurrent, 8);
  EXPECT_LT(eight.paced_latency_ns.mean(), two.paced_latency_ns.mean());
}

TEST(ConcurrentMode, StateMachineModeHasNoPacedStats) {
  const auto seq = run_mode(ExecutionMode::kStateMachine, 2);
  EXPECT_EQ(seq.paced_latency_ns.count(), 0u);
  EXPECT_EQ(seq.paced_last_done, Time::zero());
}

TEST(ConcurrentMode, MultiFrameRunStable) {
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 2;
  cfg.sim.mode = ExecutionMode::kConcurrent;
  cfg.sim.frames = 3;
  const auto r = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  EXPECT_TRUE(r.meets_realtime);
  EXPECT_GE(r.window, r.frame_period * 3);
}

}  // namespace
}  // namespace mcm::core
