#include "core/experiments.hpp"

#include <gtest/gtest.h>

namespace mcm::core {
namespace {

TEST(Experiments, PaperDefaultsMatchSectionIII) {
  const auto cfg = ExperimentConfig::paper_defaults();
  EXPECT_EQ(cfg.base.interleave_bytes, 16u);
  EXPECT_EQ(cfg.base.mux, ctrl::AddressMux::kRBC);
  EXPECT_EQ(cfg.base.controller.page_policy, ctrl::PagePolicy::kOpen);
  EXPECT_EQ(cfg.base.controller.powerdown_idle_cycles, 1);
  EXPECT_EQ(cfg.base.device.org.banks, 4u);
  EXPECT_EQ(cfg.usecase.ref_policy, video::RefFramePolicy::kCalibrated);
}

TEST(Experiments, PaperAxes) {
  EXPECT_EQ(paper_frequencies(),
            (std::vector<double>{200.0, 266.0, 333.0, 400.0, 466.0, 533.0}));
  EXPECT_EQ(paper_channel_counts(), (std::vector<std::uint32_t>{1, 2, 4, 8}));
}

TEST(Experiments, FrequencySweepShapesAreMonotonic) {
  // Restrict to 1-2 channels at three frequencies to keep the test fast;
  // access time must fall with frequency and with channels.
  auto cfg = ExperimentConfig::paper_defaults();
  const FrameSimulator sim(cfg.sim);
  auto run = [&](double freq, std::uint32_t ch) {
    auto sys = cfg.base;
    sys.freq = Frequency{freq};
    sys.channels = ch;
    video::UseCaseParams uc = cfg.usecase;
    uc.level = video::H264Level::k31;
    return sim.run(sys, uc).access_time;
  };
  const Time t200 = run(200.0, 1);
  const Time t400_1 = run(400.0, 1);
  const Time t400_2 = run(400.0, 2);
  EXPECT_GT(t200, t400_1);
  EXPECT_GT(t400_1, t400_2);
  // Paper: "close to 2x speedup ... double clock frequency or double the
  // number of exploited channels".
  EXPECT_NEAR(static_cast<double>(t200.ps()) / t400_1.ps(), 2.0, 0.4);
  EXPECT_NEAR(static_cast<double>(t400_1.ps()) / t400_2.ps(), 2.0, 0.4);
}

}  // namespace
}  // namespace mcm::core
