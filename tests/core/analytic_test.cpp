// Cross-validation: the closed-form estimator must track the
// transaction-level simulator across the paper's operating points.
#include "core/analytic.hpp"

#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace mcm::core {
namespace {

struct Point {
  double freq;
  std::uint32_t channels;
  video::H264Level level;
};

class AnalyticVsSim : public ::testing::TestWithParam<Point> {};

TEST_P(AnalyticVsSim, AccessTimeWithin20Percent) {
  const auto [freq, channels, level] = GetParam();
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.freq = Frequency{freq};
  cfg.base.channels = channels;
  video::UseCaseParams uc = cfg.usecase;
  uc.level = level;

  const auto sim = FrameSimulator(cfg.sim).run(cfg.base, uc);
  const auto ana = analytic_estimate(cfg.base, uc, cfg.sim.load);

  const double sim_ms = sim.access_time.ms();
  const double ana_ms = ana.access_time.ms();
  EXPECT_NEAR(ana_ms, sim_ms, sim_ms * 0.20)
      << "sim " << sim_ms << " ms vs analytic " << ana_ms << " ms";
}

TEST_P(AnalyticVsSim, PowerWithin25Percent) {
  const auto [freq, channels, level] = GetParam();
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.freq = Frequency{freq};
  cfg.base.channels = channels;
  video::UseCaseParams uc = cfg.usecase;
  uc.level = level;

  const auto sim = FrameSimulator(cfg.sim).run(cfg.base, uc);
  const auto ana = analytic_estimate(cfg.base, uc, cfg.sim.load);
  if (!sim.meets_realtime) GTEST_SKIP() << "config misses real time";
  EXPECT_NEAR(ana.total_power_mw, sim.total_power_mw, sim.total_power_mw * 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPoints, AnalyticVsSim,
    ::testing::Values(Point{400.0, 1, video::H264Level::k31},
                      Point{400.0, 2, video::H264Level::k31},
                      Point{200.0, 2, video::H264Level::k31},
                      Point{400.0, 4, video::H264Level::k40},
                      Point{533.0, 4, video::H264Level::k40},
                      Point{400.0, 2, video::H264Level::k32}));

TEST(Analytic, EfficiencyBetweenHalfAndOne) {
  auto cfg = ExperimentConfig::paper_defaults();
  const auto ana = analytic_estimate(cfg.base, cfg.usecase, cfg.sim.load);
  EXPECT_GT(ana.efficiency, 0.5);
  EXPECT_LE(ana.efficiency, 1.0);
  EXPECT_GT(ana.cycles.data, 0.0);
  EXPECT_GT(ana.cycles.turnaround, 0.0);
  EXPECT_GT(ana.cycles.refresh, 0.0);
}

TEST(Analytic, ScalesInverselyWithChannels) {
  auto cfg = ExperimentConfig::paper_defaults();
  video::UseCaseParams uc = cfg.usecase;
  auto at = [&](std::uint32_t ch) {
    auto sys = cfg.base;
    sys.channels = ch;
    return analytic_estimate(sys, uc, cfg.sim.load).access_time.seconds();
  };
  EXPECT_NEAR(at(1) / at(2), 2.0, 0.2);
  EXPECT_NEAR(at(2) / at(4), 2.0, 0.2);
}

TEST(Analytic, MicrosecondFast) {
  // The whole point of the estimator: screening sweeps at ~0 cost. 1000
  // evaluations must finish far faster than one simulation.
  auto cfg = ExperimentConfig::paper_defaults();
  double acc = 0;
  for (int i = 0; i < 1000; ++i) {
    acc += analytic_estimate(cfg.base, cfg.usecase, cfg.sim.load).efficiency;
  }
  EXPECT_GT(acc, 0.0);
}

}  // namespace
}  // namespace mcm::core
