// End-to-end integration tests: real use-case traffic, full multi-channel
// stack, with the independent TimingChecker re-validating every channel's
// DRAM command trace, plus bit-exact determinism guarantees.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "dram/timing_checker.hpp"
#include "load/usecase_sources.hpp"
#include "multichannel/memory_system.hpp"

namespace mcm::core {
namespace {

// Drive up to `max_bursts` of the 720p30 use case through a system.
Time drive_usecase(multichannel::MemorySystem& sys, std::size_t max_bursts,
                   const load::LoadOptions& opt = {}) {
  video::UseCaseParams p;
  p.level = video::H264Level::k31;
  const video::UseCaseModel model(p);
  const video::SurfaceLayout layout(model);
  auto sources = load::build_stage_sources(model, layout, opt);
  Time last = Time::zero();
  std::size_t bursts = 0;
  for (auto& src : sources) {
    while (!src->done() && bursts < max_bursts) {
      const auto r = src->head();
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        src->advance();
        ++bursts;
      } else if (auto c = sys.process_next()) {
        last = max(last, c->done);
      }
    }
    if (bursts >= max_bursts) break;
  }
  return max(last, sys.drain());
}

TEST(Integration, FullStackCommandTracesAreProtocolLegal) {
  multichannel::SystemConfig cfg;
  cfg.channels = 2;
  cfg.controller.record_trace = true;
  multichannel::MemorySystem sys(cfg);
  const Time last = drive_usecase(sys, 200'000);
  ASSERT_GT(last, Time::zero());
  sys.finalize(last + Time::from_ms(1.0));

  for (std::uint32_t ch = 0; ch < sys.channel_count(); ++ch) {
    const auto& mc = sys.channel(ch).controller();
    dram::TimingChecker checker(cfg.device.org, mc.timing());
    const auto violations = checker.check(mc.trace());
    EXPECT_TRUE(violations.empty())
        << "channel " << ch << ": " << violations.size()
        << " violations, first: " << (violations.empty() ? "" : violations.front());
  }
}

TEST(Integration, MotionWindowTracesAreProtocolLegal) {
  multichannel::SystemConfig cfg;
  cfg.channels = 2;
  cfg.controller.record_trace = true;
  load::LoadOptions opt;
  opt.motion_window_encoder = true;
  multichannel::MemorySystem sys(cfg);
  (void)drive_usecase(sys, 150'000, opt);
  sys.finalize(sys.max_horizon() + Time::from_us(100.0));
  for (std::uint32_t ch = 0; ch < sys.channel_count(); ++ch) {
    const auto& mc = sys.channel(ch).controller();
    dram::TimingChecker checker(cfg.device.org, mc.timing());
    const auto violations = checker.check(mc.trace());
    EXPECT_TRUE(violations.empty())
        << "channel " << ch << ": "
        << (violations.empty() ? "" : violations.front());
  }
}

TEST(Integration, SimulationIsBitExactDeterministic) {
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 2;
  const auto a = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  const auto b = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  EXPECT_EQ(a.access_time, b.access_time);
  EXPECT_EQ(a.stats.row_hits, b.stats.row_hits);
  EXPECT_EQ(a.stats.activates, b.stats.activates);
  EXPECT_EQ(a.stats.refreshes, b.stats.refreshes);
  EXPECT_DOUBLE_EQ(a.total_power_mw, b.total_power_mw);
}

TEST(Integration, ResultsIndependentOfTraceRecording) {
  // Observability must not perturb timing.
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 2;
  auto with = cfg.base;
  with.controller.record_trace = true;
  const auto a = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  const auto b = FrameSimulator(cfg.sim).run(with, cfg.usecase);
  EXPECT_EQ(a.access_time, b.access_time);
  EXPECT_DOUBLE_EQ(a.total_power_mw, b.total_power_mw);
}

TEST(Integration, EnergyConservation) {
  // Total residency time across all power states must equal
  // channels x window, and the energy tally must be internally consistent.
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 4;
  const auto r = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  double residency_s = 0;
  for (std::uint32_t ch = 0; ch < 4; ++ch) {
    // Reconstruct from the per-channel power reports: dram energy over the
    // window is dram_avg_mw * window.
    residency_s += r.window.seconds();
  }
  EXPECT_GT(residency_s, 0.0);
  EXPECT_NEAR(r.power.dram.total_pj() / 1e9,
              r.dram_power_mw * r.window.seconds(), 1e-6);
}

TEST(Integration, AlternativeDevicesEndToEndAndProtocolLegal) {
  // The generalized burst path (wide SDR) and tFAW device drive the full
  // stack; traces stay protocol legal under the real workload.
  struct Case {
    dram::DeviceSpec device;
    double freq;
    std::uint32_t interleave;
  };
  const Case cases[] = {
      {dram::DeviceSpec::wide_io_like(), 200.0, 64},
      {dram::DeviceSpec::eight_bank_future(), 400.0, 16},
  };
  for (const auto& c : cases) {
    multichannel::SystemConfig cfg;
    cfg.device = c.device;
    cfg.freq = Frequency{c.freq};
    cfg.channels = 2;
    cfg.interleave_bytes = c.interleave;
    cfg.controller.record_trace = true;
    cfg.controller.queue_depth = 8;

    video::UseCaseParams uc;
    uc.level = video::H264Level::k31;
    const auto r = FrameSimulator().run(cfg, uc);
    EXPECT_TRUE(r.meets_realtime);
    // Volume matches Table I regardless of burst size.
    const video::UseCaseModel model(uc);
    EXPECT_NEAR(static_cast<double>(r.bytes_per_frame),
                model.total_bytes_per_frame(),
                model.total_bytes_per_frame() * 0.002);
  }
  // Protocol check on a bounded slice (full-frame traces are large).
  multichannel::SystemConfig cfg;
  cfg.device = dram::DeviceSpec::eight_bank_future();
  cfg.channels = 2;
  cfg.controller.record_trace = true;
  multichannel::MemorySystem sys(cfg);
  const Time last = drive_usecase(sys, 100'000);
  sys.finalize(last + Time::from_ms(1.0));
  for (std::uint32_t ch = 0; ch < sys.channel_count(); ++ch) {
    const auto& mc = sys.channel(ch).controller();
    dram::TimingChecker checker(cfg.device.org, mc.timing());
    const auto violations = checker.check(mc.trace());
    EXPECT_TRUE(violations.empty())
        << "channel " << ch << ": "
        << (violations.empty() ? "" : violations.front());
  }
}

TEST(Integration, EightChannel2160pEndToEnd) {
  // The paper's most demanding feasible point, end to end.
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 8;
  video::UseCaseParams uc = cfg.usecase;
  uc.level = video::H264Level::k52;
  const auto r = FrameSimulator(cfg.sim).run(cfg.base, uc);
  EXPECT_TRUE(r.meets_realtime);
  EXPECT_GT(r.achieved_bandwidth_bytes_per_s, 15e9);  // ~16 GB/s demand
  EXPECT_EQ(r.stats.bytes, r.bytes_per_frame);
  // Every channel carries an equal share (16 B interleave).
  const auto& per = r.power.per_channel;
  ASSERT_EQ(per.size(), 8u);
  for (const auto& ch : per) {
    EXPECT_NEAR(ch.total_mw, per.front().total_mw, per.front().total_mw * 0.02);
  }
}

}  // namespace
}  // namespace mcm::core
