// Figure-level shape assertions against the paper's reported results.
// Absolute numbers are bands (our substrate is a reconstruction, not the
// authors' ESL testbed); who-wins relations are asserted exactly.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "xdr/xdr_model.hpp"

namespace mcm::core {
namespace {

class PaperResults : public ::testing::Test {
 protected:
  FrameSimResult run(double freq, std::uint32_t channels, video::H264Level level) {
    auto cfg = ExperimentConfig::paper_defaults();
    cfg.base.freq = Frequency{freq};
    cfg.base.channels = channels;
    video::UseCaseParams uc = cfg.usecase;
    uc.level = level;
    return FrameSimulator(cfg.sim).run(cfg.base, uc);
  }
};

// --- Fig. 3: access time vs clock frequency, 720p30, one frame ------------

TEST_F(PaperResults, Fig3_SingleChannelFailsAt200And266) {
  EXPECT_FALSE(run(200.0, 1, video::H264Level::k31).meets_realtime);
  EXPECT_FALSE(run(266.0, 1, video::H264Level::k31).meets_realtime);
}

TEST_F(PaperResults, Fig3_SingleChannel333IsMarginal) {
  // Paper: 333 MHz meets the 33 ms line but is "on the edge".
  const auto r = run(333.0, 1, video::H264Level::k31);
  EXPECT_TRUE(r.meets_realtime);
  EXPECT_GT(r.access_time.seconds(), r.frame_period.seconds() * 0.70);
}

TEST_F(PaperResults, Fig3_TwoChannelsMeet720pAtEveryFrequency) {
  // Paper conclusion from Fig. 3: "at least two channels are required to
  // satisfy the real-time requirements of the 720p HDTV with all the
  // examined DDR2 clock frequencies" - and two channels suffice.
  for (const double f : paper_frequencies()) {
    EXPECT_TRUE(run(f, 2, video::H264Level::k31).meets_realtime)
        << "2 channels @ " << f << " MHz";
  }
}

TEST_F(PaperResults, Fig3_DoublingFrequencyOrChannelsNearlyHalvesTime) {
  const auto t200_1 = run(200.0, 1, video::H264Level::k31).access_time;
  const auto t400_1 = run(400.0, 1, video::H264Level::k31).access_time;
  const auto t200_2 = run(200.0, 2, video::H264Level::k31).access_time;
  EXPECT_NEAR(static_cast<double>(t200_1.ps()) / t400_1.ps(), 2.0, 0.4);
  EXPECT_NEAR(static_cast<double>(t200_1.ps()) / t200_2.ps(), 2.0, 0.4);
}

// --- Fig. 4: access time vs format at 400 MHz -----------------------------

TEST_F(PaperResults, Fig4_Level31AchievableWithAllInterleavings) {
  for (const std::uint32_t ch : paper_channel_counts()) {
    EXPECT_TRUE(run(400.0, ch, video::H264Level::k31).meets_realtime)
        << ch << " channels";
  }
}

TEST_F(PaperResults, Fig4_720p60RequiresAtLeastTwoChannels) {
  EXPECT_FALSE(run(400.0, 1, video::H264Level::k32).meets_realtime);
  EXPECT_TRUE(run(400.0, 2, video::H264Level::k32).meets_realtime);
}

TEST_F(PaperResults, Fig4_1080p30SafeWithFourChannels) {
  // Paper: "to be on the safe side ... 1080p employs at minimum four
  // channels" - one channel fails outright; four meet with margin.
  EXPECT_FALSE(run(400.0, 1, video::H264Level::k40).meets_realtime);
  const auto four = run(400.0, 4, video::H264Level::k40);
  EXPECT_TRUE(four.meets_realtime_with_margin);
}

TEST_F(PaperResults, Fig4_1080p60NeedsFourChannels) {
  EXPECT_FALSE(run(400.0, 2, video::H264Level::k42).meets_realtime);
  EXPECT_TRUE(run(400.0, 4, video::H264Level::k42).meets_realtime);
}

TEST_F(PaperResults, Fig4_2160pNeedsAllEightChannels) {
  EXPECT_FALSE(run(400.0, 4, video::H264Level::k52).meets_realtime);
  EXPECT_TRUE(run(400.0, 8, video::H264Level::k52).meets_realtime);
}

// --- Fig. 5: power vs format at 400 MHz ------------------------------------

TEST_F(PaperResults, Fig5_720pSingleChannelNear150mW) {
  const auto r = run(400.0, 1, video::H264Level::k31);
  EXPECT_GT(r.total_power_mw, 100.0);
  EXPECT_LT(r.total_power_mw, 210.0);
}

TEST_F(PaperResults, Fig5_720pEightChannelsNear205mW) {
  // Multi-channel overhead is moderate thanks to aggressive power-down:
  // 150 mW (1 ch) vs 205 mW (8 ch) in the paper.
  const auto one = run(400.0, 1, video::H264Level::k31);
  const auto eight = run(400.0, 8, video::H264Level::k31);
  EXPECT_GT(eight.total_power_mw, one.total_power_mw);
  EXPECT_LT(eight.total_power_mw, one.total_power_mw * 1.8);
  EXPECT_GT(eight.total_power_mw, 140.0);
  EXPECT_LT(eight.total_power_mw, 290.0);
}

TEST_F(PaperResults, Fig5_1080p30FourChannelsNear345mW) {
  const auto r = run(400.0, 4, video::H264Level::k40);
  EXPECT_GT(r.total_power_mw, 260.0);
  EXPECT_LT(r.total_power_mw, 440.0);
}

TEST_F(PaperResults, Fig5_2160pEightChannelsNear1280mW) {
  const auto r = run(400.0, 8, video::H264Level::k52);
  EXPECT_GT(r.total_power_mw, 950.0);
  EXPECT_LT(r.total_power_mw, 1650.0);
}

TEST_F(PaperResults, Fig5_InterfacePowerIsSmallStackedComponent) {
  const auto r = run(400.0, 4, video::H264Level::k40);
  EXPECT_NEAR(r.interface_power_mw, 4 * 4.147, 0.2);
  EXPECT_LT(r.interface_power_mw, 0.15 * r.total_power_mw);
}

// --- Section IV/V: XDR comparison ------------------------------------------

TEST_F(PaperResults, XdrComparableBandwidthFractionOfPower) {
  const xdr::XdrInterface xdr;
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = 8;
  const multichannel::MemorySystem sys(cfg.base);
  EXPECT_NEAR(sys.peak_bandwidth_bytes_per_s() / 1e9, xdr.bandwidth_gb_per_s, 1.0);
  // "power consumption from 4 % to 25 % of the XDR value".
  const double lo = xdr.power_fraction(run(400.0, 8, video::H264Level::k31).total_power_mw);
  const double hi = xdr.power_fraction(run(400.0, 8, video::H264Level::k52).total_power_mw);
  EXPECT_GT(lo, 0.02);
  EXPECT_LT(lo, 0.08);
  EXPECT_GT(hi, 0.15);
  EXPECT_LT(hi, 0.35);
}

}  // namespace
}  // namespace mcm::core
