// The channel-sharded engine is the default kStateMachine path; the
// historical sequential feed loop is kept behind FrameSimOptions::legacy_feed
// as the executable specification. Both must produce byte-identical exported
// run reports across schedulers, page policies, channel counts, and seeds —
// this is the contract that makes the sharded engine a pure performance
// change.
#include <gtest/gtest.h>

#include <string>

#include "core/experiments.hpp"
#include "core/frame_simulator.hpp"
#include "core/result_export.hpp"
#include "obs/json.hpp"

namespace mcm::core {
namespace {

struct Combo {
  const char* tag;
  ctrl::SchedulerPolicy scheduler;
  ctrl::PagePolicy page_policy;
  std::uint32_t channels;
  std::uint64_t seed;
};

std::string run_exported(const Combo& combo, bool legacy_feed) {
  ExperimentConfig cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = combo.channels;
  cfg.base.controller.scheduler = combo.scheduler;
  cfg.base.controller.page_policy = combo.page_policy;
  cfg.usecase.level = video::H264Level::k31;
  cfg.sim.load.seed = combo.seed;
  cfg.sim.legacy_feed = legacy_feed;
  cfg.sim.sim_threads = 1;

  const FrameSimResult result = FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
  obs::JsonValue root = obs::JsonValue::object();
  export_config(root["config"], cfg.base, cfg.usecase);
  export_result(root["point"], result);
  return root.dump_string();
}

class ShardedEquivalence : public ::testing::TestWithParam<Combo> {};

TEST_P(ShardedEquivalence, ReportBytesMatchLegacyFeed) {
  const Combo& combo = GetParam();
  const std::string sharded = run_exported(combo, /*legacy_feed=*/false);
  const std::string legacy = run_exported(combo, /*legacy_feed=*/true);
  EXPECT_EQ(sharded, legacy) << combo.tag;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ShardedEquivalence,
    ::testing::Values(
        Combo{"frfcfs_open_4ch", ctrl::SchedulerPolicy::kFrFcfs,
              ctrl::PagePolicy::kOpen, 4, 1},
        Combo{"fcfs_open_4ch", ctrl::SchedulerPolicy::kFcfs,
              ctrl::PagePolicy::kOpen, 4, 1},
        Combo{"frfcfs_closed_2ch", ctrl::SchedulerPolicy::kFrFcfs,
              ctrl::PagePolicy::kClosed, 2, 1},
        Combo{"frfcfs_timeout_8ch", ctrl::SchedulerPolicy::kFrFcfs,
              ctrl::PagePolicy::kTimeout, 8, 1},
        Combo{"fcfs_closed_1ch", ctrl::SchedulerPolicy::kFcfs,
              ctrl::PagePolicy::kClosed, 1, 1},
        Combo{"frfcfs_open_8ch_seed7", ctrl::SchedulerPolicy::kFrFcfs,
              ctrl::PagePolicy::kOpen, 8, 7}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return info.param.tag;
    });

}  // namespace
}  // namespace mcm::core
