#include "core/frame_simulator.hpp"

#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace mcm::core {
namespace {

multichannel::SystemConfig system_for(std::uint32_t channels, double freq = 400.0) {
  auto cfg = ExperimentConfig::paper_defaults();
  cfg.base.channels = channels;
  cfg.base.freq = Frequency{freq};
  return cfg.base;
}

video::UseCaseParams usecase_for(video::H264Level level) {
  video::UseCaseParams p;
  p.level = level;
  return p;
}

TEST(FrameSimulator, Serves720pFrameWithinPeriodOnTwoChannels) {
  const FrameSimulator sim;
  const auto r = sim.run(system_for(2), usecase_for(video::H264Level::k31));
  EXPECT_GT(r.access_time, Time::zero());
  EXPECT_LT(r.access_time, r.frame_period);
  EXPECT_TRUE(r.meets_realtime);
  EXPECT_NEAR(r.frame_period.ms(), 33.33, 0.01);
}

TEST(FrameSimulator, TrafficVolumeMatchesTableI) {
  const FrameSimulator sim;
  const auto r = sim.run(system_for(2), usecase_for(video::H264Level::k31));
  const video::UseCaseModel model(usecase_for(video::H264Level::k31));
  EXPECT_NEAR(static_cast<double>(r.bytes_per_frame), model.total_bytes_per_frame(),
              model.total_bytes_per_frame() * 0.001);
  // Controller-side byte accounting agrees with the submitted volume.
  EXPECT_EQ(r.stats.bytes, r.bytes_per_frame);
}

TEST(FrameSimulator, StageResultsCoverAllStagesInOrder) {
  const FrameSimulator sim;
  const auto r = sim.run(system_for(2), usecase_for(video::H264Level::k31));
  ASSERT_EQ(r.stage_results.size(), 11u);
  Time prev = Time::zero();
  for (const auto& s : r.stage_results) {
    EXPECT_GE(s.completed, prev);  // stages complete in dependency order
    prev = s.completed;
  }
  EXPECT_EQ(r.stage_results.front().name, "Camera I/F");
}

TEST(FrameSimulator, PowerReportPopulated) {
  const FrameSimulator sim;
  const auto r = sim.run(system_for(2), usecase_for(video::H264Level::k31));
  EXPECT_GT(r.total_power_mw, 0.0);
  EXPECT_GT(r.dram_power_mw, 0.0);
  EXPECT_NEAR(r.interface_power_mw, 2 * 4.147, 0.1);
  EXPECT_NEAR(r.total_power_mw, r.dram_power_mw + r.interface_power_mw, 1e-9);
  // Energy breakdown is internally consistent.
  const auto& b = r.power.dram;
  EXPECT_GT(b.read_pj, 0.0);
  EXPECT_GT(b.write_pj, 0.0);
  EXPECT_GT(b.refresh_pj, 0.0);
  EXPECT_GT(b.powerdown_pj, 0.0);  // idle tail
}

TEST(FrameSimulator, HighRowHitRateForStreamingLoad) {
  const FrameSimulator sim;
  const auto r = sim.run(system_for(2), usecase_for(video::H264Level::k31));
  EXPECT_GT(r.stats.row_hit_rate(), 0.90);
}

TEST(FrameSimulator, MarginTightensRealtimeVerdict) {
  // A configuration that barely meets 33 ms must fail once the 15 %
  // processing margin applies. 1 channel at 333 MHz is the paper's
  // "marginal" point; at minimum the flags must be ordered.
  const FrameSimulator sim;
  const auto r = sim.run(system_for(1, 333.0), usecase_for(video::H264Level::k31));
  EXPECT_LE(r.meets_realtime_with_margin, r.meets_realtime);
}

TEST(FrameSimulator, MultiFrameRunKeepsPerFrameAccessTime) {
  FrameSimOptions opt;
  opt.frames = 3;
  const FrameSimulator sim3(opt);
  const FrameSimulator sim1;
  const auto r3 = sim3.run(system_for(2), usecase_for(video::H264Level::k31));
  const auto r1 = sim1.run(system_for(2), usecase_for(video::H264Level::k31));
  EXPECT_NEAR(static_cast<double>(r3.access_time.ps()),
              static_cast<double>(r1.access_time.ps()),
              static_cast<double>(r1.access_time.ps()) * 0.05);
  EXPECT_GE(r3.window, r3.frame_period * 3);
}

TEST(FrameSimulator, AchievedBandwidthBelowPeakAboveDemandShare) {
  const FrameSimulator sim;
  const auto cfg = system_for(2);
  const auto r = sim.run(cfg, usecase_for(video::H264Level::k31));
  const multichannel::MemorySystem sys(cfg);
  EXPECT_LT(r.achieved_bandwidth_bytes_per_s, sys.peak_bandwidth_bytes_per_s());
  EXPECT_GT(r.achieved_bandwidth_bytes_per_s,
            0.5 * sys.peak_bandwidth_bytes_per_s());
}

TEST(FrameSimulator, GopStructureLightensIntraFrames) {
  FrameSimOptions all_p;
  all_p.frames = 4;
  FrameSimOptions gop;
  gop.frames = 4;
  gop.gop_length = 2;  // frames 0 and 2 are I frames
  const auto rp = FrameSimulator(all_p).run(system_for(2),
                                            usecase_for(video::H264Level::k31));
  const auto ri = FrameSimulator(gop).run(system_for(2),
                                          usecase_for(video::H264Level::k31));
  // I frames drop the 6 x refs reference traffic: mean access time falls.
  EXPECT_LT(ri.access_time.seconds(), rp.access_time.seconds() * 0.85);
  // Frame 0 (intra) carries no reference traffic: fewer bytes than a P frame.
  EXPECT_LT(ri.bytes_per_frame, rp.bytes_per_frame);
}

TEST(FrameSimulator, GopLengthOneEqualsDefault) {
  FrameSimOptions one;
  one.gop_length = 1;
  const auto a = FrameSimulator(one).run(system_for(2),
                                         usecase_for(video::H264Level::k31));
  const auto b = FrameSimulator().run(system_for(2),
                                      usecase_for(video::H264Level::k31));
  EXPECT_EQ(a.access_time, b.access_time);
  EXPECT_EQ(a.bytes_per_frame, b.bytes_per_frame);
}

TEST(FrameSimulator, MotionWindowLoadRunsAndCostsMoreRowMisses) {
  FrameSimOptions seq;
  FrameSimOptions win;
  win.load.motion_window_encoder = true;
  const auto rs = FrameSimulator(seq).run(system_for(2),
                                          usecase_for(video::H264Level::k31));
  const auto rw = FrameSimulator(win).run(system_for(2),
                                          usecase_for(video::H264Level::k31));
  EXPECT_GT(rw.stats.row_misses + rw.stats.row_conflicts,
            rs.stats.row_misses + rs.stats.row_conflicts);
}

}  // namespace
}  // namespace mcm::core
