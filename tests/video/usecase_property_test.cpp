// Property sweep over the use-case model's parameter space: structural
// invariants must hold for every (level, zoom, reference policy) cell.
#include <gtest/gtest.h>

#include "video/usecase.hpp"

namespace mcm::video {
namespace {

struct Params {
  H264Level level;
  double zoom;
  RefFramePolicy policy;
};

class UseCaseProperty : public ::testing::TestWithParam<Params> {};

TEST_P(UseCaseProperty, StructuralInvariants) {
  const auto [level, zoom, policy] = GetParam();
  UseCaseParams p;
  p.level = level;
  p.digizoom = zoom;
  p.ref_policy = policy;
  const UseCaseModel m(p);

  // Per-stage volumes are non-negative and finite.
  double sum = 0;
  for (const auto& s : m.stages()) {
    EXPECT_GE(s.read_bits, 0.0) << s.name;
    EXPECT_GE(s.write_bits, 0.0) << s.name;
    EXPECT_TRUE(std::isfinite(s.total_bits())) << s.name;
    sum += s.total_bits();
  }
  EXPECT_DOUBLE_EQ(sum, m.total_bits_per_frame());
  EXPECT_DOUBLE_EQ(m.total_bits_per_frame(), m.image_processing_bits_per_frame() +
                                                 m.video_coding_bits_per_frame());

  // Sanity bounds: at least the raw sensor write, at most a silly multiple.
  const double n = static_cast<double>(m.level().resolution.pixels());
  EXPECT_GT(m.total_bits_per_frame(), 16.0 * n);
  EXPECT_LT(m.total_bits_per_frame(), 2000.0 * n);

  // Frame period consistent with the level's rate.
  EXPECT_NEAR(m.frame_period().seconds() * m.level().fps, 1.0, 1e-9);
}

TEST_P(UseCaseProperty, ZoomMonotonicity) {
  const auto [level, zoom, policy] = GetParam();
  if (zoom >= 3.0) return;
  UseCaseParams lo;
  lo.level = level;
  lo.digizoom = zoom;
  lo.ref_policy = policy;
  UseCaseParams hi = lo;
  hi.digizoom = zoom + 0.5;
  EXPECT_GE(UseCaseModel(lo).total_bits_per_frame(),
            UseCaseModel(hi).total_bits_per_frame());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UseCaseProperty,
    ::testing::Values(Params{H264Level::k31, 1.0, RefFramePolicy::kCalibrated},
                      Params{H264Level::k31, 2.0, RefFramePolicy::kDpbDerived},
                      Params{H264Level::k32, 1.0, RefFramePolicy::kCalibrated},
                      Params{H264Level::k32, 1.5, RefFramePolicy::kDpbDerived},
                      Params{H264Level::k40, 1.0, RefFramePolicy::kCalibrated},
                      Params{H264Level::k40, 3.0, RefFramePolicy::kDpbDerived},
                      Params{H264Level::k42, 1.0, RefFramePolicy::kCalibrated},
                      Params{H264Level::k42, 2.5, RefFramePolicy::kCalibrated},
                      Params{H264Level::k52, 1.0, RefFramePolicy::kDpbDerived},
                      Params{H264Level::k52, 2.0, RefFramePolicy::kCalibrated}));

}  // namespace
}  // namespace mcm::video
