#include "video/playback.hpp"

#include <gtest/gtest.h>

#include "core/source_runner.hpp"
#include "load/playback_sources.hpp"
#include "video/usecase.hpp"

namespace mcm::video {
namespace {

PlaybackModel model_for(H264Level level) {
  PlaybackParams p;
  p.level = level;
  return PlaybackModel(p);
}

TEST(Playback, SevenStages) {
  const auto m = model_for(H264Level::k40);
  EXPECT_EQ(m.stages().size(), 7u);
}

TEST(Playback, OrderOfMagnitudeBelowRecording) {
  for (const auto level : kAllLevels) {
    UseCaseParams rp;
    rp.level = level;
    const UseCaseModel record(rp);
    const auto playback = model_for(level);
    const double ratio =
        record.total_mb_per_second() / playback.total_mb_per_second();
    EXPECT_GT(ratio, 5.0) << level_spec(level).name;
    EXPECT_LT(ratio, 20.0) << level_spec(level).name;
  }
}

TEST(Playback, DecoderDominates) {
  const auto m = model_for(H264Level::k40);
  double decoder = 0, largest_other = 0;
  for (const auto& s : m.stages()) {
    if (s.id == PlaybackStageId::kVideoDecoder) {
      decoder = s.total_bits();
    } else {
      largest_other = std::max(largest_other, s.total_bits());
    }
  }
  EXPECT_GT(decoder, largest_other);
}

TEST(Playback, McFactorScalesDecoderReads) {
  PlaybackParams lo;
  lo.level = H264Level::k40;
  lo.mc_read_factor = 1.0;
  PlaybackParams hi = lo;
  hi.mc_read_factor = 2.0;
  EXPECT_GT(PlaybackModel(hi).total_bits_per_frame(),
            PlaybackModel(lo).total_bits_per_frame());
}

TEST(Playback, SourcesMatchModelVolumes) {
  const auto m = model_for(H264Level::k31);
  const auto sources = load::build_playback_sources(m);
  ASSERT_EQ(sources.size(), m.stages().size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const double want = m.stages()[i].total_bits() / 8.0;
    EXPECT_NEAR(static_cast<double>(sources[i]->total_bytes()), want, 96.0)
        << m.stages()[i].name;
  }
}

TEST(Playback, SingleChannelServes1080pPlayback) {
  auto cfg = multichannel::SystemConfig{};
  cfg.channels = 1;
  cfg.controller.queue_depth = 8;
  const auto m = model_for(H264Level::k40);
  const auto r = core::run_stage_sources(cfg, load::build_playback_sources(m),
                                         m.frame_period());
  EXPECT_LT(r.access_time, m.frame_period());
  EXPECT_GT(r.total_power_mw, 0.0);
  // Volume served matches the model.
  EXPECT_NEAR(static_cast<double>(r.bytes), m.total_bits_per_frame() / 8.0,
              m.total_bits_per_frame() / 8.0 * 0.01);
}

TEST(Playback, UhdPlaybackStillNearOneChannel) {
  const auto m = model_for(H264Level::k52);
  // 2160p30 playback demand sits below two channels' peak.
  EXPECT_LT(m.total_mb_per_second() * 1e6, 2 * 3.2e9);
}

}  // namespace
}  // namespace mcm::video
