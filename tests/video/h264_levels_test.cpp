#include "video/h264_levels.hpp"

#include <gtest/gtest.h>

namespace mcm::video {
namespace {

TEST(H264Levels, FiveHdLevels) {
  EXPECT_EQ(kAllLevels.size(), 5u);
  EXPECT_EQ(level_spec(H264Level::k31).resolution, k720p);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k31).fps, 30.0);
  EXPECT_EQ(level_spec(H264Level::k32).resolution, k720p);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k32).fps, 60.0);
  EXPECT_EQ(level_spec(H264Level::k40).resolution, k1080p);
  EXPECT_EQ(level_spec(H264Level::k42).resolution, k1080p);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k42).fps, 60.0);
  EXPECT_EQ(level_spec(H264Level::k52).resolution, k2160p);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k52).fps, 30.0);
}

TEST(H264Levels, MaxBitrates) {
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k31).max_bitrate_mbps, 14.0);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k32).max_bitrate_mbps, 20.0);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k40).max_bitrate_mbps, 20.0);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k42).max_bitrate_mbps, 50.0);
  EXPECT_DOUBLE_EQ(level_spec(H264Level::k52).max_bitrate_mbps, 240.0);
}

TEST(H264Levels, FrameMacroblocks) {
  EXPECT_EQ(frame_macroblocks(k720p), 3600u);
  EXPECT_EQ(frame_macroblocks(k1080p), 8160u);
  EXPECT_EQ(frame_macroblocks(k2160p), 32400u);
}

TEST(H264Levels, DpbDerivedReferenceFrames) {
  EXPECT_EQ(dpb_reference_frames(H264Level::k31), 5u);   // 18000 / 3600
  EXPECT_EQ(dpb_reference_frames(H264Level::k32), 5u);   // 20480 / 3600
  EXPECT_EQ(dpb_reference_frames(H264Level::k40), 4u);   // 32768 / 8160
  EXPECT_EQ(dpb_reference_frames(H264Level::k42), 4u);
  EXPECT_EQ(dpb_reference_frames(H264Level::k52), 5u);   // 184320 / 32400
}

TEST(H264Levels, FullTableOrderedAndConsistent) {
  const auto& limits = all_level_limits();
  ASSERT_EQ(limits.size(), 17u);
  for (std::size_t i = 1; i < limits.size(); ++i) {
    EXPECT_GE(limits[i].max_mbps, limits[i - 1].max_mbps);
    EXPECT_GE(limits[i].max_fs, limits[i - 1].max_fs);
    EXPECT_GE(limits[i].max_bitrate_mbps, limits[i - 1].max_bitrate_mbps);
  }
  // The five Table I columns agree with the compact spec table.
  for (const auto level : kAllLevels) {
    const auto& s = level_spec(level);
    for (const auto& l : all_level_limits()) {
      if (l.name == s.name) {
        EXPECT_DOUBLE_EQ(l.max_bitrate_mbps, s.max_bitrate_mbps);
        EXPECT_EQ(l.max_dpb_mbs, s.max_dpb_mbs);
      }
    }
  }
}

TEST(H264Levels, SuggestLevelForCommonModes) {
  EXPECT_EQ(suggest_level(Resolution{176, 144}, 15.0)->name, "1");
  EXPECT_EQ(suggest_level(Resolution{352, 288}, 30.0)->name, "1.3");
  EXPECT_EQ(suggest_level(k720p, 30.0)->name, "3.1");
  EXPECT_EQ(suggest_level(k720p, 60.0)->name, "3.2");
  EXPECT_EQ(suggest_level(k1080p, 30.0)->name, "4");
  EXPECT_EQ(suggest_level(k1080p, 60.0)->name, "4.2");
  EXPECT_EQ(suggest_level(k2160p, 30.0)->name, "5.1");
  EXPECT_EQ(suggest_level(k2160p, 60.0)->name, "5.2");
  EXPECT_EQ(suggest_level(Resolution{7680, 4320}, 30.0), nullptr);  // 8K
}

TEST(H264Levels, CalibratedPolicyUsesFourEverywhere) {
  for (const H264Level level : kAllLevels) {
    EXPECT_EQ(reference_frames(level, RefFramePolicy::kCalibrated), 4u);
    EXPECT_EQ(reference_frames(level, RefFramePolicy::kDpbDerived),
              dpb_reference_frames(level));
  }
}

}  // namespace
}  // namespace mcm::video
