// Table I reconstruction tests: the totals must match every number the
// paper's prose states (Section I, II, IV anchors).
#include "video/usecase.hpp"

#include <gtest/gtest.h>

namespace mcm::video {
namespace {

UseCaseModel model_for(H264Level level) {
  UseCaseParams p;
  p.level = level;
  return UseCaseModel(p);
}

TEST(UseCase, Has11Stages) {
  const auto m = model_for(H264Level::k31);
  EXPECT_EQ(m.stages().size(), 11u);
  EXPECT_EQ(m.ref_frames(), 4u);
}

TEST(UseCase, Anchor720p30Is1_9GBps) {
  // Paper Section I: "the bandwidth requirement for the whole video
  // recording chain (720p) can be diminished down to 1.9 GB/s".
  const auto m = model_for(H264Level::k31);
  EXPECT_NEAR(m.total_mb_per_second() / 1000.0, 1.9, 0.05);
}

TEST(UseCase, Anchor1080p30Near4_3GBps) {
  // Abstract: "full HDTV (1080p) ... at 30 fps requires 4.3 GB/s".
  // Our reconstruction lands within 4 % (see DESIGN.md Section 4).
  const auto m = model_for(H264Level::k40);
  EXPECT_NEAR(m.total_mb_per_second() / 1000.0, 4.3, 0.18);
}

TEST(UseCase, Anchor1080p60Near8_6GBps) {
  // Section II: "for 1080 HD at 60 fps, the total execution memory bandwidth
  // requirement is estimated to be 8.6 GB/s".
  const auto m = model_for(H264Level::k42);
  EXPECT_NEAR(m.total_mb_per_second() / 1000.0, 8.6, 0.40);
}

TEST(UseCase, Ratio1080pTo720pIs2_2) {
  // Section IV: 1080p30 needs ~2.2x the bandwidth of 720p30.
  const double r = model_for(H264Level::k40).total_mb_per_second() /
                   model_for(H264Level::k31).total_mb_per_second();
  EXPECT_NEAR(r, 2.2, 0.08);
}

TEST(UseCase, SixtyFpsDoublesFrameDependentLoad) {
  // Per-frame volumes at the same resolution are almost equal; per-second
  // load at 60 fps is just under 2x (display/stream terms are constant).
  const auto m30 = model_for(H264Level::k40);
  const auto m60 = model_for(H264Level::k42);
  const double ratio = m60.total_bits_per_second() / m30.total_bits_per_second();
  EXPECT_GT(ratio, 1.85);
  EXPECT_LT(ratio, 2.05);
}

TEST(UseCase, UhdDemandFitsEightChannels) {
  // Section IV: the 8-channel 400 MHz configuration (25.6 GB/s peak) serves
  // 3840x2160@30; demand must sit well below that peak but above 4 channels'.
  const auto m = model_for(H264Level::k52);
  const double gbps = m.total_mb_per_second() / 1000.0;
  EXPECT_GT(gbps, 12.8);
  EXPECT_LT(gbps, 25.6 * 0.85);
}

TEST(UseCase, EncoderIsTheDominantStage) {
  // Section II: "the single most memory intensive part is the video
  // encoding".
  const auto m = model_for(H264Level::k31);
  double encoder = 0, largest_other = 0;
  for (const auto& s : m.stages()) {
    if (s.id == StageId::kVideoEncoder) {
      encoder = s.total_bits();
    } else {
      largest_other = std::max(largest_other, s.total_bits());
    }
  }
  EXPECT_GT(encoder, 2.0 * largest_other);
}

TEST(UseCase, DisplayCtrlConstantAcrossFormats) {
  // Section II: DisplayCtrl has constant memory requirements regardless of
  // original image size (per second).
  const auto bits_per_s = [](H264Level level) {
    const auto m = model_for(level);
    for (const auto& s : m.stages()) {
      if (s.id == StageId::kDisplayCtrl) return s.total_bits() * m.level().fps;
    }
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(bits_per_s(H264Level::k31), bits_per_s(H264Level::k40));
  EXPECT_DOUBLE_EQ(bits_per_s(H264Level::k31), bits_per_s(H264Level::k52));
  // 800x480 x 24 bit x 60 Hz = 553 Mb/s.
  EXPECT_NEAR(bits_per_s(H264Level::k31) / 1e6, 553.0, 1.0);
}

TEST(UseCase, ImageProcessingPlusCodingEqualsTotal) {
  for (const H264Level level : kAllLevels) {
    const auto m = model_for(level);
    EXPECT_DOUBLE_EQ(
        m.total_bits_per_frame(),
        m.image_processing_bits_per_frame() + m.video_coding_bits_per_frame());
  }
}

TEST(UseCase, DigizoomReducesDownstreamLoad) {
  UseCaseParams z1;
  z1.level = H264Level::k31;
  UseCaseParams z2 = z1;
  z2.digizoom = 2.0;
  EXPECT_LT(UseCaseModel(z2).total_bits_per_frame(),
            UseCaseModel(z1).total_bits_per_frame());
  EXPECT_THROW(UseCaseModel([] {
                 UseCaseParams bad;
                 bad.digizoom = 0.5;
                 return bad;
               }()),
               std::invalid_argument);
}

TEST(UseCase, DpbPolicyIncreasesEncoderTraffic) {
  UseCaseParams cal;
  cal.level = H264Level::k31;
  UseCaseParams dpb = cal;
  dpb.ref_policy = RefFramePolicy::kDpbDerived;  // 5 refs at 720p
  EXPECT_GT(UseCaseModel(dpb).total_bits_per_frame(),
            UseCaseModel(cal).total_bits_per_frame());
}

TEST(UseCase, StabilizationBorderScalesEarlyStages) {
  UseCaseParams border;
  border.level = H264Level::k31;
  UseCaseParams none = border;
  none.stabilization_border = 0.0;
  const auto mb = UseCaseModel(border);
  const auto mn = UseCaseModel(none);
  // Camera I/F carries the 1.44x factor.
  EXPECT_NEAR(mb.stages()[0].write_bits / mn.stages()[0].write_bits, 1.44, 1e-9);
}

TEST(UseCase, FramePeriodFromLevel) {
  EXPECT_NEAR(model_for(H264Level::k31).frame_period().ms(), 33.333, 0.01);
  EXPECT_NEAR(model_for(H264Level::k42).frame_period().ms(), 16.667, 0.01);
}

}  // namespace
}  // namespace mcm::video
