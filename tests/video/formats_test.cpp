#include "video/formats.hpp"

#include <gtest/gtest.h>

namespace mcm::video {
namespace {

TEST(Formats, BitsPerPixelMatchPaper) {
  EXPECT_EQ(bits_per_pixel(PixelFormat::kBayer), 16);
  EXPECT_EQ(bits_per_pixel(PixelFormat::kYuv422), 16);
  EXPECT_EQ(bits_per_pixel(PixelFormat::kYuv420), 12);
  EXPECT_EQ(bits_per_pixel(PixelFormat::kRgb888), 24);
}

TEST(Formats, PaperResolutions) {
  EXPECT_EQ(k720p.pixels(), 921'600u);
  EXPECT_EQ(k1080p.pixels(), 2'088'960u);  // 1920 x 1088
  EXPECT_EQ(k2160p.pixels(), 8'294'400u);
  EXPECT_EQ(kWvga.pixels(), 384'000u);
}

TEST(Formats, FrameBytes) {
  EXPECT_EQ(frame_bytes(k720p, PixelFormat::kYuv422), 1'843'200u);
  EXPECT_EQ(frame_bytes(k720p, PixelFormat::kYuv420), 1'382'400u);
  EXPECT_EQ(frame_bytes(kWvga, PixelFormat::kRgb888), 1'152'000u);
}

TEST(Formats, FrameBitsExact) {
  EXPECT_DOUBLE_EQ(frame_bits(k720p, PixelFormat::kYuv420), 921'600.0 * 12);
}

TEST(Formats, Names) {
  EXPECT_EQ(to_string(PixelFormat::kBayer), "Bayer");
  EXPECT_EQ(to_string(PixelFormat::kRgb888), "RGB888");
}

}  // namespace
}  // namespace mcm::video
