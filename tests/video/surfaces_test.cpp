#include "video/surfaces.hpp"

#include <gtest/gtest.h>

namespace mcm::video {
namespace {

UseCaseModel model_for(H264Level level) {
  UseCaseParams p;
  p.level = level;
  return UseCaseModel(p);
}

TEST(Surfaces, AllSurfacesPresentAndAligned) {
  const auto m = model_for(H264Level::k31);
  const SurfaceLayout layout(m, 64 * 1024);
  EXPECT_EQ(layout.all().size(), static_cast<std::size_t>(kSurfaceCount));
  for (const auto& s : layout.all()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.bytes, 0u);
    EXPECT_EQ(s.base % (64 * 1024), 0u);
  }
}

TEST(Surfaces, NoOverlaps) {
  const auto m = model_for(H264Level::k40);
  const SurfaceLayout layout(m);
  const auto& all = layout.all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const bool disjoint =
          all[i].end() <= all[j].base || all[j].end() <= all[i].base;
      EXPECT_TRUE(disjoint) << all[i].name << " overlaps " << all[j].name;
    }
  }
}

TEST(Surfaces, SizesMatchFormats) {
  const auto m = model_for(H264Level::k31);
  const SurfaceLayout layout(m);
  // Sensor frame: 1.44 x 921600 pixels x 2 B.
  EXPECT_NEAR(static_cast<double>(layout.surface(SurfaceId::kBayerCapture).bytes),
              1.44 * 921'600 * 2, 32);
  // Reference area: 4 x 12 bpp frames.
  EXPECT_NEAR(static_cast<double>(layout.surface(SurfaceId::kReferenceArea).bytes),
              4.0 * 921'600 * 1.5, 64);
  // Display: two WVGA RGB888 buffers.
  EXPECT_EQ(layout.surface(SurfaceId::kDisplayFb).bytes, 2ull * 800 * 480 * 3);
}

TEST(Surfaces, WorkingSetsFitPaperConfigurations) {
  // 720p fits one 64 MiB channel; 1080p fits four; 2160p fits eight.
  EXPECT_LT(SurfaceLayout(model_for(H264Level::k31)).total_bytes(),
            64ull * 1024 * 1024);
  EXPECT_LT(SurfaceLayout(model_for(H264Level::k40)).total_bytes(),
            4 * 64ull * 1024 * 1024);
  EXPECT_LT(SurfaceLayout(model_for(H264Level::k52)).total_bytes(),
            8 * 64ull * 1024 * 1024);
}

TEST(Surfaces, GrowsWithResolution) {
  EXPECT_LT(SurfaceLayout(model_for(H264Level::k31)).total_bytes(),
            SurfaceLayout(model_for(H264Level::k40)).total_bytes());
  EXPECT_LT(SurfaceLayout(model_for(H264Level::k40)).total_bytes(),
            SurfaceLayout(model_for(H264Level::k52)).total_bytes());
}

TEST(Surfaces, CustomAlignmentHonored) {
  const auto m = model_for(H264Level::k31);
  const SurfaceLayout layout(m, 128);
  for (const auto& s : layout.all()) EXPECT_EQ(s.base % 128, 0u);
}

}  // namespace
}  // namespace mcm::video
