#include "video/encoder_access.hpp"

#include <gtest/gtest.h>

namespace mcm::video {
namespace {

EncoderAccessParams base_params() {
  EncoderAccessParams p;
  p.resolution = k720p;
  p.ref_frames = 4;
  p.input_base = 0;
  p.ref_base = 1ull << 24;
  p.recon_base = 1ull << 27;
  return p;
}

TEST(EncoderAccess, CoversWholeFrame) {
  auto p = base_params();
  EncoderAccessGenerator gen(p);
  EXPECT_EQ(gen.macroblocks_total(), 3600u);
}

TEST(EncoderAccess, MaxMacroblocksBounds) {
  auto p = base_params();
  p.max_macroblocks = 10;
  EncoderAccessGenerator gen(p);
  EXPECT_EQ(gen.macroblocks_total(), 10u);
  std::uint64_t count = 0;
  while (gen.next()) ++count;
  EXPECT_GT(count, 0u);
  EXPECT_EQ(gen.macroblocks_done(), 10u);
}

TEST(EncoderAccess, WindowLoadVolumeMatchesFactorSixModel) {
  // A +/-16 full-search window is 48x48 luma bytes = 2304 B per macroblock
  // per reference - exactly the paper's "6 x N x #refs" at 12 bpp
  // (6 x 12 bit x 256 pel / 8 = 2304 B). Border clamping loses a little.
  auto p = base_params();
  p.max_macroblocks = 0;
  EncoderAccessGenerator gen(p);
  std::uint64_t ref_bytes = 0;
  while (auto a = gen.next()) {
    if (!a->is_write && a->addr >= p.ref_base && a->addr < p.recon_base) {
      ref_bytes += a->bytes;
    }
  }
  const double expected = 6.0 * 12.0 * 921'600.0 * 4 / 8.0;
  EXPECT_LT(static_cast<double>(ref_bytes), expected * 1.001);
  EXPECT_GT(static_cast<double>(ref_bytes), expected * 0.80);  // border losses
}

TEST(EncoderAccess, WritesGoToRecon) {
  auto p = base_params();
  p.max_macroblocks = 50;
  EncoderAccessGenerator gen(p);
  std::uint64_t write_bytes = 0;
  while (auto a = gen.next()) {
    if (a->is_write) {
      EXPECT_GE(a->addr, p.recon_base);
      write_bytes += a->bytes;
    }
  }
  // 16x16 luma + 2 x 64 B chroma = 384 B per MB.
  EXPECT_EQ(write_bytes, 50u * 384u);
}

TEST(EncoderAccess, AllTouchesProducesFarMoreTraffic) {
  auto window = base_params();
  window.max_macroblocks = 30;
  auto all = window;
  all.mode = EncoderAccessMode::kAllTouches;
  all.candidate_step = 4;
  auto volume = [](EncoderAccessParams p) {
    EncoderAccessGenerator gen(p);
    std::uint64_t bytes = 0;
    while (auto a = gen.next()) bytes += a->bytes;
    return bytes;
  };
  // Even subsampled 4:1, candidate touches dwarf the window loads.
  EXPECT_GT(volume(all), 5 * volume(window));
}

TEST(EncoderAccess, DeterministicForSeed) {
  auto p = base_params();
  p.max_macroblocks = 20;
  EncoderAccessGenerator a(p), b(p);
  while (true) {
    const auto x = a.next();
    const auto y = b.next();
    ASSERT_EQ(x.has_value(), y.has_value());
    if (!x) break;
    EXPECT_EQ(x->addr, y->addr);
    EXPECT_EQ(x->bytes, y->bytes);
    EXPECT_EQ(x->is_write, y->is_write);
  }
}

TEST(EncoderAccess, AddressesStayInsidePlanes) {
  auto p = base_params();
  p.max_macroblocks = 200;
  p.ref_frame_bytes = frame_bytes(p.resolution, PixelFormat::kYuv420);
  EncoderAccessGenerator gen(p);
  const std::uint64_t luma = 1280ull * 720;
  while (auto a = gen.next()) {
    if (!a->is_write && a->addr >= p.ref_base) {
      // Window reads stay within one reference frame's luma plane.
      const std::uint64_t off = (a->addr - p.ref_base) % p.ref_frame_bytes;
      EXPECT_LT(off + a->bytes, luma + 1);
    }
  }
}

}  // namespace
}  // namespace mcm::video
