#include "cache/cache_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "video/encoder_access.hpp"

namespace mcm::cache {
namespace {

TEST(Cache, ColdMissThenHit) {
  CacheModel c(CacheConfig{1024, 2, 64, true});
  const CacheEffect miss = c.access_line(0, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.fill_addr.has_value());
  const CacheEffect hit = c.access_line(32, false);  // same line
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  // 2-way, 2 sets of 64 B lines: lines 0, 2, 4 map to set 0.
  CacheModel c(CacheConfig{256, 2, 64, true});
  (void)c.access_line(0 * 64, false);
  (void)c.access_line(2 * 64, false);
  (void)c.access_line(0 * 64, false);      // touch 0: line 2 is now LRU
  (void)c.access_line(4 * 64, false);      // evicts line 2
  EXPECT_TRUE(c.access_line(0 * 64, false).hit);
  EXPECT_FALSE(c.access_line(2 * 64, false).hit);
}

TEST(Cache, DirtyEvictionProducesWriteback) {
  CacheModel c(CacheConfig{256, 2, 64, true});
  (void)c.access_line(0 * 64, true);   // dirty in set 0
  (void)c.access_line(2 * 64, false);
  (void)c.access_line(4 * 64, false);  // evicts dirty line 0
  EXPECT_EQ(c.stats().writebacks, 1u);
  const CacheEffect e = c.access_line(6 * 64, false);  // evicts clean line 2
  EXPECT_FALSE(e.writeback_addr.has_value());
}

TEST(Cache, WritebackAddressReconstruction) {
  CacheModel c(CacheConfig{256, 1, 64, true});  // direct mapped, 4 sets
  (void)c.access_line(0x100, true);             // set (0x100/64)%4 = 0
  const CacheEffect e = c.access_line(0x100 + 4 * 64, false);
  ASSERT_TRUE(e.writeback_addr.has_value());
  EXPECT_EQ(*e.writeback_addr, 0x100u);
}

TEST(Cache, MultiLineAccessTouchesEachLine) {
  CacheModel c(CacheConfig{4096, 4, 64, true});
  c.access(60, 100, false);  // spans lines 0 and 1 and 2? 60..159 -> 3 lines
  EXPECT_EQ(c.stats().accesses, 3u);
}

TEST(Cache, SequentialStreamMissesOncePerLine) {
  CacheModel c(CacheConfig{64 * 1024, 8, 64, true});
  for (std::uint64_t a = 0; a < 32 * 1024; a += 16) c.access(a, 16, false);
  EXPECT_EQ(c.stats().misses, 32u * 1024 / 64);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.75);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(CacheModel(CacheConfig{1000, 3, 64, true}), std::invalid_argument);
  EXPECT_THROW(CacheModel(CacheConfig{1024, 2, 48, true}), std::invalid_argument);
  EXPECT_THROW(CacheModel(CacheConfig{0, 1, 64, true}), std::invalid_argument);
}

TEST(Cache, FiltersEncoderSearchTraffic) {
  // The paper's premise: a reasonable cache absorbs the encoder's raw
  // full-search traffic; post-cache traffic is a small fraction.
  video::EncoderAccessParams p;
  p.resolution = video::k720p;
  p.ref_frames = 4;
  p.mode = video::EncoderAccessMode::kAllTouches;
  p.candidate_step = 4;
  p.input_base = 0;
  p.ref_base = 1ull << 24;
  p.recon_base = 1ull << 27;
  p.max_macroblocks = 200;
  video::EncoderAccessGenerator gen(p);
  CacheModel cache(CacheConfig{512 * 1024, 8, 64, true});
  std::uint64_t raw = 0;
  while (auto a = gen.next()) {
    cache.access(a->addr, a->bytes, a->is_write);
    raw += a->bytes;
  }
  const double reduction =
      static_cast<double>(raw) / static_cast<double>(cache.miss_traffic_bytes());
  EXPECT_GT(reduction, 10.0);
}

}  // namespace
}  // namespace mcm::cache
