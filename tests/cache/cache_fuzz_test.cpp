// Property/fuzz tests: the cache model against a straightforward reference
// implementation (map + LRU list), over random access streams and random
// geometries.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cache/cache_model.hpp"
#include "common/rng.hpp"

namespace mcm::cache {
namespace {

/// Obvious-but-slow reference: per-set std::list LRU.
class ReferenceCache {
 public:
  ReferenceCache(const CacheConfig& cfg)
      : cfg_(cfg), sets_(cfg.size_bytes / cfg.line_bytes / cfg.ways) {}

  struct Result {
    bool hit;
    bool writeback;
  };

  Result access(std::uint64_t addr, bool is_write) {
    const std::uint64_t line = addr / cfg_.line_bytes;
    const std::uint64_t set = line % sets_;
    auto& lru = sets_lru_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->line == line) {
        Entry e = *it;
        e.dirty = e.dirty || is_write;
        lru.erase(it);
        lru.push_front(e);
        return {true, false};
      }
    }
    bool writeback = false;
    if (lru.size() == cfg_.ways) {
      writeback = lru.back().dirty;
      lru.pop_back();
    }
    lru.push_front(Entry{line, is_write});
    return {false, writeback};
  }

 private:
  struct Entry {
    std::uint64_t line;
    bool dirty;
  };
  CacheConfig cfg_;
  std::uint64_t sets_;
  std::map<std::uint64_t, std::list<Entry>> sets_lru_;
};

struct Geometry {
  std::uint64_t size;
  std::uint32_t ways;
  std::uint32_t line;
};

class CacheFuzz : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheFuzz, MatchesReferenceModel) {
  const auto [size, ways, line] = GetParam();
  const CacheConfig cfg{size, ways, line, true};
  CacheModel dut(cfg);
  ReferenceCache ref(cfg);
  Rng rng(size ^ ways ^ line);

  std::uint64_t ref_hits = 0, ref_wbs = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    // Mix of streaming, strided, and random accesses over a small footprint
    // (4x the cache) to exercise evictions hard.
    std::uint64_t addr;
    switch (rng.next_below(3)) {
      case 0: addr = (static_cast<std::uint64_t>(i) * 16) % (4 * size); break;
      case 1: addr = (rng.next_below(64) * 4096) % (4 * size); break;
      default: addr = rng.next_below(4 * size); break;
    }
    const bool is_write = rng.next_below(4) == 0;
    const CacheEffect e = dut.access_line(addr, is_write);
    const auto r = ref.access(addr, is_write);
    ASSERT_EQ(e.hit, r.hit) << "access " << i;
    ASSERT_EQ(e.writeback_addr.has_value(), r.writeback) << "access " << i;
    ref_hits += r.hit ? 1 : 0;
    ref_wbs += r.writeback ? 1 : 0;
  }
  EXPECT_EQ(dut.stats().hits, ref_hits);
  EXPECT_EQ(dut.stats().writebacks, ref_wbs);
  EXPECT_EQ(dut.stats().accesses, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheFuzz,
    ::testing::Values(Geometry{4096, 1, 64},      // direct mapped
                      Geometry{8192, 2, 32},      // small 2-way
                      Geometry{64 * 1024, 8, 64},  // typical L1
                      Geometry{512 * 1024, 16, 64},
                      Geometry{16384, 4, 128}));

}  // namespace
}  // namespace mcm::cache
