// Channel-level behavior: the interconnect's round-trip latency on
// completions, front-end request pacing, and the paper's 16-byte channel
// interleave splitting a master transaction across channels.
#include "channel/channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "multichannel/interleaver.hpp"

namespace mcm::channel {
namespace {

Channel make_channel(InterconnectSpec interconnect = {}) {
  return Channel(dram::DeviceSpec::next_gen_mobile_ddr(), Frequency{400.0},
                 ctrl::AddressMux::kRBC, ctrl::ControllerConfig{}, interconnect);
}

TEST(Channel, InterconnectLatencyAddsRoundTripToCompletion) {
  InterconnectSpec fast;
  fast.latency = Time::zero();
  Channel a = make_channel(fast);

  InterconnectSpec slow;
  slow.latency = Time::from_ns(3.0);
  Channel b = make_channel(slow);

  const ctrl::Request r{0, false, Time::zero(), 0};
  a.enqueue(r);
  b.enqueue(r);
  const Time done_fast = a.process_one().done;
  const Time done_slow = b.process_one().done;
  // Request out + data back: exactly two traversals, throughput untouched.
  EXPECT_EQ(done_slow, done_fast + Time::from_ns(6.0));
}

TEST(Channel, FrontEndPacingSerializesBackToBackArrivals) {
  InterconnectSpec paced;
  paced.request_interval_cycles = 4;  // one handoff per 4 cycles = 10 ns
  Channel ch = make_channel(paced);

  // Both requests arrive at t=0; pacing must push the second one's first
  // command at least an interval later than the first's.
  ch.enqueue(ctrl::Request{0, false, Time::zero(), 0});
  ch.enqueue(ctrl::Request{16, false, Time::zero(), 0});
  const ctrl::Completion first = ch.process_one();
  const ctrl::Completion second = ch.process_one();
  EXPECT_GE(second.done, first.done);
  EXPECT_GE(second.req.arrival, first.req.arrival + Time::from_ns(10.0));
}

TEST(ChannelInterleave, SixteenByteStripesRotateAcrossChannels) {
  // Paper Table II at the minimum practical granularity: consecutive
  // 16-byte stripes land on consecutive channels.
  const multichannel::Interleaver il(4, 16);
  for (std::uint64_t addr = 0; addr < 4 * 16; ++addr) {
    EXPECT_EQ(il.route(addr).channel, (addr / 16) % 4) << "addr " << addr;
  }
  // Stripe boundaries: 15 stays on channel 0, 16 starts channel 1 at local
  // offset 0, and address 64 wraps back to channel 0's second stripe.
  EXPECT_EQ(il.route(15), (multichannel::RoutedAddress{0, 15}));
  EXPECT_EQ(il.route(16), (multichannel::RoutedAddress{1, 0}));
  EXPECT_EQ(il.route(63), (multichannel::RoutedAddress{3, 15}));
  EXPECT_EQ(il.route(64), (multichannel::RoutedAddress{0, 16}));
}

TEST(ChannelInterleave, MasterTransactionSplitsAcrossAllChannels) {
  // A 64-byte master transaction at 16-byte granularity exercises all four
  // channels with 16 bytes each — the paper's motivation for interleaving.
  const multichannel::Interleaver il(4, 16);
  std::set<std::uint32_t> touched;
  for (std::uint64_t addr = 128; addr < 128 + 64; addr += 16) {
    touched.insert(il.route(addr).channel);
  }
  EXPECT_EQ(touched.size(), 4u);
}

TEST(ChannelInterleave, RouteIsInvertibleAtEveryBoundary) {
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t gran : {16u, 64u}) {
      const multichannel::Interleaver il(channels, gran);
      for (std::uint64_t addr = 0; addr < 4096; ++addr) {
        EXPECT_EQ(il.to_global(il.route(addr)), addr)
            << channels << " channels, granularity " << gran;
      }
    }
  }
}

}  // namespace
}  // namespace mcm::channel
