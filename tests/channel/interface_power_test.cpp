#include "channel/interface_power.hpp"

#include <gtest/gtest.h>

namespace mcm::channel {
namespace {

TEST(InterfacePower, MatchesHandComputedEquationOne) {
  // Eq. (1): P = pins * C * V^2 * f * activity
  //        = 36 * 0.4e-12 F * (1.2 V)^2 * 400e6 Hz * 0.5
  //        = 36 * 0.4e-12 * 1.44 * 2.0e8 W = 4.1472 mW.
  const InterfacePowerSpec spec;
  EXPECT_DOUBLE_EQ(spec.power_mw(Frequency{400.0}), 4.1472);
}

TEST(InterfacePower, ApproximatelyFiveMilliwattsPerPaperClaim) {
  // The paper rounds the Eq. (1) result to "approximately 5 mW" per channel.
  const InterfacePowerSpec spec;
  const double mw = spec.power_mw(Frequency{400.0});
  EXPECT_GT(mw, 4.0);
  EXPECT_LT(mw, 5.0);
}

TEST(InterfacePower, ScalesLinearlyWithFrequency) {
  const InterfacePowerSpec spec;
  EXPECT_DOUBLE_EQ(spec.power_mw(Frequency{800.0}),
                   2.0 * spec.power_mw(Frequency{400.0}));
  EXPECT_DOUBLE_EQ(spec.power_mw(Frequency{0.0}), 0.0);
}

TEST(InterfacePower, DefaultCapacitanceIsTheBondingAverage) {
  // 0.4 pF is the average of wire bonding (0.6), flip chip (0.2), and tape
  // automated bonding (0.4).
  EXPECT_DOUBLE_EQ(InterfacePowerSpec::average_bond_capacitance_pf(), 0.4);
  EXPECT_DOUBLE_EQ(InterfacePowerSpec{}.capacitance_pf,
                   InterfacePowerSpec::average_bond_capacitance_pf());
}

TEST(InterfacePower, RespectsCustomPinAndVoltageSettings) {
  InterfacePowerSpec spec;
  spec.pins = 72;  // doubling the pins doubles the power
  EXPECT_DOUBLE_EQ(spec.power_mw(Frequency{400.0}), 2.0 * 4.1472);
  spec.pins = 36;
  spec.vio = 2.4;  // doubling the voltage quadruples it
  EXPECT_DOUBLE_EQ(spec.power_mw(Frequency{400.0}), 4.0 * 4.1472);
}

}  // namespace
}  // namespace mcm::channel
