// In-tree slice of the mcm_fuzz property: randomly generated scenarios must
// produce bit-identical observables from the production simulator and the
// golden reference model, and an injected timing bug in the reference must
// be detected. The standalone tool fuzzes far more cases; this suite keeps
// the property wired into ctest with a fixed, fast seed set.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "verify/differ.hpp"
#include "verify/scenario.hpp"

namespace mcm::verify {
namespace {

TEST(DifferentialFuzz, FortyRandomScenariosAgree) {
  mcm::Rng master(1);
  std::uint64_t requests = 0;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t case_seed = master.next_u64();
    const Scenario s = random_scenario(case_seed);
    requests += s.total_requests();
    const auto mismatch = diff_scenario(s);
    ASSERT_FALSE(mismatch.has_value())
        << "case seed 0x" << std::hex << case_seed << ": " << *mismatch;
  }
  EXPECT_GT(requests, 0u);
}

TEST(DifferentialFuzz, ScenarioGenerationIsDeterministic) {
  const Scenario a = random_scenario(0xabcdef);
  const Scenario b = random_scenario(0xabcdef);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_scenario(0xabcdee));
}

/// Scan seeds until the injected bug produces a divergence; every bug must
/// be caught within a small, fixed seed budget or the harness is blind.
void expect_bug_caught(InjectedBug bug) {
  mcm::Rng master(1);
  for (int i = 0; i < 50; ++i) {
    Scenario s = random_scenario(master.next_u64());
    s.inject = bug;
    if (diff_scenario(s).has_value()) return;
  }
  FAIL() << "injected bug '" << to_string(bug)
         << "' was never detected in 50 cases";
}

TEST(DifferentialFuzz, IgnoredWriteToReadTurnaroundIsCaught) {
  expect_bug_caught(InjectedBug::kIgnoreTwtr);
}

TEST(DifferentialFuzz, IgnoredTrasIsCaught) {
  expect_bug_caught(InjectedBug::kIgnoreTras);
}

TEST(DifferentialFuzz, FreePowerdownExitIsCaught) {
  expect_bug_caught(InjectedBug::kFreePowerdownExit);
}

TEST(DifferentialFuzz, OutcomeJsonExportIsStable) {
  const Scenario s = random_scenario(7);
  const Outcome prod = run_production(s);
  const obs::JsonValue a = outcome_to_json(prod);
  const obs::JsonValue b = outcome_to_json(run_production(s));
  EXPECT_EQ(a.dump_string(), b.dump_string());
}

}  // namespace
}  // namespace mcm::verify
