#include "verify/shrink.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "verify/differ.hpp"
#include "verify/scenario.hpp"

namespace mcm::verify {
namespace {

std::optional<std::string> oracle(const Scenario& s) {
  try {
    return diff_scenario(s);
  } catch (const std::exception&) {
    return std::nullopt;  // unusable shrink candidate, treat as agreement
  }
}

/// First fuzz case (from the shared master seed) that the injected bug
/// makes diverge, together with its mismatch description.
std::pair<Scenario, std::string> first_mismatch(InjectedBug bug) {
  mcm::Rng master(1);
  for (int i = 0; i < 50; ++i) {
    Scenario s = random_scenario(master.next_u64());
    s.inject = bug;
    if (auto m = diff_scenario(s)) return {s, *m};
  }
  ADD_FAILURE() << "no mismatching case for '" << to_string(bug) << "'";
  return {Scenario{}, ""};
}

TEST(Shrink, MinimizesInjectedTwtrBugToTenRequestsOrFewer) {
  const auto [scenario, mismatch] = first_mismatch(InjectedBug::kIgnoreTwtr);
  ASSERT_FALSE(mismatch.empty());
  const ShrinkResult shrunk = shrink_scenario(scenario, mismatch, oracle);
  EXPECT_LE(shrunk.scenario.total_requests(), 10u);
  EXPECT_LE(shrunk.scenario.total_requests(), scenario.total_requests());
  // The minimized repro must still reproduce a divergence.
  const auto replay = oracle(shrunk.scenario);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(*replay, shrunk.mismatch);
}

TEST(Shrink, MinimizedScenarioIsOneMinimal) {
  const auto [scenario, mismatch] = first_mismatch(InjectedBug::kIgnoreTras);
  ASSERT_FALSE(mismatch.empty());
  const ShrinkResult shrunk = shrink_scenario(scenario, mismatch, oracle);
  ASSERT_GE(shrunk.scenario.total_requests(), 1u);
  // Dropping any single remaining request makes the mismatch disappear —
  // the shrinker ran its request pass to a fixpoint.
  for (std::size_t f = 0; f < shrunk.scenario.frames.size(); ++f) {
    const auto& stages = shrunk.scenario.frames[f].stages;
    for (std::size_t st = 0; st < stages.size(); ++st) {
      for (std::size_t r = 0; r < stages[st].reqs.size(); ++r) {
        Scenario candidate = shrunk.scenario;
        auto& reqs = candidate.frames[f].stages[st].reqs;
        reqs.erase(reqs.begin() + static_cast<std::ptrdiff_t>(r));
        EXPECT_FALSE(oracle(candidate).has_value())
            << "frame " << f << " stage " << st << " request " << r
            << " was removable";
      }
    }
  }
}

TEST(Shrink, RespectsTheAttemptBudget) {
  const auto [scenario, mismatch] = first_mismatch(InjectedBug::kIgnoreTwtr);
  ASSERT_FALSE(mismatch.empty());
  const ShrinkResult shrunk = shrink_scenario(scenario, mismatch, oracle, 5);
  EXPECT_LE(shrunk.attempts, 5u);
  // Even with a tiny budget the result must still be a failing scenario.
  EXPECT_TRUE(oracle(shrunk.scenario).has_value());
}

}  // namespace
}  // namespace mcm::verify
