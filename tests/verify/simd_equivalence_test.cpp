// Certification that the SIMD arbitration kernels and the frame arenas are
// invisible in the results: every export must be byte-identical across
// MCM_SIMD in {on, off} x MCM_SIM_THREADS-style worker counts {1, 4}, and
// across MCM_ARENA in {on, off}. The dispatch is sampled at controller
// construction, so flipping the environment between runs exercises the real
// runtime paths (the AVX2 kernel engages at queue depth >= kAvx2MinSlots;
// deep-queue cases below and ~1/6 of the fuzz scenarios reach it).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "controller/memory_controller.hpp"
#include "controller/soa_kernels.hpp"
#include "core/experiments.hpp"
#include "core/frame_simulator.hpp"
#include "dram/spec.hpp"
#include "verify/differ.hpp"
#include "verify/scenario.hpp"
#include "video/h264_levels.hpp"

namespace mcm::verify {
namespace {

/// Scoped environment override (test-only; single-threaded test binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(SimdEquivalence, DispatchHonorsEnvironment) {
  {
    ScopedEnv off("MCM_SIMD", "off");
    EXPECT_EQ(ctrl::kernels::active_level(), ctrl::kernels::SimdLevel::kScalar);
  }
  {
    ScopedEnv scalar("MCM_SIMD", "scalar");
    EXPECT_EQ(ctrl::kernels::active_level(), ctrl::kernels::SimdLevel::kScalar);
  }
  // Default / "on": whatever the CPU supports; must be a valid level either
  // way and stable across calls.
  ScopedEnv on("MCM_SIMD", nullptr);
  EXPECT_EQ(ctrl::kernels::active_level(), ctrl::kernels::active_level());
}

/// 200 fuzz scenarios, each exported under every (simd, workers) combination
/// and byte-compared against the first export. Scenario worker counts stand
/// in for MCM_SIM_THREADS (run_production passes them straight to the
/// sharded engine).
TEST(SimdEquivalence, FuzzCasesByteIdenticalAcrossSimdAndThreads) {
  mcm::Rng master(2026);
  int deep_cases = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t case_seed = master.next_u64();
    Scenario s = random_scenario(case_seed);
    if (s.queue_depth >= ctrl::kernels::kAvx2MinSlots) ++deep_cases;

    std::string reference;
    for (const char* simd : {"on", "off"}) {
      for (unsigned workers : {1u, 4u}) {
        ScopedEnv env("MCM_SIMD", simd);
        s.sim_threads = workers;
        const std::string dump = outcome_to_json(run_production(s)).dump_string();
        if (reference.empty()) {
          reference = dump;
        } else {
          ASSERT_EQ(dump, reference)
              << "case seed 0x" << std::hex << case_seed << std::dec
              << " diverged at MCM_SIMD=" << simd << " workers=" << workers;
        }
      }
    }
  }
  // The sweep is only meaningful if some cases engage the vector kernel.
  EXPECT_GT(deep_cases, 0);
}

/// Deep-queue controller-level check: with queue_depth well above
/// kAvx2MinSlots the vector kernel arbitrates nearly every pick; the full
/// completion stream (times, horizons, stats) must match the forced-scalar
/// controller exactly.
TEST(SimdEquivalence, DeepQueueCompletionStreamMatchesScalar) {
  const dram::DeviceSpec spec = dram::DeviceSpec::next_gen_mobile_ddr();
  ctrl::ControllerConfig cfg;
  cfg.queue_depth = 64;

  // Mixed traffic: row runs, direction flips, bank jumps, pacing gaps.
  mcm::Rng rng(99);
  std::vector<ctrl::Request> reqs;
  std::int64_t t = 0;
  std::uint64_t row = 0;
  std::uint64_t bank = 0;
  bool write = false;
  for (int i = 0; i < 20000; ++i) {
    const auto kind = rng.next_below(10);
    if (kind < 3) row = rng.next_below(64);
    if (kind < 5) bank = rng.next_below(spec.org.banks);
    if (rng.next_below(3) == 0) write = !write;
    t += static_cast<std::int64_t>(rng.next_below(4000));
    ctrl::Request r;
    r.addr = row * spec.org.row_bytes * spec.org.banks +
             bank * spec.org.row_bytes +
             rng.next_below(64) * spec.org.bytes_per_burst();
    r.is_write = write;
    r.arrival = Time{t};
    reqs.push_back(r);
  }

  const auto run = [&](const char* simd) {
    ScopedEnv env("MCM_SIMD", simd);
    ctrl::MemoryController mc(spec, Frequency{200.0}, ctrl::AddressMux::kRBC,
                              cfg);
    std::vector<ctrl::Completion> out;
    out.reserve(reqs.size());
    for (const auto& r : reqs) {
      while (!mc.can_accept()) out.push_back(mc.process_one());
      mc.enqueue(r);
    }
    while (mc.has_pending()) out.push_back(mc.process_one());
    mc.finalize(out.back().done);
    return std::make_tuple(out, mc.stats().reads, mc.stats().writes,
                           mc.stats().row_hits, mc.ledger().t_active_standby);
  };

  const auto vec = run("on");
  const auto sca = run("off");
  const auto& cv = std::get<0>(vec);
  const auto& cs = std::get<0>(sca);
  ASSERT_EQ(cv.size(), cs.size());
  for (std::size_t i = 0; i < cv.size(); ++i) {
    ASSERT_EQ(cv[i].req.addr, cs[i].req.addr) << "completion " << i;
    ASSERT_EQ(cv[i].first_command.ps(), cs[i].first_command.ps())
        << "completion " << i;
    ASSERT_EQ(cv[i].done.ps(), cs[i].done.ps()) << "completion " << i;
  }
  EXPECT_EQ(std::get<1>(vec), std::get<1>(sca));
  EXPECT_EQ(std::get<2>(vec), std::get<2>(sca));
  EXPECT_EQ(std::get<3>(vec), std::get<3>(sca));
  EXPECT_EQ(std::get<4>(vec).ps(), std::get<4>(sca).ps());
}

/// The frame arenas are an allocation-placement change only: a legacy-feed
/// run (the path that rebuilds its stage sources every frame) must produce
/// identical results with MCM_ARENA on and off.
TEST(ArenaEquivalence, LegacyFeedMatchesHeapMode) {
  core::ExperimentConfig cfg = core::ExperimentConfig::paper_defaults();
  cfg.base.channels = 1;
  cfg.base.freq = Frequency{200.0};
  cfg.usecase.level = video::H264Level::k31;  // smallest level: keep it fast
  cfg.sim.frames = 2;
  cfg.sim.legacy_feed = true;

  const auto run = [&](const char* arena) {
    ScopedEnv env("MCM_ARENA", arena);
    const core::FrameSimulator sim(cfg.sim);
    return sim.run(cfg.base, cfg.usecase);
  };
  const auto with_arena = run(nullptr);  // default: arena on
  const auto heap = run("off");
  EXPECT_EQ(with_arena.stats.accesses(), heap.stats.accesses());
  EXPECT_EQ(with_arena.stats.row_hits, heap.stats.row_hits);
  EXPECT_EQ(with_arena.stats.activates, heap.stats.activates);
  EXPECT_EQ(with_arena.access_time.ps(), heap.access_time.ps());
  ASSERT_EQ(with_arena.stage_results.size(), heap.stage_results.size());
  for (std::size_t i = 0; i < heap.stage_results.size(); ++i) {
    EXPECT_EQ(with_arena.stage_results[i].name, heap.stage_results[i].name);
    EXPECT_EQ(with_arena.stage_results[i].completed.ps(),
              heap.stage_results[i].completed.ps());
  }
}

}  // namespace
}  // namespace mcm::verify
