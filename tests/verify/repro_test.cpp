// `mcm.repro/v1` round-trip and replay tests, including the shrunken repro
// committed under tests/verify/repros/ (produced by
// `mcm_fuzz --inject ignore-tras`): loading it must reproduce the
// divergence, and stripping the injected bug must restore agreement.
#include <gtest/gtest.h>

#include <string>

#include "verify/differ.hpp"
#include "verify/scenario.hpp"

namespace mcm::verify {
namespace {

TEST(Repro, JsonRoundTripIsExact) {
  const Scenario s = random_scenario(0x12345);
  const obs::JsonValue doc = scenario_to_json(s);
  std::string error;
  const auto loaded = scenario_from_json(doc, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, s);
}

TEST(Repro, JsonRoundTripSurvivesSerializedText) {
  Scenario s = random_scenario(99);
  s.inject = InjectedBug::kIgnoreTwtr;
  const std::string text = scenario_to_json(s).dump_string();
  std::string error;
  const auto doc = obs::json_parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto loaded = scenario_from_json(*doc, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, s);
}

TEST(Repro, SaveAndLoadFile) {
  const Scenario s = random_scenario(4242);
  const std::string path = testing::TempDir() + "mcm_repro_roundtrip.json";
  ASSERT_TRUE(save_scenario(s, path));
  std::string error;
  const auto loaded = load_scenario(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, s);
}

TEST(Repro, RejectsWrongSchema) {
  std::string error;
  const auto doc = obs::json_parse(R"({"schema": "mcm.repro/v2"})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(scenario_from_json(*doc, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Repro, CommittedIgnoreTrasReproStillDiverges) {
  std::string error;
  const auto loaded =
      load_scenario(std::string(MCM_VERIFY_REPRO_DIR) + "/ignore_tras.json",
                    &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->inject, InjectedBug::kIgnoreTras);
  EXPECT_LE(loaded->total_requests(), 10u) << "repro is no longer minimal";

  // With the injected bug the reference diverges from production...
  EXPECT_TRUE(diff_scenario(*loaded).has_value());

  // ...and with the bug stripped the same scenario agrees, proving the
  // divergence is the injected bug and not the scenario itself.
  Scenario fixed = *loaded;
  fixed.inject = InjectedBug::kNone;
  const auto mismatch = diff_scenario(fixed);
  EXPECT_FALSE(mismatch.has_value()) << *mismatch;
}

}  // namespace
}  // namespace mcm::verify
