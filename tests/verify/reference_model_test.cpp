#include "verify/reference_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "verify/scenario.hpp"

namespace mcm::verify {
namespace {

// Packed request convention from the stream cache: addr | write << 63.
std::uint64_t pack(std::uint64_t addr, bool write) {
  return addr | (write ? (1ull << 63) : 0ull);
}

/// A single-frame scenario of sequential 16-byte requests, alternating
/// read/write when `mixed` is set.
Scenario sequential_scenario(std::uint32_t channels, int n, bool mixed = false) {
  Scenario s;
  s.channels = channels;
  s.frames.resize(1);
  ScenarioStage stage;
  stage.name = "seq";
  for (int i = 0; i < n; ++i) {
    stage.reqs.push_back(
        pack(static_cast<std::uint64_t>(i) * 16, mixed && (i % 2 == 1)));
  }
  s.frames[0].stages.push_back(stage);
  return s;
}

TEST(ReferenceModel, CountsEveryRequestOnce) {
  const Scenario s = sequential_scenario(1, 256, /*mixed=*/true);
  const RefRunOutput out = run_reference(s);
  ASSERT_EQ(out.channels.size(), 1u);
  const RefChannelResult& ch = out.channels[0];
  EXPECT_EQ(ch.reads, 128u);
  EXPECT_EQ(ch.writes, 128u);
  EXPECT_EQ(ch.n_rd, 128u);
  EXPECT_EQ(ch.n_wr, 128u);
  EXPECT_EQ(ch.bytes, 256u * 16u);
  EXPECT_EQ(ch.route_count, 256u);
  EXPECT_EQ(ch.row_hits + ch.row_misses + ch.row_conflicts, 256u);
  const std::uint64_t bank_total = std::accumulate(
      ch.bank_accesses.begin(), ch.bank_accesses.end(), std::uint64_t{0});
  EXPECT_EQ(bank_total, 256u);
  EXPECT_GT(out.end_time_ps, 0);
  EXPECT_GE(out.window_ps, out.end_time_ps);
}

TEST(ReferenceModel, SequentialTrafficBalancesAcrossChannels) {
  // 16-byte interleave granularity with 16-byte sequential requests: every
  // channel serves exactly 1/M of the stream.
  const Scenario s = sequential_scenario(4, 1024);
  const RefRunOutput out = run_reference(s);
  ASSERT_EQ(out.channels.size(), 4u);
  for (const RefChannelResult& ch : out.channels) {
    EXPECT_EQ(ch.route_count, 256u);
    EXPECT_EQ(ch.reads, 256u);
    EXPECT_EQ(ch.bytes, 256u * 16u);
  }
}

TEST(ReferenceModel, FirstFrameStageBookkeeping) {
  Scenario s;
  s.channels = 2;
  s.frames.resize(2);
  for (int f = 0; f < 2; ++f) {
    for (int st = 0; st < 3; ++st) {
      ScenarioStage stage;
      stage.name = "stage" + std::to_string(st);
      for (int i = 0; i < 8; ++i) {
        stage.reqs.push_back(pack(static_cast<std::uint64_t>(st * 8 + i) * 16,
                                  st == 1));
      }
      s.frames[f].stages.push_back(stage);
    }
  }
  const RefRunOutput out = run_reference(s);
  ASSERT_EQ(out.stage_names.size(), 3u);
  EXPECT_EQ(out.stage_names[1], "stage1");
  ASSERT_EQ(out.stage_bytes.size(), 3u);
  EXPECT_EQ(out.stage_bytes[0], 8u * 16u);
  ASSERT_EQ(out.stage_completed_ps.size(), 3u);
  // Stages are barriers: completions are non-decreasing.
  EXPECT_LE(out.stage_completed_ps[0], out.stage_completed_ps[1]);
  EXPECT_LE(out.stage_completed_ps[1], out.stage_completed_ps[2]);
  EXPECT_EQ(out.per_frame_access_ps.size(), 2u);
}

TEST(ReferenceModel, IsDeterministic) {
  const Scenario s = random_scenario(0x5eed);
  const RefRunOutput a = run_reference(s);
  const RefRunOutput b = run_reference(s);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  EXPECT_EQ(a.end_time_ps, b.end_time_ps);
  EXPECT_EQ(a.window_ps, b.window_ps);
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    ASSERT_EQ(a.channels[c].events.size(), b.channels[c].events.size());
    for (std::size_t i = 0; i < a.channels[c].events.size(); ++i) {
      EXPECT_EQ(a.channels[c].events[i].order_time(),
                b.channels[c].events[i].order_time())
          << "channel " << c << " event " << i;
    }
  }
}

TEST(ReferenceModel, CommandTimesLandOnClockEdges) {
  const Scenario s = sequential_scenario(1, 64, /*mixed=*/true);
  const RefRunOutput out = run_reference(s);
  const std::int64_t period_ps = 2500;  // 400 MHz
  for (const obs::TraceEvent& e : out.channels[0].events) {
    if (e.kind != obs::TraceEvent::Kind::kCommand) continue;
    EXPECT_EQ(e.at.ps() % period_ps, 0) << "command off the clock edge";
  }
}

}  // namespace
}  // namespace mcm::verify
