// Differential certification of heterogeneous channel clusters: scenarios
// drawing random per-channel device classes (all-fast, all-slow, mixed,
// vault-grouped) must agree between the production engine and the golden
// reference model on every observable. The CI hetero-smoke job runs the
// full 500-case sweep via `mcm_fuzz --classes`; this in-tree slice keeps
// the property under plain ctest.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "dram/device_class.hpp"
#include "verify/differ.hpp"
#include "verify/scenario.hpp"

namespace mcm::verify {
namespace {

TEST(HeteroDifferential, RandomClassAssignmentsAgree) {
  mcm::Rng master(20260808);
  std::set<std::string> shapes_seen;
  for (int i = 0; i < 120; ++i) {
    const std::uint64_t case_seed = master.next_u64();
    const Scenario s =
        random_scenario(case_seed, /*workload_generators=*/false,
                        /*hetero_classes=*/true);
    if (s.channel_classes.empty()) {
      shapes_seen.insert("homogeneous");
    } else if (s.vault_group >= 2) {
      shapes_seen.insert("vault");
    } else {
      shapes_seen.insert("classes");
    }
    const auto mismatch = diff_scenario(s);
    ASSERT_FALSE(mismatch.has_value())
        << "case seed 0x" << std::hex << case_seed << std::dec << ": "
        << *mismatch;
  }
  // The sampler must actually exercise all three shape families.
  EXPECT_EQ(shapes_seen.size(), 3u);
}

TEST(HeteroDifferential, HandWrittenMixedVaultScenarioAgrees) {
  // One fully pinned case covering every class plus vault grouping, so a
  // regression here is replayable without the sampler.
  Scenario s = random_scenario(42);
  s.channels = 4;
  s.channel_classes = {"fast_edram", "slow_pcm", "mobile_ddr", "fast_edram"};
  s.vault_group = 2;
  s.sim_threads = 8;
  const auto mismatch = diff_scenario(s);
  ASSERT_FALSE(mismatch.has_value()) << *mismatch;
}

TEST(HeteroDifferential, ScenarioJsonRoundTripsClasses) {
  Scenario s = random_scenario(7, false, true);
  s.channels = 2;
  s.channel_classes = {"slow_pcm", "fast_edram"};
  s.vault_group = 2;
  std::string error;
  const auto back = scenario_from_json(scenario_to_json(s), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, s);
}

TEST(HeteroDifferential, LegacyJsonStaysByteIdentical) {
  // A class-free scenario must serialize without the new keys, so committed
  // legacy repros do not churn.
  const Scenario s = random_scenario(9);
  ASSERT_TRUE(s.channel_classes.empty());
  const std::string dump = scenario_to_json(s).dump_string();
  EXPECT_EQ(dump.find("channel_classes"), std::string::npos);
  EXPECT_EQ(dump.find("vault_group"), std::string::npos);
}

TEST(HeteroDifferential, UnknownClassNameRejected) {
  Scenario s = random_scenario(11);
  s.channel_classes.assign(s.channels, "hbm3");
  EXPECT_THROW(s.system_config(), std::invalid_argument);

  obs::JsonValue doc = scenario_to_json(random_scenario(11));
  obs::JsonValue& classes = doc["channel_classes"];
  classes = obs::JsonValue::array();
  classes.push(obs::JsonValue{std::string("hbm3")});
  std::string error;
  EXPECT_FALSE(scenario_from_json(doc, &error).has_value());
  EXPECT_NE(error.find("unknown device class"), std::string::npos);
}

TEST(HeteroDifferential, GeneratorAndClassFlagsCompose) {
  // Both sampler extensions on at once; a handful of cases must agree.
  mcm::Rng master(55);
  for (int i = 0; i < 20; ++i) {
    const Scenario s = random_scenario(master.next_u64(), true, true);
    const auto mismatch = diff_scenario(s);
    ASSERT_FALSE(mismatch.has_value()) << *mismatch;
  }
}

TEST(HeteroDifferential, FlagDoesNotPerturbPlainScenarios) {
  // hetero_classes draws happen after every legacy field, so the flag's
  // existence cannot change what random_scenario(seed) returns.
  for (const std::uint64_t seed : {1ull, 99ull, 0xabcdefull}) {
    const Scenario plain = random_scenario(seed);
    Scenario hetero = random_scenario(seed, false, true);
    hetero.channel_classes.clear();
    hetero.vault_group = 0;
    EXPECT_EQ(plain, hetero);
  }
}

}  // namespace
}  // namespace mcm::verify
