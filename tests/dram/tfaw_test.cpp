// tFAW (four-activate window) support, used by the eight-bank future-device
// ablation. The paper's LPDDR1-class device has no tFAW (0 disables it).
#include <gtest/gtest.h>

#include "dram/bank_cluster.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::dram {
namespace {

TEST(Tfaw, DisabledByDefault) {
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  EXPECT_EQ(d.tfaw, 0);
}

TEST(Tfaw, EightBankFutureHasWindow) {
  const auto spec = DeviceSpec::eight_bank_future();
  EXPECT_EQ(spec.org.banks, 8u);
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  EXPECT_EQ(d.tfaw, 20);  // 50 ns at 2.5 ns clock
}

TEST(Tfaw, FifthActivateWaitsForWindow) {
  const auto spec = DeviceSpec::eight_bank_future();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  BankCluster cluster(spec.org);
  // Four activates at tRRD spacing.
  Time t = Time::zero();
  for (std::uint32_t b = 0; b < 4; ++b) {
    t = max(t, cluster.earliest_activate(b));
    cluster.activate(t, b, 1, d);
    t = t + d.cycles(d.trrd);
  }
  // The fifth is bounded by ACT#1 + tFAW, not just tRRD.
  const Time first_act = Time::zero();
  EXPECT_GE(cluster.earliest_activate(4), first_act + d.cycles(d.tfaw));
}

TEST(Tfaw, WindowSlides) {
  const auto spec = DeviceSpec::eight_bank_future();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  BankCluster cluster(spec.org);
  // Issue 8 activates as fast as legal; consecutive groups of 4 must span
  // at least tFAW.
  std::vector<Time> acts;
  for (std::uint32_t b = 0; b < 8; ++b) {
    const Time t = cluster.earliest_activate(b);
    cluster.activate(t, b, 1, d);
    acts.push_back(t);
  }
  for (std::size_t i = 4; i < acts.size(); ++i) {
    EXPECT_GE(acts[i] - acts[i - 4], d.cycles(d.tfaw));
  }
}

TEST(Tfaw, CheckerCatchesViolation) {
  const auto spec = DeviceSpec::eight_bank_future();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  const TimingChecker checker(spec.org, d);
  std::vector<CommandRecord> trace;
  // Five ACTs at tRRD spacing: the fifth violates tFAW (4 x tRRD < tFAW).
  Time t = Time::zero();
  for (std::uint32_t b = 0; b < 5; ++b) {
    trace.push_back({t, Command::kActivate, b, 1});
    t += d.cycles(d.trrd);
  }
  const auto v = checker.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("tFAW"), std::string::npos);
}

TEST(Tfaw, CheckerAcceptsLegalSpacing) {
  const auto spec = DeviceSpec::eight_bank_future();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  const TimingChecker checker(spec.org, d);
  std::vector<CommandRecord> trace;
  Time t = Time::zero();
  for (std::uint32_t b = 0; b < 8; ++b) {
    trace.push_back({t, Command::kActivate, b, 1});
    // Pace at tFAW/4: every 4-window spans exactly tFAW.
    t += d.cycles((d.tfaw + 3) / 4);
  }
  EXPECT_TRUE(checker.check(trace).empty());
}

TEST(Presets, WideIoTradesClockForWidth) {
  const auto wide = DeviceSpec::wide_io_like();
  EXPECT_EQ(wide.org.word_bits, 128u);
  EXPECT_EQ(wide.org.bytes_per_burst(), 64u);
  EXPECT_EQ(wide.timing.burst_cycles, 4);  // SDR
  const auto d = DerivedTiming::derive(wide.timing, Frequency{200.0});
  // 64 B per 4 clocks at 200 MHz = 3.2 GB/s - same as one of the paper's
  // 32-bit DDR channels at 400 MHz.
  EXPECT_DOUBLE_EQ(d.peak_bandwidth_bytes_per_s(wide.org), 3.2e9);
  const auto narrow = DeviceSpec::next_gen_mobile_ddr();
  const auto dn = DerivedTiming::derive(narrow.timing, Frequency{400.0});
  EXPECT_DOUBLE_EQ(dn.peak_bandwidth_bytes_per_s(narrow.org),
                   d.peak_bandwidth_bytes_per_s(wide.org));
}

TEST(Presets, MobileDdr2008IsSlowerAndHungrier) {
  const auto old = DeviceSpec::mobile_ddr_2008();
  const auto next = DeviceSpec::next_gen_mobile_ddr();
  EXPECT_LT(old.timing.freq_max_mhz, next.timing.freq_max_mhz);
  EXPECT_GT(old.power.vdd, next.power.vdd);
  EXPECT_GT(old.power.idd4r_ma, next.power.idd4r_ma);
  EXPECT_THROW((void)DerivedTiming::derive(old.timing, Frequency{400.0}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)DerivedTiming::derive(old.timing, Frequency{200.0}));
}

}  // namespace
}  // namespace mcm::dram
