#include "dram/timing_checker.hpp"

#include <gtest/gtest.h>

namespace mcm::dram {
namespace {

class TimingCheckerTest : public ::testing::Test {
 protected:
  TimingCheckerTest()
      : spec_(DeviceSpec::next_gen_mobile_ddr()),
        d_(DerivedTiming::derive(spec_.timing, Frequency{400.0})),
        checker_(spec_.org, d_) {}

  Time cyc(int n) const { return d_.cycles(n); }

  DeviceSpec spec_;
  DerivedTiming d_;
  TimingChecker checker_;
};

TEST_F(TimingCheckerTest, AcceptsLegalOpenPageSequence) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.trcd), Command::kRead, 0, 0},
      {cyc(d_.trcd + d_.burst_ck), Command::kRead, 0, 0},
      {cyc(d_.tras), Command::kPrecharge, 0, 0},
      {cyc(d_.tras + d_.trp), Command::kActivate, 0, 11},
  };
  EXPECT_TRUE(checker_.check(trace).empty());
}

TEST_F(TimingCheckerTest, CatchesTrcdViolation) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.trcd - 1), Command::kRead, 0, 0},
  };
  const auto v = checker_.check(trace);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("tRCD"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesTrasViolation) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.tras - 1), Command::kPrecharge, 0, 0},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("tRAS"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesTrrdViolation) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.trrd - 1), Command::kActivate, 1, 20},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("tRRD"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesDataBusCollision) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.trrd), Command::kActivate, 1, 20},
      // Both banks past tRCD; the second read's data overlaps the first's.
      {cyc(d_.trrd + d_.trcd), Command::kRead, 0, 0},
      {cyc(d_.trrd + d_.trcd + 1), Command::kRead, 1, 0},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("data bus"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesWriteToReadTurnaround) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.trcd), Command::kWrite, 0, 0},
      // Read immediately after the write data (needs tWTR).
      {cyc(d_.trcd + d_.cwl + d_.burst_ck), Command::kRead, 0, 0},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("tWTR"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesReadToClosedBank) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kRead, 0, 0},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("closed bank"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesRefreshWithOpenRow) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kActivate, 0, 10},
      {cyc(d_.tras + 10), Command::kRefresh, 0, 0},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("REF"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesCommandDuringRefresh) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kRefresh, 0, 0},
      {cyc(d_.trfc - 1), Command::kActivate, 0, 10},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("tRFC"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesOffEdgeCommand) {
  std::vector<CommandRecord> trace = {
      {Time{1}, Command::kActivate, 0, 10},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("clock edge"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesCommandWhilePoweredDown) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kPowerDownEnter, 0, 0},
      {cyc(10), Command::kActivate, 0, 1},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("power-down"), std::string::npos);
}

TEST_F(TimingCheckerTest, AcceptsPowerDownCycleWithWake) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kPowerDownEnter, 0, 0},
      {cyc(d_.tcke), Command::kPowerDownExit, 0, 0},
      {cyc(d_.tcke + d_.txp), Command::kActivate, 0, 1},
  };
  EXPECT_TRUE(checker_.check(trace).empty());
}

TEST_F(TimingCheckerTest, CatchesXpViolationAfterWake) {
  std::vector<CommandRecord> trace = {
      {Time::zero(), Command::kPowerDownEnter, 0, 0},
      {cyc(d_.tcke), Command::kPowerDownExit, 0, 0},
      {cyc(d_.tcke + d_.txp - 1), Command::kActivate, 0, 1},
  };
  const auto v = checker_.check(trace);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("tXP"), std::string::npos);
}

}  // namespace
}  // namespace mcm::dram
