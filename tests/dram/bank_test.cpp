#include "dram/bank.hpp"

#include <gtest/gtest.h>

namespace mcm::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  BankTest()
      : spec_(DeviceSpec::next_gen_mobile_ddr()),
        d_(DerivedTiming::derive(spec_.timing, Frequency{400.0})) {}

  Time cyc(int n) const { return d_.cycles(n); }

  DeviceSpec spec_;
  DerivedTiming d_;
  Bank bank_;
};

TEST_F(BankTest, StartsClosed) {
  EXPECT_FALSE(bank_.row_open());
  EXPECT_EQ(bank_.earliest_activate(), Time::zero());
}

TEST_F(BankTest, ActivateOpensRowAndSetsGuards) {
  bank_.activate(Time::zero(), 77, d_);
  EXPECT_TRUE(bank_.row_open());
  EXPECT_EQ(bank_.open_row(), 77u);
  EXPECT_EQ(bank_.earliest_cas(), cyc(d_.trcd));
  EXPECT_EQ(bank_.earliest_precharge(), cyc(d_.tras));
  EXPECT_EQ(bank_.earliest_activate(), cyc(d_.trc));
}

TEST_F(BankTest, ReadReturnsDataEnd) {
  bank_.activate(Time::zero(), 1, d_);
  const Time t = bank_.earliest_cas();
  const Time end = bank_.read(t, d_);
  EXPECT_EQ(end, t + cyc(d_.cl + d_.burst_ck));
}

TEST_F(BankTest, WriteExtendsPrechargeGuardByWriteRecovery) {
  bank_.activate(Time::zero(), 1, d_);
  // Write late enough that tWR (not tRAS) bounds the next precharge.
  const Time t = bank_.earliest_cas() + cyc(20);
  const Time end = bank_.write(t, d_);
  EXPECT_EQ(end, t + cyc(d_.cwl + d_.burst_ck));
  EXPECT_EQ(bank_.earliest_precharge(), end + cyc(d_.twr));
}

TEST_F(BankTest, ReadSetsReadToPrechargeGuard) {
  bank_.activate(Time::zero(), 1, d_);
  const Time t = bank_.earliest_cas() + cyc(20);  // later than tRAS window
  (void)bank_.read(t, d_);
  EXPECT_GE(bank_.earliest_precharge(), t + cyc(d_.trtp));
}

TEST_F(BankTest, PrechargeClosesRowAndArmsActivate) {
  bank_.activate(Time::zero(), 1, d_);
  const Time tp = bank_.earliest_precharge();
  bank_.precharge(tp, d_);
  EXPECT_FALSE(bank_.row_open());
  EXPECT_GE(bank_.earliest_activate(), tp + cyc(d_.trp));
}

TEST_F(BankTest, SameBankActRespectsTrc) {
  bank_.activate(Time::zero(), 1, d_);
  bank_.precharge(bank_.earliest_precharge(), d_);
  // tRC from the first ACT dominates tRAS + tRP here only if longer; the
  // guard must be at least both.
  EXPECT_GE(bank_.earliest_activate(), cyc(d_.trc));
}

TEST_F(BankTest, RefreshBlocksBankForTrfc) {
  bank_.refresh(Time::zero(), d_);
  EXPECT_EQ(bank_.earliest_activate(), cyc(d_.trfc));
}

#ifndef NDEBUG
TEST_F(BankTest, IllegalCommandsAssert) {
  EXPECT_DEATH(bank_.precharge(Time::zero(), d_), "");  // no open row
  bank_.activate(Time::zero(), 1, d_);
  EXPECT_DEATH((void)bank_.read(Time::zero(), d_), "");  // before tRCD
  EXPECT_DEATH(bank_.activate(Time::zero(), 2, d_), "");  // already open
}
#endif

}  // namespace
}  // namespace mcm::dram
