// Mutation testing for the protocol checker: take a legal trace produced by
// the controller, break it in targeted ways, and require the independent
// checker to notice. Guards against the checker silently passing everything.
#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "dram/timing_checker.hpp"

namespace mcm::dram {
namespace {

class CheckerMutation : public ::testing::Test {
 protected:
  CheckerMutation() : spec_(DeviceSpec::next_gen_mobile_ddr()) {}

  /// A known-legal mixed trace from the real controller.
  std::vector<CommandRecord> legal_trace() {
    ctrl::ControllerConfig cfg;
    cfg.record_trace = true;
    ctrl::MemoryController mc(spec_, Frequency{400.0}, ctrl::AddressMux::kRBC, cfg);
    std::uint64_t a = 0;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t addr = (i % 9 == 0) ? a + 8ull * 1024 * 1024 : a;
      mc.enqueue(ctrl::Request{addr, (i % 3) == 0, Time::zero(), 0});
      (void)mc.process_one();
      a += 16;
    }
    mc.finalize(mc.horizon() + Time::from_us(20.0));
    return mc.trace();
  }

  TimingChecker checker() {
    return TimingChecker(spec_.org,
                         DerivedTiming::derive(spec_.timing, Frequency{400.0}));
  }

  DeviceSpec spec_;
};

TEST_F(CheckerMutation, BaselineIsLegal) {
  EXPECT_TRUE(checker().check(legal_trace()).empty());
}

TEST_F(CheckerMutation, OffEdgeCommandDetected) {
  auto trace = legal_trace();
  trace[trace.size() / 2].at += Time{1};  // 1 ps off the clock edge
  const auto v = checker().check(trace);
  ASSERT_FALSE(v.empty());
}

TEST_F(CheckerMutation, SameEdgeCollisionDetected) {
  auto trace = legal_trace();
  // Put a command on its predecessor's edge (skip power-down pairs, which
  // have their own rules).
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].cmd == Command::kPowerDownExit ||
        trace[i].cmd == Command::kPowerDownEnter ||
        trace[i - 1].cmd == Command::kPowerDownEnter) {
      continue;
    }
    trace[i].at = trace[i - 1].at;
    break;
  }
  EXPECT_FALSE(checker().check(trace).empty());
}

TEST_F(CheckerMutation, RemovedActivateDetected) {
  auto trace = legal_trace();
  // Remove an ACT that is directly followed by a column command on the same
  // bank: that command now targets a closed row.
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    if (trace[i].cmd != Command::kActivate) continue;
    if ((trace[i + 1].cmd == Command::kRead || trace[i + 1].cmd == Command::kWrite) &&
        trace[i + 1].bank == trace[i].bank) {
      trace.erase(trace.begin() + static_cast<std::ptrdiff_t>(i));
      const auto v = checker().check(trace);
      ASSERT_FALSE(v.empty());
      return;
    }
  }
  FAIL() << "no ACT->CAS pair found in the trace";
}

TEST_F(CheckerMutation, DuplicatedPrechargeDetected) {
  auto trace = legal_trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].cmd != Command::kPrecharge) continue;
    // Re-issue the same PRE a little later: bank is already closed.
    CommandRecord dup = trace[i];
    dup.at += Time::from_ns(500.0);
    // Insert keeping time order.
    std::size_t j = i + 1;
    while (j < trace.size() && trace[j].at < dup.at) ++j;
    trace.insert(trace.begin() + static_cast<std::ptrdiff_t>(j), dup);
    const auto v = checker().check(trace);
    ASSERT_FALSE(v.empty());
    return;
  }
  FAIL() << "no PRE found in the trace";
}

TEST_F(CheckerMutation, ShrunkRowCycleDetected) {
  auto trace = legal_trace();
  // Pull the second ACT of some bank forward to within tRC of the first.
  const auto d = DerivedTiming::derive(spec_.timing, Frequency{400.0});
  Time first_act[8];
  bool seen[8] = {};
  for (auto& c : trace) {
    if (c.cmd != Command::kActivate) continue;
    if (!seen[c.bank]) {
      seen[c.bank] = true;
      first_act[c.bank] = c.at;
    } else {
      c.at = first_act[c.bank] + d.cycles(1);  // deep inside tRC
      const auto v = checker().check(trace);
      ASSERT_FALSE(v.empty());
      return;
    }
  }
  FAIL() << "no bank saw two activates";
}

}  // namespace
}  // namespace mcm::dram
