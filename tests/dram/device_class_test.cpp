// Property tests for the heterogeneous device-class tables: class ordering
// (fast < base < slow on row timings), PCM read/write asymmetry, the
// refresh-free contract, and per-class energy-ledger conservation.
#include "dram/device_class.hpp"

#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"
#include "dram/energy.hpp"

namespace mcm::dram {
namespace {

TEST(DeviceClass, NamesRoundTrip) {
  for (const auto cls : {DeviceClass::kMobileDdr, DeviceClass::kFastEdram,
                         DeviceClass::kSlowPcm}) {
    const auto parsed = parse_device_class(to_string(cls));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(parse_device_class("hbm").has_value());
  EXPECT_FALSE(parse_device_class("").has_value());
}

TEST(DeviceClass, MobileDdrBindsTheBaseSpec) {
  // kMobileDdr must resolve to the base spec itself — this identity is what
  // keeps an all-mobile-ddr system bit-identical to a class-free one.
  for (const DeviceSpec& base :
       {DeviceSpec::next_gen_mobile_ddr(), DeviceSpec::mobile_ddr_2008(),
        DeviceSpec::eight_bank_future(), DeviceSpec::wide_io_like()}) {
    const DeviceSpec bound = device_class_spec(DeviceClass::kMobileDdr, base);
    EXPECT_EQ(bound.timing.tRC_ns, base.timing.tRC_ns);
    EXPECT_EQ(bound.org.capacity_bits, base.org.capacity_bits);
    EXPECT_EQ(bound.power.idd0_ma, base.power.idd0_ma);
  }
}

TEST(DeviceClass, RowTimingMonotonicity) {
  const TimingSpec base = DeviceSpec::next_gen_mobile_ddr().timing;
  const TimingSpec fast = fast_edram_like().timing;
  const TimingSpec slow = slow_pcm_like().timing;

  // fast < base < slow on the row-cycle family.
  EXPECT_LT(fast.tRC_ns, base.tRC_ns);
  EXPECT_LT(base.tRC_ns, slow.tRC_ns);
  EXPECT_LT(fast.tRCD_ns, base.tRCD_ns);
  EXPECT_LT(base.tRCD_ns, slow.tRCD_ns);
  EXPECT_LE(fast.tRP_ns, base.tRP_ns);
  EXPECT_LE(base.tRP_ns, slow.tRP_ns);
  EXPECT_LT(fast.tRAS_ns, base.tRAS_ns);
  EXPECT_LT(base.tRAS_ns, slow.tRAS_ns);

  // Internal consistency: a row cycle covers its ACT-to-PRE plus precharge.
  for (const TimingSpec& t : {base, fast, slow}) {
    EXPECT_GE(t.tRC_ns, t.tRAS_ns + t.tRP_ns - 1e-9);
    EXPECT_GE(t.tRAS_ns, t.tRCD_ns);  // row open at least until column access
    EXPECT_GT(t.tWTR_ns, 0.0);        // turnarounds exist for every class
    EXPECT_GT(t.tRTP_ns, 0.0);
  }
}

TEST(DeviceClass, DerivedCyclesRespectClassOrderingAcrossFrequencies) {
  const DeviceSpec base = DeviceSpec::next_gen_mobile_ddr();
  const DeviceSpec fast = fast_edram_like();
  const DeviceSpec slow = slow_pcm_like();
  // Every frequency in the base device's range (the class tables advertise
  // 100-533 MHz, wider than any base device's range, so whatever clock the
  // fuzzer samples for the system is legal for every class).
  for (const double mhz : {200.0, 266.0, 333.0, 400.0, 533.0}) {
    const auto db = DerivedTiming::derive(base.timing, Frequency{mhz});
    const auto df = DerivedTiming::derive(fast.timing, Frequency{mhz});
    const auto ds = DerivedTiming::derive(slow.timing, Frequency{mhz});
    EXPECT_LE(df.trc, db.trc) << mhz;
    EXPECT_LE(db.trc, ds.trc) << mhz;
    EXPECT_LE(df.trcd, db.trcd) << mhz;
    EXPECT_LE(db.trcd, ds.trcd) << mhz;
  }
}

TEST(DeviceClass, PcmWriteSlowerAndCostlierThanRead) {
  const DeviceSpec pcm = slow_pcm_like();
  // Cell programming dominates: write recovery far exceeds the read-side
  // column latency, and the write burst draws much more current.
  EXPECT_GT(pcm.timing.tWR_ns, 4.0 * pcm.timing.tCAS_ns);
  EXPECT_GT(pcm.power.idd4w_ma, 2.0 * pcm.power.idd4r_ma);

  // The energy model prices one write burst above one read burst.
  const auto d = DerivedTiming::derive(pcm.timing, Frequency{400.0});
  const EnergyModel energy(pcm.power, d);
  EnergyLedger reads;
  reads.n_rd = 100;
  EnergyLedger writes;
  writes.n_wr = 100;
  EXPECT_GT(energy.tally(writes).total_pj(), energy.tally(reads).total_pj());
}

TEST(DeviceClass, FastEdramRefreshesMoreOftenThanBase) {
  const DeviceSpec base = DeviceSpec::next_gen_mobile_ddr();
  const DeviceSpec fast = fast_edram_like();
  EXPECT_LT(fast.timing.tREFI_ns, base.timing.tREFI_ns);
  const auto d = DerivedTiming::derive(fast.timing, Frequency{400.0});
  EXPECT_TRUE(d.has_refresh());
}

TEST(DeviceClass, PcmIsRefreshFree) {
  const DeviceSpec pcm = slow_pcm_like();
  EXPECT_EQ(pcm.timing.tREFI_ns, 0.0);
  const auto d = DerivedTiming::derive(pcm.timing, Frequency{400.0});
  EXPECT_FALSE(d.has_refresh());
  EXPECT_EQ(d.trefi, 0);
  EXPECT_EQ(d.trfc, 0);
}

TEST(DeviceClass, PcmNeverAccruesRefreshDebt) {
  // Drive a controller bound to the PCM class across a long window with
  // idle gaps (where debt would normally be repaid) and a busy phase (where
  // refreshes would normally interleave): no refresh may ever be issued.
  ctrl::ControllerConfig cfg;
  cfg.refresh_postpone_max = 8;  // debt machinery armed, must stay silent
  ctrl::MemoryController mc(slow_pcm_like(), Frequency{400.0},
                            ctrl::AddressMux::kRBC, cfg);
  std::uint64_t a = 0;
  for (int i = 0; i < 500; ++i) {
    mc.enqueue(ctrl::Request{a, (i % 3) == 0, Time::zero(), 0});
    (void)mc.process_one();
    a += 16;
  }
  mc.finalize(Time::from_ms(33.0));  // tail spans ~4200 base-device tREFIs
  EXPECT_EQ(mc.stats().refreshes, 0u);
  EXPECT_EQ(mc.ledger().n_ref, 0u);
  // Refresh-free also means no self-refresh state exists to enter.
  EXPECT_EQ(mc.ledger().n_selfrefresh_entries, 0u);
  EXPECT_EQ(mc.ledger().t_selfrefresh, Time::zero());
}

TEST(DeviceClass, EnergyLedgerConservationPerClass) {
  // For every class: total power-state residency equals the finalize window
  // (within 1%), i.e. the books never lose or double-count time.
  const DeviceSpec base = DeviceSpec::next_gen_mobile_ddr();
  for (const auto cls : {DeviceClass::kMobileDdr, DeviceClass::kFastEdram,
                         DeviceClass::kSlowPcm}) {
    ctrl::MemoryController mc(device_class_spec(cls, base), Frequency{400.0},
                              ctrl::AddressMux::kRBC, ctrl::ControllerConfig{});
    std::uint64_t a = 0;
    for (int i = 0; i < 300; ++i) {
      mc.enqueue(ctrl::Request{a, (i % 2) == 0, Time::zero(), 0});
      (void)mc.process_one();
      a += 16;
    }
    const Time window = Time::from_ms(5.0);
    mc.finalize(window);
    const EnergyLedger& l = mc.ledger();
    const double covered =
        l.t_active_standby.seconds() + l.t_precharge_standby.seconds() +
        l.t_active_powerdown.seconds() + l.t_powerdown.seconds() +
        l.t_selfrefresh.seconds();
    EXPECT_NEAR(covered, window.seconds(), window.seconds() * 0.01)
        << to_string(cls);
  }
}

}  // namespace
}  // namespace mcm::dram
