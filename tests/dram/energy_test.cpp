#include "dram/energy.hpp"

#include <gtest/gtest.h>

namespace mcm::dram {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest()
      : spec_(DeviceSpec::next_gen_mobile_ddr()),
        d_(DerivedTiming::derive(spec_.timing, Frequency{400.0})),
        model_(spec_.power, d_) {}

  DeviceSpec spec_;
  DerivedTiming d_;
  EnergyModel model_;
};

TEST_F(EnergyTest, EventEnergiesArePositive) {
  EXPECT_GT(model_.e_act_pre_pj(), 0.0);
  EXPECT_GT(model_.e_read_pj(), 0.0);
  EXPECT_GT(model_.e_write_pj(), 0.0);
  EXPECT_GT(model_.e_refresh_pj(), 0.0);
}

TEST_F(EnergyTest, StatePowersOrdered) {
  // Deeper states burn less: PD < active PD < precharge standby < active standby.
  EXPECT_LT(model_.p_powerdown_mw(), model_.p_active_powerdown_mw());
  EXPECT_LT(model_.p_active_powerdown_mw(), model_.p_precharge_standby_mw());
  EXPECT_LT(model_.p_precharge_standby_mw(), model_.p_active_standby_mw());
}

TEST_F(EnergyTest, ActPreEnergyMagnitude) {
  // A mobile-DDR-class ACT/PRE pair is a few nanojoules.
  EXPECT_GT(model_.e_act_pre_pj(), 500.0);
  EXPECT_LT(model_.e_act_pre_pj(), 20'000.0);
}

TEST_F(EnergyTest, TallySumsComponents) {
  EnergyLedger l;
  l.n_act = 10;
  l.n_rd = 100;
  l.n_wr = 50;
  l.n_ref = 2;
  l.t_active_standby = Time::from_us(1.0);
  l.t_powerdown = Time::from_us(9.0);
  const EnergyBreakdown b = model_.tally(l);
  EXPECT_DOUBLE_EQ(b.act_pre_pj, 10 * model_.e_act_pre_pj());
  EXPECT_DOUBLE_EQ(b.read_pj, 100 * model_.e_read_pj());
  EXPECT_DOUBLE_EQ(b.write_pj, 50 * model_.e_write_pj());
  EXPECT_DOUBLE_EQ(b.refresh_pj, 2 * model_.e_refresh_pj());
  EXPECT_DOUBLE_EQ(b.active_standby_pj, model_.p_active_standby_mw() * 1000.0);
  EXPECT_DOUBLE_EQ(b.powerdown_pj, model_.p_powerdown_mw() * 9000.0);
  EXPECT_DOUBLE_EQ(b.total_pj(),
                   b.act_pre_pj + b.read_pj + b.write_pj + b.refresh_pj +
                       b.background_pj());
}

TEST_F(EnergyTest, LedgerMerge) {
  EnergyLedger a, b;
  a.n_rd = 3;
  a.t_powerdown = Time::from_ns(10.0);
  b.n_rd = 4;
  b.n_act = 1;
  b.t_powerdown = Time::from_ns(5.0);
  a += b;
  EXPECT_EQ(a.n_rd, 7u);
  EXPECT_EQ(a.n_act, 1u);
  EXPECT_EQ(a.t_powerdown, Time::from_ns(15.0));
}

TEST_F(EnergyTest, ResidencyRouting) {
  EnergyLedger l;
  l.add_residency(PowerState::kActiveStandby, Time{100});
  l.add_residency(PowerState::kPrechargeStandby, Time{200});
  l.add_residency(PowerState::kActivePowerDown, Time{300});
  l.add_residency(PowerState::kPowerDown, Time{400});
  EXPECT_EQ(l.t_active_standby, Time{100});
  EXPECT_EQ(l.t_precharge_standby, Time{200});
  EXPECT_EQ(l.t_active_powerdown, Time{300});
  EXPECT_EQ(l.t_powerdown, Time{400});
}

TEST_F(EnergyTest, ReadBurstCurrentScalesWithFrequency) {
  const auto d200 = DerivedTiming::derive(spec_.timing, Frequency{200.0});
  const EnergyModel m200(spec_.power, d200);
  // Same transferred bits: burst at 400 MHz lasts half as long with twice
  // the incremental current, so burst energy is similar (within 2x).
  EXPECT_NEAR(model_.e_read_pj() / m200.e_read_pj(), 1.0, 0.35);
}

class EnergyFrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(EnergyFrequencySweep, BurstPowerRisesWithClockEnergyPerByteBounded) {
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{GetParam()});
  const EnergyModel m(spec.power, d);
  // Burst energy per byte stays within a sane LPDDR band at every clock.
  const double bytes = spec.org.bytes_per_burst();
  const double pj_per_byte = m.e_read_pj() / bytes;
  EXPECT_GT(pj_per_byte, 10.0);
  EXPECT_LT(pj_per_byte, 150.0);
  // Full-bus dynamic read power scales with the data rate.
  const double bursts_per_s = d.freq.hz() / d.burst_ck;
  const double mw = m.e_read_pj() * bursts_per_s * 1e-9;
  const auto d200 = DerivedTiming::derive(spec.timing, Frequency{200.0});
  const EnergyModel m200(spec.power, d200);
  const double mw200 = m200.e_read_pj() * (d200.freq.hz() / d200.burst_ck) * 1e-9;
  EXPECT_GE(mw + 1e-9, mw200 * (GetParam() / 200.0) * 0.6);
}

INSTANTIATE_TEST_SUITE_P(PaperClocks, EnergyFrequencySweep,
                         ::testing::Values(200.0, 266.0, 333.0, 400.0, 466.0,
                                           533.0));

TEST_F(EnergyTest, FullBusReadPowerMatchesCalibration) {
  // Sustained reads occupy the bus back to back: one burst per burst_ck
  // cycles. The resulting dynamic power underlies the paper's power figures;
  // keep it in the calibrated band (see EXPERIMENTS.md).
  const double bursts_per_s = d_.freq.hz() / d_.burst_ck;
  const double mw = model_.e_read_pj() * bursts_per_s * 1e-9 +
                    model_.p_active_standby_mw();
  EXPECT_GT(mw, 150.0);
  EXPECT_LT(mw, 320.0);
}

}  // namespace
}  // namespace mcm::dram
