#include "dram/bank_cluster.hpp"

#include <gtest/gtest.h>

namespace mcm::dram {
namespace {

class BankClusterTest : public ::testing::Test {
 protected:
  BankClusterTest()
      : spec_(DeviceSpec::next_gen_mobile_ddr()),
        d_(DerivedTiming::derive(spec_.timing, Frequency{400.0})),
        cluster_(spec_.org) {}

  Time cyc(int n) const { return d_.cycles(n); }

  DeviceSpec spec_;
  DerivedTiming d_;
  BankCluster cluster_;
};

TEST_F(BankClusterTest, HasFourBanks) {
  EXPECT_EQ(cluster_.bank_count(), 4u);
  EXPECT_TRUE(cluster_.all_precharged());
}

TEST_F(BankClusterTest, CrossBankActivateRespectsTrrd) {
  cluster_.activate(Time::zero(), 0, 5, d_);
  EXPECT_EQ(cluster_.earliest_activate(1), cyc(d_.trrd));
  cluster_.activate(cyc(d_.trrd), 1, 9, d_);
  EXPECT_EQ(cluster_.earliest_activate(2), cyc(2 * d_.trrd));
}

TEST_F(BankClusterTest, SameBankGuardDominatesTrrd) {
  cluster_.activate(Time::zero(), 0, 5, d_);
  // Same bank: tRC, not tRRD.
  EXPECT_EQ(cluster_.earliest_activate(0), cyc(d_.trc));
}

TEST_F(BankClusterTest, TracksOpenRowsAcrossBanks) {
  cluster_.activate(Time::zero(), 0, 5, d_);
  cluster_.activate(cyc(d_.trrd), 2, 7, d_);
  EXPECT_TRUE(cluster_.any_row_open());
  EXPECT_FALSE(cluster_.all_precharged());
  EXPECT_TRUE(cluster_.bank(0).row_open());
  EXPECT_FALSE(cluster_.bank(1).row_open());
  EXPECT_TRUE(cluster_.bank(2).row_open());
}

TEST_F(BankClusterTest, RefreshRequiresAllPrechargedAndBlocksAllBanks) {
  cluster_.activate(Time::zero(), 0, 5, d_);
  cluster_.precharge(cluster_.earliest_precharge(0), 0, d_);
  ASSERT_TRUE(cluster_.all_precharged());
  const Time tr = cluster_.earliest_refresh();
  cluster_.refresh(tr, d_);
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    EXPECT_EQ(cluster_.bank(b).earliest_activate(), tr + cyc(d_.trfc));
  }
}

TEST_F(BankClusterTest, ReadWriteForwardToBank) {
  cluster_.activate(Time::zero(), 1, 3, d_);
  const Time t = cluster_.earliest_cas(1);
  const Time rd_end = cluster_.read(t, 1, d_);
  EXPECT_EQ(rd_end, t + cyc(d_.cl + d_.burst_ck));
}

}  // namespace
}  // namespace mcm::dram
