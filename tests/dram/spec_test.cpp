#include "dram/spec.hpp"

#include <gtest/gtest.h>

namespace mcm::dram {
namespace {

TEST(OrgSpec, PaperDevice) {
  const OrgSpec org = DeviceSpec::next_gen_mobile_ddr().org;
  EXPECT_EQ(org.banks, 4u);
  EXPECT_EQ(org.capacity_bits, 512ull * 1024 * 1024);  // 512 Mb per cluster
  EXPECT_EQ(org.word_bits, 32u);
  EXPECT_EQ(org.burst_length, 4u);
  EXPECT_EQ(org.bytes_per_burst(), 16u);  // Table II: minimum granularity
  EXPECT_EQ(org.bursts_per_row(), 128u);
  EXPECT_EQ(org.rows_per_bank(), 8192u);
  EXPECT_EQ(org.capacity_bytes(), 64ull * 1024 * 1024);
}

TEST(DerivedTiming, At200MHzMatchesDatasheetCycles) {
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{200.0});
  EXPECT_EQ(d.clk.ps(), 5000);
  EXPECT_EQ(d.cl, 3);    // 15 ns at 5 ns clock: CL = 3 (Mobile DDR -5 grade)
  EXPECT_EQ(d.trcd, 3);
  EXPECT_EQ(d.trp, 3);
  EXPECT_EQ(d.tras, 8);  // 40 ns
  EXPECT_EQ(d.trc, 11);  // 55 ns
  EXPECT_EQ(d.trrd, 2);
  EXPECT_EQ(d.twr, 3);
  EXPECT_EQ(d.trfc, 15);  // 72 ns -> ceil
  EXPECT_EQ(d.trefi, 1563);  // 7812.5 ns
  EXPECT_EQ(d.burst_ck, 2);  // BL4, DDR
  EXPECT_EQ(d.cwl, 1);
}

TEST(DerivedTiming, FrequencyExtrapolationKeepsNanoseconds) {
  // Paper rule: analog timings stay in ns, so cycle counts scale with f.
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  const auto d400 = DerivedTiming::derive(spec.timing, Frequency{400.0});
  EXPECT_EQ(d400.clk.ps(), 2500);
  EXPECT_EQ(d400.cl, 6);
  EXPECT_EQ(d400.trcd, 6);
  EXPECT_EQ(d400.trp, 6);
  EXPECT_EQ(d400.tras, 16);
  EXPECT_EQ(d400.trc, 22);
  // Latency in ns is (nearly) frequency independent.
  EXPECT_NEAR(d400.cycles(d400.trcd).ns(),
              DerivedTiming::derive(spec.timing, Frequency{200.0})
                  .cycles(3).ns(),
              2.5);
}

TEST(DerivedTiming, PeakBandwidthIsDdr) {
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{400.0});
  // 400 MHz x 2 (DDR) x 4 B = 3.2 GB/s per channel.
  EXPECT_DOUBLE_EQ(d.peak_bandwidth_bytes_per_s(spec.org), 3.2e9);
}

TEST(DerivedTiming, RejectsOutOfRangeClock) {
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  EXPECT_THROW((void)DerivedTiming::derive(spec.timing, Frequency{100.0}),
               std::invalid_argument);
  EXPECT_THROW((void)DerivedTiming::derive(spec.timing, Frequency{800.0}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)DerivedTiming::derive(spec.timing, Frequency{533.0}));
  EXPECT_NO_THROW((void)DerivedTiming::derive(spec.timing, Frequency{200.0}));
}

class DerivedTimingSweep : public ::testing::TestWithParam<double> {};

TEST_P(DerivedTimingSweep, AllCycleCountsPositiveAndOrdered) {
  const auto spec = DeviceSpec::next_gen_mobile_ddr();
  const auto d = DerivedTiming::derive(spec.timing, Frequency{GetParam()});
  EXPECT_GT(d.cl, 0);
  EXPECT_GT(d.trcd, 0);
  EXPECT_GT(d.trp, 0);
  EXPECT_GT(d.tras, 0);
  EXPECT_GT(d.trrd, 0);
  EXPECT_GT(d.twr, 0);
  EXPECT_GT(d.trfc, 0);
  EXPECT_GT(d.txp, 0);
  // tRC covers tRAS + tRP (within rounding of one cycle).
  EXPECT_GE(d.trc + 1, d.tras + d.trp);
  // Refresh interval dwarfs the refresh cycle time.
  EXPECT_GT(d.trefi, 10 * d.trfc);
}

INSTANTIATE_TEST_SUITE_P(PaperClocks, DerivedTimingSweep,
                         ::testing::Values(200.0, 266.0, 333.0, 400.0, 466.0,
                                           533.0));

}  // namespace
}  // namespace mcm::dram
