// Property/fuzz tests for the traffic sources: random stream-spec sets must
// always honor the volume, window, ordering, and proportionality invariants.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "load/multi_stream_source.hpp"

namespace mcm::load {
namespace {

class SourceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SourceFuzz, InvariantsHoldForRandomSpecs) {
  Rng rng(GetParam());
  const int streams_n = 1 + static_cast<int>(rng.next_below(5));
  std::vector<StreamSpec> specs;
  std::uint64_t expected_total = 0;
  for (int s = 0; s < streams_n; ++s) {
    StreamSpec spec;
    spec.base = rng.next_below(1u << 24) * 16;
    spec.bytes = rng.next_below(40'000);
    spec.window = rng.next_below(3) == 0 ? rng.next_below(4096) + 16 : 0;
    spec.is_write = rng.next_below(2) == 1;
    spec.source_id = static_cast<std::uint16_t>(s);
    expected_total += (spec.bytes + 15) / 16 * 16;
    specs.push_back(spec);
  }
  const std::uint32_t chunk = 16u << rng.next_below(6);  // 16..512
  MultiStreamSource src("fuzz", specs, chunk);

  EXPECT_EQ(src.total_bytes(), expected_total);

  std::map<std::uint16_t, std::uint64_t> per_stream_bytes;
  std::map<std::uint16_t, std::uint64_t> last_cursor;
  std::uint64_t emitted = 0;
  while (!src.done()) {
    const ctrl::Request r = src.head();
    // Source id maps back to exactly one spec; address inside its window.
    ASSERT_LT(r.source, specs.size());
    const StreamSpec& spec = specs[r.source];
    const std::uint64_t window =
        spec.window == 0 ? std::max<std::uint64_t>((spec.bytes + 15) / 16 * 16, 16)
                         : (spec.window + 15) / 16 * 16;
    ASSERT_GE(r.addr, spec.base);
    ASSERT_LT(r.addr, spec.base + window);
    EXPECT_EQ(r.is_write, spec.is_write);
    // Per-stream addresses advance monotonically modulo the window.
    per_stream_bytes[r.source] += 16;
    emitted += 16;
    src.advance();
  }
  EXPECT_EQ(emitted, expected_total);
  for (const auto& spec : specs) {
    const std::uint64_t want = (spec.bytes + 15) / 16 * 16;
    if (want == 0) continue;
    EXPECT_EQ(per_stream_bytes[spec.source_id], want);
  }
}

TEST_P(SourceFuzz, ProportionalProgressNeverDivergesFar) {
  Rng rng(GetParam() ^ 0x5555);
  std::vector<StreamSpec> specs;
  for (int s = 0; s < 3; ++s) {
    StreamSpec spec;
    spec.base = static_cast<std::uint64_t>(s) << 24;
    spec.bytes = 16'000 + rng.next_below(64'000);
    spec.is_write = s == 2;
    spec.source_id = static_cast<std::uint16_t>(s);
    specs.push_back(spec);
  }
  MultiStreamSource src("prop", specs, 64);
  std::vector<std::uint64_t> done(3, 0);
  std::uint64_t steps = 0;
  while (!src.done()) {
    done[src.head().source] += 16;
    src.advance();
    ++steps;
    if (steps % 256 == 0) {
      // All stream progress fractions stay within a chunk's worth of each
      // other (proportional interleaving).
      double lo = 2.0, hi = -1.0;
      for (int s = 0; s < 3; ++s) {
        const double total = (specs[s].bytes + 15) / 16 * 16;
        const double frac = static_cast<double>(done[s]) / total;
        lo = std::min(lo, frac);
        hi = std::max(hi, frac);
      }
      EXPECT_LT(hi - lo, 0.15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SourceFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 7ull, 1234ull,
                                           0xdeadbeefull));

}  // namespace
}  // namespace mcm::load
