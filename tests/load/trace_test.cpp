#include "load/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "load/multi_stream_source.hpp"
#include "load/usecase_sources.hpp"
#include "multichannel/memory_system.hpp"

namespace mcm::load {
namespace {

std::vector<ctrl::Request> sample_requests() {
  return {
      {0x1000, false, Time{0}, 1},
      {0x2010, true, Time{2500}, 2},
      {0xdeadbeef0, false, Time{123456789}, 0},
  };
}

TEST(Trace, RoundTripsThroughText) {
  const auto original = sample_requests();
  std::stringstream ss;
  write_trace(ss, original);
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr);
    EXPECT_EQ(parsed[i].is_write, original[i].is_write);
    EXPECT_EQ(parsed[i].arrival, original[i].arrival);
    EXPECT_EQ(parsed[i].source, original[i].source);
  }
}

TEST(Trace, IgnoresCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n0 R 0x10 3\n   \n# tail\n");
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].addr, 0x10u);
  EXPECT_EQ(parsed[0].source, 3);
}

TEST(Trace, SourceFieldOptional) {
  std::stringstream ss("100 W 0xabc\n");
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].is_write);
  EXPECT_EQ(parsed[0].source, 0);
}

TEST(Trace, MalformedLinesThrowWithLineNumber) {
  std::stringstream bad1("0 X 0x10\n");
  EXPECT_THROW((void)read_trace(bad1), TraceError);
  std::stringstream bad2("0 R 0x10\nnot a line\n");
  try {
    (void)read_trace(bad2);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Trace, RecordSourceCapturesExactStream) {
  MultiStreamSource src("s", {{0x100, 64, 0, false, 7}, {0x1000, 64, 0, true, 8}});
  const auto recorded = record_source(src);
  EXPECT_EQ(recorded.size(), 8u);  // 128 B / 16 B bursts
  EXPECT_FALSE(recorded.front().is_write);
}

TEST(Trace, ReplayMatchesOriginalRunExactly) {
  // Record the camera stage of the 720p use case, replay it through a
  // memory system twice (original source vs trace), and compare stats.
  video::UseCaseParams p;
  p.level = video::H264Level::k31;
  const video::UseCaseModel model(p);
  const video::SurfaceLayout layout(model);

  auto run = [](TrafficSource& src) {
    multichannel::SystemConfig cfg;
    cfg.channels = 2;
    multichannel::MemorySystem sys(cfg);
    Time last = Time::zero();
    while (!src.done()) {
      const auto r = src.head();
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        src.advance();
      } else if (auto c = sys.process_next()) {
        last = max(last, c->done);
      }
    }
    last = max(last, sys.drain());
    return std::pair{last, sys.stats()};
  };

  auto sources1 = build_stage_sources(model, layout);
  auto& original = *sources1[0];
  auto sources2 = build_stage_sources(model, layout);
  auto recorded = record_source(*sources2[0]);

  // Round-trip through the text format too.
  std::stringstream ss;
  write_trace(ss, recorded);
  TraceReplaySource replay(read_trace(ss), "camera");

  const auto [t1, s1] = run(original);
  const auto [t2, s2] = run(replay);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1.bytes, s2.bytes);
  EXPECT_EQ(s1.row_hits, s2.row_hits);
  EXPECT_EQ(s1.activates, s2.activates);
}

TEST(Trace, ReplayShiftsByStart) {
  TraceReplaySource replay({{0x10, false, Time{100}, 0}}, "t");
  replay.set_start(Time{1000});
  EXPECT_EQ(replay.head().arrival, Time{1100});
}

TEST(Trace, RejectsBackwardsArrivalsWithLineNumber) {
  std::stringstream ss("0 R 0x10\n500 W 0x20\n400 R 0x30\n");
  try {
    (void)read_trace(ss);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("backwards"), std::string::npos) << what;
  }
}

TEST(Trace, EqualArrivalsAreFine) {
  std::stringstream ss("100 R 0x10\n100 W 0x20\n");
  EXPECT_EQ(read_trace(ss).size(), 2u);
}

TEST(Trace, RejectsNegativeArrival) {
  std::stringstream ss("-5 R 0x10\n");
  EXPECT_THROW((void)read_trace(ss), TraceError);
}

TEST(Trace, RejectsAddressesWithBit63Set) {
  std::stringstream ss("0 R 0x8000000000000000\n");
  try {
    (void)read_trace(ss);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  std::stringstream ok("0 R 0x7fffffffffffffff\n");
  EXPECT_EQ(read_trace(ok).size(), 1u);  // kMaxTraceAddr itself is legal
}

TEST(Trace, RandomStreamsRoundTripExactly) {
  // Property test: any ordered request stream survives write -> read
  // unchanged (arrivals, directions, addresses, sources).
  Rng rng(0xC0FFEE);
  std::vector<ctrl::Request> original;
  std::int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    ctrl::Request r;
    t += static_cast<std::int64_t>(rng.next_below(10'000));
    r.arrival = Time{t};
    r.addr = rng.next_u64() & kMaxTraceAddr;
    r.is_write = rng.next_below(2) == 1;
    r.source = static_cast<std::uint16_t>(rng.next_below(16));
    original.push_back(r);
  }
  std::stringstream ss;
  write_trace(ss, original);
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr);
    EXPECT_EQ(parsed[i].is_write, original[i].is_write);
    EXPECT_EQ(parsed[i].arrival, original[i].arrival);
    EXPECT_EQ(parsed[i].source, original[i].source);
  }
}

TEST(Trace, ReplayPacingRescalesRecordedTimeAxis) {
  // Trace spans 1000 ps; pacing over 10000 ps scales arrivals 10x.
  TraceReplaySource replay(
      {{0x10, false, Time{0}, 0}, {0x20, false, Time{400}, 0},
       {0x30, false, Time{1000}, 0}},
      "t");
  replay.set_pacing(Time{10'000});
  replay.set_start(Time{100});
  EXPECT_EQ(replay.head().arrival, Time{100});
  replay.advance();
  EXPECT_EQ(replay.head().arrival, Time{4100});
  replay.advance();
  EXPECT_EQ(replay.head().arrival, Time{10'100});
}

TEST(Trace, ReplayPacingSpreadsZeroSpanTracesByIndex) {
  // All arrivals at 0 (e.g. a ramulator import): spread uniformly.
  TraceReplaySource replay(
      {{0x10, false, Time{0}, 0}, {0x20, false, Time{0}, 0},
       {0x30, false, Time{0}, 0}},
      "t");
  replay.set_pacing(Time{1000});
  EXPECT_EQ(replay.head().arrival, Time{0});
  replay.advance();
  EXPECT_EQ(replay.head().arrival, Time{500});
  replay.advance();
  EXPECT_EQ(replay.head().arrival, Time{1000});
}

TEST(Trace, UnsupportedPacingWarnsAndLeavesArrivalsAlone) {
  // MultiStreamSource does not override set_pacing: the base class logs a
  // one-shot warning (satellite fix for the silent no-op) and arrivals stay
  // at the stage start.
  MultiStreamSource src("s", {{0x100, 64, 0, false, 7}});
  src.set_pacing(Time{1'000'000});
  src.set_pacing(Time{2'000'000});  // second call must not warn again
  EXPECT_EQ(src.head().arrival, Time::zero());
}

}  // namespace
}  // namespace mcm::load
