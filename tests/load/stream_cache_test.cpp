// The workload stream cache must be a transparent memoization layer: the
// cached enumeration replays exactly what the live load models emit, keys
// distinguish every parameter that changes the stream, and the
// MCM_STREAM_CACHE=off escape hatch bypasses retention without changing
// content.
#include "load/stream_cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "video/surfaces.hpp"
#include "video/usecase.hpp"

namespace mcm::load {
namespace {

constexpr std::uint64_t kAlign = 64 * 1024;

video::UseCaseParams params(video::H264Level level = video::H264Level::k31) {
  video::UseCaseParams p;
  p.level = level;
  return p;
}

struct Format {
  video::UseCaseModel model;
  video::SurfaceLayout layout;

  explicit Format(const video::UseCaseParams& p)
      : model(p), layout(model, kAlign) {}
};

TEST(StreamCache, CachedMatchesLiveEnumeration) {
  const Format f(params());
  LoadOptions opt;
  const auto cached = StreamCache::generate(f.model, f.layout, opt);

  auto sources = build_stage_sources(f.model, f.layout, opt);
  ASSERT_EQ(cached->stages.size(), sources.size());

  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const CachedStage& stage = cached->stages[s];
    TrafficSource& src = *sources[s];
    EXPECT_EQ(stage.name, src.name());
    src.set_start(Time::zero());
    std::size_t i = 0;
    while (!src.done()) {
      const ctrl::Request r = src.head();
      src.advance();
      ASSERT_LT(i, stage.reqs.size()) << stage.name;
      EXPECT_EQ(CachedStage::addr_of(stage.reqs[i]), r.addr);
      EXPECT_EQ(CachedStage::is_write_of(stage.reqs[i]), r.is_write);
      if (i == 0) {
        EXPECT_EQ(stage.source_id, r.source);
      }
      ++i;
    }
    EXPECT_EQ(i, stage.reqs.size()) << stage.name;
    total += i;
  }
  EXPECT_EQ(cached->total_requests, total);
  EXPECT_EQ(cached->burst_bytes, opt.burst_bytes);
}

TEST(StreamCache, GetMemoizesPerKey) {
  auto& cache = StreamCache::instance();
  cache.clear();
  const Format f(params());
  LoadOptions opt;

  const auto a = cache.get(f.model, f.layout, kAlign, opt);
  const auto b = cache.get(f.model, f.layout, kAlign, opt);
  EXPECT_EQ(a.get(), b.get()) << "same key must hit";
  EXPECT_EQ(cache.cached_bytes(), a->footprint_bytes());

  // Any stream-shaping parameter forms a new key.
  LoadOptions seeded = opt;
  seeded.seed = 42;
  const auto c = cache.get(f.model, f.layout, kAlign, seeded);
  EXPECT_NE(a.get(), c.get());

  const Format heavier(params(video::H264Level::k40));
  const auto d = cache.get(heavier.model, heavier.layout, kAlign, opt);
  EXPECT_NE(a.get(), d.get());
  EXPECT_GT(d->total_requests, a->total_requests);

  cache.clear();
  EXPECT_EQ(cache.cached_bytes(), 0u);
}

TEST(StreamCache, ChunkMetaRoutesEveryPosition) {
  CachedStage stage;
  stage.name = "meta";
  stage.source_id = 1;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    stage.reqs.push_back(CachedStage::pack(i * 48, i % 2 == 0));
  }
  const std::uint32_t channels = 4, granularity = 128;
  const auto meta = ChunkMeta::build(stage, channels, granularity);
  ASSERT_EQ(meta->chan.size(), stage.reqs.size());
  std::uint64_t listed = 0;
  for (std::uint32_t c = 0; c < channels; ++c) {
    listed += meta->pos_of[c].size();
    for (std::size_t i = 0; i < meta->pos_of[c].size(); ++i) {
      EXPECT_EQ(meta->chan[meta->pos_of[c][i]], c);
      if (i > 0) {
        EXPECT_LT(meta->pos_of[c][i - 1], meta->pos_of[c][i]);
      }
    }
  }
  EXPECT_EQ(listed, stage.reqs.size());
  for (std::size_t p = 0; p < stage.reqs.size(); ++p) {
    const std::uint64_t addr = CachedStage::addr_of(stage.reqs[p]);
    EXPECT_EQ(meta->chan[p], (addr / granularity) % channels);
  }
  // count_in must agree with a direct scan on arbitrary sub-ranges.
  for (std::uint32_t c = 0; c < channels; ++c) {
    for (const auto& [a, b] :
         {std::pair<std::uint64_t, std::uint64_t>{0, 1000},
          {0, 1},
          {17, 401},
          {999, 1000},
          {500, 500}}) {
      std::uint64_t expect = 0;
      for (std::uint64_t p = a; p < b; ++p) expect += meta->chan[p] == c;
      EXPECT_EQ(meta->count_in(c, a, b), expect)
          << "c=" << c << " [" << a << "," << b << ")";
    }
  }
}

TEST(StreamCache, ChunkMetaMemoizedAndCounted) {
  auto& cache = StreamCache::instance();
  cache.clear();
  const Format f(params());
  LoadOptions opt;

  const auto wl = cache.get(f.model, f.layout, kAlign, opt);
  ASSERT_FALSE(wl->key.empty());
  const StreamCacheStats before = cache.stats();
  EXPECT_EQ(before.meta_entries, 0u);
  EXPECT_EQ(before.meta_bytes, 0u);

  const auto m1 = cache.chunk_meta(*wl, 0, 4, 128);
  const auto m2 = cache.chunk_meta(*wl, 0, 4, 128);
  EXPECT_EQ(m1.get(), m2.get()) << "same (key, stage, interleave) must hit";

  // A different interleave (or stage) is a different meta entry.
  const auto m3 = cache.chunk_meta(*wl, 0, 2, 128);
  EXPECT_NE(m1.get(), m3.get());

  const StreamCacheStats after = cache.stats();
  EXPECT_EQ(after.meta_entries, 2u);
  EXPECT_EQ(after.meta_bytes,
            m1->footprint_bytes() + m3->footprint_bytes());
  EXPECT_EQ(after.stream_bytes, wl->footprint_bytes());
  EXPECT_EQ(cache.cached_bytes(), after.stream_bytes + after.meta_bytes);

  // Uncached workloads (no key) still get correct metadata, just unretained.
  const auto loose = StreamCache::generate(f.model, f.layout, opt);
  EXPECT_TRUE(loose->key.empty());
  const auto m4 = cache.chunk_meta(*loose, 0, 4, 128);
  EXPECT_EQ(m4->chan, m1->chan);
  EXPECT_EQ(cache.stats().meta_entries, 2u) << "keyless meta is not retained";

  cache.clear();
  const StreamCacheStats cleared = cache.stats();
  EXPECT_EQ(cleared.stream_bytes + cleared.meta_bytes, 0u);
  EXPECT_EQ(cleared.stream_entries + cleared.meta_entries, 0u);
}

TEST(StreamCache, EnvOffBypassesRetention) {
  auto& cache = StreamCache::instance();
  cache.clear();
  const Format f(params());
  LoadOptions opt;

  setenv("MCM_STREAM_CACHE", "off", 1);
  EXPECT_FALSE(StreamCache::enabled());
  const auto a = cache.get(f.model, f.layout, kAlign, opt);
  const auto b = cache.get(f.model, f.layout, kAlign, opt);
  EXPECT_NE(a.get(), b.get()) << "off = no retention";
  EXPECT_EQ(cache.cached_bytes(), 0u);
  unsetenv("MCM_STREAM_CACHE");
  EXPECT_TRUE(StreamCache::enabled());

  // Same content either way.
  const auto c = cache.get(f.model, f.layout, kAlign, opt);
  ASSERT_EQ(a->stages.size(), c->stages.size());
  for (std::size_t s = 0; s < a->stages.size(); ++s) {
    EXPECT_EQ(a->stages[s].reqs, c->stages[s].reqs);
  }
  cache.clear();
}

}  // namespace
}  // namespace mcm::load
