// The workload stream cache must be a transparent memoization layer: the
// cached enumeration replays exactly what the live load models emit, keys
// distinguish every parameter that changes the stream, and the
// MCM_STREAM_CACHE=off escape hatch bypasses retention without changing
// content.
#include "load/stream_cache.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "video/surfaces.hpp"
#include "video/usecase.hpp"

namespace mcm::load {
namespace {

constexpr std::uint64_t kAlign = 64 * 1024;

video::UseCaseParams params(video::H264Level level = video::H264Level::k31) {
  video::UseCaseParams p;
  p.level = level;
  return p;
}

struct Format {
  video::UseCaseModel model;
  video::SurfaceLayout layout;

  explicit Format(const video::UseCaseParams& p)
      : model(p), layout(model, kAlign) {}
};

TEST(StreamCache, CachedMatchesLiveEnumeration) {
  const Format f(params());
  LoadOptions opt;
  const auto cached = StreamCache::generate(f.model, f.layout, opt);

  auto sources = build_stage_sources(f.model, f.layout, opt);
  ASSERT_EQ(cached->stages.size(), sources.size());

  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const CachedStage& stage = cached->stages[s];
    TrafficSource& src = *sources[s];
    EXPECT_EQ(stage.name, src.name());
    src.set_start(Time::zero());
    std::size_t i = 0;
    while (!src.done()) {
      const ctrl::Request r = src.head();
      src.advance();
      ASSERT_LT(i, stage.reqs.size()) << stage.name;
      EXPECT_EQ(CachedStage::addr_of(stage.reqs[i]), r.addr);
      EXPECT_EQ(CachedStage::is_write_of(stage.reqs[i]), r.is_write);
      if (i == 0) {
        EXPECT_EQ(stage.source_id, r.source);
      }
      ++i;
    }
    EXPECT_EQ(i, stage.reqs.size()) << stage.name;
    total += i;
  }
  EXPECT_EQ(cached->total_requests, total);
  EXPECT_EQ(cached->burst_bytes, opt.burst_bytes);
}

TEST(StreamCache, GetMemoizesPerKey) {
  auto& cache = StreamCache::instance();
  cache.clear();
  const Format f(params());
  LoadOptions opt;

  const auto a = cache.get(f.model, f.layout, kAlign, opt);
  const auto b = cache.get(f.model, f.layout, kAlign, opt);
  EXPECT_EQ(a.get(), b.get()) << "same key must hit";
  EXPECT_EQ(cache.cached_bytes(), a->footprint_bytes());

  // Any stream-shaping parameter forms a new key.
  LoadOptions seeded = opt;
  seeded.seed = 42;
  const auto c = cache.get(f.model, f.layout, kAlign, seeded);
  EXPECT_NE(a.get(), c.get());

  const Format heavier(params(video::H264Level::k40));
  const auto d = cache.get(heavier.model, heavier.layout, kAlign, opt);
  EXPECT_NE(a.get(), d.get());
  EXPECT_GT(d->total_requests, a->total_requests);

  cache.clear();
  EXPECT_EQ(cache.cached_bytes(), 0u);
}

TEST(StreamCache, EnvOffBypassesRetention) {
  auto& cache = StreamCache::instance();
  cache.clear();
  const Format f(params());
  LoadOptions opt;

  setenv("MCM_STREAM_CACHE", "off", 1);
  EXPECT_FALSE(StreamCache::enabled());
  const auto a = cache.get(f.model, f.layout, kAlign, opt);
  const auto b = cache.get(f.model, f.layout, kAlign, opt);
  EXPECT_NE(a.get(), b.get()) << "off = no retention";
  EXPECT_EQ(cache.cached_bytes(), 0u);
  unsetenv("MCM_STREAM_CACHE");
  EXPECT_TRUE(StreamCache::enabled());

  // Same content either way.
  const auto c = cache.get(f.model, f.layout, kAlign, opt);
  ASSERT_EQ(a->stages.size(), c->stages.size());
  for (std::size_t s = 0; s < a->stages.size(); ++s) {
    EXPECT_EQ(a->stages[s].reqs, c->stages[s].reqs);
  }
  cache.clear();
}

}  // namespace
}  // namespace mcm::load
