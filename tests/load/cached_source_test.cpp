#include "load/cached_source.hpp"

#include <gtest/gtest.h>

#include "load/encoder_pattern_source.hpp"
#include "load/multi_stream_source.hpp"

namespace mcm::load {
namespace {

std::unique_ptr<TrafficSource> line_stream(std::uint64_t base, std::uint64_t bytes,
                                           bool is_write,
                                           std::uint64_t window = 0) {
  return std::make_unique<MultiStreamSource>(
      "fine", std::vector<StreamSpec>{{base, bytes, window, is_write, 0}},
      /*chunk=*/64, /*burst=*/64);
}

cache::CacheConfig small_cache() { return {16 * 1024, 4, 64, true}; }

std::uint64_t drain_bytes(TrafficSource& src, std::uint64_t* reads = nullptr,
                          std::uint64_t* writes = nullptr) {
  std::uint64_t total = 0;
  while (!src.done()) {
    const auto r = src.head();
    total += 16;
    if (reads && !r.is_write) *reads += 16;
    if (writes && r.is_write) *writes += 16;
    src.advance();
  }
  return total;
}

TEST(CachedSource, StreamingReadMissesOncePerLine) {
  // 64 KiB sequential read through a 16 KiB cache: every line misses once.
  CachedSource src(line_stream(0, 64 * 1024, false), small_cache());
  const std::uint64_t memory_bytes = drain_bytes(src);
  EXPECT_EQ(memory_bytes, 64u * 1024);
  EXPECT_EQ(src.raw_bytes(), 64u * 1024);
  EXPECT_EQ(src.cache_stats().hits, 0u);
}

TEST(CachedSource, WriteStreamProducesWritebacks) {
  // Streaming writes with allocate: each line fetched once (fill) and
  // eventually written back = 2x the footprint.
  CachedSource src(line_stream(0, 64 * 1024, true), small_cache());
  std::uint64_t reads = 0, writes = 0;
  const std::uint64_t memory_bytes = drain_bytes(src, &reads, &writes);
  EXPECT_EQ(memory_bytes, 2u * 64 * 1024);
  EXPECT_EQ(reads, 64u * 1024);   // write-allocate fills
  EXPECT_EQ(writes, 64u * 1024);  // evict + end-of-run flush
}

TEST(CachedSource, HotLoopFitsInCacheAndVanishes) {
  // Re-reading a 4 KiB window 16 times: only the first pass reaches memory.
  CachedSource src(line_stream(0, 16 * 4096, false, 4096), small_cache());
  const std::uint64_t memory_bytes = drain_bytes(src);
  EXPECT_EQ(memory_bytes, 4096u);
  EXPECT_GT(src.cache_stats().hit_rate(), 0.90);
  EXPECT_EQ(src.raw_bytes(), 16u * 4096);
}

TEST(CachedSource, NoFlushLeavesDirtyLinesUncounted) {
  CachedSource with(line_stream(0, 8 * 1024, true), small_cache(), 16, true);
  CachedSource without(line_stream(0, 8 * 1024, true), small_cache(), 16, false);
  const std::uint64_t w = drain_bytes(with);
  const std::uint64_t wo = drain_bytes(without);
  // Footprint (8 KiB) fits the 16 KiB cache: without flush only fills reach
  // memory; with flush the dirty lines are written back too.
  EXPECT_EQ(wo, 8u * 1024);
  EXPECT_EQ(w, 2u * 8 * 1024);
}

TEST(CachedSource, EncoderWindowTrafficCollapsesBehindCache) {
  auto fine = [&] {
    video::EncoderAccessParams p;
    p.resolution = video::k720p;
    p.ref_frames = 4;
    p.mode = video::EncoderAccessMode::kAllTouches;
    p.candidate_step = 2;
    p.input_base = 0;
    p.ref_base = 1ull << 24;
    p.recon_base = 1ull << 27;
    p.max_macroblocks = 120;
    return std::make_unique<EncoderPatternSource>("enc", p, /*burst=*/64);
  };
  CachedSource cached(fine(), cache::CacheConfig{256 * 1024, 8, 64, true});
  const std::uint64_t memory_bytes = drain_bytes(cached);
  EXPECT_LT(memory_bytes * 10, cached.raw_bytes());  // >10x reduction
}

TEST(CachedSource, ArrivalsPropagateFromInner) {
  auto inner = line_stream(0, 4096, false);
  inner->set_start(Time::from_ms(1.0));
  CachedSource src(std::move(inner), small_cache());
  EXPECT_EQ(src.head().arrival, Time::from_ms(1.0));
}

TEST(CachedSource, NamePrefixed) {
  CachedSource src(line_stream(0, 1024, false), small_cache());
  EXPECT_EQ(src.name(), "cached:fine");
}

}  // namespace
}  // namespace mcm::load
