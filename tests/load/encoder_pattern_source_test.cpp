#include "load/encoder_pattern_source.hpp"

#include <gtest/gtest.h>

namespace mcm::load {
namespace {

video::EncoderAccessParams params(std::uint32_t mbs = 40) {
  video::EncoderAccessParams p;
  p.resolution = video::k720p;
  p.ref_frames = 4;
  p.input_base = 0;
  p.ref_base = 1ull << 24;
  p.recon_base = 1ull << 27;
  p.max_macroblocks = mbs;
  return p;
}

TEST(EncoderPatternSource, SplitsAccessesIntoBursts) {
  EncoderPatternSource src("enc", params(2));
  int bursts = 0;
  while (!src.done()) {
    (void)src.head();
    src.advance();
    ++bursts;
  }
  // 2 corner MBs: each has 16 input lines (2 bursts each) + 4 windows
  // (clamped to ~32x32 at the frame corner, 2 bursts per line) + recon
  // (16 lines + 2 chroma blocks): hundreds of bursts.
  EXPECT_GT(bursts, 600);
}

TEST(EncoderPatternSource, StartTimeApplied) {
  EncoderPatternSource src("enc", params(1));
  src.set_start(Time::from_ms(2.0));
  EXPECT_EQ(src.head().arrival, Time::from_ms(2.0));
}

TEST(EncoderPatternSource, EstimateCloseToActual) {
  EncoderPatternSource src("enc", params(100));
  std::uint64_t actual = 0;
  while (!src.done()) {
    src.advance();
    actual += 16;
  }
  const double est = static_cast<double>(src.total_bytes());
  EXPECT_NEAR(static_cast<double>(actual), est, est * 0.25);
}

TEST(EncoderPatternSource, MixesReadsAndWrites) {
  EncoderPatternSource src("enc", params(5));
  bool saw_read = false, saw_write = false;
  while (!src.done()) {
    if (src.head().is_write) {
      saw_write = true;
    } else {
      saw_read = true;
    }
    src.advance();
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace mcm::load
