#include "load/usecase_sources.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcm::load {
namespace {

video::UseCaseModel model_for(video::H264Level level) {
  video::UseCaseParams p;
  p.level = level;
  return video::UseCaseModel(p);
}

TEST(UseCaseSources, OneSourcePerStage) {
  const auto m = model_for(video::H264Level::k31);
  const video::SurfaceLayout layout(m);
  const auto sources = build_stage_sources(m, layout);
  EXPECT_EQ(sources.size(), m.stages().size());
}

class VolumeMatch : public ::testing::TestWithParam<video::H264Level> {};

TEST_P(VolumeMatch, SourceVolumesMatchTableI) {
  // The simulated traffic must equal the Table I volumes (up to per-stream
  // burst rounding).
  const auto m = model_for(GetParam());
  const video::SurfaceLayout layout(m);
  const auto sources = build_stage_sources(m, layout);
  double total_table = 0, total_sources = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const double table_bytes = m.stages()[i].total_bits() / 8.0;
    const double src_bytes = static_cast<double>(sources[i]->total_bytes());
    EXPECT_NEAR(src_bytes, table_bytes, 128.0)
        << "stage " << m.stages()[i].name;
    total_table += table_bytes;
    total_sources += src_bytes;
  }
  EXPECT_NEAR(total_sources, total_table, 1024.0);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, VolumeMatch,
                         ::testing::ValuesIn(video::kAllLevels));

TEST(UseCaseSources, ReadWriteSplitMatchesTableI) {
  // Not just the stage totals: the read and write volumes individually must
  // match the Table I model.
  const auto m = model_for(video::H264Level::k40);
  const video::SurfaceLayout layout(m);
  auto sources = build_stage_sources(m, layout);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    std::uint64_t rd = 0, wr = 0;
    auto& src = *sources[i];
    while (!src.done()) {
      (src.head().is_write ? wr : rd) += 16;
      src.advance();
    }
    EXPECT_NEAR(static_cast<double>(rd), m.stages()[i].read_bits / 8.0, 96.0)
        << m.stages()[i].name << " reads";
    EXPECT_NEAR(static_cast<double>(wr), m.stages()[i].write_bits / 8.0, 96.0)
        << m.stages()[i].name << " writes";
  }
}

TEST(UseCaseSources, AddressesFallInsideExpectedSurfaces) {
  const auto m = model_for(video::H264Level::k31);
  const video::SurfaceLayout layout(m);
  auto sources = build_stage_sources(m, layout);
  // Stage 0 is Camera I/F: writes into bayer_capture only.
  auto& cam = *sources[0];
  const auto& bayer = layout.surface(video::SurfaceId::kBayerCapture);
  while (!cam.done()) {
    const auto r = cam.head();
    EXPECT_TRUE(r.is_write);
    EXPECT_GE(r.addr, bayer.base);
    EXPECT_LT(r.addr, bayer.end());
    cam.advance();
  }
}

TEST(UseCaseSources, EncoderReadsDominateItsTraffic) {
  const auto m = model_for(video::H264Level::k31);
  const video::SurfaceLayout layout(m);
  auto sources = build_stage_sources(m, layout);
  // Find the encoder stage source (same index as in the model).
  std::size_t enc_idx = 0;
  for (std::size_t i = 0; i < m.stages().size(); ++i) {
    if (m.stages()[i].id == video::StageId::kVideoEncoder) enc_idx = i;
  }
  auto& enc = *sources[enc_idx];
  std::uint64_t reads = 0, writes = 0;
  while (!enc.done()) {
    if (enc.head().is_write) {
      ++writes;
    } else {
      ++reads;
    }
    enc.advance();
  }
  EXPECT_GT(reads, 10 * writes);
}

TEST(UseCaseSources, MotionWindowOptionSwapsEncoderSource) {
  const auto m = model_for(video::H264Level::k31);
  const video::SurfaceLayout layout(m);
  LoadOptions opt;
  opt.motion_window_encoder = true;
  const auto sources = build_stage_sources(m, layout, opt);
  // Encoder stage splits into pattern source + bitstream source.
  EXPECT_EQ(sources.size(), m.stages().size() + 1);
  bool found = false;
  for (const auto& s : sources) {
    if (s->name() == "Video encoder") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(UseCaseSources, ChunkOptionControlsInterleaving) {
  const auto m = model_for(video::H264Level::k31);
  const video::SurfaceLayout layout(m);
  LoadOptions fine;
  fine.chunk_bytes = 16;
  LoadOptions coarse;
  coarse.chunk_bytes = 4096;
  auto src_f = build_stage_sources(m, layout, fine);
  auto src_c = build_stage_sources(m, layout, coarse);
  // Count direction switches in the preprocess stage (index 1).
  auto switches = [](TrafficSource& s) {
    int n = 0;
    bool last = s.head().is_write;
    for (int i = 0; i < 2000 && !s.done(); ++i) {
      if (s.head().is_write != last) {
        ++n;
        last = s.head().is_write;
      }
      s.advance();
    }
    return n;
  };
  EXPECT_GT(switches(*src_f[1]), 4 * switches(*src_c[1]));
}

}  // namespace
}  // namespace mcm::load
