#include "load/multi_stream_source.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mcm::load {
namespace {

TEST(MultiStream, SingleStreamSequential) {
  MultiStreamSource src("s", {{0x1000, 64, 0, false, 3}});
  std::uint64_t expect = 0x1000;
  int n = 0;
  while (!src.done()) {
    const ctrl::Request r = src.head();
    EXPECT_EQ(r.addr, expect);
    EXPECT_FALSE(r.is_write);
    EXPECT_EQ(r.source, 3);
    src.advance();
    expect += 16;
    ++n;
  }
  EXPECT_EQ(n, 4);
  EXPECT_EQ(src.total_bytes(), 64u);
}

TEST(MultiStream, VolumesRoundUpToBurst) {
  MultiStreamSource src("s", {{0, 50, 0, true, 0}});
  EXPECT_EQ(src.total_bytes(), 64u);  // 50 -> 64
}

TEST(MultiStream, CopyInterleavesAtChunks) {
  // 128 B read stream + 128 B write stream, 64 B chunks: R R R R W W W W ...
  MultiStreamSource src("copy", {{0, 128, 0, false, 0}, {0x10000, 128, 0, true, 1}},
                        /*chunk=*/64);
  std::vector<bool> pattern;
  while (!src.done()) {
    pattern.push_back(src.head().is_write);
    src.advance();
  }
  const std::vector<bool> expect = {false, false, false, false, true, true,
                                    true,  true,  false, false, false, false,
                                    true,  true,  true,  true};
  EXPECT_EQ(pattern, expect);
}

TEST(MultiStream, ProportionalForUnequalVolumes) {
  // Read 4x the write volume: reads should lead roughly 4:1 throughout.
  MultiStreamSource src("enc", {{0, 4096, 0, false, 0}, {0x10000, 1024, 0, true, 1}},
                        64);
  std::uint64_t reads = 0, writes = 0;
  std::uint64_t half_reads = 0, half_writes = 0;
  const std::uint64_t total = (4096 + 1024) / 16;
  std::uint64_t i = 0;
  while (!src.done()) {
    if (src.head().is_write) {
      ++writes;
    } else {
      ++reads;
    }
    ++i;
    if (i == total / 2) {
      half_reads = reads;
      half_writes = writes;
    }
    src.advance();
  }
  EXPECT_EQ(reads, 256u);
  EXPECT_EQ(writes, 64u);
  // Half way through, both streams are near half done.
  EXPECT_NEAR(static_cast<double>(half_reads) / 256.0, 0.5, 0.1);
  EXPECT_NEAR(static_cast<double>(half_writes) / 64.0, 0.5, 0.1);
}

TEST(MultiStream, WindowWrapsForMultiPassStreams) {
  // 256 B volume over a 64 B window: addresses cycle 4 times.
  MultiStreamSource src("wrap", {{0x2000, 256, 64, false, 0}});
  std::map<std::uint64_t, int> hits;
  while (!src.done()) {
    ++hits[src.head().addr];
    src.advance();
  }
  EXPECT_EQ(hits.size(), 4u);
  for (const auto& [addr, count] : hits) {
    EXPECT_GE(addr, 0x2000u);
    EXPECT_LT(addr, 0x2040u);
    EXPECT_EQ(count, 4);
  }
}

TEST(MultiStream, EmptyStreamsAreDropped) {
  MultiStreamSource src("e", {{0, 0, 0, false, 0}, {64, 32, 0, true, 1}});
  EXPECT_EQ(src.total_bytes(), 32u);
  EXPECT_FALSE(src.done());
  EXPECT_TRUE(src.head().is_write);
}

TEST(MultiStream, AllEmptyIsDone) {
  MultiStreamSource src("none", {});
  EXPECT_TRUE(src.done());
  EXPECT_EQ(src.total_bytes(), 0u);
}

TEST(MultiStream, StartTimeStampsArrivals) {
  MultiStreamSource src("t", {{0, 64, 0, false, 0}});
  src.set_start(Time::from_ms(5.0));
  EXPECT_EQ(src.head().arrival, Time::from_ms(5.0));
}

TEST(MultiStream, PacingSpreadsArrivals) {
  MultiStreamSource src("p", {{0, 160, 0, false, 0}});
  src.set_start(Time::zero());
  src.set_pacing(Time::from_ms(1.0));
  Time prev = Time{-1};
  while (!src.done()) {
    const Time a = src.head().arrival;
    EXPECT_GE(a, prev);
    EXPECT_LE(a, Time::from_ms(1.0));
    prev = a;
    src.advance();
  }
  EXPECT_GT(prev, Time::from_ms(0.5));  // last arrival near the end
}

}  // namespace
}  // namespace mcm::load
