#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mcm::exec {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, RunBatchComputesAllResults) {
  ThreadPool pool(3);
  std::vector<int> out(257, 0);
  std::vector<ThreadPool::Task> tasks;
  for (std::size_t i = 0; i < out.size(); ++i) {
    tasks.push_back([&out, i] { out[i] = static_cast<int>(i) * 2; });
  }
  pool.run_batch(std::move(tasks));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, SingleWorkerStillRunsEverything) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&count] { ++count; });
  }
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, IdleWorkerStealsFromBlockedPeer) {
  // Two workers; the first submitted task blocks one worker indefinitely.
  // Round-robin submission then parks half of the follow-up tasks on the
  // blocked worker's deque — the free worker must steal them, or the
  // counter below never reaches 10.
  ThreadPool pool(2);
  std::atomic<bool> gate{false};
  std::atomic<int> count{0};
  pool.submit([&gate] {
    while (!gate.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < 10 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 10) << "free worker did not steal parked tasks";
  gate.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, FirstExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 3) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // remaining tasks still ran
  // The pool stays usable and the error is consumed.
  pool.submit([&ran] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 17);
}

TEST(ThreadPool, ThreadsFromEnvParsesPositiveIntegers) {
  ::setenv("MCM_THREADS", "6", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(), 6u);
  EXPECT_EQ(ThreadPool::default_thread_count(), 6u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0), 6u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(2), 2u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 6u);

  ::setenv("MCM_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(), std::nullopt);
  ::setenv("MCM_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(), std::nullopt);
  ::setenv("MCM_THREADS", "-3", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(), std::nullopt);
  ::unsetenv("MCM_THREADS");
  EXPECT_EQ(ThreadPool::threads_from_env(), std::nullopt);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    ++count;
    for (int i = 0; i < 8; ++i) {
      pool.submit([&count] { ++count; });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 9);
}

}  // namespace
}  // namespace mcm::exec
