// Trace toolbox for the workload subsystem.
//
//   mcm_trace convert IN OUT [--from F] [--to F]
//       Convert between the three trace formats (mcm-text, ramulator,
//       binary). Input format is sniffed unless --from is given; output
//       format defaults to the file extension (.trace = mcm-text,
//       .ramtrace = ramulator, .tracebin/.bin = binary) unless --to is
//       given. Converting to ramulator drops arrivals and source ids.
//
//   mcm_trace record SPEC OUT [--to F]
//       Compile an mcm.workload/v1 scenario and record its composed
//       per-frame request stream (merge-order arrivals) as a trace.
//
//   mcm_trace stat IN [--from F] [--channels N] [--interleave G]
//       Print footprint, R/W mix, per-channel spread (default: 4 channels
//       at 16 B granularity), and an arrival histogram.
//
//   mcm_trace replay SPEC [--report FILE]
//       Compile + simulate the scenario through the sharded engine and
//       print the result summary; --report writes the deterministic
//       mcm.run_report/v1 JSON (also honors MCM_REPORT_DIR).
//
// Exit status: 0 = success, 1 = runtime failure (I/O, malformed trace),
// 2 = usage error.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "multichannel/interleaver.hpp"
#include "obs/run_report.hpp"
#include "workload/spec.hpp"
#include "workload/trace_format.hpp"
#include "workload/workload.hpp"

namespace {

using mcm::workload::TraceFormat;

[[noreturn]] void usage(int status) {
  std::fprintf(
      status == 0 ? stdout : stderr,
      "usage: mcm_trace <command> [args]\n"
      "  convert IN OUT [--from F] [--to F]   convert between trace formats\n"
      "  record SPEC OUT [--to F]             record a workload scenario\n"
      "  stat IN [--from F] [--channels N] [--interleave G]\n"
      "                                       footprint / R-W mix / spread\n"
      "  replay SPEC [--report FILE]          simulate a workload scenario\n"
      "formats: mcm-text, ramulator, binary (convert/stat sniff the input;\n"
      "output format follows the extension: .trace .ramtrace .tracebin)\n");
  std::exit(status);
}

TraceFormat parse_format_arg(const char* value) {
  const auto f = mcm::workload::parse_trace_format(value);
  if (!f) {
    std::fprintf(stderr, "mcm_trace: unknown format '%s'\n", value);
    std::exit(2);
  }
  return *f;
}

/// Output format by explicit flag, else by file extension.
TraceFormat output_format(const std::string& path,
                          std::optional<TraceFormat> explicit_format) {
  if (explicit_format) return *explicit_format;
  const auto dot = path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "ramtrace" || ext == "ram") return TraceFormat::kRamulator;
  if (ext == "tracebin" || ext == "bin") return TraceFormat::kBinary;
  return TraceFormat::kMcmText;
}

mcm::workload::WorkloadSpec load_spec_or_die(const std::string& path) {
  std::string error;
  const auto spec = mcm::workload::load_workload(path, &error);
  if (!spec) {
    std::fprintf(stderr, "mcm_trace: %s\n", error.c_str());
    std::exit(1);
  }
  return *spec;
}

int cmd_convert(const std::vector<std::string>& args,
                std::optional<TraceFormat> from, std::optional<TraceFormat> to) {
  if (args.size() != 2) usage(2);
  const auto requests = mcm::workload::read_trace_file(args[0], from);
  const TraceFormat out_format = output_format(args[1], to);
  mcm::workload::write_trace_file(args[1], out_format, requests);
  std::printf("mcm_trace: %s -> %s (%zu requests, %s)\n", args[0].c_str(),
              args[1].c_str(), requests.size(),
              std::string(to_string(out_format)).c_str());
  return 0;
}

int cmd_record(const std::vector<std::string>& args,
               std::optional<TraceFormat> to) {
  if (args.size() != 2) usage(2);
  const auto spec = load_spec_or_die(args[0]);
  const auto requests = mcm::workload::record_workload(spec);
  const TraceFormat out_format = output_format(args[1], to);
  mcm::workload::write_trace_file(args[1], out_format, requests);
  std::printf("mcm_trace: recorded workload '%s' -> %s (%zu requests, %s)\n",
              spec.name.c_str(), args[1].c_str(), requests.size(),
              std::string(to_string(out_format)).c_str());
  return 0;
}

int cmd_stat(const std::vector<std::string>& args,
             std::optional<TraceFormat> from, std::uint32_t channels,
             std::uint32_t interleave) {
  if (args.size() != 1) usage(2);
  const auto requests = mcm::workload::read_trace_file(args[0], from);
  if (requests.empty()) {
    std::printf("mcm_trace: %s: empty trace\n", args[0].c_str());
    return 0;
  }

  std::uint64_t reads = 0, writes = 0;
  std::uint64_t min_addr = ~std::uint64_t{0}, max_addr = 0;
  std::vector<std::uint64_t> per_channel(channels, 0);
  const mcm::multichannel::Interleaver il(channels, interleave);
  for (const auto& r : requests) {
    (r.is_write ? writes : reads)++;
    min_addr = std::min(min_addr, r.addr);
    max_addr = std::max(max_addr, r.addr);
    per_channel[il.route(r.addr).channel]++;
  }
  const double n = static_cast<double>(requests.size());
  const std::int64_t span_ps = requests.back().arrival.ps();

  std::printf("trace       %s\n", args[0].c_str());
  std::printf("requests    %zu (%" PRIu64 " reads, %" PRIu64
              " writes, %.1f %% writes)\n",
              requests.size(), reads, writes, 100.0 * static_cast<double>(writes) / n);
  std::printf("footprint   [0x%" PRIx64 ", 0x%" PRIx64 "] = %" PRIu64 " bytes\n",
              min_addr, max_addr, max_addr - min_addr);
  std::printf("time span   %" PRId64 " ps\n", span_ps);
  std::printf("channel spread (%u channels, %u B granularity):\n", channels,
              interleave);
  for (std::uint32_t c = 0; c < channels; ++c) {
    std::printf("  ch%-2u %10" PRIu64 "  (%5.1f %%)\n", c, per_channel[c],
                100.0 * static_cast<double>(per_channel[c]) / n);
  }

  // Arrival histogram: 10 equal bins over [0, span]; degenerate spans (all
  // requests at t=0, e.g. unpaced recordings) collapse into one bin.
  std::printf("arrival histogram:\n");
  if (span_ps <= 0) {
    std::printf("  [all requests arrive at 0 ps]\n");
  } else {
    constexpr int kBins = 10;
    std::uint64_t bins[kBins] = {};
    for (const auto& r : requests) {
      int b = static_cast<int>(r.arrival.ps() * kBins / (span_ps + 1));
      bins[std::clamp(b, 0, kBins - 1)]++;
    }
    for (int b = 0; b < kBins; ++b) {
      const std::int64_t lo = span_ps * b / kBins;
      const std::int64_t hi = span_ps * (b + 1) / kBins;
      std::printf("  [%12" PRId64 ", %12" PRId64 ") %10" PRIu64 "\n", lo, hi,
                  bins[b]);
    }
  }
  return 0;
}

int cmd_replay(const std::vector<std::string>& args, const std::string& report_path) {
  if (args.size() != 1) usage(2);
  const auto spec = load_spec_or_die(args[0]);
  const auto run = mcm::workload::run_workload(spec);

  std::printf("workload    %s (%zu tenants, %u channels @ %u MHz)\n",
              spec.name.c_str(), spec.tenants.size(), spec.channels,
              spec.freq_mhz);
  for (const auto& t : run.compiled.tenants) {
    std::printf("  tenant %-16s %-9s base 0x%" PRIx64 "  %10" PRIu64
                " requests  %12" PRIu64 " B\n",
                t.name.c_str(), t.kind.c_str(), t.partition_base, t.requests,
                t.bytes);
  }
  std::printf("requests    %" PRIu64 " per frame x %d frames\n",
              run.compiled.total_requests, spec.frames);
  std::printf("access time %.3f ms per frame (period %.3f ms, %s)\n",
              run.sim.access_time.seconds() * 1e3,
              run.sim.frame_period.seconds() * 1e3,
              run.sim.meets_realtime ? "meets real time" : "MISSES real time");
  std::printf("power       %.2f mW total (%.2f mW DRAM, %.2f mW interface)\n",
              run.sim.total_power_mw, run.sim.dram_power_mw,
              run.sim.interface_power_mw);
  std::printf("row hits    %.1f %%\n", 100.0 * run.sim.stats.row_hit_rate());

  mcm::obs::RunReport report("workload_" + spec.name);
  mcm::workload::export_workload_report(report, spec, run);
  if (!report_path.empty()) {
    if (!report.write_file(report_path)) {
      std::fprintf(stderr, "mcm_trace: cannot write report to %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("report      %s\n", report_path.c_str());
  } else {
    const std::string written = report.write_default();
    if (!written.empty()) std::printf("report      %s\n", written.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") usage(0);

  std::optional<TraceFormat> from;
  std::optional<TraceFormat> to;
  std::uint32_t channels = 4;
  std::uint32_t interleave = 16;
  std::string report_path;
  std::vector<std::string> positional;

  for (int i = 2; i < argc; ++i) {
    const auto value = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mcm_trace: %s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (const char* v = value("--from")) {
      from = parse_format_arg(v);
    } else if (const char* v = value("--to")) {
      to = parse_format_arg(v);
    } else if (const char* v = value("--channels")) {
      channels = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
      if (channels == 0) {
        std::fprintf(stderr, "mcm_trace: --channels must be positive\n");
        return 2;
      }
    } else if (const char* v = value("--interleave")) {
      interleave = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
      if (interleave == 0) {
        std::fprintf(stderr, "mcm_trace: --interleave must be positive\n");
        return 2;
      }
    } else if (const char* v = value("--report")) {
      report_path = v;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "mcm_trace: unknown option '%s'\n", argv[i]);
      usage(2);
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  try {
    if (command == "convert") return cmd_convert(positional, from, to);
    if (command == "record") return cmd_record(positional, to);
    if (command == "stat") return cmd_stat(positional, from, channels, interleave);
    if (command == "replay") return cmd_replay(positional, report_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcm_trace: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "mcm_trace: unknown command '%s'\n", command.c_str());
  usage(2);
}
