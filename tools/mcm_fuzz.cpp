// Property-based differential fuzzer: generate random scenarios, run each
// through the production simulator and the golden reference model, and
// compare every observable (per-request completion times via the trace
// spans, per-bank counters, energy-ledger totals, frame bookkeeping). On a
// mismatch the failing case is shrunk to a minimal repro and saved as
// `mcm.repro/v1` JSON for replay.
//
//   mcm_fuzz --cases 500 --seed 1            # fuzz 500 cases (CI smoke job)
//   mcm_fuzz --case-seed 0xdeadbeef          # rerun one generated case
//   mcm_fuzz --replay repro.json             # rerun a saved repro
//   mcm_fuzz --cases 50 --seed 1 --inject ignore-twtr --expect-mismatch
//   mcm_fuzz --cases 200 --generators       # sample workload/ generators too
//   mcm_fuzz --cases 500 --classes          # heterogeneous channel classes
//
// Exit status: 0 = every case agreed (or, with --expect-mismatch, at least
// one case diverged); 1 = unexpected result; 2 = usage/setup error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "verify/differ.hpp"
#include "verify/scenario.hpp"
#include "verify/shrink.hpp"

namespace {

using mcm::verify::Scenario;

struct Options {
  std::uint64_t cases = 100;
  std::uint64_t seed = 1;
  std::optional<std::uint64_t> case_seed;
  std::string inject;
  std::string out = "mcm_fuzz_failure.json";
  std::string replay;
  bool expect_mismatch = false;
  bool generators = false;
  bool classes = false;
  std::uint64_t shrink_attempts = 4000;
};

[[noreturn]] void usage(const char* argv0, int status) {
  std::fprintf(
      status == 0 ? stdout : stderr,
      "usage: %s [options]\n"
      "  --cases N          scenarios to fuzz (default 100)\n"
      "  --seed S           master seed; case seeds derive from it (default 1)\n"
      "  --case-seed X      run exactly one generated scenario\n"
      "  --inject BUG       break the reference model: ignore-twtr,\n"
      "                     ignore-tras, free-powerdown-exit\n"
      "  --out FILE         where to write the shrunken repro JSON\n"
      "  --replay FILE      run a saved mcm.repro/v1 scenario instead\n"
      "  --expect-mismatch  invert the exit status (harness self-test)\n"
      "  --generators       draw ~half the stage streams from the workload\n"
      "                     subsystem's synthetic generators\n"
      "  --classes          draw random per-channel device classes (all-fast,\n"
      "                     all-slow, mixed, vault-grouped) per scenario\n"
      "  --shrink-attempts N  oracle budget for the shrinker (default 4000)\n",
      argv0);
  std::exit(status);
}

std::uint64_t parse_u64(const char* s, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "mcm_fuzz: bad value '%s' for %s\n", s, flag);
    std::exit(2);
  }
  return v;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) -> const char* {
      if (std::strcmp(argv[i], name) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mcm_fuzz: %s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else if (std::strcmp(argv[i], "--expect-mismatch") == 0) {
      opt.expect_mismatch = true;
    } else if (std::strcmp(argv[i], "--generators") == 0) {
      opt.generators = true;
    } else if (std::strcmp(argv[i], "--classes") == 0) {
      opt.classes = true;
    } else if (const char* v = arg("--cases")) {
      opt.cases = parse_u64(v, "--cases");
    } else if (const char* v = arg("--seed")) {
      opt.seed = parse_u64(v, "--seed");
    } else if (const char* v = arg("--case-seed")) {
      opt.case_seed = parse_u64(v, "--case-seed");
    } else if (const char* v = arg("--inject")) {
      opt.inject = v;
    } else if (const char* v = arg("--out")) {
      opt.out = v;
    } else if (const char* v = arg("--replay")) {
      opt.replay = v;
    } else if (const char* v = arg("--shrink-attempts")) {
      opt.shrink_attempts = parse_u64(v, "--shrink-attempts");
    } else {
      std::fprintf(stderr, "mcm_fuzz: unknown argument '%s'\n", argv[i]);
      usage(argv[0], 2);
    }
  }
  return opt;
}

/// Oracle shared by the fuzz loop and the shrinker. Production-side throws
/// (bad shrunken config) mean "not a usable candidate", reported as
/// agreement so the shrinker backs off; reference invariant failures are
/// mismatches (diff_scenario already maps those).
std::optional<std::string> oracle(const Scenario& s) {
  try {
    return mcm::verify::diff_scenario(s);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Returns true when the scenario mismatches (after printing + shrinking).
bool handle_case(const Scenario& scenario, const Options& opt) {
  std::optional<std::string> mismatch;
  try {
    mismatch = mcm::verify::diff_scenario(scenario);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcm_fuzz: case seed 0x%llx: simulator error: %s\n",
                 static_cast<unsigned long long>(scenario.seed), e.what());
    return true;
  }
  if (!mismatch.has_value()) return false;

  std::fprintf(stderr,
               "mcm_fuzz: MISMATCH at case seed 0x%llx (%llu requests):\n  %s\n",
               static_cast<unsigned long long>(scenario.seed),
               static_cast<unsigned long long>(scenario.total_requests()),
               mismatch->c_str());
  std::fprintf(stderr, "mcm_fuzz: shrinking (budget %llu runs)...\n",
               static_cast<unsigned long long>(opt.shrink_attempts));
  const mcm::verify::ShrinkResult shrunk = mcm::verify::shrink_scenario(
      scenario, *mismatch, oracle, opt.shrink_attempts);
  std::fprintf(stderr,
               "mcm_fuzz: shrunk to %llu requests in %llu runs:\n  %s\n",
               static_cast<unsigned long long>(shrunk.scenario.total_requests()),
               static_cast<unsigned long long>(shrunk.attempts),
               shrunk.mismatch.c_str());
  if (mcm::verify::save_scenario(shrunk.scenario, opt.out)) {
    std::fprintf(stderr, "mcm_fuzz: repro written to %s\n", opt.out.c_str());
    std::fprintf(stderr, "mcm_fuzz: replay with: mcm_fuzz --replay %s%s\n",
                 opt.out.c_str(),
                 shrunk.scenario.inject == mcm::verify::InjectedBug::kNone
                     ? ""
                     : "  (repro carries the injected bug)");
  } else {
    std::fprintf(stderr, "mcm_fuzz: cannot write repro to %s\n", opt.out.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  mcm::verify::InjectedBug inject = mcm::verify::InjectedBug::kNone;
  if (!opt.inject.empty()) {
    const auto parsed = mcm::verify::parse_injected_bug(opt.inject);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "mcm_fuzz: unknown --inject '%s'\n", opt.inject.c_str());
      return 2;
    }
    inject = *parsed;
  }

  bool mismatched = false;
  if (!opt.replay.empty()) {
    std::string error;
    const auto loaded = mcm::verify::load_scenario(opt.replay, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "mcm_fuzz: cannot load %s: %s\n", opt.replay.c_str(),
                   error.c_str());
      return 2;
    }
    Scenario s = *loaded;
    if (inject != mcm::verify::InjectedBug::kNone) s.inject = inject;
    std::printf("mcm_fuzz: replaying %s (%llu requests, inject=%s)\n",
                opt.replay.c_str(),
                static_cast<unsigned long long>(s.total_requests()),
                std::string(to_string(s.inject)).c_str());
    mismatched = handle_case(s, opt);
  } else if (opt.case_seed.has_value()) {
    Scenario s = mcm::verify::random_scenario(*opt.case_seed, opt.generators,
                                              opt.classes);
    s.inject = inject;
    std::printf("mcm_fuzz: case seed 0x%llx (%llu requests)\n",
                static_cast<unsigned long long>(*opt.case_seed),
                static_cast<unsigned long long>(s.total_requests()));
    mismatched = handle_case(s, opt);
  } else {
    std::printf("mcm_fuzz: %llu cases from master seed %llu%s\n",
                static_cast<unsigned long long>(opt.cases),
                static_cast<unsigned long long>(opt.seed),
                inject == mcm::verify::InjectedBug::kNone
                    ? ""
                    : " with an injected reference bug");
    mcm::Rng master(opt.seed);
    std::uint64_t requests_total = 0;
    for (std::uint64_t i = 0; i < opt.cases; ++i) {
      const std::uint64_t case_seed = master.next_u64();
      Scenario s =
          mcm::verify::random_scenario(case_seed, opt.generators, opt.classes);
      s.inject = inject;
      requests_total += s.total_requests();
      if (handle_case(s, opt)) {
        mismatched = true;
        break;  // one shrunken repro is the actionable artifact
      }
      if ((i + 1) % 100 == 0) {
        std::printf("mcm_fuzz: %llu/%llu cases clean (%llu requests)\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(opt.cases),
                    static_cast<unsigned long long>(requests_total));
        std::fflush(stdout);
      }
    }
    if (!mismatched) {
      std::printf("mcm_fuzz: all %llu cases agree (%llu requests compared)\n",
                  static_cast<unsigned long long>(opt.cases),
                  static_cast<unsigned long long>(requests_total));
    }
  }

  if (opt.expect_mismatch) {
    if (mismatched) {
      std::printf("mcm_fuzz: mismatch detected, as expected\n");
      return 0;
    }
    std::fprintf(stderr, "mcm_fuzz: expected a mismatch but every case agreed\n");
    return 1;
  }
  return mismatched ? 1 : 0;
}
