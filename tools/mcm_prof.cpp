// mcm_prof: inspect and compare engine self-profiles (obs/prof).
//
//   mcm_prof show <profile.json> [--cell LABEL]
//       Pretty-print a profile: per-phase calls, wall/self time, p50/p95.
//   mcm_prof diff <old.json> <new.json> [--cell LABEL] [--tolerance F]
//                 [--fail-on-regression]
//       Per-phase deltas between two profiles plus a regression verdict.
//       Also accepts two BENCH_hotpath.json snapshots (requests/s deltas).
//   mcm_prof contention <profile.json> [--cell LABEL] [--baseline-cell LABEL]
//       Aggregate the sharded engine's per-worker wait phases (cursor
//       handoff, threshold-ring full, barrier) and the data-oriented kernel
//       phases (ctrl/readiness_scan, ctrl/arbitration, ctrl/ledger_flush,
//       sim/arena_reset) when the profile recorded them. With
//       --baseline-cell, report how much of the wall-clock gap between the
//       two cells the measured waits explain.
//   mcm_prof trace <profile.json> <out.json> [--cell LABEL]
//       Convert the embedded spans to Chrome trace_events JSON
//       (chrome://tracing, ui.perfetto.dev).
//
// Input schemas are auto-detected: mcm.prof/v1 (one profile, as written by
// FrameSimOptions::prof_path), mcm.prof_set/v1 (per-cell profiles, as
// written by `bench_hotpath --profile`), and mcm.bench_hotpath/v1 (diff
// only).
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace {

using namespace mcm;
using obs::prof::ProfilePhase;
using obs::prof::ProfileReport;

struct LoadedProfile {
  std::string label;  // empty for a bare mcm.prof/v1 file
  ProfileReport report;
  int iters = 0;             // prof_set cell metadata (0 when absent)
  double wall_ms_best = 0;   //
  double wall_ms_mean = 0;   //
};

struct LoadedFile {
  std::string path;
  std::string schema;
  std::vector<LoadedProfile> profiles;
  // mcm.bench_hotpath/v1: label -> (requests_per_s, wall_ms_best)
  std::vector<std::pair<std::string, std::pair<double, double>>> bench;
};

std::optional<obs::JsonValue> parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mcm_prof: cannot open '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  auto doc = obs::json_parse(ss.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "mcm_prof: '%s': %s\n", path.c_str(), error.c_str());
  }
  return doc;
}

std::optional<LoadedFile> load(const std::string& path) {
  const auto doc = parse_file(path);
  if (!doc) return std::nullopt;
  LoadedFile f;
  f.path = path;
  const obs::JsonValue* schema = doc->find("schema");
  f.schema = schema != nullptr ? schema->as_string() : "";

  if (f.schema == "mcm.prof/v1") {
    LoadedProfile p;
    if (!obs::prof::profile_from_json(*doc, p.report)) {
      std::fprintf(stderr, "mcm_prof: '%s': malformed mcm.prof/v1 document\n",
                   path.c_str());
      return std::nullopt;
    }
    f.profiles.push_back(std::move(p));
    return f;
  }

  if (f.schema == "mcm.prof_set/v1") {
    const obs::JsonValue* cells = doc->find("cells");
    for (std::size_t i = 0; cells != nullptr && i < cells->size(); ++i) {
      const obs::JsonValue& cell = *cells->at(i);
      LoadedProfile p;
      if (const auto* v = cell.find("label")) p.label = v->as_string();
      if (const auto* v = cell.find("iters")) p.iters = static_cast<int>(v->as_int());
      if (const auto* v = cell.find("wall_ms_best")) p.wall_ms_best = v->as_double();
      if (const auto* v = cell.find("wall_ms_mean")) p.wall_ms_mean = v->as_double();
      const obs::JsonValue* prof = cell.find("profile");
      if (prof == nullptr || !obs::prof::profile_from_json(*prof, p.report)) {
        std::fprintf(stderr, "mcm_prof: '%s': cell '%s' has no valid profile\n",
                     path.c_str(), p.label.c_str());
        return std::nullopt;
      }
      f.profiles.push_back(std::move(p));
    }
    return f;
  }

  if (f.schema == "mcm.bench_hotpath/v1") {
    const obs::JsonValue* cells = doc->find("cells");
    for (std::size_t i = 0; cells != nullptr && i < cells->size(); ++i) {
      const obs::JsonValue& cell = *cells->at(i);
      const auto* label = cell.find("label");
      const auto* rps = cell.find("requests_per_s");
      const auto* wall = cell.find("wall_ms_best");
      if (label == nullptr) continue;
      f.bench.emplace_back(
          label->as_string(),
          std::make_pair(rps != nullptr ? rps->as_double() : 0.0,
                         wall != nullptr ? wall->as_double() : 0.0));
    }
    return f;
  }

  std::fprintf(stderr, "mcm_prof: '%s': unrecognized schema '%s'\n",
               path.c_str(), f.schema.c_str());
  return std::nullopt;
}

/// Select one profile by label: exact match first, then unique substring.
const LoadedProfile* select_cell(const LoadedFile& f, const std::string& label) {
  if (f.profiles.empty()) return nullptr;
  if (label.empty()) return &f.profiles.front();
  for (const LoadedProfile& p : f.profiles) {
    if (p.label == label) return &p;
  }
  const LoadedProfile* found = nullptr;
  for (const LoadedProfile& p : f.profiles) {
    if (p.label.find(label) == std::string::npos) continue;
    if (found != nullptr) {
      std::fprintf(stderr, "mcm_prof: --cell '%s' is ambiguous in '%s'\n",
                   label.c_str(), f.path.c_str());
      return nullptr;
    }
    found = &p;
  }
  if (found == nullptr) {
    std::fprintf(stderr, "mcm_prof: no cell matching '%s' in '%s' (have:",
                 label.c_str(), f.path.c_str());
    for (const LoadedProfile& p : f.profiles) {
      std::fprintf(stderr, " %s", p.label.c_str());
    }
    std::fprintf(stderr, ")\n");
  }
  return found;
}

/// A phase with no recorded time is a pure counter (prof::count) or a value
/// histogram (prof::value): report its calls/percentiles, not ms.
bool is_counter_like(const ProfilePhase& p) { return p.wall_ns == 0; }

double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

void show_profile(const LoadedProfile& p) {
  if (!p.label.empty()) {
    std::printf("cell %s  (%d iters, best %.2f ms, mean %.2f ms)\n",
                p.label.c_str(), p.iters, p.wall_ms_best, p.wall_ms_mean);
  }
  std::vector<const ProfilePhase*> rows;
  rows.reserve(p.report.phases.size());
  for (const ProfilePhase& ph : p.report.phases) rows.push_back(&ph);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->wall_ns != b->wall_ns) return a->wall_ns > b->wall_ns;
    return a->name < b->name;
  });

  std::printf("%-32s %12s %12s %12s %10s %10s %10s\n", "phase", "calls",
              "wall [ms]", "self [ms]", "p50 [us]", "p95 [us]", "max [ms]");
  for (const ProfilePhase* ph : rows) {
    if (is_counter_like(*ph)) continue;
    std::printf("%-32s %12llu %12.3f %12.3f %10.1f %10.1f %10.3f\n",
                ph->name.c_str(), static_cast<unsigned long long>(ph->calls),
                ms(ph->wall_ns), ms(ph->self_ns), ph->p50 / 1e3, ph->p95 / 1e3,
                ms(ph->max_ns));
  }
  bool header = false;
  for (const ProfilePhase* ph : rows) {
    if (!is_counter_like(*ph)) continue;
    if (!header) {
      std::printf("%-32s %12s %22s\n", "counter/value", "count", "p50 / p95");
      header = true;
    }
    std::printf("%-32s %12llu %10.1f / %-10.1f\n", ph->name.c_str(),
                static_cast<unsigned long long>(ph->calls), ph->p50, ph->p95);
  }
  if (!p.report.thread_labels.empty()) {
    std::printf("threads:");
    for (const auto& [tid, label] : p.report.thread_labels) {
      std::printf(" %u=%s", tid, label.c_str());
    }
    std::printf("\n");
  }
  if (p.report.dropped_spans > 0) {
    std::printf("dropped spans: %llu\n",
                static_cast<unsigned long long>(p.report.dropped_spans));
  }
}

/// Per-run wall time of the profile, ms: the sim/run phase normalized by its
/// call count (multiple iterations accumulate into one profile). Falls back
/// to the cell's measured mean, then to the largest phase wall.
double per_run_wall_ms(const LoadedProfile& p) {
  if (const ProfilePhase* run = p.report.find("sim/run");
      run != nullptr && run->calls > 0) {
    return ms(run->wall_ns) / static_cast<double>(run->calls);
  }
  if (p.wall_ms_mean > 0) return p.wall_ms_mean;
  std::int64_t best = 0;
  for (const ProfilePhase& ph : p.report.phases) {
    best = std::max(best, ph.wall_ns);
  }
  return ms(best);
}

int diff_profiles(const LoadedProfile& a, const LoadedProfile& b,
                  double tolerance, bool fail_on_regression) {
  if (!a.label.empty() || !b.label.empty()) {
    std::printf("cell %s\n", (!b.label.empty() ? b.label : a.label).c_str());
  }

  struct Row {
    const ProfilePhase* oldp = nullptr;
    const ProfilePhase* newp = nullptr;
  };
  std::map<std::string, Row> rows;
  for (const ProfilePhase& ph : a.report.phases) rows[ph.name].oldp = &ph;
  for (const ProfilePhase& ph : b.report.phases) rows[ph.name].newp = &ph;

  // Normalize to per-run time so profiles with different iteration counts
  // compare fairly.
  const double runs_a = [&] {
    const ProfilePhase* run = a.report.find("sim/run");
    return run != nullptr && run->calls > 0 ? static_cast<double>(run->calls) : 1.0;
  }();
  const double runs_b = [&] {
    const ProfilePhase* run = b.report.find("sim/run");
    return run != nullptr && run->calls > 0 ? static_cast<double>(run->calls) : 1.0;
  }();

  std::vector<std::pair<double, std::string>> printed;  // |delta| -> line
  for (const auto& [name, row] : rows) {
    const bool counter =
        (row.oldp != nullptr && is_counter_like(*row.oldp)) ||
        (row.newp != nullptr && is_counter_like(*row.newp));
    char line[256];
    double weight = 0;
    if (counter) {
      const double o = row.oldp != nullptr
                           ? static_cast<double>(row.oldp->calls) / runs_a
                           : 0.0;
      const double n = row.newp != nullptr
                           ? static_cast<double>(row.newp->calls) / runs_b
                           : 0.0;
      const double delta = o > 0 ? (n / o - 1.0) * 100.0 : 0.0;
      std::snprintf(line, sizeof line, "  %-32s %14.0f -> %14.0f  (%+.1f %%)",
                    name.c_str(), o, n, delta);
      weight = std::fabs(n - o) * 1e-6;  // counters rank below time deltas
    } else {
      const double o = row.oldp != nullptr ? ms(row.oldp->wall_ns) / runs_a : 0.0;
      const double n = row.newp != nullptr ? ms(row.newp->wall_ns) / runs_b : 0.0;
      const double delta = o > 0 ? (n / o - 1.0) * 100.0 : 0.0;
      if (row.oldp == nullptr) {
        std::snprintf(line, sizeof line,
                      "  %-32s %14s -> %12.3f ms (new phase)", name.c_str(),
                      "-", n);
      } else if (row.newp == nullptr) {
        std::snprintf(line, sizeof line,
                      "  %-32s %12.3f ms -> %14s (phase gone)", name.c_str(), o,
                      "-");
      } else {
        std::snprintf(line, sizeof line,
                      "  %-32s %12.3f ms -> %9.3f ms  (%+.1f %%)", name.c_str(),
                      o, n, delta);
      }
      weight = std::fabs(n - o);
    }
    printed.emplace_back(weight, line);
  }
  std::sort(printed.begin(), printed.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  std::printf("  %-32s %15s    %-12s\n", "phase", "old (per run)", "new");
  for (const auto& [w, line] : printed) std::printf("%s\n", line.c_str());

  const double wall_a = per_run_wall_ms(a);
  const double wall_b = per_run_wall_ms(b);
  const double ratio = wall_a > 0 ? wall_b / wall_a : 1.0;
  const bool regressed = ratio > 1.0 + tolerance;
  std::printf("  per-run wall: %.3f ms -> %.3f ms (%+.1f %%), tolerance %.0f %%\n",
              wall_a, wall_b, (ratio - 1.0) * 100.0, tolerance * 100.0);
  std::printf("  verdict: %s\n", regressed ? "REGRESSION" : "ok");
  return regressed && fail_on_regression ? 1 : 0;
}

int diff_bench(const LoadedFile& a, const LoadedFile& b, double tolerance,
               bool fail_on_regression) {
  std::printf("%-24s %16s %16s\n", "cell", "old req/s", "new req/s");
  bool regressed = false;
  for (const auto& [label, nums] : b.bench) {
    const auto [new_rps, new_wall] = nums;
    double old_rps = 0;
    for (const auto& [l, n] : a.bench) {
      if (l == label) old_rps = n.first;
    }
    if (old_rps <= 0) {
      std::printf("%-24s %16s %16.0f  (new cell)\n", label.c_str(), "-", new_rps);
      continue;
    }
    const double ratio = new_rps / old_rps;
    const bool bad = ratio < 1.0 - tolerance;
    regressed = regressed || bad;
    std::printf("%-24s %16.0f %16.0f  (%+.1f %%)%s\n", label.c_str(), old_rps,
                new_rps, (ratio - 1.0) * 100.0, bad ? " REGRESSION" : "");
  }
  for (const auto& [label, nums] : a.bench) {
    bool present = false;
    for (const auto& [l, n] : b.bench) present = present || l == label;
    if (!present) std::printf("%-24s missing from new snapshot\n", label.c_str());
  }
  std::printf("verdict: %s (tolerance %.0f %%)\n",
              regressed ? "REGRESSION" : "ok", tolerance * 100.0);
  return regressed && fail_on_regression ? 1 : 0;
}

struct WorkerWaits {
  std::int64_t feed_ns = 0, drain_ns = 0;
  std::int64_t handoff_ns = 0, ring_ns = 0, barrier_ns = 0;
  std::uint64_t handoff_calls = 0, ring_calls = 0, barrier_calls = 0;
  std::uint64_t retired = 0, folded = 0;
  double occupancy_p95 = 0;
  // Epoch-batched engine phases (zero when the per-request protocol ran).
  std::int64_t speculate_ns = 0, validate_ns = 0, snapshot_ns = 0;
  std::uint64_t publishes = 0;
  double spec_depth_p50 = 0, spec_depth_p95 = 0;
};

/// Parse "engine/w<N>/<kind>" phases into per-worker rows.
std::map<unsigned, WorkerWaits> worker_waits(const ProfileReport& rep) {
  std::map<unsigned, WorkerWaits> out;
  for (const ProfilePhase& ph : rep.phases) {
    const std::string_view name = ph.name;
    if (name.rfind("engine/w", 0) != 0) continue;
    const std::size_t slash = name.find('/', 8);
    if (slash == std::string_view::npos) continue;
    unsigned w = 0;
    bool numeric = slash > 8;
    for (std::size_t i = 8; i < slash; ++i) {
      if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
        numeric = false;
        break;
      }
      w = w * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (!numeric) continue;
    const std::string_view kind = name.substr(slash + 1);
    WorkerWaits& ww = out[w];
    if (kind == "feed") {
      ww.feed_ns = ph.wall_ns;
    } else if (kind == "drain") {
      ww.drain_ns = ph.wall_ns;
    } else if (kind == "handoff_wait") {
      ww.handoff_ns = ph.wall_ns;
      ww.handoff_calls = ph.calls;
    } else if (kind == "ring_full_wait") {
      ww.ring_ns = ph.wall_ns;
      ww.ring_calls = ph.calls;
    } else if (kind == "barrier_wait") {
      ww.barrier_ns = ph.wall_ns;
      ww.barrier_calls = ph.calls;
    } else if (kind == "retired") {
      ww.retired = ph.calls;
    } else if (kind == "thresholds_folded") {
      ww.folded = ph.calls;
    } else if (kind == "ring_occupancy") {
      ww.occupancy_p95 = ph.p95;
    } else if (kind == "speculate") {
      ww.speculate_ns = ph.wall_ns;
    } else if (kind == "validate") {
      ww.validate_ns = ph.wall_ns;
    } else if (kind == "snapshot") {
      ww.snapshot_ns = ph.wall_ns;
    } else if (kind == "publishes") {
      ww.publishes = ph.calls;
    } else if (kind == "spec_depth") {
      ww.spec_depth_p50 = ph.p50;
      ww.spec_depth_p95 = ph.p95;
    }
  }
  return out;
}

int contention(const LoadedProfile& p, const LoadedProfile* baseline) {
  const auto waits = worker_waits(p.report);
  if (waits.empty()) {
    std::printf("no engine/w* phases in this profile (run with profiling "
                "enabled and sim_threads >= 1)\n");
    return 1;
  }
  if (!p.label.empty()) std::printf("cell %s\n", p.label.c_str());
  std::printf("%-8s %10s %10s %14s %14s %14s %12s %10s\n", "worker",
              "feed [ms]", "drain [ms]", "handoff [ms]", "ring_full [ms]",
              "barrier [ms]", "retired", "occ p95");
  std::int64_t total_wait_ns = 0;
  std::int64_t max_wait_ns = 0;  // critical-path wait: slowest worker
  for (const auto& [w, ww] : waits) {
    std::printf("w%-7u %10.2f %10.2f %9.2f/%-6llu %9.2f/%-6llu %9.2f/%-6llu "
                "%12llu %10.1f\n",
                w, ms(ww.feed_ns), ms(ww.drain_ns), ms(ww.handoff_ns),
                static_cast<unsigned long long>(ww.handoff_calls),
                ms(ww.ring_ns), static_cast<unsigned long long>(ww.ring_calls),
                ms(ww.barrier_ns),
                static_cast<unsigned long long>(ww.barrier_calls),
                static_cast<unsigned long long>(ww.retired), ww.occupancy_p95);
    const std::int64_t wait = ww.handoff_ns + ww.ring_ns + ww.barrier_ns;
    total_wait_ns += wait;
    max_wait_ns = std::max(max_wait_ns, wait);
  }

  // Epoch-batched engine attribution (absent for per-request runs).
  const ProfilePhase* epochs = p.report.find("engine/epoch_publish");
  const ProfilePhase* rollback = p.report.find("engine/rollback");
  const ProfilePhase* proven = p.report.find("engine/proven_positions");
  const double runs = [&] {
    const ProfilePhase* run = p.report.find("sim/run");
    return run != nullptr && run->calls > 0 ? static_cast<double>(run->calls)
                                            : 1.0;
  }();
  if (epochs != nullptr && epochs->calls > 0) {
    std::printf("%-8s %12s %12s %12s %12s %18s\n", "worker", "spec [ms]",
                "valid [ms]", "snap [ms]", "publishes", "spec depth p50/p95");
    std::uint64_t total_publishes = 0;
    for (const auto& [w, ww] : waits) {
      std::printf("w%-7u %12.2f %12.2f %12.2f %12llu %10.0f / %-6.0f\n", w,
                  ms(ww.speculate_ns), ms(ww.validate_ns), ms(ww.snapshot_ns),
                  static_cast<unsigned long long>(ww.publishes),
                  ww.spec_depth_p50, ww.spec_depth_p95);
      total_publishes += ww.publishes;
    }
    std::printf("epochs: %.0f chunk(s)/run, %.1f publishes/chunk, "
                "%.0f proven position(s)/run, serial step %.2f ms/run\n",
                static_cast<double>(epochs->calls) / runs,
                static_cast<double>(total_publishes) /
                    static_cast<double>(epochs->calls),
                proven != nullptr
                    ? static_cast<double>(proven->calls) / runs
                    : 0.0,
                ms(epochs->wall_ns) / runs);
    if (rollback != nullptr && rollback->calls > 0) {
      std::printf("rollbacks: %.1f/run, serial replay %.2f ms/run\n",
                  static_cast<double>(rollback->calls) / runs,
                  ms(rollback->wall_ns) / runs);
    } else {
      std::printf("rollbacks: none\n");
    }
  }

  // Data-oriented kernel attribution: the controllers tally their SoA
  // readiness scans, FR-FCFS arbitration picks and batched ledger flushes,
  // and the frame loop its arena rewinds, whichever engine protocol ran.
  {
    const char* kernel_phases[] = {"ctrl/readiness_scan", "ctrl/arbitration",
                                   "ctrl/ledger_flush", "sim/arena_reset"};
    bool header = false;
    for (const char* name : kernel_phases) {
      const ProfilePhase* ph = p.report.find(name);
      if (ph == nullptr || ph->calls == 0) continue;
      if (!header) {
        std::printf("%-22s %14s %14s %14s\n", "kernel", "calls/run",
                    "wall [ms/run]", "per call [us]");
        header = true;
      }
      std::printf("%-22s %14.0f %14.3f %14.3f\n", name,
                  static_cast<double>(ph->calls) / runs,
                  ms(ph->wall_ns) / runs,
                  static_cast<double>(ph->wall_ns) / 1e3 /
                      static_cast<double>(ph->calls));
    }
  }

  const double wait_per_run_ms = ms(total_wait_ns) / runs;
  const double crit_wait_per_run_ms = ms(max_wait_ns) / runs;
  const double workers = static_cast<double>(waits.size());
  std::printf("total wait (handoff + ring_full + barrier, all workers): "
              "%.2f ms/run over %.0f run(s); slowest worker %.2f ms/run\n",
              wait_per_run_ms, runs, crit_wait_per_run_ms);

  if (baseline != nullptr) {
    // Workers wait concurrently, so the critical-path (slowest-worker) wait
    // is what shows up on the wall clock; summing across workers would
    // overstate the gap more the more workers the cell has, making cells
    // with different worker counts incomparable.
    const auto base_waits = worker_waits(baseline->report);
    const double base_ms = per_run_wall_ms(*baseline);
    const double cur_ms = per_run_wall_ms(p);
    const double gap = cur_ms - base_ms;
    std::printf("baseline cell %s (%zu worker(s)): %.2f ms/run vs %.2f ms/run "
                "(%.0f worker(s)) -> gap %.2f ms\n",
                baseline->label.c_str(), base_waits.size(), base_ms, cur_ms,
                workers, gap);
    if (gap > 0) {
      std::printf("slowest-worker wait explains %.0f %% of the gap "
                  "(all-worker sum: %.0f %%)\n",
                  crit_wait_per_run_ms / gap * 100.0,
                  wait_per_run_ms / gap * 100.0);
    } else {
      std::printf("no slowdown vs baseline; slowest-worker wait is "
                  "%.2f ms/run\n",
                  crit_wait_per_run_ms);
    }
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: mcm_prof <command> [args]\n"
      "  show <profile.json> [--cell LABEL]\n"
      "  diff <old.json> <new.json> [--cell LABEL] [--tolerance F]\n"
      "       [--fail-on-regression]\n"
      "  contention <profile.json> [--cell LABEL] [--baseline-cell LABEL]\n"
      "  trace <profile.json> <out.json> [--cell LABEL]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> positional;
  std::string cell;
  std::string baseline_cell;
  double tolerance = 0.20;
  bool fail_on_regression = false;
  if (const char* env = std::getenv("MCM_PERF_TOLERANCE")) {
    tolerance = std::strtod(env, nullptr);
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cell") == 0 && i + 1 < argc) {
      cell = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline-cell") == 0 && i + 1 < argc) {
      baseline_cell = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--fail-on-regression") == 0) {
      fail_on_regression = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "mcm_prof: unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  if (cmd == "show" && positional.size() == 1) {
    const auto f = load(positional[0]);
    if (!f) return 2;
    if (f->profiles.empty()) {
      std::fprintf(stderr, "mcm_prof: '%s' holds no profiles\n",
                   f->path.c_str());
      return 2;
    }
    if (cell.empty() && f->profiles.size() > 1) {
      for (std::size_t i = 0; i < f->profiles.size(); ++i) {
        if (i > 0) std::printf("\n");
        show_profile(f->profiles[i]);
      }
    } else {
      const LoadedProfile* p = select_cell(*f, cell);
      if (p == nullptr) return 2;
      show_profile(*p);
    }
    return 0;
  }

  if (cmd == "diff" && positional.size() == 2) {
    const auto a = load(positional[0]);
    const auto b = load(positional[1]);
    if (!a || !b) return 2;
    if (!a->bench.empty() || !b->bench.empty()) {
      if (a->bench.empty() || b->bench.empty()) {
        std::fprintf(stderr,
                     "mcm_prof: cannot diff a bench snapshot against a "
                     "profile\n");
        return 2;
      }
      return diff_bench(*a, *b, tolerance, fail_on_regression);
    }
    // Profile vs profile: diff matching cells (all common labels, or the one
    // --cell selects).
    if (!cell.empty() || a->profiles.size() == 1) {
      const LoadedProfile* pa = select_cell(*a, cell);
      const LoadedProfile* pb = select_cell(*b, cell);
      if (pa == nullptr || pb == nullptr) return 2;
      return diff_profiles(*pa, *pb, tolerance, fail_on_regression);
    }
    int rc = 0;
    bool any = false;
    for (const LoadedProfile& pa : a->profiles) {
      const LoadedProfile* pb = nullptr;
      for (const LoadedProfile& q : b->profiles) {
        if (q.label == pa.label) pb = &q;
      }
      if (pb == nullptr) continue;
      if (any) std::printf("\n");
      any = true;
      rc |= diff_profiles(pa, *pb, tolerance, fail_on_regression);
    }
    if (!any) {
      std::fprintf(stderr, "mcm_prof: no common cells between the inputs\n");
      return 2;
    }
    return rc;
  }

  if (cmd == "contention" && positional.size() == 1) {
    const auto f = load(positional[0]);
    if (!f) return 2;
    const LoadedProfile* p = select_cell(*f, cell);
    if (p == nullptr) return 2;
    const LoadedProfile* base = nullptr;
    if (!baseline_cell.empty()) {
      base = select_cell(*f, baseline_cell);
      if (base == nullptr) return 2;
    }
    return contention(*p, base);
  }

  if (cmd == "trace" && positional.size() == 2) {
    const auto f = load(positional[0]);
    if (!f) return 2;
    const LoadedProfile* p = select_cell(*f, cell);
    if (p == nullptr) return 2;
    if (p->report.spans.empty()) {
      std::fprintf(stderr,
                   "mcm_prof: profile has no spans (written with "
                   "with_spans=false?)\n");
      return 2;
    }
    std::ofstream out(positional[1]);
    if (!out) {
      std::fprintf(stderr, "mcm_prof: cannot write '%s'\n",
                   positional[1].c_str());
      return 2;
    }
    p->report.write_chrome_trace(out);
    std::printf("wrote %zu spans to %s\n", p->report.spans.size(),
                positional[1].c_str());
    return 0;
  }

  usage();
  return 2;
}
