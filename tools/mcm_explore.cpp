// mcm_explore: design-space exploration CLI. Expands an experiment spec
// (key-value file, or the paper's 120-point grid by default), runs it on the
// parallel orchestrator with optional analytic pre-screening, and reports
// per-level Pareto frontiers (average power vs per-frame access time) plus
// the Section V minimum-channel table. Results export as
// <name>.report.json (schema mcm.explore/v1; MCM_REPORT_DIR) and CSV.
//
//   mcm_explore [spec.conf] [options]
//     --threads N      worker threads (default: MCM_THREADS, else hw cores)
//     --screen         analytic pre-screen before simulation
//     --slack X        pre-screen prune threshold (default 1.25 x deadline)
//     --analytic       analytic estimator only (no simulation; fast)
//     --margin X       feasibility margin (default 0.15, the paper's)
//     --csv FILE       write the per-point CSV here
//     --name NAME      report name (default "mcm_explore")
//     --quiet          suppress the per-point table
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "explore/explore_export.hpp"
#include "explore/orchestrator.hpp"
#include "explore/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"

namespace {

using namespace mcm;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [spec.conf] [--threads N] [--screen] [--slack X] "
               "[--analytic] [--margin X] [--csv FILE] [--name NAME] "
               "[--quiet]\n",
               argv0);
}

struct Args {
  std::string spec_path;
  std::string csv_path;
  std::string name = "mcm_explore";
  explore::OrchestratorOptions orch;
  double margin = 0.15;
  bool quiet = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      args.orch.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--screen") {
      args.orch.prescreen = true;
    } else if (arg == "--slack") {
      const char* v = next("--slack");
      if (v == nullptr) return false;
      args.orch.prescreen_slack = std::strtod(v, nullptr);
    } else if (arg == "--analytic") {
      args.orch.engine = explore::Engine::kAnalytic;
    } else if (arg == "--margin") {
      const char* v = next("--margin");
      if (v == nullptr) return false;
      args.margin = std::strtod(v, nullptr);
    } else if (arg == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args.csv_path = v;
    } else if (arg == "--name") {
      const char* v = next("--name");
      if (v == nullptr) return false;
      args.name = v;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return false;
    } else {
      args.spec_path = arg;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  explore::ExperimentSpec spec;
  try {
    spec = args.spec_path.empty()
               ? explore::ExperimentSpec::paper_grid()
               : explore::ExperimentSpec::from_file(args.spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spec error: %s\n", e.what());
    return 1;
  }

  obs::MetricsRegistry metrics;
  args.orch.metrics = &metrics;
  std::printf("mcm_explore: %zu points, %u threads%s%s\n", spec.size(),
              explore::ThreadPool::resolve_thread_count(args.orch.threads),
              args.orch.prescreen ? ", analytic pre-screen" : "",
              args.orch.engine == explore::Engine::kAnalytic
                  ? ", analytic engine"
                  : "");

  explore::ExploreRun run;
  try {
    run = explore::Orchestrator(args.orch).run(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "exploration failed: %s\n", e.what());
    return 1;
  }

  if (!args.quiet) {
    std::printf("\n%-28s %10s %10s %10s %5s %7s\n", "point", "access[ms]",
                "rt[ms]", "power[mW]", "feas", "pareto");
    const auto frontiers = explore::frontiers_by_level(run, args.margin);
    std::vector<bool> on_frontier(run.results.size(), false);
    for (const auto& lf : frontiers) {
      for (const auto idx : lf.frontier) on_frontier[idx] = true;
    }
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      const auto& r = run.results[i];
      std::printf("%-28s %10.2f %10.1f %10.0f %5s %7s%s\n",
                  r.point.label().c_str(), r.access_time().ms(),
                  r.frame_period().ms(), r.total_power_mw(),
                  r.feasible(args.margin) ? "yes" : "no",
                  on_frontier[i] ? "*" : "",
                  r.pruned ? "  [pruned by pre-screen]" : "");
    }
  }

  // Section V: minimum channels per level (at 400 MHz when the grid has it,
  // else over the whole grid).
  const bool has_400 =
      std::find(spec.freq_mhz.begin(), spec.freq_mhz.end(), 400.0) !=
      spec.freq_mhz.end();
  const double table_freq = has_400 ? 400.0 : 0.0;
  std::printf("\nMinimum channels per level%s (margin %.0f %%):\n",
              has_400 ? " at 400 MHz" : "", 100.0 * args.margin);
  std::printf("%-8s %-12s %14s %14s\n", "level", "format", "min ch",
              "min ch+margin");
  for (const auto& e :
       explore::min_channels_per_level(run, table_freq, args.margin)) {
    const auto& lspec = video::level_spec(e.level);
    auto cell = [](const std::optional<std::uint32_t>& v) {
      return v ? std::to_string(*v) : std::string("none");
    };
    std::printf("%-8s %-12s %14s %14s\n", std::string(lspec.name).c_str(),
                std::string(lspec.format).c_str(),
                cell(e.min_channels).c_str(),
                cell(e.min_channels_with_margin).c_str());
  }

  std::printf("\n%zu points: %zu screened, %zu pruned, %zu simulated "
              "(%u threads, %.2f s)\n",
              run.stats.points, run.stats.screened, run.stats.pruned,
              run.stats.simulated, run.stats.threads, run.stats.wall_seconds);

  obs::RunReport report(args.name);
  explore::export_run(report, spec, run, args.margin);
  explore::export_run_stats(report, run.stats);
  const std::string path = report.write_default();
  if (!path.empty()) std::printf("[run report: %s]\n", path.c_str());

  if (!args.csv_path.empty()) {
    std::ofstream out(args.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.csv_path.c_str());
      return 1;
    }
    CsvWriter csv(out);
    explore::write_csv(csv, run, args.margin);
    std::printf("[csv: %s]\n", args.csv_path.c_str());
  }
  return 0;
}
