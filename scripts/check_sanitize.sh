#!/usr/bin/env bash
# Build the tree with sanitizers and run the test suite under them. Usage:
#
#   scripts/check_sanitize.sh [build-dir]      # ASan+UBSan, full tier-1 suite
#   MCM_SANITIZE=thread scripts/check_sanitize.sh [build-dir]
#                                              # TSan on the concurrency
#                                              # suites (sharded engine,
#                                              # stream cache, exploration)
#
# Any sanitizer report fails the run (halt_on_error / abort defaults).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="${MCM_SANITIZE:-ON}"
case "$mode" in
  thread) default_dir="$repo_root/build-tsan" ;;
  *)      default_dir="$repo_root/build-sanitize" ;;
esac
build_dir="${1:-$default_dir}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMCM_SANITIZE="$mode"
cmake --build "$build_dir" -j "$(nproc)"

if [ "$mode" = "thread" ]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  # The suites that exercise real multi-threading: the channel-sharded
  # engine at 1/2/8 workers (per-request and epoch-batched speculative
  # paths, including forced rollbacks), the sharded-vs-legacy equivalence
  # runs, the memoized stream cache, the exploration pool, the metrics
  # registry under concurrent registration, and the profiler's cross-thread
  # spool merge.
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
    -R "SimThreads|SimChunk|ShardedEquivalence|StreamCache|ThreadPool|Orchestrator|MetricsRegistryThreadSafe|ProfTest|ProfPurity|HeteroDeterminism"
else
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  # Second pass over the scheduling/kernel suites with the SoA arbitration
  # dispatch forced scalar, so the scalar reference loop (not just the AVX2
  # kernel the CPU picks by default) runs under ASan+UBSan. The arena
  # suites ride along for the heap/arena placement paths.
  MCM_SIMD=off ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
    -R "SimdEquivalence|ArenaEquivalence|FrameArena|FastpathEquivalence|RequestQueue|MemoryController|DeviceClass|HeteroDifferential|HeteroReport"
fi
