#!/usr/bin/env bash
# Build the full tree with ASan+UBSan (-DMCM_SANITIZE=ON) and run the tier-1
# test suite under the sanitizers. Usage:
#
#   scripts/check_sanitize.sh [build-dir]      # default: build-sanitize
#
# Any sanitizer report fails the run (halt_on_error / abort defaults).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMCM_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
