// Reproduces the paper's Conclusions summary (Section V): the minimum
// channel count per H.264 level at 400 MHz -
//   level 3.2 (720p60) clearly needs several channels,
//   level 4 (1080p30) requires the 4-channel configuration,
//   level 4.2 (1080p60) needs 8 channels,
//   and 8 channels carry accesses up to level 5.2 (2160p30).
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  const auto base = core::ExperimentConfig::paper_defaults();
  const core::FrameSimulator sim(base.sim);

  std::printf("CONCLUSIONS: MINIMUM CHANNEL COUNT PER H.264 LEVEL (400 MHz)\n\n");
  std::printf("%-8s %-18s %14s %16s %18s\n", "level", "format", "min (meets RT)",
              "min (15% margin)", "paper (Section V)");

  const char* paper_claim[] = {"1 (all schemes)", ">= 2", "4", "8", "8"};
  int idx = 0;
  for (const auto level : video::kAllLevels) {
    std::uint32_t min_rt = 0, min_margin = 0;
    for (const std::uint32_t ch : core::paper_channel_counts()) {
      auto cfg = base.base;
      cfg.channels = ch;
      video::UseCaseParams uc = base.usecase;
      uc.level = level;
      const auto r = sim.run(cfg, uc);
      if (min_rt == 0 && r.meets_realtime) min_rt = ch;
      if (min_margin == 0 && r.meets_realtime_with_margin) min_margin = ch;
      if (min_rt != 0 && min_margin != 0) break;
    }
    const auto& spec = video::level_spec(level);
    char fmt[64], rt[16], margin[16];
    std::snprintf(fmt, sizeof fmt, "%ux%u@%.0f", spec.resolution.width,
                  spec.resolution.height, spec.fps);
    std::snprintf(rt, sizeof rt, min_rt ? "%u" : "none", min_rt);
    std::snprintf(margin, sizeof margin, min_margin ? "%u" : "none", min_margin);
    std::printf("%-8s %-18s %14s %16s %18s\n",
                std::string(spec.name).c_str(), fmt, rt, margin,
                paper_claim[idx++]);
  }
  std::printf("\nPaper: \"the multi-channel memory subsystem configuration "
              "scales well for future needs\".\n");
  return 0;
}
