// Reproduces the Section IV/V XDR comparison: the 8-channel 400 MHz mobile
// DDR subsystem offers bandwidth comparable to the Cell BE's dual-channel
// XDR interface (25.6 GB/s @ ~5 W) at 4-25 % of the power, depending on the
// encoding format.
#include <cstdio>

#include "core/experiments.hpp"
#include "xdr/xdr_model.hpp"

int main() {
  using namespace mcm;
  const xdr::XdrInterface xdr;
  auto cfg = core::ExperimentConfig::paper_defaults();
  cfg.base.channels = 8;
  const multichannel::MemorySystem sys(cfg.base);

  std::printf("XDR COMPARISON (paper Section IV)\n\n");
  std::printf("Cell BE XDR interface: %.1f GHz, %.1f GB/s, %.1f W typical\n",
              xdr.clock_ghz, xdr.bandwidth_gb_per_s, xdr.typical_power_w);
  std::printf("8-channel 400 MHz next-gen mobile DDR: %.1f GB/s peak\n\n",
              sys.peak_bandwidth_bytes_per_s() / 1e9);

  std::printf("%-18s %14s %14s %12s\n", "Frame format", "power [mW]",
              "XDR [mW]", "fraction");
  const core::FrameSimulator sim(cfg.sim);
  for (const auto level : video::kAllLevels) {
    video::UseCaseParams uc = cfg.usecase;
    uc.level = level;
    const auto r = sim.run(cfg.base, uc);
    const auto& spec = video::level_spec(level);
    char label[64];
    std::snprintf(label, sizeof label, "%ux%u@%.0f", spec.resolution.width,
                  spec.resolution.height, spec.fps);
    std::printf("%-18s %14.0f %14.0f %11.1f%%\n", label, r.total_power_mw,
                xdr.typical_power_mw(),
                100.0 * xdr.power_fraction(r.total_power_mw));
  }
  std::printf("\nPaper: \"power consumption from 4%% to 25%% of the XDR value, "
              "depending on the used encoding format\".\n");
  return 0;
}
