// Extension study: width vs channels. Die stacking can buy bandwidth two
// ways - the paper's many narrow DDR channels at high clocks, or a Wide
// I/O-style wide SDR interface at modest clocks. Same 12.8 GB/s peak either
// way for 1080p30; compare access time and power.
#include <cstdio>

#include "core/experiments.hpp"

namespace {

using namespace mcm;

void report(const char* label, const dram::DeviceSpec& device, double freq,
            std::uint32_t channels, std::uint32_t interleave) {
  auto cfg = core::ExperimentConfig::paper_defaults();
  cfg.base.device = device;
  cfg.base.freq = Frequency{freq};
  cfg.base.channels = channels;
  cfg.base.interleave_bytes = interleave;
  video::UseCaseParams uc = cfg.usecase;
  uc.level = video::H264Level::k40;
  const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
  const multichannel::MemorySystem sys(cfg.base);
  std::printf("%-34s %10.1f %12.2f %10s %12.0f\n", label,
              sys.peak_bandwidth_bytes_per_s() / 1e9, r.access_time.ms(),
              r.meets_realtime ? (r.meets_realtime_with_margin ? "yes" : "margin")
                               : "NO",
              r.total_power_mw);
}

}  // namespace

int main() {
  std::printf("WIDTH vs CHANNELS: 1080p30 RECORDING (die-stacked options)\n\n");
  std::printf("%-34s %10s %12s %10s %12s\n", "organization", "peak[GB/s]",
              "access [ms]", "meets RT", "power [mW]");

  // The paper's organization: 4 x 32-bit DDR channels at 400 MHz.
  report("4 x 32-bit DDR @ 400 MHz", dram::DeviceSpec::next_gen_mobile_ddr(),
         400.0, 4, 16);
  // Wide I/O-style: 4 x 128-bit SDR channels at 200 MHz (same 12.8 GB/s).
  report("4 x 128-bit SDR @ 200 MHz (WideIO)", dram::DeviceSpec::wide_io_like(),
         200.0, 4, 64);
  // And a 2-channel wide variant at 266 MHz.
  report("2 x 128-bit SDR @ 266 MHz (WideIO)", dram::DeviceSpec::wide_io_like(),
         266.0, 2, 64);

  std::printf("\nFor this streaming, cache-line-grained load the wide SDR "
              "interface matches the paper's narrow DDR channels at half the "
              "clock (and slightly lower power: fewer commands per byte). "
              "Narrow channels keep the advantage for fine-grained access "
              "patterns, where a 64 B minimum burst wastes bus slots.\n");
  return 0;
}
