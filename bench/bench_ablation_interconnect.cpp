// Ablation: on-chip interconnect front-end overhead (Fig. 2 places an
// interconnect between the SMP/caches and the memory controllers). Sweeps
// the per-request handoff interval per channel.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: INTERCONNECT REQUEST HANDOFF INTERVAL "
              "(400 MHz, 2 channels, 720p30)\n\n");
  std::printf("%-22s %14s %14s\n", "interval [cycles]", "access [ms]",
              "meets RT");

  for (const int interval : {0, 1, 2, 3, 4}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 2;
    cfg.base.interconnect.request_interval_cycles = interval;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
    std::printf("%-22d %14.2f %14s\n", interval, r.access_time.ms(),
                r.meets_realtime
                    ? (r.meets_realtime_with_margin ? "meets" : "marginal")
                    : "misses");
  }
  std::printf("\nOne 16 B burst takes 2 data cycles, so intervals above 2 "
              "cycles make the front end the bottleneck instead of the "
              "DRAM.\n");
  return 0;
}
