// Extension study: GOP structure. The paper models steady-state predicted
// frames (every frame reads 6 x #refs of reference data); real encoders
// insert periodic I frames that carry none. Per-frame access time then
// alternates, which matters for worst-case real-time margins vs averages.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("GOP STRUCTURE: PER-FRAME ACCESS TIME (1080p30, 4 channels, "
              "400 MHz)\n\n");

  for (const int gop : {0, 4}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 4;
    cfg.sim.frames = 8;
    cfg.sim.gop_length = gop;
    video::UseCaseParams uc = cfg.usecase;
    uc.level = video::H264Level::k40;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);

    std::printf("%s:\n", gop == 0 ? "all-P (paper model)" : "GOP of 4 (IPPP)");
    std::printf("  frames [ms]:");
    Time worst = Time::zero();
    for (const Time t : r.per_frame_access) {
      std::printf(" %6.2f", t.ms());
      worst = max(worst, t);
    }
    std::printf("\n  mean %.2f ms, worst %.2f ms, power %.0f mW\n\n",
                r.access_time.ms(), worst.ms(), r.total_power_mw);
  }
  std::printf("I frames are ~2x lighter (no reference traffic), so the mean "
              "drops - but the real-time requirement binds on the P-frame "
              "worst case, which matches the paper's all-P analysis.\n");
  return 0;
}
