// Hot-path throughput microbenchmark: the repo's perf-trajectory baseline.
//
// Runs the full frame simulation for a small grid of (format, channels)
// cells at the paper's 400 MHz clock and reports, per cell, the simulated
// requests/second and the frame-sim wall clock (best of N repetitions).
// Results are written as BENCH_hotpath.json (see --out); the checked-in
// copy at the repo root is the baseline the CI perf-smoke job compares
// against:
//
//   bench_hotpath                         # measure, write BENCH_hotpath.json
//   bench_hotpath --out <path>            # measure, write elsewhere
//   bench_hotpath --check <baseline.json> # measure, fail on a >20 % drop
//   bench_hotpath --check <b> --tolerance 0.3
//   bench_hotpath --update [<baseline>]   # refresh the baseline in place,
//                                         # printing the per-cell deltas
//   bench_hotpath --no-fastpath           # measure with row-hit streaming off
//   bench_hotpath --profile               # also write a per-cell engine
//                                         # profile (mcm.prof_set/v1) next to
//                                         # the JSON output, for mcm_prof
//   bench_hotpath --simd off              # re-run every cell with MCM_SIMD=off
//                                         # as a "/scalar" twin and record the
//                                         # vector-vs-scalar ratio
//
// Every cell is stamped with the compile-time ISA (simd_compiled), the
// runtime dispatch choice sampled during the run (simd_active), and the
// frame-allocator mode (allocator: arena|heap, from MCM_ARENA), so a
// baseline JSON is self-describing about which kernels produced it.
//
// The tolerance can also come from MCM_PERF_TOLERANCE. Baseline numbers are
// machine-dependent: refresh them (docs/performance.md, "Updating the perf
// baseline") whenever the hardware class running the check changes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "controller/soa_kernels.hpp"
#include "core/experiments.hpp"
#include "load/trace.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"
#include "video/h264_levels.hpp"
#include "workload/workload.hpp"

namespace {

using namespace mcm;

struct Cell {
  video::H264Level level;
  std::uint32_t channels;
  unsigned sim_threads = 1;  // channel-sharded workers (pinned per cell)
  // Workload-backed cell ("trace_replay" / "mixed4"): drives run_workload
  // instead of the video frame simulator. Controller knobs stay at the
  // production defaults (--no-fastpath does not apply to these cells).
  const char* workload = nullptr;
  // Sweep-eligible: the cell is run once per --workers value (default
  // 1,2,4), emitting per-worker twins with /simtN labels and a
  // simt_speedup column (requests/s relative to the 1-worker twin).
  bool sweep = false;
};

/// Deterministic 32 Ki-request replay trace (sequential / ping-pong / row
/// sweep phases), written once per process to a fixed temp path.
const std::string& bench_trace_path() {
  static const std::string path = [] {
    std::vector<ctrl::Request> reqs;
    reqs.reserve(32768);
    std::int64_t t = 0;
    for (std::uint64_t i = 0; i < 32768; ++i) {
      ctrl::Request r;
      switch ((i / 64) % 3) {
        case 0:  // sequential burst run
          r.addr = 0x100000 + (i % 64) * 16;
          break;
        case 1:  // two-row ping-pong
          r.addr = (i % 2 == 0) ? 0x200000 : 0x202000;
          break;
        default:  // row sweep
          r.addr = 0x300000 + (i % 64) * 2048;
          break;
      }
      r.is_write = i % 4 == 0;
      r.arrival = Time{t};
      t += 1000;
      reqs.push_back(r);
    }
    const std::string p = "/tmp/bench_hotpath_replay.trace";
    std::ofstream out(p);
    load::write_trace(out, reqs);
    return p;
  }();
  return path;
}

workload::WorkloadSpec make_workload_spec(const Cell& cell) {
  workload::WorkloadSpec s;
  s.channels = cell.channels;
  s.freq_mhz = 400;
  s.sim_threads = cell.sim_threads;
  workload::TenantSpec replay;
  replay.name = "replay";
  replay.kind = "trace";
  replay.path = bench_trace_path();
  if (std::strcmp(cell.workload, "trace_replay") == 0) {
    s.name = "trace_replay";
    s.tenants = {replay};
    return s;
  }
  // "mixed4": the committed mixed_tenants shape - one video level, one
  // replayed trace, two generators contending for the same channels.
  s.name = "mixed4";
  workload::TenantSpec camera;
  camera.name = "camera";
  camera.kind = "video";
  camera.level = "3.1";
  camera.max_requests = 20000;
  camera.pace_ps = 16'000'000'000;
  replay.pace_ps = 8'000'000'000;
  workload::TenantSpec chaser;
  chaser.name = "chaser";
  chaser.kind = "generator";
  chaser.generator = "pointer_chase";
  chaser.window_bytes = 2 << 20;
  chaser.bytes = 128 << 10;
  chaser.write_fraction = 0.3;
  chaser.seed = 7;
  chaser.pace_ps = 16'000'000'000;
  workload::TenantSpec scanner;
  scanner.name = "scanner";
  scanner.kind = "generator";
  scanner.generator = "sequential";
  scanner.window_bytes = 1 << 20;
  scanner.bytes = 256 << 10;
  scanner.write_fraction = 1.0;
  scanner.seed = 11;
  scanner.pace_ps = 16'000'000'000;
  s.tenants = {camera, replay, chaser, scanner};
  return s;
}

struct CellResult {
  std::string label;
  std::string level_name;
  std::uint32_t channels = 0;
  unsigned sim_threads = 1;
  std::uint64_t requests = 0;
  int iters = 0;
  double wall_ms_best = 0;
  double wall_ms_mean = 0;
  double requests_per_s = 0;
  double simt_speedup = 0;  // rps / 1-worker twin's rps; 0 = not in a sweep
  double simd_speedup = 0;  // vector twin's rps / this scalar twin's rps
  std::string simd_active;  // runtime dispatch sampled for this run
  std::string allocator;    // "arena" | "heap" (MCM_ARENA)
  std::string simd_mode;    // twin-pass tag; "" = default environment
  obs::JsonValue profile;  // mcm.prof/v1 doc when --profile, else null
};

/// Stamp the kernel/allocator provenance for the run about to happen. The
/// dispatch is sampled per controller construction, so this reflects the
/// MCM_SIMD environment in force for this cell.
void stamp_modes(CellResult& r) {
  r.simd_active = std::string(ctrl::kernels::to_string(ctrl::kernels::active_level()));
  r.allocator = common::arena_enabled() ? "arena" : "heap";
}

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(clock::now().time_since_epoch())
      .count();
}

CellResult run_workload_cell(const Cell& cell, double min_time_ms, int min_iters,
                             bool profile) {
  const workload::WorkloadSpec spec = make_workload_spec(cell);

  CellResult r;
  r.level_name = "-";
  r.channels = cell.channels;
  r.sim_threads = cell.sim_threads;
  {
    char label[64];
    std::snprintf(label, sizeof label, "%s/%uch", cell.workload, cell.channels);
    r.label = label;
  }
  stamp_modes(r);

  // Warm-up run: populates the stream cache (compilation is memoized, so
  // the timed loop measures the engine, like the video cells).
  {
    const auto res = workload::run_workload(spec);
    r.requests = res.sim.stats.accesses();
  }
  if (profile) (void)obs::prof::collect(/*reset=*/true);

  double total_ms = 0;
  double best_ms = 0;
  int iters = 0;
  while (iters < min_iters || total_ms < min_time_ms) {
    const double t0 = now_ms();
    const auto res = workload::run_workload(spec);
    const double dt = now_ms() - t0;
    if (res.sim.stats.accesses() != r.requests) {
      std::fprintf(stderr, "non-deterministic request count in cell %s\n",
                   r.label.c_str());
      std::exit(2);
    }
    total_ms += dt;
    best_ms = iters == 0 ? dt : std::min(best_ms, dt);
    ++iters;
  }
  r.iters = iters;
  r.wall_ms_best = best_ms;
  r.wall_ms_mean = total_ms / iters;
  r.requests_per_s = best_ms > 0 ? static_cast<double>(r.requests) / (best_ms / 1e3)
                                 : 0.0;
  if (profile) {
    r.profile = obs::prof::collect(/*reset=*/true).to_json(/*with_spans=*/true);
  }
  return r;
}

CellResult run_cell(const core::ExperimentConfig& base, const Cell& cell,
                    double min_time_ms, int min_iters, bool profile) {
  if (cell.workload != nullptr) {
    return run_workload_cell(cell, min_time_ms, min_iters, profile);
  }
  core::ExperimentConfig cfg = base;
  cfg.base.channels = cell.channels;
  cfg.base.freq = Frequency{400.0};
  cfg.usecase.level = cell.level;
  cfg.sim.sim_threads = cell.sim_threads;

  const core::FrameSimulator sim(cfg.sim);

  CellResult r;
  const auto& spec = video::level_spec(cell.level);
  r.level_name = spec.name;
  r.channels = cell.channels;
  r.sim_threads = cell.sim_threads;
  {
    char label[64];
    if (cell.sim_threads > 1) {
      std::snprintf(label, sizeof label, "%ux%u@%.0f/%uch/simt%u",
                    spec.resolution.width, spec.resolution.height, spec.fps,
                    cell.channels, cell.sim_threads);
    } else {
      std::snprintf(label, sizeof label, "%ux%u@%.0f/%uch",
                    spec.resolution.width, spec.resolution.height, spec.fps,
                    cell.channels);
    }
    r.label = label;
  }
  stamp_modes(r);

  // Warm-up run (page cache, allocator) that also yields the request count.
  {
    const auto res = sim.run(cfg.base, cfg.usecase);
    r.requests = res.stats.accesses();
  }
  // Discard the warm-up's profile so the sidecar covers timed iterations only.
  if (profile) (void)obs::prof::collect(/*reset=*/true);

  double total_ms = 0;
  double best_ms = 0;
  int iters = 0;
  while (iters < min_iters || total_ms < min_time_ms) {
    const double t0 = now_ms();
    const auto res = sim.run(cfg.base, cfg.usecase);
    const double dt = now_ms() - t0;
    if (res.stats.accesses() != r.requests) {
      std::fprintf(stderr, "non-deterministic request count in cell %s\n",
                   r.label.c_str());
      std::exit(2);
    }
    total_ms += dt;
    best_ms = iters == 0 ? dt : std::min(best_ms, dt);
    ++iters;
  }
  r.iters = iters;
  r.wall_ms_best = best_ms;
  r.wall_ms_mean = total_ms / iters;
  r.requests_per_s = best_ms > 0 ? static_cast<double>(r.requests) / (best_ms / 1e3)
                                 : 0.0;
  if (profile) {
    r.profile = obs::prof::collect(/*reset=*/true).to_json(/*with_spans=*/true);
  }
  return r;
}

/// "<stem>.json" -> "<stem>.prof.json" (plain append otherwise).
std::string prof_sidecar_path(const std::string& out_path) {
  const std::string suffix = ".json";
  if (out_path.size() > suffix.size() &&
      out_path.compare(out_path.size() - suffix.size(), suffix.size(), suffix) ==
          0) {
    return out_path.substr(0, out_path.size() - suffix.size()) + ".prof.json";
  }
  return out_path + ".prof.json";
}

/// Minimal scanner for this bench's own JSON output: pairs each "label"
/// string with the next "requests_per_s" number. Good enough for the
/// baseline check without a general JSON parser.
std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::pair<std::string, double>> cells;
  if (!in) return cells;
  std::string line;
  std::string label;
  while (std::getline(in, line)) {
    const auto find_value = [&](const char* key) -> std::string {
      const auto k = line.find(key);
      if (k == std::string::npos) return {};
      const auto colon = line.find(':', k);
      if (colon == std::string::npos) return {};
      return line.substr(colon + 1);
    };
    if (std::string v = find_value("\"label\""); !v.empty()) {
      const auto open = v.find('"');
      const auto close = v.find('"', open + 1);
      if (open != std::string::npos && close != std::string::npos) {
        label = v.substr(open + 1, close - open - 1);
      }
    } else if (std::string v = find_value("\"requests_per_s\""); !v.empty()) {
      if (!label.empty()) {
        cells.emplace_back(label, std::strtod(v.c_str(), nullptr));
        label.clear();
      }
    }
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  std::string check_path;
  bool update = false;
  double tolerance = 0.20;
  double min_time_ms = 500.0;
  int min_iters = 3;
  bool fastpath = true;
  bool profile = false;
  std::vector<unsigned> sweep_workers = {1, 2, 4};
  double assert_speedup = 0;  // 0 = no assertion
  bool simd_twin = false;     // --simd off: add a forced-scalar twin pass

  if (const char* env = std::getenv("MCM_PERF_TOLERANCE")) {
    tolerance = std::strtod(env, nullptr);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--min-time-ms") == 0 && i + 1 < argc) {
      min_time_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--min-iters") == 0 && i + 1 < argc) {
      min_iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-fastpath") == 0) {
      fastpath = false;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      sweep_workers.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0) {
          std::fprintf(stderr, "--workers wants a comma list like 1,2,4\n");
          return 2;
        }
        sweep_workers.push_back(static_cast<unsigned>(v));
        p = *end == ',' ? end + 1 : end;
      }
      if (sweep_workers.empty()) {
        std::fprintf(stderr, "--workers wants a comma list like 1,2,4\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--assert-speedup") == 0 && i + 1 < argc) {
      assert_speedup = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (std::strcmp(mode, "off") != 0 && std::strcmp(mode, "scalar") != 0) {
        std::fprintf(stderr,
                     "--simd wants 'off' (run forced-scalar /scalar twins "
                     "next to the default pass)\n");
        return 2;
      }
      simd_twin = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  auto cfg = core::ExperimentConfig::paper_defaults();
  cfg.base.controller.stream_row_hits = fastpath;
  if (profile) obs::prof::set_enabled(true);

  // The paper's headline cell (720p30, 4 ch) plus a single-channel contrast
  // point and two heavier formats that stress queue pressure differently.
  // Sweep cells track the channel-sharded parallel path: the same workload
  // re-run at every --workers value in one process, so the per-worker twins
  // share the warm stream cache and the simt_speedup ratios are apples to
  // apples (on few-core runners the simtN twins mostly measure epoch
  // overhead; on wide machines, real speedup).
  const std::vector<Cell> base_cells = {
      {video::H264Level::k31, 1},
      {video::H264Level::k31, 4, 1, nullptr, /*sweep=*/true},
      {video::H264Level::k40, 4},
      {video::H264Level::k42, 4},
      {video::H264Level::k31, 8, 1, nullptr, /*sweep=*/true},
      // Workload-subsystem cells: external-trace replay and the 4-tenant
      // mixed scenario (video + trace + two generators), both through
      // run_workload's compile/merge/shard path.
      {video::H264Level::k31, 4, 1, "trace_replay"},
      {video::H264Level::k31, 4, 1, "mixed4"},
  };
  std::vector<Cell> cells;
  for (const auto& cell : base_cells) {
    if (!cell.sweep) {
      cells.push_back(cell);
      continue;
    }
    for (const unsigned w : sweep_workers) {
      Cell twin = cell;
      twin.sim_threads = w;
      cells.push_back(twin);
    }
  }

  std::printf("HOT-PATH THROUGHPUT (400 MHz, fast path %s)\n\n",
              fastpath ? "on" : "off");
  std::printf("%-22s %10s %6s %12s %12s %14s %8s\n", "cell", "requests",
              "iters", "best [ms]", "mean [ms]", "requests/s", "simt x");

  obs::JsonValue root = obs::JsonValue::object();
  root["schema"] = "mcm.bench_hotpath/v1";
  root["freq_mhz"] = 400.0;
  root["fastpath"] = fastpath;
  auto& arr = root["cells"];
  arr = obs::JsonValue::array();

  // Pass list: the default environment first, then (with --simd off) the
  // forced-scalar twin pass. MCM_SIMD is sampled at controller construction,
  // so flipping it between passes re-runs the same cells through the scalar
  // kernels; twins get a "/scalar" label suffix and a simd_speedup ratio
  // against their vector counterpart.
  struct Pass {
    const char* mode;    // MCM_SIMD value to force; nullptr = leave alone
    const char* suffix;  // label suffix for this pass's cells
  };
  std::vector<Pass> passes = {{nullptr, ""}};
  if (simd_twin) passes.push_back({"off", "/scalar"});

  std::vector<CellResult> results;
  for (const auto& pass : passes) {
    if (pass.mode != nullptr) setenv("MCM_SIMD", pass.mode, 1);
    for (const auto& cell : cells) {
    CellResult r = run_cell(cfg, cell, min_time_ms, min_iters, profile);
    r.simd_mode = pass.mode == nullptr ? "" : pass.mode;
    r.label += pass.suffix;
    if (cell.sweep) {
      // Speedup vs the 1-worker twin (sweeps list workers ascending, so the
      // base twin has already run; 0 when the sweep list omits worker 1).
      // Match within the same pass only: a scalar sweep twin compares to the
      // scalar 1-worker run, not the vector one.
      for (const auto& prev : results) {
        if (prev.sim_threads == 1 && prev.channels == r.channels &&
            prev.level_name == r.level_name && prev.simd_mode == r.simd_mode) {
          r.simt_speedup = prev.requests_per_s > 0
                               ? r.requests_per_s / prev.requests_per_s
                               : 0.0;
        }
      }
      if (r.sim_threads == 1) r.simt_speedup = 1.0;
    }
    if (pass.mode != nullptr) {
      // Vector-vs-scalar ratio against the default-pass cell of the same
      // label (minus the twin suffix).
      const std::string base_label =
          r.label.substr(0, r.label.size() - std::strlen(pass.suffix));
      for (const auto& prev : results) {
        if (prev.simd_mode.empty() && prev.label == base_label) {
          r.simd_speedup = r.requests_per_s > 0
                               ? prev.requests_per_s / r.requests_per_s
                               : 0.0;
        }
      }
    }
    if (r.simt_speedup > 0) {
      std::printf("%-22s %10llu %6d %12.2f %12.2f %14.0f %7.2fx\n",
                  r.label.c_str(), static_cast<unsigned long long>(r.requests),
                  r.iters, r.wall_ms_best, r.wall_ms_mean, r.requests_per_s,
                  r.simt_speedup);
    } else {
      std::printf("%-22s %10llu %6d %12.2f %12.2f %14.0f %8s\n",
                  r.label.c_str(), static_cast<unsigned long long>(r.requests),
                  r.iters, r.wall_ms_best, r.wall_ms_mean, r.requests_per_s,
                  "-");
    }
    obs::JsonValue c = obs::JsonValue::object();
    c["label"] = r.label;
    c["level"] = r.level_name;
    c["channels"] = r.channels;
    c["sim_threads"] = r.sim_threads;
    c["requests"] = r.requests;
    c["iters"] = r.iters;
    c["wall_ms_best"] = r.wall_ms_best;
    c["wall_ms_mean"] = r.wall_ms_mean;
    c["requests_per_s"] = r.requests_per_s;
    if (r.simt_speedup > 0) c["simt_speedup"] = r.simt_speedup;
    if (r.simd_speedup > 0) c["simd_speedup"] = r.simd_speedup;
    c["simd_compiled"] = std::string(ctrl::kernels::compiled_isa());
    c["simd_active"] = r.simd_active;
    c["allocator"] = r.allocator;
    arr.push(std::move(c));
    results.push_back(std::move(r));
    }
  }
  if (simd_twin) {
    std::printf("\nscalar-vs-vector (vector rps / scalar rps):\n");
    for (const auto& r : results) {
      if (r.simd_speedup > 0) {
        std::printf("  %-22s %.2fx\n", r.label.c_str(), r.simd_speedup);
      }
    }
  }

  if (update) {
    const auto old = read_baseline(out_path);
    if (old.empty()) {
      std::fprintf(stderr,
                   "--update: cannot read existing baseline '%s' "
                   "(use --out to create one)\n",
                   out_path.c_str());
      return 2;
    }
    std::printf("\nRefreshing baseline %s:\n", out_path.c_str());
    for (const auto& r : results) {
      double old_rps = 0;
      for (const auto& [label, rps] : old) {
        if (label == r.label) old_rps = rps;
      }
      if (old_rps > 0) {
        std::printf("  %-24s %14.0f -> %14.0f  (%+.1f %%)\n", r.label.c_str(),
                    old_rps, r.requests_per_s,
                    (r.requests_per_s / old_rps - 1.0) * 100.0);
      } else {
        std::printf("  %-24s %14s -> %14.0f  (new cell)\n", r.label.c_str(),
                    "-", r.requests_per_s);
      }
    }
  }

  if (!check_path.empty()) {
    const auto baseline = read_baseline(check_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "cannot read baseline '%s'\n", check_path.c_str());
      return 2;
    }
    bool ok = true;
    std::printf("\nBaseline check vs %s (tolerance %.0f %%):\n",
                check_path.c_str(), tolerance * 100.0);
    for (const auto& [label, base_rps] : baseline) {
      const CellResult* cur = nullptr;
      for (const auto& r : results) {
        if (r.label == label) cur = &r;
      }
      if (cur == nullptr) {
        std::printf("  %-18s MISSING from current run\n", label.c_str());
        ok = false;
        continue;
      }
      const double ratio = base_rps > 0 ? cur->requests_per_s / base_rps : 1.0;
      const bool pass = ratio >= 1.0 - tolerance;
      std::printf("  %-18s %14.0f -> %14.0f  (%+.1f %%) %s\n", label.c_str(),
                  base_rps, cur->requests_per_s, (ratio - 1.0) * 100.0,
                  pass ? "ok" : "REGRESSION");
      ok = ok && pass;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "\nperf smoke FAILED: requests/s dropped more than %.0f %% "
                   "below the baseline.\nIf the regression is intended, refresh "
                   "the baseline (docs/performance.md).\n",
                   tolerance * 100.0);
      return 1;
    }
    std::printf("perf smoke ok\n");
  }

  if (assert_speedup > 0) {
    double best = 0;
    const CellResult* best_cell = nullptr;
    for (const auto& r : results) {
      if (r.sim_threads > 1 && r.simt_speedup > best) {
        best = r.simt_speedup;
        best_cell = &r;
      }
    }
    if (best_cell != nullptr) {
      std::printf("\nbest simt speedup: %.2fx (%s), required >= %.2fx\n", best,
                  best_cell->label.c_str(), assert_speedup);
    }
    if (best < assert_speedup) {
      std::fprintf(stderr,
                   "--assert-speedup FAILED: best multi-worker speedup %.2fx "
                   "is below the required %.2fx\n",
                   best, assert_speedup);
      return 1;
    }
  }

  std::ofstream out(out_path);
  if (out) {
    root.dump(out, 2);
    out << "\n";
    std::printf("\n[baseline: %s]\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }

  if (profile) {
    const std::string prof_path = prof_sidecar_path(out_path);
    obs::JsonValue pset = obs::JsonValue::object();
    pset["schema"] = "mcm.prof_set/v1";
    pset["freq_mhz"] = 400.0;
    pset["fastpath"] = fastpath;
    auto& pcells = pset["cells"];
    pcells = obs::JsonValue::array();
    for (auto& r : results) {
      obs::JsonValue c = obs::JsonValue::object();
      c["label"] = r.label;
      c["iters"] = r.iters;
      c["requests"] = r.requests;
      c["wall_ms_best"] = r.wall_ms_best;
      c["wall_ms_mean"] = r.wall_ms_mean;
      c["profile"] = std::move(r.profile);
      pcells.push(std::move(c));
    }
    std::ofstream pout(prof_path);
    if (pout) {
      pset.dump(pout, 2);
      pout << "\n";
      std::printf("[profile: %s]\n", prof_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", prof_path.c_str());
    }
  }
  return 0;
}
