// Ablation: power-down aggressiveness. The paper assumes the strictest
// governor - enter power-down after the first idle clock cycle - and argues
// (Section V) that aggressive power-down is what keeps multi-channel average
// power in check. Sweep the idle threshold, including disabled.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: POWER-DOWN GOVERNOR (400 MHz, 4 channels, 1080p30)\n\n");
  std::printf("%-22s %14s %14s %16s\n", "enter after [cycles]", "power [mW]",
              "access [ms]", "PD entries");

  for (const int idle : {-1, 1, 16, 256, 4096}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 4;
    cfg.base.controller.powerdown_idle_cycles = idle;
    video::UseCaseParams uc = cfg.usecase;
    uc.level = video::H264Level::k40;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
    char label[32];
    if (idle < 0) {
      std::snprintf(label, sizeof label, "disabled");
    } else {
      std::snprintf(label, sizeof label, "%d", idle);
    }
    std::printf("%-22s %14.0f %14.2f %16llu\n", label, r.total_power_mw,
                r.access_time.ms(),
                static_cast<unsigned long long>(r.stats.powerdown_entries));
  }
  std::printf("\nPaper Section V: \"aggressive use of power-down modes is "
              "necessary for energy efficient operation\".\n");
  return 0;
}
