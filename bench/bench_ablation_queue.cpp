// Ablation: controller queue depth x scheduler. The queue depth is the one
// free parameter calibrated against the paper's Fig. 3 narrative (200/266 MHz
// fail, 333 MHz marginal on one channel): depth 8 with FR-FCFS reproduces
// the paper's effective controller efficiency (~78-82 % on the mixed
// read/write stages). This bench makes that sensitivity explicit.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: QUEUE DEPTH x SCHEDULER (400 MHz, 1 channel, 720p30)\n\n");
  std::printf("%-10s %-10s %14s %14s %14s\n", "scheduler", "depth",
              "access [ms]", "row hit rate", "vs 33.3 ms");

  for (const auto sched :
       {ctrl::SchedulerPolicy::kFcfs, ctrl::SchedulerPolicy::kFrFcfs}) {
    for (const std::uint32_t depth : {2u, 4u, 8u, 16u, 32u, 64u}) {
      auto cfg = core::ExperimentConfig::paper_defaults();
      cfg.base.channels = 1;
      cfg.base.controller.scheduler = sched;
      cfg.base.controller.queue_depth = depth;
      const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
      std::printf("%-10s %-10u %14.2f %13.1f%% %14s\n",
                  std::string(to_string(sched)).c_str(), depth,
                  r.access_time.ms(), 100.0 * r.stats.row_hit_rate(),
                  r.meets_realtime
                      ? (r.meets_realtime_with_margin ? "meets" : "marginal")
                      : "misses");
    }
  }
  std::printf("\nDeeper queues batch read/write directions (fewer tWTR+CL "
              "turnaround bubbles); the paper default here is FR-FCFS with "
              "depth 8.\n");
  return 0;
}
