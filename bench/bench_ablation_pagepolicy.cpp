// Ablation: row-buffer page policy. The paper uses the open-page policy in
// all evaluations; this quantifies what closed-page would have cost for the
// streaming video-recording load.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: PAGE POLICY (RBC, 400 MHz, 2 channels, 720p30)\n\n");
  std::printf("%-8s %14s %14s %12s %14s\n", "policy", "access [ms]",
              "row hit rate", "activates", "power [mW]");

  for (const auto policy : {ctrl::PagePolicy::kOpen, ctrl::PagePolicy::kClosed,
                            ctrl::PagePolicy::kTimeout}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 2;
    cfg.base.controller.page_policy = policy;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
    std::printf("%-8s %14.2f %13.1f%% %12llu %14.0f\n",
                std::string(to_string(policy)).c_str(), r.access_time.ms(),
                100.0 * r.stats.row_hit_rate(),
                static_cast<unsigned long long>(r.stats.activates),
                r.total_power_mw);
  }
  std::printf("\nOpen page exploits the sequential video streams; closed page "
              "pays an ACT/PRE per burst.\n");
  return 0;
}
