// Reproduces the Section I premise: a software H.264 encoder's raw access
// bandwidth is enormous (the paper cites 5570 GB/s for 720p30 [2]), but
// "most of the bandwidth can be supplied by the cache memory", leaving the
// GB/s-scale execution-memory load of Table I. We sample macroblocks of the
// full-search access stream through a set-associative cache and scale.
#include <cstdio>

#include "cache/cache_model.hpp"
#include "load/cached_source.hpp"
#include "load/encoder_pattern_source.hpp"
#include "multichannel/memory_system.hpp"
#include "video/encoder_access.hpp"
#include "video/h264_levels.hpp"

int main() {
  using namespace mcm;
  const std::uint32_t sample_mbs = 400;  // sampled from 3600 at 720p
  const double fps = 30.0;

  video::EncoderAccessParams p;
  p.resolution = video::k720p;
  p.ref_frames = 4;
  p.mode = video::EncoderAccessMode::kAllTouches;
  p.candidate_step = 1;  // full search: every candidate position
  p.input_base = 0;
  p.ref_base = 1ull << 24;
  p.recon_base = 1ull << 27;
  p.max_macroblocks = sample_mbs;

  std::printf("CACHE FILTER: RAW ENCODER TRAFFIC vs EXECUTION-MEMORY TRAFFIC\n");
  std::printf("(720p30, 4 reference frames, +/-16 full search, %u of %u "
              "macroblocks sampled)\n\n",
              sample_mbs, video::frame_macroblocks(video::k720p));

  const double scale = static_cast<double>(video::frame_macroblocks(video::k720p)) /
                       sample_mbs * fps;

  std::printf("%-22s %16s %18s %12s\n", "cache", "raw [GB/s]", "to memory [GB/s]",
              "reduction");
  for (const std::uint64_t kib : {64ull, 256ull, 512ull, 2048ull}) {
    video::EncoderAccessGenerator gen(p);
    cache::CacheModel cache(cache::CacheConfig{kib * 1024, 8, 64, true});
    std::uint64_t raw = 0;
    while (auto a = gen.next()) {
      cache.access(a->addr, a->bytes, a->is_write);
      raw += a->bytes;
    }
    const double raw_gbps = static_cast<double>(raw) * scale / 1e9;
    const double mem_gbps =
        static_cast<double>(cache.miss_traffic_bytes()) * scale / 1e9;
    char label[32];
    std::snprintf(label, sizeof label, "%llu KiB / 8-way",
                  static_cast<unsigned long long>(kib));
    std::printf("%-22s %16.0f %18.2f %11.0fx\n", label, raw_gbps, mem_gbps,
                raw_gbps / mem_gbps);
  }
  std::printf("\nPaper: raw software-encoder traffic is thousands of GB/s "
              "(5570 GB/s incl. all candidate evaluations [2]); the cached "
              "execution-memory load is the ~GB/s Table I level.\n");

  // Part 2: the same filter as an online component - fine-grained encoder
  // accesses pass through a live cache and only the misses reach a 2-channel
  // memory system.
  std::printf("\nONLINE: cache-filtered encoder traffic into a 2-channel "
              "400 MHz system (%u sampled MBs)\n\n",
              sample_mbs / 4);
  std::printf("%-22s %14s %16s %14s\n", "cache", "hit rate", "mem traffic [MB]",
              "busy [ms]");
  for (const std::uint64_t kib : {64ull, 512ull}) {
    video::EncoderAccessParams op = p;
    op.max_macroblocks = sample_mbs / 4;
    auto fine = std::make_unique<load::EncoderPatternSource>("enc", op,
                                                             /*burst=*/64);
    load::CachedSource cached(std::move(fine),
                              cache::CacheConfig{kib * 1024, 8, 64, true});
    multichannel::SystemConfig cfg;
    cfg.channels = 2;
    multichannel::MemorySystem sys(cfg);
    Time last = Time::zero();
    while (!cached.done()) {
      const auto r = cached.head();
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        cached.advance();
      } else if (auto c = sys.process_next()) {
        last = max(last, c->done);
      }
    }
    last = max(last, sys.drain());
    char label[32];
    std::snprintf(label, sizeof label, "%llu KiB / 8-way",
                  static_cast<unsigned long long>(kib));
    std::printf("%-22s %13.1f%% %16.2f %14.2f\n", label,
                100.0 * cached.cache_stats().hit_rate(),
                static_cast<double>(sys.stats().bytes) / 1e6, last.ms());
  }
  return 0;
}
