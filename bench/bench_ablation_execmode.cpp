// Ablation: execution model. The paper abstracts the use case to a
// back-to-back state machine; the concurrent mode runs DisplayCtrl/audio as
// paced masters competing with the pipeline. Quantifies how much that
// abstraction matters.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: EXECUTION MODEL (400 MHz)\n\n");
  std::printf("%-14s %-10s %6s %14s %14s %14s\n", "mode", "level", "ch",
              "pipeline [ms]", "paced done", "power [mW]");

  for (const auto mode :
       {core::ExecutionMode::kStateMachine, core::ExecutionMode::kConcurrent}) {
    for (auto [level, ch] : {std::pair{video::H264Level::k31, 2u},
                                   {video::H264Level::k40, 4u}}) {
      auto cfg = core::ExperimentConfig::paper_defaults();
      cfg.base.channels = ch;
      cfg.sim.mode = mode;
      video::UseCaseParams uc = cfg.usecase;
      uc.level = level;
      const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
      char paced[24];
      if (mode == core::ExecutionMode::kConcurrent) {
        std::snprintf(paced, sizeof paced, "%.2f ms", r.paced_last_done.ms());
      } else {
        std::snprintf(paced, sizeof paced, "in-line");
      }
      std::printf("%-14s %-10s %6u %14.2f %14s %14.0f\n",
                  mode == core::ExecutionMode::kStateMachine ? "state-machine"
                                                             : "concurrent",
                  std::string(video::level_spec(level).name).c_str(), ch,
                  r.access_time.ms(), paced, r.total_power_mw);
    }
  }
  std::printf("\nThe state-machine abstraction (paper Section III) is fair: "
              "serializing the display volume costs about what its "
              "interference would.\n");
  return 0;
}
