// Reproduces Fig. 4: effect of encoding format on memory access time at
// 400 MHz, for 1/2/4/8 channels, against the 33 ms / 16.7 ms real-time lines.
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "core/experiments.hpp"
#include "core/result_export.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  const unsigned threads = benchutil::thread_request(argc, argv);
  const auto cfg = core::ExperimentConfig::paper_defaults();
  const auto points = core::sweep_formats(cfg, 400.0, threads);

  std::map<std::uint32_t, std::map<video::H264Level, const core::SweepPoint*>> grid;
  for (const auto& p : points) grid[p.channels][p.level] = &p;

  obs::RunReport report("fig4");
  core::export_config(report.config(), cfg.base, cfg.usecase);
  report.config()["freq_mhz"] = 400.0;
  report.config()["sweep"] = "format x channels";
  benchutil::stamp_threads(report, threads);
  for (const auto& p : points) {
    const auto& spec = video::level_spec(p.level);
    char label[64];
    std::snprintf(label, sizeof label, "L%s/%uch", std::string(spec.name).c_str(),
                  p.channels);
    auto& pt = report.add_point(label);
    pt["level"] = spec.name;
    pt["format"] = spec.format;
    pt["channels"] = p.channels;
    core::export_result(pt, p.result);
  }

  auto sink = benchutil::open_csv("fig4");
  if (sink.active()) {
    sink.csv().row({"level", "channels", "access_ms", "rt_req_ms", "meets_rt",
                    "meets_rt_margin"});
    for (const auto& p : points) {
      sink.csv()
          .field(video::level_spec(p.level).name)
          .field(static_cast<std::uint64_t>(p.channels))
          .field(p.result.access_time.ms(), 6)
          .field(p.result.frame_period.ms(), 6)
          .field(std::int64_t{p.result.meets_realtime})
          .field(std::int64_t{p.result.meets_realtime_with_margin});
      sink.csv().endrow();
    }
  }

  std::printf("FIG. 4: EFFECT OF ENCODING FORMAT ON MEMORY ACCESS TIME "
              "(clock 400 MHz)\n\n");
  std::printf("%-18s%12s", "Frame format", "RT req[ms]");
  for (const auto& [ch, _] : grid) std::printf("  %6u ch [ms]", ch);
  std::printf("\n");

  for (const auto level : video::kAllLevels) {
    const auto& spec = video::level_spec(level);
    char label[64];
    std::snprintf(label, sizeof label, "%ux%u@%.0f", spec.resolution.width,
                  spec.resolution.height, spec.fps);
    std::printf("%-18s%12.1f", label, 1000.0 / spec.fps);
    for (const auto& [ch, row] : grid) {
      const auto& r = row.at(level)->result;
      const char flag = !r.meets_realtime ? '!'
                        : (!r.meets_realtime_with_margin ? '~' : ' ');
      std::printf("  %10.2f %c ", r.access_time.ms(), flag);
    }
    std::printf("\n");
  }
  std::printf("\n'!' misses real time; '~' marginal (meets without the 15%% "
              "processing margin).\n\n");

  std::printf("Paper observations to verify:\n");
  std::printf("  - level 3.1 achievable with all interleaving schemes: %s\n",
              [&] {
                for (const auto& [ch, row] : grid) {
                  if (!row.at(video::H264Level::k31)->result.meets_realtime)
                    return "NO (mismatch)";
                }
                return "yes";
              }());
  std::printf("  - level 3.2 (720p60) requires at least two channels: 1ch %s, "
              "2ch %s\n",
              grid.at(1).at(video::H264Level::k32)->result.meets_realtime
                  ? "meets (mismatch)" : "fails",
              grid.at(2).at(video::H264Level::k32)->result.meets_realtime
                  ? "meets" : "FAILS (mismatch)");
  std::printf("  - 1080p30 employs at minimum four channels (safe side): "
              "2ch margin %s, 4ch margin %s\n",
              grid.at(2).at(video::H264Level::k40)->result.meets_realtime_with_margin
                  ? "ok" : "not met",
              grid.at(4).at(video::H264Level::k40)->result.meets_realtime_with_margin
                  ? "ok" : "NOT MET (mismatch)");
  std::printf("  - 1080p60 and 2160p30 push toward all eight channels: "
              "1080p60@4ch %s, 2160p30@8ch %s\n",
              grid.at(4).at(video::H264Level::k42)->result.meets_realtime ? "meets"
                                                                          : "fails",
              grid.at(8).at(video::H264Level::k52)->result.meets_realtime ? "meets"
                                                                          : "fails");
  const double ratio =
      grid.at(4).at(video::H264Level::k40)->result.demand_bandwidth_bytes_per_s /
      grid.at(4).at(video::H264Level::k31)->result.demand_bandwidth_bytes_per_s;
  std::printf("  - 1080p30 needs ~2.2x the bandwidth of 720p30: %.2fx\n", ratio);

  benchutil::write_report(report);
  return 0;
}
