// Ablation: address multiplexing type. The paper reports "somewhat better
// performance" for Row-Bank-Column (RBC) than Bank-Row-Column (BRC) and uses
// RBC throughout; RCB is included as an extra point.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: ADDRESS MULTIPLEXING (open page, 400 MHz)\n\n");
  std::printf("%-8s %-10s %14s %14s %12s\n", "mux", "level", "access [ms]",
              "row hit rate", "activates");

  for (const auto mux : {ctrl::AddressMux::kRBC, ctrl::AddressMux::kBRC,
                         ctrl::AddressMux::kRCB, ctrl::AddressMux::kRBCXor}) {
    for (auto [level, channels] :
         {std::pair{video::H264Level::k31, 2u}, {video::H264Level::k40, 4u}}) {
      auto cfg = core::ExperimentConfig::paper_defaults();
      cfg.base.mux = mux;
      cfg.base.channels = channels;
      video::UseCaseParams uc = cfg.usecase;
      uc.level = level;
      const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
      std::printf("%-8s %-10s %14.2f %13.1f%% %12llu\n",
                  std::string(to_string(mux)).c_str(),
                  std::string(video::level_spec(level).name).c_str(),
                  r.access_time.ms(), 100.0 * r.stats.row_hit_rate(),
                  static_cast<unsigned long long>(r.stats.activates));
    }
  }
  std::printf("\nPaper: RBC chosen over BRC (\"somewhat better performance\").\n");
  return 0;
}
