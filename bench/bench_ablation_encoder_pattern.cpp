// Ablation: encoder access pattern. The paper's load model issues very
// regular sequential traffic; this compares it against a macroblock-level
// motion-window reference pattern with the same volume but poorer row
// locality.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: ENCODER ACCESS PATTERN (400 MHz, 2 channels, 720p30)\n\n");
  std::printf("%-16s %14s %14s %12s %14s\n", "pattern", "access [ms]",
              "row hit rate", "activates", "power [mW]");

  for (const bool motion : {false, true}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 2;
    cfg.sim.load.motion_window_encoder = motion;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, cfg.usecase);
    std::printf("%-16s %14.2f %13.1f%% %12llu %14.0f\n",
                motion ? "motion-window" : "sequential", r.access_time.ms(),
                100.0 * r.stats.row_hit_rate(),
                static_cast<unsigned long long>(r.stats.activates),
                r.total_power_mw);
  }
  std::printf("\nSame Table I reference volume; the window pattern adds row "
              "misses and ACT energy, testing the sensitivity of the paper's "
              "\"regular and foreseeable\" load assumption.\n");
  return 0;
}
