// Extension study: device generations. What does the paper's "theoretical
// next generation mobile DDR" buy over a 2008 Mobile DDR part (200 MHz,
// 1.8 V), and what would an eight-bank tFAW-constrained follow-on add?
#include <cstdio>

#include "core/experiments.hpp"

namespace {

using namespace mcm;

void report(const char* name, const dram::DeviceSpec& device, double freq,
            std::uint32_t channels, video::H264Level level) {
  auto cfg = core::ExperimentConfig::paper_defaults();
  cfg.base.device = device;
  cfg.base.freq = Frequency{freq};
  cfg.base.channels = channels;
  video::UseCaseParams uc = cfg.usecase;
  uc.level = level;
  const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
  std::printf("%-24s %8.0f %4u %12.2f %10s %12.0f\n", name, freq, channels,
              r.access_time.ms(),
              r.meets_realtime ? (r.meets_realtime_with_margin ? "yes" : "margin")
                               : "NO",
              r.total_power_mw);
}

}  // namespace

int main() {
  std::printf("DEVICE GENERATIONS: 1080p30 RECORDING\n\n");
  std::printf("%-24s %8s %4s %12s %10s %12s\n", "device", "MHz", "ch",
              "access [ms]", "meets RT", "power [mW]");

  const auto lvl = video::H264Level::k40;
  // 2008 Mobile DDR tops out at 200 MHz: even 8 channels barely serve 1080p30,
  // at 1.8 V power.
  report("Mobile DDR (2008)", dram::DeviceSpec::mobile_ddr_2008(), 200.0, 4, lvl);
  report("Mobile DDR (2008)", dram::DeviceSpec::mobile_ddr_2008(), 200.0, 8, lvl);
  // The paper's next-generation estimate.
  report("next-gen mobile DDR", dram::DeviceSpec::next_gen_mobile_ddr(), 400.0, 4,
         lvl);
  report("next-gen mobile DDR", dram::DeviceSpec::next_gen_mobile_ddr(), 400.0, 8,
         lvl);
  // Eight-bank follow-on: 1 Gb clusters with a tFAW window.
  report("8-bank future (tFAW)", dram::DeviceSpec::eight_bank_future(), 400.0, 4,
         lvl);
  report("8-bank future (tFAW)", dram::DeviceSpec::eight_bank_future(), 533.0, 4,
         lvl);

  std::printf("\n2160p30 on the future part:\n");
  report("8-bank future (tFAW)", dram::DeviceSpec::eight_bank_future(), 533.0, 8,
         video::H264Level::k52);
  return 0;
}
