// Extension study: energy per frame across clock frequencies and channel
// counts ("race to sleep" with the paper's aggressive power-down), and the
// self-refresh governor's saving on the idle tail (Section V's call for
// novel policies).
#include <cstdio>

#include "core/experiments.hpp"

namespace {

using namespace mcm;

double energy_per_frame_mj(const core::FrameSimResult& r) {
  // Average power over the frame period x period = energy per frame.
  return r.total_power_mw * r.frame_period.seconds();  // mW*s = mJ
}

}  // namespace

int main() {
  std::printf("ENERGY PER FRAME: FREQUENCY / CHANNEL / GOVERNOR STUDY "
              "(720p30 recording)\n\n");

  const auto base = core::ExperimentConfig::paper_defaults();
  const core::FrameSimulator sim(base.sim);

  std::printf("%-10s", "MHz");
  for (const std::uint32_t ch : core::paper_channel_counts())
    std::printf("  %7u ch [mJ]", ch);
  std::printf("\n");
  for (const double freq : core::paper_frequencies()) {
    std::printf("%-10.0f", freq);
    for (const std::uint32_t ch : core::paper_channel_counts()) {
      auto cfg = base.base;
      cfg.freq = Frequency{freq};
      cfg.channels = ch;
      const auto r = sim.run(cfg, base.usecase);
      if (!r.meets_realtime) {
        std::printf("  %13s", "late");
      } else {
        std::printf("  %13.2f", energy_per_frame_mj(r));
      }
    }
    std::printf("\n");
  }

  std::printf("\nSelf-refresh governor on the idle tail (400 MHz):\n");
  std::printf("%-26s %14s %14s %14s\n", "configuration", "power [mW]",
              "energy [mJ]", "SR entries");
  for (const int sr : {-1, 64}) {
    for (const std::uint32_t ch : {1u, 4u}) {
      auto cfg = base.base;
      cfg.channels = ch;
      cfg.controller.selfrefresh_idle_cycles = sr;
      const auto r = sim.run(cfg, base.usecase);
      char label[48];
      std::snprintf(label, sizeof label, "%u ch, %s", ch,
                    sr < 0 ? "power-down only" : "self refresh");
      std::printf("%-26s %14.0f %14.2f %14llu\n", label, r.total_power_mw,
                  energy_per_frame_mj(r),
                  static_cast<unsigned long long>(r.stats.selfrefresh_entries));
    }
  }
  std::printf("\nHigher clocks finish the frame sooner and sleep longer, so "
              "energy per frame is nearly flat; self refresh trims the tail "
              "(refresh burns + power-down) further.\n");
  return 0;
}
