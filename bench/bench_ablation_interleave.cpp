// Ablation: channel interleaving granularity (Table II uses the 16 B
// minimum so one master transaction spans every channel). Coarser stripes
// serialize a single sequential stream onto fewer channels at a time.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: CHANNEL INTERLEAVING GRANULARITY "
              "(400 MHz, 4 channels, 1080p30)\n\n");
  std::printf("%-14s %14s %14s %14s\n", "stripe [B]", "access [ms]",
              "meets RT", "power [mW]");

  for (const std::uint32_t stripe : {16u, 64u, 256u, 1024u, 4096u, 65536u}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 4;
    cfg.base.interleave_bytes = stripe;
    video::UseCaseParams uc = cfg.usecase;
    uc.level = video::H264Level::k40;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
    std::printf("%-14u %14.2f %14s %14.0f\n", stripe, r.access_time.ms(),
                r.meets_realtime ? "yes" : "no", r.total_power_mw);
  }
  std::printf("\nPaper Table II: 16 B is the minimum practical granularity "
              "(burst 4 x 32-bit words) and maximizes single-master "
              "bandwidth.\n");
  return 0;
}
