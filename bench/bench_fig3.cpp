// Reproduces Fig. 3: effect of memory clock frequency on memory access time
// for one encoded 720p30 frame, for 1/2/4/8 channels, against the 33 ms
// real-time requirement.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "core/experiments.hpp"
#include "core/result_export.hpp"
#include "obs/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  const unsigned threads = benchutil::thread_request(argc, argv);
  const auto cfg = core::ExperimentConfig::paper_defaults();
  const auto points = core::sweep_frequency(cfg, video::H264Level::k31, threads);

  std::map<std::uint32_t, std::map<double, const core::SweepPoint*>> grid;
  for (const auto& p : points) grid[p.channels][p.freq_mhz] = &p;

  obs::RunReport report("fig3");
  core::export_config(report.config(), cfg.base, cfg.usecase);
  report.config()["sweep"] = "frequency x channels";
  benchutil::stamp_threads(report, threads);
  for (const auto& p : points) {
    char label[48];
    std::snprintf(label, sizeof label, "%.0fMHz/%uch", p.freq_mhz, p.channels);
    auto& pt = report.add_point(label);
    pt["freq_mhz"] = p.freq_mhz;
    pt["channels"] = p.channels;
    core::export_result(pt, p.result);
  }

  // Instrumented headline run (400 MHz x 4 ch, one 720p30 frame): publishes
  // the full metric catalogue into the report; MCM_TRACE_FILE additionally
  // streams the JSONL command/request trace there.
  {
    core::ExperimentConfig icfg = cfg;
    icfg.base.freq = Frequency{400.0};
    icfg.base.channels = 4;
    obs::MetricsRegistry reg;
    icfg.sim.metrics = &reg;
    if (const char* tf = std::getenv("MCM_TRACE_FILE")) icfg.sim.trace_path = tf;
    static_cast<void>(core::FrameSimulator(icfg.sim).run(icfg.base, icfg.usecase));
    report.add_metrics(reg);
  }

  auto sink = benchutil::open_csv("fig3");
  if (sink.active()) {
    sink.csv().row({"freq_mhz", "channels", "access_ms", "meets_rt",
                    "meets_rt_margin"});
    for (const auto& p : points) {
      sink.csv()
          .field(p.freq_mhz, 4)
          .field(static_cast<std::uint64_t>(p.channels))
          .field(p.result.access_time.ms(), 6)
          .field(std::int64_t{p.result.meets_realtime})
          .field(std::int64_t{p.result.meets_realtime_with_margin});
      sink.csv().endrow();
    }
  }

  const Time realtime = points.front().result.frame_period;
  std::printf("FIG. 3: EFFECT OF MEMORY CLOCK FREQUENCY ON MEMORY ACCESS TIME\n");
  std::printf("(720p, H.264 level 3.1, one frame encoded; real-time req. %.1f ms "
              "for 30 fps)\n\n",
              realtime.ms());

  std::printf("%-10s", "MHz");
  for (const auto& [ch, _] : grid) std::printf("  %6u ch [ms]", ch);
  std::printf("\n");
  for (const double f : core::paper_frequencies()) {
    std::printf("%-10.0f", f);
    for (const auto& [ch, row] : grid) {
      const auto& r = row.at(f)->result;
      const char flag = !r.meets_realtime ? '!'
                        : (!r.meets_realtime_with_margin ? '~' : ' ');
      std::printf("  %10.2f %c ", r.access_time.ms(), flag);
    }
    std::printf("\n");
  }
  std::printf("\n'!' misses the 33 ms real-time requirement; '~' meets it but "
              "not with the 15%% processing margin (paper: \"marginal\").\n\n");

  std::printf("Paper observations to verify:\n");
  const auto& g1 = grid.at(1);
  std::printf("  - 1 channel fails at 200/266 MHz: %s/%s\n",
              g1.at(200.0)->result.meets_realtime ? "MEETS (mismatch)" : "fails",
              g1.at(266.0)->result.meets_realtime ? "MEETS (mismatch)" : "fails");
  std::printf("  - 1 channel at 333 MHz marginal: %s\n",
              g1.at(333.0)->result.meets_realtime &&
                      !g1.at(333.0)->result.meets_realtime_with_margin
                  ? "yes"
                  : (g1.at(333.0)->result.meets_realtime ? "meets with margin"
                                                         : "fails"));
  bool two_ok = true;
  for (const double f : core::paper_frequencies()) {
    two_ok = two_ok && grid.at(2).at(f)->result.meets_realtime;
  }
  std::printf("  - 2 channels meet 720p30 at every frequency: %s\n",
              two_ok ? "yes" : "NO (mismatch)");
  const double speedup_f = static_cast<double>(g1.at(200.0)->result.access_time.ps()) /
                           g1.at(400.0)->result.access_time.ps();
  const double speedup_c = static_cast<double>(g1.at(200.0)->result.access_time.ps()) /
                           grid.at(2).at(200.0)->result.access_time.ps();
  std::printf("  - ~2x speedup from doubling frequency: %.2fx; from doubling "
              "channels: %.2fx\n",
              speedup_f, speedup_c);

  benchutil::write_report(report);
  return 0;
}
