// Simulator micro-throughput (google-benchmark): requests served per second
// by the transaction-level engine for the common traffic shapes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "controller/memory_controller.hpp"
#include "multichannel/memory_system.hpp"

namespace {

using namespace mcm;

void BM_ControllerSequentialReads(benchmark::State& state) {
  const auto spec = dram::DeviceSpec::next_gen_mobile_ddr();
  std::uint64_t served = 0;
  for (auto _ : state) {
    ctrl::MemoryController mc(spec, Frequency{400.0}, ctrl::AddressMux::kRBC, {});
    std::uint64_t a = 0;
    for (int i = 0; i < 4096; ++i) {
      mc.enqueue(ctrl::Request{a, false, Time::zero(), 0});
      benchmark::DoNotOptimize(mc.process_one());
      a += 16;
    }
    served += 4096;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_ControllerSequentialReads);

void BM_ControllerRandomMix(benchmark::State& state) {
  const auto spec = dram::DeviceSpec::next_gen_mobile_ddr();
  std::uint64_t served = 0;
  Rng rng(1);
  for (auto _ : state) {
    ctrl::MemoryController mc(spec, Frequency{400.0}, ctrl::AddressMux::kRBC, {});
    for (int i = 0; i < 4096; ++i) {
      const std::uint64_t a = rng.next_below(spec.org.capacity_bytes() / 16) * 16;
      mc.enqueue(ctrl::Request{a, (i & 3) == 0, Time::zero(), 0});
      benchmark::DoNotOptimize(mc.process_one());
    }
    served += 4096;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_ControllerRandomMix);

void BM_MemorySystemFourChannels(benchmark::State& state) {
  multichannel::SystemConfig cfg;
  cfg.channels = 4;
  std::uint64_t served = 0;
  for (auto _ : state) {
    multichannel::MemorySystem sys(cfg);
    int submitted = 0;
    const int n = 8192;
    while (submitted < n) {
      const ctrl::Request r{static_cast<std::uint64_t>(submitted) * 16,
                            (submitted & 7) == 0, Time::zero(), 0};
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        ++submitted;
      } else {
        benchmark::DoNotOptimize(sys.process_next());
      }
    }
    benchmark::DoNotOptimize(sys.drain());
    served += n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_MemorySystemFourChannels);

void BM_AddressDecode(benchmark::State& state) {
  const auto org = dram::DeviceSpec::next_gen_mobile_ddr().org;
  const ctrl::AddressMapper mapper(org, ctrl::AddressMux::kRBC);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.decode(a));
    a += 16;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressDecode);

}  // namespace
