// Ablation: digital zoom factor z (Fig. 1 annotates the post-processing
// stage with ~N/(z x z)). Zooming in shrinks the post-processed and encoder
// input volumes; the encoder's reference traffic still covers the full coded
// frame, so the total load falls sub-linearly.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("ABLATION: DIGIZOOM FACTOR (720p30, 400 MHz, 2 channels)\n\n");
  std::printf("%-10s %16s %14s %14s\n", "zoom z", "demand [GB/s]", "access [ms]",
              "power [mW]");

  for (const double z : {1.0, 1.5, 2.0, 3.0}) {
    auto cfg = core::ExperimentConfig::paper_defaults();
    cfg.base.channels = 2;
    video::UseCaseParams uc = cfg.usecase;
    uc.digizoom = z;
    const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
    std::printf("%-10.1f %16.2f %14.2f %14.0f\n", z,
                r.demand_bandwidth_bytes_per_s / 1e9, r.access_time.ms(),
                r.total_power_mw);
  }
  std::printf("\nNote: the paper evaluates z = 1; the zoom path mostly "
              "relieves the scaling stages, not the encoder's reference "
              "traffic, so bandwidth relief saturates.\n");
  return 0;
}
