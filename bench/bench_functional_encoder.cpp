// Functional cross-validation of the paper's encoder-traffic model using
// the toy H.264-style encoder (real code, instrumented memory accesses):
//
//  1. Raw full-search traffic, scaled to 720p30, lands in the paper's
//     "thousands of GB/s" class (Section I cites 5570 GB/s [2]).
//  2. Behind a cache, the surviving reference traffic per macroblock is the
//     one-window load - the paper's "6 x N x #refs" at 12 bpp is exactly a
//     +/-16 luma window (2304 B/MB/ref), which Table I builds on.
#include <cstdio>

#include "cache/cache_model.hpp"
#include "pixel/encoder.hpp"
#include "pixel/stages.hpp"
#include "pixel/synthetic.hpp"
#include "video/h264_levels.hpp"

namespace {

using namespace mcm;

class CacheTracer final : public pixel::MemoryTracer {
 public:
  explicit CacheTracer(cache::CacheModel& c) : cache_(c) {}
  void access(std::uint64_t addr, std::uint32_t bytes, bool is_write) override {
    cache_.access(addr, bytes, is_write);
    raw_bytes_ += bytes;
    if (addr >= 0x3000'0000) ref_bytes_ += bytes;
  }
  cache::CacheModel& cache_;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t ref_bytes_ = 0;
};

}  // namespace

int main() {
  using pixel::SceneGenerator;
  // 320x192 sample, scaled to 720p30 by macroblock count.
  pixel::SceneParams scene;
  scene.width = 320;
  scene.height = 192;
  scene.pan_x = 1.2;
  scene.pan_y = -0.6;
  const SceneGenerator gen(scene);
  const std::uint32_t sample_mbs = (scene.width / 16) * (scene.height / 16);
  const std::uint32_t target_mbs = video::frame_macroblocks(video::k720p);
  const double scale = static_cast<double>(target_mbs) / sample_mbs * 30.0;

  pixel::EncoderConfig cfg;
  cfg.search_range = 16;
  cfg.max_ref_frames = 4;
  pixel::ToyEncoder enc(cfg, scene.width, scene.height);

  const auto frame = [&](int i) {
    return pixel::yuv422_to_yuv420(pixel::rgb_to_yuv422(gen.render(i)));
  };
  // Warm up the reference list.
  for (int i = 0; i < 4; ++i) (void)enc.encode(frame(i));

  std::printf("FUNCTIONAL ENCODER TRAFFIC (toy H.264 encoder, +/-16 full "
              "search, 4 refs; %ux%u sample scaled to 720p30)\n\n",
              scene.width, scene.height);

  cache::CacheModel cache(cache::CacheConfig{512 * 1024, 8, 64, true});
  CacheTracer tracer(cache);
  const pixel::FrameStats stats = enc.encode(frame(4), &tracer);

  const double raw_gbps = static_cast<double>(tracer.raw_bytes_) * scale / 1e9;
  const double mem_gbps =
      static_cast<double>(cache.miss_traffic_bytes()) * scale / 1e9;
  const double window_bytes_per_mb_ref =
      static_cast<double>(tracer.ref_bytes_) / sample_mbs / cfg.max_ref_frames;

  std::printf("frame quality:        %.1f dB PSNR, %.0f kbit coded\n",
              stats.psnr_y, stats.bits / 1e3);
  std::printf("raw access traffic:   %.0f GB/s at 720p30 (paper cites 5570 "
              "GB/s-class raw encoder traffic [2])\n",
              raw_gbps);
  std::printf("behind 512 KiB cache: %.2f GB/s to execution memory\n", mem_gbps);
  std::printf("reduction:            %.0fx\n", raw_gbps / mem_gbps);
  std::printf("\nreference reads/MB/ref: %.0f B raw; one +/-16 window is "
              "2304 B = the paper's 6 x 12 bit x 256 pel model\n",
              window_bytes_per_mb_ref);
  std::printf("cache-filtered ref traffic/MB/ref: %.0f B (window-level, "
              "matching the Table I encoder volume)\n",
              static_cast<double>(cache.miss_traffic_bytes()) / sample_mbs /
                  cfg.max_ref_frames);
  return 0;
}
