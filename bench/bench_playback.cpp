// Extension study: recording vs playback. Decoding does motion
// *compensation* (one reference read per block) instead of motion *search*
// (the paper's factor six x #refs), so playback's execution-memory load is
// ~5-6x below recording: one channel carries playback up to 1080p60, and
// 2160p30 playback needs just two.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/source_runner.hpp"
#include "load/playback_sources.hpp"
#include "video/playback.hpp"

int main() {
  using namespace mcm;
  std::printf("RECORDING vs PLAYBACK (400 MHz)\n\n");
  std::printf("%-12s %18s %18s %14s %16s\n", "format", "record [GB/s]",
              "playback [GB/s]", "ratio", "playback 1ch");

  for (const auto level : video::kAllLevels) {
    video::UseCaseParams rec;
    rec.level = level;
    const video::UseCaseModel record(rec);

    video::PlaybackParams pb;
    pb.level = level;
    const video::PlaybackModel playback(pb);

    // Run playback on a single channel.
    auto cfg = core::ExperimentConfig::paper_defaults().base;
    cfg.channels = 1;
    auto result = core::run_stage_sources(
        cfg, load::build_playback_sources(playback), playback.frame_period());

    const auto& spec = video::level_spec(level);
    char fmt[48];
    std::snprintf(fmt, sizeof fmt, "%ux%u@%.0f", spec.resolution.width,
                  spec.resolution.height, spec.fps);
    char verdict[48];
    std::snprintf(verdict, sizeof verdict, "%.1f ms, %.0f mW",
                  result.access_time.ms(), result.total_power_mw);
    std::printf("%-12s %18.2f %18.2f %13.1fx %16s\n", fmt,
                record.total_mb_per_second() / 1000.0,
                playback.total_mb_per_second() / 1000.0,
                record.total_mb_per_second() / playback.total_mb_per_second(),
                verdict);
  }
  std::printf("\nRecording needs the multi-channel organization; playback "
              "(no motion search, no camera chain) rides one channel up to "
              "1080p60 - the asymmetry that motivates per-use-case channel "
              "clusters (paper Section V).\n");
  return 0;
}
