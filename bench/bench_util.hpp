// Shared helpers for the benchmark binaries: optional CSV export and the
// machine-readable run report. When the MCM_CSV_DIR environment variable
// names a directory, each figure bench also writes its data series there as
// <name>.csv for external plotting. Every bench additionally funnels its
// results through obs::RunReport, written as <name>.report.json (to
// MCM_REPORT_DIR when set, the working directory otherwise; MCM_REPORT_DIR=off
// disables it).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/csv.hpp"
#include "explore/thread_pool.hpp"
#include "obs/run_report.hpp"

namespace mcm::benchutil {

/// Requested worker-thread count for parallel sweeps: `--threads N` on the
/// command line wins; 0 means "auto" (the pool then applies MCM_THREADS or
/// hardware_concurrency).
[[nodiscard]] inline unsigned thread_request(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 0;
}

/// Stamp the resolved worker count into the report config so perf
/// trajectories across runs are attributable to the pool size used.
inline void stamp_threads(obs::RunReport& report, unsigned requested) {
  report.config()["threads"] =
      explore::ThreadPool::resolve_thread_count(requested);
}

/// Returns a CSV writer bound to $MCM_CSV_DIR/<name>.csv, or nullptr when
/// the variable is unset or the file cannot be created.
struct CsvSink {
  std::ofstream file;
  std::unique_ptr<CsvWriter> writer;

  [[nodiscard]] bool active() const { return writer != nullptr; }
  [[nodiscard]] CsvWriter& csv() { return *writer; }
};

[[nodiscard]] inline CsvSink open_csv(const std::string& name) {
  CsvSink sink;
  const char* dir = std::getenv("MCM_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return sink;
  sink.file.open(std::string(dir) + "/" + name + ".csv");
  if (sink.file) {
    sink.writer = std::make_unique<CsvWriter>(sink.file);
  }
  return sink;
}

/// Write `report` to its default destination and note the path on stdout.
/// Benches call this last so the JSON sits next to the printed table.
inline void write_report(const obs::RunReport& report) {
  const std::string path = report.write_default();
  if (!path.empty()) {
    std::printf("[run report: %s]\n", path.c_str());
  } else if (!report.default_path().empty()) {
    std::fprintf(stderr, "cannot write run report %s\n",
                 report.default_path().c_str());
  }
}

}  // namespace mcm::benchutil
