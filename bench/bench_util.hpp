// Shared helpers for the benchmark binaries: optional CSV export. When the
// MCM_CSV_DIR environment variable names a directory, each figure bench also
// writes its data series there as <name>.csv for external plotting.
#pragma once

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/csv.hpp"

namespace mcm::benchutil {

/// Returns a CSV writer bound to $MCM_CSV_DIR/<name>.csv, or nullptr when
/// the variable is unset or the file cannot be created.
struct CsvSink {
  std::ofstream file;
  std::unique_ptr<CsvWriter> writer;

  [[nodiscard]] bool active() const { return writer != nullptr; }
  [[nodiscard]] CsvWriter& csv() { return *writer; }
};

[[nodiscard]] inline CsvSink open_csv(const std::string& name) {
  CsvSink sink;
  const char* dir = std::getenv("MCM_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return sink;
  sink.file.open(std::string(dir) + "/" + name + ".csv");
  if (sink.file) {
    sink.writer = std::make_unique<CsvWriter>(sink.file);
  }
  return sink;
}

}  // namespace mcm::benchutil
