// Reproduces Table I: memory bandwidth requirement for the stages of the
// video recording use case, for the five HD-compatible H.264/AVC levels.
// Values are per frame in Mb (decimal), as in the paper.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "video/usecase.hpp"

namespace {

using namespace mcm;

void print_row(const char* label, const std::vector<double>& values,
               const char* fmt = "%12.1f") {
  std::printf("%-28s", label);
  for (const double v : values) std::printf(fmt, v);
  std::printf("\n");
}

}  // namespace

int main() {
  std::vector<video::UseCaseModel> models;
  for (const auto level : video::kAllLevels) {
    video::UseCaseParams p;
    p.level = level;
    models.emplace_back(p);
  }

  obs::RunReport report("table1");
  report.config()["sweep"] = "H.264 levels (Table I load model)";
  for (const auto& m : models) {
    auto& pt = report.add_point(std::string("L") + std::string(m.level().name));
    pt["level"] = m.level().name;
    pt["format"] = m.level().format;
    pt["width"] = m.level().resolution.width;
    pt["height"] = m.level().resolution.height;
    pt["fps"] = m.level().fps;
    pt["ref_frames"] = m.ref_frames();
    pt["image_processing_mbit_per_frame"] =
        m.image_processing_bits_per_frame() / 1e6;
    pt["video_coding_mbit_per_frame"] = m.video_coding_bits_per_frame() / 1e6;
    pt["total_mbit_per_frame"] = m.total_bits_per_frame() / 1e6;
    pt["mb_per_second"] = m.total_mb_per_second();
    auto& stages = pt["stages"];
    stages = obs::JsonValue::array();
    for (const auto& s : m.stages()) {
      obs::JsonValue st = obs::JsonValue::object();
      st["name"] = s.name;
      st["read_mbit"] = s.read_bits / 1e6;
      st["write_mbit"] = s.write_bits / 1e6;
      st["image_processing"] = s.image_processing;
      stages.push(std::move(st));
    }
  }

  auto sink = mcm::benchutil::open_csv("table1");
  if (sink.active()) {
    sink.csv().row({"level", "stage", "read_mbit", "write_mbit", "total_mbit"});
    for (const auto& m : models) {
      for (const auto& s : m.stages()) {
        sink.csv()
            .field(m.level().name)
            .field(s.name)
            .field(s.read_bits / 1e6, 6)
            .field(s.write_bits / 1e6, 6)
            .field(s.total_mbits(), 6);
        sink.csv().endrow();
      }
    }
  }

  std::printf("TABLE I: MEMORY BANDWIDTH REQUIREMENT FOR THE VIDEO RECORDING "
              "USE CASE\n");
  std::printf("(per-frame numbers in Mb; M = 10^6)\n\n");

  std::printf("%-28s", "H.264/AVC Level");
  for (const auto& m : models) std::printf("%12s", std::string(m.level().name).c_str());
  std::printf("\n");
  std::printf("%-28s", "Format");
  for (const auto& m : models)
    std::printf("%12s", std::string(m.level().format).c_str());
  std::printf("\n");

  auto collect = [&](auto&& fn) {
    std::vector<double> v;
    for (const auto& m : models) v.push_back(fn(m));
    return v;
  };

  print_row("Width [pel]", collect([](const auto& m) {
              return static_cast<double>(m.level().resolution.width);
            }),
            "%12.0f");
  print_row("Height [pel]", collect([](const auto& m) {
              return static_cast<double>(m.level().resolution.height);
            }),
            "%12.0f");
  print_row("Limits [fps]",
            collect([](const auto& m) { return m.level().fps; }), "%12.0f");
  print_row("Max bitrate [Mb/s]",
            collect([](const auto& m) { return m.level().max_bitrate_mbps; }),
            "%12.0f");

  std::printf("\nIMAGE PROCESSING (bits per frame, read+write)\n");
  for (std::size_t s = 0; s < models.front().stages().size(); ++s) {
    if (!models.front().stages()[s].image_processing) continue;
    const std::string label = std::string(models.front().stages()[s].name) + " [Mb]";
    print_row(label.c_str(), collect([s](const auto& m) {
                return m.stages()[s].total_mbits();
              }));
  }
  print_row("Image proc. total (1 frame)", collect([](const auto& m) {
              return m.image_processing_bits_per_frame() / 1e6;
            }));

  std::printf("\nVIDEO CODING (bits per frame, read+write)\n");
  print_row("Nb of reference frames", collect([](const auto& m) {
              return static_cast<double>(m.ref_frames());
            }),
            "%12.0f");
  for (std::size_t s = 0; s < models.front().stages().size(); ++s) {
    if (models.front().stages()[s].image_processing) continue;
    const std::string label = std::string(models.front().stages()[s].name) + " [Mb]";
    print_row(label.c_str(), collect([s](const auto& m) {
                return m.stages()[s].total_mbits();
              }));
  }
  print_row("Video coding total (1 frame)", collect([](const auto& m) {
              return m.video_coding_bits_per_frame() / 1e6;
            }));

  std::printf("\nTOTAL\n");
  print_row("Data Mem. load (1 frame) [Mb]", collect([](const auto& m) {
              return m.total_bits_per_frame() / 1e6;
            }));
  print_row("Data Mem. load (1 s) [Mb]", collect([](const auto& m) {
              return m.total_bits_per_second() / 1e6;
            }),
            "%12.0f");
  print_row("Data Mem. load [MB/s]", collect([](const auto& m) {
              return m.total_mb_per_second();
            }),
            "%12.0f");

  std::printf("\nPaper anchors: 720p30 = 1.9 GB/s, 1080p30 = 4.3 GB/s (2.2x "
              "720p), 1080p60 = 8.6 GB/s.\n");
  std::printf("Model:         720p30 = %.2f GB/s, 1080p30 = %.2f GB/s (%.2fx), "
              "1080p60 = %.2f GB/s.\n",
              models[0].total_mb_per_second() / 1000.0,
              models[2].total_mb_per_second() / 1000.0,
              models[2].total_mb_per_second() / models[0].total_mb_per_second(),
              models[3].total_mb_per_second() / 1000.0);

  benchutil::write_report(report);
  return 0;
}
