// Reproduces Fig. 5: effect of encoding format on memory power consumption
// at 400 MHz, with the Eq. (1) interface power shown stacked on top. Bars
// are zeroed (like the paper) when a configuration cannot meet real time
// with the 15 % data-processing margin.
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "core/experiments.hpp"
#include "core/result_export.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  const unsigned threads = benchutil::thread_request(argc, argv);
  const auto cfg = core::ExperimentConfig::paper_defaults();
  const auto points = core::sweep_formats(cfg, 400.0, threads);

  std::map<std::uint32_t, std::map<video::H264Level, const core::SweepPoint*>> grid;
  for (const auto& p : points) grid[p.channels][p.level] = &p;

  obs::RunReport report("fig5");
  core::export_config(report.config(), cfg.base, cfg.usecase);
  report.config()["freq_mhz"] = 400.0;
  report.config()["sweep"] = "format x channels (power)";
  benchutil::stamp_threads(report, threads);
  for (const auto& p : points) {
    const auto& spec = video::level_spec(p.level);
    char label[64];
    std::snprintf(label, sizeof label, "L%s/%uch", std::string(spec.name).c_str(),
                  p.channels);
    auto& pt = report.add_point(label);
    pt["level"] = spec.name;
    pt["channels"] = p.channels;
    core::export_result(pt, p.result);
  }

  auto sink = benchutil::open_csv("fig5");
  if (sink.active()) {
    sink.csv().row({"level", "channels", "total_mw", "dram_mw", "interface_mw",
                    "meets_rt_margin"});
    for (const auto& p : points) {
      sink.csv()
          .field(video::level_spec(p.level).name)
          .field(static_cast<std::uint64_t>(p.channels))
          .field(p.result.total_power_mw, 6)
          .field(p.result.dram_power_mw, 6)
          .field(p.result.interface_power_mw, 6)
          .field(std::int64_t{p.result.meets_realtime_with_margin});
      sink.csv().endrow();
    }
  }

  std::printf("FIG. 5: EFFECT OF ENCODING FORMAT ON MEMORY POWER CONSUMPTION "
              "(clock 400 MHz)\n");
  std::printf("(average power over the frame period; DRAM + interface[stacked]; "
              "0 = misses real time with 15%% margin)\n\n");

  std::printf("%-18s", "Frame format");
  for (const auto& [ch, _] : grid) std::printf("  %8u ch [mW]", ch);
  std::printf("\n");
  for (const auto level : video::kAllLevels) {
    const auto& spec = video::level_spec(level);
    char label[64];
    std::snprintf(label, sizeof label, "%ux%u@%.0f", spec.resolution.width,
                  spec.resolution.height, spec.fps);
    std::printf("%-18s", label);
    for (const auto& [ch, row] : grid) {
      const auto& r = row.at(level)->result;
      if (!r.meets_realtime_with_margin) {
        const char* tag = r.meets_realtime ? "MARGINAL" : "0";
        std::printf("  %14s", tag);
      } else {
        char cell[32];
        std::snprintf(cell, sizeof cell, "%.0f (if %.0f)", r.total_power_mw,
                      r.interface_power_mw);
        std::printf("  %14s", cell);
      }
    }
    std::printf("\n");
  }

  std::printf("\nPaper anchors @400 MHz: 720p/1ch 150 mW; 720p/8ch 205 mW; "
              "1080p30/4ch 345 mW; 2160p30/8ch ~1280 mW.\n");
  const auto mw = [&](std::uint32_t ch, video::H264Level lv) {
    return grid.at(ch).at(lv)->result.total_power_mw;
  };
  std::printf("Measured:               720p/1ch %.0f mW; 720p/8ch %.0f mW; "
              "1080p30/4ch %.0f mW; 2160p30/8ch %.0f mW.\n",
              mw(1, video::H264Level::k31), mw(8, video::H264Level::k31),
              mw(4, video::H264Level::k40), mw(8, video::H264Level::k52));

  benchutil::write_report(report);
  return 0;
}
