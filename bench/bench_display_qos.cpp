// Extension study: display quality-of-service. In concurrent mode the
// DisplayCtrl traffic competes with the recording pipeline; its worst-case
// service latency bounds the scan-out FIFO the display needs. Sweeps channel
// count and the refresh-postponing policy (postponed refreshes keep tRFC
// stalls out of the way of latency-critical requests).
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace mcm;
  std::printf("DISPLAY QoS: PACED SCAN-OUT LATENCY UNDER RECORDING LOAD "
              "(1080p30, 400 MHz, concurrent mode)\n\n");
  std::printf("%-6s %-18s %14s %14s %16s\n", "ch", "refresh policy",
              "mean [ns]", "max [ns]", "FIFO @3.2GB/s [B]");

  for (const std::uint32_t ch : {2u, 4u, 8u}) {
    for (const std::uint32_t postpone : {0u, 8u}) {
      auto cfg = core::ExperimentConfig::paper_defaults();
      cfg.base.channels = ch;
      cfg.base.controller.refresh_postpone_max = postpone;
      cfg.sim.mode = core::ExecutionMode::kConcurrent;
      video::UseCaseParams uc = cfg.usecase;
      uc.level = video::H264Level::k40;
      const auto r = core::FrameSimulator(cfg.sim).run(cfg.base, uc);
      // A scan-out FIFO must cover max-latency x pixel-consumption rate
      // (WVGA RGB888 @60 Hz = 69 MB/s).
      const double fifo_bytes = r.paced_latency_ns.max() * 1e-9 * 69.1e6;
      std::printf("%-6u %-18s %14.0f %14.0f %16.0f\n", ch,
                  postpone == 0 ? "immediate" : "postpone up to 8",
                  r.paced_latency_ns.mean(), r.paced_latency_ns.max(),
                  fifo_bytes);
    }
  }
  std::printf("\nMore channels cut queueing delay and shrink the scan-out "
              "FIFO a real device would need. Refresh postponing is largely "
              "neutral here: the worst case is queueing behind in-flight "
              "pipeline bursts, not tRFC (which already mostly lands in idle "
              "gaps).\n");
  return 0;
}
