file(REMOVE_RECURSE
  "CMakeFiles/bench_gop.dir/bench_gop.cpp.o"
  "CMakeFiles/bench_gop.dir/bench_gop.cpp.o.d"
  "bench_gop"
  "bench_gop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
