# Empty compiler generated dependencies file for bench_gop.
# This may be replaced when dependencies are built.
