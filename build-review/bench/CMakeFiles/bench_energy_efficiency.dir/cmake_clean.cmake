file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_efficiency.dir/bench_energy_efficiency.cpp.o"
  "CMakeFiles/bench_energy_efficiency.dir/bench_energy_efficiency.cpp.o.d"
  "bench_energy_efficiency"
  "bench_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
