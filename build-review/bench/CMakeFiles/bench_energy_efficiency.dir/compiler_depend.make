# Empty compiler generated dependencies file for bench_energy_efficiency.
# This may be replaced when dependencies are built.
