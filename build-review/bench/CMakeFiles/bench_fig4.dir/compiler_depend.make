# Empty compiler generated dependencies file for bench_fig4.
# This may be replaced when dependencies are built.
