# Empty dependencies file for bench_ablation_interconnect.
# This may be replaced when dependencies are built.
