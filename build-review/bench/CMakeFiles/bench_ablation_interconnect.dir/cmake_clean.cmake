file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interconnect.dir/bench_ablation_interconnect.cpp.o"
  "CMakeFiles/bench_ablation_interconnect.dir/bench_ablation_interconnect.cpp.o.d"
  "bench_ablation_interconnect"
  "bench_ablation_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
