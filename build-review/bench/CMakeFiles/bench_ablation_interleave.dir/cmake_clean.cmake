file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interleave.dir/bench_ablation_interleave.cpp.o"
  "CMakeFiles/bench_ablation_interleave.dir/bench_ablation_interleave.cpp.o.d"
  "bench_ablation_interleave"
  "bench_ablation_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
