# Empty compiler generated dependencies file for bench_ablation_interleave.
# This may be replaced when dependencies are built.
