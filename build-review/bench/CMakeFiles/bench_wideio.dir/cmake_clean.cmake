file(REMOVE_RECURSE
  "CMakeFiles/bench_wideio.dir/bench_wideio.cpp.o"
  "CMakeFiles/bench_wideio.dir/bench_wideio.cpp.o.d"
  "bench_wideio"
  "bench_wideio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wideio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
