# Empty dependencies file for bench_wideio.
# This may be replaced when dependencies are built.
