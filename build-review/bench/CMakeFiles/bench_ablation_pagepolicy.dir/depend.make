# Empty dependencies file for bench_ablation_pagepolicy.
# This may be replaced when dependencies are built.
