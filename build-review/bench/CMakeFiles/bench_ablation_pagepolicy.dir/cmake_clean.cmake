file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pagepolicy.dir/bench_ablation_pagepolicy.cpp.o"
  "CMakeFiles/bench_ablation_pagepolicy.dir/bench_ablation_pagepolicy.cpp.o.d"
  "bench_ablation_pagepolicy"
  "bench_ablation_pagepolicy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pagepolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
