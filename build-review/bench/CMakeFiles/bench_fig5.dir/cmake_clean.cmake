file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5.dir/bench_fig5.cpp.o"
  "CMakeFiles/bench_fig5.dir/bench_fig5.cpp.o.d"
  "bench_fig5"
  "bench_fig5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
