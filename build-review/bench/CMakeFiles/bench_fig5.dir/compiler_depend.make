# Empty compiler generated dependencies file for bench_fig5.
# This may be replaced when dependencies are built.
