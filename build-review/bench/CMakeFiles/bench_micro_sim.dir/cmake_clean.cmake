file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sim.dir/bench_micro_sim.cpp.o"
  "CMakeFiles/bench_micro_sim.dir/bench_micro_sim.cpp.o.d"
  "bench_micro_sim"
  "bench_micro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
