file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_powerdown.dir/bench_ablation_powerdown.cpp.o"
  "CMakeFiles/bench_ablation_powerdown.dir/bench_ablation_powerdown.cpp.o.d"
  "bench_ablation_powerdown"
  "bench_ablation_powerdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_powerdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
