# Empty dependencies file for bench_ablation_powerdown.
# This may be replaced when dependencies are built.
