# Empty compiler generated dependencies file for bench_cache_filter.
# This may be replaced when dependencies are built.
