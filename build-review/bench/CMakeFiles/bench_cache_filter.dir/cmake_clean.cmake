file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_filter.dir/bench_cache_filter.cpp.o"
  "CMakeFiles/bench_cache_filter.dir/bench_cache_filter.cpp.o.d"
  "bench_cache_filter"
  "bench_cache_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
