# Empty dependencies file for bench_ablation_addrmap.
# This may be replaced when dependencies are built.
