file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_addrmap.dir/bench_ablation_addrmap.cpp.o"
  "CMakeFiles/bench_ablation_addrmap.dir/bench_ablation_addrmap.cpp.o.d"
  "bench_ablation_addrmap"
  "bench_ablation_addrmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_addrmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
