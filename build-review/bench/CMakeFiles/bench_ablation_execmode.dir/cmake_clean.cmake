file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_execmode.dir/bench_ablation_execmode.cpp.o"
  "CMakeFiles/bench_ablation_execmode.dir/bench_ablation_execmode.cpp.o.d"
  "bench_ablation_execmode"
  "bench_ablation_execmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_execmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
