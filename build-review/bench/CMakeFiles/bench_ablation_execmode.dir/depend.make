# Empty dependencies file for bench_ablation_execmode.
# This may be replaced when dependencies are built.
