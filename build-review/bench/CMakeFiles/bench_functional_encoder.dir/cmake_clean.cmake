file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_encoder.dir/bench_functional_encoder.cpp.o"
  "CMakeFiles/bench_functional_encoder.dir/bench_functional_encoder.cpp.o.d"
  "bench_functional_encoder"
  "bench_functional_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
