# Empty compiler generated dependencies file for bench_functional_encoder.
# This may be replaced when dependencies are built.
