file(REMOVE_RECURSE
  "CMakeFiles/bench_level_requirements.dir/bench_level_requirements.cpp.o"
  "CMakeFiles/bench_level_requirements.dir/bench_level_requirements.cpp.o.d"
  "bench_level_requirements"
  "bench_level_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
