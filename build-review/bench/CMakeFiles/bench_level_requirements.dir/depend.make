# Empty dependencies file for bench_level_requirements.
# This may be replaced when dependencies are built.
