# Empty compiler generated dependencies file for bench_ablation_queue.
# This may be replaced when dependencies are built.
