file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_queue.dir/bench_ablation_queue.cpp.o"
  "CMakeFiles/bench_ablation_queue.dir/bench_ablation_queue.cpp.o.d"
  "bench_ablation_queue"
  "bench_ablation_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
