file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_encoder_pattern.dir/bench_ablation_encoder_pattern.cpp.o"
  "CMakeFiles/bench_ablation_encoder_pattern.dir/bench_ablation_encoder_pattern.cpp.o.d"
  "bench_ablation_encoder_pattern"
  "bench_ablation_encoder_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encoder_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
