# Empty dependencies file for bench_ablation_encoder_pattern.
# This may be replaced when dependencies are built.
