file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_digizoom.dir/bench_ablation_digizoom.cpp.o"
  "CMakeFiles/bench_ablation_digizoom.dir/bench_ablation_digizoom.cpp.o.d"
  "bench_ablation_digizoom"
  "bench_ablation_digizoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_digizoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
