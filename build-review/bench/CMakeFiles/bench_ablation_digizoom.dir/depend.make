# Empty dependencies file for bench_ablation_digizoom.
# This may be replaced when dependencies are built.
