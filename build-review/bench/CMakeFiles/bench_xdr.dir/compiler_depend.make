# Empty compiler generated dependencies file for bench_xdr.
# This may be replaced when dependencies are built.
