file(REMOVE_RECURSE
  "CMakeFiles/bench_xdr.dir/bench_xdr.cpp.o"
  "CMakeFiles/bench_xdr.dir/bench_xdr.cpp.o.d"
  "bench_xdr"
  "bench_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
