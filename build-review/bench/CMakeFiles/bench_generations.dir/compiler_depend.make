# Empty compiler generated dependencies file for bench_generations.
# This may be replaced when dependencies are built.
