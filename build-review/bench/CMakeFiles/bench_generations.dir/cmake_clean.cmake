file(REMOVE_RECURSE
  "CMakeFiles/bench_generations.dir/bench_generations.cpp.o"
  "CMakeFiles/bench_generations.dir/bench_generations.cpp.o.d"
  "bench_generations"
  "bench_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
