file(REMOVE_RECURSE
  "CMakeFiles/bench_playback.dir/bench_playback.cpp.o"
  "CMakeFiles/bench_playback.dir/bench_playback.cpp.o.d"
  "bench_playback"
  "bench_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
