# Empty dependencies file for bench_playback.
# This may be replaced when dependencies are built.
