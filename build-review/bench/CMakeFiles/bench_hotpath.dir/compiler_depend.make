# Empty compiler generated dependencies file for bench_hotpath.
# This may be replaced when dependencies are built.
