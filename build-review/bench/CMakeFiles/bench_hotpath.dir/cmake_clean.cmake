file(REMOVE_RECURSE
  "CMakeFiles/bench_hotpath.dir/bench_hotpath.cpp.o"
  "CMakeFiles/bench_hotpath.dir/bench_hotpath.cpp.o.d"
  "bench_hotpath"
  "bench_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
