file(REMOVE_RECURSE
  "CMakeFiles/bench_display_qos.dir/bench_display_qos.cpp.o"
  "CMakeFiles/bench_display_qos.dir/bench_display_qos.cpp.o.d"
  "bench_display_qos"
  "bench_display_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_display_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
