# Empty dependencies file for bench_display_qos.
# This may be replaced when dependencies are built.
