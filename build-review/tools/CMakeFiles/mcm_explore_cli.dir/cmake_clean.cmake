file(REMOVE_RECURSE
  "CMakeFiles/mcm_explore_cli.dir/mcm_explore.cpp.o"
  "CMakeFiles/mcm_explore_cli.dir/mcm_explore.cpp.o.d"
  "mcm_explore"
  "mcm_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_explore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
