# Empty compiler generated dependencies file for mcm_explore_cli.
# This may be replaced when dependencies are built.
