# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_dram[1]_include.cmake")
include("/root/repo/build-review/tests/test_controller[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs[1]_include.cmake")
include("/root/repo/build-review/tests/test_multichannel[1]_include.cmake")
include("/root/repo/build-review/tests/test_video[1]_include.cmake")
include("/root/repo/build-review/tests/test_load[1]_include.cmake")
include("/root/repo/build-review/tests/test_cache[1]_include.cmake")
include("/root/repo/build-review/tests/test_pixel[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_misc[1]_include.cmake")
include("/root/repo/build-review/tests/test_explore[1]_include.cmake")
