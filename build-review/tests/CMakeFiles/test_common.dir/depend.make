# Empty dependencies file for test_common.
# This may be replaced when dependencies are built.
