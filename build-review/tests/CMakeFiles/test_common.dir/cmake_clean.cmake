file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/config_test.cpp.o"
  "CMakeFiles/test_common.dir/common/config_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/csv_test.cpp.o"
  "CMakeFiles/test_common.dir/common/csv_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/stats_test.cpp.o"
  "CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/units_test.cpp.o"
  "CMakeFiles/test_common.dir/common/units_test.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
