# Empty compiler generated dependencies file for test_pixel.
# This may be replaced when dependencies are built.
