file(REMOVE_RECURSE
  "CMakeFiles/test_pixel.dir/pixel/encoder_test.cpp.o"
  "CMakeFiles/test_pixel.dir/pixel/encoder_test.cpp.o.d"
  "CMakeFiles/test_pixel.dir/pixel/image_test.cpp.o"
  "CMakeFiles/test_pixel.dir/pixel/image_test.cpp.o.d"
  "CMakeFiles/test_pixel.dir/pixel/stages_test.cpp.o"
  "CMakeFiles/test_pixel.dir/pixel/stages_test.cpp.o.d"
  "CMakeFiles/test_pixel.dir/pixel/synthetic_test.cpp.o"
  "CMakeFiles/test_pixel.dir/pixel/synthetic_test.cpp.o.d"
  "CMakeFiles/test_pixel.dir/pixel/transform_test.cpp.o"
  "CMakeFiles/test_pixel.dir/pixel/transform_test.cpp.o.d"
  "test_pixel"
  "test_pixel.pdb"
  "test_pixel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pixel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
