file(REMOVE_RECURSE
  "CMakeFiles/test_load.dir/load/cached_source_test.cpp.o"
  "CMakeFiles/test_load.dir/load/cached_source_test.cpp.o.d"
  "CMakeFiles/test_load.dir/load/encoder_pattern_source_test.cpp.o"
  "CMakeFiles/test_load.dir/load/encoder_pattern_source_test.cpp.o.d"
  "CMakeFiles/test_load.dir/load/multi_stream_source_test.cpp.o"
  "CMakeFiles/test_load.dir/load/multi_stream_source_test.cpp.o.d"
  "CMakeFiles/test_load.dir/load/source_fuzz_test.cpp.o"
  "CMakeFiles/test_load.dir/load/source_fuzz_test.cpp.o.d"
  "CMakeFiles/test_load.dir/load/stream_cache_test.cpp.o"
  "CMakeFiles/test_load.dir/load/stream_cache_test.cpp.o.d"
  "CMakeFiles/test_load.dir/load/trace_test.cpp.o"
  "CMakeFiles/test_load.dir/load/trace_test.cpp.o.d"
  "CMakeFiles/test_load.dir/load/usecase_sources_test.cpp.o"
  "CMakeFiles/test_load.dir/load/usecase_sources_test.cpp.o.d"
  "test_load"
  "test_load.pdb"
  "test_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
