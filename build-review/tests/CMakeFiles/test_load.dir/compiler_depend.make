# Empty compiler generated dependencies file for test_load.
# This may be replaced when dependencies are built.
