
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/obs/json_test.cpp" "tests/CMakeFiles/test_obs.dir/obs/json_test.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/obs/json_test.cpp.o.d"
  "/root/repo/tests/obs/metrics_test.cpp" "tests/CMakeFiles/test_obs.dir/obs/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/obs/metrics_test.cpp.o.d"
  "/root/repo/tests/obs/obs_integration_test.cpp" "tests/CMakeFiles/test_obs.dir/obs/obs_integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/obs/obs_integration_test.cpp.o.d"
  "/root/repo/tests/obs/run_report_test.cpp" "tests/CMakeFiles/test_obs.dir/obs/run_report_test.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/obs/run_report_test.cpp.o.d"
  "/root/repo/tests/obs/trace_test.cpp" "tests/CMakeFiles/test_obs.dir/obs/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_obs.dir/obs/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/explore/CMakeFiles/mcm_explore.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/mcm_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/multichannel/CMakeFiles/mcm_multichannel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/load/CMakeFiles/mcm_load.dir/DependInfo.cmake"
  "/root/repo/build-review/src/controller/CMakeFiles/mcm_controller.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/mcm_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dram/CMakeFiles/mcm_dram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/video/CMakeFiles/mcm_video.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pixel/CMakeFiles/mcm_pixel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cache/CMakeFiles/mcm_cache.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/exec/CMakeFiles/mcm_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
