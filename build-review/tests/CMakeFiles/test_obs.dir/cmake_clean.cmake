file(REMOVE_RECURSE
  "CMakeFiles/test_obs.dir/obs/json_test.cpp.o"
  "CMakeFiles/test_obs.dir/obs/json_test.cpp.o.d"
  "CMakeFiles/test_obs.dir/obs/metrics_test.cpp.o"
  "CMakeFiles/test_obs.dir/obs/metrics_test.cpp.o.d"
  "CMakeFiles/test_obs.dir/obs/obs_integration_test.cpp.o"
  "CMakeFiles/test_obs.dir/obs/obs_integration_test.cpp.o.d"
  "CMakeFiles/test_obs.dir/obs/run_report_test.cpp.o"
  "CMakeFiles/test_obs.dir/obs/run_report_test.cpp.o.d"
  "CMakeFiles/test_obs.dir/obs/trace_test.cpp.o"
  "CMakeFiles/test_obs.dir/obs/trace_test.cpp.o.d"
  "test_obs"
  "test_obs.pdb"
  "test_obs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
