# Empty dependencies file for test_obs.
# This may be replaced when dependencies are built.
