# Empty compiler generated dependencies file for test_sim.
# This may be replaced when dependencies are built.
