file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/clock_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/clock_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/event_queue_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
