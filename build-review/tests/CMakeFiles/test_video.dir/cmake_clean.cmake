file(REMOVE_RECURSE
  "CMakeFiles/test_video.dir/video/encoder_access_test.cpp.o"
  "CMakeFiles/test_video.dir/video/encoder_access_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/formats_test.cpp.o"
  "CMakeFiles/test_video.dir/video/formats_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/h264_levels_test.cpp.o"
  "CMakeFiles/test_video.dir/video/h264_levels_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/playback_test.cpp.o"
  "CMakeFiles/test_video.dir/video/playback_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/surfaces_test.cpp.o"
  "CMakeFiles/test_video.dir/video/surfaces_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/usecase_property_test.cpp.o"
  "CMakeFiles/test_video.dir/video/usecase_property_test.cpp.o.d"
  "CMakeFiles/test_video.dir/video/usecase_test.cpp.o"
  "CMakeFiles/test_video.dir/video/usecase_test.cpp.o.d"
  "test_video"
  "test_video.pdb"
  "test_video[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
