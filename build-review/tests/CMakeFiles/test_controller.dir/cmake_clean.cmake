file(REMOVE_RECURSE
  "CMakeFiles/test_controller.dir/controller/address_mapping_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/address_mapping_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/fastpath_equivalence_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/fastpath_equivalence_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/invariant_fuzz_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/invariant_fuzz_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/memory_controller_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/memory_controller_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/page_policy_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/page_policy_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/refresh_postpone_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/refresh_postpone_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/refresh_powerdown_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/refresh_powerdown_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/request_queue_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/request_queue_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/scheduler_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/scheduler_test.cpp.o.d"
  "CMakeFiles/test_controller.dir/controller/selfrefresh_test.cpp.o"
  "CMakeFiles/test_controller.dir/controller/selfrefresh_test.cpp.o.d"
  "test_controller"
  "test_controller.pdb"
  "test_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
