# Empty compiler generated dependencies file for test_controller.
# This may be replaced when dependencies are built.
