# Empty dependencies file for test_cache.
# This may be replaced when dependencies are built.
