file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache/cache_fuzz_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache/cache_fuzz_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache/cache_model_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache/cache_model_test.cpp.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
