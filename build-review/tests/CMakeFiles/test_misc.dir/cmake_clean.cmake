file(REMOVE_RECURSE
  "CMakeFiles/test_misc.dir/misc/misc_test.cpp.o"
  "CMakeFiles/test_misc.dir/misc/misc_test.cpp.o.d"
  "test_misc"
  "test_misc.pdb"
  "test_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
