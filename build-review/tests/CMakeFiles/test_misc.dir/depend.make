# Empty dependencies file for test_misc.
# This may be replaced when dependencies are built.
