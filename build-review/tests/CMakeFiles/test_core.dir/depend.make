# Empty dependencies file for test_core.
# This may be replaced when dependencies are built.
