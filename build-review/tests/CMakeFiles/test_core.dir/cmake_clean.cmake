file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/analytic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/analytic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/concurrent_mode_test.cpp.o"
  "CMakeFiles/test_core.dir/core/concurrent_mode_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/experiments_test.cpp.o"
  "CMakeFiles/test_core.dir/core/experiments_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/fastpath_golden_test.cpp.o"
  "CMakeFiles/test_core.dir/core/fastpath_golden_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/frame_simulator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/frame_simulator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o"
  "CMakeFiles/test_core.dir/core/integration_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/paper_results_test.cpp.o"
  "CMakeFiles/test_core.dir/core/paper_results_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sharded_equivalence_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sharded_equivalence_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sim_threads_determinism_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sim_threads_determinism_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/source_runner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/source_runner_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
