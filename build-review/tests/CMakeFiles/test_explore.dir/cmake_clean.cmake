file(REMOVE_RECURSE
  "CMakeFiles/test_explore.dir/explore/orchestrator_test.cpp.o"
  "CMakeFiles/test_explore.dir/explore/orchestrator_test.cpp.o.d"
  "CMakeFiles/test_explore.dir/explore/pareto_test.cpp.o"
  "CMakeFiles/test_explore.dir/explore/pareto_test.cpp.o.d"
  "CMakeFiles/test_explore.dir/explore/spec_test.cpp.o"
  "CMakeFiles/test_explore.dir/explore/spec_test.cpp.o.d"
  "CMakeFiles/test_explore.dir/explore/thread_pool_test.cpp.o"
  "CMakeFiles/test_explore.dir/explore/thread_pool_test.cpp.o.d"
  "test_explore"
  "test_explore.pdb"
  "test_explore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
