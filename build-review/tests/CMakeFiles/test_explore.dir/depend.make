# Empty dependencies file for test_explore.
# This may be replaced when dependencies are built.
