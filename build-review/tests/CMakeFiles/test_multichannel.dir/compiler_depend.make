# Empty compiler generated dependencies file for test_multichannel.
# This may be replaced when dependencies are built.
