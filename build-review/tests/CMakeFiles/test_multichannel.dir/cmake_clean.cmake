file(REMOVE_RECURSE
  "CMakeFiles/test_multichannel.dir/multichannel/channel_clusters_test.cpp.o"
  "CMakeFiles/test_multichannel.dir/multichannel/channel_clusters_test.cpp.o.d"
  "CMakeFiles/test_multichannel.dir/multichannel/interleaver_test.cpp.o"
  "CMakeFiles/test_multichannel.dir/multichannel/interleaver_test.cpp.o.d"
  "CMakeFiles/test_multichannel.dir/multichannel/memory_system_test.cpp.o"
  "CMakeFiles/test_multichannel.dir/multichannel/memory_system_test.cpp.o.d"
  "test_multichannel"
  "test_multichannel.pdb"
  "test_multichannel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
