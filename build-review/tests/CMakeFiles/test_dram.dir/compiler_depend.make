# Empty compiler generated dependencies file for test_dram.
# This may be replaced when dependencies are built.
