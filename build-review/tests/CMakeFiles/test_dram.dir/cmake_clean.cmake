file(REMOVE_RECURSE
  "CMakeFiles/test_dram.dir/dram/bank_cluster_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/bank_cluster_test.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/bank_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/bank_test.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/checker_mutation_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/checker_mutation_test.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/energy_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/energy_test.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/spec_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/spec_test.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/tfaw_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/tfaw_test.cpp.o.d"
  "CMakeFiles/test_dram.dir/dram/timing_checker_test.cpp.o"
  "CMakeFiles/test_dram.dir/dram/timing_checker_test.cpp.o.d"
  "test_dram"
  "test_dram.pdb"
  "test_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
