file(REMOVE_RECURSE
  "CMakeFiles/memory_explorer.dir/memory_explorer.cpp.o"
  "CMakeFiles/memory_explorer.dir/memory_explorer.cpp.o.d"
  "memory_explorer"
  "memory_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
