# Empty dependencies file for memory_explorer.
# This may be replaced when dependencies are built.
