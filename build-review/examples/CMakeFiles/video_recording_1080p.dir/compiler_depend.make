# Empty compiler generated dependencies file for video_recording_1080p.
# This may be replaced when dependencies are built.
