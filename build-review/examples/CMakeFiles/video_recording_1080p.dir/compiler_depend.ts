# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for video_recording_1080p.
