file(REMOVE_RECURSE
  "CMakeFiles/video_recording_1080p.dir/video_recording_1080p.cpp.o"
  "CMakeFiles/video_recording_1080p.dir/video_recording_1080p.cpp.o.d"
  "video_recording_1080p"
  "video_recording_1080p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_recording_1080p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
