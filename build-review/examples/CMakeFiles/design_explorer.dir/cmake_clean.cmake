file(REMOVE_RECURSE
  "CMakeFiles/design_explorer.dir/design_explorer.cpp.o"
  "CMakeFiles/design_explorer.dir/design_explorer.cpp.o.d"
  "design_explorer"
  "design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
