# Empty dependencies file for design_explorer.
# This may be replaced when dependencies are built.
