file(REMOVE_RECURSE
  "CMakeFiles/channel_clusters.dir/channel_clusters.cpp.o"
  "CMakeFiles/channel_clusters.dir/channel_clusters.cpp.o.d"
  "channel_clusters"
  "channel_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
