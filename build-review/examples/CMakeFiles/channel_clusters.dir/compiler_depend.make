# Empty compiler generated dependencies file for channel_clusters.
# This may be replaced when dependencies are built.
