file(REMOVE_RECURSE
  "CMakeFiles/paper_report.dir/paper_report.cpp.o"
  "CMakeFiles/paper_report.dir/paper_report.cpp.o.d"
  "paper_report"
  "paper_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
