# Empty dependencies file for paper_report.
# This may be replaced when dependencies are built.
