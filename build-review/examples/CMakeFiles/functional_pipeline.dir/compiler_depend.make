# Empty compiler generated dependencies file for functional_pipeline.
# This may be replaced when dependencies are built.
