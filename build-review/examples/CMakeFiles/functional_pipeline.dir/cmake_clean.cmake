file(REMOVE_RECURSE
  "CMakeFiles/functional_pipeline.dir/functional_pipeline.cpp.o"
  "CMakeFiles/functional_pipeline.dir/functional_pipeline.cpp.o.d"
  "functional_pipeline"
  "functional_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
