# Empty compiler generated dependencies file for trace_replay.
# This may be replaced when dependencies are built.
