file(REMOVE_RECURSE
  "CMakeFiles/trace_replay.dir/trace_replay.cpp.o"
  "CMakeFiles/trace_replay.dir/trace_replay.cpp.o.d"
  "trace_replay"
  "trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
