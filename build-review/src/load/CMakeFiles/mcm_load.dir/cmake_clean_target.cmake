file(REMOVE_RECURSE
  "libmcm_load.a"
)
