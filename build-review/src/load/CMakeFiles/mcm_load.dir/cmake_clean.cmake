file(REMOVE_RECURSE
  "CMakeFiles/mcm_load.dir/cached_source.cpp.o"
  "CMakeFiles/mcm_load.dir/cached_source.cpp.o.d"
  "CMakeFiles/mcm_load.dir/encoder_pattern_source.cpp.o"
  "CMakeFiles/mcm_load.dir/encoder_pattern_source.cpp.o.d"
  "CMakeFiles/mcm_load.dir/multi_stream_source.cpp.o"
  "CMakeFiles/mcm_load.dir/multi_stream_source.cpp.o.d"
  "CMakeFiles/mcm_load.dir/playback_sources.cpp.o"
  "CMakeFiles/mcm_load.dir/playback_sources.cpp.o.d"
  "CMakeFiles/mcm_load.dir/stream_cache.cpp.o"
  "CMakeFiles/mcm_load.dir/stream_cache.cpp.o.d"
  "CMakeFiles/mcm_load.dir/trace.cpp.o"
  "CMakeFiles/mcm_load.dir/trace.cpp.o.d"
  "CMakeFiles/mcm_load.dir/usecase_sources.cpp.o"
  "CMakeFiles/mcm_load.dir/usecase_sources.cpp.o.d"
  "libmcm_load.a"
  "libmcm_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
