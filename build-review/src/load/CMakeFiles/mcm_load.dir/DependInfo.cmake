
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/load/cached_source.cpp" "src/load/CMakeFiles/mcm_load.dir/cached_source.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/cached_source.cpp.o.d"
  "/root/repo/src/load/encoder_pattern_source.cpp" "src/load/CMakeFiles/mcm_load.dir/encoder_pattern_source.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/encoder_pattern_source.cpp.o.d"
  "/root/repo/src/load/multi_stream_source.cpp" "src/load/CMakeFiles/mcm_load.dir/multi_stream_source.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/multi_stream_source.cpp.o.d"
  "/root/repo/src/load/playback_sources.cpp" "src/load/CMakeFiles/mcm_load.dir/playback_sources.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/playback_sources.cpp.o.d"
  "/root/repo/src/load/stream_cache.cpp" "src/load/CMakeFiles/mcm_load.dir/stream_cache.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/stream_cache.cpp.o.d"
  "/root/repo/src/load/trace.cpp" "src/load/CMakeFiles/mcm_load.dir/trace.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/trace.cpp.o.d"
  "/root/repo/src/load/usecase_sources.cpp" "src/load/CMakeFiles/mcm_load.dir/usecase_sources.cpp.o" "gcc" "src/load/CMakeFiles/mcm_load.dir/usecase_sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/controller/CMakeFiles/mcm_controller.dir/DependInfo.cmake"
  "/root/repo/build-review/src/video/CMakeFiles/mcm_video.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cache/CMakeFiles/mcm_cache.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dram/CMakeFiles/mcm_dram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/mcm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
