# Empty dependencies file for mcm_load.
# This may be replaced when dependencies are built.
