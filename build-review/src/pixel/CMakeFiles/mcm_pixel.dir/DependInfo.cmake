
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pixel/encoder.cpp" "src/pixel/CMakeFiles/mcm_pixel.dir/encoder.cpp.o" "gcc" "src/pixel/CMakeFiles/mcm_pixel.dir/encoder.cpp.o.d"
  "/root/repo/src/pixel/image.cpp" "src/pixel/CMakeFiles/mcm_pixel.dir/image.cpp.o" "gcc" "src/pixel/CMakeFiles/mcm_pixel.dir/image.cpp.o.d"
  "/root/repo/src/pixel/stages.cpp" "src/pixel/CMakeFiles/mcm_pixel.dir/stages.cpp.o" "gcc" "src/pixel/CMakeFiles/mcm_pixel.dir/stages.cpp.o.d"
  "/root/repo/src/pixel/synthetic.cpp" "src/pixel/CMakeFiles/mcm_pixel.dir/synthetic.cpp.o" "gcc" "src/pixel/CMakeFiles/mcm_pixel.dir/synthetic.cpp.o.d"
  "/root/repo/src/pixel/transform.cpp" "src/pixel/CMakeFiles/mcm_pixel.dir/transform.cpp.o" "gcc" "src/pixel/CMakeFiles/mcm_pixel.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
