file(REMOVE_RECURSE
  "libmcm_pixel.a"
)
