file(REMOVE_RECURSE
  "CMakeFiles/mcm_pixel.dir/encoder.cpp.o"
  "CMakeFiles/mcm_pixel.dir/encoder.cpp.o.d"
  "CMakeFiles/mcm_pixel.dir/image.cpp.o"
  "CMakeFiles/mcm_pixel.dir/image.cpp.o.d"
  "CMakeFiles/mcm_pixel.dir/stages.cpp.o"
  "CMakeFiles/mcm_pixel.dir/stages.cpp.o.d"
  "CMakeFiles/mcm_pixel.dir/synthetic.cpp.o"
  "CMakeFiles/mcm_pixel.dir/synthetic.cpp.o.d"
  "CMakeFiles/mcm_pixel.dir/transform.cpp.o"
  "CMakeFiles/mcm_pixel.dir/transform.cpp.o.d"
  "libmcm_pixel.a"
  "libmcm_pixel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_pixel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
