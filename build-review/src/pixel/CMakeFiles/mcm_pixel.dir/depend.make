# Empty dependencies file for mcm_pixel.
# This may be replaced when dependencies are built.
