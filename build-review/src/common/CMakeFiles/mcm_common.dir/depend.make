# Empty dependencies file for mcm_common.
# This may be replaced when dependencies are built.
