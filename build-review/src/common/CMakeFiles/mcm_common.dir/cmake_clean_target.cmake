file(REMOVE_RECURSE
  "libmcm_common.a"
)
