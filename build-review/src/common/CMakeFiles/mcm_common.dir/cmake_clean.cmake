file(REMOVE_RECURSE
  "CMakeFiles/mcm_common.dir/config.cpp.o"
  "CMakeFiles/mcm_common.dir/config.cpp.o.d"
  "CMakeFiles/mcm_common.dir/csv.cpp.o"
  "CMakeFiles/mcm_common.dir/csv.cpp.o.d"
  "CMakeFiles/mcm_common.dir/units.cpp.o"
  "CMakeFiles/mcm_common.dir/units.cpp.o.d"
  "libmcm_common.a"
  "libmcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
