
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/mcm_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/mcm_common.dir/config.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/mcm_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/mcm_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/common/CMakeFiles/mcm_common.dir/units.cpp.o" "gcc" "src/common/CMakeFiles/mcm_common.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
