# Empty compiler generated dependencies file for mcm_obs.
# This may be replaced when dependencies are built.
