file(REMOVE_RECURSE
  "libmcm_obs.a"
)
