
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/json.cpp" "src/obs/CMakeFiles/mcm_obs.dir/json.cpp.o" "gcc" "src/obs/CMakeFiles/mcm_obs.dir/json.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/obs/CMakeFiles/mcm_obs.dir/metrics.cpp.o" "gcc" "src/obs/CMakeFiles/mcm_obs.dir/metrics.cpp.o.d"
  "/root/repo/src/obs/run_report.cpp" "src/obs/CMakeFiles/mcm_obs.dir/run_report.cpp.o" "gcc" "src/obs/CMakeFiles/mcm_obs.dir/run_report.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/obs/CMakeFiles/mcm_obs.dir/trace.cpp.o" "gcc" "src/obs/CMakeFiles/mcm_obs.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
