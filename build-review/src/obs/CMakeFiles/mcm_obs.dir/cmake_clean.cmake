file(REMOVE_RECURSE
  "CMakeFiles/mcm_obs.dir/json.cpp.o"
  "CMakeFiles/mcm_obs.dir/json.cpp.o.d"
  "CMakeFiles/mcm_obs.dir/metrics.cpp.o"
  "CMakeFiles/mcm_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/mcm_obs.dir/run_report.cpp.o"
  "CMakeFiles/mcm_obs.dir/run_report.cpp.o.d"
  "CMakeFiles/mcm_obs.dir/trace.cpp.o"
  "CMakeFiles/mcm_obs.dir/trace.cpp.o.d"
  "libmcm_obs.a"
  "libmcm_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
