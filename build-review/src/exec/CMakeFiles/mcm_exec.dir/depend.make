# Empty dependencies file for mcm_exec.
# This may be replaced when dependencies are built.
