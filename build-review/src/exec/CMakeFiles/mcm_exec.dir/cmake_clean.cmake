file(REMOVE_RECURSE
  "CMakeFiles/mcm_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/mcm_exec.dir/thread_pool.cpp.o.d"
  "libmcm_exec.a"
  "libmcm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
