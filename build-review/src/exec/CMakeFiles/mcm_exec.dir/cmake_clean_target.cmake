file(REMOVE_RECURSE
  "libmcm_exec.a"
)
