# Empty compiler generated dependencies file for mcm_explore.
# This may be replaced when dependencies are built.
