file(REMOVE_RECURSE
  "CMakeFiles/mcm_explore.dir/explore_export.cpp.o"
  "CMakeFiles/mcm_explore.dir/explore_export.cpp.o.d"
  "CMakeFiles/mcm_explore.dir/orchestrator.cpp.o"
  "CMakeFiles/mcm_explore.dir/orchestrator.cpp.o.d"
  "CMakeFiles/mcm_explore.dir/pareto.cpp.o"
  "CMakeFiles/mcm_explore.dir/pareto.cpp.o.d"
  "CMakeFiles/mcm_explore.dir/spec.cpp.o"
  "CMakeFiles/mcm_explore.dir/spec.cpp.o.d"
  "CMakeFiles/mcm_explore.dir/sweeps.cpp.o"
  "CMakeFiles/mcm_explore.dir/sweeps.cpp.o.d"
  "libmcm_explore.a"
  "libmcm_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
