file(REMOVE_RECURSE
  "libmcm_explore.a"
)
