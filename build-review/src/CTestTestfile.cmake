# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("exec")
subdirs("sim")
subdirs("obs")
subdirs("dram")
subdirs("controller")
subdirs("channel")
subdirs("multichannel")
subdirs("video")
subdirs("pixel")
subdirs("load")
subdirs("cache")
subdirs("xdr")
subdirs("core")
subdirs("explore")
