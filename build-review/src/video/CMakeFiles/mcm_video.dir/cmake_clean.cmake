file(REMOVE_RECURSE
  "CMakeFiles/mcm_video.dir/encoder_access.cpp.o"
  "CMakeFiles/mcm_video.dir/encoder_access.cpp.o.d"
  "CMakeFiles/mcm_video.dir/h264_levels.cpp.o"
  "CMakeFiles/mcm_video.dir/h264_levels.cpp.o.d"
  "CMakeFiles/mcm_video.dir/playback.cpp.o"
  "CMakeFiles/mcm_video.dir/playback.cpp.o.d"
  "CMakeFiles/mcm_video.dir/surfaces.cpp.o"
  "CMakeFiles/mcm_video.dir/surfaces.cpp.o.d"
  "CMakeFiles/mcm_video.dir/usecase.cpp.o"
  "CMakeFiles/mcm_video.dir/usecase.cpp.o.d"
  "libmcm_video.a"
  "libmcm_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
