file(REMOVE_RECURSE
  "libmcm_video.a"
)
