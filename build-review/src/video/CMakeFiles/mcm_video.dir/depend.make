# Empty dependencies file for mcm_video.
# This may be replaced when dependencies are built.
