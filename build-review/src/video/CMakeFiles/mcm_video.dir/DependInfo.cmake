
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/encoder_access.cpp" "src/video/CMakeFiles/mcm_video.dir/encoder_access.cpp.o" "gcc" "src/video/CMakeFiles/mcm_video.dir/encoder_access.cpp.o.d"
  "/root/repo/src/video/h264_levels.cpp" "src/video/CMakeFiles/mcm_video.dir/h264_levels.cpp.o" "gcc" "src/video/CMakeFiles/mcm_video.dir/h264_levels.cpp.o.d"
  "/root/repo/src/video/playback.cpp" "src/video/CMakeFiles/mcm_video.dir/playback.cpp.o" "gcc" "src/video/CMakeFiles/mcm_video.dir/playback.cpp.o.d"
  "/root/repo/src/video/surfaces.cpp" "src/video/CMakeFiles/mcm_video.dir/surfaces.cpp.o" "gcc" "src/video/CMakeFiles/mcm_video.dir/surfaces.cpp.o.d"
  "/root/repo/src/video/usecase.cpp" "src/video/CMakeFiles/mcm_video.dir/usecase.cpp.o" "gcc" "src/video/CMakeFiles/mcm_video.dir/usecase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
