# CMake generated Testfile for 
# Source directory: /root/repo/src/video
# Build directory: /root/repo/build-review/src/video
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
