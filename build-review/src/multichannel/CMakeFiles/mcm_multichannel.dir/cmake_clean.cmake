file(REMOVE_RECURSE
  "CMakeFiles/mcm_multichannel.dir/channel_clusters.cpp.o"
  "CMakeFiles/mcm_multichannel.dir/channel_clusters.cpp.o.d"
  "CMakeFiles/mcm_multichannel.dir/memory_system.cpp.o"
  "CMakeFiles/mcm_multichannel.dir/memory_system.cpp.o.d"
  "libmcm_multichannel.a"
  "libmcm_multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
