# Empty compiler generated dependencies file for mcm_multichannel.
# This may be replaced when dependencies are built.
