file(REMOVE_RECURSE
  "libmcm_multichannel.a"
)
