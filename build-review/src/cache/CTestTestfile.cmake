# CMake generated Testfile for 
# Source directory: /root/repo/src/cache
# Build directory: /root/repo/build-review/src/cache
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
