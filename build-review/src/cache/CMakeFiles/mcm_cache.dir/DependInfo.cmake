
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_model.cpp" "src/cache/CMakeFiles/mcm_cache.dir/cache_model.cpp.o" "gcc" "src/cache/CMakeFiles/mcm_cache.dir/cache_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
