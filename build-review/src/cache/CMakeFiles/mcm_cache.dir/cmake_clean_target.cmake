file(REMOVE_RECURSE
  "libmcm_cache.a"
)
