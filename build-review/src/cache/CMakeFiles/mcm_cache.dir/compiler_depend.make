# Empty compiler generated dependencies file for mcm_cache.
# This may be replaced when dependencies are built.
