file(REMOVE_RECURSE
  "CMakeFiles/mcm_cache.dir/cache_model.cpp.o"
  "CMakeFiles/mcm_cache.dir/cache_model.cpp.o.d"
  "libmcm_cache.a"
  "libmcm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
