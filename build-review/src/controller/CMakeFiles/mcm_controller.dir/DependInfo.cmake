
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/address_mapping.cpp" "src/controller/CMakeFiles/mcm_controller.dir/address_mapping.cpp.o" "gcc" "src/controller/CMakeFiles/mcm_controller.dir/address_mapping.cpp.o.d"
  "/root/repo/src/controller/memory_controller.cpp" "src/controller/CMakeFiles/mcm_controller.dir/memory_controller.cpp.o" "gcc" "src/controller/CMakeFiles/mcm_controller.dir/memory_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/dram/CMakeFiles/mcm_dram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/mcm_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
