file(REMOVE_RECURSE
  "CMakeFiles/mcm_controller.dir/address_mapping.cpp.o"
  "CMakeFiles/mcm_controller.dir/address_mapping.cpp.o.d"
  "CMakeFiles/mcm_controller.dir/memory_controller.cpp.o"
  "CMakeFiles/mcm_controller.dir/memory_controller.cpp.o.d"
  "libmcm_controller.a"
  "libmcm_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
