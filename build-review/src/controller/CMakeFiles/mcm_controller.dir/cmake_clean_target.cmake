file(REMOVE_RECURSE
  "libmcm_controller.a"
)
