# Empty dependencies file for mcm_controller.
# This may be replaced when dependencies are built.
