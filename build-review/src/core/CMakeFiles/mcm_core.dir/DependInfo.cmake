
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/mcm_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/mcm_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/experiments.cpp" "src/core/CMakeFiles/mcm_core.dir/experiments.cpp.o" "gcc" "src/core/CMakeFiles/mcm_core.dir/experiments.cpp.o.d"
  "/root/repo/src/core/frame_simulator.cpp" "src/core/CMakeFiles/mcm_core.dir/frame_simulator.cpp.o" "gcc" "src/core/CMakeFiles/mcm_core.dir/frame_simulator.cpp.o.d"
  "/root/repo/src/core/result_export.cpp" "src/core/CMakeFiles/mcm_core.dir/result_export.cpp.o" "gcc" "src/core/CMakeFiles/mcm_core.dir/result_export.cpp.o.d"
  "/root/repo/src/core/sharded_engine.cpp" "src/core/CMakeFiles/mcm_core.dir/sharded_engine.cpp.o" "gcc" "src/core/CMakeFiles/mcm_core.dir/sharded_engine.cpp.o.d"
  "/root/repo/src/core/source_runner.cpp" "src/core/CMakeFiles/mcm_core.dir/source_runner.cpp.o" "gcc" "src/core/CMakeFiles/mcm_core.dir/source_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/exec/CMakeFiles/mcm_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/multichannel/CMakeFiles/mcm_multichannel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/load/CMakeFiles/mcm_load.dir/DependInfo.cmake"
  "/root/repo/build-review/src/video/CMakeFiles/mcm_video.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pixel/CMakeFiles/mcm_pixel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cache/CMakeFiles/mcm_cache.dir/DependInfo.cmake"
  "/root/repo/build-review/src/controller/CMakeFiles/mcm_controller.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/mcm_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dram/CMakeFiles/mcm_dram.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
