# Empty compiler generated dependencies file for mcm_core.
# This may be replaced when dependencies are built.
