file(REMOVE_RECURSE
  "CMakeFiles/mcm_core.dir/analytic.cpp.o"
  "CMakeFiles/mcm_core.dir/analytic.cpp.o.d"
  "CMakeFiles/mcm_core.dir/experiments.cpp.o"
  "CMakeFiles/mcm_core.dir/experiments.cpp.o.d"
  "CMakeFiles/mcm_core.dir/frame_simulator.cpp.o"
  "CMakeFiles/mcm_core.dir/frame_simulator.cpp.o.d"
  "CMakeFiles/mcm_core.dir/result_export.cpp.o"
  "CMakeFiles/mcm_core.dir/result_export.cpp.o.d"
  "CMakeFiles/mcm_core.dir/sharded_engine.cpp.o"
  "CMakeFiles/mcm_core.dir/sharded_engine.cpp.o.d"
  "CMakeFiles/mcm_core.dir/source_runner.cpp.o"
  "CMakeFiles/mcm_core.dir/source_runner.cpp.o.d"
  "libmcm_core.a"
  "libmcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
