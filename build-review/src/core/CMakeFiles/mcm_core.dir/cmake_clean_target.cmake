file(REMOVE_RECURSE
  "libmcm_core.a"
)
