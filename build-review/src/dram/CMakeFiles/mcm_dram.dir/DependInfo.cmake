
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/energy.cpp" "src/dram/CMakeFiles/mcm_dram.dir/energy.cpp.o" "gcc" "src/dram/CMakeFiles/mcm_dram.dir/energy.cpp.o.d"
  "/root/repo/src/dram/spec.cpp" "src/dram/CMakeFiles/mcm_dram.dir/spec.cpp.o" "gcc" "src/dram/CMakeFiles/mcm_dram.dir/spec.cpp.o.d"
  "/root/repo/src/dram/timing_checker.cpp" "src/dram/CMakeFiles/mcm_dram.dir/timing_checker.cpp.o" "gcc" "src/dram/CMakeFiles/mcm_dram.dir/timing_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/mcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
