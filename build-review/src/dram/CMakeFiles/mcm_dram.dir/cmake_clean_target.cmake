file(REMOVE_RECURSE
  "libmcm_dram.a"
)
