file(REMOVE_RECURSE
  "CMakeFiles/mcm_dram.dir/energy.cpp.o"
  "CMakeFiles/mcm_dram.dir/energy.cpp.o.d"
  "CMakeFiles/mcm_dram.dir/spec.cpp.o"
  "CMakeFiles/mcm_dram.dir/spec.cpp.o.d"
  "CMakeFiles/mcm_dram.dir/timing_checker.cpp.o"
  "CMakeFiles/mcm_dram.dir/timing_checker.cpp.o.d"
  "libmcm_dram.a"
  "libmcm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
