# Empty compiler generated dependencies file for mcm_dram.
# This may be replaced when dependencies are built.
