// Design-space explorer: use the closed-form analytic estimator (validated
// against the simulator within ~20 %) to scan hundreds of memory
// configurations per second, then print the Pareto frontier (power vs
// feasibility) for each H.264 level - the screening study a system architect
// would run before committing to detailed simulation.
//
//   $ ./design_explorer
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/analytic.hpp"
#include "core/experiments.hpp"

namespace {

using namespace mcm;

struct Candidate {
  double freq;
  std::uint32_t channels;
  core::AnalyticResult result;
};

}  // namespace

int main() {
  const auto base = core::ExperimentConfig::paper_defaults();
  const std::vector<double> freqs = {200, 233, 266, 300, 333, 366,
                                     400, 433, 466, 500, 533};
  const std::vector<std::uint32_t> channel_options = {1, 2, 3, 4, 6, 8};

  std::printf("DESIGN-SPACE EXPLORER (analytic model; %zu points per level)\n",
              freqs.size() * channel_options.size());
  std::printf("Cheapest feasible configurations per level (15%% margin):\n\n");
  std::printf("%-8s %-16s %10s %6s %12s %12s %12s\n", "level", "format", "MHz",
              "ch", "access[ms]", "power[mW]", "efficiency");

  for (const auto level : video::kAllLevels) {
    video::UseCaseParams uc = base.usecase;
    uc.level = level;
    const auto& spec = video::level_spec(level);

    std::vector<Candidate> feasible;
    for (const double f : freqs) {
      for (const std::uint32_t ch : channel_options) {
        auto sys = base.base;
        sys.freq = Frequency{f};
        sys.channels = ch;
        const auto r = core::analytic_estimate(sys, uc, base.sim.load);
        if (r.access_time.seconds() <= r.frame_period.seconds() * 0.85) {
          feasible.push_back(Candidate{f, ch, r});
        }
      }
    }
    std::sort(feasible.begin(), feasible.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.result.total_power_mw < b.result.total_power_mw;
              });

    char fmt[48];
    std::snprintf(fmt, sizeof fmt, "%ux%u@%.0f", spec.resolution.width,
                  spec.resolution.height, spec.fps);
    if (feasible.empty()) {
      std::printf("%-8s %-16s %10s\n", std::string(spec.name).c_str(), fmt,
                  "none feasible");
      continue;
    }
    // Print the three cheapest options.
    for (std::size_t i = 0; i < std::min<std::size_t>(3, feasible.size()); ++i) {
      const auto& c = feasible[i];
      std::printf("%-8s %-16s %10.0f %6u %12.2f %12.0f %11.0f%%\n",
                  i == 0 ? std::string(spec.name).c_str() : "", i == 0 ? fmt : "",
                  c.freq, c.channels, c.result.access_time.ms(),
                  c.result.total_power_mw, 100.0 * c.result.efficiency);
    }
  }

  std::printf("\nThe paper's picks (2 ch for 720p, 4 ch @400 MHz for 1080p30, "
              "8 ch for 2160p30) sit on or near this frontier; odd channel "
              "counts (3, 6) fill the gaps between the paper's power-of-two "
              "options.\n");
  return 0;
}
