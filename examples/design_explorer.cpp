// Design-space explorer: the two-phase screening study a system architect
// runs before committing to detailed simulation. Phase 1 sweeps a dense
// grid (11 frequencies x 6 channel counts per H.264 level) with the
// closed-form analytic estimator (hundreds of points per second); phase 2
// re-runs only each level's analytic Pareto frontier through the
// transaction-level simulator on the parallel orchestrator. Results print
// as per-level frontiers and export as design_explorer.report.json
// (schema mcm.explore/v1; honors MCM_REPORT_DIR like the benches).
//
//   $ ./design_explorer [--threads N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "explore/explore_export.hpp"
#include "explore/orchestrator.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"

int main(int argc, char** argv) {
  using namespace mcm;
  unsigned threads = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }

  explore::ExperimentSpec spec;
  spec.freq_mhz = {200, 233, 266, 300, 333, 366, 400, 433, 466, 500, 533};
  spec.channels = {1, 2, 3, 4, 6, 8};

  obs::MetricsRegistry metrics;

  // Phase 1: analytic screen of the full grid.
  explore::OrchestratorOptions screen_opt;
  screen_opt.threads = threads;
  screen_opt.engine = explore::Engine::kAnalytic;
  screen_opt.metrics = &metrics;
  const auto screened = explore::Orchestrator(screen_opt).run(spec);

  // Phase 2: each level's analytic frontier, re-simulated in detail.
  std::vector<explore::ExplorePoint> candidates;
  for (const auto& lf : explore::frontiers_by_level(screened, 0.15)) {
    for (const std::size_t idx : lf.frontier) {
      candidates.push_back(screened.results[idx].point);
    }
  }
  explore::OrchestratorOptions sim_opt;
  sim_opt.threads = threads;
  sim_opt.metrics = &metrics;
  const auto run =
      explore::Orchestrator(sim_opt).run(spec, std::move(candidates));

  std::printf("DESIGN-SPACE EXPLORER (two-phase: %zu points analytically "
              "screened, %zu frontier candidates simulated; %u threads)\n",
              screened.stats.points, run.stats.points, run.stats.threads);
  std::printf("Cheapest feasible configurations per level (15%% margin, "
              "simulated):\n\n");
  std::printf("%-8s %-16s %10s %6s %12s %12s\n", "level", "format", "MHz", "ch",
              "access[ms]", "power[mW]");

  for (const auto& lf : explore::frontiers_by_level(run, 0.15)) {
    const auto& spec_l = video::level_spec(lf.level);
    char fmt[48];
    std::snprintf(fmt, sizeof fmt, "%ux%u@%.0f", spec_l.resolution.width,
                  spec_l.resolution.height, spec_l.fps);
    if (lf.frontier.empty()) {
      std::printf("%-8s %-16s %10s\n", std::string(spec_l.name).c_str(), fmt,
                  "none feasible");
      continue;
    }
    std::vector<std::size_t> by_power(lf.frontier);
    std::sort(by_power.begin(), by_power.end(),
              [&](std::size_t a, std::size_t b) {
                return run.results[a].total_power_mw() <
                       run.results[b].total_power_mw();
              });
    for (std::size_t i = 0; i < std::min<std::size_t>(3, by_power.size());
         ++i) {
      const auto& r = run.results[by_power[i]];
      std::printf("%-8s %-16s %10.0f %6u %12.2f %12.0f\n",
                  i == 0 ? std::string(spec_l.name).c_str() : "",
                  i == 0 ? fmt : "", r.point.freq_mhz, r.point.channels,
                  r.access_time().ms(), r.total_power_mw());
    }
  }

  std::printf("\nThe paper's picks (2 ch for 720p, 4 ch @400 MHz for 1080p30, "
              "8 ch for 2160p30) sit on or near this frontier; odd channel "
              "counts (3, 6) fill the gaps between the paper's power-of-two "
              "options.\n");

  obs::RunReport report("design_explorer");
  explore::export_run(report, spec, run, 0.15);
  explore::export_run_stats(report, run.stats);
  report.root()["runtime"]["screened_points"] = screened.stats.points;
  report.add_metrics(metrics);
  const std::string path = report.write_default();
  if (!path.empty()) std::printf("[run report: %s]\n", path.c_str());
  return 0;
}
