// Trace record & replay: capture the full 720p30 use-case request stream to
// a text trace, reload it, and replay it through a memory configuration of
// choice. The same path replays externally generated traces (one DRAM burst
// per line: "<arrival_ps> <R|W> 0x<addr> [source]").
//
//   $ ./trace_replay                # record + replay via a temp file
//   $ ./trace_replay mytrace.txt    # replay an existing trace file
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/mcm.hpp"
#include "load/trace.hpp"

namespace {

using namespace mcm;

std::vector<ctrl::Request> record_usecase(video::H264Level level) {
  video::UseCaseParams p;
  p.level = level;
  const video::UseCaseModel model(p);
  const video::SurfaceLayout layout(model);
  std::vector<ctrl::Request> all;
  for (auto& src : load::build_stage_sources(model, layout)) {
    const auto part = load::record_source(*src);
    all.insert(all.end(), part.begin(), part.end());
  }
  // Keep the demo trace file a reasonable size (~12 MB on disk); a full
  // frame is ~4M requests. Replay timing scales accordingly.
  constexpr std::size_t kMaxRequests = 500'000;
  if (all.size() > kMaxRequests) all.resize(kMaxRequests);
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<ctrl::Request> trace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    try {
      trace = load::read_trace(in);
    } catch (const load::TraceError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("Loaded %zu requests from %s\n", trace.size(), argv[1]);
  } else {
    std::printf("Recording one 720p30 frame of the use case...\n");
    trace = record_usecase(video::H264Level::k31);
    const char* path = "usecase_720p30.trace";
    std::ofstream out(path);
    load::write_trace(out, trace);
    std::printf("Wrote %zu requests (%.1f MB of traffic) to %s\n", trace.size(),
                trace.size() * 16.0 / 1e6, path);
    // Round-trip through the file to prove the format is lossless.
    std::ifstream in(path);
    trace = load::read_trace(in);
  }

  for (const std::uint32_t channels : {1u, 2u, 4u}) {
    multichannel::SystemConfig cfg;
    cfg.channels = channels;
    multichannel::MemorySystem sys(cfg);
    load::TraceReplaySource replay(trace, "replay");
    Time last = Time::zero();
    while (!replay.done()) {
      const auto r = replay.head();
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        replay.advance();
      } else if (auto c = sys.process_next()) {
        last = max(last, c->done);
      }
    }
    last = max(last, sys.drain());
    const auto stats = sys.stats();
    std::printf("%u channel(s): served in %8.2f ms, %s, row hits %.1f%%\n",
                channels, last.ms(),
                format_bandwidth(static_cast<double>(stats.bytes) / last.seconds())
                    .c_str(),
                100.0 * stats.row_hit_rate());
  }
  return 0;
}
