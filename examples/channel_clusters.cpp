// Channel clusters (paper Section V, future work): divide a large
// multi-channel memory into independent clusters, one per memory master.
// Here two concurrent use cases - a 1080p30 recording and a 720p30 recording
// - run on (a) one shared 4-channel system and (b) two independent
// 2-channel clusters.
//
//   $ ./channel_clusters
#include <cstdio>
#include <memory>
#include <vector>

#include "core/mcm.hpp"

namespace {

using namespace mcm;

struct Pipeline {
  std::vector<std::unique_ptr<load::TrafficSource>> stages;
  std::size_t index = 0;
  std::uint64_t base = 0;  // address-space offset for this master

  explicit Pipeline(video::H264Level level, std::uint64_t base_addr) : base(base_addr) {
    video::UseCaseParams p;
    p.level = level;
    const video::UseCaseModel model(p);
    const video::SurfaceLayout layout(model);
    stages = load::build_stage_sources(model, layout);
  }

  [[nodiscard]] bool done() const { return index >= stages.size(); }
};

/// Alternate 64-burst quanta between two pipelines to emulate two concurrent
/// masters, and return when all traffic is served.
template <typename System>
Time run_two_masters(System& sys, Pipeline& a, Pipeline& b) {
  Time last = Time::zero();
  const auto pump = [&](Pipeline& p) {
    if (p.done()) return;
    auto& src = *p.stages[p.index];
    for (int burst = 0; burst < 64 && !src.done();) {
      ctrl::Request r = src.head();
      r.addr += p.base;
      if (sys.can_accept(r.addr)) {
        sys.submit(r);
        src.advance();
        ++burst;
      } else if (auto c = sys.process_next()) {
        last = max(last, c->done);
      }
    }
    if (src.done()) ++p.index;
  };
  while (!a.done() || !b.done()) {
    pump(a);
    pump(b);
  }
  return max(last, sys.drain());
}

}  // namespace

int main() {
  std::printf("CHANNEL CLUSTERS: two concurrent recordings (1080p30 + 720p30)\n\n");
  const std::uint64_t second_master_base = 128ull * 1024 * 1024;

  // (a) One shared 4-channel system: both masters interleave everywhere.
  multichannel::SystemConfig shared_cfg;
  shared_cfg.channels = 4;
  multichannel::MemorySystem shared(shared_cfg);
  Pipeline a1(video::H264Level::k40, 0);
  Pipeline a2(video::H264Level::k31, second_master_base);
  const Time t_shared = run_two_masters(shared, a1, a2);

  // (b) Two independent 2-channel clusters, one per master.
  multichannel::ClusterConfig cluster_cfg;
  cluster_cfg.clusters = 2;
  cluster_cfg.per_cluster.channels = 2;
  multichannel::ChannelClusterSystem clustered(cluster_cfg);
  Pipeline b1(video::H264Level::k40, 0);
  Pipeline b2(video::H264Level::k31, second_master_base);
  const Time t_clustered = run_two_masters(clustered, b1, b2);

  std::printf("  shared 4-channel system:   both streams served in %.2f ms\n",
              t_shared.ms());
  std::printf("  2 x 2-channel clusters:    both streams served in %.2f ms\n",
              t_clustered.ms());
  std::printf("  cluster 0 (1080p30): %.1f MB   cluster 1 (720p30): %.1f MB\n",
              static_cast<double>(clustered.cluster(0).stats().bytes) / 1e6,
              static_cast<double>(clustered.cluster(1).stats().bytes) / 1e6);
  std::printf("\nShared channels pool bandwidth across masters; clusters trade "
              "peak bandwidth for isolation and simpler per-cluster power "
              "management (paper Section V).\n");
  return 0;
}
