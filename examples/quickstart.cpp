// Quickstart: simulate one 1080p30 frame of the video recording use case on
// a 4-channel 400 MHz next-generation mobile DDR memory subsystem - the
// paper's headline configuration - and print the headline numbers.
//
//   $ ./quickstart
#include <cstdio>

#include "core/mcm.hpp"

int main() {
  using namespace mcm;

  // 1. Describe the memory subsystem (paper Fig. 2 / Section III).
  multichannel::SystemConfig memory;
  memory.device = dram::DeviceSpec::next_gen_mobile_ddr();
  memory.freq = Frequency{400.0};
  memory.channels = 4;
  memory.interleave_bytes = 16;            // Table II interleaving
  memory.mux = ctrl::AddressMux::kRBC;     // paper's pick
  memory.controller.page_policy = ctrl::PagePolicy::kOpen;
  memory.controller.powerdown_idle_cycles = 1;  // strict power saving

  // 2. Describe the workload (paper Fig. 1 / Table I).
  video::UseCaseParams usecase;
  usecase.level = video::H264Level::k40;  // 1080p @ 30 fps

  // 3. Run one frame and inspect the results.
  const core::FrameSimulator sim;
  const core::FrameSimResult r = sim.run(memory, usecase);

  const video::UseCaseModel model(usecase);
  std::printf("Workload:   H.264 level %s, %ux%u @ %.0f fps\n",
              std::string(model.level().name).c_str(),
              model.level().resolution.width, model.level().resolution.height,
              model.level().fps);
  std::printf("Demand:     %.2f GB/s (%s per frame)\n",
              model.total_mb_per_second() / 1000.0,
              format_bandwidth(r.demand_bandwidth_bytes_per_s).c_str());
  std::printf("Memory:     %u channels x 32 bit @ 400 MHz = %.1f GB/s peak\n",
              memory.channels, memory.channels * 3.2);
  std::printf("Access time: %.2f ms per frame (real-time limit %.2f ms) -> %s\n",
              r.access_time.ms(), r.frame_period.ms(),
              r.meets_realtime_with_margin
                  ? "meets real time with 15% margin"
                  : (r.meets_realtime ? "marginal" : "MISSES real time"));
  std::printf("Power:      %.0f mW average (%.0f mW DRAM + %.0f mW interface)\n",
              r.total_power_mw, r.dram_power_mw, r.interface_power_mw);
  std::printf("Row hits:   %.1f%% (activates: %llu, refreshes: %llu, "
              "power-downs: %llu)\n",
              100.0 * r.stats.row_hit_rate(),
              static_cast<unsigned long long>(r.stats.activates),
              static_cast<unsigned long long>(r.stats.refreshes),
              static_cast<unsigned long long>(r.stats.powerdown_entries));
  return 0;
}
