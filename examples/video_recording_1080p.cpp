// Full 1080p30 video recording walkthrough: runs several frames, prints the
// per-stage pipeline timeline (Fig. 1 stages), the per-channel load balance,
// and the energy breakdown that underlies the Fig. 5 bars.
//
//   $ ./video_recording_1080p [channels] [freq_mhz]
#include <cstdio>
#include <cstdlib>

#include "core/mcm.hpp"

int main(int argc, char** argv) {
  using namespace mcm;

  multichannel::SystemConfig memory;
  memory.channels = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  memory.freq = Frequency{argc > 2 ? std::atof(argv[2]) : 400.0};

  video::UseCaseParams usecase;
  usecase.level = video::H264Level::k40;  // 1080p30

  core::FrameSimOptions opt;
  opt.frames = 3;
  const core::FrameSimulator sim(opt);
  const core::FrameSimResult r = sim.run(memory, usecase);

  std::printf("=== 1080p30 video recording on %u channels @ %.0f MHz ===\n\n",
              memory.channels, memory.freq.mhz());

  std::printf("Pipeline timeline (first frame):\n");
  std::printf("  %-24s %12s %14s\n", "stage", "done [ms]", "traffic [MB]");
  for (const auto& s : r.stage_results) {
    std::printf("  %-24s %12.2f %14.2f\n", s.name.c_str(), s.completed.ms(),
                static_cast<double>(s.bytes) / 1e6);
  }

  std::printf("\nFrame access time: %.2f ms of %.2f ms budget (%s)\n",
              r.access_time.ms(), r.frame_period.ms(),
              r.meets_realtime_with_margin ? "OK with 15% margin"
              : r.meets_realtime           ? "marginal"
                                           : "MISSES real time");
  std::printf("Achieved bandwidth while busy: %s (demand %s)\n",
              format_bandwidth(r.achieved_bandwidth_bytes_per_s).c_str(),
              format_bandwidth(r.demand_bandwidth_bytes_per_s).c_str());

  std::printf("\nEnergy breakdown over %d frame periods:\n", opt.frames);
  const auto& b = r.power.dram;
  const double total = b.total_pj();
  const auto line = [&](const char* name, double pj) {
    std::printf("  %-22s %10.1f uJ  (%4.1f%%)\n", name, pj / 1e6,
                100.0 * pj / total);
  };
  line("activate/precharge", b.act_pre_pj);
  line("read bursts", b.read_pj);
  line("write bursts", b.write_pj);
  line("refresh", b.refresh_pj);
  line("active standby", b.active_standby_pj);
  line("precharge standby", b.precharge_standby_pj);
  line("active power-down", b.active_powerdown_pj);
  line("power-down", b.powerdown_pj);
  std::printf("Average power: %.0f mW DRAM + %.0f mW interface = %.0f mW\n",
              r.dram_power_mw, r.interface_power_mw, r.total_power_mw);

  std::printf("\nPer-channel balance:\n");
  for (std::size_t ch = 0; ch < r.power.per_channel.size(); ++ch) {
    std::printf("  channel %zu: %.0f mW\n", ch, r.power.per_channel[ch].total_mw);
  }
  return 0;
}
