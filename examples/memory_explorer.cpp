// Memory configuration explorer: reads a simple key=value config (file or
// defaults), runs the chosen use case, and prints a one-line verdict. Meant
// as the scripting-friendly entry point for parameter studies.
//
//   $ ./memory_explorer                       # paper defaults, 1080p30
//   $ ./memory_explorer my.cfg
//
// Config keys (all optional):
//   channels=4  freq_mhz=400  interleave_bytes=16  mux=RBC|BRC|RCB
//   page_policy=open|closed   scheduler=frfcfs|fcfs  queue_depth=16
//   powerdown_idle_cycles=1   level=3.1|3.2|4|4.2|5.2  frames=1
//   chunk_bytes=64            motion_window_encoder=false
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/mcm.hpp"

namespace {

using namespace mcm;

video::H264Level parse_level(const std::string& s) {
  for (const auto level : video::kAllLevels) {
    if (video::level_spec(level).name == s) return level;
  }
  throw ConfigError("unknown H.264 level: " + s);
}

ctrl::AddressMux parse_mux(const std::string& s) {
  if (s == "RBC") return ctrl::AddressMux::kRBC;
  if (s == "BRC") return ctrl::AddressMux::kBRC;
  if (s == "RCB") return ctrl::AddressMux::kRCB;
  throw ConfigError("unknown address mux: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
    if (argc > 1) cfg = Config::from_file(argv[1]);
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }

  try {
    multichannel::SystemConfig memory;
    memory.channels = static_cast<std::uint32_t>(cfg.get_int("channels", 4));
    memory.freq = Frequency{cfg.get_double("freq_mhz", 400.0)};
    memory.interleave_bytes =
        static_cast<std::uint32_t>(cfg.get_int("interleave_bytes", 16));
    memory.mux = parse_mux(cfg.get_string("mux", "RBC"));
    memory.controller.page_policy =
        cfg.get_string("page_policy", "open") == "open" ? ctrl::PagePolicy::kOpen
                                                        : ctrl::PagePolicy::kClosed;
    memory.controller.scheduler = cfg.get_string("scheduler", "frfcfs") == "fcfs"
                                      ? ctrl::SchedulerPolicy::kFcfs
                                      : ctrl::SchedulerPolicy::kFrFcfs;
    memory.controller.queue_depth =
        static_cast<std::uint32_t>(cfg.get_int("queue_depth", 16));
    memory.controller.powerdown_idle_cycles =
        static_cast<int>(cfg.get_int("powerdown_idle_cycles", 1));

    video::UseCaseParams usecase;
    usecase.level = parse_level(cfg.get_string("level", "4"));

    core::FrameSimOptions opt;
    opt.frames = static_cast<int>(cfg.get_int("frames", 1));
    opt.load.chunk_bytes =
        static_cast<std::uint32_t>(cfg.get_int("chunk_bytes", 64));
    opt.load.motion_window_encoder = cfg.get_bool("motion_window_encoder", false);

    const auto r = core::FrameSimulator(opt).run(memory, usecase);
    std::printf(
        "level=%s channels=%u freq=%.0fMHz mux=%s: access=%.2fms "
        "(budget %.2fms, %s) power=%.0fmW rowhit=%.1f%%\n",
        cfg.get_string("level", "4").c_str(), memory.channels, memory.freq.mhz(),
        std::string(to_string(memory.mux)).c_str(), r.access_time.ms(),
        r.frame_period.ms(),
        r.meets_realtime_with_margin ? "ok"
        : r.meets_realtime           ? "marginal"
                                     : "MISSED",
        r.total_power_mw, 100.0 * r.stats.row_hit_rate());
    return r.meets_realtime ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
