// End-to-end functional run of the Fig. 1 chain on real pixels: synthetic
// sensor -> Bayer denoise -> demosaic + YUV -> global-motion stabilization
// -> digizoom -> display scaling, plus the toy H.264-style encoder. Prints
// per-frame quality/motion/bitrate, demonstrating that every block of the
// paper's use case exists as working code.
//
//   $ ./functional_pipeline [frames]
#include <cstdio>
#include <cstdlib>

#include "pixel/encoder.hpp"
#include "pixel/stages.hpp"
#include "pixel/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace mcm::pixel;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 6;

  // Sensor captures a 20 % border around the coded frame (paper Fig. 1).
  const std::uint32_t coded_w = 320, coded_h = 192;
  SceneParams scene;
  scene.width = 384;   // ~1.2x
  scene.height = 240;
  scene.pan_x = 2.0;   // handshake the stabilizer must cancel
  scene.pan_y = -1.0;
  scene.noise_sigma = 2.0;
  const SceneGenerator sensor(scene);

  EncoderConfig ecfg;
  ecfg.qp = 26;
  ecfg.search_range = 8;
  ToyEncoder encoder(ecfg, coded_w, coded_h);

  std::printf("Functional video recording chain, %ux%u coded (%ux%u sensor), "
              "%d frames\n\n",
              coded_w, coded_h, scene.width, scene.height, frames);
  std::printf("%5s %12s %12s %12s %12s %10s\n", "frame", "est. motion",
              "stab crop", "PSNR [dB]", "bits", "mean|mv|");

  ImageU8 prev_luma;
  const int border_x = static_cast<int>((scene.width - coded_w) / 2);
  const int border_y = static_cast<int>((scene.height - coded_h) / 2);

  for (int f = 0; f < frames; ++f) {
    // Camera I/F + Preprocess + Bayer to YUV.
    const Rgb888Image raw = sensor.render(f);
    const ImageU8 bayer = denoise_box3(bayer_mosaic_rggb(raw));
    const Yuv422Image full = rgb_to_yuv422(demosaic_bilinear(bayer));

    // Video stabilization: estimate camera motion, compensate the crop.
    MotionVector mv{0, 0};
    if (!prev_luma.empty()) {
      mv = estimate_global_motion(prev_luma, full.y, 12);
    }
    prev_luma = full.y;
    const Yuv422Image stab =
        crop(full, border_x - mv.dx, border_y - mv.dy, coded_w, coded_h);

    // Post proc & digizoom (z = 1 here) + scaling to display handled by the
    // same bilinear scaler; encode the stabilized stream.
    const Yuv422Image post = scale_bilinear(stab, coded_w, coded_h);
    const Rgb888Image display = yuv422_to_rgb(scale_bilinear(post, 160, 96));
    (void)display;  // would be scanned out at 60 Hz

    const FrameStats stats = encoder.encode(yuv422_to_yuv420(post));
    char mv_str[40], crop_str[40];
    std::snprintf(mv_str, sizeof mv_str, "(%d,%d)", mv.dx, mv.dy);
    std::snprintf(crop_str, sizeof crop_str, "(%d,%d)", border_x - mv.dx,
                  border_y - mv.dy);
    std::printf("%5d %12s %12s %12.1f %12llu %10.2f\n", f, mv_str, crop_str,
                stats.psnr_y, static_cast<unsigned long long>(stats.bits),
                stats.mean_abs_mv);
  }

  std::printf("\nAfter stabilization the encoder sees near-zero residual "
              "motion (mean|mv| ~ 0), so inter frames code far below the "
              "intra frame's size.\n");
  return 0;
}
