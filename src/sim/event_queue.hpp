// Generic discrete-event priority queue. Events fire in (time, insertion
// order): ties are broken by a monotonically increasing sequence number so
// simulation results never depend on std::priority_queue tie-breaking.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace mcm::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Time when;
    std::uint64_t seq;
    Payload payload;
  };

  void push(Time when, Payload payload) {
    heap_.push(Event{when, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mcm::sim
