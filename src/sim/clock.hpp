// Clock-domain helper: snaps absolute picosecond times to clock edges and
// converts between cycles and time. DRAM commands are only legal on edges,
// so the controller quantizes every command time through one of these.
//
// next_edge/cycles_for sit on the hottest path in the simulator (several
// calls per request), so the division by the period is done with an exact
// precomputed multiply-shift reciprocal instead of a hardware divide. The
// reciprocal is exact for every non-negative numerator below 2^62 ps
// (~53 days of simulated time); anything outside that window falls back to
// the plain division, so results are bit-identical either way.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/units.hpp"

namespace mcm::sim {

class Clock {
 public:
  Clock() : period_(Time{1}) { init_reciprocal(); }
  explicit Clock(Frequency f) : period_(f.period()) {
    assert(period_.ps() > 0);
    init_reciprocal();
  }
  explicit Clock(Time period) : period_(period) {
    assert(period_.ps() > 0);
    init_reciprocal();
  }

  [[nodiscard]] Time period() const { return period_; }

  /// Earliest clock edge at or after t.
  [[nodiscard]] Time next_edge(Time t) const {
    const std::int64_t p = period_.ps();
    return Time{floor_div(t.ps() + p - 1) * p};
  }

  /// Edge strictly after t.
  [[nodiscard]] Time edge_after(Time t) const { return next_edge(Time{t.ps() + 1}); }

  [[nodiscard]] Time cycles(std::int64_t n) const { return Time{period_.ps() * n}; }

  /// Number of whole cycles needed to cover duration d (ceil).
  [[nodiscard]] std::int64_t cycles_for(Time d) const {
    const std::int64_t p = period_.ps();
    return floor_div(d.ps() + p - 1);
  }

 private:
#if defined(__SIZEOF_INT128__)
  __extension__ typedef unsigned __int128 u128;
#endif

  /// Exact n / period for the numerators the fast path produces. The cast
  /// to unsigned folds the negative-numerator case into the huge-value
  /// fallback, which replicates the original truncating division.
  [[nodiscard]] std::int64_t floor_div(std::int64_t n) const {
#if defined(__SIZEOF_INT128__)
    if (static_cast<std::uint64_t>(n) < kExactBelow) {
      const auto wide = static_cast<u128>(static_cast<std::uint64_t>(n));
      return static_cast<std::int64_t>(
          static_cast<std::uint64_t>((wide * magic_) >> shift_));
    }
#endif
    return n / period_.ps();
  }

  void init_reciprocal() {
#if defined(__SIZEOF_INT128__)
    // magic = ceil(2^(63+L) / p) with 2^L <= p, so magic fits in 64 bits and
    // floor(n * magic / 2^(63+L)) == floor(n / p) for all 0 <= n < 2^62
    // (Granlund–Montgomery error bound: e * n < 2^(63+L) with e < p <= 2^(L+1)).
    const auto p = static_cast<std::uint64_t>(period_.ps());
    const unsigned kLog2 = 63u - static_cast<unsigned>(std::countl_zero(p));
    shift_ = 63u + kLog2;
    const u128 pow = static_cast<u128>(1) << shift_;
    magic_ = static_cast<std::uint64_t>((pow + p - 1) / p);
#endif
  }

  static constexpr std::uint64_t kExactBelow = std::uint64_t{1} << 62;

  Time period_;
  std::uint64_t magic_ = 1;
  unsigned shift_ = 0;
};

}  // namespace mcm::sim
