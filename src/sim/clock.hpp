// Clock-domain helper: snaps absolute picosecond times to clock edges and
// converts between cycles and time. DRAM commands are only legal on edges,
// so the controller quantizes every command time through one of these.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/units.hpp"

namespace mcm::sim {

class Clock {
 public:
  Clock() : period_(Time{1}) {}
  explicit Clock(Frequency f) : period_(f.period()) { assert(period_.ps() > 0); }
  explicit Clock(Time period) : period_(period) { assert(period_.ps() > 0); }

  [[nodiscard]] Time period() const { return period_; }

  /// Earliest clock edge at or after t.
  [[nodiscard]] Time next_edge(Time t) const {
    const std::int64_t p = period_.ps();
    const std::int64_t q = (t.ps() + p - 1) / p;
    return Time{q * p};
  }

  /// Edge strictly after t.
  [[nodiscard]] Time edge_after(Time t) const { return next_edge(Time{t.ps() + 1}); }

  [[nodiscard]] Time cycles(std::int64_t n) const { return Time{period_.ps() * n}; }

  /// Number of whole cycles needed to cover duration d (ceil).
  [[nodiscard]] std::int64_t cycles_for(Time d) const {
    const std::int64_t p = period_.ps();
    return (d.ps() + p - 1) / p;
  }

 private:
  Time period_;
};

}  // namespace mcm::sim
