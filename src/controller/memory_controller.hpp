// One channel's memory controller. Transaction-level with exact command
// timing: the controller turns each burst request into PRE/ACT/RD/WR
// commands on clock edges, interleaves periodic refresh, and drives the
// power-down governor. All DRAM state lives in a BankCluster; all energy
// activity accumulates in an EnergyLedger.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "controller/address_mapping.hpp"
#include "controller/policies.hpp"
#include "controller/request.hpp"
#include "controller/request_queue.hpp"
#include "controller/soa_kernels.hpp"
#include "dram/bank_cluster.hpp"
#include "dram/command.hpp"
#include "dram/energy.hpp"
#include "dram/spec.hpp"
#include "sim/clock.hpp"

namespace mcm::obs {
class TraceWriter;
}  // namespace mcm::obs

namespace mcm::ctrl {

struct ControllerStats {
  /// Latency histogram span (ns). Covers queueing up to a whole 30 fps
  /// frame period; later samples saturate into the overflow bucket.
  static constexpr double kLatencyHistMaxNs = 4.0e7;
  static constexpr std::size_t kLatencyHistBuckets = 4000;
  /// Queue-depth histogram span (sampled at every enqueue).
  static constexpr double kQueueHistMax = 64.0;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;     // bank closed, ACT needed
  std::uint64_t row_conflicts = 0;  // other row open, PRE+ACT needed
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t bytes = 0;
  Histogram latency_hist_ns{0.0, kLatencyHistMaxNs, kLatencyHistBuckets};
  Histogram queue_depth{0.0, kQueueHistMax, static_cast<std::size_t>(kQueueHistMax)};

  /// Request arrival -> data end moments; the histogram's own accumulator,
  /// so the hot path pays for one statistics update, not two.
  [[nodiscard]] const Accumulator& latency_ns() const {
    return latency_hist_ns.summary();
  }

  [[nodiscard]] std::uint64_t accesses() const { return reads + writes; }
  [[nodiscard]] double row_hit_rate() const {
    const auto n = accesses();
    return n > 0 ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
};

class MemoryController {
 public:
  MemoryController(const dram::DeviceSpec& spec, Frequency freq, AddressMux mux,
                   ControllerConfig cfg);

  [[nodiscard]] bool can_accept() const { return queue_.size() < cfg_.queue_depth; }
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return cfg_.queue_depth; }

  /// Admit one request: decode once, seed the SoA lanes (row-hit bit from
  /// the cluster's open-row lane), sample the queue-depth histogram. Kept in
  /// the header so the engine's feed loop pays no call overhead.
  void enqueue(const Request& r) {
    assert(can_accept());
    queue_.push(r, mapper_.decode(r.addr), cluster_.open_rows());
    stats_.queue_depth.add(static_cast<double>(queue_.size()));
  }

  /// Serve one pending request (FR-FCFS pick) and return its completion.
  /// Precondition: has_pending().
  Completion process_one() {
    assert(has_pending());
    if (stream_pos_ < stream_.size()) return pop_stream();
    if (try_stream()) return pop_stream();
    return process_one_slow();
  }

  /// Engine ordering hint: the time up to which this channel has committed
  /// activity. Channels with the smallest horizon are served first so the
  /// multi-channel interleaving stays causal.
  [[nodiscard]] Time horizon() const { return horizon_; }

  /// Close the books at the end of a run: precharge open rows, account the
  /// idle tail (power-down + catch-up refreshes) up to `end`.
  void finalize(Time end);

  [[nodiscard]] const ControllerStats& stats() const { return stats_; }

  /// The energy books. Hot-path command tallies batch into pending deltas
  /// (pure integer/duration sums, so flush order never changes the totals);
  /// reading the ledger flushes them first.
  [[nodiscard]] const dram::EnergyLedger& ledger() const {
    flush_ledger();
    return ledger_;
  }

  /// Active arbitration-kernel dispatch (sampled from MCM_SIMD + CPU
  /// support at construction).
  [[nodiscard]] kernels::SimdLevel simd_level() const { return simd_; }
  [[nodiscard]] const dram::DerivedTiming& timing() const { return d_; }
  /// The device this controller drives. Heterogeneous systems bind a
  /// different spec per channel, so consumers must read it from here rather
  /// than from a system-wide config.
  [[nodiscard]] const dram::DeviceSpec& device() const { return spec_; }
  [[nodiscard]] const AddressMapper& mapper() const { return mapper_; }
  [[nodiscard]] const std::vector<dram::CommandRecord>& trace() const { return trace_; }

  /// Accesses served per bank (index = bank id).
  [[nodiscard]] const std::vector<std::uint64_t>& bank_accesses() const {
    return bank_accesses_;
  }

  /// Attach (or detach with nullptr) a structured trace sink; every issued
  /// command and request span is forwarded tagged with `channel_id`.
  void set_trace_sink(obs::TraceWriter* sink, std::uint32_t channel_id) {
    trace_sink_ = sink;
    trace_channel_ = channel_id;
  }

  /// The attached trace writer, if any (the sharded engine checks
  /// supports_rewind() before running chunks speculatively).
  [[nodiscard]] obs::TraceWriter* trace_writer() const { return trace_sink_; }

 private:
  /// FR-FCFS candidate selection; returns a queue slot index.
  [[nodiscard]] std::uint32_t pick_best() const;

  /// Full per-request service: refresh handling, idle accounting, PRE/ACT as
  /// needed, then the column command.
  Completion process_one_slow();

  /// Row-hit streaming fast path: when the head of the queue starts a run of
  /// ready, same-direction row hits with no refresh due inside it, issue the
  /// whole run analytically in one step (bulk stats/energy/trace booking)
  /// into stream_. Returns false when the head does not qualify; the
  /// completions are then handed out one per process_one() call with the
  /// public horizon advancing per request, so the engine-visible behavior is
  /// bit-identical to the slow path. See docs/performance.md.
  bool try_stream();

  /// Hand out the next buffered fast-path completion.
  Completion pop_stream() {
    const Streamed& se = stream_[stream_pos_];
    const Completion c = se.c;
    const std::uint32_t s = se.slot;
    ++stream_pos_;
    // Starvation bookkeeping, verbatim from the slow path: serving the head
    // resets the skip count; bypassing a *ready* head increments it.
    if (s == queue_.head()) {
      head_skips_ = 0;
    } else if (queue_.front().req.arrival <= horizon_) {
      ++head_skips_;
    }
    queue_.pop(s);
    horizon_ = max(horizon_, c.done);
    if (stream_pos_ == stream_.size()) {
      stream_.clear();
      stream_pos_ = 0;
    }
    return c;
  }

  /// Precharge bank `b` at `tp`: DRAM state, open-row cache, stats, trace.
  void close_row(Time tp, std::uint32_t b);

  /// Book idle residency from horizon_ up to `t` (entering power-down or
  /// self refresh when the gap allows) and return the earliest legal command
  /// time (>= t; includes the tXP/tXSR wake penalty).
  Time account_idle_until(Time t);

  /// True when the gap [horizon_, until] qualifies for self refresh.
  [[nodiscard]] bool selfrefresh_eligible(Time until) const;

  /// Perform one all-bank refresh no earlier than `not_before`; updates
  /// horizon_. Callers manage next_ref_due_ / the postpone debt.
  void perform_refresh(Time not_before);

  /// Serve or postpone refreshes that have come due by `now`.
  void handle_due_refreshes(Time now);

  /// Repay postponed refreshes (idle gap or before self refresh).
  void flush_refresh_debt();

  /// Book a command into the in-memory trace and the structured sink. The
  /// disabled-path checks inline into the hot loops; only the sink write
  /// stays out of line (obs::TraceWriter is incomplete here).
  void record(Time at, dram::Command c, std::uint32_t bank = 0, std::uint32_t row = 0) {
    if (cfg_.record_trace) trace_.push_back(dram::CommandRecord{at, c, bank, row});
    if (trace_sink_ != nullptr) record_sink(at, c, bank, row);
  }
  void record_sink(Time at, dram::Command c, std::uint32_t bank, std::uint32_t row);

  /// Issue a command at the earliest edge >= t that the command bus allows;
  /// returns the issue time and bumps the command-bus cursor.
  Time issue_edge(Time t);

  dram::DeviceSpec spec_;
  dram::DerivedTiming d_;
  sim::Clock clock_;
  AddressMapper mapper_;
  dram::BankCluster cluster_;
  ControllerConfig cfg_;

  /// Move the pending batched counts/residency into ledger_. Logically
  /// const: the pending deltas are an encoding detail of the ledger.
  void flush_ledger() const;

  RequestQueue queue_;
  std::uint32_t head_skips_ = 0;

  static constexpr std::int64_t kNoOpenRow = dram::BankCluster::kNoOpenRow;

  /// Buffered fast-path completions (stream_pos_ = next to hand out) with
  /// the queue slot each one came from — the stream follows FR-FCFS pick
  /// order, so slots pop mid-queue, not just at the head.
  struct Streamed {
    Completion c;
    std::uint32_t slot;
  };
  std::vector<Streamed> stream_;
  std::size_t stream_pos_ = 0;
  /// Scratch: rank-3 candidate slots in FIFO age order (see try_stream).
  std::vector<std::uint32_t> cand_;

  Time cmd_free_ = Time::zero();       // earliest edge for the next command
  Time bus_free_ = Time::zero();       // end of last data transfer
  bool bus_used_ = false;
  bool last_data_write_ = false;
  Time last_wr_data_end_ = Time{-1'000'000'000};
  Time next_ref_due_;
  std::uint32_t ref_debt_ = 0;         // postponed refreshes outstanding
  Time horizon_ = Time::zero();        // residency accounted up to here

  ControllerStats stats_;
  mutable dram::EnergyLedger ledger_;
  /// Batched energy deltas (tentpole: one flush per ledger read / finalize
  /// instead of one read-modify-write per command). All fields commute, so
  /// the flush schedule cannot change any total.
  struct PendingLedger {
    std::uint64_t n_act = 0;
    std::uint64_t n_rd = 0;
    std::uint64_t n_wr = 0;
    std::int64_t active_standby_ps = 0;

    [[nodiscard]] bool empty() const {
      return n_act == 0 && n_rd == 0 && n_wr == 0 && active_standby_ps == 0;
    }
  };
  mutable PendingLedger pend_;
  kernels::SimdLevel simd_ = kernels::SimdLevel::kScalar;
  std::vector<dram::CommandRecord> trace_;
  std::vector<std::uint64_t> bank_accesses_;
  obs::TraceWriter* trace_sink_ = nullptr;  // not owned; nullptr = disabled
  std::uint32_t trace_channel_ = 0;
};

}  // namespace mcm::ctrl
