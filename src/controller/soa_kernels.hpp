// Data-oriented arbitration kernels over the request queue's SoA lanes.
//
// One masked pass answers FR-FCFS selection for the whole queue: per slot,
// readiness (arrival <= horizon), the precomputed row-hit bit and the
// bus-direction bit fold into a single signed 64-bit key
//
//     key = rank << 60 | inv_seq        rank = 2*row_hit + same_direction
//
// and the winner is the key maximum — identical, including FIFO tie-breaks,
// to the old linked-list walk (inv_seq decreases per push, so older entries
// carry strictly larger keys at equal rank). Free and padded slots carry
// arrival = INT64_MAX and can never be ready, so no liveness mask is needed.
// The row-hit bit lives in the hit_write lane, maintained incrementally by
// the queue (seeded at push, re-derived on the rare ACT/PRE row changes), so
// the scan touches exactly three contiguous lanes and needs no per-slot
// open-row lookup.
//
// Two implementations sit behind a runtime dispatch: a scalar loop (the
// portable reference, inlined into the controller) and an explicit AVX2
// kernel compiled with a per-function target attribute. MCM_SIMD=off|scalar|0
// forces the scalar path at runtime; controllers sample the dispatch once
// at construction. The golden model in src/verify/ shares neither path —
// mcm_fuzz differentially certifies both against it.
#pragma once

#include <cstdint>
#include <string_view>

#include "controller/request_queue.hpp"

namespace mcm::ctrl::kernels {

enum class SimdLevel : std::uint8_t { kScalar = 0, kAvx2 = 1 };

[[nodiscard]] constexpr std::string_view to_string(SimdLevel l) {
  switch (l) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

/// Highest ISA the kernels were compiled for on this build ("avx2" on
/// x86-64 builds, "scalar" elsewhere).
[[nodiscard]] std::string_view compiled_isa();

/// Runtime dispatch choice: the best compiled-in level the CPU supports,
/// unless MCM_SIMD=off|scalar|0 forces scalar. Reads the environment on
/// every call — cache the result (controllers sample it at construction).
[[nodiscard]] SimdLevel active_level();

/// Rank bits packed above inv_seq in the arbitration key.
inline constexpr std::int64_t kHitKey = std::int64_t{2} << 60;
inline constexpr std::int64_t kDirKey = std::int64_t{1} << 60;

namespace detail {
#if defined(__x86_64__)
[[nodiscard]] std::uint32_t arb_scan_avx2(const QueueLanes& q,
                                          std::int64_t horizon_ps,
                                          std::int64_t dir_match);
#endif
}  // namespace detail

/// Portable reference scan (also the MCM_SIMD=off path). Kept in the header
/// so the controller's pick path pays no call overhead for it.
[[nodiscard]] inline std::uint32_t arb_scan_scalar(const QueueLanes& q,
                                                   std::int64_t horizon_ps,
                                                   std::int64_t dir_match) {
  std::int64_t best_key = -1;
  std::uint32_t best = RequestQueue::kNil;
  for (std::uint32_t s = 0; s < q.capacity; ++s) {
    if (q.arrival_ps[s] > horizon_ps) continue;  // free slot or not ready
    const std::int64_t hw = q.hit_write[s];
    // (hw & kHitBit) << 60 lifts the lane's hit bit (value 2) to kHitKey.
    std::int64_t key = q.inv_seq[s] | ((hw & RequestQueue::kHitBit) << 60);
    if ((hw & RequestQueue::kWriteBit) == dir_match) key |= kDirKey;
    if (key > best_key) {
      best_key = key;
      best = s;
    }
  }
  return best;
}

/// Below this many lane slots the scalar loop wins: the AVX2 kernel pays a
/// fixed setup cost (constant broadcasts, the four-lane reduce, the SSE/AVX
/// transition on every out-of-line call) that 4 vector iterations cannot
/// amortize. Measured crossover on the hot-path benchmark; the dispatch
/// keeps the vector kernel for the deep queues where it earns its keep.
inline constexpr std::uint32_t kAvx2MinSlots = 32;

/// FR-FCFS masked scan over the queue lanes. Among slots with
/// arrival <= horizon_ps, returns the slot maximizing (rank, FIFO age):
/// rank = 2 * row_hit_bit + (write_bit == dir_match). Pass dir_match = -1
/// when the bus direction is unknown (cold bus); the write bit is 0/1 so
/// nothing matches. Returns RequestQueue::kNil when no slot is ready.
[[nodiscard]] inline std::uint32_t arb_scan(const QueueLanes& q,
                                            std::int64_t horizon_ps,
                                            std::int64_t dir_match,
                                            SimdLevel level) {
#if defined(__x86_64__)
  if (level == SimdLevel::kAvx2 && q.padded >= kAvx2MinSlots) {
    return detail::arb_scan_avx2(q, horizon_ps, dir_match);
  }
#else
  (void)level;
#endif
  return arb_scan_scalar(q, horizon_ps, dir_match);
}

}  // namespace mcm::ctrl::kernels
