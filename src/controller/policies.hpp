// Controller policy knobs evaluated in the paper and in our ablations.
#pragma once

#include <cstdint>
#include <string_view>

namespace mcm::ctrl {

/// Row-buffer management. The paper's results use the open-page policy;
/// kTimeout is a Section V "novel policies" extension that treats a row as
/// closed once it has idled past page_timeout_cycles (an adaptive middle
/// ground between open and closed page).
enum class PagePolicy : std::uint8_t { kOpen, kClosed, kTimeout };

[[nodiscard]] constexpr std::string_view to_string(PagePolicy p) {
  switch (p) {
    case PagePolicy::kOpen: return "open";
    case PagePolicy::kClosed: return "closed";
    case PagePolicy::kTimeout: return "timeout";
  }
  return "?";
}

/// Request scheduling. FR-FCFS prefers row hits (and same-direction bursts,
/// to limit bus turnarounds); FCFS serves strictly in arrival order.
enum class SchedulerPolicy : std::uint8_t { kFcfs, kFrFcfs };

[[nodiscard]] constexpr std::string_view to_string(SchedulerPolicy s) {
  return s == SchedulerPolicy::kFcfs ? "FCFS" : "FR-FCFS";
}

struct ControllerConfig {
  PagePolicy page_policy = PagePolicy::kOpen;
  std::uint32_t page_timeout_cycles = 512;  // kTimeout: close after this idle
  SchedulerPolicy scheduler = SchedulerPolicy::kFrFcfs;
  std::uint32_t queue_depth = 16;

  /// Enter power-down after this many idle clock cycles (paper: "bank
  /// clusters go to power down states after the first idle clock cycle").
  /// Negative disables power-down entirely.
  int powerdown_idle_cycles = 1;

  /// Enter self refresh instead of power-down for idle gaps at least this
  /// many cycles long (all banks precharged; auto-refresh suppressed while
  /// inside). Negative disables self refresh - the paper's configuration.
  /// One of the Section V "novel policies" extensions.
  int selfrefresh_idle_cycles = -1;

  /// Postpone up to this many due refreshes while requests are pending,
  /// repaying the debt in idle gaps (DDR specs allow postponing several
  /// tREFI intervals). 0 = refresh immediately when due (paper baseline).
  std::uint32_t refresh_postpone_max = 0;

  /// Skip limit before the oldest request is forced (starvation guard).
  std::uint32_t max_skips = 128;

  /// Row-hit streaming fast path: serve head-of-queue runs of ready,
  /// same-direction row hits analytically in one step instead of walking the
  /// full per-request machinery. Bit-identical to the slow path (see
  /// docs/performance.md for the invariants); off = always slow path.
  bool stream_row_hits = true;

  /// Record the full DRAM command trace (tests / debugging; costs memory).
  bool record_trace = false;

  /// Reserve hint for the recorded command trace (entries). Only used when
  /// record_trace is set; avoids repeated growth reallocation on long runs.
  std::size_t trace_reserve = 4096;
};

}  // namespace mcm::ctrl
