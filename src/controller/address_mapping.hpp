// Channel-local address multiplexing: how a linear local byte address maps to
// {row, bank, column}. The paper evaluates Row-Bank-Column (RBC) and
// Bank-Row-Column (BRC) and picks RBC for its results; RCB is included as an
// extra ablation point.
//
// Bit layout (low to high), burst-aligned:
//   RBC:    [burst offset][column][bank][row] - consecutive rows rotate banks
//   BRC:    [burst offset][column][row][bank] - a bank holds a contiguous block
//   RCB:    [burst offset][bank][column][row] - bursts rotate banks
//   RBCXor: RBC with the bank index XOR-hashed by the low row bits
//           (permutation-based interleaving; spreads power-of-two strides
//           that thrash a single bank under plain RBC)
#pragma once

#include <cstdint>
#include <string_view>

#include "dram/spec.hpp"

namespace mcm::ctrl {

enum class AddressMux : std::uint8_t { kRBC, kBRC, kRCB, kRBCXor };

[[nodiscard]] constexpr std::string_view to_string(AddressMux m) {
  switch (m) {
    case AddressMux::kRBC: return "RBC";
    case AddressMux::kBRC: return "BRC";
    case AddressMux::kRCB: return "RCB";
    case AddressMux::kRBCXor: return "RBC-XOR";
  }
  return "?";
}

struct DecodedAddress {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column_burst = 0;  // burst index within the row

  friend bool operator==(const DecodedAddress&, const DecodedAddress&) = default;
};

class AddressMapper {
 public:
  AddressMapper(const dram::OrgSpec& org, AddressMux mux);

  [[nodiscard]] AddressMux mux() const { return mux_; }

  /// Decode a channel-local byte address. Addresses beyond the cluster
  /// capacity wrap (the load layer is expected to stay within capacity; the
  /// wrap keeps the model total even if it does not).
  [[nodiscard]] DecodedAddress decode(std::uint64_t local_addr) const;

  /// Inverse of decode (to the burst-aligned base address).
  [[nodiscard]] std::uint64_t encode(const DecodedAddress& a) const;

  [[nodiscard]] std::uint32_t bursts_per_row() const { return bursts_per_row_; }
  [[nodiscard]] std::uint64_t rows_per_bank() const { return rows_per_bank_; }
  [[nodiscard]] std::uint32_t banks() const { return banks_; }
  [[nodiscard]] std::uint32_t bytes_per_burst() const { return bytes_per_burst_; }

 private:
  AddressMux mux_;
  std::uint32_t banks_;
  std::uint64_t rows_per_bank_;
  std::uint32_t bursts_per_row_;
  std::uint32_t bytes_per_burst_;
  std::uint64_t capacity_bursts_;
};

}  // namespace mcm::ctrl
