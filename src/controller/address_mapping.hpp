// Channel-local address multiplexing: how a linear local byte address maps to
// {row, bank, column}. The paper evaluates Row-Bank-Column (RBC) and
// Bank-Row-Column (BRC) and picks RBC for its results; RCB is included as an
// extra ablation point.
//
// Bit layout (low to high), burst-aligned:
//   RBC:    [burst offset][column][bank][row] - consecutive rows rotate banks
//   BRC:    [burst offset][column][row][bank] - a bank holds a contiguous block
//   RCB:    [burst offset][bank][column][row] - bursts rotate banks
//   RBCXor: RBC with the bank index XOR-hashed by the low row bits
//           (permutation-based interleaving; spreads power-of-two strides
//           that thrash a single bank under plain RBC)
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>

#include "dram/spec.hpp"

namespace mcm::ctrl {

enum class AddressMux : std::uint8_t { kRBC, kBRC, kRCB, kRBCXor };

[[nodiscard]] constexpr std::string_view to_string(AddressMux m) {
  switch (m) {
    case AddressMux::kRBC: return "RBC";
    case AddressMux::kBRC: return "BRC";
    case AddressMux::kRCB: return "RCB";
    case AddressMux::kRBCXor: return "RBC-XOR";
  }
  return "?";
}

struct DecodedAddress {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column_burst = 0;  // burst index within the row

  friend bool operator==(const DecodedAddress&, const DecodedAddress&) = default;
};

class AddressMapper {
 public:
  AddressMapper(const dram::OrgSpec& org, AddressMux mux);

  [[nodiscard]] AddressMux mux() const { return mux_; }

  /// Decode a channel-local byte address. Addresses beyond the cluster
  /// capacity wrap (the load layer is expected to stay within capacity; the
  /// wrap keeps the model total even if it does not).
  ///
  /// Every supported organization has power-of-two geometry, so the common
  /// path is pure shifts and masks, inlined here because the controller
  /// decodes once per enqueued request. Odd geometries take the out-of-line
  /// division path (also the reference the property tests compare against).
  [[nodiscard]] DecodedAddress decode(std::uint64_t local_addr) const {
    if (!pow2_) return decode_slow(local_addr);
    const std::uint64_t burst = (local_addr >> burst_shift_) & capacity_mask_;
    DecodedAddress out;
    switch (mux_) {
      case AddressMux::kRBCXor: {
        out.column_burst =
            static_cast<std::uint32_t>(burst & (bursts_per_row_ - 1));
        const std::uint64_t rest = burst >> bpr_shift_;
        const auto bank = static_cast<std::uint32_t>(rest & (banks_ - 1));
        out.row = static_cast<std::uint32_t>(rest >> bank_shift_);
        out.bank = bank ^ (out.row & (banks_ - 1));
        break;
      }
      case AddressMux::kRBC: {
        out.column_burst =
            static_cast<std::uint32_t>(burst & (bursts_per_row_ - 1));
        const std::uint64_t rest = burst >> bpr_shift_;
        out.bank = static_cast<std::uint32_t>(rest & (banks_ - 1));
        out.row = static_cast<std::uint32_t>(rest >> bank_shift_);
        break;
      }
      case AddressMux::kBRC: {
        out.column_burst =
            static_cast<std::uint32_t>(burst & (bursts_per_row_ - 1));
        const std::uint64_t rest = burst >> bpr_shift_;
        out.row = static_cast<std::uint32_t>(rest & (rows_per_bank_ - 1));
        out.bank = static_cast<std::uint32_t>(rest >> rpb_shift_);
        break;
      }
      case AddressMux::kRCB: {
        out.bank = static_cast<std::uint32_t>(burst & (banks_ - 1));
        const std::uint64_t rest = burst >> bank_shift_;
        out.column_burst =
            static_cast<std::uint32_t>(rest & (bursts_per_row_ - 1));
        out.row = static_cast<std::uint32_t>(rest >> bpr_shift_);
        break;
      }
    }
    assert(out.row < rows_per_bank_ && out.bank < banks_);
    return out;
  }

  /// Inverse of decode (to the burst-aligned base address).
  [[nodiscard]] std::uint64_t encode(const DecodedAddress& a) const;

  [[nodiscard]] std::uint32_t bursts_per_row() const { return bursts_per_row_; }
  [[nodiscard]] std::uint64_t rows_per_bank() const { return rows_per_bank_; }
  [[nodiscard]] std::uint32_t banks() const { return banks_; }
  [[nodiscard]] std::uint32_t bytes_per_burst() const { return bytes_per_burst_; }

 private:
  /// Division/modulo decode for non-power-of-two geometries.
  [[nodiscard]] DecodedAddress decode_slow(std::uint64_t local_addr) const;

  AddressMux mux_;
  std::uint32_t banks_;
  std::uint64_t rows_per_bank_;
  std::uint32_t bursts_per_row_;
  std::uint32_t bytes_per_burst_;
  std::uint64_t capacity_bursts_;

  // Every supported organization has power-of-two geometry, so decode runs
  // as shifts and masks; the division path stays as the fallback (and the
  // reference the property tests compare against) for odd geometries.
  bool pow2_ = false;
  unsigned burst_shift_ = 0;      // log2(bytes_per_burst_)
  unsigned bpr_shift_ = 0;        // log2(bursts_per_row_)
  unsigned bank_shift_ = 0;       // log2(banks_)
  unsigned rpb_shift_ = 0;        // log2(rows_per_bank_)
  std::uint64_t capacity_mask_ = 0;  // capacity_bursts_ - 1
};

}  // namespace mcm::ctrl
