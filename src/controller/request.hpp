// Memory transaction types exchanged between load models, the multi-channel
// front end, and per-channel controllers. One request is one DRAM burst
// (16 B with the paper's x32 BL4 device); the load layer splits larger
// master transactions into bursts.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace mcm::ctrl {

struct Request {
  std::uint64_t addr = 0;   // byte address (global or channel-local)
  bool is_write = false;
  Time arrival = Time::zero();
  std::uint16_t source = 0;  // load-model stream id (stats only)

  [[nodiscard]] bool is_read() const { return !is_write; }
};

struct Completion {
  Request req;
  Time first_command = Time::zero();  // when the controller began service
  Time done = Time::zero();           // end of the data transfer
  bool row_hit = false;

  [[nodiscard]] Time latency() const { return done - req.arrival; }
};

}  // namespace mcm::ctrl
