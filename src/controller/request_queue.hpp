// Fixed-capacity request queue for the controller hot path: an indexed ring
// of stable slots (one contiguous allocation, no per-request heap traffic)
// threaded by an intrusive FIFO list, with a free list for O(1) slot reuse.
//
// Why not a vector/deque: FR-FCFS dequeues from the middle, which costs O(n)
// element moves per request in a contiguous container and invalidates
// references. Here a middle dequeue is an O(1) unlink and slots never move.
//
// On top of the slots the queue maintains structure-of-arrays lanes — one
// int64 per slot — so FR-FCFS arbitration is a masked scan over contiguous
// memory (see controller/soa_kernels.hpp) instead of a pointer walk over
// 56-byte entries:
//
//   arrival_ps  request arrival; INT64_MAX on free/padded slots, which
//               excludes them from both the readiness scan (never "ready")
//               and the min-arrival scan without a separate liveness mask
//   hit_write   bit 1: the slot's row is open in its bank, bit 0: direction.
//               The hit bit is maintained *incrementally*: computed at push
//               and re-derived only when a bank's open row actually changes
//               (row_changed()), which is orders of magnitude rarer than
//               arbitration — so the scan needs no per-slot row lookup
//   inv_seq     descending FIFO age key: older entries carry strictly
//               larger values, making "FIFO-first" a plain max
//   bank_row    packed (bank << 32 | row) for the row_changed() re-derive
//
// The queue also tracks the earliest (arrival, FIFO-order) entry
// incrementally: pushes update the cached minimum in O(1), and only a pop of
// the minimum itself invalidates it, repaired by one lane scan on the next
// query. The controller's not-ready fallback therefore no longer walks the
// queue every issue slot.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "controller/address_mapping.hpp"
#include "controller/request.hpp"

namespace mcm::ctrl {

/// Read-only view of the queue's parallel lanes for the arbitration kernels.
/// All lanes have `padded` entries (capacity rounded up to a multiple of
/// four; tail padding is permanently "free").
struct QueueLanes {
  const std::int64_t* arrival_ps = nullptr;
  const std::int64_t* hit_write = nullptr;
  const std::int64_t* inv_seq = nullptr;
  std::uint32_t capacity = 0;  // live slot range (unpadded)
  std::uint32_t padded = 0;    // lane length (multiple of 4)
};

class RequestQueue {
 public:
  /// Sentinel slot index terminating the FIFO links.
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// arrival lane value marking a free slot (never "ready", never minimal).
  static constexpr std::int64_t kFreeArrival =
      std::numeric_limits<std::int64_t>::max();
  /// hit_write lane bits.
  static constexpr std::int64_t kHitBit = 2;
  static constexpr std::int64_t kWriteBit = 1;
  /// inv_seq starts here and decreases by one per push: older entries have a
  /// strictly larger key, so "FIFO-first" is "largest inv_seq". 2^60 pushes
  /// headroom keeps the key clear of the rank bits the kernels pack above it.
  static constexpr std::int64_t kSeqBase = (std::int64_t{1} << 60) - 1;

  struct Entry {
    Request req;
    DecodedAddress da;  // decoded once at enqueue
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
  };

  explicit RequestQueue(std::size_t capacity)
      : slots_(capacity),
        padded_((capacity + 3u) & ~std::size_t{3}),
        arrival_ps_(padded_, kFreeArrival),
        hit_write_(padded_, 0),
        inv_seq_(padded_, 0),
        bank_row_(padded_, -1) {
    free_.reserve(capacity);
    // Free slots popped back-to-front so the first pushes take slots 0, 1, ...
    for (std::size_t i = capacity; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return free_.empty(); }

  /// Oldest entry's slot (kNil when empty).
  [[nodiscard]] std::uint32_t head() const { return head_; }
  /// FIFO successor of `slot` (kNil at the tail).
  [[nodiscard]] std::uint32_t next(std::uint32_t slot) const {
    return slots_[slot].next;
  }
  [[nodiscard]] const Entry& entry(std::uint32_t slot) const {
    return slots_[slot];
  }
  [[nodiscard]] const Entry& front() const {
    assert(!empty());
    return slots_[head_];
  }

  [[nodiscard]] QueueLanes lanes() const {
    return QueueLanes{arrival_ps_.data(), hit_write_.data(), inv_seq_.data(),
                      static_cast<std::uint32_t>(slots_.size()),
                      static_cast<std::uint32_t>(padded_)};
  }

  /// True when the slot's row is open in its bank (readiness-scan hit bit).
  [[nodiscard]] bool is_row_hit(std::uint32_t slot) const {
    return (hit_write_[slot] & kHitBit) != 0;
  }

  /// Raw hit|write lane value for a slot (kHitBit | kWriteBit composition).
  [[nodiscard]] std::int64_t hit_write(std::uint32_t slot) const {
    return hit_write_[slot];
  }

  /// Temporarily hide a live slot from the readiness and min-arrival scans
  /// (the controller's stream fast path buffers a slot's completion ahead of
  /// its pop; the slot must stop competing in arbitration immediately). The
  /// slot stays FIFO-linked and counted until pop(). The min cache is
  /// dropped rather than repaired: the earliest-slot query cannot run while
  /// masked slots exist (arbitration resumes only after the stream drains).
  void mask_ready(std::uint32_t slot) {
    arrival_ps_[slot] = kFreeArrival;
    if (slot == min_slot_) min_slot_ = kNil;
  }

  /// True when mask_ready() hid this live slot (its pop is still pending).
  [[nodiscard]] bool is_masked(std::uint32_t slot) const {
    return arrival_ps_[slot] == kFreeArrival;
  }

  /// Append at the FIFO tail; returns the slot taken. `open_rows` is the
  /// bank cluster's open-row lane (kNoOpenRow = -1 when precharged), used
  /// to seed the slot's hit bit.
  std::uint32_t push(const Request& r, const DecodedAddress& da,
                     const std::int64_t* open_rows) {
    assert(!full());
    const std::uint32_t s = free_.back();
    free_.pop_back();
    Entry& e = slots_[s];
    e.req = r;
    e.da = da;
    e.next = kNil;
    e.prev = tail_;
    if (tail_ != kNil) {
      slots_[tail_].next = s;
    } else {
      head_ = s;
    }
    tail_ = s;
    ++size_;

    const std::int64_t a = r.arrival.ps();
    const std::int64_t row = da.row;
    arrival_ps_[s] = a;
    hit_write_[s] = (open_rows[da.bank] == row ? kHitBit : 0) |
                    (r.is_write ? kWriteBit : 0);
    inv_seq_[s] = seq_next_--;
    bank_row_[s] = (static_cast<std::int64_t>(da.bank) << 32) | row;
    // Min-arrival upkeep: a strictly smaller arrival displaces the cached
    // minimum; on a tie the incumbent wins (earlier FIFO order).
    if (min_slot_ != kNil && a < arrival_ps_[min_slot_]) min_slot_ = s;
    return s;
  }

  /// Unlink any live slot (head or middle) in O(1); returns its entry.
  Entry pop(std::uint32_t slot) {
    assert(size_ > 0);
    const Entry e = slots_[slot];
    if (e.prev != kNil) {
      slots_[e.prev].next = e.next;
    } else {
      head_ = e.next;
    }
    if (e.next != kNil) {
      slots_[e.next].prev = e.prev;
    } else {
      tail_ = e.prev;
    }
    free_.push_back(slot);
    --size_;
    arrival_ps_[slot] = kFreeArrival;
    if (slot == min_slot_) min_slot_ = kNil;  // repaired lazily on next query
    return e;
  }

  /// Re-derive the hit bits after bank `bank`'s open row changed to
  /// `open_row` (kNoOpenRow = -1 on precharge). One pass over the packed
  /// bank_row lane; called only on ACT/PRE, not per arbitration.
  void row_changed(std::uint32_t bank, std::int64_t open_row) {
    const std::int64_t key_bank = static_cast<std::int64_t>(bank) << 32;
    const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
    for (std::uint32_t s = 0; s < n; ++s) {
      if ((bank_row_[s] >> 32) != (key_bank >> 32)) continue;
      const std::int64_t row = bank_row_[s] & 0xffffffff;
      if (row == open_row) {
        hit_write_[s] |= kHitBit;
      } else {
        hit_write_[s] &= ~kHitBit;
      }
    }
  }

  /// Slot of the earliest (arrival, FIFO-order) live entry. Amortized O(1):
  /// scans the arrival lane only when the cached minimum was popped.
  [[nodiscard]] std::uint32_t earliest_slot() const {
    assert(!empty());
    if (min_slot_ == kNil) min_slot_ = rescan_min();
    return min_slot_;
  }

 private:
  [[nodiscard]] std::uint32_t rescan_min() const {
    std::uint32_t best = kNil;
    std::int64_t best_a = kFreeArrival;
    std::int64_t best_inv = -1;
    const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::int64_t a = arrival_ps_[s];
      if (a < best_a || (a == best_a && inv_seq_[s] > best_inv)) {
        best_a = a;
        best_inv = inv_seq_[s];
        best = s;
      }
    }
    return best;
  }

  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;  // reusable slot indices (LIFO)
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;

  std::size_t padded_;
  std::vector<std::int64_t> arrival_ps_;
  std::vector<std::int64_t> hit_write_;
  std::vector<std::int64_t> inv_seq_;
  std::vector<std::int64_t> bank_row_;  // -1 on never-used slots
  std::int64_t seq_next_ = kSeqBase;
  mutable std::uint32_t min_slot_ = kNil;  // kNil = unknown, rescan on demand
};

}  // namespace mcm::ctrl
