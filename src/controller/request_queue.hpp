// Fixed-capacity request queue for the controller hot path: an indexed ring
// of stable slots (one contiguous allocation, no per-request heap traffic)
// threaded by an intrusive FIFO list, with a free list for O(1) slot reuse.
//
// Why not a vector/deque: FR-FCFS dequeues from the middle, which costs O(n)
// element moves per request in a contiguous container and invalidates
// references. Here a middle dequeue is an O(1) unlink, slots never move, and
// the FR-FCFS scan walks a small fixed array in FIFO order via the links.
// Each entry carries the request's decoded {bank, row, column} so the
// scheduler never re-touches the address mapper after enqueue.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "controller/address_mapping.hpp"
#include "controller/request.hpp"

namespace mcm::ctrl {

class RequestQueue {
 public:
  /// Sentinel slot index terminating the FIFO links.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    Request req;
    DecodedAddress da;  // decoded once at enqueue
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
  };

  explicit RequestQueue(std::size_t capacity) : slots_(capacity) {
    free_.reserve(capacity);
    // Free slots popped back-to-front so the first pushes take slots 0, 1, ...
    for (std::size_t i = capacity; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return free_.empty(); }

  /// Oldest entry's slot (kNil when empty).
  [[nodiscard]] std::uint32_t head() const { return head_; }
  /// FIFO successor of `slot` (kNil at the tail).
  [[nodiscard]] std::uint32_t next(std::uint32_t slot) const {
    return slots_[slot].next;
  }
  [[nodiscard]] const Entry& entry(std::uint32_t slot) const {
    return slots_[slot];
  }
  [[nodiscard]] const Entry& front() const {
    assert(!empty());
    return slots_[head_];
  }

  /// Append at the FIFO tail; returns the slot taken.
  std::uint32_t push(const Request& r, const DecodedAddress& da) {
    assert(!full());
    const std::uint32_t s = free_.back();
    free_.pop_back();
    Entry& e = slots_[s];
    e.req = r;
    e.da = da;
    e.next = kNil;
    e.prev = tail_;
    if (tail_ != kNil) {
      slots_[tail_].next = s;
    } else {
      head_ = s;
    }
    tail_ = s;
    ++size_;
    return s;
  }

  /// Unlink any live slot (head or middle) in O(1); returns its entry.
  Entry pop(std::uint32_t slot) {
    assert(size_ > 0);
    const Entry e = slots_[slot];
    if (e.prev != kNil) {
      slots_[e.prev].next = e.next;
    } else {
      head_ = e.next;
    }
    if (e.next != kNil) {
      slots_[e.next].prev = e.prev;
    } else {
      tail_ = e.prev;
    }
    free_.push_back(slot);
    --size_;
    return e;
  }

 private:
  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;  // reusable slot indices (LIFO)
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace mcm::ctrl
