#include "controller/address_mapping.hpp"

#include <bit>
#include <cassert>

namespace mcm::ctrl {

namespace {

[[nodiscard]] bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

[[nodiscard]] unsigned log2u(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

}  // namespace

AddressMapper::AddressMapper(const dram::OrgSpec& org, AddressMux mux)
    : mux_(mux),
      banks_(org.banks),
      rows_per_bank_(org.rows_per_bank()),
      bursts_per_row_(org.bursts_per_row()),
      bytes_per_burst_(org.bytes_per_burst()),
      capacity_bursts_(org.capacity_bytes() / org.bytes_per_burst()) {
  assert(banks_ > 0 && rows_per_bank_ > 0 && bursts_per_row_ > 0);
  // The XOR permutation requires a power-of-two bank count.
  assert(mux_ != AddressMux::kRBCXor || (banks_ & (banks_ - 1)) == 0);
  pow2_ = is_pow2(bytes_per_burst_) && is_pow2(capacity_bursts_) &&
          is_pow2(bursts_per_row_) && is_pow2(banks_) && is_pow2(rows_per_bank_);
  if (pow2_) {
    burst_shift_ = log2u(bytes_per_burst_);
    bpr_shift_ = log2u(bursts_per_row_);
    bank_shift_ = log2u(banks_);
    rpb_shift_ = log2u(rows_per_bank_);
    capacity_mask_ = capacity_bursts_ - 1;
  }
}

DecodedAddress AddressMapper::decode_slow(std::uint64_t local_addr) const {
  const std::uint64_t burst = (local_addr / bytes_per_burst_) % capacity_bursts_;
  DecodedAddress out;
  switch (mux_) {
    case AddressMux::kRBCXor: {
      out.column_burst = static_cast<std::uint32_t>(burst % bursts_per_row_);
      const std::uint64_t rest = burst / bursts_per_row_;
      const auto bank = static_cast<std::uint32_t>(rest % banks_);
      out.row = static_cast<std::uint32_t>(rest / banks_);
      // Bank permutation: XOR with the low row bits (banks_ is a power of 2
      // for every supported organization, making this a bijection per row).
      out.bank = (bank ^ (out.row & (banks_ - 1))) % banks_;
      break;
    }
    case AddressMux::kRBC: {
      out.column_burst = static_cast<std::uint32_t>(burst % bursts_per_row_);
      const std::uint64_t rest = burst / bursts_per_row_;
      out.bank = static_cast<std::uint32_t>(rest % banks_);
      out.row = static_cast<std::uint32_t>(rest / banks_);
      break;
    }
    case AddressMux::kBRC: {
      out.column_burst = static_cast<std::uint32_t>(burst % bursts_per_row_);
      const std::uint64_t rest = burst / bursts_per_row_;
      out.row = static_cast<std::uint32_t>(rest % rows_per_bank_);
      out.bank = static_cast<std::uint32_t>(rest / rows_per_bank_);
      break;
    }
    case AddressMux::kRCB: {
      out.bank = static_cast<std::uint32_t>(burst % banks_);
      const std::uint64_t rest = burst / banks_;
      out.column_burst = static_cast<std::uint32_t>(rest % bursts_per_row_);
      out.row = static_cast<std::uint32_t>(rest / bursts_per_row_);
      break;
    }
  }
  assert(out.row < rows_per_bank_ && out.bank < banks_);
  return out;
}

std::uint64_t AddressMapper::encode(const DecodedAddress& a) const {
  std::uint64_t burst = 0;
  switch (mux_) {
    case AddressMux::kRBCXor: {
      const std::uint32_t bank = (a.bank ^ (a.row & (banks_ - 1))) % banks_;
      burst = (static_cast<std::uint64_t>(a.row) * banks_ + bank) * bursts_per_row_ +
              a.column_burst;
      break;
    }
    case AddressMux::kRBC:
      burst = (static_cast<std::uint64_t>(a.row) * banks_ + a.bank) * bursts_per_row_ +
              a.column_burst;
      break;
    case AddressMux::kBRC:
      burst = (static_cast<std::uint64_t>(a.bank) * rows_per_bank_ + a.row) *
                  bursts_per_row_ +
              a.column_burst;
      break;
    case AddressMux::kRCB:
      burst = (static_cast<std::uint64_t>(a.row) * bursts_per_row_ + a.column_burst) *
                  banks_ +
              a.bank;
      break;
  }
  return burst * bytes_per_burst_;
}

}  // namespace mcm::ctrl
