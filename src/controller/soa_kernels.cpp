#include "controller/soa_kernels.hpp"

#include <cstdlib>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mcm::ctrl::kernels {

#if defined(__x86_64__)

namespace detail {

__attribute__((target("avx2"))) std::uint32_t arb_scan_avx2(
    const QueueLanes& q, std::int64_t horizon_ps, std::int64_t dir_match) {
  const __m256i vhor = _mm256_set1_epi64x(horizon_ps);
  const __m256i vdir = _mm256_set1_epi64x(dir_match);
  const __m256i vone = _mm256_set1_epi64x(RequestQueue::kWriteBit);
  const __m256i vhitbit = _mm256_set1_epi64x(RequestQueue::kHitBit);
  const __m256i vsame = _mm256_set1_epi64x(kDirKey);
  const __m256i vinvalid = _mm256_set1_epi64x(-1);
  __m256i vbest_key = vinvalid;
  __m256i vbest_idx = _mm256_setzero_si256();
  __m256i vidx = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i vfour = _mm256_set1_epi64x(4);
  for (std::uint32_t i = 0; i < q.padded; i += 4) {
    const __m256i varr = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(q.arrival_ps + i));
    const __m256i vhw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q.hit_write + i));
    __m256i vkey =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q.inv_seq + i));
    // Lift the lane's hit bit (value 2) to kHitKey = 2 << 60.
    vkey = _mm256_or_si256(
        vkey, _mm256_slli_epi64(_mm256_and_si256(vhw, vhitbit), 60));
    vkey = _mm256_or_si256(
        vkey, _mm256_and_si256(
                  _mm256_cmpeq_epi64(_mm256_and_si256(vhw, vone), vdir),
                  vsame));
    // Free and padded slots carry arrival INT64_MAX (> any horizon), so they
    // drop out here without a separate liveness mask.
    const __m256i vnot_ready = _mm256_cmpgt_epi64(varr, vhor);
    vkey = _mm256_blendv_epi8(vkey, vinvalid, vnot_ready);
    const __m256i vgt = _mm256_cmpgt_epi64(vkey, vbest_key);
    vbest_key = _mm256_blendv_epi8(vbest_key, vkey, vgt);
    vbest_idx = _mm256_blendv_epi8(vbest_idx, vidx, vgt);
    vidx = _mm256_add_epi64(vidx, vfour);
  }
  alignas(32) std::int64_t keys[4];
  alignas(32) std::int64_t idxs[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(keys), vbest_key);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idxs), vbest_idx);
  std::int64_t best_key = -1;
  std::uint32_t best = RequestQueue::kNil;
  for (int l = 0; l < 4; ++l) {
    // Valid keys are unique (inv_seq is), so > never ties between lanes.
    if (keys[l] > best_key) {
      best_key = keys[l];
      best = static_cast<std::uint32_t>(idxs[l]);
    }
  }
  return best;
}

}  // namespace detail

#endif  // __x86_64__

std::string_view compiled_isa() {
#if defined(__x86_64__)
  return "avx2";
#else
  return "scalar";
#endif
}

SimdLevel active_level() {
  if (const char* env = std::getenv("MCM_SIMD")) {
    const std::string_view v{env};
    if (v == "off" || v == "OFF" || v == "0" || v == "scalar") {
      return SimdLevel::kScalar;
    }
  }
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace mcm::ctrl::kernels
