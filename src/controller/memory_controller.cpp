#include "controller/memory_controller.hpp"

#include <cassert>

#include "obs/trace.hpp"

namespace mcm::ctrl {

MemoryController::MemoryController(const dram::DeviceSpec& spec, Frequency freq,
                                   AddressMux mux, ControllerConfig cfg)
    : spec_(spec),
      d_(dram::DerivedTiming::derive(spec.timing, freq)),
      clock_(d_.clk),
      mapper_(spec.org, mux),
      cluster_(spec.org),
      cfg_(cfg),
      queue_(cfg.queue_depth),
      open_rows_(spec.org.banks, kNoOpenRow),
      next_ref_due_(d_.cycles(d_.trefi)),
      bank_accesses_(spec.org.banks, 0) {
  if (cfg_.record_trace && cfg_.trace_reserve > 0) {
    trace_.reserve(cfg_.trace_reserve);
  }
  stream_.reserve(cfg_.queue_depth);
}

void MemoryController::enqueue(const Request& r) {
  assert(can_accept());
  // Decode once here; pick_best and the fast path rank candidates from the
  // cached {bank, row} without ever touching the mapper again.
  queue_.push(r, mapper_.decode(r.addr));
  stats_.queue_depth.add(static_cast<double>(queue_.size()));
}

void MemoryController::record(Time at, dram::Command c, std::uint32_t bank,
                              std::uint32_t row) {
  if (cfg_.record_trace) trace_.push_back(dram::CommandRecord{at, c, bank, row});
  if (trace_sink_ != nullptr) trace_sink_->command(trace_channel_, at, c, bank, row);
}

Time MemoryController::issue_edge(Time t) {
  const Time at = clock_.next_edge(max(t, cmd_free_));
  cmd_free_ = at + d_.cycles(1);
  return at;
}

void MemoryController::close_row(Time tp, std::uint32_t b) {
  cluster_.precharge(tp, b, d_);
  open_rows_[b] = kNoOpenRow;
  ++stats_.precharges;
  record(tp, dram::Command::kPrecharge, b);
}

std::uint32_t MemoryController::pick_best() const {
  assert(!queue_.empty());
  const std::uint32_t head = queue_.head();
  if (cfg_.scheduler == SchedulerPolicy::kFcfs || queue_.size() == 1) return head;
  if (head_skips_ >= cfg_.max_skips) return head;  // starvation guard

  // Ready requests (arrival reached) compete FR-FCFS style: row hits first,
  // then matching bus direction, then queue order. When nothing is ready the
  // earliest arrival is served - a future-dated request must never block an
  // earlier one behind it (paced sources depend on this).
  std::uint32_t best_ready = RequestQueue::kNil;
  int best_rank = -1;
  std::uint32_t earliest = head;
  Time earliest_arrival = Time::max();
  for (std::uint32_t s = head; s != RequestQueue::kNil; s = queue_.next(s)) {
    const RequestQueue::Entry& e = queue_.entry(s);
    if (e.req.arrival < earliest_arrival) {
      earliest_arrival = e.req.arrival;
      earliest = s;
    }
    if (e.req.arrival > horizon_) continue;  // not ready
    const bool hit = open_rows_[e.da.bank] == static_cast<std::int64_t>(e.da.row);
    const bool same_dir = bus_used_ && e.req.is_write == last_data_write_;
    const int rank = (hit ? 2 : 0) + (same_dir ? 1 : 0);
    if (rank > best_rank) {
      best_rank = rank;
      best_ready = s;
      if (rank == 3 && s == head) break;  // front request is already optimal
    }
  }
  return best_ready != RequestQueue::kNil ? best_ready : earliest;
}

bool MemoryController::selfrefresh_eligible(Time until) const {
  if (cfg_.selfrefresh_idle_cycles < 0 || until <= horizon_) return false;
  // Slack for the precharge-all prologue and the tXSR wake epilogue.
  const Time min_gap = d_.cycles(cfg_.selfrefresh_idle_cycles + d_.tcke +
                                 d_.txsr + d_.trp + 2 +
                                 static_cast<int>(cluster_.bank_count()));
  return until - horizon_ >= min_gap;
}

Time MemoryController::account_idle_until(Time t) {
  if (t <= horizon_) return horizon_;
  const bool rows_open = cluster_.any_row_open();
  const auto standby = rows_open ? dram::PowerState::kActiveStandby
                                 : dram::PowerState::kPrechargeStandby;
  const auto pd = rows_open ? dram::PowerState::kActivePowerDown
                            : dram::PowerState::kPowerDown;
  const Time gap = t - horizon_;

  if (selfrefresh_eligible(t)) {
    // Long gap: self refresh. Close any open rows first, then CKE low; the
    // device refreshes internally (callers repay postponed refreshes before
    // reaching this branch).
    Time last_pre = Time{-1};
    for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
      if (open_rows_[b] == kNoOpenRow) continue;
      const Time tp = issue_edge(max(clock_.next_edge(horizon_),
                                     cluster_.earliest_precharge(b)));
      close_row(tp, b);
      last_pre = max(last_pre, tp);
    }
    Time sre =
        clock_.next_edge(horizon_ + d_.cycles(cfg_.selfrefresh_idle_cycles));
    if (last_pre > Time{-1}) sre = max(sre, last_pre + d_.cycles(d_.trp));
    sre = max(sre, cmd_free_);
    const Time srx = clock_.next_edge(t);
    ledger_.add_residency(standby, sre - horizon_);
    ledger_.add_residency(dram::PowerState::kSelfRefresh, srx - sre);
    ++ledger_.n_selfrefresh_entries;
    record(sre, dram::Command::kSelfRefreshEnter);
    record(srx, dram::Command::kSelfRefreshExit);
    horizon_ = srx + d_.cycles(d_.txsr);
    ledger_.add_residency(standby, horizon_ - srx);
    cmd_free_ = max(cmd_free_, horizon_);
    next_ref_due_ = max(next_ref_due_, horizon_ + d_.cycles(d_.trefi));
    return horizon_;
  }

  const bool pd_enabled = cfg_.powerdown_idle_cycles >= 0;
  const Time min_gap =
      d_.cycles(cfg_.powerdown_idle_cycles + d_.tcke + d_.txp + 2);
  if (pd_enabled && gap >= min_gap) {
    const Time pde = clock_.next_edge(horizon_ + d_.cycles(cfg_.powerdown_idle_cycles));
    const Time pdx = clock_.next_edge(t);
    ledger_.add_residency(standby, pde - horizon_);
    ledger_.add_residency(pd, pdx - pde);
    ++ledger_.n_powerdown_entries;
    record(pde, dram::Command::kPowerDownEnter);
    record(pdx, dram::Command::kPowerDownExit);
    horizon_ = pdx + d_.cycles(d_.txp);  // wake penalty before the next command
    ledger_.add_residency(standby, horizon_ - pdx);
    cmd_free_ = max(cmd_free_, horizon_);
  } else {
    ledger_.add_residency(standby, gap);
    horizon_ = t;
    cmd_free_ = max(cmd_free_, clock_.next_edge(horizon_));
  }
  return horizon_;
}

void MemoryController::perform_refresh(Time not_before) {
  // Wake (if idle) no later than the due time.
  account_idle_until(max(horizon_, not_before));

  // Close any open rows.
  Time t = clock_.next_edge(max(horizon_, not_before));
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    if (open_rows_[b] == kNoOpenRow) continue;
    const Time tp = issue_edge(max(t, cluster_.earliest_precharge(b)));
    close_row(tp, b);
  }
  const Time tr = issue_edge(cluster_.earliest_refresh());
  cluster_.refresh(tr, d_);
  record(tr, dram::Command::kRefresh);
  ++stats_.refreshes;
  ++ledger_.n_ref;

  const Time ref_end = tr + d_.cycles(d_.trfc);
  // tRFC window counts as precharge standby; the refresh event energy is the
  // increment over that baseline.
  ledger_.add_residency(dram::PowerState::kPrechargeStandby,
                        ref_end - max(horizon_, tr));
  if (tr > horizon_) {
    ledger_.add_residency(cluster_.any_row_open()
                              ? dram::PowerState::kActiveStandby
                              : dram::PowerState::kPrechargeStandby,
                          tr - horizon_);
  }
  horizon_ = max(horizon_, ref_end);
  cmd_free_ = max(cmd_free_, ref_end);
}

void MemoryController::handle_due_refreshes(Time now) {
  while (next_ref_due_ <= now) {
    if (has_pending() && ref_debt_ < cfg_.refresh_postpone_max) {
      ++ref_debt_;  // postpone: repay during the next idle gap
    } else {
      perform_refresh(next_ref_due_);
    }
    next_ref_due_ += d_.cycles(d_.trefi);
  }
}

void MemoryController::flush_refresh_debt() {
  while (ref_debt_ > 0) {
    perform_refresh(horizon_);
    --ref_debt_;
  }
}

Completion MemoryController::process_one() {
  assert(has_pending());
  if (stream_pos_ < stream_.size()) return pop_stream();
  if (try_stream()) return pop_stream();
  return process_one_slow();
}

Completion MemoryController::pop_stream() {
  const Completion c = stream_[stream_pos_++];
  queue_.pop(queue_.head());
  head_skips_ = 0;
  horizon_ = max(horizon_, c.done);
  if (stream_pos_ == stream_.size()) {
    stream_.clear();
    stream_pos_ = 0;
  }
  return c;
}

bool MemoryController::try_stream() {
  // The fast path covers exactly the state where the slow path degenerates
  // to a bare column command: open-page policy, a warm data bus, and a head
  // request that is a ready row hit travelling in the bus's current
  // direction. Under FR-FCFS such a head ranks 3 (hit + same direction) and
  // short-circuits pick_best; under FCFS the head is always picked. With the
  // arrival at or before the horizon, idle accounting books nothing, and
  // with the next refresh due beyond the horizon the refresh machinery is a
  // no-op - so issuing the column command directly is bit-identical.
  if (!cfg_.stream_row_hits || cfg_.page_policy != PagePolicy::kOpen ||
      !bus_used_) {
    return false;
  }
  assert(stream_.empty());

  const bool writing = last_data_write_;
  Time h = horizon_;          // simulated per-request horizon
  Time busy = Time::zero();   // bulk active-standby residency

  for (std::uint32_t s = queue_.head(); s != RequestQueue::kNil;
       s = queue_.next(s)) {
    const RequestQueue::Entry& e = queue_.entry(s);
    if (e.req.is_write != writing) break;  // direction change ends the run
    if (open_rows_[e.da.bank] != static_cast<std::int64_t>(e.da.row)) break;
    const Time arrival_edge = clock_.next_edge(max(e.req.arrival, Time::zero()));
    if (arrival_edge > h) break;    // idle gap: the slow path books residency
    if (next_ref_due_ <= h) break;  // a refresh (or postpone) interposes

    // The slow path's column command, verbatim, minus the branches the run
    // conditions above have already discharged.
    Time tc = max(arrival_edge, cluster_.earliest_cas(e.da.bank));
    Time data_end;
    if (writing) {
      tc = max(tc, bus_free_ - d_.cycles(d_.cwl));  // same direction: no gap
      tc = issue_edge(tc);
      data_end = cluster_.write(tc, e.da.bank, d_);
      record(tc, dram::Command::kWrite, e.da.bank);
      last_wr_data_end_ = data_end;
      ++stats_.writes;
      ++ledger_.n_wr;
    } else {
      tc = max(tc, last_wr_data_end_ + d_.cycles(d_.twtr));  // tWTR
      tc = max(tc, bus_free_ - d_.cycles(d_.cl));
      tc = issue_edge(tc);
      data_end = cluster_.read(tc, e.da.bank, d_);
      record(tc, dram::Command::kRead, e.da.bank);
      ++stats_.reads;
      ++ledger_.n_rd;
    }
    bus_free_ = data_end;
    ++stats_.row_hits;
    stats_.bytes += spec_.org.bytes_per_burst();
    stats_.latency_hist_ns.add((data_end - e.req.arrival).ns());
    ++bank_accesses_[e.da.bank];
    if (trace_sink_ != nullptr) {
      trace_sink_->span(trace_channel_, e.req.addr, e.req.is_write,
                        e.req.arrival, tc, data_end, true);
    }
    stream_.push_back(Completion{e.req, tc, data_end, true});
    if (data_end > h) {
      busy += data_end - h;
      h = data_end;
    }
  }
  if (stream_.empty()) return false;
  // Residency telescopes over the run: each request's (data_end - horizon)
  // increment sums to the run's total busy extension.
  ledger_.add_residency(dram::PowerState::kActiveStandby, busy);
  return true;
}

Completion MemoryController::process_one_slow() {
  const std::uint32_t idx = pick_best();
  if (idx == queue_.head()) {
    head_skips_ = 0;
  } else if (queue_.front().req.arrival <= horizon_) {
    // Only a genuine bypass of a *ready* head counts toward starvation; a
    // future-dated head served via the earliest-arrival fallback is not
    // being starved.
    ++head_skips_;
  }
  const RequestQueue::Entry entry = queue_.pop(idx);
  const Request& r = entry.req;
  const DecodedAddress& da = entry.da;

  // Serve (or postpone) any due refreshes first - unless the idle gap up to
  // the arrival will be spent in self refresh, which keeps the cells alive
  // internally.
  const Time arrival_edge = clock_.next_edge(max(r.arrival, Time::zero()));
  if (selfrefresh_eligible(arrival_edge)) {
    flush_refresh_debt();  // repay before the self-refresh window
  } else {
    // Repay postponed refreshes in a real idle gap.
    if (arrival_edge > horizon_ + d_.cycles(d_.trfc)) flush_refresh_debt();
    handle_due_refreshes(max(arrival_edge, horizon_));
  }

  // Idle-gap accounting (and power-down wake) up to the arrival. This only
  // books residency and, on wake, pushes cmd_free_ past tXP; it must NOT
  // serialize commands behind the previous data transfer (commands pipeline
  // under in-flight data).
  account_idle_until(arrival_edge);
  const Time t = arrival_edge;

  const Time busy_from = horizon_;

  bool row_hit = false;
  Time first_cmd = Time::zero();
  bool have_first_cmd = false;

  // Timeout page policy: a row that has idled past the threshold counts as
  // closed (a real controller would have precharged it; we issue the PRE
  // now, which is timing-conservative).
  const bool row_open = open_rows_[da.bank] != kNoOpenRow;
  const bool stale =
      cfg_.page_policy == PagePolicy::kTimeout && row_open &&
      t > cluster_.bank(da.bank).last_use() +
              d_.cycles(static_cast<int>(cfg_.page_timeout_cycles));

  if (row_open && open_rows_[da.bank] == static_cast<std::int64_t>(da.row) &&
      !stale) {
    row_hit = true;
    ++stats_.row_hits;
  } else {
    if (row_open) {
      const Time tp = issue_edge(max(t, cluster_.earliest_precharge(da.bank)));
      close_row(tp, da.bank);
      first_cmd = tp;
      have_first_cmd = true;
      ++stats_.row_conflicts;
    } else {
      ++stats_.row_misses;
    }
    const Time ta = issue_edge(max(t, cluster_.earliest_activate(da.bank)));
    cluster_.activate(ta, da.bank, da.row, d_);
    open_rows_[da.bank] = da.row;
    ++stats_.activates;
    ++ledger_.n_act;
    record(ta, dram::Command::kActivate, da.bank, da.row);
    if (!have_first_cmd) {
      first_cmd = ta;
      have_first_cmd = true;
    }
  }

  // Column command, honoring shared data-bus occupancy and turnarounds.
  Time tc = max(t, cluster_.earliest_cas(da.bank));
  Time data_end;
  if (r.is_write) {
    Time min_data = bus_free_;
    if (bus_used_ && !last_data_write_) min_data += d_.cycles(1);  // RD -> WR gap
    tc = max(tc, min_data - d_.cycles(d_.cwl));
    tc = issue_edge(tc);
    data_end = cluster_.write(tc, da.bank, d_);
    record(tc, dram::Command::kWrite, da.bank);
    last_wr_data_end_ = data_end;
    last_data_write_ = true;
    ++stats_.writes;
    ++ledger_.n_wr;
  } else {
    tc = max(tc, last_wr_data_end_ + d_.cycles(d_.twtr));  // tWTR
    Time min_data = bus_free_;
    if (bus_used_ && last_data_write_) min_data += d_.cycles(1);  // WR -> RD gap
    tc = max(tc, min_data - d_.cycles(d_.cl));
    tc = issue_edge(tc);
    data_end = cluster_.read(tc, da.bank, d_);
    record(tc, dram::Command::kRead, da.bank);
    last_data_write_ = false;
    ++stats_.reads;
    ++ledger_.n_rd;
  }
  if (!have_first_cmd) first_cmd = tc;
  bus_free_ = data_end;
  bus_used_ = true;
  stats_.bytes += spec_.org.bytes_per_burst();
  stats_.latency_hist_ns.add((data_end - r.arrival).ns());
  ++bank_accesses_[da.bank];
  if (trace_sink_ != nullptr) {
    trace_sink_->span(trace_channel_, r.addr, r.is_write, r.arrival, first_cmd,
                      data_end, row_hit);
  }

  // Busy residency: rows are open throughout service.
  if (data_end > busy_from) {
    ledger_.add_residency(dram::PowerState::kActiveStandby, data_end - busy_from);
    horizon_ = data_end;
  }

  // Closed-page policy: precharge immediately after the access.
  if (cfg_.page_policy == PagePolicy::kClosed) {
    const Time tp = issue_edge(cluster_.earliest_precharge(da.bank));
    close_row(tp, da.bank);
    if (tp + d_.cycles(1) > horizon_) {
      ledger_.add_residency(dram::PowerState::kActiveStandby,
                            tp + d_.cycles(1) - horizon_);
      horizon_ = tp + d_.cycles(1);
    }
  }

  return Completion{r, first_cmd, data_end, row_hit};
}

void MemoryController::finalize(Time end) {
  assert(queue_.empty());
  // Precharge open rows so the idle tail sits in (deep) precharge power-down.
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    if (open_rows_[b] == kNoOpenRow) continue;
    const Time tp = issue_edge(cluster_.earliest_precharge(b));
    close_row(tp, b);
    if (tp + d_.cycles(1) > horizon_) {
      ledger_.add_residency(dram::PowerState::kActiveStandby,
                            tp + d_.cycles(1) - horizon_);
      horizon_ = tp + d_.cycles(1);
    }
  }
  // Catch-up refreshes across the tail (the device keeps its cells alive;
  // each wake costs one refresh event's energy) - or one long self-refresh
  // window when the governor allows it.
  flush_refresh_debt();
  if (!selfrefresh_eligible(end)) handle_due_refreshes(end);
  account_idle_until(end);
  horizon_ = max(horizon_, end);
}

}  // namespace mcm::ctrl
