#include "controller/memory_controller.hpp"

#include <cassert>

#include "obs/trace.hpp"

namespace mcm::ctrl {

MemoryController::MemoryController(const dram::DeviceSpec& spec, Frequency freq,
                                   AddressMux mux, ControllerConfig cfg)
    : spec_(spec),
      d_(dram::DerivedTiming::derive(spec.timing, freq)),
      clock_(d_.clk),
      mapper_(spec.org, mux),
      cluster_(spec.org),
      cfg_(cfg),
      next_ref_due_(d_.cycles(d_.trefi)),
      bank_accesses_(spec.org.banks, 0) {}

void MemoryController::enqueue(const Request& r) {
  assert(can_accept());
  queue_.push_back(r);
  stats_.queue_depth.add(static_cast<double>(queue_.size()));
}

void MemoryController::record(Time at, dram::Command c, std::uint32_t bank,
                              std::uint32_t row) {
  if (cfg_.record_trace) trace_.push_back(dram::CommandRecord{at, c, bank, row});
  if (trace_sink_ != nullptr) trace_sink_->command(trace_channel_, at, c, bank, row);
}

Time MemoryController::issue_edge(Time t) {
  const Time at = clock_.next_edge(max(t, cmd_free_));
  cmd_free_ = at + d_.cycles(1);
  return at;
}

std::size_t MemoryController::pick_best() const {
  assert(!queue_.empty());
  if (cfg_.scheduler == SchedulerPolicy::kFcfs || queue_.size() == 1) return 0;
  if (head_skips_ >= cfg_.max_skips) return 0;  // starvation guard

  // Ready requests (arrival reached) compete FR-FCFS style: row hits first,
  // then matching bus direction, then queue order. When nothing is ready the
  // earliest arrival is served - a future-dated request must never block an
  // earlier one behind it (paced sources depend on this).
  std::size_t best_ready = queue_.size();
  int best_rank = -1;
  std::size_t earliest = 0;
  Time earliest_arrival = Time::max();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Request& r = queue_[i];
    if (r.arrival < earliest_arrival) {
      earliest_arrival = r.arrival;
      earliest = i;
    }
    if (r.arrival > horizon_) continue;  // not ready
    const DecodedAddress da = mapper_.decode(r.addr);
    const dram::Bank& bank = cluster_.bank(da.bank);
    const bool hit = bank.row_open() && bank.open_row() == da.row;
    const bool same_dir = bus_used_ && r.is_write == last_data_write_;
    const int rank = (hit ? 2 : 0) + (same_dir ? 1 : 0);
    if (rank > best_rank) {
      best_rank = rank;
      best_ready = i;
      if (rank == 3 && i == 0) break;  // front request is already optimal
    }
  }
  return best_ready < queue_.size() ? best_ready : earliest;
}

bool MemoryController::selfrefresh_eligible(Time until) const {
  if (cfg_.selfrefresh_idle_cycles < 0 || until <= horizon_) return false;
  // Slack for the precharge-all prologue and the tXSR wake epilogue.
  const Time min_gap = d_.cycles(cfg_.selfrefresh_idle_cycles + d_.tcke +
                                 d_.txsr + d_.trp + 2 +
                                 static_cast<int>(cluster_.bank_count()));
  return until - horizon_ >= min_gap;
}

Time MemoryController::account_idle_until(Time t) {
  if (t <= horizon_) return horizon_;
  const bool rows_open = cluster_.any_row_open();
  const auto standby = rows_open ? dram::PowerState::kActiveStandby
                                 : dram::PowerState::kPrechargeStandby;
  const auto pd = rows_open ? dram::PowerState::kActivePowerDown
                            : dram::PowerState::kPowerDown;
  const Time gap = t - horizon_;

  if (selfrefresh_eligible(t)) {
    // Long gap: self refresh. Close any open rows first, then CKE low; the
    // device refreshes internally (callers repay postponed refreshes before
    // reaching this branch).
    Time last_pre = Time{-1};
    for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
      if (!cluster_.bank(b).row_open()) continue;
      const Time tp = issue_edge(max(clock_.next_edge(horizon_),
                                     cluster_.earliest_precharge(b)));
      cluster_.precharge(tp, b, d_);
      ++stats_.precharges;
      record(tp, dram::Command::kPrecharge, b);
      last_pre = max(last_pre, tp);
    }
    Time sre =
        clock_.next_edge(horizon_ + d_.cycles(cfg_.selfrefresh_idle_cycles));
    if (last_pre > Time{-1}) sre = max(sre, last_pre + d_.cycles(d_.trp));
    sre = max(sre, cmd_free_);
    const Time srx = clock_.next_edge(t);
    ledger_.add_residency(standby, sre - horizon_);
    ledger_.add_residency(dram::PowerState::kSelfRefresh, srx - sre);
    ++ledger_.n_selfrefresh_entries;
    record(sre, dram::Command::kSelfRefreshEnter);
    record(srx, dram::Command::kSelfRefreshExit);
    horizon_ = srx + d_.cycles(d_.txsr);
    ledger_.add_residency(standby, horizon_ - srx);
    cmd_free_ = max(cmd_free_, horizon_);
    next_ref_due_ = max(next_ref_due_, horizon_ + d_.cycles(d_.trefi));
    return horizon_;
  }

  const bool pd_enabled = cfg_.powerdown_idle_cycles >= 0;
  const Time min_gap =
      d_.cycles(cfg_.powerdown_idle_cycles + d_.tcke + d_.txp + 2);
  if (pd_enabled && gap >= min_gap) {
    const Time pde = clock_.next_edge(horizon_ + d_.cycles(cfg_.powerdown_idle_cycles));
    const Time pdx = clock_.next_edge(t);
    ledger_.add_residency(standby, pde - horizon_);
    ledger_.add_residency(pd, pdx - pde);
    ++ledger_.n_powerdown_entries;
    record(pde, dram::Command::kPowerDownEnter);
    record(pdx, dram::Command::kPowerDownExit);
    horizon_ = pdx + d_.cycles(d_.txp);  // wake penalty before the next command
    ledger_.add_residency(standby, horizon_ - pdx);
    cmd_free_ = max(cmd_free_, horizon_);
  } else {
    ledger_.add_residency(standby, gap);
    horizon_ = t;
    cmd_free_ = max(cmd_free_, clock_.next_edge(horizon_));
  }
  return horizon_;
}

void MemoryController::perform_refresh(Time not_before) {
  // Wake (if idle) no later than the due time.
  account_idle_until(max(horizon_, not_before));

  // Close any open rows.
  Time t = clock_.next_edge(max(horizon_, not_before));
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    if (!cluster_.bank(b).row_open()) continue;
    const Time tp = issue_edge(max(t, cluster_.earliest_precharge(b)));
    cluster_.precharge(tp, b, d_);
    ++stats_.precharges;
    record(tp, dram::Command::kPrecharge, b);
  }
  const Time tr = issue_edge(cluster_.earliest_refresh());
  cluster_.refresh(tr, d_);
  record(tr, dram::Command::kRefresh);
  ++stats_.refreshes;
  ++ledger_.n_ref;

  const Time ref_end = tr + d_.cycles(d_.trfc);
  // tRFC window counts as precharge standby; the refresh event energy is the
  // increment over that baseline.
  ledger_.add_residency(dram::PowerState::kPrechargeStandby,
                        ref_end - max(horizon_, tr));
  if (tr > horizon_) {
    ledger_.add_residency(cluster_.any_row_open()
                              ? dram::PowerState::kActiveStandby
                              : dram::PowerState::kPrechargeStandby,
                          tr - horizon_);
  }
  horizon_ = max(horizon_, ref_end);
  cmd_free_ = max(cmd_free_, ref_end);
}

void MemoryController::handle_due_refreshes(Time now) {
  while (next_ref_due_ <= now) {
    if (has_pending() && ref_debt_ < cfg_.refresh_postpone_max) {
      ++ref_debt_;  // postpone: repay during the next idle gap
    } else {
      perform_refresh(next_ref_due_);
    }
    next_ref_due_ += d_.cycles(d_.trefi);
  }
}

void MemoryController::flush_refresh_debt() {
  while (ref_debt_ > 0) {
    perform_refresh(horizon_);
    --ref_debt_;
  }
}

Completion MemoryController::process_one() {
  assert(has_pending());
  const std::size_t idx = pick_best();
  head_skips_ = idx == 0 ? 0 : head_skips_ + 1;
  const Request r = queue_[idx];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

  // Serve (or postpone) any due refreshes first - unless the idle gap up to
  // the arrival will be spent in self refresh, which keeps the cells alive
  // internally.
  const Time arrival_edge = clock_.next_edge(max(r.arrival, Time::zero()));
  if (selfrefresh_eligible(arrival_edge)) {
    flush_refresh_debt();  // repay before the self-refresh window
  } else {
    // Repay postponed refreshes in a real idle gap.
    if (arrival_edge > horizon_ + d_.cycles(d_.trfc)) flush_refresh_debt();
    handle_due_refreshes(max(arrival_edge, horizon_));
  }

  // Idle-gap accounting (and power-down wake) up to the arrival. This only
  // books residency and, on wake, pushes cmd_free_ past tXP; it must NOT
  // serialize commands behind the previous data transfer (commands pipeline
  // under in-flight data).
  account_idle_until(arrival_edge);
  const Time t = arrival_edge;

  const DecodedAddress da = mapper_.decode(r.addr);
  const dram::Bank& bank = cluster_.bank(da.bank);
  const Time busy_from = horizon_;

  bool row_hit = false;
  Time first_cmd = Time::zero();
  bool have_first_cmd = false;

  // Timeout page policy: a row that has idled past the threshold counts as
  // closed (a real controller would have precharged it; we issue the PRE
  // now, which is timing-conservative).
  const bool stale =
      cfg_.page_policy == PagePolicy::kTimeout && bank.row_open() &&
      t > bank.last_use() + d_.cycles(static_cast<int>(cfg_.page_timeout_cycles));

  if (bank.row_open() && bank.open_row() == da.row && !stale) {
    row_hit = true;
    ++stats_.row_hits;
  } else {
    if (bank.row_open()) {
      const Time tp = issue_edge(max(t, cluster_.earliest_precharge(da.bank)));
      cluster_.precharge(tp, da.bank, d_);
      ++stats_.precharges;
      record(tp, dram::Command::kPrecharge, da.bank);
      first_cmd = tp;
      have_first_cmd = true;
      ++stats_.row_conflicts;
    } else {
      ++stats_.row_misses;
    }
    const Time ta = issue_edge(max(t, cluster_.earliest_activate(da.bank)));
    cluster_.activate(ta, da.bank, da.row, d_);
    ++stats_.activates;
    ++ledger_.n_act;
    record(ta, dram::Command::kActivate, da.bank, da.row);
    if (!have_first_cmd) {
      first_cmd = ta;
      have_first_cmd = true;
    }
  }

  // Column command, honoring shared data-bus occupancy and turnarounds.
  Time tc = max(t, cluster_.earliest_cas(da.bank));
  Time data_end;
  if (r.is_write) {
    Time min_data = bus_free_;
    if (bus_used_ && !last_data_write_) min_data += d_.cycles(1);  // RD -> WR gap
    tc = max(tc, min_data - d_.cycles(d_.cwl));
    tc = issue_edge(tc);
    data_end = cluster_.write(tc, da.bank, d_);
    record(tc, dram::Command::kWrite, da.bank);
    last_wr_data_end_ = data_end;
    last_data_write_ = true;
    ++stats_.writes;
    ++ledger_.n_wr;
  } else {
    tc = max(tc, last_wr_data_end_ + d_.cycles(d_.twtr));  // tWTR
    Time min_data = bus_free_;
    if (bus_used_ && last_data_write_) min_data += d_.cycles(1);  // WR -> RD gap
    tc = max(tc, min_data - d_.cycles(d_.cl));
    tc = issue_edge(tc);
    data_end = cluster_.read(tc, da.bank, d_);
    record(tc, dram::Command::kRead, da.bank);
    last_data_write_ = false;
    ++stats_.reads;
    ++ledger_.n_rd;
  }
  if (!have_first_cmd) first_cmd = tc;
  bus_free_ = data_end;
  bus_used_ = true;
  stats_.bytes += spec_.org.bytes_per_burst();
  stats_.latency_hist_ns.add((data_end - r.arrival).ns());
  ++bank_accesses_[da.bank];
  if (trace_sink_ != nullptr) {
    trace_sink_->span(trace_channel_, r.addr, r.is_write, r.arrival, first_cmd,
                      data_end, row_hit);
  }

  // Busy residency: rows are open throughout service.
  if (data_end > busy_from) {
    ledger_.add_residency(dram::PowerState::kActiveStandby, data_end - busy_from);
    horizon_ = data_end;
  }

  // Closed-page policy: precharge immediately after the access.
  if (cfg_.page_policy == PagePolicy::kClosed) {
    const Time tp = issue_edge(cluster_.earliest_precharge(da.bank));
    cluster_.precharge(tp, da.bank, d_);
    ++stats_.precharges;
    record(tp, dram::Command::kPrecharge, da.bank);
    if (tp + d_.cycles(1) > horizon_) {
      ledger_.add_residency(dram::PowerState::kActiveStandby,
                            tp + d_.cycles(1) - horizon_);
      horizon_ = tp + d_.cycles(1);
    }
  }

  return Completion{r, first_cmd, data_end, row_hit};
}

void MemoryController::finalize(Time end) {
  assert(queue_.empty());
  // Precharge open rows so the idle tail sits in (deep) precharge power-down.
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    if (!cluster_.bank(b).row_open()) continue;
    const Time tp = issue_edge(cluster_.earliest_precharge(b));
    cluster_.precharge(tp, b, d_);
    ++stats_.precharges;
    record(tp, dram::Command::kPrecharge, b);
    if (tp + d_.cycles(1) > horizon_) {
      ledger_.add_residency(dram::PowerState::kActiveStandby,
                            tp + d_.cycles(1) - horizon_);
      horizon_ = tp + d_.cycles(1);
    }
  }
  // Catch-up refreshes across the tail (the device keeps its cells alive;
  // each wake costs one refresh event's energy) - or one long self-refresh
  // window when the governor allows it.
  flush_refresh_debt();
  if (!selfrefresh_eligible(end)) handle_due_refreshes(end);
  account_idle_until(end);
  horizon_ = max(horizon_, end);
}

}  // namespace mcm::ctrl
