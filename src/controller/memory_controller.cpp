#include "controller/memory_controller.hpp"

#include <cassert>

#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mcm::ctrl {

namespace {

/// Interned kernel-phase ids (see docs/performance.md, "Data-oriented
/// kernels"): readiness_scan is the masked SoA kernel itself, arbitration
/// the full FR-FCFS pick around it, ledger_flush the batched energy drain.
struct KernelPhases {
  obs::prof::PhaseId arbitration;
  obs::prof::PhaseId readiness_scan;
  obs::prof::PhaseId ledger_flush;
};

const KernelPhases& kernel_phases() {
  static const KernelPhases p{obs::prof::phase_id("ctrl/arbitration"),
                              obs::prof::phase_id("ctrl/readiness_scan"),
                              obs::prof::phase_id("ctrl/ledger_flush")};
  return p;
}

}  // namespace

MemoryController::MemoryController(const dram::DeviceSpec& spec, Frequency freq,
                                   AddressMux mux, ControllerConfig cfg)
    : spec_(spec),
      d_(dram::DerivedTiming::derive(spec.timing, freq)),
      clock_(d_.clk),
      mapper_(spec.org, mux),
      cluster_(spec.org),
      cfg_(cfg),
      queue_(cfg.queue_depth),
      // Refresh-free devices (PCM-like class) park the due time at the
      // sentinel so the periodic-refresh loop never fires.
      next_ref_due_(d_.has_refresh() ? d_.cycles(d_.trefi) : Time::max()),
      bank_accesses_(spec.org.banks, 0) {
  simd_ = kernels::active_level();
  if (cfg_.record_trace && cfg_.trace_reserve > 0) {
    trace_.reserve(cfg_.trace_reserve);
  }
  stream_.reserve(cfg_.queue_depth);
  cand_.reserve(cfg_.queue_depth);
}

void MemoryController::record_sink(Time at, dram::Command c, std::uint32_t bank,
                                   std::uint32_t row) {
  trace_sink_->command(trace_channel_, at, c, bank, row);
}

Time MemoryController::issue_edge(Time t) {
  const Time at = clock_.next_edge(max(t, cmd_free_));
  cmd_free_ = at + d_.cycles(1);
  return at;
}

void MemoryController::close_row(Time tp, std::uint32_t b) {
  cluster_.precharge(tp, b, d_);
  queue_.row_changed(b, kNoOpenRow);
  ++stats_.precharges;
  record(tp, dram::Command::kPrecharge, b);
}

std::uint32_t MemoryController::pick_best() const {
  assert(!queue_.empty());
  const std::uint32_t head = queue_.head();
  if (cfg_.scheduler == SchedulerPolicy::kFcfs || queue_.size() == 1) return head;
  if (head_skips_ >= cfg_.max_skips) return head;  // starvation guard

  // Ready requests (arrival reached) compete FR-FCFS style: row hits first,
  // then matching bus direction, then queue order. When nothing is ready the
  // earliest arrival is served - a future-dated request must never block an
  // earlier one behind it (paced sources depend on this).
  const std::int64_t dir = bus_used_ ? (last_data_write_ ? 1 : 0) : -1;

  // A ready head that is a row hit in the bus direction ranks 3 and beats
  // everything behind it; skip the scan (the common streaming shape). The
  // queue's hit_write lane answers both the hit and the direction check.
  if (queue_.hit_write(head) == (RequestQueue::kHitBit | dir) &&
      queue_.entry(head).req.arrival <= horizon_) {
    return head;
  }

  const bool profiling = obs::prof::enabled();
  const std::int64_t t0 = profiling ? obs::prof::now_ns() : 0;
  const std::uint32_t ready =
      kernels::arb_scan(queue_.lanes(), horizon_.ps(), dir, simd_);
  if (profiling) {
    const std::int64_t t1 = obs::prof::now_ns();
    obs::prof::tally(kernel_phases().readiness_scan, t1 - t0);
  }
  if (ready != RequestQueue::kNil) {
    if (profiling) {
      obs::prof::tally(kernel_phases().arbitration, obs::prof::now_ns() - t0);
    }
    return ready;
  }
  const std::uint32_t earliest = queue_.earliest_slot();
  if (profiling) {
    obs::prof::tally(kernel_phases().arbitration, obs::prof::now_ns() - t0);
  }
  return earliest;
}

bool MemoryController::selfrefresh_eligible(Time until) const {
  // Refresh-free cells have no self-refresh state to enter.
  if (!d_.has_refresh()) return false;
  if (cfg_.selfrefresh_idle_cycles < 0 || until <= horizon_) return false;
  // Slack for the precharge-all prologue and the tXSR wake epilogue.
  const Time min_gap = d_.cycles(cfg_.selfrefresh_idle_cycles + d_.tcke +
                                 d_.txsr + d_.trp + 2 +
                                 static_cast<int>(cluster_.bank_count()));
  return until - horizon_ >= min_gap;
}

Time MemoryController::account_idle_until(Time t) {
  if (t <= horizon_) return horizon_;
  const bool rows_open = cluster_.any_row_open();
  const auto standby = rows_open ? dram::PowerState::kActiveStandby
                                 : dram::PowerState::kPrechargeStandby;
  const auto pd = rows_open ? dram::PowerState::kActivePowerDown
                            : dram::PowerState::kPowerDown;
  const Time gap = t - horizon_;

  if (selfrefresh_eligible(t)) {
    // Long gap: self refresh. Close any open rows first, then CKE low; the
    // device refreshes internally (callers repay postponed refreshes before
    // reaching this branch).
    Time last_pre = Time{-1};
    for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
      if (!cluster_.row_open(b)) continue;
      const Time tp = issue_edge(max(clock_.next_edge(horizon_),
                                     cluster_.earliest_precharge(b)));
      close_row(tp, b);
      last_pre = max(last_pre, tp);
    }
    Time sre =
        clock_.next_edge(horizon_ + d_.cycles(cfg_.selfrefresh_idle_cycles));
    if (last_pre > Time{-1}) sre = max(sre, last_pre + d_.cycles(d_.trp));
    sre = max(sre, cmd_free_);
    const Time srx = clock_.next_edge(t);
    ledger_.add_residency(standby, sre - horizon_);
    ledger_.add_residency(dram::PowerState::kSelfRefresh, srx - sre);
    ++ledger_.n_selfrefresh_entries;
    record(sre, dram::Command::kSelfRefreshEnter);
    record(srx, dram::Command::kSelfRefreshExit);
    horizon_ = srx + d_.cycles(d_.txsr);
    ledger_.add_residency(standby, horizon_ - srx);
    cmd_free_ = max(cmd_free_, horizon_);
    next_ref_due_ = max(next_ref_due_, horizon_ + d_.cycles(d_.trefi));
    return horizon_;
  }

  const bool pd_enabled = cfg_.powerdown_idle_cycles >= 0;
  const Time min_gap =
      d_.cycles(cfg_.powerdown_idle_cycles + d_.tcke + d_.txp + 2);
  if (pd_enabled && gap >= min_gap) {
    const Time pde = clock_.next_edge(horizon_ + d_.cycles(cfg_.powerdown_idle_cycles));
    const Time pdx = clock_.next_edge(t);
    ledger_.add_residency(standby, pde - horizon_);
    ledger_.add_residency(pd, pdx - pde);
    ++ledger_.n_powerdown_entries;
    record(pde, dram::Command::kPowerDownEnter);
    record(pdx, dram::Command::kPowerDownExit);
    horizon_ = pdx + d_.cycles(d_.txp);  // wake penalty before the next command
    ledger_.add_residency(standby, horizon_ - pdx);
    cmd_free_ = max(cmd_free_, horizon_);
  } else {
    ledger_.add_residency(standby, gap);
    horizon_ = t;
    cmd_free_ = max(cmd_free_, clock_.next_edge(horizon_));
  }
  return horizon_;
}

void MemoryController::perform_refresh(Time not_before) {
  // Wake (if idle) no later than the due time.
  account_idle_until(max(horizon_, not_before));

  // Close any open rows.
  Time t = clock_.next_edge(max(horizon_, not_before));
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    if (!cluster_.row_open(b)) continue;
    const Time tp = issue_edge(max(t, cluster_.earliest_precharge(b)));
    close_row(tp, b);
  }
  const Time tr = issue_edge(cluster_.earliest_refresh());
  cluster_.refresh(tr, d_);
  record(tr, dram::Command::kRefresh);
  ++stats_.refreshes;
  ++ledger_.n_ref;

  const Time ref_end = tr + d_.cycles(d_.trfc);
  // tRFC window counts as precharge standby; the refresh event energy is the
  // increment over that baseline.
  ledger_.add_residency(dram::PowerState::kPrechargeStandby,
                        ref_end - max(horizon_, tr));
  if (tr > horizon_) {
    ledger_.add_residency(cluster_.any_row_open()
                              ? dram::PowerState::kActiveStandby
                              : dram::PowerState::kPrechargeStandby,
                          tr - horizon_);
  }
  horizon_ = max(horizon_, ref_end);
  cmd_free_ = max(cmd_free_, ref_end);
}

void MemoryController::handle_due_refreshes(Time now) {
  while (next_ref_due_ <= now) {
    if (has_pending() && ref_debt_ < cfg_.refresh_postpone_max) {
      ++ref_debt_;  // postpone: repay during the next idle gap
    } else {
      perform_refresh(next_ref_due_);
    }
    next_ref_due_ += d_.cycles(d_.trefi);
  }
}

void MemoryController::flush_refresh_debt() {
  while (ref_debt_ > 0) {
    perform_refresh(horizon_);
    --ref_debt_;
  }
}

bool MemoryController::try_stream() {
  // The fast path covers exactly the state where the slow path degenerates
  // to a bare column command: open-page policy, a warm data bus, and a pick
  // winner that is a ready row hit travelling in the bus's current
  // direction (rank 3). The stream follows *pick order*, not FIFO order:
  // each step reruns the arbitration (head fast-out, masked scan, starvation
  // guard) over the not-yet-buffered slots and buffers the winner, so mixed
  // read/write traffic streams exactly the requests FR-FCFS would serve.
  // With the winner's arrival at or before the horizon, idle accounting
  // books nothing; with the next refresh due beyond the horizon the refresh
  // machinery is a no-op - so issuing the column command directly is
  // bit-identical. Requests enqueued between the buffered hand-outs cannot
  // perturb the picks: only ready rank-3 winners are buffered, and a ready
  // rank-3 entry at maximal rank beats every younger arrival.
  if (!cfg_.stream_row_hits || cfg_.page_policy != PagePolicy::kOpen ||
      !bus_used_) {
    return false;
  }
  assert(stream_.empty());

  const bool writing = last_data_write_;
  // One lane compare covers both rank-3 conditions: row hit + direction.
  const std::int64_t want =
      RequestQueue::kHitBit | (writing ? RequestQueue::kWriteBit : 0);
  const bool frfcfs = cfg_.scheduler != SchedulerPolicy::kFcfs;
  Time h = horizon_;          // simulated per-request horizon
  Time busy = Time::zero();   // bulk active-standby residency
  // The head and skip count pick_best would see at each simulated step:
  // eff_head = oldest not-yet-buffered slot (identical to the real head at
  // the matching pop_stream hand-out, since pops run in buffer order).
  std::uint32_t eff_head = queue_.head();
  std::uint32_t sim_skips = head_skips_;
  std::size_t remaining = queue_.size();

  // Rank-3 candidates in FIFO age order, collected in one walk. Rank 3 is
  // the maximal rank, so among *ready* entries FR-FCFS reduces to "oldest
  // ready candidate" - each pick is a short ordered probe of this list, not
  // a rescan of the lanes. Ranks cannot change inside the stream (rows only
  // move on ACT/PRE, which end it) and readiness only grows with h, so the
  // list stays exhaustive for the whole call.
  cand_.clear();
  for (std::uint32_t s0 = queue_.head(); s0 != RequestQueue::kNil;
       s0 = queue_.next(s0)) {
    if (queue_.hit_write(s0) == want) cand_.push_back(s0);
  }
  if (cand_.empty()) return false;
  std::size_t cand_pos = 0;  // list prefix already served (masked)

  while (remaining > 0) {
    // pick_best over the unbuffered slots, with the simulated head/skips.
    std::uint32_t s = RequestQueue::kNil;
    if (!frfcfs || remaining == 1 || sim_skips >= cfg_.max_skips) {
      s = eff_head;  // forced head (FCFS / lone entry / starvation guard)
      if (queue_.hit_write(s) != want) break;  // needs full service
    } else {
      for (std::size_t j = cand_pos; j < cand_.size(); ++j) {
        const std::uint32_t c = cand_[j];
        if (queue_.is_masked(c)) {
          if (j == cand_pos) ++cand_pos;
          continue;
        }
        if (queue_.entry(c).req.arrival <= h) {
          s = c;
          break;
        }
      }
      // No ready rank-3 winner: whatever pick_best would choose instead
      // (a lower rank or the earliest-arrival fallback) needs full service.
      if (s == RequestQueue::kNil) break;
    }
    const RequestQueue::Entry& e = queue_.entry(s);
    const Time arrival_edge = clock_.next_edge(max(e.req.arrival, Time::zero()));
    if (arrival_edge > h) break;    // idle gap: the slow path books residency
    if (next_ref_due_ <= h) break;  // a refresh (or postpone) interposes

    // The slow path's column command, verbatim, minus the branches the pick
    // conditions above have already discharged.
    Time tc = max(arrival_edge, cluster_.earliest_cas(e.da.bank));
    Time data_end;
    if (writing) {
      tc = max(tc, bus_free_ - d_.cycles(d_.cwl));  // same direction: no gap
      tc = issue_edge(tc);
      data_end = cluster_.write(tc, e.da.bank, d_);
      record(tc, dram::Command::kWrite, e.da.bank);
      last_wr_data_end_ = data_end;
    } else {
      tc = max(tc, last_wr_data_end_ + d_.cycles(d_.twtr));  // tWTR
      tc = max(tc, bus_free_ - d_.cycles(d_.cl));
      tc = issue_edge(tc);
      data_end = cluster_.read(tc, e.da.bank, d_);
      record(tc, dram::Command::kRead, e.da.bank);
    }
    bus_free_ = data_end;
    stats_.latency_hist_ns.add((data_end - e.req.arrival).ns());
    ++bank_accesses_[e.da.bank];
    if (trace_sink_ != nullptr) {
      trace_sink_->span(trace_channel_, e.req.addr, e.req.is_write,
                        e.req.arrival, tc, data_end, true);
    }
    stream_.push_back(Streamed{Completion{e.req, tc, data_end, true}, s});
    queue_.mask_ready(s);  // stop competing in the remaining picks
    // Starvation bookkeeping with the pre-service horizon, mirroring the
    // slow path (pop_stream repeats this against the real queue state).
    if (s == eff_head) {
      sim_skips = 0;
      do {
        eff_head = queue_.next(eff_head);
      } while (eff_head != RequestQueue::kNil && queue_.is_masked(eff_head));
    } else if (queue_.entry(eff_head).req.arrival <= h) {
      ++sim_skips;
    }
    --remaining;
    if (data_end > h) {
      busy += data_end - h;
      h = data_end;
    }
  }
  if (stream_.empty()) return false;
  // Stats and energy tallies batch over the run: every entry is a row hit
  // in one direction, so the per-request increments collapse to one add
  // per counter (the latency histogram above keeps its per-entry order).
  const std::uint64_t n = stream_.size();
  stats_.row_hits += n;
  stats_.bytes += n * spec_.org.bytes_per_burst();
  if (writing) {
    stats_.writes += n;
    pend_.n_wr += n;
  } else {
    stats_.reads += n;
    pend_.n_rd += n;
  }
  // Residency telescopes over the run: each request's (data_end - horizon)
  // increment sums to the run's total busy extension.
  pend_.active_standby_ps += busy.ps();
  return true;
}

Completion MemoryController::process_one_slow() {
  const std::uint32_t idx = pick_best();
  if (idx == queue_.head()) {
    head_skips_ = 0;
  } else if (queue_.front().req.arrival <= horizon_) {
    // Only a genuine bypass of a *ready* head counts toward starvation; a
    // future-dated head served via the earliest-arrival fallback is not
    // being starved.
    ++head_skips_;
  }
  const RequestQueue::Entry entry = queue_.pop(idx);
  const Request& r = entry.req;
  const DecodedAddress& da = entry.da;

  // Serve (or postpone) any due refreshes first - unless the idle gap up to
  // the arrival will be spent in self refresh, which keeps the cells alive
  // internally.
  const Time arrival_edge = clock_.next_edge(max(r.arrival, Time::zero()));
  if (selfrefresh_eligible(arrival_edge)) {
    flush_refresh_debt();  // repay before the self-refresh window
  } else {
    // Repay postponed refreshes in a real idle gap.
    if (arrival_edge > horizon_ + d_.cycles(d_.trfc)) flush_refresh_debt();
    handle_due_refreshes(max(arrival_edge, horizon_));
  }

  // Idle-gap accounting (and power-down wake) up to the arrival. This only
  // books residency and, on wake, pushes cmd_free_ past tXP; it must NOT
  // serialize commands behind the previous data transfer (commands pipeline
  // under in-flight data).
  account_idle_until(arrival_edge);
  const Time t = arrival_edge;

  const Time busy_from = horizon_;

  bool row_hit = false;
  Time first_cmd = Time::zero();
  bool have_first_cmd = false;

  // Timeout page policy: a row that has idled past the threshold counts as
  // closed (a real controller would have precharged it; we issue the PRE
  // now, which is timing-conservative).
  const bool row_open = cluster_.row_open(da.bank);
  const bool stale =
      cfg_.page_policy == PagePolicy::kTimeout && row_open &&
      t > cluster_.bank(da.bank).last_use() +
              d_.cycles(static_cast<int>(cfg_.page_timeout_cycles));

  if (row_open && cluster_.open_rows()[da.bank] == static_cast<std::int64_t>(da.row) &&
      !stale) {
    row_hit = true;
    ++stats_.row_hits;
  } else {
    if (row_open) {
      const Time tp = issue_edge(max(t, cluster_.earliest_precharge(da.bank)));
      close_row(tp, da.bank);
      first_cmd = tp;
      have_first_cmd = true;
      ++stats_.row_conflicts;
    } else {
      ++stats_.row_misses;
    }
    const Time ta = issue_edge(max(t, cluster_.earliest_activate(da.bank)));
    cluster_.activate(ta, da.bank, da.row, d_);
    queue_.row_changed(da.bank, static_cast<std::int64_t>(da.row));
    ++stats_.activates;
    ++pend_.n_act;
    record(ta, dram::Command::kActivate, da.bank, da.row);
    if (!have_first_cmd) {
      first_cmd = ta;
      have_first_cmd = true;
    }
  }

  // Column command, honoring shared data-bus occupancy and turnarounds.
  Time tc = max(t, cluster_.earliest_cas(da.bank));
  Time data_end;
  if (r.is_write) {
    Time min_data = bus_free_;
    if (bus_used_ && !last_data_write_) min_data += d_.cycles(1);  // RD -> WR gap
    tc = max(tc, min_data - d_.cycles(d_.cwl));
    tc = issue_edge(tc);
    data_end = cluster_.write(tc, da.bank, d_);
    record(tc, dram::Command::kWrite, da.bank);
    last_wr_data_end_ = data_end;
    last_data_write_ = true;
    ++stats_.writes;
    ++pend_.n_wr;
  } else {
    tc = max(tc, last_wr_data_end_ + d_.cycles(d_.twtr));  // tWTR
    Time min_data = bus_free_;
    if (bus_used_ && last_data_write_) min_data += d_.cycles(1);  // WR -> RD gap
    tc = max(tc, min_data - d_.cycles(d_.cl));
    tc = issue_edge(tc);
    data_end = cluster_.read(tc, da.bank, d_);
    record(tc, dram::Command::kRead, da.bank);
    last_data_write_ = false;
    ++stats_.reads;
    ++pend_.n_rd;
  }
  if (!have_first_cmd) first_cmd = tc;
  bus_free_ = data_end;
  bus_used_ = true;
  stats_.bytes += spec_.org.bytes_per_burst();
  stats_.latency_hist_ns.add((data_end - r.arrival).ns());
  ++bank_accesses_[da.bank];
  if (trace_sink_ != nullptr) {
    trace_sink_->span(trace_channel_, r.addr, r.is_write, r.arrival, first_cmd,
                      data_end, row_hit);
  }

  // Busy residency: rows are open throughout service.
  if (data_end > busy_from) {
    pend_.active_standby_ps += (data_end - busy_from).ps();
    horizon_ = data_end;
  }

  // Closed-page policy: precharge immediately after the access.
  if (cfg_.page_policy == PagePolicy::kClosed) {
    const Time tp = issue_edge(cluster_.earliest_precharge(da.bank));
    close_row(tp, da.bank);
    if (tp + d_.cycles(1) > horizon_) {
      ledger_.add_residency(dram::PowerState::kActiveStandby,
                            tp + d_.cycles(1) - horizon_);
      horizon_ = tp + d_.cycles(1);
    }
  }

  return Completion{r, first_cmd, data_end, row_hit};
}

void MemoryController::flush_ledger() const {
  if (pend_.empty()) return;
  const bool profiling = obs::prof::enabled();
  const std::int64_t t0 = profiling ? obs::prof::now_ns() : 0;
  ledger_.n_act += pend_.n_act;
  ledger_.n_rd += pend_.n_rd;
  ledger_.n_wr += pend_.n_wr;
  ledger_.t_active_standby += Time{pend_.active_standby_ps};
  pend_ = PendingLedger{};
  if (profiling) {
    obs::prof::tally(kernel_phases().ledger_flush, obs::prof::now_ns() - t0);
  }
}

void MemoryController::finalize(Time end) {
  assert(queue_.empty());
  // Precharge open rows so the idle tail sits in (deep) precharge power-down.
  for (std::uint32_t b = 0; b < cluster_.bank_count(); ++b) {
    if (!cluster_.row_open(b)) continue;
    const Time tp = issue_edge(cluster_.earliest_precharge(b));
    close_row(tp, b);
    if (tp + d_.cycles(1) > horizon_) {
      ledger_.add_residency(dram::PowerState::kActiveStandby,
                            tp + d_.cycles(1) - horizon_);
      horizon_ = tp + d_.cycles(1);
    }
  }
  // Catch-up refreshes across the tail (the device keeps its cells alive;
  // each wake costs one refresh event's energy) - or one long self-refresh
  // window when the governor allows it.
  flush_refresh_debt();
  if (!selfrefresh_eligible(end)) handle_due_refreshes(end);
  account_idle_until(end);
  horizon_ = max(horizon_, end);
}

}  // namespace mcm::ctrl
