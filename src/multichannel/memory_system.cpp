#include "multichannel/memory_system.hpp"

#include <cassert>
#include <stdexcept>

namespace mcm::multichannel {

MemorySystem::MemorySystem(const SystemConfig& cfg)
    : cfg_(cfg), interleaver_(cfg.channels, cfg.interleave_bytes) {
  if (cfg.channels == 0) throw std::invalid_argument("channels must be > 0");
  if (cfg.interleave_bytes < cfg.device.org.bytes_per_burst()) {
    throw std::invalid_argument(
        "interleave granularity below the minimum DRAM burst size");
  }
  channels_.reserve(cfg.channels);
  for (std::uint32_t i = 0; i < cfg.channels; ++i) {
    channels_.emplace_back(cfg.device, cfg.freq, cfg.mux, cfg.controller,
                           cfg.interconnect, cfg.interface);
  }
}

std::uint64_t MemorySystem::capacity_bytes() const {
  return static_cast<std::uint64_t>(channels_.size()) *
         cfg_.device.org.capacity_bytes();
}

double MemorySystem::peak_bandwidth_bytes_per_s() const {
  const auto& d = channels_.front().controller().timing();
  return static_cast<double>(channels_.size()) *
         d.peak_bandwidth_bytes_per_s(cfg_.device.org);
}

void MemorySystem::submit(const ctrl::Request& r) {
  const RoutedAddress routed = interleaver_.route(r.addr);
  ctrl::Request local = r;
  local.addr = routed.local;
  channels_[routed.channel].enqueue(local);
}

bool MemorySystem::any_pending() const {
  for (const auto& c : channels_) {
    if (c.has_pending()) return true;
  }
  return false;
}

std::optional<ctrl::Completion> MemorySystem::process_next() {
  channel::Channel* best = nullptr;
  for (auto& c : channels_) {
    if (!c.has_pending()) continue;
    if (best == nullptr || c.horizon() < best->horizon()) best = &c;
  }
  if (best == nullptr) return std::nullopt;
  return best->process_one();
}

Time MemorySystem::drain() {
  Time last = Time::zero();
  while (auto c = process_next()) last = max(last, c->done);
  return last;
}

void MemorySystem::finalize(Time end) {
  assert(!any_pending());
  for (auto& c : channels_) c.finalize(end);
}

SystemStats MemorySystem::stats() const {
  SystemStats s;
  for (const auto& c : channels_) {
    const auto& st = c.stats();
    s.reads += st.reads;
    s.writes += st.writes;
    s.bytes += st.bytes;
    s.row_hits += st.row_hits;
    s.row_misses += st.row_misses;
    s.row_conflicts += st.row_conflicts;
    s.activates += st.activates;
    s.precharges += st.precharges;
    s.refreshes += st.refreshes;
    s.powerdown_entries += c.controller().ledger().n_powerdown_entries;
    s.selfrefresh_entries += c.controller().ledger().n_selfrefresh_entries;
    s.latency_ns += st.latency_ns;
  }
  return s;
}

SystemPowerReport MemorySystem::power(Time window) const {
  SystemPowerReport r;
  r.per_channel.reserve(channels_.size());
  for (const auto& c : channels_) {
    auto p = c.power(window);
    r.dram += p.dram;
    r.dram_mw += p.dram_avg_mw;
    r.interface_mw += p.interface_mw;
    r.total_mw += p.total_mw;
    r.per_channel.push_back(std::move(p));
  }
  return r;
}

Time MemorySystem::max_horizon() const {
  Time t = Time::zero();
  for (const auto& c : channels_) t = max(t, c.horizon());
  return t;
}

}  // namespace mcm::multichannel
