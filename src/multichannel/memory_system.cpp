#include "multichannel/memory_system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcm::multichannel {

channel::InterconnectSpec SystemConfig::channel_interconnect(
    std::uint32_t /*ch*/) const {
  channel::InterconnectSpec ic = interconnect;
  if (vault_group >= 2) {
    // Shared TSV bundle: each member channel gets a 1/G TDM share of the
    // handoff interval, plus the bundle's fixed serialization latency. The
    // transform is per-channel state only, so channel copies/snapshots and
    // sharded determinism are untouched.
    ic.request_interval_cycles =
        std::max(ic.request_interval_cycles, 1) *
        static_cast<int>(vault_group);
    ic.latency = ic.latency + Time::from_ns(2.0);
  }
  return ic;
}

MemorySystem::MemorySystem(const SystemConfig& cfg)
    : cfg_(cfg),
      interleaver_(cfg.channels, cfg.interleave_bytes),
      route_counts_(cfg.channels, 0) {
  if (cfg.channels == 0) throw std::invalid_argument("channels must be > 0");
  if (cfg.interleave_bytes < cfg.device.org.bytes_per_burst()) {
    throw std::invalid_argument(
        "interleave granularity below the minimum DRAM burst size");
  }
  if (!cfg.channel_classes.empty() &&
      cfg.channel_classes.size() != cfg.channels) {
    throw std::invalid_argument(
        "channel_classes must be empty or have one entry per channel");
  }
  channels_.reserve(cfg.channels);
  for (std::uint32_t i = 0; i < cfg.channels; ++i) {
    channels_.emplace_back(cfg.channel_device(i), cfg.freq, cfg.mux,
                           cfg.controller, cfg.channel_interconnect(i),
                           cfg.interface);
  }
  ready_heap_.reserve(cfg.channels);
}

void MemorySystem::heap_push(std::uint32_t ch) {
  ready_heap_.push_back(ReadySlot{channels_[ch].horizon(), ch});
  std::size_t i = ready_heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!ready_before(ready_heap_[i], ready_heap_[parent])) break;
    std::swap(ready_heap_[i], ready_heap_[parent]);
    i = parent;
  }
}

void MemorySystem::heap_sift_down(std::size_t i) {
  const std::size_t n = ready_heap_.size();
  const ReadySlot moving = ready_heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        ready_before(ready_heap_[child + 1], ready_heap_[child])) {
      ++child;
    }
    if (!ready_before(ready_heap_[child], moving)) break;
    ready_heap_[i] = ready_heap_[child];
    i = child;
  }
  ready_heap_[i] = moving;
}

std::uint64_t MemorySystem::capacity_bytes() const {
  // Per-channel sum: heterogeneous classes bind different die sizes.
  std::uint64_t total = 0;
  for (const auto& c : channels_) {
    total += c.controller().device().org.capacity_bytes();
  }
  return total;
}

double MemorySystem::peak_bandwidth_bytes_per_s() const {
  double total = 0.0;
  for (const auto& c : channels_) {
    const auto& ctl = c.controller();
    total += ctl.timing().peak_bandwidth_bytes_per_s(ctl.device().org);
  }
  return total;
}

void MemorySystem::submit(const ctrl::Request& r) {
  const RoutedAddress routed = interleaver_.route(r.addr);
  ctrl::Request local = r;
  local.addr = routed.local;
  ++route_counts_[routed.channel];
  const bool was_pending = channels_[routed.channel].has_pending();
  channels_[routed.channel].enqueue(local);
  if (!was_pending) heap_push(routed.channel);
}

bool MemorySystem::try_submit(const ctrl::Request& r) {
  const RoutedAddress routed = interleaver_.route(r.addr);
  channel::Channel& c = channels_[routed.channel];
  if (!c.can_accept()) return false;
  ctrl::Request local = r;
  local.addr = routed.local;
  ++route_counts_[routed.channel];
  const bool was_pending = c.has_pending();
  c.enqueue(local);
  if (!was_pending) heap_push(routed.channel);
  return true;
}

bool MemorySystem::any_pending() const {
  for (const auto& c : channels_) {
    if (c.has_pending()) return true;
  }
  return false;
}

std::optional<ctrl::Completion> MemorySystem::process_next() {
  if (ready_heap_.empty()) return std::nullopt;
  channel::Channel& c = channels_[ready_heap_.front().channel];
  assert(c.has_pending());
  const ctrl::Completion done = c.process_one();
  const Time h = c.horizon();
  if (h > max_horizon_) max_horizon_ = h;
  if (c.has_pending()) {
    ready_heap_.front().horizon = h;  // re-key in place
  } else {
    ready_heap_.front() = ready_heap_.back();  // drained: swap-remove
    ready_heap_.pop_back();
  }
  if (!ready_heap_.empty()) heap_sift_down(0);
  return done;
}

Time MemorySystem::drain() {
  Time last = Time::zero();
  while (auto c = process_next()) last = max(last, c->done);
  return last;
}

void MemorySystem::finalize(Time end) {
  assert(!any_pending());
  for (auto& c : channels_) {
    c.finalize(end);
    if (c.horizon() > max_horizon_) max_horizon_ = c.horizon();
  }
}

SystemStats MemorySystem::stats() const {
  SystemStats s;
  s.per_channel.reserve(channels_.size());
  for (const auto& c : channels_) {
    const auto& st = c.stats();
    s.reads += st.reads;
    s.writes += st.writes;
    s.bytes += st.bytes;
    s.row_hits += st.row_hits;
    s.row_misses += st.row_misses;
    s.row_conflicts += st.row_conflicts;
    s.activates += st.activates;
    s.precharges += st.precharges;
    s.refreshes += st.refreshes;
    s.powerdown_entries += c.controller().ledger().n_powerdown_entries;
    s.selfrefresh_entries += c.controller().ledger().n_selfrefresh_entries;
    s.latency_ns += st.latency_ns();
    s.latency_hist_ns += st.latency_hist_ns;
    s.per_channel.push_back(st);
  }
  return s;
}

void MemorySystem::attach_trace(obs::TraceWriter* sink) {
  for (std::uint32_t i = 0; i < channels_.size(); ++i) {
    channels_[i].set_trace_sink(sink, i);
  }
}

void MemorySystem::collect_metrics(obs::MetricsRegistry& reg,
                                   const std::string& prefix) const {
  const SystemStats s = stats();
  reg.counter(prefix + "system/reads").set(s.reads);
  reg.counter(prefix + "system/writes").set(s.writes);
  reg.counter(prefix + "system/bytes").set(s.bytes);
  reg.counter(prefix + "system/row_hits").set(s.row_hits);
  reg.counter(prefix + "system/row_misses").set(s.row_misses);
  reg.counter(prefix + "system/row_conflicts").set(s.row_conflicts);
  reg.counter(prefix + "system/activates").set(s.activates);
  reg.counter(prefix + "system/precharges").set(s.precharges);
  reg.counter(prefix + "system/refreshes").set(s.refreshes);
  reg.counter(prefix + "system/powerdown_entries").set(s.powerdown_entries);
  reg.counter(prefix + "system/selfrefresh_entries").set(s.selfrefresh_entries);
  reg.gauge(prefix + "system/row_hit_rate").set(s.row_hit_rate());
  reg.gauge(prefix + "system/channels").set(static_cast<double>(channels_.size()));
  reg.histogram(prefix + "system/latency_ns", s.latency_hist_ns);

  for (std::uint32_t i = 0; i < channels_.size(); ++i) {
    const std::string ch = prefix + "ch" + std::to_string(i) + "/";
    const auto& ctl = channels_[i].controller();
    const auto& st = ctl.stats();
    reg.counter(ch + "reads").set(st.reads);
    reg.counter(ch + "writes").set(st.writes);
    reg.counter(ch + "bytes").set(st.bytes);
    reg.counter(ch + "row_hits").set(st.row_hits);
    reg.counter(ch + "row_misses").set(st.row_misses);
    reg.counter(ch + "row_conflicts").set(st.row_conflicts);
    reg.counter(ch + "activates").set(st.activates);
    reg.counter(ch + "precharges").set(st.precharges);
    reg.counter(ch + "refreshes").set(st.refreshes);
    reg.gauge(ch + "row_hit_rate").set(st.row_hit_rate());
    reg.histogram(ch + "latency_ns", st.latency_hist_ns);
    reg.histogram(ch + "queue_depth", st.queue_depth);
    reg.counter(prefix + "interleaver/routed/ch" + std::to_string(i))
        .set(route_counts_[i]);

    const auto& banks = ctl.bank_accesses();
    for (std::size_t b = 0; b < banks.size(); ++b) {
      reg.counter(ch + "bank" + std::to_string(b) + "/accesses").set(banks[b]);
    }

    // Power-state residency (ns over the run) — where power-down thrashing
    // or missing idle tails show up.
    const auto& ledger = ctl.ledger();
    reg.gauge(ch + "residency/active_standby_ns").set(ledger.t_active_standby.ns());
    reg.gauge(ch + "residency/precharge_standby_ns")
        .set(ledger.t_precharge_standby.ns());
    reg.gauge(ch + "residency/active_powerdown_ns")
        .set(ledger.t_active_powerdown.ns());
    reg.gauge(ch + "residency/powerdown_ns").set(ledger.t_powerdown.ns());
    reg.gauge(ch + "residency/selfrefresh_ns").set(ledger.t_selfrefresh.ns());
    reg.counter(ch + "powerdown_entries").set(ledger.n_powerdown_entries);
    reg.counter(ch + "selfrefresh_entries").set(ledger.n_selfrefresh_entries);
  }
}

SystemPowerReport MemorySystem::power(Time window) const {
  SystemPowerReport r;
  r.per_channel.reserve(channels_.size());
  for (const auto& c : channels_) {
    auto p = c.power(window);
    r.dram += p.dram;
    r.dram_mw += p.dram_avg_mw;
    r.interface_mw += p.interface_mw;
    r.total_mw += p.total_mw;
    r.per_channel.push_back(std::move(p));
  }
  return r;
}


}  // namespace mcm::multichannel
