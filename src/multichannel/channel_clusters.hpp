// Independent channel clusters (paper Section V, future-work feature): a
// very large multi-channel memory divided into clusters of a reasonable
// number of channels, each cluster serving one use case / memory master
// independently. Each cluster is a complete MemorySystem with its own
// interleaver; the cluster system partitions the global address space in
// equal contiguous slices.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "multichannel/memory_system.hpp"

namespace mcm::multichannel {

struct ClusterConfig {
  SystemConfig per_cluster;     // channels per cluster etc.
  std::uint32_t clusters = 2;

  /// Per-cluster device-class override: every channel of cluster i binds
  /// cluster_classes[i] (on top of any per-channel classes in
  /// `per_cluster`). Empty = all clusters identical. This is the placement
  /// knob for heterogeneous studies: put the hot use case's slice on a
  /// fast-class cluster and cold streams on a dense slow cluster.
  std::vector<dram::DeviceClass> cluster_classes;
};

class ChannelClusterSystem {
 public:
  explicit ChannelClusterSystem(const ClusterConfig& cfg);

  [[nodiscard]] std::uint32_t cluster_count() const {
    return static_cast<std::uint32_t>(clusters_.size());
  }
  [[nodiscard]] MemorySystem& cluster(std::uint32_t i) { return *clusters_[i]; }
  [[nodiscard]] const MemorySystem& cluster(std::uint32_t i) const {
    return *clusters_[i];
  }

  /// Total channels across clusters.
  [[nodiscard]] std::uint32_t total_channels() const;
  [[nodiscard]] std::uint64_t capacity_bytes() const;

  /// Which cluster owns a global address (contiguous equal slices).
  [[nodiscard]] std::uint32_t cluster_of(std::uint64_t global_addr) const;

  /// Submit into the owning cluster with a cluster-local address.
  [[nodiscard]] bool can_accept(std::uint64_t global_addr) const;
  void submit(const ctrl::Request& r);

  [[nodiscard]] bool any_pending() const;
  std::optional<ctrl::Completion> process_next();
  Time drain();
  void finalize(Time end);

  [[nodiscard]] SystemStats stats() const;
  [[nodiscard]] SystemPowerReport power(Time window) const;

 private:
  std::vector<std::unique_ptr<MemorySystem>> clusters_;
  std::uint64_t slice_bytes_;
};

}  // namespace mcm::multichannel
