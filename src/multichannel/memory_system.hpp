// The multi-channel memory subsystem of paper Fig. 2: M parallel channels,
// each a memory controller + DRAM interconnect + bank cluster, fed through
// the Table II address interleaver. This is the library's main entry point
// for memory simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "channel/channel.hpp"
#include "common/units.hpp"
#include "controller/request.hpp"
#include "dram/device_class.hpp"
#include "multichannel/interleaver.hpp"

namespace mcm::obs {
class MetricsRegistry;
class TraceWriter;
}  // namespace mcm::obs

namespace mcm::multichannel {

struct SystemConfig {
  dram::DeviceSpec device = dram::DeviceSpec::next_gen_mobile_ddr();
  Frequency freq{400.0};
  std::uint32_t channels = 4;
  std::uint32_t interleave_bytes = 16;  // Table II minimum practical granularity
  ctrl::AddressMux mux = ctrl::AddressMux::kRBC;
  ctrl::ControllerConfig controller;
  channel::InterconnectSpec interconnect;
  channel::InterfacePowerSpec interface;

  /// Device class per channel (index = channel id). Empty = every channel
  /// binds `device` (the legacy homogeneous system, bit-identical to the
  /// pre-class config). Non-empty must have exactly `channels` entries.
  std::vector<dram::DeviceClass> channel_classes;

  /// Vault-style stacked interface: consecutive groups of `vault_group`
  /// channels share one TSV bundle, modelled as per-channel front-end TDM
  /// (request interval x group size) plus a fixed serialization latency.
  /// 0 or 1 = independent interfaces (no shared-TSV cost).
  std::uint32_t vault_group = 0;

  [[nodiscard]] bool heterogeneous() const { return !channel_classes.empty(); }

  /// Class bound by channel `ch` (kMobileDdr when no classes configured).
  [[nodiscard]] dram::DeviceClass channel_class(std::uint32_t ch) const {
    return ch < channel_classes.size() ? channel_classes[ch]
                                       : dram::DeviceClass::kMobileDdr;
  }

  /// Full device spec for channel `ch` (the resolved class table).
  [[nodiscard]] dram::DeviceSpec channel_device(std::uint32_t ch) const {
    return dram::device_class_spec(channel_class(ch), device);
  }

  /// Interconnect spec for channel `ch` with the shared-TSV serialization
  /// cost applied. This is the single definition of the vault model: the
  /// production system and the golden reference both construct their
  /// channels from it, so the transform can never diverge between them.
  [[nodiscard]] channel::InterconnectSpec channel_interconnect(
      std::uint32_t ch) const;
};

struct SystemPowerReport {
  std::vector<channel::ChannelPowerReport> per_channel;
  dram::EnergyBreakdown dram;  // summed over channels
  double dram_mw = 0;
  double interface_mw = 0;
  double total_mw = 0;
};

struct SystemStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t powerdown_entries = 0;
  std::uint64_t selfrefresh_entries = 0;
  Accumulator latency_ns;  // per-request arrival -> data end, all channels
  Histogram latency_hist_ns{0.0, ctrl::ControllerStats::kLatencyHistMaxNs,
                            ctrl::ControllerStats::kLatencyHistBuckets};

  /// Per-channel controller statistics (index = channel id), so reports can
  /// show which channel saturated or lost row locality.
  std::vector<ctrl::ControllerStats> per_channel;

  [[nodiscard]] std::uint64_t accesses() const { return reads + writes; }
  [[nodiscard]] double row_hit_rate() const {
    const auto n = accesses();
    return n > 0 ? static_cast<double>(row_hits) / static_cast<double>(n) : 0.0;
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const SystemConfig& cfg);

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t channel_count() const {
    return static_cast<std::uint32_t>(channels_.size());
  }
  [[nodiscard]] const channel::Channel& channel(std::uint32_t i) const {
    return channels_[i];
  }
  /// Mutable channel access for the sharded simulator, which drives each
  /// channel directly instead of going through try_submit/process_next.
  [[nodiscard]] channel::Channel& channel(std::uint32_t i) {
    return channels_[i];
  }
  [[nodiscard]] const Interleaver& interleaver() const { return interleaver_; }

  /// Total byte capacity across channels.
  [[nodiscard]] std::uint64_t capacity_bytes() const;

  /// Aggregate peak data bandwidth (bytes/s).
  [[nodiscard]] double peak_bandwidth_bytes_per_s() const;

  /// Which channel a global byte address routes to.
  [[nodiscard]] std::uint32_t channel_of(std::uint64_t global_addr) const {
    return interleaver_.route(global_addr).channel;
  }

  /// True when the target channel queue has room for this request.
  [[nodiscard]] bool can_accept(std::uint64_t global_addr) const {
    return channels_[channel_of(global_addr)].can_accept();
  }

  /// Route and enqueue. Precondition: can_accept(r.addr).
  void submit(const ctrl::Request& r);

  /// Route once and enqueue if the target channel has room. Equivalent to
  /// `can_accept(r.addr) && (submit(r), true)` with a single address route.
  bool try_submit(const ctrl::Request& r);

  [[nodiscard]] bool any_pending() const;

  /// Serve one request on the most-behind pending channel (keeps the
  /// channels' time horizons advancing together). Returns nullopt when
  /// nothing is pending.
  std::optional<ctrl::Completion> process_next();

  /// Drain every queued request; returns the last completion time.
  Time drain();

  void finalize(Time end);

  [[nodiscard]] SystemStats stats() const;
  [[nodiscard]] SystemPowerReport power(Time window) const;

  /// Latest horizon across channels (time committed so far). Horizons only
  /// advance, so this is tracked incrementally instead of scanned.
  [[nodiscard]] Time max_horizon() const { return max_horizon_; }

  /// Requests routed to each channel by the interleaver (index = channel).
  [[nodiscard]] const std::vector<std::uint64_t>& route_counts() const {
    return route_counts_;
  }

  /// Attach (or detach with nullptr) a structured trace writer to every
  /// channel's controller; events are tagged with the channel index.
  void attach_trace(obs::TraceWriter* sink);

  /// Attach a trace writer to a single channel (sharded simulation gives
  /// each channel its own spool so writers are never shared across threads).
  void attach_trace(obs::TraceWriter* sink, std::uint32_t ch) {
    channels_[ch].set_trace_sink(sink, ch);
  }

  /// Bulk-account `n` requests routed to channel `ch` (the sharded feed
  /// routes outside the MemorySystem but keeps the routing counters alive).
  void add_route_count(std::uint32_t ch, std::uint64_t n) {
    route_counts_[ch] += n;
  }

  /// Publish the full metric catalogue (system aggregates, per-channel
  /// counters and latency/queue histograms, per-bank access counts,
  /// interleaver routing, power-state residency) into `reg` under `prefix`.
  void collect_metrics(obs::MetricsRegistry& reg,
                       const std::string& prefix = "") const;

 private:
  /// Min-heap of pending channels keyed by (horizon, channel index) so
  /// process_next is O(log M) instead of a linear scan over every channel.
  /// Each pending channel appears exactly once; a channel's key only moves
  /// while it is at the top (process_one), so an in-place re-key of the
  /// root plus one sift-down keeps the heap valid (update-on-pop).
  struct ReadySlot {
    Time horizon;
    std::uint32_t channel;
  };

  /// Strict order: smaller horizon first, ties to the lowest channel index -
  /// the same channel a linear scan would pick, so the multi-channel
  /// interleaving is unchanged.
  static bool ready_before(const ReadySlot& a, const ReadySlot& b) {
    if (a.horizon != b.horizon) return a.horizon < b.horizon;
    return a.channel < b.channel;
  }

  /// Add newly-pending channel `ch` to the ready heap (sift-up).
  void heap_push(std::uint32_t ch);

  /// Restore the heap property downward from slot `i` after a re-key.
  void heap_sift_down(std::size_t i);

  SystemConfig cfg_;
  Interleaver interleaver_;
  std::vector<channel::Channel> channels_;
  std::vector<std::uint64_t> route_counts_;
  std::vector<ReadySlot> ready_heap_;
  Time max_horizon_ = Time::zero();
};

}  // namespace mcm::multichannel
