#include "multichannel/channel_clusters.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcm::multichannel {

ChannelClusterSystem::ChannelClusterSystem(const ClusterConfig& cfg) {
  if (cfg.clusters == 0) throw std::invalid_argument("clusters must be > 0");
  if (!cfg.cluster_classes.empty() &&
      cfg.cluster_classes.size() != cfg.clusters) {
    throw std::invalid_argument(
        "cluster_classes must be empty or have one entry per cluster");
  }
  clusters_.reserve(cfg.clusters);
  for (std::uint32_t i = 0; i < cfg.clusters; ++i) {
    SystemConfig sys = cfg.per_cluster;
    if (!cfg.cluster_classes.empty()) {
      sys.channel_classes.assign(sys.channels, cfg.cluster_classes[i]);
    }
    clusters_.push_back(std::make_unique<MemorySystem>(sys));
  }
  // Equal contiguous slices. With heterogeneous clusters the smallest
  // cluster bounds the slice so every cluster-local address stays in range.
  slice_bytes_ = clusters_.front()->capacity_bytes();
  for (const auto& c : clusters_) {
    slice_bytes_ = std::min(slice_bytes_, c->capacity_bytes());
  }
}

std::uint32_t ChannelClusterSystem::total_channels() const {
  std::uint32_t n = 0;
  for (const auto& c : clusters_) n += c->channel_count();
  return n;
}

std::uint64_t ChannelClusterSystem::capacity_bytes() const {
  return slice_bytes_ * clusters_.size();
}

std::uint32_t ChannelClusterSystem::cluster_of(std::uint64_t global_addr) const {
  return static_cast<std::uint32_t>((global_addr / slice_bytes_) % clusters_.size());
}

bool ChannelClusterSystem::can_accept(std::uint64_t global_addr) const {
  const auto& c = *clusters_[cluster_of(global_addr)];
  return c.can_accept(global_addr % slice_bytes_);
}

void ChannelClusterSystem::submit(const ctrl::Request& r) {
  ctrl::Request local = r;
  local.addr = r.addr % slice_bytes_;
  clusters_[cluster_of(r.addr)]->submit(local);
}

bool ChannelClusterSystem::any_pending() const {
  for (const auto& c : clusters_) {
    if (c->any_pending()) return true;
  }
  return false;
}

std::optional<ctrl::Completion> ChannelClusterSystem::process_next() {
  // Serve the most-behind cluster, mirroring MemorySystem::process_next.
  MemorySystem* best = nullptr;
  for (auto& c : clusters_) {
    if (!c->any_pending()) continue;
    if (best == nullptr || c->max_horizon() < best->max_horizon()) best = c.get();
  }
  if (best == nullptr) return std::nullopt;
  return best->process_next();
}

Time ChannelClusterSystem::drain() {
  Time last = Time::zero();
  while (auto c = process_next()) last = max(last, c->done);
  return last;
}

void ChannelClusterSystem::finalize(Time end) {
  for (auto& c : clusters_) c->finalize(end);
}

SystemStats ChannelClusterSystem::stats() const {
  SystemStats s;
  for (const auto& c : clusters_) {
    const SystemStats cs = c->stats();
    s.reads += cs.reads;
    s.writes += cs.writes;
    s.bytes += cs.bytes;
    s.row_hits += cs.row_hits;
    s.row_misses += cs.row_misses;
    s.row_conflicts += cs.row_conflicts;
    s.activates += cs.activates;
    s.precharges += cs.precharges;
    s.refreshes += cs.refreshes;
    s.powerdown_entries += cs.powerdown_entries;
    s.selfrefresh_entries += cs.selfrefresh_entries;
    s.latency_ns += cs.latency_ns;
  }
  return s;
}

SystemPowerReport ChannelClusterSystem::power(Time window) const {
  SystemPowerReport r;
  for (const auto& c : clusters_) {
    const SystemPowerReport cr = c->power(window);
    r.dram += cr.dram;
    r.dram_mw += cr.dram_mw;
    r.interface_mw += cr.interface_mw;
    r.total_mw += cr.total_mw;
    r.per_channel.insert(r.per_channel.end(), cr.per_channel.begin(),
                         cr.per_channel.end());
  }
  return r;
}

}  // namespace mcm::multichannel
