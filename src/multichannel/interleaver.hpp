// Channel interleaving per the paper's Table II: the global byte address
// space is striped across the M channels at a fixed granularity G so that a
// single master transaction exercises every channel. The paper's minimum
// practical granularity is 16 bytes (DRAM burst of 4 x 32-bit words);
// larger granularities are supported for the interleaving ablation.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace mcm::multichannel {

struct RoutedAddress {
  std::uint32_t channel = 0;
  std::uint64_t local = 0;  // channel-local byte address

  friend bool operator==(const RoutedAddress&, const RoutedAddress&) = default;
};

class Interleaver {
 public:
  Interleaver(std::uint32_t channels, std::uint32_t granularity_bytes)
      : channels_(channels), granularity_(granularity_bytes) {
    assert(channels_ > 0);
    assert(granularity_ > 0);
    // Granularity and channel counts are powers of two in every supported
    // configuration; route() then runs as shifts and masks on the request
    // hot path (one call per request). The division form stays as the
    // fallback and as the reference for the inverse-mapping property tests.
    const auto pow2 = [](std::uint32_t v) { return (v & (v - 1)) == 0; };
    if (pow2(granularity_) && pow2(channels_)) {
      shifts_valid_ = true;
      gran_shift_ = static_cast<unsigned>(std::countr_zero(granularity_));
      chan_shift_ = static_cast<unsigned>(std::countr_zero(channels_));
    }
  }

  [[nodiscard]] std::uint32_t channels() const { return channels_; }
  [[nodiscard]] std::uint32_t granularity() const { return granularity_; }

  [[nodiscard]] RoutedAddress route(std::uint64_t global) const {
    RoutedAddress r;
    if (shifts_valid_) {
      const std::uint64_t stripe = global >> gran_shift_;
      r.channel = static_cast<std::uint32_t>(stripe & (channels_ - 1));
      r.local = ((stripe >> chan_shift_) << gran_shift_) |
                (global & (granularity_ - 1));
      return r;
    }
    const std::uint64_t stripe = global / granularity_;
    r.channel = static_cast<std::uint32_t>(stripe % channels_);
    r.local = (stripe / channels_) * granularity_ + global % granularity_;
    return r;
  }

  /// Inverse of route (for property tests and debug dumps).
  [[nodiscard]] std::uint64_t to_global(const RoutedAddress& r) const {
    const std::uint64_t stripe = (r.local / granularity_) * channels_ + r.channel;
    return stripe * granularity_ + r.local % granularity_;
  }

 private:
  std::uint32_t channels_;
  std::uint32_t granularity_;
  bool shifts_valid_ = false;
  unsigned gran_shift_ = 0;
  unsigned chan_shift_ = 0;
};

}  // namespace mcm::multichannel
