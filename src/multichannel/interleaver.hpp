// Channel interleaving per the paper's Table II: the global byte address
// space is striped across the M channels at a fixed granularity G so that a
// single master transaction exercises every channel. The paper's minimum
// practical granularity is 16 bytes (DRAM burst of 4 x 32-bit words);
// larger granularities are supported for the interleaving ablation.
#pragma once

#include <cassert>
#include <cstdint>

namespace mcm::multichannel {

struct RoutedAddress {
  std::uint32_t channel = 0;
  std::uint64_t local = 0;  // channel-local byte address

  friend bool operator==(const RoutedAddress&, const RoutedAddress&) = default;
};

class Interleaver {
 public:
  Interleaver(std::uint32_t channels, std::uint32_t granularity_bytes)
      : channels_(channels), granularity_(granularity_bytes) {
    assert(channels_ > 0);
    assert(granularity_ > 0);
  }

  [[nodiscard]] std::uint32_t channels() const { return channels_; }
  [[nodiscard]] std::uint32_t granularity() const { return granularity_; }

  [[nodiscard]] RoutedAddress route(std::uint64_t global) const {
    const std::uint64_t stripe = global / granularity_;
    RoutedAddress r;
    r.channel = static_cast<std::uint32_t>(stripe % channels_);
    r.local = (stripe / channels_) * granularity_ + global % granularity_;
    return r;
  }

  /// Inverse of route (for property tests and debug dumps).
  [[nodiscard]] std::uint64_t to_global(const RoutedAddress& r) const {
    const std::uint64_t stripe = (r.local / granularity_) * channels_ + r.channel;
    return stripe * granularity_ + r.local % granularity_;
  }

 private:
  std::uint32_t channels_;
  std::uint32_t granularity_;
};

}  // namespace mcm::multichannel
