// Toy H.264-style encoder: full-search motion estimation over multiple
// reference frames, Hadamard transform + QP quantization of the residual,
// exp-Golomb bit accounting, and in-loop reconstruction. Not a compliant
// codec - a functional stand-in that (a) produces realistic per-macroblock
// memory behaviour for the cache/bandwidth experiments and (b) lets tests
// validate the paper's encoder-traffic model against actual code.
//
// Memory instrumentation: pass a MemoryTracer and every reference-window
// fetch, input read, and reconstruction write is reported against a virtual
// address map (one contiguous plane per buffer).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pixel/image.hpp"
#include "pixel/stages.hpp"

namespace mcm::pixel {

class MemoryTracer {
 public:
  virtual ~MemoryTracer() = default;
  virtual void access(std::uint64_t addr, std::uint32_t bytes, bool is_write) = 0;
};

struct EncoderConfig {
  int qp = 28;
  int search_range = 8;            // +/- pixels, full search
  std::uint32_t max_ref_frames = 4;
  int lambda = 4;                  // rate weight in the ME cost (SAD + lambda*mvbits)
  bool half_pel = false;           // refine the best integer MV at half-pel

  /// Target stream bitrate in kbit/s (0 = constant QP). When set, the QP
  /// adapts per frame to track bitrate/fps, clamped to [min_qp, max_qp].
  std::uint32_t target_bitrate_kbps = 0;
  double target_fps = 30.0;
  int min_qp = 10;
  int max_qp = 44;

  /// Virtual address map for tracing.
  std::uint64_t input_base = 0x1000'0000;
  std::uint64_t recon_base = 0x2000'0000;
  std::uint64_t ref_base = 0x3000'0000;
  std::uint64_t ref_stride = 0x0100'0000;  // address distance between refs
};

struct FrameStats {
  std::uint64_t bits = 0;       // coded size estimate
  double psnr_y = 0;            // reconstruction quality vs input luma
  std::uint64_t skipped_mbs = 0;
  std::uint64_t intra_mbs = 0;  // first frame / no reference
  double mean_abs_mv = 0;       // average |mv| component, integer pixels
  int qp_used = 0;              // QP this frame was coded with (rate control)
};

class ToyEncoder {
 public:
  ToyEncoder(const EncoderConfig& cfg, std::uint32_t width, std::uint32_t height);

  /// Encode one 4:2:0 frame; returns coded statistics and updates the
  /// reference list with the reconstructed frame.
  FrameStats encode(const Yuv420Image& input, MemoryTracer* tracer = nullptr);

  [[nodiscard]] const Yuv420Image& last_recon() const { return refs_.front(); }
  [[nodiscard]] std::size_t reference_count() const { return refs_.size(); }
  [[nodiscard]] const EncoderConfig& config() const { return cfg_; }

  /// Current QP (constant, or the rate controller's last decision).
  [[nodiscard]] int current_qp() const { return qp_; }

 private:
  struct MbDecision {
    MotionVector mv;            // integer-pel component
    bool half_x = false;        // +1/2 pel refinements
    bool half_y = false;
    std::uint32_t ref = 0;
    std::uint64_t cost = 0;
  };

  enum class IntraMode : std::uint8_t { kDc, kVertical, kHorizontal };

  [[nodiscard]] MbDecision search_macroblock(const Yuv420Image& input,
                                             std::uint32_t mb_x, std::uint32_t mb_y,
                                             MemoryTracer* tracer) const;

  /// Pick the intra prediction mode from the reconstructed neighbors.
  [[nodiscard]] IntraMode choose_intra_mode(const Yuv420Image& input,
                                            const Yuv420Image& recon,
                                            std::uint32_t mb_x,
                                            std::uint32_t mb_y) const;

  /// Transform/quantize/reconstruct one 16x16 luma + 8x8 chroma macroblock;
  /// returns coded bits.
  std::uint64_t code_macroblock(const Yuv420Image& input, const MbDecision& dec,
                                IntraMode intra, std::uint32_t mb_x,
                                std::uint32_t mb_y, Yuv420Image& recon,
                                MemoryTracer* tracer) const;

  void update_rate_control(std::uint64_t frame_bits);

  EncoderConfig cfg_;
  std::uint32_t width_;
  std::uint32_t height_;
  int qp_;
  std::deque<Yuv420Image> refs_;  // most recent first
};

}  // namespace mcm::pixel
