// Deterministic synthetic video source: a panning gradient background with
// independently moving rectangles plus sensor noise, and an RGGB Bayer
// mosaic sampler. Stands in for the image sensor (and for the test material
// the paper points to [10]) so every experiment is self-contained and
// reproducible.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "pixel/image.hpp"

namespace mcm::pixel {

struct SceneParams {
  std::uint32_t width = 1280;
  std::uint32_t height = 720;
  std::uint64_t seed = 1;
  double noise_sigma = 1.5;   // additive sensor noise (std dev, gray levels)
  int objects = 5;            // moving rectangles
  double pan_x = 1.5;         // global camera pan, pixels/frame
  double pan_y = -0.75;
};

class SceneGenerator {
 public:
  explicit SceneGenerator(const SceneParams& params);

  /// Render frame `index` (deterministic: same index, same pixels).
  [[nodiscard]] Rgb888Image render(int index) const;

  /// Luma-only render (for motion-estimation tests).
  [[nodiscard]] ImageU8 render_luma(int index) const;

  [[nodiscard]] const SceneParams& params() const { return params_; }

 private:
  struct ObjectSpec {
    double x0, y0;      // position at frame 0
    double vx, vy;      // velocity, pixels/frame
    std::uint32_t w, h;
    std::uint8_t r, g, b;
  };

  SceneParams params_;
  std::vector<ObjectSpec> objects_;
};

/// Sample a planar RGB image into an RGGB Bayer mosaic (16-bit container
/// with 10-bit-style values in the low bits, matching the paper's 16
/// bits/pixel raw format; we keep 8-bit values for simplicity).
[[nodiscard]] ImageU8 bayer_mosaic_rggb(const Rgb888Image& rgb);

}  // namespace mcm::pixel
