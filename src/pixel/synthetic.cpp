#include "pixel/synthetic.hpp"

#include <cmath>

namespace mcm::pixel {
namespace {

/// Deterministic per-pixel noise: hash of (seed, frame, x, y) mapped to an
/// approximately normal value via a sum of uniforms.
double pixel_noise(std::uint64_t seed, int frame, std::uint32_t x, std::uint32_t y) {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(frame) << 40) ^
                    (static_cast<std::uint64_t>(x) << 20) ^ y;
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    acc += static_cast<double>(h & 0xffff) / 65535.0;
  }
  return acc - 2.0;  // ~N(0, 0.577)
}

}  // namespace

SceneGenerator::SceneGenerator(const SceneParams& params) : params_(params) {
  Rng rng(params.seed);
  objects_.reserve(static_cast<std::size_t>(params.objects));
  for (int i = 0; i < params.objects; ++i) {
    ObjectSpec o;
    o.x0 = static_cast<double>(rng.next_below(params.width));
    o.y0 = static_cast<double>(rng.next_below(params.height));
    o.vx = (rng.next_double() - 0.5) * 8.0;
    o.vy = (rng.next_double() - 0.5) * 8.0;
    o.w = 24 + static_cast<std::uint32_t>(rng.next_below(params.width / 6 + 1));
    o.h = 24 + static_cast<std::uint32_t>(rng.next_below(params.height / 6 + 1));
    o.r = static_cast<std::uint8_t>(rng.next_below(256));
    o.g = static_cast<std::uint8_t>(rng.next_below(256));
    o.b = static_cast<std::uint8_t>(rng.next_below(256));
    objects_.push_back(o);
  }
}

Rgb888Image SceneGenerator::render(int index) const {
  const std::uint32_t w = params_.width;
  const std::uint32_t h = params_.height;
  Rgb888Image img(w, h);

  const double pan_x = params_.pan_x * index;
  const double pan_y = params_.pan_y * index;

  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      // Panning smooth background texture. Incommensurate sinusoids give a
      // translation-unambiguous pattern (a plain linear gradient is constant
      // along its iso-lines, which defeats motion estimation tests).
      const double gx = x + pan_x;
      const double gy = y + pan_y;
      const double t = 50.0 * std::sin(gx * 0.13) + 40.0 * std::sin(gy * 0.17) +
                       20.0 * std::sin((gx + gy) * 0.057);
      const int base = clamp_u8(static_cast<int>(120.0 + t));
      int r = base;
      int g = (base * 3 / 4) + 32;
      int b = 255 - base;
      // Moving objects on top.
      for (const auto& o : objects_) {
        const double ox = o.x0 + o.vx * index + pan_x;
        const double oy = o.y0 + o.vy * index + pan_y;
        const double wrapped_x = std::fmod(std::fmod(ox, w) + w, w);
        const double wrapped_y = std::fmod(std::fmod(oy, h) + h, h);
        if (x >= wrapped_x && x < wrapped_x + o.w && y >= wrapped_y &&
            y < wrapped_y + o.h) {
          r = o.r;
          g = o.g;
          b = o.b;
        }
      }
      const double n = params_.noise_sigma == 0.0
                           ? 0.0
                           : pixel_noise(params_.seed, index, x, y) *
                                 params_.noise_sigma * 1.73;
      img.r.at(x, y) = clamp_u8(static_cast<int>(r + n));
      img.g.at(x, y) = clamp_u8(static_cast<int>(g + n));
      img.b.at(x, y) = clamp_u8(static_cast<int>(b + n));
    }
  }
  return img;
}

ImageU8 SceneGenerator::render_luma(int index) const {
  const Rgb888Image rgb = render(index);
  ImageU8 out(rgb.width(), rgb.height());
  for (std::uint32_t y = 0; y < rgb.height(); ++y) {
    for (std::uint32_t x = 0; x < rgb.width(); ++x) {
      const int l = (66 * rgb.r.at(x, y) + 129 * rgb.g.at(x, y) +
                     25 * rgb.b.at(x, y) + 128) >>
                        8;
      out.at(x, y) = clamp_u8(l + 16);
    }
  }
  return out;
}

ImageU8 bayer_mosaic_rggb(const Rgb888Image& rgb) {
  ImageU8 out(rgb.width(), rgb.height());
  for (std::uint32_t y = 0; y < rgb.height(); ++y) {
    for (std::uint32_t x = 0; x < rgb.width(); ++x) {
      const bool even_row = (y % 2) == 0;
      const bool even_col = (x % 2) == 0;
      std::uint8_t v;
      if (even_row && even_col) {
        v = rgb.r.at(x, y);  // R
      } else if (!even_row && !even_col) {
        v = rgb.b.at(x, y);  // B
      } else {
        v = rgb.g.at(x, y);  // G (two per quad)
      }
      out.at(x, y) = v;
    }
  }
  return out;
}

}  // namespace mcm::pixel
