#include "pixel/stages.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace mcm::pixel {

ImageU8 denoise_box3(const ImageU8& bayer) {
  ImageU8 out(bayer.width(), bayer.height());
  // Border handling must preserve Bayer parity: reflect by whole color
  // periods (2 sites) so an R site never averages a G neighbor.
  const auto reflect2 = [](std::int64_t v, std::int64_t n) {
    while (v < 0) v += 2;
    while (v >= n) v -= 2;
    return static_cast<std::uint32_t>(v);
  };
  for (std::uint32_t y = 0; y < bayer.height(); ++y) {
    for (std::uint32_t x = 0; x < bayer.width(); ++x) {
      // Same-color neighbors in a Bayer mosaic sit two sites away.
      int acc = 0;
      for (int dy = -2; dy <= 2; dy += 2) {
        for (int dx = -2; dx <= 2; dx += 2) {
          acc += bayer.at(reflect2(static_cast<std::int64_t>(x) + dx, bayer.width()),
                          reflect2(static_cast<std::int64_t>(y) + dy, bayer.height()));
        }
      }
      out.at(x, y) = static_cast<std::uint8_t>((acc + 4) / 9);
    }
  }
  return out;
}

Rgb888Image demosaic_bilinear(const ImageU8& bayer) {
  const std::uint32_t w = bayer.width();
  const std::uint32_t h = bayer.height();
  Rgb888Image out(w, h);

  const auto avg2 = [](int a, int b) { return (a + b + 1) / 2; };
  const auto avg4 = [](int a, int b, int c, int d) { return (a + b + c + d + 2) / 4; };

  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const auto sx = static_cast<std::int64_t>(x);
      const auto sy = static_cast<std::int64_t>(y);
      const bool even_row = (y % 2) == 0;
      const bool even_col = (x % 2) == 0;
      int r, g, b;
      if (even_row && even_col) {  // R site
        r = bayer.at(x, y);
        g = avg4(bayer.clamped(sx - 1, sy), bayer.clamped(sx + 1, sy),
                 bayer.clamped(sx, sy - 1), bayer.clamped(sx, sy + 1));
        b = avg4(bayer.clamped(sx - 1, sy - 1), bayer.clamped(sx + 1, sy - 1),
                 bayer.clamped(sx - 1, sy + 1), bayer.clamped(sx + 1, sy + 1));
      } else if (!even_row && !even_col) {  // B site
        b = bayer.at(x, y);
        g = avg4(bayer.clamped(sx - 1, sy), bayer.clamped(sx + 1, sy),
                 bayer.clamped(sx, sy - 1), bayer.clamped(sx, sy + 1));
        r = avg4(bayer.clamped(sx - 1, sy - 1), bayer.clamped(sx + 1, sy - 1),
                 bayer.clamped(sx - 1, sy + 1), bayer.clamped(sx + 1, sy + 1));
      } else {  // G site
        g = bayer.at(x, y);
        if (even_row) {  // G between R (horizontally) and B (vertically)
          r = avg2(bayer.clamped(sx - 1, sy), bayer.clamped(sx + 1, sy));
          b = avg2(bayer.clamped(sx, sy - 1), bayer.clamped(sx, sy + 1));
        } else {
          b = avg2(bayer.clamped(sx - 1, sy), bayer.clamped(sx + 1, sy));
          r = avg2(bayer.clamped(sx, sy - 1), bayer.clamped(sx, sy + 1));
        }
      }
      out.r.at(x, y) = clamp_u8(r);
      out.g.at(x, y) = clamp_u8(g);
      out.b.at(x, y) = clamp_u8(b);
    }
  }
  return out;
}

Yuv422Image rgb_to_yuv422(const Rgb888Image& rgb) {
  const std::uint32_t w = rgb.width();
  const std::uint32_t h = rgb.height();
  Yuv422Image out(w, h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const int r = rgb.r.at(x, y), g = rgb.g.at(x, y), b = rgb.b.at(x, y);
      out.y.at(x, y) = clamp_u8(((66 * r + 129 * g + 25 * b + 128) >> 8) + 16);
    }
    for (std::uint32_t cx = 0; cx < w / 2; ++cx) {
      // Average the chroma of the two covered pixels.
      int ru = 0, gu = 0, bu = 0;
      for (std::uint32_t k = 0; k < 2; ++k) {
        ru += rgb.r.at(cx * 2 + k, y);
        gu += rgb.g.at(cx * 2 + k, y);
        bu += rgb.b.at(cx * 2 + k, y);
      }
      ru /= 2;
      gu /= 2;
      bu /= 2;
      out.u.at(cx, y) = clamp_u8(((-38 * ru - 74 * gu + 112 * bu + 128) >> 8) + 128);
      out.v.at(cx, y) = clamp_u8(((112 * ru - 94 * gu - 18 * bu + 128) >> 8) + 128);
    }
  }
  return out;
}

Rgb888Image yuv422_to_rgb(const Yuv422Image& yuv) {
  const std::uint32_t w = yuv.width();
  const std::uint32_t h = yuv.height();
  Rgb888Image out(w, h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const int c = 298 * (yuv.y.at(x, y) - 16);
      const int d = yuv.u.at(std::min(x / 2, yuv.u.width() - 1), y) - 128;
      const int e = yuv.v.at(std::min(x / 2, yuv.v.width() - 1), y) - 128;
      out.r.at(x, y) = clamp_u8((c + 409 * e + 128) >> 8);
      out.g.at(x, y) = clamp_u8((c - 100 * d - 208 * e + 128) >> 8);
      out.b.at(x, y) = clamp_u8((c + 516 * d + 128) >> 8);
    }
  }
  return out;
}

Yuv420Image yuv422_to_yuv420(const Yuv422Image& yuv) {
  const std::uint32_t w = yuv.width();
  const std::uint32_t h = yuv.height();
  Yuv420Image out(w, h);
  out.y = yuv.y;
  for (std::uint32_t cy = 0; cy < h / 2; ++cy) {
    for (std::uint32_t cx = 0; cx < yuv.u.width(); ++cx) {
      out.u.at(cx, cy) = static_cast<std::uint8_t>(
          (yuv.u.at(cx, cy * 2) + yuv.u.at(cx, cy * 2 + 1) + 1) / 2);
      out.v.at(cx, cy) = static_cast<std::uint8_t>(
          (yuv.v.at(cx, cy * 2) + yuv.v.at(cx, cy * 2 + 1) + 1) / 2);
    }
  }
  return out;
}

namespace {

/// Sum of absolute differences between `cur` and `prev` shifted by (dx, dy),
/// evaluated on a subsampled grid for speed.
std::uint64_t shifted_sad(const ImageU8& prev, const ImageU8& cur, int dx, int dy,
                          std::uint32_t step) {
  std::uint64_t acc = 0;
  for (std::uint32_t y = 0; y < cur.height(); y += step) {
    for (std::uint32_t x = 0; x < cur.width(); x += step) {
      const int a = cur.at(x, y);
      const int b = prev.clamped(static_cast<std::int64_t>(x) + dx,
                                 static_cast<std::int64_t>(y) + dy);
      acc += static_cast<std::uint64_t>(std::abs(a - b));
    }
  }
  return acc;
}

ImageU8 downsample4(const ImageU8& src) {
  ImageU8 out(std::max(1u, src.width() / 4), std::max(1u, src.height() / 4));
  for (std::uint32_t y = 0; y < out.height(); ++y) {
    for (std::uint32_t x = 0; x < out.width(); ++x) {
      int acc = 0;
      for (std::uint32_t dy = 0; dy < 4; ++dy) {
        for (std::uint32_t dx = 0; dx < 4; ++dx) {
          acc += src.clamped(static_cast<std::int64_t>(x) * 4 + dx,
                             static_cast<std::int64_t>(y) * 4 + dy);
        }
      }
      out.at(x, y) = static_cast<std::uint8_t>(acc / 16);
    }
  }
  return out;
}

}  // namespace

MotionVector estimate_global_motion(const ImageU8& prev, const ImageU8& cur,
                                    int range) {
  assert(prev.width() == cur.width() && prev.height() == cur.height());
  // Coarse: full search at quarter resolution.
  const ImageU8 prev4 = downsample4(prev);
  const ImageU8 cur4 = downsample4(cur);
  const int coarse_range = std::max(1, range / 4 + 1);
  MotionVector best{0, 0};
  std::uint64_t best_sad = std::numeric_limits<std::uint64_t>::max();
  for (int dy = -coarse_range; dy <= coarse_range; ++dy) {
    for (int dx = -coarse_range; dx <= coarse_range; ++dx) {
      const std::uint64_t sad = shifted_sad(prev4, cur4, dx, dy, 2);
      if (sad < best_sad) {
        best_sad = sad;
        best = MotionVector{dx, dy};
      }
    }
  }
  // Refine: +/-3 at full resolution around the scaled coarse vector.
  MotionVector refined{best.dx * 4, best.dy * 4};
  best_sad = std::numeric_limits<std::uint64_t>::max();
  MotionVector out = refined;
  for (int dy = refined.dy - 3; dy <= refined.dy + 3; ++dy) {
    for (int dx = refined.dx - 3; dx <= refined.dx + 3; ++dx) {
      if (std::abs(dx) > range || std::abs(dy) > range) continue;
      const std::uint64_t sad = shifted_sad(prev, cur, dx, dy, 4);
      if (sad < best_sad) {
        best_sad = sad;
        out = MotionVector{dx, dy};
      }
    }
  }
  return out;
}

Yuv422Image crop(const Yuv422Image& src, int x0, int y0, std::uint32_t w,
                 std::uint32_t h) {
  assert(w <= src.width() && h <= src.height());
  // Clamp the window into the source; keep chroma alignment (even x).
  const int max_x = static_cast<int>(src.width() - w);
  const int max_y = static_cast<int>(src.height() - h);
  const std::uint32_t cx0 =
      static_cast<std::uint32_t>(std::clamp(x0, 0, max_x)) & ~1u;
  const std::uint32_t cy0 = static_cast<std::uint32_t>(std::clamp(y0, 0, max_y));

  Yuv422Image out(w, h);
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      out.y.at(x, y) = src.y.at(cx0 + x, cy0 + y);
    }
    for (std::uint32_t cx = 0; cx < w / 2; ++cx) {
      out.u.at(cx, y) = src.u.at(cx0 / 2 + cx, cy0 + y);
      out.v.at(cx, y) = src.v.at(cx0 / 2 + cx, cy0 + y);
    }
  }
  return out;
}

ImageU8 scale_bilinear(const ImageU8& src, std::uint32_t w, std::uint32_t h) {
  assert(w > 0 && h > 0 && !src.empty());
  ImageU8 out(w, h);
  const double sx = static_cast<double>(src.width()) / w;
  const double sy = static_cast<double>(src.height()) / h;
  for (std::uint32_t y = 0; y < h; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const auto y0 = static_cast<std::int64_t>(std::floor(fy));
    const double wy = fy - static_cast<double>(y0);
    for (std::uint32_t x = 0; x < w; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const auto x0 = static_cast<std::int64_t>(std::floor(fx));
      const double wx = fx - static_cast<double>(x0);
      const double v = (1 - wy) * ((1 - wx) * src.clamped(x0, y0) +
                                   wx * src.clamped(x0 + 1, y0)) +
                       wy * ((1 - wx) * src.clamped(x0, y0 + 1) +
                             wx * src.clamped(x0 + 1, y0 + 1));
      out.at(x, y) = clamp_u8(static_cast<int>(v + 0.5));
    }
  }
  return out;
}

Yuv422Image scale_bilinear(const Yuv422Image& src, std::uint32_t w,
                           std::uint32_t h) {
  Yuv422Image out;
  out.y = scale_bilinear(src.y, w, h);
  out.u = scale_bilinear(src.u, w / 2, h);
  out.v = scale_bilinear(src.v, w / 2, h);
  return out;
}

}  // namespace mcm::pixel
