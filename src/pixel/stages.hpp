// Functional implementations of the Fig. 1 image-processing stages:
// noise filtering, Bayer demosaic + YUV conversion, global-motion video
// stabilization, digital zoom / scaling, and display color conversion.
// These run on real pixels; tests verify algorithmic behaviour, and the
// functional-pipeline bench connects their buffer traffic back to Table I.
#pragma once

#include <cstdint>

#include "pixel/image.hpp"

namespace mcm::pixel {

/// 3x3 box filter ("Preprocess (e.g. noise filter)"), Bayer-aware: averages
/// only same-color sites (stride-2 neighbors) so the mosaic is preserved.
[[nodiscard]] ImageU8 denoise_box3(const ImageU8& bayer);

/// Bilinear RGGB demosaic ("Bayer to YUV", first half).
[[nodiscard]] Rgb888Image demosaic_bilinear(const ImageU8& bayer);

/// BT.601 RGB -> YUV 4:2:2 ("Bayer to YUV", second half).
[[nodiscard]] Yuv422Image rgb_to_yuv422(const Rgb888Image& rgb);

/// YUV 4:2:2 -> RGB888 for scan-out.
[[nodiscard]] Rgb888Image yuv422_to_rgb(const Yuv422Image& yuv);

/// 4:2:2 -> 4:2:0 chroma downsample (encoder input domain).
[[nodiscard]] Yuv420Image yuv422_to_yuv420(const Yuv422Image& yuv);

struct MotionVector {
  int dx = 0;
  int dy = 0;
  friend bool operator==(const MotionVector&, const MotionVector&) = default;
};

/// Global-motion estimate between two luma frames (video stabilization):
/// coarse full search on 4x-downsampled planes, refined at full resolution.
[[nodiscard]] MotionVector estimate_global_motion(const ImageU8& prev,
                                                  const ImageU8& cur, int range);

/// Crop a window (stabilization output: bordered frame -> coded frame).
/// The window is clamped to the source bounds.
[[nodiscard]] Yuv422Image crop(const Yuv422Image& src, int x0, int y0,
                               std::uint32_t w, std::uint32_t h);

/// Bilinear resize ("Post proc & digizoom" and "Scaling to display").
[[nodiscard]] ImageU8 scale_bilinear(const ImageU8& src, std::uint32_t w,
                                     std::uint32_t h);
[[nodiscard]] Yuv422Image scale_bilinear(const Yuv422Image& src, std::uint32_t w,
                                         std::uint32_t h);

}  // namespace mcm::pixel
