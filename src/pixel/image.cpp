#include "pixel/image.hpp"

#include <cassert>
#include <cmath>

namespace mcm::pixel {

double plane_mse(const ImageU8& a, const ImageU8& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  const auto& da = a.data();
  const auto& db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - static_cast<double>(db[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(da.size());
}

double plane_psnr(const ImageU8& a, const ImageU8& b) {
  const double mse = plane_mse(a, b);
  if (mse <= 1e-12) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace mcm::pixel
