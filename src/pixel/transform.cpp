#include "pixel/transform.hpp"

#include <cmath>

namespace mcm::pixel {
namespace {

// One-dimensional order-4 Hadamard butterfly.
void hadamard4_1d(const int in[4], int out[4]) {
  const int a = in[0] + in[1];
  const int b = in[0] - in[1];
  const int c = in[2] + in[3];
  const int d = in[2] - in[3];
  out[0] = a + c;
  out[1] = b + d;
  out[2] = a - c;
  out[3] = b - d;
}

void transform2d(const int in[16], int out[16]) {
  int tmp[16];
  for (int r = 0; r < 4; ++r) hadamard4_1d(in + 4 * r, tmp + 4 * r);
  for (int c = 0; c < 4; ++c) {
    int col[4], res[4];
    for (int r = 0; r < 4; ++r) col[r] = tmp[4 * r + c];
    hadamard4_1d(col, res);
    for (int r = 0; r < 4; ++r) out[4 * r + c] = res[r];
  }
}

}  // namespace

void hadamard4_forward(const int in[16], int out[16]) { transform2d(in, out); }

void hadamard4_inverse(const int in[16], int out[16]) {
  int tmp[16];
  transform2d(in, tmp);
  for (int i = 0; i < 16; ++i) {
    // Symmetric rounding to nearest for exactness on x16 multiples.
    tmp[i] = tmp[i] >= 0 ? (tmp[i] + 8) / 16 : -((-tmp[i] + 8) / 16);
    out[i] = tmp[i];
  }
}

std::int32_t qstep_q8(int qp) {
  const double step = std::pow(2.0, (qp - 4) / 6.0);
  return static_cast<std::int32_t>(std::lround(step * 256.0));
}

std::uint32_t golomb_bits_unsigned(std::uint32_t v) {
  std::uint32_t bits = 1;
  std::uint32_t k = v + 1;
  while (k > 1) {
    bits += 2;
    k >>= 1;
  }
  return bits;
}

}  // namespace mcm::pixel
