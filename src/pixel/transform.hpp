// 4x4 integer transform + quantization for the toy encoder: the 4x4
// Hadamard transform (H.264 uses it for DC coefficients; we use it as the
// core transform too - orthogonal up to a factor 16, so the forward/inverse
// pair is exact in integers) with an H.264-style QP-to-stepsize mapping
// (doubles every 6 QP) and exp-Golomb bit-length accounting.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace mcm::pixel {

/// out = H * in * H^T with H the order-4 Hadamard matrix (values x16).
void hadamard4_forward(const int in[16], int out[16]);

/// Exact inverse of hadamard4_forward: out = H * in * H^T / 16.
void hadamard4_inverse(const int in[16], int out[16]);

/// H.264-style quantizer step size in Q8 fixed point: doubles every 6 QP,
/// qstep(4) = 1.0.
[[nodiscard]] std::int32_t qstep_q8(int qp);

/// Quantize a (x16-scaled) transform coefficient.
[[nodiscard]] inline int quantize(int coef, std::int32_t step_q8) {
  const std::int64_t denom = static_cast<std::int64_t>(step_q8) * 16;
  const std::int64_t num = static_cast<std::int64_t>(coef) * 256;
  return static_cast<int>(num >= 0 ? (num + denom / 2) / denom
                                   : -((-num + denom / 2) / denom));
}

/// Reconstruct the (x16-scaled) coefficient from its quantized level.
[[nodiscard]] inline int dequantize(int level, std::int32_t step_q8) {
  return static_cast<int>((static_cast<std::int64_t>(level) * step_q8 * 16) / 256);
}

/// Bits to code an unsigned value with exp-Golomb (ue(v)).
[[nodiscard]] std::uint32_t golomb_bits_unsigned(std::uint32_t v);

/// Bits to code a signed value with exp-Golomb (se(v)).
[[nodiscard]] inline std::uint32_t golomb_bits_signed(int v) {
  const std::uint32_t mapped =
      v > 0 ? static_cast<std::uint32_t>(2 * v - 1)
            : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(v));
  return golomb_bits_unsigned(mapped);
}

}  // namespace mcm::pixel
