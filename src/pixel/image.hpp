// Planar image containers for the functional pixel pipeline. Single-channel
// images with explicit geometry plus the packed-plane structs the Fig. 1
// stages exchange (Bayer mosaic, YUV 4:2:2 / 4:2:0, planar RGB888).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace mcm::pixel {

template <typename T>
class Image {
 public:
  Image() = default;
  Image(std::uint32_t width, std::uint32_t height, T fill = T{})
      : width_(width), height_(height), data_(static_cast<std::size_t>(width) * height, fill) {}

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t size_bytes() const { return data_.size() * sizeof(T); }

  [[nodiscard]] T& at(std::uint32_t x, std::uint32_t y) {
    assert(x < width_ && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const T& at(std::uint32_t x, std::uint32_t y) const {
    assert(x < width_ && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Clamp-to-edge access for filters.
  [[nodiscard]] T clamped(std::int64_t x, std::int64_t y) const {
    const auto cx = static_cast<std::uint32_t>(
        x < 0 ? 0 : (x >= width_ ? width_ - 1 : x));
    const auto cy = static_cast<std::uint32_t>(
        y < 0 ? 0 : (y >= height_ ? height_ - 1 : y));
    return at(cx, cy);
  }

  [[nodiscard]] const std::vector<T>& data() const { return data_; }
  [[nodiscard]] std::vector<T>& data() { return data_; }

 private:
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;

/// Planar RGB, full resolution per plane.
struct Rgb888Image {
  ImageU8 r, g, b;

  Rgb888Image() = default;
  Rgb888Image(std::uint32_t w, std::uint32_t h) : r(w, h), g(w, h), b(w, h) {}
  [[nodiscard]] std::uint32_t width() const { return r.width(); }
  [[nodiscard]] std::uint32_t height() const { return r.height(); }
};

/// YUV 4:2:2 - chroma at half horizontal resolution.
struct Yuv422Image {
  ImageU8 y, u, v;

  Yuv422Image() = default;
  Yuv422Image(std::uint32_t w, std::uint32_t h)
      : y(w, h), u(w / 2, h), v(w / 2, h) {}
  [[nodiscard]] std::uint32_t width() const { return y.width(); }
  [[nodiscard]] std::uint32_t height() const { return y.height(); }
};

/// YUV 4:2:0 - chroma at half resolution in both dimensions (encoder domain).
struct Yuv420Image {
  ImageU8 y, u, v;

  Yuv420Image() = default;
  Yuv420Image(std::uint32_t w, std::uint32_t h)
      : y(w, h), u(w / 2, h / 2), v(w / 2, h / 2) {}
  [[nodiscard]] std::uint32_t width() const { return y.width(); }
  [[nodiscard]] std::uint32_t height() const { return y.height(); }
};

[[nodiscard]] inline std::uint8_t clamp_u8(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Mean squared error between two same-sized planes.
[[nodiscard]] double plane_mse(const ImageU8& a, const ImageU8& b);

/// Luma PSNR in dB (infinity-capped at 99 dB for identical planes).
[[nodiscard]] double plane_psnr(const ImageU8& a, const ImageU8& b);

}  // namespace mcm::pixel
