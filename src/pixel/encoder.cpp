#include "pixel/encoder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "pixel/transform.hpp"

namespace mcm::pixel {
namespace {

/// Sample a plane at half-pel coordinates (x2, y2 are in half-pel units):
/// bilinear average of the 1, 2 or 4 covered integer positions.
int sample_halfpel(const ImageU8& plane, std::int64_t x2, std::int64_t y2) {
  const std::int64_t x0 = x2 >> 1;
  const std::int64_t y0 = y2 >> 1;
  const bool hx = (x2 & 1) != 0;
  const bool hy = (y2 & 1) != 0;
  if (!hx && !hy) return plane.clamped(x0, y0);
  if (hx && !hy) return (plane.clamped(x0, y0) + plane.clamped(x0 + 1, y0) + 1) / 2;
  if (!hx) return (plane.clamped(x0, y0) + plane.clamped(x0, y0 + 1) + 1) / 2;
  return (plane.clamped(x0, y0) + plane.clamped(x0 + 1, y0) +
          plane.clamped(x0, y0 + 1) + plane.clamped(x0 + 1, y0 + 1) + 2) /
         4;
}

/// SAD between a 16x16 block of `cur` at (x, y) and `ref` at a half-pel
/// offset (dx2, dy2 in half-pel units).
std::uint32_t block_sad_halfpel(const ImageU8& cur, const ImageU8& ref,
                                std::uint32_t x, std::uint32_t y, std::int64_t dx2,
                                std::int64_t dy2) {
  std::uint32_t acc = 0;
  for (std::uint32_t r = 0; r < 16; ++r) {
    for (std::uint32_t c = 0; c < 16; ++c) {
      const int a = cur.at(x + c, y + r);
      const int b = sample_halfpel(ref, 2 * (static_cast<std::int64_t>(x) + c) + dx2,
                                   2 * (static_cast<std::int64_t>(y) + r) + dy2);
      acc += static_cast<std::uint32_t>(std::abs(a - b));
    }
  }
  return acc;
}

/// Transform-code one 4x4 block of residuals in place; returns coded bits
/// and writes the reconstructed residual back into `res`.
std::uint64_t code_block4(int res[16], std::int32_t step_q8) {
  int coef[16];
  hadamard4_forward(res, coef);
  std::uint64_t bits = 1;  // coded-block flag (CBP-style)
  bool any = false;
  for (int i = 0; i < 16; ++i) {
    const int level = quantize(coef[i], step_q8);
    if (level != 0) {
      any = true;
      bits += golomb_bits_signed(level) + 1;  // value + significance
    }
    coef[i] = dequantize(level, step_q8);
  }
  if (!any) {
    // All-zero block: the flag alone; reconstruction is the prediction.
    for (int i = 0; i < 16; ++i) res[i] = 0;
    return 1;
  }
  hadamard4_inverse(coef, res);
  return bits;
}

/// Code a WxH plane region: 4x4 blocks, prediction provided per pixel by
/// `pred`, output reconstruction written via `emit`.
template <typename PredFn, typename CurFn, typename EmitFn>
std::uint64_t code_region(std::uint32_t w, std::uint32_t h, std::int32_t step_q8,
                          PredFn pred, CurFn cur, EmitFn emit) {
  std::uint64_t bits = 0;
  for (std::uint32_t by = 0; by < h; by += 4) {
    for (std::uint32_t bx = 0; bx < w; bx += 4) {
      int res[16];
      for (std::uint32_t r = 0; r < 4; ++r) {
        for (std::uint32_t c = 0; c < 4; ++c) {
          res[4 * r + c] = cur(bx + c, by + r) - pred(bx + c, by + r);
        }
      }
      bits += code_block4(res, step_q8);
      for (std::uint32_t r = 0; r < 4; ++r) {
        for (std::uint32_t c = 0; c < 4; ++c) {
          emit(bx + c, by + r, clamp_u8(pred(bx + c, by + r) + res[4 * r + c]));
        }
      }
    }
  }
  return bits;
}

/// Intra predictors over the reconstructed neighborhood of a WxW block at
/// (bx, by) in `plane`. Falls back to 128 when a needed border is missing.
struct IntraPredictor {
  const ImageU8& plane;
  std::uint32_t bx, by, size;

  [[nodiscard]] int dc() const {
    int acc = 0, n = 0;
    if (by > 0) {
      for (std::uint32_t c = 0; c < size; ++c) acc += plane.at(bx + c, by - 1), ++n;
    }
    if (bx > 0) {
      for (std::uint32_t r = 0; r < size; ++r) acc += plane.at(bx - 1, by + r), ++n;
    }
    return n > 0 ? (acc + n / 2) / n : 128;
  }
  [[nodiscard]] int vertical(std::uint32_t x) const {
    return by > 0 ? plane.at(bx + x, by - 1) : 128;
  }
  [[nodiscard]] int horizontal(std::uint32_t y) const {
    return bx > 0 ? plane.at(bx - 1, by + y) : 128;
  }
};

}  // namespace

ToyEncoder::ToyEncoder(const EncoderConfig& cfg, std::uint32_t width,
                       std::uint32_t height)
    : cfg_(cfg), width_(width), height_(height), qp_(cfg.qp) {
  assert(width % 16 == 0 && height % 16 == 0);
}

ToyEncoder::MbDecision ToyEncoder::search_macroblock(const Yuv420Image& input,
                                                     std::uint32_t mb_x,
                                                     std::uint32_t mb_y,
                                                     MemoryTracer* tracer) const {
  MbDecision best;
  best.cost = std::numeric_limits<std::uint64_t>::max();
  std::uint32_t best_sad = 0;
  const int range = cfg_.search_range;

  // Input macroblock read (16 luma rows).
  if (tracer != nullptr) {
    for (std::uint32_t r = 0; r < 16; ++r) {
      tracer->access(cfg_.input_base + (static_cast<std::uint64_t>(mb_y + r) * width_ + mb_x),
                     16, false);
    }
  }

  const auto trace_candidate = [&](std::uint32_t ref_idx, int dx, int dy) {
    if (tracer == nullptr) return;
    const std::uint64_t ref_plane = cfg_.ref_base + ref_idx * cfg_.ref_stride;
    const std::int64_t rx = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(mb_x) + dx, 0, width_ - 16);
    for (std::uint32_t r = 0; r < 16; ++r) {
      const std::int64_t ry = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(mb_y) + r + dy, 0, height_ - 1);
      tracer->access(ref_plane + static_cast<std::uint64_t>(ry) * width_ +
                         static_cast<std::uint64_t>(rx),
                     16, false);
    }
  };

  for (std::uint32_t ref_idx = 0; ref_idx < refs_.size(); ++ref_idx) {
    const ImageU8& ref_y = refs_[ref_idx].y;
    for (int dy = -range; dy <= range; ++dy) {
      for (int dx = -range; dx <= range; ++dx) {
        trace_candidate(ref_idx, dx, dy);
        const std::uint32_t sad =
            block_sad_halfpel(input.y, ref_y, mb_x, mb_y, 2 * dx, 2 * dy);
        const std::uint64_t mv_bits =
            golomb_bits_signed(dx) + golomb_bits_signed(dy) +
            golomb_bits_unsigned(ref_idx);
        const std::uint64_t cost =
            sad + static_cast<std::uint64_t>(cfg_.lambda) * mv_bits;
        if (cost < best.cost) {
          best.cost = cost;
          best.mv = MotionVector{dx, dy};
          best.ref = ref_idx;
          best_sad = sad;
        }
      }
    }
  }

  // Half-pel refinement around the integer winner.
  if (cfg_.half_pel && !refs_.empty()) {
    const ImageU8& ref_y = refs_[best.ref].y;
    const std::int64_t cx2 = 2 * best.mv.dx;
    const std::int64_t cy2 = 2 * best.mv.dy;
    std::uint32_t refined_sad = best_sad;
    std::int64_t rx2 = cx2, ry2 = cy2;
    for (std::int64_t dy2 = cy2 - 1; dy2 <= cy2 + 1; ++dy2) {
      for (std::int64_t dx2 = cx2 - 1; dx2 <= cx2 + 1; ++dx2) {
        if (dx2 == cx2 && dy2 == cy2) continue;
        trace_candidate(best.ref, static_cast<int>(dx2 / 2),
                        static_cast<int>(dy2 / 2));
        const std::uint32_t sad =
            block_sad_halfpel(input.y, ref_y, mb_x, mb_y, dx2, dy2);
        if (sad < refined_sad) {
          refined_sad = sad;
          rx2 = dx2;
          ry2 = dy2;
        }
      }
    }
    best.mv = MotionVector{static_cast<int>(rx2 >> 1), static_cast<int>(ry2 >> 1)};
    best.half_x = (rx2 & 1) != 0;
    best.half_y = (ry2 & 1) != 0;
    // Keep the cost consistent for the skip decision.
    best.cost = refined_sad + (best.cost - best_sad);
  }
  return best;
}

ToyEncoder::IntraMode ToyEncoder::choose_intra_mode(const Yuv420Image& input,
                                                    const Yuv420Image& recon,
                                                    std::uint32_t mb_x,
                                                    std::uint32_t mb_y) const {
  const IntraPredictor p{recon.y, mb_x, mb_y, 16};
  std::uint64_t sad_dc = 0, sad_v = 0, sad_h = 0;
  const int dc = p.dc();
  for (std::uint32_t r = 0; r < 16; ++r) {
    for (std::uint32_t c = 0; c < 16; ++c) {
      const int cur = input.y.at(mb_x + c, mb_y + r);
      sad_dc += static_cast<std::uint64_t>(std::abs(cur - dc));
      sad_v += static_cast<std::uint64_t>(std::abs(cur - p.vertical(c)));
      sad_h += static_cast<std::uint64_t>(std::abs(cur - p.horizontal(r)));
    }
  }
  if (sad_v < sad_dc && sad_v <= sad_h) return IntraMode::kVertical;
  if (sad_h < sad_dc && sad_h < sad_v) return IntraMode::kHorizontal;
  return IntraMode::kDc;
}

std::uint64_t ToyEncoder::code_macroblock(const Yuv420Image& input,
                                          const MbDecision& dec, IntraMode intra,
                                          std::uint32_t mb_x, std::uint32_t mb_y,
                                          Yuv420Image& recon,
                                          MemoryTracer* tracer) const {
  const std::int32_t step = qstep_q8(qp_);
  const bool inter = !refs_.empty();
  const Yuv420Image* ref = inter ? &refs_[dec.ref] : nullptr;
  std::uint64_t bits = 10;  // macroblock header estimate
  if (inter) {
    bits += golomb_bits_signed(dec.mv.dx) + golomb_bits_signed(dec.mv.dy) +
            golomb_bits_unsigned(dec.ref) + 2;  // + half-pel flags
  } else {
    bits += 3;  // intra mode
  }

  // Luma 16x16.
  const IntraPredictor luma_intra{recon.y, mb_x, mb_y, 16};
  const int luma_dc = inter ? 0 : luma_intra.dc();
  bits += code_region(
      16, 16, step,
      [&](std::uint32_t x, std::uint32_t y) -> int {
        if (inter) {
          const std::int64_t sx = 2 * (static_cast<std::int64_t>(mb_x + x) + dec.mv.dx) +
                                  (dec.half_x ? 1 : 0);
          const std::int64_t sy = 2 * (static_cast<std::int64_t>(mb_y + y) + dec.mv.dy) +
                                  (dec.half_y ? 1 : 0);
          return sample_halfpel(ref->y, sx, sy);
        }
        switch (intra) {
          case IntraMode::kVertical: return luma_intra.vertical(x);
          case IntraMode::kHorizontal: return luma_intra.horizontal(y);
          case IntraMode::kDc: return luma_dc;
        }
        return 128;
      },
      [&](std::uint32_t x, std::uint32_t y) -> int {
        return input.y.at(mb_x + x, mb_y + y);
      },
      [&](std::uint32_t x, std::uint32_t y, std::uint8_t v) {
        recon.y.at(mb_x + x, mb_y + y) = v;
      });

  // Chroma 8x8 x2 (motion vector halved; intra uses DC of chroma borders).
  const auto code_chroma = [&](const ImageU8& cur_c, const ImageU8* ref_c,
                               ImageU8& out_c) {
    const std::uint32_t cx = mb_x / 2;
    const std::uint32_t cy = mb_y / 2;
    const IntraPredictor chroma_intra{out_c, cx, cy, 8};
    const int chroma_dc = inter ? 0 : chroma_intra.dc();
    bits += code_region(
        8, 8, step,
        [&](std::uint32_t x, std::uint32_t y) -> int {
          if (!inter) return chroma_dc;
          return ref_c->clamped(
              static_cast<std::int64_t>(cx + x) + dec.mv.dx / 2,
              static_cast<std::int64_t>(cy + y) + dec.mv.dy / 2);
        },
        [&](std::uint32_t x, std::uint32_t y) -> int {
          return cur_c.at(cx + x, cy + y);
        },
        [&](std::uint32_t x, std::uint32_t y, std::uint8_t v) {
          out_c.at(cx + x, cy + y) = v;
        });
  };
  code_chroma(input.u, inter ? &ref->u : nullptr, recon.u);
  code_chroma(input.v, inter ? &ref->v : nullptr, recon.v);

  // Reconstruction write-back: 16 luma rows + 2 chroma blocks.
  if (tracer != nullptr) {
    const std::uint64_t luma_bytes = static_cast<std::uint64_t>(width_) * height_;
    for (std::uint32_t r = 0; r < 16; ++r) {
      tracer->access(cfg_.recon_base + (static_cast<std::uint64_t>(mb_y + r) * width_ + mb_x),
                     16, true);
    }
    tracer->access(cfg_.recon_base + luma_bytes +
                       (static_cast<std::uint64_t>(mb_y / 2) * (width_ / 2) + mb_x / 2),
                   64, true);
    tracer->access(cfg_.recon_base + luma_bytes + luma_bytes / 4 +
                       (static_cast<std::uint64_t>(mb_y / 2) * (width_ / 2) + mb_x / 2),
                   64, true);
  }
  return bits;
}

void ToyEncoder::update_rate_control(std::uint64_t frame_bits) {
  if (cfg_.target_bitrate_kbps == 0) return;
  const double target =
      cfg_.target_bitrate_kbps * 1000.0 / std::max(1.0, cfg_.target_fps);
  if (target <= 0.0 || frame_bits == 0) return;
  const double ratio = static_cast<double>(frame_bits) / target;
  const int delta = static_cast<int>(std::lround(3.0 * std::log2(ratio)));
  qp_ = std::clamp(qp_ + std::clamp(delta, -4, 4), cfg_.min_qp, cfg_.max_qp);
}

FrameStats ToyEncoder::encode(const Yuv420Image& input, MemoryTracer* tracer) {
  assert(input.width() == width_ && input.height() == height_);
  Yuv420Image recon(width_, height_);
  FrameStats stats;
  stats.qp_used = qp_;
  double mv_acc = 0;
  std::uint64_t mb_count = 0;

  for (std::uint32_t mb_y = 0; mb_y < height_; mb_y += 16) {
    for (std::uint32_t mb_x = 0; mb_x < width_; mb_x += 16) {
      ++mb_count;
      MbDecision dec;
      IntraMode intra = IntraMode::kDc;
      if (refs_.empty()) {
        ++stats.intra_mbs;
        intra = choose_intra_mode(input, recon, mb_x, mb_y);
      } else {
        dec = search_macroblock(input, mb_x, mb_y, tracer);
        mv_acc += (std::abs(dec.mv.dx) + std::abs(dec.mv.dy)) / 2.0;
        // Skip decision: perfectly predicted macroblocks cost one bit.
        if (dec.cost == 0) ++stats.skipped_mbs;
      }
      stats.bits += code_macroblock(input, dec, intra, mb_x, mb_y, recon, tracer);
    }
  }

  stats.psnr_y = plane_psnr(input.y, recon.y);
  stats.mean_abs_mv = mb_count > 0 ? mv_acc / static_cast<double>(mb_count) : 0.0;
  update_rate_control(stats.bits);

  refs_.push_front(std::move(recon));
  while (refs_.size() > cfg_.max_ref_frames) refs_.pop_back();
  return stats;
}

}  // namespace mcm::pixel
