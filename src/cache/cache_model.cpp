#include "cache/cache_model.hpp"

#include <stdexcept>

namespace mcm::cache {
namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

CacheModel::CacheModel(const CacheConfig& cfg) : cfg_(cfg) {
  if (!is_pow2(cfg.line_bytes)) throw std::invalid_argument("line size not power of 2");
  if (cfg.ways == 0) throw std::invalid_argument("ways must be > 0");
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  if (lines == 0 || lines % cfg.ways != 0) {
    throw std::invalid_argument("cache size / line / ways mismatch");
  }
  sets_ = static_cast<std::uint32_t>(lines / cfg.ways);
  if (!is_pow2(sets_)) throw std::invalid_argument("set count not power of 2");
  lines_.resize(lines);
}

CacheEffect CacheModel::access_line(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t line_addr = addr / cfg_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr & (sets_ - 1));
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];

  CacheEffect eff;
  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      ++stats_.hits;
      l.lru = ++tick_;
      if (is_write) l.dirty = true;
      eff.hit = true;
      return eff;
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }

  ++stats_.misses;
  if (is_write && !cfg_.write_allocate) {
    // Write-through-no-allocate: the write itself goes to memory.
    eff.writeback_addr = line_addr * cfg_.line_bytes;
    ++stats_.writebacks;
    return eff;
  }
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    eff.writeback_addr = (victim->tag * sets_ + set) * cfg_.line_bytes;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = ++tick_;
  eff.fill_addr = line_addr * cfg_.line_bytes;
  return eff;
}

std::vector<std::uint64_t> CacheModel::dirty_lines() const {
  std::vector<std::uint64_t> out;
  for (std::uint32_t set = 0; set < sets_; ++set) {
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      const Line& l = lines_[static_cast<std::size_t>(set) * cfg_.ways + w];
      if (l.valid && l.dirty) {
        out.push_back((l.tag * sets_ + set) * cfg_.line_bytes);
      }
    }
  }
  return out;
}

void CacheModel::access(std::uint64_t addr, std::uint32_t bytes, bool is_write) {
  const std::uint64_t first = addr / cfg_.line_bytes;
  const std::uint64_t last = (addr + (bytes > 0 ? bytes - 1 : 0)) / cfg_.line_bytes;
  for (std::uint64_t l = first; l <= last; ++l) {
    (void)access_line(l * cfg_.line_bytes, is_write);
  }
}

}  // namespace mcm::cache
