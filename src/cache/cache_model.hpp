// Set-associative write-back cache filter. The paper's premise (Section I)
// is that appropriate caching collapses the software encoder's raw access
// bandwidth (thousands of GB/s at 720p30 [2]) down to the GB/s-level
// execution-memory loads of Table I; this model quantifies that filter for
// the block-level encoder access pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace mcm::cache {

struct CacheConfig {
  std::uint64_t size_bytes = 512 * 1024;
  std::uint32_t ways = 8;
  std::uint32_t line_bytes = 64;
  bool write_allocate = true;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double hit_rate() const {
    return accesses > 0 ? static_cast<double>(hits) / static_cast<double>(accesses)
                        : 0.0;
  }
};

/// Result of one access: miss fill and/or dirty eviction the memory system
/// would see.
struct CacheEffect {
  bool hit = false;
  std::optional<std::uint64_t> fill_addr;       // line to fetch on miss
  std::optional<std::uint64_t> writeback_addr;  // dirty victim to write back
};

class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& cfg);

  /// Access `bytes` starting at `addr` (split across lines internally).
  /// Returns the memory-side effects of the *first* missing line; callers
  /// that need every effect should access line by line. For simplicity and
  /// determinism, multi-line accesses are processed line by line and the
  /// effects are accumulated into the stats; use access_line for the
  /// per-line effects.
  void access(std::uint64_t addr, std::uint32_t bytes, bool is_write);

  /// Access exactly one line (addr is rounded down); returns its effect.
  CacheEffect access_line(std::uint64_t addr, bool is_write);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Memory traffic implied by the misses so far, in bytes.
  [[nodiscard]] std::uint64_t miss_traffic_bytes() const {
    return (stats_.misses + stats_.writebacks) * cfg_.line_bytes;
  }

  /// Addresses of all currently cached dirty lines (for end-of-run flush
  /// accounting); does not modify the cache.
  [[nodiscard]] std::vector<std::uint64_t> dirty_lines() const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;
  };

  CacheConfig cfg_;
  std::uint32_t sets_;
  std::vector<Line> lines_;  // sets_ x ways
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace mcm::cache
