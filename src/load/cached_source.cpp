#include "load/cached_source.hpp"

namespace mcm::load {

CachedSource::CachedSource(std::unique_ptr<TrafficSource> inner,
                           const cache::CacheConfig& cfg, std::uint32_t burst_bytes,
                           bool flush_dirty_at_end)
    : inner_(std::move(inner)),
      cache_(cfg),
      burst_(burst_bytes),
      flush_dirty_(flush_dirty_at_end),
      name_("cached:" + std::string(inner_->name())) {
  refill();
}

void CachedSource::push_line(std::uint64_t line_addr, bool is_write, Time arrival) {
  const std::uint32_t line = cache_.config().line_bytes;
  for (std::uint32_t off = 0; off < line; off += burst_) {
    ctrl::Request r;
    r.addr = line_addr + off;
    r.is_write = is_write;
    r.arrival = arrival;
    pending_.push_back(r);
    emitted_bytes_ += burst_;
  }
}

void CachedSource::refill() {
  while (pending_.empty()) {
    if (inner_->done()) {
      if (flush_dirty_ && !flushed_) {
        flushed_ = true;
        for (const std::uint64_t line : cache_.dirty_lines()) {
          push_line(line, /*is_write=*/true, last_arrival_);
        }
      }
      return;
    }
    const ctrl::Request fine = inner_->head();
    inner_->advance();
    last_arrival_ = fine.arrival;
    raw_bytes_ += cache_.config().line_bytes;
    const cache::CacheEffect eff = cache_.access_line(fine.addr, fine.is_write);
    if (eff.writeback_addr) push_line(*eff.writeback_addr, true, fine.arrival);
    if (eff.fill_addr) push_line(*eff.fill_addr, false, fine.arrival);
  }
}

bool CachedSource::done() const { return pending_.empty(); }

ctrl::Request CachedSource::head() const { return pending_.front(); }

void CachedSource::advance() {
  pending_.pop_front();
  if (pending_.empty()) refill();
}

std::uint64_t CachedSource::total_bytes() const { return emitted_bytes_; }

void CachedSource::set_start(Time t) { inner_->set_start(t); }

}  // namespace mcm::load
