// Online cache filter: wraps a fine-grained traffic source (cache-line
// requests from an SMP master) and emits only the memory-side traffic - miss
// fills and dirty writebacks - as DRAM bursts. This makes the paper's
// Section II assumption ("the cache is large enough to provide hits for any
// other access") an executable component instead of a modelling premise:
// feed per-line traffic through a finite cache and see what really reaches
// the execution memory.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "cache/cache_model.hpp"
#include "load/source.hpp"

namespace mcm::load {

class CachedSource final : public TrafficSource {
 public:
  /// `inner` must emit line-granular requests (its burst size = the cache
  /// line size); the filter re-emits misses as `burst_bytes` DRAM bursts.
  /// When `flush_dirty_at_end` is set, dirty lines still cached when the
  /// inner source ends are written back (the steady-state behaviour).
  CachedSource(std::unique_ptr<TrafficSource> inner, const cache::CacheConfig& cfg,
               std::uint32_t burst_bytes = 16, bool flush_dirty_at_end = true);

  [[nodiscard]] bool done() const override;
  [[nodiscard]] ctrl::Request head() const override;
  void advance() override;
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  void set_start(Time t) override;

  [[nodiscard]] const cache::CacheStats& cache_stats() const {
    return cache_.stats();
  }
  /// Bytes the master requested (pre-filter).
  [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }

 private:
  /// Pull from the inner source until at least one memory request is pending
  /// (or the inner source is exhausted and the flush emitted).
  void refill();
  void push_line(std::uint64_t line_addr, bool is_write, Time arrival);

  std::unique_ptr<TrafficSource> inner_;
  cache::CacheModel cache_;
  std::uint32_t burst_;
  bool flush_dirty_;
  bool flushed_ = false;
  std::string name_;
  std::deque<ctrl::Request> pending_;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t emitted_bytes_ = 0;
  Time last_arrival_ = Time::zero();
};

}  // namespace mcm::load
