// Request-trace recording and replay.
//
// Text format, one request per line:
//
//     <arrival_ps> <R|W> 0x<addr-hex> [<source-id>]
//
// '#' starts a comment. Addresses are global (pre-interleaving) byte
// addresses; one line is one DRAM burst. The format is the interchange point
// for externally generated traces (e.g. from an instrumented encoder such as
// x264 run at the matching resolution) as well as for reproducing a captured
// use-case run bit-exactly. Parsing is strict: arrivals must be
// non-decreasing (equal timestamps are fine, going backwards is an ordering
// violation) and addresses must stay below 2^63 (bit 63 is the packed-stream
// write flag everywhere downstream); violations throw a line-numbered
// TraceError. The Ramulator-style and binary mcm trace formats live in
// workload/trace_format.hpp.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "load/source.hpp"

namespace mcm::load {

class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Largest representable trace address: bit 63 carries the write flag in the
/// packed stream representation (load::CachedStage), so global byte
/// addresses must stay below it in every trace format.
inline constexpr std::uint64_t kMaxTraceAddr = (std::uint64_t{1} << 63) - 1;

/// Serialize requests, one per line.
void write_trace(std::ostream& out, const std::vector<ctrl::Request>& requests);

/// Parse a trace; throws TraceError with a line number on malformed input.
[[nodiscard]] std::vector<ctrl::Request> read_trace(std::istream& in);

/// Drain a TrafficSource into a request vector (records its exact output).
[[nodiscard]] std::vector<ctrl::Request> record_source(TrafficSource& src);

/// Replays a recorded trace. Arrival times in the trace are relative; the
/// whole trace shifts by set_start(). Pacing is supported: set_pacing(d)
/// rescales the trace's relative arrivals so the last request arrives at
/// start + d (a trace with no time spread is spread uniformly by index).
class TraceReplaySource final : public TrafficSource {
 public:
  explicit TraceReplaySource(std::vector<ctrl::Request> requests,
                             std::string name = "trace");

  [[nodiscard]] bool done() const override { return pos_ >= requests_.size(); }
  [[nodiscard]] ctrl::Request head() const override;
  void advance() override { ++pos_; }
  [[nodiscard]] std::uint64_t total_bytes() const override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  void set_start(Time t) override { start_ = t; }
  void set_pacing(Time duration) override { pace_duration_ = duration; }

  [[nodiscard]] std::size_t size() const { return requests_.size(); }

 private:
  std::vector<ctrl::Request> requests_;
  std::string name_;
  std::size_t pos_ = 0;
  Time start_ = Time::zero();
  Time pace_duration_ = Time::zero();
  Time span_ = Time::zero();  // largest relative arrival in the trace
};

}  // namespace mcm::load
