#include "load/usecase_sources.hpp"

#include <cmath>

#include "load/encoder_pattern_source.hpp"
#include "load/multi_stream_source.hpp"

namespace mcm::load {
namespace {

using video::StageId;
using video::SurfaceId;

std::uint64_t bits_to_bytes(double bits) {
  return static_cast<std::uint64_t>(std::ceil(bits / 8.0));
}

/// The stage switch, parameterized over how sources are materialized: the
/// heap factory owns them in unique_ptrs, the arena factory
/// placement-constructs them in a FrameArena (reclaimed at reset()).
template <class Factory>
void build_stage_sources_impl(const video::UseCaseModel& model,
                              const video::SurfaceLayout& layout,
                              const LoadOptions& opt, Factory&& make) {
  const auto surf = [&](SurfaceId id) -> const video::Surface& {
    return layout.surface(id);
  };

  std::uint16_t stage_index = 0;
  for (const auto& stage : model.stages()) {
    const std::uint16_t sid = stage_index++;
    const std::uint64_t rd = bits_to_bytes(stage.read_bits);
    const std::uint64_t wr = bits_to_bytes(stage.write_bits);
    std::vector<StreamSpec> streams;
    const auto read_from = [&](SurfaceId s, std::uint64_t bytes) {
      streams.push_back({surf(s).base, bytes, surf(s).bytes, false, sid});
    };
    const auto write_to = [&](SurfaceId s, std::uint64_t bytes) {
      streams.push_back({surf(s).base, bytes, surf(s).bytes, true, sid});
    };

    switch (stage.id) {
      case StageId::kCameraIf:
        write_to(SurfaceId::kBayerCapture, wr);
        break;
      case StageId::kPreprocess:
        read_from(SurfaceId::kBayerCapture, rd);
        write_to(SurfaceId::kBayerClean, wr);
        break;
      case StageId::kBayerToYuv:
        read_from(SurfaceId::kBayerClean, rd);
        write_to(SurfaceId::kYuv422Full, wr);
        break;
      case StageId::kStabilization:
        read_from(SurfaceId::kYuv422Full, rd);
        write_to(SurfaceId::kYuv422Stab, wr);
        break;
      case StageId::kPostProcDigizoom:
        read_from(SurfaceId::kYuv422Stab, rd);
        write_to(SurfaceId::kYuv422Post, wr);
        break;
      case StageId::kScalingToDisplay:
        read_from(SurfaceId::kYuv422Post, rd);
        write_to(SurfaceId::kDisplayFb, wr);
        break;
      case StageId::kDisplayCtrl:
        read_from(SurfaceId::kDisplayFb, rd);  // wraps over both buffers
        break;
      case StageId::kVideoEncoder: {
        // Split the stage's read volume into reference traffic and the
        // current-frame input (the same formula UseCaseModel used).
        const auto& p = model.params();
        const double nz = static_cast<double>(model.level().resolution.pixels()) /
                          (p.digizoom * p.digizoom);
        const std::uint64_t input_rd = bits_to_bytes(16.0 * nz);
        const std::uint64_t ref_rd = rd > input_rd ? rd - input_rd : 0;
        const std::uint64_t recon_wr =
            bits_to_bytes(12.0 * static_cast<double>(model.level().resolution.pixels()));
        const std::uint64_t stream_wr = wr > recon_wr ? wr - recon_wr : 0;

        if (opt.motion_window_encoder) {
          video::EncoderAccessParams ep;
          ep.resolution = model.level().resolution;
          ep.ref_frames = model.ref_frames();
          ep.mode = video::EncoderAccessMode::kWindowLoads;
          ep.input_base = surf(SurfaceId::kYuv422Post).base;
          ep.ref_base = surf(SurfaceId::kReferenceArea).base;
          ep.ref_frame_bytes = surf(SurfaceId::kReferenceArea).bytes /
                               std::max<std::uint32_t>(1, model.ref_frames());
          ep.recon_base = surf(SurfaceId::kRecon).base;
          ep.seed = opt.seed;
          make.template create<EncoderPatternSource>(std::string(stage.name), ep,
                                                     opt.burst_bytes, sid);
          // Bitstream output still goes through a stream source.
          if (stream_wr > 0) {
            make.template create<MultiStreamSource>(
                "Video bitstream",
                std::vector<StreamSpec>{{surf(SurfaceId::kBitstream).base, stream_wr,
                                         surf(SurfaceId::kBitstream).bytes, true, sid}},
                opt.chunk_bytes, opt.burst_bytes);
          }
          continue;
        }
        streams.push_back({surf(SurfaceId::kReferenceArea).base, ref_rd,
                           surf(SurfaceId::kReferenceArea).bytes, false, sid});
        streams.push_back({surf(SurfaceId::kYuv422Post).base, input_rd,
                           surf(SurfaceId::kYuv422Post).bytes, false, sid});
        streams.push_back({surf(SurfaceId::kRecon).base, recon_wr,
                           surf(SurfaceId::kRecon).bytes, true, sid});
        streams.push_back({surf(SurfaceId::kBitstream).base, stream_wr,
                           surf(SurfaceId::kBitstream).bytes, true, sid});
        break;
      }
      case StageId::kAudioCapture:
        write_to(SurfaceId::kAudioRing, wr);
        break;
      case StageId::kMultiplex:
        read_from(SurfaceId::kBitstream, rd);
        write_to(SurfaceId::kMuxBuffer, wr);
        break;
      case StageId::kMemoryCard:
        read_from(SurfaceId::kMuxBuffer, rd);
        break;
    }
    make.template create<MultiStreamSource>(std::string(stage.name),
                                            std::move(streams), opt.chunk_bytes,
                                            opt.burst_bytes);
  }
}

struct HeapFactory {
  std::vector<std::unique_ptr<TrafficSource>>* out;
  template <class T, class... Args>
  void create(Args&&... args) {
    out->push_back(std::make_unique<T>(std::forward<Args>(args)...));
  }
};

struct ArenaFactory {
  common::FrameArena* arena;
  std::vector<TrafficSource*>* out;
  template <class T, class... Args>
  void create(Args&&... args) {
    out->push_back(arena->create<T>(std::forward<Args>(args)...));
  }
};

}  // namespace

std::vector<std::unique_ptr<TrafficSource>> build_stage_sources(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    const LoadOptions& opt) {
  std::vector<std::unique_ptr<TrafficSource>> out;
  build_stage_sources_impl(model, layout, opt, HeapFactory{&out});
  return out;
}

std::vector<TrafficSource*> build_stage_sources(const video::UseCaseModel& model,
                                                const video::SurfaceLayout& layout,
                                                const LoadOptions& opt,
                                                common::FrameArena& arena) {
  std::vector<TrafficSource*> out;
  build_stage_sources_impl(model, layout, opt, ArenaFactory{&arena, &out});
  return out;
}

}  // namespace mcm::load
