// Stage sources for the playback (decode) chain, mirroring
// build_stage_sources for the recording use case: one MultiStreamSource per
// PlaybackModel stage, volumes matched to the model, buffers laid out in the
// global address space.
#pragma once

#include <memory>
#include <vector>

#include "load/source.hpp"
#include "video/playback.hpp"

namespace mcm::load {

struct PlaybackLoadOptions {
  std::uint32_t chunk_bytes = 64;
  std::uint32_t burst_bytes = 16;
  std::uint32_t decoder_ref_frames = 4;  // DPB pictures motion comp reads from
};

[[nodiscard]] std::vector<std::unique_ptr<TrafficSource>> build_playback_sources(
    const video::PlaybackModel& model, const PlaybackLoadOptions& opt = {});

}  // namespace mcm::load
