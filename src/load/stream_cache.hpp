// Workload stream cache: the per-frame request stream of a use-case format
// is a pure function of (UseCaseParams, surface alignment, LoadOptions) —
// addresses and ordering are channel-count and frequency invariant because
// surfaces are aligned to a whole interleave stripe and requests in the
// paper's state-machine mode all arrive at the stage start. Generating it
// through the load models costs a large share of a grid point's wall clock,
// so the cache enumerates each format once and replays the flat arrays into
// every grid point that shares it (all Fig. 3 frequency points, every
// channel count of a Fig. 4 row).
//
// A cached request packs (global byte address | is_write) into one word;
// stage name / source id / ordering are preserved so the frame simulator
// can reproduce its bookkeeping exactly. Disable with MCM_STREAM_CACHE=off
// (every run then enumerates the load models directly, same results).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "load/usecase_sources.hpp"
#include "video/surfaces.hpp"
#include "video/usecase.hpp"

namespace mcm::load {

struct CachedStage {
  std::string name;
  std::uint16_t source_id = 0xffff;  // 0xffff = stage emitted no requests
  std::vector<std::uint64_t> reqs;   // addr | (is_write << 63), stream order

  static constexpr std::uint64_t kWriteBit = std::uint64_t{1} << 63;
  [[nodiscard]] static std::uint64_t pack(std::uint64_t addr, bool is_write) {
    return addr | (is_write ? kWriteBit : 0);
  }
  [[nodiscard]] static std::uint64_t addr_of(std::uint64_t packed) {
    return packed & (kWriteBit - 1);
  }
  [[nodiscard]] static bool is_write_of(std::uint64_t packed) {
    return (packed & kWriteBit) != 0;
  }
};

struct CachedWorkload {
  std::vector<CachedStage> stages;  // Fig. 1 processing order
  std::uint32_t burst_bytes = 0;
  std::uint64_t total_requests = 0;
  // Cache key this workload was memoized under; empty when the workload was
  // generated uncached (MCM_STREAM_CACHE=off or direct generate() calls).
  // Chunk metadata derives its own key from this one, so it is invalidated
  // exactly when the stream is.
  std::string key;

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return total_requests * sizeof(std::uint64_t);
  }
};

/// Per-stage chunk metadata for the epoch-batched sharded engine: the
/// channel of every position of the flat request array under a given
/// interleave (channels, granularity), plus per-channel sorted position
/// lists. Workers use pos_of to speculate over their own channels' positions
/// without touching the shared cursor; the chunk scheduler uses count_in to
/// prove no-stall horizons (occupancy + incoming <= queue depth).
struct ChunkMeta {
  std::uint32_t channels = 0;
  std::uint32_t granularity = 0;
  std::vector<std::uint8_t> chan;                  // channel of each position
  std::vector<std::vector<std::uint32_t>> pos_of;  // per channel, ascending

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return chan.size() * (sizeof(std::uint8_t) + sizeof(std::uint32_t));
  }

  /// Number of positions routed to `channel` in stream range [a, b).
  [[nodiscard]] std::uint64_t count_in(std::uint32_t channel, std::uint64_t a,
                                       std::uint64_t b) const;

  /// Route every position of `stage` under (channels, granularity).
  /// Requires channels <= 255 (the engine falls back to the per-request
  /// protocol beyond that).
  [[nodiscard]] static std::shared_ptr<const ChunkMeta> build(
      const CachedStage& stage, std::uint32_t channels,
      std::uint32_t granularity);
};

/// Resident byte counters, split by kind (streams vs chunk metadata).
struct StreamCacheStats {
  std::uint64_t stream_bytes = 0;
  std::uint64_t meta_bytes = 0;
  std::uint64_t stream_entries = 0;
  std::uint64_t meta_entries = 0;
};

class StreamCache {
 public:
  /// The process-wide cache (shared across exploration grid points).
  static StreamCache& instance();

  /// Cached enumeration of one frame's stage streams. `alignment` must be
  /// the value the SurfaceLayout was built with (it is part of the key).
  /// Honors MCM_STREAM_CACHE=off by generating without memoizing.
  std::shared_ptr<const CachedWorkload> get(const video::UseCaseModel& model,
                                            const video::SurfaceLayout& layout,
                                            std::uint64_t alignment,
                                            const LoadOptions& opt);

  /// Uncached enumeration through the real load models.
  [[nodiscard]] static std::shared_ptr<const CachedWorkload> generate(
      const video::UseCaseModel& model, const video::SurfaceLayout& layout,
      const LoadOptions& opt);

  /// Keyed memoization for non-video frontends (workload/): the cached
  /// workload for `key`, built with `build` on first use. Callers must make
  /// `key` a pure function of everything `build` depends on. Honors
  /// MCM_STREAM_CACHE=off and the byte cap like get(). The builder returns a
  /// mutable workload so the cache can stamp the key on it.
  std::shared_ptr<const CachedWorkload> get_keyed(
      const std::string& key,
      const std::function<std::shared_ptr<CachedWorkload>()>& build);

  /// Chunk metadata for one stage of `wl` under an interleave, memoized
  /// alongside the stream when the workload itself was cached (wl.key set);
  /// built fresh otherwise. Counts toward the same soft byte cap.
  std::shared_ptr<const ChunkMeta> chunk_meta(const CachedWorkload& wl,
                                              std::size_t stage_index,
                                              std::uint32_t channels,
                                              std::uint32_t granularity);

  /// False when MCM_STREAM_CACHE is "off" or "0" (checked per call so tests
  /// can toggle it).
  [[nodiscard]] static bool enabled();

  /// Drop every cached workload (tests).
  void clear();

  [[nodiscard]] std::uint64_t cached_bytes();
  [[nodiscard]] StreamCacheStats stats();

 private:
  /// Retain `wl` under `key` if the soft cap allows; warns once per key when
  /// it does not. Caller holds mutex_.
  void try_retain_locked(const std::string& key,
                         const std::shared_ptr<const CachedWorkload>& wl);
  void warn_capped_locked(const std::string& key, std::uint64_t bytes);

  // Workloads are immutable once built; the mutex only guards the maps.
  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const CachedWorkload>> map_;
  std::unordered_map<std::string, std::shared_ptr<const ChunkMeta>> meta_map_;
  std::unordered_set<std::string> capped_warned_;
  std::uint64_t bytes_ = 0;
  std::uint64_t meta_bytes_ = 0;
};

}  // namespace mcm::load
