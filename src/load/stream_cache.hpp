// Workload stream cache: the per-frame request stream of a use-case format
// is a pure function of (UseCaseParams, surface alignment, LoadOptions) —
// addresses and ordering are channel-count and frequency invariant because
// surfaces are aligned to a whole interleave stripe and requests in the
// paper's state-machine mode all arrive at the stage start. Generating it
// through the load models costs a large share of a grid point's wall clock,
// so the cache enumerates each format once and replays the flat arrays into
// every grid point that shares it (all Fig. 3 frequency points, every
// channel count of a Fig. 4 row).
//
// A cached request packs (global byte address | is_write) into one word;
// stage name / source id / ordering are preserved so the frame simulator
// can reproduce its bookkeeping exactly. Disable with MCM_STREAM_CACHE=off
// (every run then enumerates the load models directly, same results).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "load/usecase_sources.hpp"
#include "video/surfaces.hpp"
#include "video/usecase.hpp"

namespace mcm::load {

struct CachedStage {
  std::string name;
  std::uint16_t source_id = 0xffff;  // 0xffff = stage emitted no requests
  std::vector<std::uint64_t> reqs;   // addr | (is_write << 63), stream order

  static constexpr std::uint64_t kWriteBit = std::uint64_t{1} << 63;
  [[nodiscard]] static std::uint64_t pack(std::uint64_t addr, bool is_write) {
    return addr | (is_write ? kWriteBit : 0);
  }
  [[nodiscard]] static std::uint64_t addr_of(std::uint64_t packed) {
    return packed & (kWriteBit - 1);
  }
  [[nodiscard]] static bool is_write_of(std::uint64_t packed) {
    return (packed & kWriteBit) != 0;
  }
};

struct CachedWorkload {
  std::vector<CachedStage> stages;  // Fig. 1 processing order
  std::uint32_t burst_bytes = 0;
  std::uint64_t total_requests = 0;

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return total_requests * sizeof(std::uint64_t);
  }
};

class StreamCache {
 public:
  /// The process-wide cache (shared across exploration grid points).
  static StreamCache& instance();

  /// Cached enumeration of one frame's stage streams. `alignment` must be
  /// the value the SurfaceLayout was built with (it is part of the key).
  /// Honors MCM_STREAM_CACHE=off by generating without memoizing.
  std::shared_ptr<const CachedWorkload> get(const video::UseCaseModel& model,
                                            const video::SurfaceLayout& layout,
                                            std::uint64_t alignment,
                                            const LoadOptions& opt);

  /// Uncached enumeration through the real load models.
  [[nodiscard]] static std::shared_ptr<const CachedWorkload> generate(
      const video::UseCaseModel& model, const video::SurfaceLayout& layout,
      const LoadOptions& opt);

  /// Keyed memoization for non-video frontends (workload/): the cached
  /// workload for `key`, built with `build` on first use. Callers must make
  /// `key` a pure function of everything `build` depends on. Honors
  /// MCM_STREAM_CACHE=off and the byte cap like get().
  std::shared_ptr<const CachedWorkload> get_keyed(
      const std::string& key,
      const std::function<std::shared_ptr<const CachedWorkload>()>& build);

  /// False when MCM_STREAM_CACHE is "off" or "0" (checked per call so tests
  /// can toggle it).
  [[nodiscard]] static bool enabled();

  /// Drop every cached workload (tests).
  void clear();

  [[nodiscard]] std::uint64_t cached_bytes();

 private:
  // Workloads are immutable once built; the mutex only guards the map.
  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const CachedWorkload>> map_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mcm::load
