#include "load/multi_stream_source.hpp"

#include <cassert>
#include <stdexcept>

namespace mcm::load {
namespace {

std::uint64_t round_up(std::uint64_t v, std::uint64_t a) { return (v + a - 1) / a * a; }

}  // namespace

MultiStreamSource::MultiStreamSource(std::string name, std::vector<StreamSpec> streams,
                                     std::uint32_t chunk_bytes,
                                     std::uint32_t burst_bytes)
    : name_(std::move(name)), chunk_(chunk_bytes), burst_(burst_bytes) {
  if (burst_ == 0 || chunk_ == 0) throw std::invalid_argument("zero granularity");
  chunk_ = static_cast<std::uint32_t>(round_up(chunk_, burst_));
  streams_.reserve(streams.size());
  for (auto& s : streams) {
    if (s.bytes == 0) continue;
    s.bytes = round_up(s.bytes, burst_);
    if (s.window == 0) s.window = s.bytes;
    s.window = round_up(s.window, burst_);
    total_ += s.bytes;
    streams_.push_back(StreamState{s, 0});
  }
  remaining_ = total_;
  if (remaining_ > 0) select_stream();
}

void MultiStreamSource::select_stream() {
  // Pick the stream with the lowest progress fraction so interleaving stays
  // proportional to each stream's volume.
  double best_frac = 2.0;
  std::size_t best = streams_.size();
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& st = streams_[i];
    if (st.cursor >= st.spec.bytes) continue;
    const double frac =
        static_cast<double>(st.cursor) / static_cast<double>(st.spec.bytes);
    if (frac < best_frac) {
      best_frac = frac;
      best = i;
    }
  }
  assert(best < streams_.size());
  current_ = best;
  const auto& st = streams_[current_];
  chunk_left_ = std::min<std::uint64_t>(chunk_, st.spec.bytes - st.cursor);
}

ctrl::Request MultiStreamSource::head() const {
  assert(!done());
  const auto& st = streams_[current_];
  ctrl::Request r;
  r.addr = st.spec.base + st.cursor % st.spec.window;
  r.is_write = st.spec.is_write;
  r.source = st.spec.source_id;
  r.arrival = start_;
  if (pace_duration_ > Time::zero() && total_ > 0) {
    const double frac = static_cast<double>(issued_) / static_cast<double>(total_);
    r.arrival = start_ + Time{static_cast<std::int64_t>(
                             frac * static_cast<double>(pace_duration_.ps()))};
  }
  return r;
}

void MultiStreamSource::advance() {
  assert(!done());
  auto& st = streams_[current_];
  const std::uint64_t step = std::min<std::uint64_t>(burst_, st.spec.bytes - st.cursor);
  st.cursor += step;
  issued_ += step;
  remaining_ -= step;
  chunk_left_ = chunk_left_ > step ? chunk_left_ - step : 0;
  if (remaining_ == 0) return;
  if (chunk_left_ == 0 || st.cursor >= st.spec.bytes) select_stream();
}

}  // namespace mcm::load
