#include "load/playback_sources.hpp"

#include <cmath>

#include "load/multi_stream_source.hpp"

namespace mcm::load {
namespace {

using video::PlaybackStageId;

std::uint64_t bits_to_bytes(double bits) {
  return static_cast<std::uint64_t>(std::ceil(bits / 8.0));
}

std::uint64_t align64k(std::uint64_t v) { return (v + 0xffff) & ~0xffffull; }

}  // namespace

std::vector<std::unique_ptr<TrafficSource>> build_playback_sources(
    const video::PlaybackModel& model, const PlaybackLoadOptions& opt) {
  const auto& lv = model.level();
  const double n = static_cast<double>(lv.resolution.pixels());

  // Buffer layout (64 KiB aligned regions, contiguous).
  struct Region {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
  };
  const std::uint64_t stream_bytes = std::max<std::uint64_t>(
      64 * 1024, 2 * bits_to_bytes(lv.max_bitrate_mbps * 1e6 / lv.fps));
  const std::uint64_t frame12 = bits_to_bytes(12.0 * n);
  const std::uint64_t frame16 = bits_to_bytes(16.0 * n);
  const std::uint64_t fb_bytes =
      2 * video::frame_bytes(model.params().display, video::PixelFormat::kRgb888);

  std::uint64_t cursor = 0;
  const auto alloc = [&](std::uint64_t bytes) {
    Region r{cursor, bytes};
    cursor = align64k(cursor + bytes);
    return r;
  };
  const Region mux = alloc(stream_bytes);
  const Region video_es = alloc(stream_bytes);
  const Region audio_es = alloc(64 * 1024);
  const Region refs = alloc(static_cast<std::uint64_t>(opt.decoder_ref_frames) * frame12);
  const Region recon = alloc(frame12);
  const Region post = alloc(frame16);
  const Region fb = alloc(fb_bytes);

  std::vector<std::unique_ptr<TrafficSource>> out;
  std::uint16_t sid = 0;
  for (const auto& stage : model.stages()) {
    const std::uint16_t id = sid++;
    const std::uint64_t rd = bits_to_bytes(stage.read_bits);
    const std::uint64_t wr = bits_to_bytes(stage.write_bits);
    std::vector<StreamSpec> streams;
    switch (stage.id) {
      case PlaybackStageId::kMemoryCard:
        streams.push_back({mux.base, wr, mux.bytes, true, id});
        break;
      case PlaybackStageId::kDemultiplex:
        streams.push_back({mux.base, rd, mux.bytes, false, id});
        streams.push_back({video_es.base, wr, video_es.bytes, true, id});
        break;
      case PlaybackStageId::kVideoDecoder: {
        const std::uint64_t es_rd =
            bits_to_bytes(lv.max_bitrate_mbps * 1e6 / lv.fps);
        const std::uint64_t mc_rd = rd > es_rd ? rd - es_rd : 0;
        streams.push_back({video_es.base, es_rd, video_es.bytes, false, id});
        streams.push_back({refs.base, mc_rd, refs.bytes, false, id});
        streams.push_back({recon.base, wr, recon.bytes, true, id});
        break;
      }
      case PlaybackStageId::kAudioDecoder:
        streams.push_back({audio_es.base, rd, audio_es.bytes, false, id});
        streams.push_back({audio_es.base, wr, audio_es.bytes, true, id});
        break;
      case PlaybackStageId::kPostProcess:
        streams.push_back({recon.base, rd, recon.bytes, false, id});
        streams.push_back({post.base, wr, post.bytes, true, id});
        break;
      case PlaybackStageId::kScalingToDisplay:
        streams.push_back({post.base, rd, post.bytes, false, id});
        streams.push_back({fb.base, wr, fb.bytes, true, id});
        break;
      case PlaybackStageId::kDisplayCtrl:
        streams.push_back({fb.base, rd, fb.bytes, false, id});
        break;
    }
    out.push_back(std::make_unique<MultiStreamSource>(
        std::string(stage.name), std::move(streams), opt.chunk_bytes,
        opt.burst_bytes));
  }
  return out;
}

}  // namespace mcm::load
