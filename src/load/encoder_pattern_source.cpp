#include "load/encoder_pattern_source.hpp"

namespace mcm::load {

EncoderPatternSource::EncoderPatternSource(std::string name,
                                           const video::EncoderAccessParams& params,
                                           std::uint32_t burst_bytes,
                                           std::uint16_t source_id)
    : name_(std::move(name)),
      gen_(params),
      burst_(burst_bytes),
      source_id_(source_id) {
  // Analytic volume estimate (window clamping at frame borders makes the
  // true number slightly smaller): input MB + per-ref window + recon.
  const std::uint64_t window =
      static_cast<std::uint64_t>(16 + 2 * params.search_range) *
      (16 + 2 * params.search_range);
  estimate_bytes_ = static_cast<std::uint64_t>(gen_.macroblocks_total()) *
                    (512 + params.ref_frames * window + 16 * 16 + 128);
  fetch_next_access();
}

void EncoderPatternSource::fetch_next_access() {
  current_ = gen_.next();
  offset_ = 0;
}

ctrl::Request EncoderPatternSource::head() const {
  ctrl::Request r;
  r.addr = current_->addr + offset_;
  r.is_write = current_->is_write;
  r.arrival = start_;
  r.source = source_id_;
  return r;
}

void EncoderPatternSource::advance() {
  offset_ += burst_;
  if (offset_ >= current_->bytes) fetch_next_access();
}

}  // namespace mcm::load
