#include "load/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>

namespace mcm::load {

void write_trace(std::ostream& out, const std::vector<ctrl::Request>& requests) {
  char line[80];
  for (const auto& r : requests) {
    std::snprintf(line, sizeof line, "%" PRId64 " %c 0x%" PRIx64 " %u\n",
                  r.arrival.ps(), r.is_write ? 'W' : 'R', r.addr,
                  static_cast<unsigned>(r.source));
    out << line;
  }
}

std::vector<ctrl::Request> read_trace(std::istream& in) {
  std::vector<ctrl::Request> out;
  std::string line;
  int lineno = 0;
  long long prev_ps = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Skip blank lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    long long ps = 0;
    char rw = 0;
    unsigned long long addr = 0;
    unsigned source = 0;
    const int got =
        std::sscanf(line.c_str(), "%lld %c 0x%llx %u", &ps, &rw, &addr, &source);
    if (got < 3 || (rw != 'R' && rw != 'W')) {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": expected '<ps> <R|W> 0x<addr> [source]', got '" + line +
                       "'");
    }
    if (ps < 0) {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": negative arrival " + std::to_string(ps) + " ps");
    }
    if (!out.empty() && ps < prev_ps) {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": arrival " + std::to_string(ps) +
                       " ps goes backwards (previous request arrived at " +
                       std::to_string(prev_ps) + " ps)");
    }
    if (addr > kMaxTraceAddr) {
      char hex[32];
      std::snprintf(hex, sizeof hex, "0x%llx", addr);
      throw TraceError("trace line " + std::to_string(lineno) + ": address " +
                       hex + " out of range (bit 63 is reserved for the "
                       "packed write flag)");
    }
    prev_ps = ps;
    ctrl::Request r;
    r.arrival = Time{ps};
    r.is_write = rw == 'W';
    r.addr = addr;
    r.source = static_cast<std::uint16_t>(source);
    out.push_back(r);
  }
  return out;
}

std::vector<ctrl::Request> record_source(TrafficSource& src) {
  std::vector<ctrl::Request> out;
  while (!src.done()) {
    out.push_back(src.head());
    src.advance();
  }
  return out;
}

TraceReplaySource::TraceReplaySource(std::vector<ctrl::Request> requests,
                                     std::string name)
    : requests_(std::move(requests)), name_(std::move(name)) {
  for (const auto& r : requests_) span_ = max(span_, r.arrival);
}

ctrl::Request TraceReplaySource::head() const {
  ctrl::Request r = requests_[pos_];
  if (pace_duration_ > Time::zero()) {
    if (span_ > Time::zero()) {
      // Rescale the trace's own time axis onto [0, duration]. 128-bit
      // intermediate: arrival * duration overflows 64 bits for long traces.
      const auto scaled = static_cast<__int128>(r.arrival.ps()) *
                          pace_duration_.ps() / span_.ps();
      r.arrival = Time{static_cast<std::int64_t>(scaled)};
    } else if (requests_.size() > 1) {
      // No time spread recorded: spread uniformly by index progress.
      const auto scaled = static_cast<__int128>(pos_) * pace_duration_.ps() /
                          static_cast<std::int64_t>(requests_.size() - 1);
      r.arrival = Time{static_cast<std::int64_t>(scaled)};
    }
  }
  r.arrival += start_;
  return r;
}

std::uint64_t TraceReplaySource::total_bytes() const {
  return requests_.size() * 16ull;
}

}  // namespace mcm::load
