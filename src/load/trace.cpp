#include "load/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>

namespace mcm::load {

void write_trace(std::ostream& out, const std::vector<ctrl::Request>& requests) {
  char line[80];
  for (const auto& r : requests) {
    std::snprintf(line, sizeof line, "%" PRId64 " %c 0x%" PRIx64 " %u\n",
                  r.arrival.ps(), r.is_write ? 'W' : 'R', r.addr,
                  static_cast<unsigned>(r.source));
    out << line;
  }
}

std::vector<ctrl::Request> read_trace(std::istream& in) {
  std::vector<ctrl::Request> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Skip blank lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    long long ps = 0;
    char rw = 0;
    unsigned long long addr = 0;
    unsigned source = 0;
    const int got =
        std::sscanf(line.c_str(), "%lld %c 0x%llx %u", &ps, &rw, &addr, &source);
    if (got < 3 || (rw != 'R' && rw != 'W')) {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": expected '<ps> <R|W> 0x<addr> [source]', got '" + line +
                       "'");
    }
    ctrl::Request r;
    r.arrival = Time{ps};
    r.is_write = rw == 'W';
    r.addr = addr;
    r.source = static_cast<std::uint16_t>(source);
    out.push_back(r);
  }
  return out;
}

std::vector<ctrl::Request> record_source(TrafficSource& src) {
  std::vector<ctrl::Request> out;
  while (!src.done()) {
    out.push_back(src.head());
    src.advance();
  }
  return out;
}

TraceReplaySource::TraceReplaySource(std::vector<ctrl::Request> requests,
                                     std::string name)
    : requests_(std::move(requests)), name_(std::move(name)) {}

ctrl::Request TraceReplaySource::head() const {
  ctrl::Request r = requests_[pos_];
  r.arrival += start_;
  return r;
}

std::uint64_t TraceReplaySource::total_bytes() const {
  return requests_.size() * 16ull;
}

}  // namespace mcm::load
