// Traffic sources: pull-style generators of burst-granular memory requests.
// The load model of paper Section III is a state machine over the Fig. 1
// processing chain; each state is one TrafficSource here, producing the
// stage's read/write volumes as interleaved sequential streams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.hpp"
#include "controller/request.hpp"

namespace mcm::load {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  [[nodiscard]] virtual bool done() const = 0;
  /// Current head request. Precondition: !done().
  [[nodiscard]] virtual ctrl::Request head() const = 0;
  virtual void advance() = 0;

  [[nodiscard]] virtual std::uint64_t total_bytes() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Set the earliest issue time for everything this source produces
  /// (back-to-back mode stamps each stage with its start time).
  virtual void set_start(Time t) = 0;

  /// Spread arrivals over [start, start + duration] by progress (paced
  /// masters such as a display controller). The default implementation does
  /// not pace - it logs a one-shot warning and leaves arrivals untouched, so
  /// a scenario that asks an unsupporting source to pace is visible instead
  /// of silently bursty.
  virtual void set_pacing(Time duration);
};

}  // namespace mcm::load
