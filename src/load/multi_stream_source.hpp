// MultiStreamSource: interleaves several sequential byte streams (reads and
// writes over surface windows) proportionally at a chunk granularity. A
// stage that copies one buffer into another is two streams interleaved at
// cache-line chunks - exactly the miss pattern an SMP cache produces for a
// streaming kernel. Streams whose volume exceeds their window wrap around
// (e.g. the encoder makes six passes over the reference area).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "load/source.hpp"

namespace mcm::load {

struct StreamSpec {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;   // total volume to transfer
  std::uint64_t window = 0;  // wrap window; 0 means = bytes
  bool is_write = false;
  std::uint16_t source_id = 0;
};

class MultiStreamSource final : public TrafficSource {
 public:
  /// `chunk_bytes` is the interleave granularity between streams (default:
  /// one 64 B cache line); `burst_bytes` the request size (DRAM burst).
  MultiStreamSource(std::string name, std::vector<StreamSpec> streams,
                    std::uint32_t chunk_bytes = 64, std::uint32_t burst_bytes = 16);

  [[nodiscard]] bool done() const override { return remaining_ == 0; }
  [[nodiscard]] ctrl::Request head() const override;
  void advance() override;
  [[nodiscard]] std::uint64_t total_bytes() const override { return total_; }
  [[nodiscard]] std::string_view name() const override { return name_; }
  void set_start(Time t) override { start_ = t; }

  /// Optional pacing: spread request arrival times uniformly (by progress)
  /// over [start, start + duration] instead of all-at-start.
  void set_pacing(Time duration) override { pace_duration_ = duration; }

 private:
  struct StreamState {
    StreamSpec spec;
    std::uint64_t cursor = 0;  // bytes issued
  };

  void select_stream();

  std::string name_;
  std::vector<StreamState> streams_;
  std::uint32_t chunk_;
  std::uint32_t burst_;
  std::uint64_t total_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t remaining_ = 0;
  std::size_t current_ = 0;
  std::uint64_t chunk_left_ = 0;
  Time start_ = Time::zero();
  Time pace_duration_ = Time::zero();
};

}  // namespace mcm::load
