// Adapts the macroblock-level EncoderAccessGenerator into a TrafficSource:
// each generated access is split into DRAM-burst requests. Used by the
// address-pattern ablation (same reference-traffic volume as the Table I
// model, but motion-window locality instead of sequential passes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "load/source.hpp"
#include "video/encoder_access.hpp"

namespace mcm::load {

class EncoderPatternSource final : public TrafficSource {
 public:
  EncoderPatternSource(std::string name, const video::EncoderAccessParams& params,
                       std::uint32_t burst_bytes = 16, std::uint16_t source_id = 0);

  [[nodiscard]] bool done() const override { return !current_.has_value(); }
  [[nodiscard]] ctrl::Request head() const override;
  void advance() override;
  [[nodiscard]] std::uint64_t total_bytes() const override { return estimate_bytes_; }
  [[nodiscard]] std::string_view name() const override { return name_; }
  void set_start(Time t) override { start_ = t; }

 private:
  void fetch_next_access();

  std::string name_;
  video::EncoderAccessGenerator gen_;
  std::uint32_t burst_;
  std::optional<video::EncoderAccess> current_;
  std::uint32_t offset_ = 0;  // bytes consumed within current access
  std::uint64_t estimate_bytes_;
  std::uint16_t source_id_;
  Time start_ = Time::zero();
};

}  // namespace mcm::load
