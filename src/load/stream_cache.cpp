#include "load/stream_cache.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/prof.hpp"

namespace mcm::load {
namespace {

// Soft cap on resident cached streams: one 2160p30 format is ~10^7 requests
// (~80 MB); the cap fits every paper figure with slack while bounding a
// pathological sweep over many distinct formats. New workloads beyond the
// cap are generated but not retained.
constexpr std::uint64_t kMaxCachedBytes = std::uint64_t{2} << 30;

std::string make_key(const video::UseCaseParams& p, std::uint64_t alignment,
                     const LoadOptions& opt) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "l%d z%.17g b%.17g a%.17g e%.17g rp%d d%ux%u@%.17g al%llu "
                "c%u bu%u mw%d s%llu",
                static_cast<int>(p.level), p.digizoom, p.stabilization_border,
                p.audio_mbps, p.encoder_ref_factor,
                static_cast<int>(p.ref_policy), p.display.width,
                p.display.height, p.display_refresh_hz,
                static_cast<unsigned long long>(alignment), opt.chunk_bytes,
                opt.burst_bytes, opt.motion_window_encoder ? 1 : 0,
                static_cast<unsigned long long>(opt.seed));
  return buf;
}

}  // namespace

StreamCache& StreamCache::instance() {
  static StreamCache cache;
  return cache;
}

bool StreamCache::enabled() {
  const char* env = std::getenv("MCM_STREAM_CACHE");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "off" || v == "OFF" || v == "0");
}

std::shared_ptr<const CachedWorkload> StreamCache::generate(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    const LoadOptions& opt) {
  static const obs::prof::PhaseId kBuild =
      obs::prof::phase_id("stream_cache/build");
  obs::prof::ScopedTimer span(kBuild);
  auto wl = std::make_shared<CachedWorkload>();
  wl->burst_bytes = opt.burst_bytes;
  auto sources = build_stage_sources(model, layout, opt);
  wl->stages.reserve(sources.size());
  for (auto& src : sources) {
    CachedStage stage;
    stage.name = std::string(src->name());
    src->set_start(Time::zero());
    // One request per device burst, so the request count is known up front.
    stage.reqs.reserve(src->total_bytes() / std::max(1u, opt.burst_bytes));
    while (!src->done()) {
      const ctrl::Request r = src->head();
      src->advance();
      if (stage.reqs.empty()) stage.source_id = r.source;
      stage.reqs.push_back(CachedStage::pack(r.addr, r.is_write));
    }
    wl->total_requests += stage.reqs.size();
    wl->stages.push_back(std::move(stage));
  }
  return wl;
}

std::shared_ptr<const CachedWorkload> StreamCache::get(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    std::uint64_t alignment, const LoadOptions& opt) {
  if (!enabled()) return generate(model, layout, opt);
  static const obs::prof::PhaseId kHit = obs::prof::phase_id("stream_cache/hit");
  static const obs::prof::PhaseId kMiss =
      obs::prof::phase_id("stream_cache/miss");
  const std::string key = make_key(model.params(), alignment, opt);
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      obs::prof::count(kHit, 1);
      return it->second;
    }
  }
  obs::prof::count(kMiss, 1);
  // Generate outside the lock: two threads may race to build the same
  // format, in which case the first insert wins and the loser's copy is
  // dropped (both are identical by construction).
  auto wl = generate(model, layout, opt);
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  if (bytes_ + wl->footprint_bytes() <= kMaxCachedBytes) {
    bytes_ += wl->footprint_bytes();
    map_.emplace(key, wl);
  }
  return wl;
}

std::shared_ptr<const CachedWorkload> StreamCache::get_keyed(
    const std::string& key,
    const std::function<std::shared_ptr<const CachedWorkload>()>& build) {
  if (!enabled()) return build();
  static const obs::prof::PhaseId kHit = obs::prof::phase_id("stream_cache/hit");
  static const obs::prof::PhaseId kMiss =
      obs::prof::phase_id("stream_cache/miss");
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      obs::prof::count(kHit, 1);
      return it->second;
    }
  }
  obs::prof::count(kMiss, 1);
  auto wl = build();
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  if (bytes_ + wl->footprint_bytes() <= kMaxCachedBytes) {
    bytes_ += wl->footprint_bytes();
    map_.emplace(key, wl);
  }
  return wl;
}

void StreamCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  bytes_ = 0;
}

std::uint64_t StreamCache::cached_bytes() {
  std::lock_guard lock(mutex_);
  return bytes_;
}

}  // namespace mcm::load
