#include "load/stream_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "obs/prof.hpp"

namespace mcm::load {
namespace {

// Soft cap on resident cached streams: one 2160p30 format is ~10^7 requests
// (~80 MB); the cap fits every paper figure with slack while bounding a
// pathological sweep over many distinct formats. New workloads beyond the
// cap are generated but not retained; chunk metadata shares the same cap.
constexpr std::uint64_t kMaxCachedBytes = std::uint64_t{2} << 30;

std::string make_key(const video::UseCaseParams& p, std::uint64_t alignment,
                     const LoadOptions& opt) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "l%d z%.17g b%.17g a%.17g e%.17g rp%d d%ux%u@%.17g al%llu "
                "c%u bu%u mw%d s%llu",
                static_cast<int>(p.level), p.digizoom, p.stabilization_border,
                p.audio_mbps, p.encoder_ref_factor,
                static_cast<int>(p.ref_policy), p.display.width,
                p.display.height, p.display_refresh_hz,
                static_cast<unsigned long long>(alignment), opt.chunk_bytes,
                opt.burst_bytes, opt.motion_window_encoder ? 1 : 0,
                static_cast<unsigned long long>(opt.seed));
  return buf;
}

std::string make_meta_key(const std::string& workload_key,
                          std::size_t stage_index, std::uint32_t channels,
                          std::uint32_t granularity) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "#meta s%llu c%u g%u",
                static_cast<unsigned long long>(stage_index), channels,
                granularity);
  return workload_key + buf;
}

std::shared_ptr<CachedWorkload> build_video_workload(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    const LoadOptions& opt) {
  static const obs::prof::PhaseId kBuild =
      obs::prof::phase_id("stream_cache/build");
  obs::prof::ScopedTimer span(kBuild);
  auto wl = std::make_shared<CachedWorkload>();
  wl->burst_bytes = opt.burst_bytes;
  auto sources = build_stage_sources(model, layout, opt);
  wl->stages.reserve(sources.size());
  for (auto& src : sources) {
    CachedStage stage;
    stage.name = std::string(src->name());
    src->set_start(Time::zero());
    // One request per device burst, so the request count is known up front.
    stage.reqs.reserve(src->total_bytes() / std::max(1u, opt.burst_bytes));
    while (!src->done()) {
      const ctrl::Request r = src->head();
      src->advance();
      if (stage.reqs.empty()) stage.source_id = r.source;
      stage.reqs.push_back(CachedStage::pack(r.addr, r.is_write));
    }
    wl->total_requests += stage.reqs.size();
    wl->stages.push_back(std::move(stage));
  }
  return wl;
}

}  // namespace

std::uint64_t ChunkMeta::count_in(std::uint32_t channel, std::uint64_t a,
                                  std::uint64_t b) const {
  const std::vector<std::uint32_t>& pos = pos_of[channel];
  const auto lo = std::lower_bound(pos.begin(), pos.end(),
                                   static_cast<std::uint32_t>(a));
  const auto hi = std::lower_bound(lo, pos.end(), static_cast<std::uint32_t>(b));
  return static_cast<std::uint64_t>(hi - lo);
}

std::shared_ptr<const ChunkMeta> ChunkMeta::build(const CachedStage& stage,
                                                  std::uint32_t channels,
                                                  std::uint32_t granularity) {
  static const obs::prof::PhaseId kBuild =
      obs::prof::phase_id("stream_cache/meta_build");
  obs::prof::ScopedTimer span(kBuild);
  auto meta = std::make_shared<ChunkMeta>();
  meta->channels = channels;
  meta->granularity = granularity;
  const std::size_t n = stage.reqs.size();
  meta->chan.resize(n);
  meta->pos_of.resize(channels);
  if (channels > 0) {
    for (auto& v : meta->pos_of) v.reserve(n / channels + 1);
  }
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint64_t addr = CachedStage::addr_of(stage.reqs[p]);
    const std::uint32_t c =
        static_cast<std::uint32_t>((addr / granularity) % channels);
    meta->chan[p] = static_cast<std::uint8_t>(c);
    meta->pos_of[c].push_back(static_cast<std::uint32_t>(p));
  }
  return meta;
}

StreamCache& StreamCache::instance() {
  static StreamCache cache;
  return cache;
}

bool StreamCache::enabled() {
  const char* env = std::getenv("MCM_STREAM_CACHE");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "off" || v == "OFF" || v == "0");
}

std::shared_ptr<const CachedWorkload> StreamCache::generate(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    const LoadOptions& opt) {
  return build_video_workload(model, layout, opt);
}

void StreamCache::warn_capped_locked(const std::string& key,
                                     std::uint64_t bytes) {
  if (!capped_warned_.insert(key).second) return;
  MCM_LOG_WARN(
      "stream cache soft cap (%llu B) reached; not retaining %llu B for key "
      "'%s' (regenerated per run)",
      static_cast<unsigned long long>(kMaxCachedBytes),
      static_cast<unsigned long long>(bytes), key.c_str());
}

void StreamCache::try_retain_locked(
    const std::string& key, const std::shared_ptr<const CachedWorkload>& wl) {
  if (bytes_ + meta_bytes_ + wl->footprint_bytes() <= kMaxCachedBytes) {
    bytes_ += wl->footprint_bytes();
    map_.emplace(key, wl);
  } else {
    warn_capped_locked(key, wl->footprint_bytes());
  }
}

std::shared_ptr<const CachedWorkload> StreamCache::get(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    std::uint64_t alignment, const LoadOptions& opt) {
  if (!enabled()) return generate(model, layout, opt);
  static const obs::prof::PhaseId kHit = obs::prof::phase_id("stream_cache/hit");
  static const obs::prof::PhaseId kMiss =
      obs::prof::phase_id("stream_cache/miss");
  const std::string key = make_key(model.params(), alignment, opt);
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      obs::prof::count(kHit, 1);
      return it->second;
    }
  }
  obs::prof::count(kMiss, 1);
  // Generate outside the lock: two threads may race to build the same
  // format, in which case the first insert wins and the loser's copy is
  // dropped (both are identical by construction).
  auto wl = build_video_workload(model, layout, opt);
  wl->key = key;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  std::shared_ptr<const CachedWorkload> frozen = std::move(wl);
  try_retain_locked(key, frozen);
  return frozen;
}

std::shared_ptr<const CachedWorkload> StreamCache::get_keyed(
    const std::string& key,
    const std::function<std::shared_ptr<CachedWorkload>()>& build) {
  if (!enabled()) return build();
  static const obs::prof::PhaseId kHit = obs::prof::phase_id("stream_cache/hit");
  static const obs::prof::PhaseId kMiss =
      obs::prof::phase_id("stream_cache/miss");
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      obs::prof::count(kHit, 1);
      return it->second;
    }
  }
  obs::prof::count(kMiss, 1);
  auto wl = build();
  wl->key = key;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) return it->second;
  std::shared_ptr<const CachedWorkload> frozen = std::move(wl);
  try_retain_locked(key, frozen);
  return frozen;
}

std::shared_ptr<const ChunkMeta> StreamCache::chunk_meta(
    const CachedWorkload& wl, std::size_t stage_index, std::uint32_t channels,
    std::uint32_t granularity) {
  if (wl.key.empty() || !enabled()) {
    return ChunkMeta::build(wl.stages[stage_index], channels, granularity);
  }
  static const obs::prof::PhaseId kHit =
      obs::prof::phase_id("stream_cache/meta_hit");
  static const obs::prof::PhaseId kMiss =
      obs::prof::phase_id("stream_cache/meta_miss");
  const std::string key = make_meta_key(wl.key, stage_index, channels,
                                        granularity);
  {
    std::lock_guard lock(mutex_);
    const auto it = meta_map_.find(key);
    if (it != meta_map_.end()) {
      obs::prof::count(kHit, 1);
      return it->second;
    }
  }
  obs::prof::count(kMiss, 1);
  auto meta = ChunkMeta::build(wl.stages[stage_index], channels, granularity);
  std::lock_guard lock(mutex_);
  const auto it = meta_map_.find(key);
  if (it != meta_map_.end()) return it->second;
  if (bytes_ + meta_bytes_ + meta->footprint_bytes() <= kMaxCachedBytes) {
    meta_bytes_ += meta->footprint_bytes();
    meta_map_.emplace(key, meta);
  } else {
    warn_capped_locked(key, meta->footprint_bytes());
  }
  return meta;
}

void StreamCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  meta_map_.clear();
  capped_warned_.clear();
  bytes_ = 0;
  meta_bytes_ = 0;
}

std::uint64_t StreamCache::cached_bytes() {
  std::lock_guard lock(mutex_);
  return bytes_ + meta_bytes_;
}

StreamCacheStats StreamCache::stats() {
  std::lock_guard lock(mutex_);
  StreamCacheStats s;
  s.stream_bytes = bytes_;
  s.meta_bytes = meta_bytes_;
  s.stream_entries = map_.size();
  s.meta_entries = meta_map_.size();
  return s;
}

}  // namespace mcm::load
