// Builds the per-stage traffic sources for the Fig. 1 video recording chain:
// one TrafficSource per processing state, with volumes taken from the
// UseCaseModel (so the simulated traffic matches Table I exactly) and
// addresses from the SurfaceLayout.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "load/source.hpp"
#include "video/surfaces.hpp"
#include "video/usecase.hpp"

namespace mcm::load {

struct LoadOptions {
  /// Interleave granularity between a stage's read and write streams; 64 B
  /// models the cache-line miss/evict pattern of an SMP streaming kernel.
  std::uint32_t chunk_bytes = 64;
  std::uint32_t burst_bytes = 16;  // one request per DRAM burst

  /// Replace the sequential-pass encoder reference stream with the
  /// macroblock-level motion-window pattern (same volume, different
  /// locality) - the address-pattern ablation.
  bool motion_window_encoder = false;
  std::uint64_t seed = 1;
};

/// One frame's worth of stage sources, in Fig. 1 processing order.
[[nodiscard]] std::vector<std::unique_ptr<TrafficSource>> build_stage_sources(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    const LoadOptions& opt = {});

/// Arena variant: sources are placement-constructed in `arena` (destroyed by
/// its next reset()), so the per-frame rebuild on the legacy feed path does
/// no heap traffic once the arena has warmed up. The returned pointers are
/// valid until that reset.
[[nodiscard]] std::vector<TrafficSource*> build_stage_sources(
    const video::UseCaseModel& model, const video::SurfaceLayout& layout,
    const LoadOptions& opt, common::FrameArena& arena);

}  // namespace mcm::load
