#include "load/source.hpp"

#include <mutex>

#include "common/log.hpp"

namespace mcm::load {

void TrafficSource::set_pacing(Time duration) {
  if (duration <= Time::zero()) return;  // nothing to spread over
  // One warning per process: sweeps call set_pacing once per stage per grid
  // point, and a warning storm would bury the signal it carries.
  static std::once_flag warned;
  std::call_once(warned, [&] {
    const std::string_view n = name();
    MCM_LOG_WARN(
        "traffic source '%.*s' does not support pacing; arrivals stay at the "
        "stage start (further unsupported pacing requests are not reported)",
        static_cast<int>(n.size()), n.data());
  });
}

}  // namespace mcm::load
