#include "workload/workload.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/result_export.hpp"
#include "core/sharded_engine.hpp"
#include "load/trace.hpp"
#include "video/surfaces.hpp"
#include "video/usecase.hpp"
#include "workload/composer.hpp"
#include "workload/generators.hpp"
#include "workload/trace_format.hpp"

namespace mcm::workload {

namespace {

constexpr std::uint64_t round_up(std::uint64_t x, std::uint64_t align) {
  return (x + align - 1) / align * align;
}

/// A tenant's slot in the global address space.
struct TenantPlan {
  const TenantSpec* spec = nullptr;
  std::uint64_t base = 0;
  std::uint64_t span = 0;
  std::uint16_t source_id = 0;
};

/// Everything a tenant needs that involves I/O or the video load models,
/// materialized once per compile (the video stream is itself memoized).
struct TenantInput {
  std::shared_ptr<const load::CachedWorkload> video;  // kind == "video"
  std::vector<ctrl::Request> trace;                   // kind == "trace"
};

/// Partition the capacity: explicit sizes rounded up to `align`, the
/// remainder split equally among unsized tenants. Tenants are placed in spec
/// order from address zero.
std::vector<TenantPlan> plan_partitions(const WorkloadSpec& spec,
                                        std::uint64_t capacity,
                                        std::uint64_t align) {
  std::uint64_t used = 0;
  std::size_t unsized = 0;
  for (const auto& t : spec.tenants) {
    if (t.partition_bytes != 0) {
      used += round_up(t.partition_bytes, align);
    } else {
      ++unsized;
    }
  }
  if (used > capacity) {
    throw std::invalid_argument(
        "workload '" + spec.name + "': explicit partitions (" +
        std::to_string(used) + " B) exceed system capacity (" +
        std::to_string(capacity) + " B)");
  }
  std::uint64_t share = 0;
  if (unsized != 0) {
    share = (capacity - used) / unsized / align * align;
    if (share == 0) {
      throw std::invalid_argument("workload '" + spec.name +
                                  "': no capacity left for unsized tenants");
    }
  }

  std::vector<TenantPlan> plans;
  plans.reserve(spec.tenants.size());
  std::uint64_t base = 0;
  for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
    const auto& t = spec.tenants[i];
    TenantPlan p;
    p.spec = &t;
    p.base = base;
    p.span = t.partition_bytes != 0 ? round_up(t.partition_bytes, align) : share;
    p.source_id = static_cast<std::uint16_t>(i);
    base += p.span;
    plans.push_back(p);
  }
  return plans;
}

/// Replays a memoized packed stream (the video tenant's frame) into a
/// partition: addresses wrap modulo the partition span, requests are capped
/// at `max_requests`, and pacing spreads arrivals by index like the
/// generators do.
class PackedReplaySource final : public load::TrafficSource {
 public:
  PackedReplaySource(std::shared_ptr<const load::CachedWorkload> wl,
                     std::string name, std::uint64_t base, std::uint64_t span,
                     std::uint16_t source_id, std::uint64_t max_requests)
      : wl_(std::move(wl)), name_(std::move(name)), base_(base), span_(span),
        source_id_(source_id) {
    for (const auto& s : wl_->stages) count_ += s.reqs.size();
    if (max_requests != 0) count_ = std::min(count_, max_requests);
    skip_empty();
  }

  [[nodiscard]] bool done() const override { return emitted_ >= count_; }

  [[nodiscard]] ctrl::Request head() const override {
    const std::uint64_t packed = wl_->stages[stage_].reqs[idx_];
    ctrl::Request r;
    r.addr = base_ + load::CachedStage::addr_of(packed) % span_;
    r.is_write = load::CachedStage::is_write_of(packed);
    r.source = source_id_;
    Time arrival = Time::zero();
    if (pace_ > Time::zero() && count_ > 1) {
      arrival = Time{static_cast<std::int64_t>(
          static_cast<__int128>(emitted_) * pace_.ps() /
          static_cast<std::int64_t>(count_ - 1))};
    }
    r.arrival = start_ + arrival;
    return r;
  }

  void advance() override {
    ++emitted_;
    ++idx_;
    skip_empty();
  }

  [[nodiscard]] std::uint64_t total_bytes() const override {
    return count_ * wl_->burst_bytes;
  }
  [[nodiscard]] std::string_view name() const override { return name_; }
  void set_start(Time t) override { start_ = t; }
  void set_pacing(Time duration) override { pace_ = duration; }

 private:
  void skip_empty() {
    while (stage_ < wl_->stages.size() && idx_ >= wl_->stages[stage_].reqs.size()) {
      ++stage_;
      idx_ = 0;
    }
  }

  std::shared_ptr<const load::CachedWorkload> wl_;
  std::string name_;
  std::uint64_t base_;
  std::uint64_t span_;
  std::uint16_t source_id_;
  std::uint64_t count_ = 0;
  std::uint64_t emitted_ = 0;
  std::size_t stage_ = 0;
  std::size_t idx_ = 0;
  Time start_ = Time::zero();
  Time pace_ = Time::zero();
};

/// Materialize the per-tenant inputs (video stream enumeration, trace file
/// reads). Kept separate from source construction so tenant stats are
/// available even when the composed stream is a cache hit.
TenantInput make_input(const TenantPlan& p, std::uint32_t burst,
                       std::uint64_t align) {
  const TenantSpec& t = *p.spec;
  TenantInput in;
  if (t.kind == "video") {
    const auto level = parse_level(t.level);
    if (!level) {
      throw std::invalid_argument("tenant '" + t.name + "': unknown level '" +
                                  t.level + "'");
    }
    video::UseCaseParams params;
    params.level = *level;
    const video::UseCaseModel model(params);
    const video::SurfaceLayout layout(model, align);
    load::LoadOptions opt;
    opt.burst_bytes = burst;
    opt.chunk_bytes = std::max(opt.chunk_bytes, burst);
    in.video = load::StreamCache::instance().get(model, layout, align, opt);
  } else if (t.kind == "trace") {
    std::optional<TraceFormat> format;
    if (!t.format.empty() && t.format != "auto") {
      format = parse_trace_format(t.format);
      if (!format) {
        throw std::invalid_argument("tenant '" + t.name +
                                    "': unknown trace format '" + t.format + "'");
      }
    }
    in.trace = read_trace_file(t.path, format);
  }
  return in;
}

std::uint64_t input_requests(const TenantPlan& p, const TenantInput& in,
                             std::uint32_t burst) {
  const TenantSpec& t = *p.spec;
  if (t.kind == "video") {
    std::uint64_t total = 0;
    for (const auto& s : in.video->stages) total += s.reqs.size();
    return t.max_requests != 0 ? std::min(total, t.max_requests) : total;
  }
  if (t.kind == "trace") return in.trace.size();
  return t.bytes / burst;
}

std::unique_ptr<load::TrafficSource> build_tenant_source(const TenantPlan& p,
                                                         const TenantInput& in,
                                                         std::uint32_t burst) {
  const TenantSpec& t = *p.spec;
  std::unique_ptr<load::TrafficSource> src;
  if (t.kind == "video") {
    src = std::make_unique<PackedReplaySource>(in.video, t.name, p.base, p.span,
                                               p.source_id, t.max_requests);
  } else if (t.kind == "trace") {
    std::vector<ctrl::Request> reqs = in.trace;
    for (auto& r : reqs) {
      r.addr = p.base + r.addr % p.span;
      r.source = p.source_id;
    }
    src = std::make_unique<load::TraceReplaySource>(std::move(reqs), t.name);
  } else {
    GeneratorParams gp;
    gp.name = t.name;
    gp.source_id = p.source_id;
    gp.base = p.base;
    gp.window_bytes = std::min(t.window_bytes, p.span);
    gp.bytes = t.bytes;
    gp.burst_bytes = burst;
    gp.stride_bytes = t.stride_bytes;
    gp.write_fraction = t.write_fraction;
    gp.seed = t.seed;
    src = make_generator(t.generator, std::move(gp));
    if (src == nullptr) {
      throw std::invalid_argument("tenant '" + t.name +
                                  "': unknown generator '" + t.generator + "'");
    }
  }
  if (t.pace_ps > 0) src->set_pacing(Time{t.pace_ps});
  return src;
}

MixedTenantSource compose(const WorkloadSpec& spec,
                          const std::vector<TenantPlan>& plans,
                          const std::vector<TenantInput>& inputs,
                          std::uint32_t burst) {
  std::vector<std::unique_ptr<load::TrafficSource>> sources;
  sources.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    sources.push_back(build_tenant_source(plans[i], inputs[i], burst));
  }
  return MixedTenantSource(spec.name, std::move(sources));
}

struct CompileContext {
  multichannel::SystemConfig cfg;
  std::uint32_t burst = 0;
  std::uint64_t align = 0;
  std::vector<TenantPlan> plans;
  std::vector<TenantInput> inputs;
};

CompileContext make_context(const WorkloadSpec& spec) {
  CompileContext ctx;
  ctx.cfg = spec.system_config();
  ctx.burst = ctx.cfg.device.org.bytes_per_burst();
  // Same placement rule as the video surface allocator: partitions start on
  // a whole interleave stripe so per-channel load is channel-count invariant.
  const std::uint64_t stripe =
      static_cast<std::uint64_t>(ctx.cfg.interleave_bytes) * ctx.cfg.channels;
  ctx.align = std::max<std::uint64_t>(64 * 1024, stripe);
  // Per-channel sum, not base x channels: heterogeneous classes bind
  // different die sizes (identical for homogeneous systems).
  std::uint64_t capacity = 0;
  for (std::uint32_t c = 0; c < ctx.cfg.channels; ++c) {
    capacity += ctx.cfg.channel_device(c).org.capacity_bytes();
  }
  ctx.plans = plan_partitions(spec, capacity, ctx.align);
  ctx.inputs.reserve(ctx.plans.size());
  for (const auto& p : ctx.plans) {
    ctx.inputs.push_back(make_input(p, ctx.burst, ctx.align));
  }
  return ctx;
}

}  // namespace

CompiledWorkload compile_workload(const WorkloadSpec& spec) {
  const CompileContext ctx = make_context(spec);

  CompiledWorkload out;
  out.burst_bytes = ctx.burst;
  for (std::size_t i = 0; i < ctx.plans.size(); ++i) {
    TenantStats ts;
    ts.name = ctx.plans[i].spec->name;
    ts.kind = ctx.plans[i].spec->kind;
    ts.partition_base = ctx.plans[i].base;
    ts.partition_bytes = ctx.plans[i].span;
    ts.requests = input_requests(ctx.plans[i], ctx.inputs[i], ctx.burst);
    ts.bytes = ts.requests * ctx.burst;
    out.tenants.push_back(std::move(ts));
  }

  out.frame = load::StreamCache::instance().get_keyed(
      spec.cache_key(), [&]() -> std::shared_ptr<load::CachedWorkload> {
        MixedTenantSource composed = compose(spec, ctx.plans, ctx.inputs, ctx.burst);
        auto wl = std::make_shared<load::CachedWorkload>();
        load::CachedStage stage;
        stage.name = "mixed";
        stage.source_id = 0;
        while (!composed.done()) {
          const ctrl::Request r = composed.head();
          stage.reqs.push_back(load::CachedStage::pack(r.addr, r.is_write));
          composed.advance();
        }
        wl->total_requests = stage.reqs.size();
        wl->burst_bytes = ctx.burst;
        wl->stages.push_back(std::move(stage));
        return wl;
      });
  out.total_requests = out.frame->total_requests;
  return out;
}

WorkloadRunResult run_workload(const WorkloadSpec& spec) {
  WorkloadRunResult result;
  result.compiled = compile_workload(spec);

  multichannel::MemorySystem sys(spec.system_config());
  const std::vector<const load::CachedWorkload*> frames(
      static_cast<std::size_t>(spec.frames), result.compiled.frame.get());
  const Time period{spec.period_ps};

  const core::ShardedRunOutput out =
      spec.legacy_feed
          ? core::run_sequential_frames(sys, frames, period)
          : core::run_sharded_frames(sys, frames, period, spec.sim_threads);

  const Time window = max(out.end_time, period * spec.frames);
  sys.finalize(window);

  core::FrameSimResult& r = result.sim;
  r.frame_period = period;
  r.window = window;
  r.access_time = Time{out.access_accum.ps() / spec.frames};
  r.per_frame_access = out.per_frame_access;
  r.bytes_per_frame = out.bytes_first_frame;
  for (std::size_t i = 0; i < out.first_frame_stages.size(); ++i) {
    r.stage_results.push_back(core::StageResult{out.first_frame_stages[i].first,
                                                out.first_frame_completed[i],
                                                out.first_frame_stages[i].second});
  }
  r.meets_realtime = r.access_time <= period;
  r.meets_realtime_with_margin =
      r.access_time.seconds() <= period.seconds() * (1.0 - 0.15);
  r.achieved_bandwidth_bytes_per_s =
      r.access_time > Time::zero()
          ? static_cast<double>(r.bytes_per_frame) / r.access_time.seconds()
          : 0.0;
  r.demand_bandwidth_bytes_per_s =
      static_cast<double>(r.bytes_per_frame) / period.seconds();
  r.stats = sys.stats();
  r.power = sys.power(window);
  r.dram_power_mw = r.power.dram_mw;
  r.interface_power_mw = r.power.interface_mw;
  r.total_power_mw = r.power.total_mw;
  return result;
}

std::vector<ctrl::Request> record_workload(const WorkloadSpec& spec) {
  const CompileContext ctx = make_context(spec);
  MixedTenantSource composed = compose(spec, ctx.plans, ctx.inputs, ctx.burst);
  std::vector<ctrl::Request> out;
  while (!composed.done()) {
    out.push_back(composed.head());
    composed.advance();
  }
  return out;
}

void export_workload_report(obs::RunReport& report, const WorkloadSpec& spec,
                            const WorkloadRunResult& run) {
  auto& cfg = report.config();
  cfg["workload"] = spec.name;
  cfg["device"] = spec.device;
  cfg["channels"] = spec.channels;
  cfg["freq_mhz"] = spec.freq_mhz;
  cfg["interleave_bytes"] = spec.interleave_bytes;
  cfg["frames"] = spec.frames;
  cfg["period_ps"] = spec.period_ps;

  auto& point = report.add_point(spec.name);
  core::export_result(point, run.sim);

  auto& w = report.root()["workload"];
  w["schema"] = "mcm.workload_report/v1";
  w["burst_bytes"] = run.compiled.burst_bytes;
  w["total_requests"] = run.compiled.total_requests;
  auto& tenants = w["tenants"];
  tenants = obs::JsonValue::array();
  for (const auto& t : run.compiled.tenants) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["name"] = t.name;
    entry["kind"] = t.kind;
    entry["partition_base"] = t.partition_base;
    entry["partition_bytes"] = t.partition_bytes;
    entry["requests"] = t.requests;
    entry["bytes"] = t.bytes;
    tenants.push(std::move(entry));
  }
}

}  // namespace mcm::workload
