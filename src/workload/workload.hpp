// Workload compiler + runner: turns an `mcm.workload/v1` spec into the
// engine's memoized packed-stream form and drives it through the same
// channel-sharded execution path as the video use case.
//
// Compilation: each tenant gets a disjoint partition of the global address
// space (explicit partition_bytes, or an equal share of the remainder),
// aligned like video surfaces to a whole interleave stripe; tenant sources
// are built inside their partition and merged by (arrival, tenant index)
// into ONE mixed stage per frame. Inside the engine all requests of a stage
// arrive at the stage start, so tenant pacing shapes the *merge order* (rate
// shaping between tenants), not engine arrival times - which is exactly what
// keeps composed workloads byte-identical at any MCM_SIM_THREADS.
//
// Compiled streams memoize through load::StreamCache::get_keyed with
// WorkloadSpec::cache_key(), so sweeps over engine knobs (threads, feed)
// re-enumerate nothing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/frame_simulator.hpp"
#include "load/stream_cache.hpp"
#include "obs/run_report.hpp"
#include "workload/spec.hpp"

namespace mcm::workload {

/// Where a tenant landed and how much traffic it contributes per frame.
struct TenantStats {
  std::string name;
  std::string kind;
  std::uint64_t partition_base = 0;
  std::uint64_t partition_bytes = 0;
  std::uint64_t requests = 0;  // per frame
  std::uint64_t bytes = 0;     // per frame
};

struct CompiledWorkload {
  std::shared_ptr<const load::CachedWorkload> frame;  // one mixed stage
  std::vector<TenantStats> tenants;
  std::uint32_t burst_bytes = 0;
  std::uint64_t total_requests = 0;  // per frame
};

/// Compile the spec's tenants into the packed per-frame stream. Throws
/// std::invalid_argument when partitions don't fit the system's capacity, a
/// trace tenant's file is unreadable (load::TraceError), or a tenant is
/// malformed.
[[nodiscard]] CompiledWorkload compile_workload(const WorkloadSpec& spec);

struct WorkloadRunResult {
  core::FrameSimResult sim;
  CompiledWorkload compiled;
};

/// Compile and simulate: `frames` repetitions of the composed stream with a
/// `period_ps` cadence, through the sharded engine (or the sequential feed
/// when legacy_feed is set). Deterministic at any sim_threads setting.
[[nodiscard]] WorkloadRunResult run_workload(const WorkloadSpec& spec);

/// Enumerate the composed merged stream of one frame with its merge-order
/// arrivals - the `mcm_trace record` backend. The result round-trips through
/// every trace format (arrivals are non-decreasing by construction).
[[nodiscard]] std::vector<ctrl::Request> record_workload(const WorkloadSpec& spec);

/// Fill `report` with the standard result point (core::export_result) plus
/// the per-tenant placement/traffic breakdown under root()["workload"].
void export_workload_report(obs::RunReport& report, const WorkloadSpec& spec,
                            const WorkloadRunResult& run);

}  // namespace mcm::workload
