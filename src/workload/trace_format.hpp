// Trace interchange formats for the workload subsystem. Three formats carry
// the same request stream at different fidelities:
//
//   mcm-text   the repo's native text trace (load/trace.hpp):
//              "<arrival_ps> <R|W> 0x<addr> [<source>]" - full fidelity.
//   ramulator  the Ramulator/DRAMsim-style interchange line "0x<addr> <R|W>"
//              used by external memory simulators - no timestamps and no
//              source ids (both read back as zero).
//   binary     the compact mcm-native binary format (mcm.tracebin/v1): a
//              32-byte versioned header followed by fixed-width 24-byte
//              little-endian records, with streaming reader/writer classes
//              so multi-gigabyte traces never need to fit in memory.
//
// All readers apply the same hardening as load::read_trace: arrivals must be
// non-decreasing, addresses must stay below 2^63 (bit 63 is the packed
// write flag downstream), and malformed input throws a line-/record-numbered
// load::TraceError.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "load/trace.hpp"

namespace mcm::workload {

enum class TraceFormat : std::uint8_t { kMcmText, kRamulator, kBinary };

[[nodiscard]] std::string_view to_string(TraceFormat f);

/// Parse a format name ("mcm-text"/"text", "ramulator", "binary"/"bin").
[[nodiscard]] std::optional<TraceFormat> parse_trace_format(std::string_view name);

/// Sniff a trace file's format: the binary magic wins, then the first
/// non-comment line decides between the two text dialects (a leading
/// timestamp column = mcm-text). Throws load::TraceError when the file
/// cannot be opened or is empty.
[[nodiscard]] TraceFormat detect_trace_format(const std::string& path);

// --- Ramulator/DRAMsim-style text ("0x<addr> <R|W>") ------------------------

void write_ramulator_trace(std::ostream& out,
                           const std::vector<ctrl::Request>& requests);

/// Accepts "R"/"W" plus the common aliases RD/WR/READ/WRITE in any case;
/// addresses are hex with 0x prefix or decimal. Arrivals and sources read
/// back as zero (the format does not carry them).
[[nodiscard]] std::vector<ctrl::Request> read_ramulator_trace(std::istream& in);

// --- Binary mcm-native format (mcm.tracebin/v1) -----------------------------

/// Fixed 32-byte header, all fields little-endian:
///   bytes  0..7   magic "MCMTRCB1"
///   bytes  8..11  u32 version (1)
///   bytes 12..15  u32 record_bytes (24)
///   bytes 16..23  u64 record_count (all-ones = unknown, read until EOF)
///   bytes 24..31  u64 reserved (0)
/// Each 24-byte record:
///   bytes  0..7   u64 arrival_ps
///   bytes  8..15  u64 addr (< 2^63)
///   bytes 16..17  u16 source
///   byte  18      u8  op (0 = read, 1 = write)
///   bytes 19..23  reserved (0)
struct BinaryTraceHeader {
  static constexpr char kMagic[8] = {'M', 'C', 'M', 'T', 'R', 'C', 'B', '1'};
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kRecordBytes = 24;
  static constexpr std::uint32_t kHeaderBytes = 32;
  static constexpr std::uint64_t kCountUnknown = ~std::uint64_t{0};

  std::uint32_t version = kVersion;
  std::uint64_t record_count = kCountUnknown;
};

/// Streaming writer: emits the header up front with an unknown record count,
/// then one record per append(). finish() patches the true count into the
/// header when the underlying stream is seekable (a pipe keeps the
/// read-until-EOF marker). The destructor calls finish().
class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(std::ostream& out);
  ~BinaryTraceWriter() { finish(); }
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  /// Throws load::TraceError on an out-of-range address or an arrival that
  /// goes backwards (the binary format stays replay-ordered by build).
  void append(const ctrl::Request& r);
  void finish();

  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
  std::int64_t prev_ps_ = 0;
  bool finished_ = false;
};

/// Streaming reader: validates the header in the constructor, then yields
/// one request per next() until the declared count (or EOF when unknown).
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream& in);

  [[nodiscard]] const BinaryTraceHeader& header() const { return header_; }

  /// Next record, or nullopt at end of trace. Throws load::TraceError on a
  /// truncated record, an out-of-range address, or a backwards arrival.
  std::optional<ctrl::Request> next();

 private:
  std::istream& in_;
  BinaryTraceHeader header_;
  std::uint64_t read_ = 0;
  std::int64_t prev_ps_ = 0;
};

void write_binary_trace(std::ostream& out,
                        const std::vector<ctrl::Request>& requests);
[[nodiscard]] std::vector<ctrl::Request> read_binary_trace(std::istream& in);

// --- Format-dispatched file IO ----------------------------------------------

/// Read a whole trace file; `format` nullopt = detect_trace_format(path).
[[nodiscard]] std::vector<ctrl::Request> read_trace_file(
    const std::string& path, std::optional<TraceFormat> format = std::nullopt);

/// Write a whole trace file in the given format. Throws load::TraceError on
/// I/O failure or (binary) on range/ordering violations.
void write_trace_file(const std::string& path, TraceFormat format,
                      const std::vector<ctrl::Request>& requests);

}  // namespace mcm::workload
