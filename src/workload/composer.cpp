#include "workload/composer.hpp"

#include <utility>

namespace mcm::workload {

MixedTenantSource::MixedTenantSource(
    std::string name, std::vector<std::unique_ptr<load::TrafficSource>> tenants)
    : name_(std::move(name)), tenants_(std::move(tenants)) {
  for (const auto& t : tenants_) total_ += t->total_bytes();
}

bool MixedTenantSource::done() const {
  for (const auto& t : tenants_) {
    if (!t->done()) return false;
  }
  return true;
}

std::size_t MixedTenantSource::select() const {
  std::size_t best = tenants_.size();
  Time best_arrival = Time::zero();
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i]->done()) continue;
    const Time arrival = tenants_[i]->head().arrival;
    if (best == tenants_.size() || arrival < best_arrival) {
      best = i;
      best_arrival = arrival;
    }
  }
  return best;
}

ctrl::Request MixedTenantSource::head() const {
  return tenants_[select()]->head();
}

void MixedTenantSource::advance() {
  const std::size_t i = select();
  if (i < tenants_.size()) tenants_[i]->advance();
}

void MixedTenantSource::set_start(Time t) {
  for (auto& tenant : tenants_) tenant->set_start(t);
}

void MixedTenantSource::set_pacing(Time duration) {
  for (auto& tenant : tenants_) tenant->set_pacing(duration);
}

}  // namespace mcm::workload
