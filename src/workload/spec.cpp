#include "workload/spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mcm::workload {

namespace {

dram::DeviceSpec device_by_name(const std::string& name) {
  if (name == "next_gen_mobile_ddr") return dram::DeviceSpec::next_gen_mobile_ddr();
  if (name == "mobile_ddr_2008") return dram::DeviceSpec::mobile_ddr_2008();
  if (name == "eight_bank_future") return dram::DeviceSpec::eight_bank_future();
  if (name == "wide_io_like") return dram::DeviceSpec::wide_io_like();
  throw std::invalid_argument("unknown device spec: " + name);
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Read an optional member into `out`; absent members keep the default.
void get_uint(const obs::JsonValue& obj, std::string_view key, std::uint64_t& out) {
  if (const auto* v = obj.find(key)) out = v->as_uint(out);
}
void get_int64(const obs::JsonValue& obj, std::string_view key, std::int64_t& out) {
  if (const auto* v = obj.find(key)) out = v->as_int(out);
}
void get_string(const obs::JsonValue& obj, std::string_view key, std::string& out) {
  if (const auto* v = obj.find(key)) out = v->as_string(out);
}

bool parse_tenant(const obs::JsonValue& doc, TenantSpec& t, std::size_t index,
                  std::string* error) {
  const std::string where = "tenant " + std::to_string(index);
  if (!doc.is_object()) return fail(error, where + ": not an object");
  get_string(doc, "name", t.name);
  get_string(doc, "kind", t.kind);
  if (t.name.empty()) t.name = t.kind + std::to_string(index);
  get_uint(doc, "partition_bytes", t.partition_bytes);
  get_int64(doc, "pace_ps", t.pace_ps);
  if (t.pace_ps < 0) return fail(error, where + ": pace_ps must be >= 0");

  if (t.kind == "video") {
    get_string(doc, "level", t.level);
    get_uint(doc, "max_requests", t.max_requests);
    if (!parse_level(t.level)) {
      return fail(error, where + ": unknown H.264 level '" + t.level + "'");
    }
  } else if (t.kind == "trace") {
    get_string(doc, "path", t.path);
    get_string(doc, "format", t.format);
    if (t.path.empty()) return fail(error, where + ": trace tenant needs a path");
  } else if (t.kind == "generator") {
    get_string(doc, "generator", t.generator);
    get_uint(doc, "window_bytes", t.window_bytes);
    get_uint(doc, "bytes", t.bytes);
    get_uint(doc, "stride_bytes", t.stride_bytes);
    if (const auto* v = doc.find("write_fraction")) {
      t.write_fraction = v->as_double(t.write_fraction);
    }
    get_uint(doc, "seed", t.seed);
    if (t.generator != "sequential" && t.generator != "strided" &&
        t.generator != "pointer_chase" && t.generator != "uniform_random") {
      return fail(error, where + ": unknown generator '" + t.generator + "'");
    }
    if (t.write_fraction < 0.0 || t.write_fraction > 1.0) {
      return fail(error, where + ": write_fraction must be in [0,1]");
    }
    if (t.window_bytes == 0 || t.bytes == 0) {
      return fail(error, where + ": window_bytes and bytes must be positive");
    }
  } else {
    return fail(error, where + ": unknown kind '" + t.kind +
                           "' (expected video, trace, or generator)");
  }
  return true;
}

}  // namespace

multichannel::SystemConfig WorkloadSpec::system_config() const {
  multichannel::SystemConfig cfg;
  cfg.device = device_by_name(device);
  cfg.freq = Frequency(static_cast<double>(freq_mhz));
  cfg.channels = channels;
  cfg.interleave_bytes = interleave_bytes;
  cfg.channel_classes.reserve(channel_classes.size());
  for (const std::string& name : channel_classes) {
    const auto cls = dram::parse_device_class(name);
    if (!cls.has_value()) {
      throw std::invalid_argument("unknown device class: " + name);
    }
    cfg.channel_classes.push_back(*cls);
  }
  cfg.vault_group = vault_group;
  return cfg;
}

std::string WorkloadSpec::cache_key() const {
  std::ostringstream key;
  key << "workload|" << device << '|' << channels << '|' << freq_mhz << '|'
      << interleave_bytes << '|' << period_ps;
  // Appended only when configured so existing cache entries stay valid.
  if (!channel_classes.empty()) {
    key << "|classes";
    for (const std::string& c : channel_classes) key << ':' << c;
  }
  if (vault_group != 0) key << "|vault" << vault_group;
  for (const auto& t : tenants) {
    key << "||" << t.kind << '|' << t.name << '|' << t.partition_bytes << '|'
        << t.pace_ps;
    if (t.kind == "video") {
      key << '|' << t.level << '|' << t.max_requests;
    } else if (t.kind == "trace") {
      key << '|' << t.path << '|' << t.format;
    } else {
      key << '|' << t.generator << '|' << t.window_bytes << '|' << t.bytes
          << '|' << t.stride_bytes << '|' << t.write_fraction << '|' << t.seed;
    }
  }
  return key.str();
}

std::optional<video::H264Level> parse_level(std::string_view name) {
  for (const video::H264Level level : video::kAllLevels) {
    if (video::level_spec(level).name == name) return level;
  }
  return std::nullopt;
}

obs::JsonValue workload_to_json(const WorkloadSpec& s) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "mcm.workload/v1";
  doc["name"] = s.name;
  auto& sys = doc["system"];
  sys["device"] = s.device;
  sys["channels"] = s.channels;
  sys["freq_mhz"] = s.freq_mhz;
  sys["interleave_bytes"] = s.interleave_bytes;
  if (!s.channel_classes.empty()) {
    auto& classes = sys["channel_classes"];
    classes = obs::JsonValue::array();
    for (const std::string& c : s.channel_classes) classes.push(obs::JsonValue{c});
  }
  if (s.vault_group != 0) sys["vault_group"] = s.vault_group;
  doc["frames"] = s.frames;
  doc["period_ps"] = s.period_ps;
  if (s.sim_threads != 0) doc["sim_threads"] = s.sim_threads;
  if (s.legacy_feed) doc["legacy_feed"] = true;
  auto& tenants = doc["tenants"];
  tenants = obs::JsonValue::array();
  for (const auto& t : s.tenants) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["name"] = t.name;
    entry["kind"] = t.kind;
    if (t.partition_bytes != 0) entry["partition_bytes"] = t.partition_bytes;
    if (t.pace_ps != 0) entry["pace_ps"] = t.pace_ps;
    if (t.kind == "video") {
      entry["level"] = t.level;
      if (t.max_requests != 0) entry["max_requests"] = t.max_requests;
    } else if (t.kind == "trace") {
      entry["path"] = t.path;
      if (t.format != "auto") entry["format"] = t.format;
    } else {
      entry["generator"] = t.generator;
      entry["window_bytes"] = t.window_bytes;
      entry["bytes"] = t.bytes;
      if (t.generator == "strided") entry["stride_bytes"] = t.stride_bytes;
      if (t.write_fraction != 0.0) entry["write_fraction"] = t.write_fraction;
      entry["seed"] = t.seed;
    }
    tenants.push(std::move(entry));
  }
  return doc;
}

std::optional<WorkloadSpec> workload_from_json(const obs::JsonValue& doc,
                                               std::string* error) {
  const auto bail = [&](const std::string& message) -> std::optional<WorkloadSpec> {
    fail(error, message);
    return std::nullopt;
  };
  if (!doc.is_object()) return bail("workload document is not an object");
  const auto* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "mcm.workload/v1") {
    return bail("missing or unsupported schema (expected mcm.workload/v1)");
  }

  WorkloadSpec s;
  get_string(doc, "name", s.name);
  if (const auto* sys = doc.find("system")) {
    if (!sys->is_object()) return bail("system is not an object");
    get_string(*sys, "device", s.device);
    if (const auto* v = sys->find("channels")) {
      s.channels = static_cast<std::uint32_t>(v->as_uint(s.channels));
    }
    if (const auto* v = sys->find("freq_mhz")) {
      s.freq_mhz = static_cast<std::uint32_t>(v->as_uint(s.freq_mhz));
    }
    if (const auto* v = sys->find("interleave_bytes")) {
      s.interleave_bytes = static_cast<std::uint32_t>(v->as_uint(s.interleave_bytes));
    }
    if (const auto* classes = sys->find("channel_classes")) {
      if (!classes->is_array()) return bail("channel_classes must be an array");
      for (std::size_t i = 0; i < classes->size(); ++i) {
        const std::string name = classes->at(i)->as_string();
        if (!dram::parse_device_class(name).has_value()) {
          return bail("unknown device class: " + name);
        }
        s.channel_classes.push_back(name);
      }
    }
    if (const auto* v = sys->find("vault_group")) {
      s.vault_group = static_cast<std::uint32_t>(v->as_uint(s.vault_group));
    }
  }
  if (const auto* v = doc.find("frames")) s.frames = static_cast<int>(v->as_int(1));
  get_int64(doc, "period_ps", s.period_ps);
  if (const auto* v = doc.find("sim_threads")) {
    s.sim_threads = static_cast<unsigned>(v->as_uint(0));
  }
  if (const auto* v = doc.find("legacy_feed")) s.legacy_feed = v->as_bool();

  if (s.channels == 0) return bail("channels must be positive");
  if (!s.channel_classes.empty() && s.channel_classes.size() != s.channels) {
    return bail("channel_classes must have one entry per channel");
  }
  if (s.freq_mhz == 0) return bail("freq_mhz must be positive");
  if (s.frames < 1) return bail("frames must be >= 1");
  if (s.period_ps <= 0) return bail("period_ps must be positive");
  try {
    (void)device_by_name(s.device);
  } catch (const std::invalid_argument& e) {
    return bail(e.what());
  }

  const auto* tenants = doc.find("tenants");
  if (tenants == nullptr || !tenants->is_array() || tenants->size() == 0) {
    return bail("workload needs a non-empty tenants array");
  }
  for (std::size_t i = 0; i < tenants->size(); ++i) {
    TenantSpec t;
    if (!parse_tenant(*tenants->at(i), t, i, error)) return std::nullopt;
    s.tenants.push_back(std::move(t));
  }
  return s;
}

bool save_workload(const WorkloadSpec& s, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  workload_to_json(s).dump(out);
  out << '\n';
  return static_cast<bool>(out);
}

std::optional<WorkloadSpec> load_workload(const std::string& path,
                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open workload spec '" + path + "'");
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  const auto doc = obs::json_parse(text.str(), &parse_error);
  if (!doc) {
    fail(error, path + ": " + parse_error);
    return std::nullopt;
  }
  auto spec = workload_from_json(*doc, error);
  if (!spec) return std::nullopt;

  // Resolve tenant trace paths against the spec file's directory so a
  // committed scenario works from any working directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "" : path.substr(0, slash + 1);
  if (!dir.empty()) {
    for (auto& t : spec->tenants) {
      if (t.kind == "trace" && !t.path.empty() && t.path.front() != '/') {
        t.path = dir + t.path;
      }
    }
  }
  return spec;
}

}  // namespace mcm::workload
