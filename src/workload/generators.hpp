// Parameterized synthetic traffic generators: the workload vocabulary that
// takes the engine beyond the paper's video use case. Each generator is a
// pull-style load::TrafficSource producing one DRAM burst per request over a
// configurable address window, deterministically from its seed, so any
// composition of generators replays bit-exactly at any worker count.
//
//   sequential      streaming pass over the window (row-hit friendly)
//   strided         fixed stride between consecutive bursts (bank/row sweep)
//   pointer_chase   dependent-chain walk over a working set: a full-period
//                   LCG permutation of the window's burst slots, so every
//                   slot is visited once per lap in pseudo-random order
//   uniform_random  independent uniform draws over the window
//
// Direction mix: write_fraction in [0,1] draws per request from the
// generator's own RNG (0 = all reads, 1 = all writes).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "load/source.hpp"

namespace mcm::workload {

struct GeneratorParams {
  std::string name = "gen";
  std::uint16_t source_id = 0;
  std::uint64_t base = 0;              // window base byte address
  std::uint64_t window_bytes = 1 << 20;  // footprint; wraps when volume exceeds
  std::uint64_t bytes = 1 << 20;       // total volume to issue
  std::uint32_t burst_bytes = 16;      // one request per DRAM burst
  std::uint64_t stride_bytes = 4096;   // strided generator only
  double write_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Common machinery: request count, progress, start shift and real pacing
/// (arrivals spread by progress over the requested duration). Subclasses
/// provide the address pattern via next_slot().
class GeneratorSource : public load::TrafficSource {
 public:
  [[nodiscard]] bool done() const override { return issued_ >= count_; }
  [[nodiscard]] ctrl::Request head() const override;
  void advance() override;
  [[nodiscard]] std::uint64_t total_bytes() const override {
    return count_ * params_.burst_bytes;
  }
  [[nodiscard]] std::string_view name() const override { return params_.name; }
  void set_start(Time t) override { start_ = t; }
  void set_pacing(Time duration) override { pace_duration_ = duration; }

  [[nodiscard]] const GeneratorParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t request_count() const { return count_; }

 protected:
  explicit GeneratorSource(GeneratorParams p);

  /// Burst-slot index of request `i` within the window (0 .. slots()-1).
  /// Called exactly once per request, in stream order.
  virtual std::uint64_t next_slot(std::uint64_t i) = 0;

  [[nodiscard]] std::uint64_t slots() const { return slots_; }
  Rng& rng() { return rng_; }

  /// Subclass constructors call this once to materialize the first request
  /// (head() must be const and stable).
  void prime() { cur_ = make_request(0); }

 private:
  [[nodiscard]] ctrl::Request make_request(std::uint64_t i);

  GeneratorParams params_;
  std::uint64_t count_ = 0;
  std::uint64_t slots_ = 1;
  std::uint64_t issued_ = 0;
  ctrl::Request cur_;
  Rng rng_;
  Rng dir_rng_;  // direction draws stay independent of the address pattern
  Time start_ = Time::zero();
  Time pace_duration_ = Time::zero();
};

class SequentialSource final : public GeneratorSource {
 public:
  explicit SequentialSource(GeneratorParams p) : GeneratorSource(std::move(p)) {
    prime();
  }

 protected:
  std::uint64_t next_slot(std::uint64_t i) override { return i % slots(); }
};

class StridedSource final : public GeneratorSource {
 public:
  explicit StridedSource(GeneratorParams p);

 protected:
  std::uint64_t next_slot(std::uint64_t i) override;

 private:
  std::uint64_t stride_slots_ = 1;
};

class PointerChaseSource final : public GeneratorSource {
 public:
  explicit PointerChaseSource(GeneratorParams p);

 protected:
  std::uint64_t next_slot(std::uint64_t i) override;

 private:
  // Full-period LCG over a power-of-two slot count: next = (a*cur + c) mod
  // 2^k with c odd and a == 1 (mod 4) visits every slot once per lap.
  std::uint64_t mask_ = 0;
  std::uint64_t mul_ = 5;
  std::uint64_t add_ = 1;
  std::uint64_t cur_slot_ = 0;
};

class UniformRandomSource final : public GeneratorSource {
 public:
  explicit UniformRandomSource(GeneratorParams p)
      : GeneratorSource(std::move(p)) {
    prime();
  }

 protected:
  std::uint64_t next_slot(std::uint64_t) override {
    return rng().next_below(slots());
  }
};

/// Factory over the generator kind names used by the workload spec
/// ("sequential", "strided", "pointer_chase", "uniform_random"); nullptr for
/// an unknown kind.
[[nodiscard]] std::unique_ptr<GeneratorSource> make_generator(
    std::string_view kind, GeneratorParams p);

}  // namespace mcm::workload
