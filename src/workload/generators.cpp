#include "workload/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mcm::workload {

GeneratorSource::GeneratorSource(GeneratorParams p)
    : params_(std::move(p)), rng_(params_.seed), dir_rng_(params_.seed ^ 0x9e3779b97f4a7c15ull) {
  if (params_.burst_bytes == 0) {
    throw std::invalid_argument("generator '" + params_.name +
                                "': burst_bytes must be positive");
  }
  slots_ = std::max<std::uint64_t>(params_.window_bytes / params_.burst_bytes, 1);
  count_ = params_.bytes / params_.burst_bytes;
}

ctrl::Request GeneratorSource::make_request(std::uint64_t i) {
  ctrl::Request r;
  r.addr = params_.base + next_slot(i) * params_.burst_bytes;
  if (params_.write_fraction >= 1.0) {
    r.is_write = true;
  } else if (params_.write_fraction > 0.0) {
    r.is_write = dir_rng_.next_double() < params_.write_fraction;
  }
  r.source = params_.source_id;
  return r;
}

ctrl::Request GeneratorSource::head() const {
  ctrl::Request r = cur_;
  Time arrival = Time::zero();
  if (pace_duration_ > Time::zero() && count_ > 1) {
    arrival = Time{static_cast<std::int64_t>(
        static_cast<__int128>(issued_) * pace_duration_.ps() /
        static_cast<std::int64_t>(count_ - 1))};
  }
  r.arrival = start_ + arrival;
  return r;
}

void GeneratorSource::advance() {
  ++issued_;
  if (issued_ < count_) cur_ = make_request(issued_);
}

StridedSource::StridedSource(GeneratorParams p) : GeneratorSource(std::move(p)) {
  const auto& par = params();
  stride_slots_ = std::max<std::uint64_t>(par.stride_bytes / par.burst_bytes, 1);
  prime();
}

std::uint64_t StridedSource::next_slot(std::uint64_t i) {
  return (i * stride_slots_) % slots();
}

PointerChaseSource::PointerChaseSource(GeneratorParams p)
    : GeneratorSource(std::move(p)) {
  // Round the working set down to a power-of-two slot count so the LCG walk
  // has full period (every slot visited once per lap).
  std::uint64_t pow2 = 1;
  while (pow2 * 2 <= slots()) pow2 *= 2;
  mask_ = pow2 - 1;
  mul_ = (rng().next_u64() & ~std::uint64_t{3}) | 1;  // a == 1 (mod 4)
  add_ = rng().next_u64() | 1;                        // c odd
  cur_slot_ = rng().next_u64() & mask_;
  prime();
}

std::uint64_t PointerChaseSource::next_slot(std::uint64_t) {
  const std::uint64_t slot = cur_slot_;
  cur_slot_ = (mul_ * cur_slot_ + add_) & mask_;
  return slot;
}

std::unique_ptr<GeneratorSource> make_generator(std::string_view kind,
                                                GeneratorParams p) {
  if (kind == "sequential") return std::make_unique<SequentialSource>(std::move(p));
  if (kind == "strided") return std::make_unique<StridedSource>(std::move(p));
  if (kind == "pointer_chase") {
    return std::make_unique<PointerChaseSource>(std::move(p));
  }
  if (kind == "uniform_random") {
    return std::make_unique<UniformRandomSource>(std::move(p));
  }
  return nullptr;
}

}  // namespace mcm::workload
