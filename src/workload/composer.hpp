// Mixed-tenant composition: N concurrent sessions (each a video level, a
// replayed trace, or a synthetic generator, carved into its own slice of the
// global address space) merged into one request stream by arrival time. The
// merge is deterministic - ties resolve by tenant index - so a composed
// workload is a pure function of its spec and flows through the sharded
// engine, the stream cache, and the verifier byte-identically at any worker
// count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "load/source.hpp"

namespace mcm::workload {

class MixedTenantSource final : public load::TrafficSource {
 public:
  MixedTenantSource(std::string name,
                    std::vector<std::unique_ptr<load::TrafficSource>> tenants);

  [[nodiscard]] bool done() const override;
  [[nodiscard]] ctrl::Request head() const override;
  void advance() override;
  [[nodiscard]] std::uint64_t total_bytes() const override { return total_; }
  [[nodiscard]] std::string_view name() const override { return name_; }
  void set_start(Time t) override;
  void set_pacing(Time duration) override;

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] const load::TrafficSource& tenant(std::size_t i) const {
    return *tenants_[i];
  }

 private:
  /// Index of the pending tenant with the earliest head arrival (ties by
  /// tenant index); tenants_.size() when every tenant is done.
  [[nodiscard]] std::size_t select() const;

  std::string name_;
  std::vector<std::unique_ptr<load::TrafficSource>> tenants_;
  std::uint64_t total_ = 0;
};

}  // namespace mcm::workload
