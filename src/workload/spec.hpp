// The declarative workload scenario: `mcm.workload/v1` JSON describing a
// system shape plus N concurrent tenants - each a video recording level, an
// external trace, or a parameterized synthetic generator - carved into
// disjoint partitions of the global address space and contending for the
// same channels. A spec is pure data: spec + code revision determines the
// composed request stream bit-exactly, which is what lets the stream cache
// memoize compiled workloads and the verifier replay them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "multichannel/memory_system.hpp"
#include "obs/json.hpp"
#include "video/h264_levels.hpp"

namespace mcm::workload {

/// One concurrent session. `kind` selects which of the three field groups
/// applies; the shared fields place and pace the tenant.
struct TenantSpec {
  std::string name;
  std::string kind = "generator";  // "video" | "trace" | "generator"

  /// Bytes of the global address space reserved for this tenant. 0 = an
  /// equal share of whatever the explicitly-sized tenants leave over.
  std::uint64_t partition_bytes = 0;

  /// Spread this tenant's arrivals over [0, pace_ps] instead of issuing
  /// back-to-back at time zero. Pacing shapes the *merge order* of the
  /// composed stream (rate shaping between tenants); inside the engine all
  /// requests of a stage still arrive at the stage start.
  std::int64_t pace_ps = 0;

  // kind == "video": the paper's recording pipeline at this H.264 level.
  std::string level = "3.1";
  std::uint64_t max_requests = 0;  // 0 = the full frame's stream

  // kind == "trace": replay an external trace file. Relative paths are
  // resolved against the spec file's directory by load_workload().
  std::string path;
  std::string format = "auto";  // "auto" | "mcm-text" | "ramulator" | "binary"

  // kind == "generator": synthetic pattern (see workload/generators.hpp).
  std::string generator = "sequential";
  std::uint64_t window_bytes = 1 << 20;
  std::uint64_t bytes = 1 << 20;
  std::uint64_t stride_bytes = 4096;
  double write_fraction = 0.0;
  std::uint64_t seed = 1;

  friend bool operator==(const TenantSpec&, const TenantSpec&) = default;
};

struct WorkloadSpec {
  std::string name = "workload";

  // System shape (same vocabulary as verify's mcm.repro/v1).
  std::string device = "next_gen_mobile_ddr";
  std::uint32_t channels = 4;
  std::uint32_t freq_mhz = 400;
  std::uint32_t interleave_bytes = 16;

  /// Heterogeneous channel clusters: one device-class name per channel
  /// ("mobile_ddr", "fast_edram", "slow_pcm"). Empty = homogeneous system.
  /// `vault_group` >= 2 bundles that many consecutive channels onto one
  /// shared-TSV stacked interface.
  std::vector<std::string> channel_classes;
  std::uint32_t vault_group = 0;

  int frames = 1;
  std::int64_t period_ps = 33'333'333'333;  // 30 fps frame period
  unsigned sim_threads = 0;             // 0 = MCM_SIM_THREADS
  bool legacy_feed = false;             // sequential feed loop (verification)

  std::vector<TenantSpec> tenants;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;

  /// Production system configuration. Throws std::invalid_argument on an
  /// unknown device name.
  [[nodiscard]] multichannel::SystemConfig system_config() const;

  /// Stream-cache key: a compact stamp of every field the compiled request
  /// stream depends on (engine knobs like sim_threads are excluded).
  [[nodiscard]] std::string cache_key() const;
};

/// Parse an H.264 level by its Table I column name ("3.1" .. "5.2").
[[nodiscard]] std::optional<video::H264Level> parse_level(std::string_view name);

/// `mcm.workload/v1` (de)serialization.
[[nodiscard]] obs::JsonValue workload_to_json(const WorkloadSpec& s);
[[nodiscard]] std::optional<WorkloadSpec> workload_from_json(
    const obs::JsonValue& doc, std::string* error = nullptr);

bool save_workload(const WorkloadSpec& s, const std::string& path);

/// Load a spec file; tenant trace paths are resolved relative to the spec
/// file's directory so committed scenarios stay relocatable.
[[nodiscard]] std::optional<WorkloadSpec> load_workload(
    const std::string& path, std::string* error = nullptr);

}  // namespace mcm::workload
