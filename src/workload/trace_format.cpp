#include "workload/trace_format.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace mcm::workload {

using load::TraceError;

std::string_view to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::kMcmText: return "mcm-text";
    case TraceFormat::kRamulator: return "ramulator";
    case TraceFormat::kBinary: return "binary";
  }
  return "?";
}

std::optional<TraceFormat> parse_trace_format(std::string_view name) {
  if (name == "mcm-text" || name == "text" || name == "mcm") {
    return TraceFormat::kMcmText;
  }
  if (name == "ramulator" || name == "dramsim") return TraceFormat::kRamulator;
  if (name == "binary" || name == "bin") return TraceFormat::kBinary;
  return std::nullopt;
}

TraceFormat detect_trace_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file '" + path + "'");
  char magic[8] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() == sizeof magic &&
      std::memcmp(magic, BinaryTraceHeader::kMagic, sizeof magic) == 0) {
    return TraceFormat::kBinary;
  }
  in.clear();
  in.seekg(0);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    // mcm-text leads with a decimal timestamp column; the Ramulator dialect
    // leads with the address (conventionally 0x-prefixed). A bare decimal
    // first column therefore means mcm-text.
    if (line.compare(first, 2, "0x") == 0 || line.compare(first, 2, "0X") == 0) {
      return TraceFormat::kRamulator;
    }
    // Two whitespace-separated columns = "<addr> <R|W>"; three or more with
    // a decimal lead = "<ps> <R|W> 0x<addr> ...".
    long long ps = 0;
    char rw = 0;
    unsigned long long addr = 0;
    if (std::sscanf(line.c_str() + first, "%lld %c 0x%llx", &ps, &rw, &addr) == 3) {
      return TraceFormat::kMcmText;
    }
    return TraceFormat::kRamulator;
  }
  throw TraceError("trace file '" + path + "' is empty");
}

// --- Ramulator/DRAMsim-style text -------------------------------------------

void write_ramulator_trace(std::ostream& out,
                           const std::vector<ctrl::Request>& requests) {
  char line[48];
  for (const auto& r : requests) {
    std::snprintf(line, sizeof line, "0x%" PRIx64 " %c\n", r.addr,
                  r.is_write ? 'W' : 'R');
    out << line;
  }
}

std::vector<ctrl::Request> read_ramulator_trace(std::istream& in) {
  std::vector<ctrl::Request> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    char addr_buf[64] = {};
    char op_buf[16] = {};
    char extra[8] = {};
    const int got = std::sscanf(line.c_str(), "%63s %15s %7s", addr_buf, op_buf,
                                extra);
    if (got != 2) {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": expected '<addr> <R|W>', got '" + line + "'");
    }
    char* end = nullptr;
    const unsigned long long addr = std::strtoull(addr_buf, &end, 0);
    if (end == addr_buf || *end != '\0') {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": bad address '" + addr_buf + "'");
    }
    if (addr > load::kMaxTraceAddr) {
      throw TraceError("trace line " + std::to_string(lineno) + ": address " +
                       addr_buf + " out of range (bit 63 is reserved for the "
                       "packed write flag)");
    }
    std::string op(op_buf);
    for (char& c : op) c = static_cast<char>(std::toupper(c));
    bool is_write = false;
    if (op == "R" || op == "RD" || op == "READ") {
      is_write = false;
    } else if (op == "W" || op == "WR" || op == "WRITE") {
      is_write = true;
    } else {
      throw TraceError("trace line " + std::to_string(lineno) +
                       ": bad operation '" + op_buf + "' (want R or W)");
    }
    ctrl::Request r;
    r.addr = addr;
    r.is_write = is_write;
    out.push_back(r);
  }
  return out;
}

// --- Binary mcm-native format -----------------------------------------------

namespace {

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void write_header(std::ostream& out, std::uint64_t record_count) {
  unsigned char h[BinaryTraceHeader::kHeaderBytes] = {};
  std::memcpy(h, BinaryTraceHeader::kMagic, 8);
  put_u32(h + 8, BinaryTraceHeader::kVersion);
  put_u32(h + 12, BinaryTraceHeader::kRecordBytes);
  put_u64(h + 16, record_count);
  put_u64(h + 24, 0);
  out.write(reinterpret_cast<const char*>(h), sizeof h);
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out) : out_(out) {
  write_header(out_, BinaryTraceHeader::kCountUnknown);
  if (!out_) throw TraceError("binary trace: cannot write header");
}

void BinaryTraceWriter::append(const ctrl::Request& r) {
  if (r.addr > load::kMaxTraceAddr) {
    throw TraceError("binary trace record " + std::to_string(written_) +
                     ": address out of range (bit 63 is reserved for the "
                     "packed write flag)");
  }
  if (r.arrival.ps() < 0) {
    throw TraceError("binary trace record " + std::to_string(written_) +
                     ": negative arrival");
  }
  if (written_ > 0 && r.arrival.ps() < prev_ps_) {
    throw TraceError("binary trace record " + std::to_string(written_) +
                     ": arrival goes backwards");
  }
  prev_ps_ = r.arrival.ps();
  unsigned char rec[BinaryTraceHeader::kRecordBytes] = {};
  put_u64(rec, static_cast<std::uint64_t>(r.arrival.ps()));
  put_u64(rec + 8, r.addr);
  rec[16] = static_cast<unsigned char>(r.source & 0xff);
  rec[17] = static_cast<unsigned char>(r.source >> 8);
  rec[18] = r.is_write ? 1 : 0;
  out_.write(reinterpret_cast<const char*>(rec), sizeof rec);
  if (!out_) throw TraceError("binary trace: short write");
  ++written_;
}

void BinaryTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.flush();
  // Patch the record count when the sink supports seeking (files do, pipes
  // do not - those keep the read-until-EOF marker).
  const std::ostream::pos_type end = out_.tellp();
  if (end == std::ostream::pos_type(-1)) {
    out_.clear();
    return;
  }
  out_.seekp(16);
  if (out_) {
    unsigned char count[8];
    put_u64(count, written_);
    out_.write(reinterpret_cast<const char*>(count), sizeof count);
    out_.seekp(end);
  }
  out_.flush();
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  unsigned char h[BinaryTraceHeader::kHeaderBytes];
  in_.read(reinterpret_cast<char*>(h), sizeof h);
  if (in_.gcount() != sizeof h) {
    throw TraceError("binary trace: truncated header");
  }
  if (std::memcmp(h, BinaryTraceHeader::kMagic, 8) != 0) {
    throw TraceError("binary trace: bad magic (not an mcm.tracebin file)");
  }
  header_.version = get_u32(h + 8);
  if (header_.version != BinaryTraceHeader::kVersion) {
    throw TraceError("binary trace: unsupported version " +
                     std::to_string(header_.version));
  }
  const std::uint32_t record_bytes = get_u32(h + 12);
  if (record_bytes != BinaryTraceHeader::kRecordBytes) {
    throw TraceError("binary trace: unsupported record size " +
                     std::to_string(record_bytes));
  }
  header_.record_count = get_u64(h + 16);
}

std::optional<ctrl::Request> BinaryTraceReader::next() {
  if (header_.record_count != BinaryTraceHeader::kCountUnknown &&
      read_ >= header_.record_count) {
    return std::nullopt;
  }
  unsigned char rec[BinaryTraceHeader::kRecordBytes];
  in_.read(reinterpret_cast<char*>(rec), sizeof rec);
  const std::streamsize got = in_.gcount();
  if (got == 0 && header_.record_count == BinaryTraceHeader::kCountUnknown) {
    return std::nullopt;  // clean EOF on an unsized stream
  }
  if (got != sizeof rec) {
    throw TraceError("binary trace record " + std::to_string(read_) +
                     ": truncated (got " + std::to_string(got) + " of " +
                     std::to_string(sizeof rec) + " bytes)");
  }
  const std::uint64_t arrival = get_u64(rec);
  const std::uint64_t addr = get_u64(rec + 8);
  if (addr > load::kMaxTraceAddr) {
    throw TraceError("binary trace record " + std::to_string(read_) +
                     ": address out of range");
  }
  const std::int64_t ps = static_cast<std::int64_t>(arrival);
  if (ps < 0 || (read_ > 0 && ps < prev_ps_)) {
    throw TraceError("binary trace record " + std::to_string(read_) +
                     ": arrival goes backwards");
  }
  prev_ps_ = ps;
  ctrl::Request r;
  r.arrival = Time{ps};
  r.addr = addr;
  r.source = static_cast<std::uint16_t>(rec[16] | (rec[17] << 8));
  if (rec[18] > 1) {
    throw TraceError("binary trace record " + std::to_string(read_) +
                     ": bad op byte " + std::to_string(rec[18]));
  }
  r.is_write = rec[18] == 1;
  ++read_;
  return r;
}

void write_binary_trace(std::ostream& out,
                        const std::vector<ctrl::Request>& requests) {
  BinaryTraceWriter writer(out);
  for (const auto& r : requests) writer.append(r);
  writer.finish();
}

std::vector<ctrl::Request> read_binary_trace(std::istream& in) {
  BinaryTraceReader reader(in);
  std::vector<ctrl::Request> out;
  if (reader.header().record_count != BinaryTraceHeader::kCountUnknown) {
    out.reserve(reader.header().record_count);
  }
  while (auto r = reader.next()) out.push_back(*r);
  return out;
}

// --- Format-dispatched file IO ----------------------------------------------

std::vector<ctrl::Request> read_trace_file(const std::string& path,
                                           std::optional<TraceFormat> format) {
  const TraceFormat f = format.has_value() ? *format : detect_trace_format(path);
  std::ifstream in(path, f == TraceFormat::kBinary
                             ? std::ios::binary | std::ios::in
                             : std::ios::in);
  if (!in) throw TraceError("cannot open trace file '" + path + "'");
  switch (f) {
    case TraceFormat::kMcmText: return load::read_trace(in);
    case TraceFormat::kRamulator: return read_ramulator_trace(in);
    case TraceFormat::kBinary: return read_binary_trace(in);
  }
  throw TraceError("unreachable trace format");
}

void write_trace_file(const std::string& path, TraceFormat format,
                      const std::vector<ctrl::Request>& requests) {
  std::ofstream out(path, format == TraceFormat::kBinary
                              ? std::ios::binary | std::ios::out
                              : std::ios::out);
  if (!out) throw TraceError("cannot write trace file '" + path + "'");
  switch (format) {
    case TraceFormat::kMcmText: load::write_trace(out, requests); break;
    case TraceFormat::kRamulator: write_ramulator_trace(out, requests); break;
    case TraceFormat::kBinary: write_binary_trace(out, requests); break;
  }
  if (!out) throw TraceError("short write to trace file '" + path + "'");
}

}  // namespace mcm::workload
