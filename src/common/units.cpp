#include "common/units.hpp"

#include <cstdio>

namespace mcm {

std::string format_time(Time t) {
  char buf[64];
  const std::int64_t ps = t.ps();
  if (ps < 10'000) {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(ps));
  } else if (ps < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.2f ns", t.ns());
  } else if (ps < 10'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%.2f us", t.us());
  } else {
    std::snprintf(buf, sizeof buf, "%.3f ms", t.ms());
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_s) {
  char buf[64];
  if (bytes_per_s >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_s / 1e9);
  } else if (bytes_per_s >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB/s", bytes_per_s / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B/s", bytes_per_s);
  }
  return buf;
}

}  // namespace mcm
