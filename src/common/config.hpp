// Tiny typed key-value configuration store. Accepts "key = value" lines
// ('#' comments), used by examples and tests to override simulator presets
// without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mcm {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines. Later keys override earlier ones.
  /// Throws ConfigError on malformed lines.
  static Config from_string(std::string_view text);
  static Config from_file(const std::string& path);

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Throw ConfigError when a present value
  /// does not parse as the requested type.
  [[nodiscard]] std::string get_string(const std::string& key, std::string def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace mcm
