#include "common/csv.hpp"

#include <cstdio>

namespace mcm {

void CsvWriter::sep() {
  if (!at_row_start_) out_ << ',';
  at_row_start_ = false;
}

CsvWriter& CsvWriter::field(std::string_view s) {
  sep();
  const bool needs_quote = s.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) {
    out_ << s;
    return *this;
  }
  out_ << '"';
  for (char c : s) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
  return *this;
}

CsvWriter& CsvWriter::field(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return field(std::string_view{buf});
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return field(std::string_view{buf});
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return field(std::string_view{buf});
}

void CsvWriter::endrow() {
  out_ << '\n';
  at_row_start_ = true;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  endrow();
}

}  // namespace mcm
