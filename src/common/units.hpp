// Strongly typed simulation units: time (picoseconds), frequency, data
// sizes, and bandwidth. All simulator timing arithmetic is integral
// picoseconds so results are exactly reproducible across platforms.
#pragma once

#include <cstdint>
#include <cmath>
#include <compare>
#include <limits>
#include <string>

namespace mcm {

/// Simulation time in integral picoseconds.
///
/// A strong type (rather than a bare int64) so time cannot be silently mixed
/// with cycle counts or byte counts. One picosecond resolution comfortably
/// covers the 200-533 MHz clocks in this study (periods of 1876-5000 ps).
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ps) : ps_(ps) {}

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static Time from_ns(double ns) {
    return Time{static_cast<std::int64_t>(std::llround(ns * 1e3))};
  }
  [[nodiscard]] static Time from_us(double us) {
    return Time{static_cast<std::int64_t>(std::llround(us * 1e6))};
  }
  [[nodiscard]] static Time from_ms(double ms) {
    return Time{static_cast<std::int64_t>(std::llround(ms * 1e9))};
  }
  [[nodiscard]] static Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(std::llround(s * 1e12))};
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ps_ += rhs.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ps_ -= rhs.ps_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ps_ * k}; }

 private:
  std::int64_t ps_ = 0;
};

[[nodiscard]] constexpr Time max(Time a, Time b) { return a < b ? b : a; }
[[nodiscard]] constexpr Time min(Time a, Time b) { return a < b ? a : b; }

/// Clock frequency. Stores MHz; converts to an integral-picosecond period.
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(double mhz) : mhz_(mhz) {}

  [[nodiscard]] constexpr double mhz() const { return mhz_; }
  [[nodiscard]] constexpr double hz() const { return mhz_ * 1e6; }

  /// Clock period rounded to the nearest picosecond (e.g. 400 MHz -> 2500 ps).
  [[nodiscard]] Time period() const {
    return Time{static_cast<std::int64_t>(std::llround(1e6 / mhz_))};
  }

  constexpr auto operator<=>(const Frequency&) const = default;

 private:
  double mhz_ = 0.0;
};

// -- Data size helpers -------------------------------------------------------

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Decimal megabit (used throughout the paper's Table I: "Mb").
inline constexpr double kMbit = 1e6;

[[nodiscard]] constexpr double bits_to_mbits(double bits) { return bits / kMbit; }
[[nodiscard]] constexpr double bytes_to_mb(double bytes) { return bytes / 1e6; }
[[nodiscard]] constexpr double bytes_to_gb(double bytes) { return bytes / 1e9; }

/// Bandwidth in bytes/second from a byte count over a duration.
[[nodiscard]] inline double bandwidth_bytes_per_s(std::uint64_t bytes, Time elapsed) {
  const double s = elapsed.seconds();
  return s > 0.0 ? static_cast<double>(bytes) / s : 0.0;
}

[[nodiscard]] std::string format_time(Time t);
[[nodiscard]] std::string format_bandwidth(double bytes_per_s);

}  // namespace mcm
