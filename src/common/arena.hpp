// Frame-scoped arena allocator for the simulator's per-frame scratch: the
// stage traffic sources rebuilt every frame on the legacy feed path and the
// per-channel trace spools. A frame's worth of objects is carved out of a
// handful of large blocks with a bump pointer; reset() rewinds the arena
// between frames, *retaining* the blocks, so steady-state frames perform
// zero heap traffic — the classic data-oriented discipline of reset-not-free
// (see docs/performance.md, "Data-oriented kernels").
//
// Two front ends share the same storage:
//   - create<T>(...) placement-constructs an object and (for non-trivially
//     destructible types) registers a finalizer that reset() and the
//     destructor run in reverse creation order;
//   - the arena is a std::pmr::memory_resource, so pmr containers (the trace
//     spools' event vectors) can draw from it directly. Deallocation is a
//     no-op by design: a frame's garbage is reclaimed wholesale at reset().
//
// Allocations larger than the block size get a dedicated block (the
// "oversized frame" growth path); it is retained across resets like any
// other block, so a one-off giant frame only pays its allocation once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <memory_resource>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcm::common {

class FrameArena final : public std::pmr::memory_resource {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit FrameArena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  ~FrameArena() override { run_finalizers(); }

  /// Bump-allocate `bytes` aligned to `align`. Never returns nullptr
  /// (throws std::bad_alloc on exhaustion, like operator new).
  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      // Align the actual address, not the offset: operator new[] only
      // guarantees max_align for the block base.
      const auto base = reinterpret_cast<std::uintptr_t>(b.mem.get());
      const std::size_t aligned = align_up(base + b.used, align) - base;
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        live_bytes_ += bytes;
        return b.mem.get() + aligned;
      }
      ++current_;
    }
    // No retained block fits: grow. Oversized requests get a block sized
    // exactly for them (plus alignment slack) so the normal block size
    // still governs the steady state.
    const std::size_t want = bytes + align;
    Block b;
    b.size = want > block_bytes_ ? want : block_bytes_;
    b.mem = std::make_unique<std::byte[]>(b.size);
    blocks_.push_back(std::move(b));
    current_ = blocks_.size() - 1;
    Block& nb = blocks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(nb.mem.get());
    const std::size_t aligned = align_up(base, align) - base;
    nb.used = aligned + bytes;
    live_bytes_ += bytes;
    return nb.mem.get() + aligned;
  }

  /// Placement-construct a T in the arena. Non-trivially-destructible types
  /// register a finalizer; reset() (and the arena's destructor) run the
  /// finalizers in reverse creation order before rewinding storage.
  template <class T, class... Args>
  T* create(Args&&... args) {
    void* mem = allocate_bytes(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(Finalizer{
          obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Rewind the arena: destroy registered objects (newest first), then mark
  /// every retained block empty. No memory is returned to the heap — the
  /// next frame reuses the same blocks.
  void reset() {
    run_finalizers();
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
    live_bytes_ = 0;
    ++resets_;
  }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  struct Finalizer {
    void* obj;
    void (*fn)(void*);
  };

  static std::size_t align_up(std::size_t v, std::size_t a) {
    return (v + a - 1) & ~(a - 1);
  }

  void run_finalizers() {
    while (!finalizers_.empty()) {
      const Finalizer f = finalizers_.back();
      finalizers_.pop_back();
      f.fn(f.obj);
    }
  }

  // std::pmr::memory_resource: pmr containers bump-allocate here;
  // per-object deallocation is deliberately a no-op (reclaimed at reset()).
  void* do_allocate(std::size_t bytes, std::size_t align) override {
    return allocate_bytes(bytes, align);
  }
  void do_deallocate(void*, std::size_t, std::size_t) override {}
  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;    // first block with possible free space
  std::size_t live_bytes_ = 0;
  std::uint64_t resets_ = 0;
  std::vector<Finalizer> finalizers_;
};

/// MCM_ARENA=off|0|heap disables the frame arenas at runtime (objects fall
/// back to the heap); anything else — including unset — enables them. The
/// bench harness stamps this mode into its cells.
[[nodiscard]] inline bool arena_enabled() {
  const char* env = std::getenv("MCM_ARENA");
  if (env == nullptr) return true;
  const std::string_view v(env);
  return !(v == "off" || v == "OFF" || v == "0" || v == "heap");
}

}  // namespace mcm::common
