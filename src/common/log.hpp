// Leveled logging to stderr. Off by default above Warn so simulators stay
// quiet in benchmarks; tests and examples can raise verbosity.
#pragma once

#include <cstdio>
#include <string>

namespace mcm {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  template <typename... Args>
  static void write(LogLevel lvl, const char* fmt, Args... args) {
    if (lvl > level()) return;
    std::fprintf(stderr, "[mcm:%s] ", name(lvl));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

  static void write(LogLevel lvl, const char* msg) { write(lvl, "%s", msg); }

 private:
  static const char* name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
  }
};

#define MCM_LOG_ERROR(...) ::mcm::Log::write(::mcm::LogLevel::kError, __VA_ARGS__)
#define MCM_LOG_WARN(...) ::mcm::Log::write(::mcm::LogLevel::kWarn, __VA_ARGS__)
#define MCM_LOG_INFO(...) ::mcm::Log::write(::mcm::LogLevel::kInfo, __VA_ARGS__)
#define MCM_LOG_DEBUG(...) ::mcm::Log::write(::mcm::LogLevel::kDebug, __VA_ARGS__)

}  // namespace mcm
