// Leveled logging to stderr. Off by default above Warn so simulators stay
// quiet in benchmarks; tests and examples can raise verbosity, and the
// MCM_LOG_LEVEL environment variable (error|warn|info|debug or 0-3) sets it
// without recompiling. Format strings are compiler-checked where supported.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__GNUC__) || defined(__clang__)
#define MCM_PRINTF_CHECK(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define MCM_PRINTF_CHECK(fmt_idx, arg_idx)
#endif

namespace mcm {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = level_from_env();
    return lvl;
  }

  MCM_PRINTF_CHECK(2, 3) static void write(LogLevel lvl, const char* fmt, ...);

 private:
  static const char* name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
  }

  /// MCM_LOG_LEVEL parse; the compiled-in default (Warn) when unset/invalid.
  static LogLevel level_from_env() {
    const char* env = std::getenv("MCM_LOG_LEVEL");
    if (env == nullptr || *env == '\0') return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0 || std::strcmp(env, "0") == 0)
      return LogLevel::kError;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "1") == 0)
      return LogLevel::kWarn;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
      return LogLevel::kInfo;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "3") == 0)
      return LogLevel::kDebug;
    return LogLevel::kWarn;
  }
};

inline void Log::write(LogLevel lvl, const char* fmt, ...) {
  if (lvl > level()) return;
  std::fprintf(stderr, "[mcm:%s] ", name(lvl));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

#define MCM_LOG_ERROR(...) ::mcm::Log::write(::mcm::LogLevel::kError, __VA_ARGS__)
#define MCM_LOG_WARN(...) ::mcm::Log::write(::mcm::LogLevel::kWarn, __VA_ARGS__)
#define MCM_LOG_INFO(...) ::mcm::Log::write(::mcm::LogLevel::kInfo, __VA_ARGS__)
#define MCM_LOG_DEBUG(...) ::mcm::Log::write(::mcm::LogLevel::kDebug, __VA_ARGS__)

}  // namespace mcm
