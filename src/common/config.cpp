#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace mcm {
namespace {

std::string trim(std::string_view s) {
  const auto* first = std::find_if_not(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
  const auto* last = std::find_if_not(s.rbegin(), s.rend(), [](unsigned char c) {
                       return std::isspace(c) != 0;
                     }).base();
  return first < last ? std::string{first, last} : std::string{};
}

}  // namespace

Config Config::from_string(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;

    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("config line " + std::to_string(lineno) + ": missing '='");
    }
    std::string key = trim(std::string_view{stripped}.substr(0, eq));
    std::string value = trim(std::string_view{stripped}.substr(eq + 1));
    if (key.empty()) {
      throw ConfigError("config line " + std::to_string(lineno) + ": empty key");
    }
    cfg.set(std::move(key), std::move(value));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_string(ss.str());
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const { return entries_.contains(key); }

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, std::string def) const {
  return get(key).value_or(std::move(def));
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  try {
    std::size_t consumed = 0;
    const std::int64_t result = std::stoll(*v, &consumed, 0);
    if (consumed != v->size()) throw std::invalid_argument{*v};
    return result;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "': '" + *v + "' is not an integer");
  }
}

double Config::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  try {
    std::size_t consumed = 0;
    const double result = std::stod(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument{*v};
    return result;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "': '" + *v + "' is not a number");
  }
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw ConfigError("config key '" + key + "': '" + *v + "' is not a boolean");
}

}  // namespace mcm
