// Minimal CSV writer for benchmark/table output. Quotes fields only when
// needed; numeric overloads avoid locale surprises via snprintf.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mcm {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter& field(std::string_view s);
  CsvWriter& field(double v, int precision = 6);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }

  /// Finish the current row.
  void endrow();

  /// Convenience: write a whole header/row at once.
  void row(const std::vector<std::string>& fields);

 private:
  void sep();
  std::ostream& out_;
  bool at_row_start_ = true;
};

}  // namespace mcm
