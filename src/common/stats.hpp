// Small statistics helpers used across the simulator: counters, running
// accumulators, and fixed-bucket histograms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mcm {

/// Running scalar accumulator: count, sum, min, max, mean.
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  void reset() { *this = Accumulator{}; }

  Accumulator& operator+=(const Accumulator& rhs) {
    count_ += rhs.count_;
    sum_ += rhs.sum_;
    min_ = std::min(min_, rhs.min_);
    max_ = std::max(max_, rhs.max_);
    return *this;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-bucket histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets, 0) {}

  void add(double x) {
    acc_.add(x);
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                                static_cast<double>(buckets_.size()));
      ++buckets_[std::min(idx, buckets_.size() - 1)];
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const Accumulator& summary() const { return acc_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(buckets_.size());
  }

  /// Value at quantile p in [0, 1], linearly interpolated within the bucket.
  /// Underflow counts as lo_, overflow as hi_.
  [[nodiscard]] double percentile(double p) const {
    const std::uint64_t n = acc_.count();
    if (n == 0) return 0.0;
    const double target = p * static_cast<double>(n);
    double cum = static_cast<double>(underflow_);
    if (target <= cum) return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const double next = cum + static_cast<double>(buckets_[i]);
      if (target <= next && buckets_[i] > 0) {
        const double frac = (target - cum) / static_cast<double>(buckets_[i]);
        return bucket_lo(i) + frac * width;
      }
      cum = next;
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  Accumulator acc_;
};

}  // namespace mcm
