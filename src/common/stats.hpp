// Small statistics helpers used across the simulator: counters, running
// accumulators, and fixed-bucket histograms.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mcm {

/// Running scalar accumulator: count, sum, min, max, mean, and Welford
/// variance (so latency reports can include jitter without a second pass).
class Accumulator {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Population variance (mean squared deviation); 0 with fewer than two
  /// samples.
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

  Accumulator& operator+=(const Accumulator& rhs) {
    if (rhs.count_ == 0) return *this;
    if (count_ == 0) {
      *this = rhs;
      return *this;
    }
    // Chan et al. parallel combination of the Welford moments.
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(rhs.count_);
    const double delta = rhs.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += rhs.m2_ + delta * delta * na * nb / (na + nb);
    count_ += rhs.count_;
    sum_ += rhs.sum_;
    min_ = std::min(min_, rhs.min_);
    max_ = std::max(max_, rhs.max_);
    return *this;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

/// Linear-bucket histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo),
        hi_(hi),
        scale_(static_cast<double>(buckets) / (hi - lo)),
        buckets_(buckets, 0) {}

  void add(double x) {
    acc_.add(x);
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto idx = static_cast<std::size_t>((x - lo_) * scale_);
      ++buckets_[std::min(idx, buckets_.size() - 1)];
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const Accumulator& summary() const { return acc_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(buckets_.size());
  }

  /// Merge a histogram with identical bounds and bucket count.
  Histogram& operator+=(const Histogram& rhs) {
    assert(lo_ == rhs.lo_ && hi_ == rhs.hi_ &&
           buckets_.size() == rhs.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += rhs.buckets_[i];
    underflow_ += rhs.underflow_;
    overflow_ += rhs.overflow_;
    acc_ += rhs.acc_;
    return *this;
  }

  /// Value at quantile p in [0, 1], linearly interpolated within the bucket.
  /// p = 0 returns the observed minimum; underflow counts as lo_, overflow
  /// as hi_. When floating-point accumulation leaves the target unreached
  /// after the last populated bucket, that bucket's upper edge is returned
  /// (never hi_ unless overflow samples exist).
  [[nodiscard]] double percentile(double p) const {
    const std::uint64_t n = acc_.count();
    if (n == 0) return 0.0;
    if (p <= 0.0) return acc_.min();
    const double target = p * static_cast<double>(n);
    double cum = static_cast<double>(underflow_);
    if (target <= cum) return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    std::size_t last_populated = buckets_.size();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const double next = cum + static_cast<double>(buckets_[i]);
      if (target <= next && buckets_[i] > 0) {
        const double frac = (target - cum) / static_cast<double>(buckets_[i]);
        return bucket_lo(i) + frac * width;
      }
      if (buckets_[i] > 0) last_populated = i;
      cum = next;
    }
    if (overflow_ > 0 || last_populated == buckets_.size()) return hi_;
    return bucket_lo(last_populated) + width;
  }

 private:
  double lo_;
  double hi_;
  double scale_;  // buckets / (hi - lo), precomputed for the hot add path
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  Accumulator acc_;
};

}  // namespace mcm
