// Deterministic, seedable PRNG (splitmix64 + xoshiro256**) so simulations
// reproduce bit-exactly regardless of standard-library implementation.
#pragma once

#include <cstdint>

namespace mcm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace mcm
