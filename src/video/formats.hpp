// Pixel formats and frame geometry used by the video recording use case
// (paper Fig. 1): Bayer raw and YUV422 at 16 bits/pixel, H.264 reference and
// reconstructed frames in YUV420 at 12 bits/pixel, and the WVGA RGB888
// display at 24 bits/pixel.
#pragma once

#include <cstdint>
#include <string_view>

namespace mcm::video {

enum class PixelFormat : std::uint8_t { kBayer, kYuv422, kYuv420, kRgb888 };

[[nodiscard]] constexpr int bits_per_pixel(PixelFormat f) {
  switch (f) {
    case PixelFormat::kBayer: return 16;
    case PixelFormat::kYuv422: return 16;
    case PixelFormat::kYuv420: return 12;
    case PixelFormat::kRgb888: return 24;
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view to_string(PixelFormat f) {
  switch (f) {
    case PixelFormat::kBayer: return "Bayer";
    case PixelFormat::kYuv422: return "YUV422";
    case PixelFormat::kYuv420: return "YUV420";
    case PixelFormat::kRgb888: return "RGB888";
  }
  return "?";
}

struct Resolution {
  std::uint32_t width = 0;
  std::uint32_t height = 0;

  [[nodiscard]] constexpr std::uint64_t pixels() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  friend constexpr bool operator==(const Resolution&, const Resolution&) = default;
};

/// Frame sizes used in the paper.
inline constexpr Resolution kWvga{800, 480};        // device display
inline constexpr Resolution k720p{1280, 720};
inline constexpr Resolution k1080p{1920, 1088};     // paper uses 1920x1088
inline constexpr Resolution k2160p{3840, 2160};

/// Bytes for a whole frame in a given format (rounded up).
[[nodiscard]] constexpr std::uint64_t frame_bytes(Resolution r, PixelFormat f) {
  return (r.pixels() * static_cast<std::uint64_t>(bits_per_pixel(f)) + 7) / 8;
}

/// Bits for a whole frame in a given format (exact).
[[nodiscard]] constexpr double frame_bits(Resolution r, PixelFormat f) {
  return static_cast<double>(r.pixels()) * bits_per_pixel(f);
}

}  // namespace mcm::video
