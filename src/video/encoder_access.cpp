#include "video/encoder_access.hpp"

#include <algorithm>

namespace mcm::video {
namespace {

std::int32_t clamp_i32(std::int32_t v, std::int32_t lo, std::int32_t hi) {
  return std::max(lo, std::min(v, hi));
}

}  // namespace

EncoderAccessGenerator::EncoderAccessGenerator(const EncoderAccessParams& p)
    : p_(p),
      rng_(p.seed),
      mb_cols_((p.resolution.width + 15) / 16),
      mb_rows_((p.resolution.height + 15) / 16) {
  mb_count_ = mb_cols_ * mb_rows_;
  if (p_.max_macroblocks > 0) mb_count_ = std::min(mb_count_, p_.max_macroblocks);
  if (p_.ref_frame_bytes == 0) {
    p_.ref_frame_bytes = frame_bytes(p_.resolution, PixelFormat::kYuv420);
  }
}

void EncoderAccessGenerator::fill_macroblock() {
  pending_.clear();
  pos_ = 0;
  if (mb_index_ >= mb_count_) return;

  const std::uint32_t mb_x = (mb_index_ % mb_cols_) * 16;
  const std::uint32_t mb_y = (mb_index_ / mb_cols_) * 16;
  const std::uint32_t width = p_.resolution.width;
  const std::uint32_t height = p_.resolution.height;
  const std::int32_t range = static_cast<std::int32_t>(p_.search_range);

  // Current macroblock, YUV422 input (2 B/pel): 16 lines of 32 B.
  for (std::uint32_t line = 0; line < 16; ++line) {
    const std::uint64_t addr =
        p_.input_base + (static_cast<std::uint64_t>(mb_y + line) * width + mb_x) * 2;
    pending_.push_back({addr, 32, false});
  }

  // Motion search window per reference frame. The motion center wanders a
  // little per macroblock/reference, like real content.
  for (std::uint32_t ref = 0; ref < p_.ref_frames; ++ref) {
    const std::int32_t jitter_x =
        static_cast<std::int32_t>(rng_.next_below(2 * p_.search_range + 1)) - range;
    const std::int32_t jitter_y =
        static_cast<std::int32_t>(rng_.next_below(2 * p_.search_range + 1)) - range;
    const std::int32_t cx = clamp_i32(static_cast<std::int32_t>(mb_x) + jitter_x / 2,
                                      0, static_cast<std::int32_t>(width) - 16);
    const std::int32_t cy = clamp_i32(static_cast<std::int32_t>(mb_y) + jitter_y / 2,
                                      0, static_cast<std::int32_t>(height) - 16);
    const std::int32_t wx0 = clamp_i32(cx - range, 0, static_cast<std::int32_t>(width) - 16);
    const std::int32_t wy0 = clamp_i32(cy - range, 0, static_cast<std::int32_t>(height) - 16);
    const std::int32_t wx1 =
        clamp_i32(cx + range + 16, 16, static_cast<std::int32_t>(width));
    const std::int32_t wy1 =
        clamp_i32(cy + range + 16, 16, static_cast<std::int32_t>(height));
    const std::uint64_t ref_luma = p_.ref_base + ref * p_.ref_frame_bytes;

    if (p_.mode == EncoderAccessMode::kWindowLoads) {
      // Each window line touched once (luma plane, 1 B/pel).
      for (std::int32_t y = wy0; y < wy1; ++y) {
        const std::uint64_t addr =
            ref_luma + static_cast<std::uint64_t>(y) * width + static_cast<std::uint32_t>(wx0);
        pending_.push_back({addr, static_cast<std::uint32_t>(wx1 - wx0), false});
      }
    } else {
      // Every candidate position reads its 16x16 block (raw full-search
      // traffic; candidate_step subsamples the grid to bound volume).
      const std::int32_t step = static_cast<std::int32_t>(std::max(1u, p_.candidate_step));
      for (std::int32_t y = wy0; y + 16 <= wy1; y += step) {
        for (std::int32_t x = wx0; x + 16 <= wx1; x += step) {
          for (std::int32_t line = 0; line < 16; ++line) {
            const std::uint64_t addr = ref_luma +
                                       static_cast<std::uint64_t>(y + line) * width +
                                       static_cast<std::uint32_t>(x);
            pending_.push_back({addr, 16, false});
          }
        }
      }
    }
  }

  // Reconstructed macroblock write-back, YUV420: 16 luma lines of 16 B plus
  // two 8x8 chroma blocks.
  const std::uint64_t luma_plane_bytes =
      static_cast<std::uint64_t>(width) * height;
  for (std::uint32_t line = 0; line < 16; ++line) {
    const std::uint64_t addr =
        p_.recon_base + (static_cast<std::uint64_t>(mb_y + line) * width + mb_x);
    pending_.push_back({addr, 16, true});
  }
  const std::uint64_t chroma_base =
      p_.recon_base + luma_plane_bytes +
      (static_cast<std::uint64_t>(mb_y / 2) * width + mb_x) / 1;
  pending_.push_back({chroma_base, 64, true});
  pending_.push_back({chroma_base + luma_plane_bytes / 4, 64, true});

  ++mb_index_;
}

std::optional<EncoderAccess> EncoderAccessGenerator::next() {
  while (pos_ >= pending_.size()) {
    if (mb_index_ >= mb_count_) return std::nullopt;
    fill_macroblock();
    if (pending_.empty() && mb_index_ >= mb_count_) return std::nullopt;
  }
  return pending_[pos_++];
}

}  // namespace mcm::video
