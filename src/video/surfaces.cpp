#include "video/surfaces.hpp"

#include <algorithm>
#include <cmath>

namespace mcm::video {
namespace {

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

std::uint64_t bits_to_bytes(double bits) {
  return static_cast<std::uint64_t>(std::ceil(bits / 8.0));
}

}  // namespace

SurfaceLayout::SurfaceLayout(const UseCaseModel& model, std::uint64_t alignment) {
  const auto& lv = model.level();
  const auto& p = model.params();
  const double n = static_cast<double>(lv.resolution.pixels());
  const double border = 1.0 + p.stabilization_border;
  const double ns = n * border * border;
  const double nz = n / (p.digizoom * p.digizoom);
  const double fps = lv.fps;

  const std::uint64_t bayer_bytes = bits_to_bytes(16.0 * ns);
  const std::uint64_t yuv422_full_bytes = bits_to_bytes(16.0 * ns);
  const std::uint64_t yuv422_coded_bytes = bits_to_bytes(16.0 * n);
  const std::uint64_t yuv422_post_bytes = bits_to_bytes(16.0 * nz);
  const std::uint64_t fb_bytes = 2 * frame_bytes(p.display, PixelFormat::kRgb888);
  const std::uint64_t frame12 = bits_to_bytes(12.0 * n);
  const std::uint64_t ref_bytes = static_cast<std::uint64_t>(model.ref_frames()) * frame12;
  const std::uint64_t stream_bytes = std::max<std::uint64_t>(
      64 * 1024, 2 * bits_to_bytes(lv.max_bitrate_mbps * 1e6 / fps));
  const std::uint64_t audio_bytes = 64 * 1024;

  const struct {
    SurfaceId id;
    const char* name;
    std::uint64_t bytes;
  } plan[] = {
      {SurfaceId::kBayerCapture, "bayer_capture", bayer_bytes},
      {SurfaceId::kBayerClean, "bayer_clean", bayer_bytes},
      {SurfaceId::kYuv422Full, "yuv422_full", yuv422_full_bytes},
      {SurfaceId::kYuv422Stab, "yuv422_stab", yuv422_coded_bytes},
      {SurfaceId::kYuv422Post, "yuv422_post", yuv422_post_bytes},
      {SurfaceId::kDisplayFb, "display_fb", fb_bytes},
      {SurfaceId::kReferenceArea, "reference_frames", ref_bytes},
      {SurfaceId::kRecon, "reconstructed", frame12},
      {SurfaceId::kBitstream, "bitstream_ring", stream_bytes},
      {SurfaceId::kMuxBuffer, "mux_ring", stream_bytes},
      {SurfaceId::kAudioRing, "audio_ring", audio_bytes},
  };

  surfaces_.resize(kSurfaceCount);
  std::uint64_t cursor = 0;
  for (const auto& e : plan) {
    Surface s;
    s.name = e.name;
    s.base = cursor;
    s.bytes = align_up(std::max<std::uint64_t>(e.bytes, 1), 16);
    cursor = align_up(s.end(), alignment);
    surfaces_[static_cast<std::size_t>(e.id)] = std::move(s);
  }
  total_bytes_ = cursor;
}

}  // namespace mcm::video
