#include "video/h264_levels.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcm::video {
namespace {

constexpr std::array<LevelSpec, 5> kSpecs = {{
    {H264Level::k31, "3.1", "720p HD", k720p, 30.0, 14.0, 18000},
    {H264Level::k32, "3.2", "720p HD", k720p, 60.0, 20.0, 20480},
    {H264Level::k40, "4", "1080p HD", k1080p, 30.0, 20.0, 32768},
    {H264Level::k42, "4.2", "1080p HD", k1080p, 60.0, 50.0, 34816},
    {H264Level::k52, "5.2", "UHD", k2160p, 30.0, 240.0, 184320},
}};

}  // namespace

const LevelSpec& level_spec(H264Level level) {
  for (const auto& s : kSpecs) {
    if (s.level == level) return s;
  }
  throw std::invalid_argument("unknown H.264 level");
}

std::uint32_t frame_macroblocks(Resolution r) {
  const std::uint32_t mb_w = (r.width + 15) / 16;
  const std::uint32_t mb_h = (r.height + 15) / 16;
  return mb_w * mb_h;
}

std::uint32_t dpb_reference_frames(H264Level level) {
  const LevelSpec& s = level_spec(level);
  const std::uint32_t per_frame = frame_macroblocks(s.resolution);
  return std::min<std::uint32_t>(16, std::max<std::uint32_t>(1, s.max_dpb_mbs / per_frame));
}

std::uint32_t reference_frames(H264Level level, RefFramePolicy policy) {
  switch (policy) {
    case RefFramePolicy::kCalibrated: return 4;
    case RefFramePolicy::kDpbDerived: return dpb_reference_frames(level);
  }
  return 4;
}

const std::vector<LevelLimits>& all_level_limits() {
  // ITU-T H.264 Table A-1 (Baseline/Main bitrates).
  static const std::vector<LevelLimits> kLimits = {
      {"1", 1485, 99, 396, 0.064},
      {"1b", 1485, 99, 396, 0.128},
      {"1.1", 3000, 396, 900, 0.192},
      {"1.2", 6000, 396, 2376, 0.384},
      {"1.3", 11880, 396, 2376, 0.768},
      {"2", 11880, 396, 2376, 2.0},
      {"2.1", 19800, 792, 4752, 4.0},
      {"2.2", 20250, 1620, 8100, 4.0},
      {"3", 40500, 1620, 8100, 10.0},
      {"3.1", 108000, 3600, 18000, 14.0},
      {"3.2", 216000, 5120, 20480, 20.0},
      {"4", 245760, 8192, 32768, 20.0},
      {"4.1", 245760, 8192, 32768, 50.0},
      {"4.2", 522240, 8704, 34816, 50.0},
      {"5", 589824, 22080, 110400, 135.0},
      {"5.1", 983040, 36864, 184320, 240.0},
      {"5.2", 2073600, 36864, 184320, 240.0},
  };
  return kLimits;
}

const LevelLimits* suggest_level(Resolution resolution, double fps) {
  const std::uint32_t fs = frame_macroblocks(resolution);
  const double mbps = static_cast<double>(fs) * fps;
  for (const auto& l : all_level_limits()) {
    if (fs <= l.max_fs && mbps <= static_cast<double>(l.max_mbps)) return &l;
  }
  return nullptr;
}

}  // namespace mcm::video
